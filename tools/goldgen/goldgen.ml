(* One-shot generator for the pre-refactor golden fixtures. *)

let fingerprint (r : Campaign.result_row) =
  let t = r.Campaign.r_telemetry in
  String.concat "\n"
    ([ Printf.sprintf "use_case=%s" r.Campaign.r_use_case;
       Printf.sprintf "version=%s" (Version.to_string r.Campaign.r_version);
       Printf.sprintf "mode=%s" (Campaign.mode_to_string r.Campaign.r_mode);
       Printf.sprintf "state=%b" r.Campaign.r_state;
       Printf.sprintf "rc=%s"
         (match r.Campaign.r_rc with Some rc -> string_of_int rc | None -> "-") ]
    @ List.map (fun e -> "evidence=" ^ e) r.Campaign.r_state_evidence
    @ List.map
        (fun v -> "violation=" ^ Monitor.violation_to_string v)
        r.Campaign.r_violations
    @ List.map (fun l -> "transcript=" ^ l) r.Campaign.r_transcript
    @ [ Printf.sprintf "telemetry=%s|f%d|F%d|d%d|fl%d|i%d|p%d|g%d|e%d|inj%d|vs%d|vf%d|vfr%d"
          (String.concat ","
             (List.map (fun (n, c) -> Printf.sprintf "%d:%d" n c) t.Trace.tm_hypercalls))
          t.Trace.tm_hypercalls_failed t.Trace.tm_faults t.Trace.tm_double_faults
          t.Trace.tm_flushes t.Trace.tm_invlpgs t.Trace.tm_page_type_changes
          t.Trace.tm_grant_ops t.Trace.tm_evtchn_ops t.Trace.tm_injector_accesses
          t.Trace.tm_vmi_scans t.Trace.tm_vmi_findings t.Trace.tm_vmi_frames ])

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let emit_string name s =
  (* chunk long hex strings for readability: one OCaml string literal
     with backslash-newline continuations *)
  Printf.printf "let %s =\n  unhex\n    \"" name;
  let h = hex s in
  let n = String.length h in
  let i = ref 0 in
  while !i < n do
    let len = min 76 (n - !i) in
    print_string (String.sub h !i len);
    i := !i + len;
    if !i < n then print_string "\\\n     "
  done;
  print_string "\"\n\n"

let () =
  print_endline "(* Pre-refactor golden fixtures: trace bytes and campaign row";
  print_endline "   fingerprints captured from the Xen-only stack, before the";
  print_endline "   substrate refactor. Generated once; do not regenerate from";
  print_endline "   post-refactor code. *)";
  print_newline ();
  print_endline "let unhex h =";
  print_endline "  let n = String.length h / 2 in";
  print_endline "  String.init n (fun i -> Char.chr (int_of_string (\"0x\" ^ String.sub h (2 * i) 2)))";
  print_newline ();
  let slug uc mode =
    let m = match mode with Campaign.Real_exploit -> "exploit" | Campaign.Injection -> "injection" in
    String.map (fun c -> if c = '-' then '_' else Char.lowercase_ascii c) uc.Campaign.uc_name ^ "_" ^ m
  in
  let cases =
    List.concat_map
      (fun uc -> [ (uc, Campaign.Real_exploit); (uc, Campaign.Injection) ])
      Ii_exploits.All_exploits.use_cases
  in
  List.iter
    (fun (uc, mode) ->
      let r = Trace_driver.record uc mode Version.V4_6 in
      emit_string ("trace_" ^ slug uc mode) r.Trace_driver.rec_bytes;
      emit_string ("row_" ^ slug uc mode) (fingerprint r.Trace_driver.rec_row))
    cases;
  Printf.printf "let cases = [\n";
  List.iter
    (fun (uc, mode) ->
      let s = slug uc mode in
      Printf.printf "  (%S, %S, trace_%s, row_%s);\n" uc.Campaign.uc_name
        (match mode with Campaign.Real_exploit -> "exploit" | Campaign.Injection -> "injection")
        s s)
    cases;
  Printf.printf "]\n"
