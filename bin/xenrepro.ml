(* The xenrepro command-line tool: run exploits, injections, campaigns
   and regenerate the paper's tables from the terminal. *)

open Cmdliner

let version_conv =
  let parse s =
    match Version.of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown Xen version %S (use 4.6, 4.8 or 4.13)" s))
  in
  Arg.conv (parse, fun ppf v -> Version.pp ppf v)

let version_arg =
  let doc = "Target Xen version (4.6, 4.8, 4.13)." in
  Arg.(value & opt version_conv Version.V4_6 & info [ "x"; "xen-version" ] ~docv:"VER" ~doc)

let use_case_arg =
  let doc =
    Printf.sprintf "Use case to run (%s)." (String.concat ", " Ii_exploits.All_exploits.names)
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"USE-CASE" ~doc)

let verbose_arg =
  let doc = "Print transcripts and console output." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let backend_arg =
  let doc = "Hypervisor backend to drive (xen|kvm)." in
  Arg.(value & opt string "xen" & info [ "b"; "backend" ] ~docv:"BACKEND" ~doc)

let bad_backend b =
  `Error
    ( false,
      Printf.sprintf "unknown backend %S; available: %s" b
        (String.concat ", " (List.map fst Ii_backends.Backends.known)) )

let lookup_use_case name =
  match Ii_exploits.All_exploits.find name with
  | Some uc -> Ok uc
  | None ->
      Error
        (Printf.sprintf "unknown use case %S; available: %s" name
           (String.concat ", " Ii_exploits.All_exploits.names))

let print_row ~verbose (r : Campaign.result_row) =
  Printf.printf "use case:        %s\n" r.Campaign.r_use_case;
  Printf.printf "Xen version:     %s\n" (Version.to_string r.Campaign.r_version);
  Printf.printf "mode:            %s\n" (Campaign.mode_to_string r.Campaign.r_mode);
  (match r.Campaign.r_rc with
  | Some rc -> Printf.printf "return code:     %d\n" rc
  | None -> ());
  Printf.printf "erroneous state: %s\n" (if r.Campaign.r_state then "PRESENT (audited)" else "absent");
  (match r.Campaign.r_violations with
  | [] -> Printf.printf "security:        no violation (the system handled the state)\n"
  | vs ->
      Printf.printf "security violations:\n";
      List.iter (fun v -> Printf.printf "  - %s\n" (Monitor.violation_to_string v)) vs);
  if verbose then begin
    Printf.printf "\n--- transcript ---\n";
    List.iter print_endline r.Campaign.r_transcript;
    Printf.printf "\n--- erroneous-state evidence ---\n";
    List.iter print_endline r.Campaign.r_state_evidence
  end

let run_one mode name version verbose =
  match lookup_use_case name with
  | Error e -> `Error (false, e)
  | Ok uc ->
      print_row ~verbose (Campaign.run uc mode version);
      `Ok ()

let exploit_cmd =
  let doc = "Run a third-party exploit PoC against a simulated Xen version." in
  Cmd.v
    (Cmd.info "exploit" ~doc)
    Term.(ret (const (run_one Campaign.Real_exploit) $ use_case_arg $ version_arg $ verbose_arg))

let inject_cmd =
  let doc =
    "Reproduce a use case's erroneous state with the intrusion injector (arbitrary_access)."
  in
  Cmd.v
    (Cmd.info "inject" ~doc)
    Term.(ret (const (run_one Campaign.Injection) $ use_case_arg $ version_arg $ verbose_arg))

let workers_arg =
  let doc =
    "Worker domains for sharded runs: a positive integer, or $(b,auto) to size to the \
     machine (never oversubscribes)."
  in
  Arg.(value & opt string "1" & info [ "w"; "workers" ] ~docv:"N|auto" ~doc)

let with_workers spec k =
  match Shard.workers_of_string spec with
  | Error e -> `Error (false, e)
  | Ok workers -> k workers

let domains_arg =
  let doc = "Concurrent guest domains on each testbed (>= 2: victim + attacker)." in
  Arg.(value & opt int 2 & info [ "domains" ] ~docv:"N" ~doc)

let load_arg =
  let doc =
    "Deterministic background workload every guest domain runs while trials execute \
     (none|default|heavy)."
  in
  Arg.(value & opt string "none" & info [ "load" ] ~docv:"MIX" ~doc)

let with_load spec k =
  match Load_mix.of_string spec with
  | None ->
      `Error
        ( false,
          Printf.sprintf "unknown load mix %S; available: %s" spec
            (String.concat ", " (List.map Load_mix.to_string Load_mix.all)) )
  | Some load -> k load

let campaign_cmd =
  let doc = "Run the full evaluation campaign and print Table III." in
  let trials_arg =
    let doc =
      "Also run N randomized trials per version through the batching scheduler \
       (versions x trials flattened into one work queue) and print the outcome tally."
    in
    Arg.(value & opt int 0 & info [ "n"; "trials" ] ~docv:"N" ~doc)
  in
  let run_xen verbose workers domains load trials =
    let rows =
      Campaign.run_matrix ~workers ~domains ~load Ii_exploits.All_exploits.use_cases
        ~versions:Version.all
        ~modes:[ Campaign.Real_exploit; Campaign.Injection ]
    in
    print_endline (Campaign.table3 rows);
    print_newline ();
    print_endline (Campaign.telemetry_table rows);
    print_newline ();
    print_endline "RQ1 validation on Xen 4.6 (exploit vs injection):";
    List.iter
      (fun (name, st, viol) ->
        Printf.printf "  %-14s same erroneous state: %b   same violation class: %b\n" name st viol)
      (Campaign.validate_rq1 ~domains ~load Ii_exploits.All_exploits.use_cases);
    if verbose then begin
      print_newline ();
      List.iter
        (fun r ->
          Printf.printf "=== %s / %s / %s ===\n" r.Campaign.r_use_case
            (Version.to_string r.Campaign.r_version)
            (Campaign.mode_to_string r.Campaign.r_mode);
          List.iter print_endline r.Campaign.r_transcript;
          print_newline ())
        rows
    end;
    if trials > 0 then begin
      print_newline ();
      print_endline
        (Random_campaign.render (Campaign_scheduler.run ~workers ~trials Version.all))
    end
  in
  let run_kvm verbose domains load =
    let module KC = Ii_backends.Backends.Kvm_campaign in
    let rows =
      KC.run_matrix ~domains ~load Ii_backends.Kvm_use_cases.use_cases
        ~versions:Ii_backends.Backend_kvm.configs
        ~modes:[ Campaign.Real_exploit; Campaign.Injection ]
    in
    print_endline (KC.table3 rows);
    print_newline ();
    print_endline (KC.telemetry_table rows);
    print_newline ();
    print_endline "RQ1 validation on KVM stock (exploit vs injection):";
    List.iter
      (fun (name, st, viol) ->
        Printf.printf "  %-14s same erroneous state: %b   same violation class: %b\n" name st viol)
      (KC.validate_rq1 ~domains ~load Ii_backends.Kvm_use_cases.use_cases);
    if verbose then begin
      print_newline ();
      List.iter
        (fun r ->
          Printf.printf "=== %s / %s / %s ===\n" r.KC.r_use_case
            (Ii_backends.Backend_kvm.config_to_string r.KC.r_version)
            (Campaign.mode_to_string r.KC.r_mode);
          List.iter print_endline r.KC.r_transcript;
          print_newline ())
        rows
    end
  in
  let run verbose backend workers_spec domains load_spec trials =
    with_load load_spec (fun load ->
        match backend with
        | "xen" ->
            with_workers workers_spec (fun workers ->
                run_xen verbose workers domains load trials;
                `Ok ())
        | "kvm" ->
            run_kvm verbose domains load;
            `Ok ()
        | b -> bad_backend b)
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(
      ret
        (const run $ verbose_arg $ backend_arg $ workers_arg $ domains_arg $ load_arg
        $ trials_arg))

let tables_cmd =
  let doc = "Regenerate the paper's tables (I, II, III)." in
  let run () =
    print_endline (Ii_advisory.Corpus.table1 ());
    print_newline ();
    print_endline (Campaign.table2 Ii_exploits.All_exploits.use_cases);
    print_newline ();
    let rows =
      Campaign.run_matrix Ii_exploits.All_exploits.use_cases ~versions:Version.all
        ~modes:[ Campaign.Injection ]
    in
    print_endline (Campaign.table3 rows)
  in
  Cmd.v (Cmd.info "tables" ~doc) Term.(const run $ const ())

let advisory_cmd =
  let doc = "Inspect the advisory corpus and classifier." in
  let run () =
    print_endline (Ii_advisory.Corpus.table1 ());
    Printf.printf "\ncorpus: %d CVEs, %d classifications, classifier accuracy %.1f%%\n"
      Ii_advisory.Corpus.size Ii_advisory.Corpus.classifications
      (100. *. Ii_advisory.Classify.accuracy ())
  in
  Cmd.v (Cmd.info "advisory" ~doc) Term.(const run $ const ())

let console_cmd =
  let doc = "Run a use case and dump the Xen console (crash dumps etc.)." in
  let run name mode_str version =
    match lookup_use_case name with
    | Error e -> `Error (false, e)
    | Ok uc ->
        let mode =
          if mode_str = "exploit" then Campaign.Real_exploit else Campaign.Injection
        in
        let tb = Testbed.create version in
        if mode = Campaign.Injection then Injector.install tb.Testbed.hv;
        let attempt =
          match mode with
          | Campaign.Real_exploit -> uc.Campaign.run_exploit tb
          | Campaign.Injection -> uc.Campaign.run_injection tb
        in
        ignore attempt;
        List.iter print_endline (Hv.console_lines tb.Testbed.hv);
        `Ok ()
  in
  let mode_arg =
    Arg.(value & opt string "injection" & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"exploit|injection")
  in
  Cmd.v (Cmd.info "console" ~doc) Term.(ret (const run $ use_case_arg $ mode_arg $ version_arg))

let venom_cmd =
  let doc = "Run the VENOM device-model study (exploit vs injection across builds)." in
  let run () = print_endline (Ii_devicemodel.Venom_study.render (Ii_devicemodel.Venom_study.matrix ())) in
  Cmd.v (Cmd.info "venom" ~doc) Term.(const run $ const ())

let blk_cmd =
  let doc = "Run the block-backend study (off-by-one exploit vs injection over real grants)." in
  let run () = print_endline (Ii_devicemodel.Blk_study.render (Ii_devicemodel.Blk_study.matrix ())) in
  Cmd.v (Cmd.info "blk" ~doc) Term.(const run $ const ())

let fuzz_cmd =
  let doc =
    "Randomized erroneous-state campaign (fuzz the injector, §IV-C) across all versions."
  in
  let seed_arg =
    Arg.(value & opt int64 7L & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Campaign PRNG seed.")
  in
  let trials_arg =
    Arg.(value & opt int 200 & info [ "n"; "trials" ] ~docv:"N" ~doc:"Trials per version.")
  in
  let flips_arg =
    Arg.(value & flag & info [ "soft-errors" ] ~doc:"Include accidental single-bit flips.")
  in
  let run seed trials flips verbose workers_spec =
   match Shard.workers_of_string workers_spec with
   | Error e ->
       prerr_endline e;
       exit 2
   | Ok workers ->
    let targets =
      if flips then Random_campaign.all_targets else Random_campaign.intrusion_targets
    in
    let summaries = Campaign_scheduler.run ~seed ~trials ~targets ~workers Version.all in
    print_endline (Random_campaign.render summaries);
    if verbose then
      List.iter
        (fun s ->
          Printf.printf "\n--- Xen %s: noteworthy trials ---\n"
            (Version.to_string s.Random_campaign.s_version);
          List.iter
            (fun t ->
              if t.Random_campaign.outcome <> Random_campaign.State_only
                 && t.Random_campaign.outcome <> Random_campaign.No_effect
              then
                Printf.printf "trial %3d %-20s addr=0x%Lx -> %s%s\n" t.Random_campaign.index
                  (Random_campaign.target_to_string t.Random_campaign.target)
                  t.Random_campaign.t_addr
                  (Random_campaign.outcome_to_string t.Random_campaign.outcome)
                  (match t.Random_campaign.t_violations with
                  | [] -> ""
                  | vs ->
                      " [" ^ String.concat "; " (List.map Monitor.violation_to_string vs) ^ "]"))
            s.Random_campaign.trials)
        summaries
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const run $ seed_arg $ trials_arg $ flips_arg $ verbose_arg $ workers_arg)

let bench_cmd =
  let doc =
    "Campaign scaling bench: time the batching scheduler (warm pools, COW forks, one \
     flattened work queue) against the sequential reference at each worker count."
  in
  let trials_arg =
    Arg.(value & opt int 2000 & info [ "n"; "trials" ] ~docv:"N" ~doc:"Trials per run.")
  in
  let sweep_arg =
    let doc = "Comma-separated worker counts to sweep (each a positive integer or $(b,auto))." in
    Arg.(value & opt string "1,auto" & info [ "w"; "workers" ] ~docv:"LIST" ~doc)
  in
  let streamed_arg =
    Arg.(value & flag & info [ "streamed" ]
           ~doc:"Use the streaming scheduler (flat memory; tallies only, no trial rows).")
  in
  let seconds f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let run trials sweep_spec streamed =
    let specs = String.split_on_char ',' sweep_spec in
    let parsed = List.map Shard.workers_of_string specs in
    match List.find_opt Result.is_error parsed with
    | Some (Error e) -> `Error (false, e)
    | _ ->
        let sweep =
          List.sort_uniq compare (List.filter_map Result.to_option parsed)
        in
        ignore (Testbed.create_pooled Version.V4_8) (* warm the pool *);
        let _, seq_s =
          seconds (fun () -> ignore (Random_campaign.run ~trials Version.V4_8))
        in
        Printf.printf "%d trials on 4.8; sequential reference (fresh boot): %.3f s\n\n" trials
          seq_s;
        Printf.printf "%8s %10s %12s %8s\n" "workers" "wall s" "trials/s" "speedup";
        List.iter
          (fun workers ->
            let _, s =
              seconds (fun () ->
                  if streamed then
                    ignore
                      (Campaign_scheduler.run_streamed ~trials ~workers [ Version.V4_8 ])
                  else ignore (Campaign_scheduler.run ~trials ~workers [ Version.V4_8 ]))
            in
            Printf.printf "%8d %10.3f %12.0f %7.2fx\n" workers s (float_of_int trials /. s)
              (seq_s /. s))
          sweep;
        `Ok ()
  in
  Cmd.v (Cmd.info "bench" ~doc) Term.(ret (const run $ trials_arg $ sweep_arg $ streamed_arg))

let cross_cmd =
  let doc = "Cross-system injection: the same IM into Xen and a KVM-style hypervisor (the cross-system scenario)." in
  let run () =
    Format.printf "%a@.@." Intrusion_model.pp_long Ii_exploits.Cross_system.im;
    print_endline (Ii_exploits.Cross_system.render (Ii_exploits.Cross_system.run ()))
  in
  Cmd.v (Cmd.info "cross" ~doc) Term.(const run $ const ())

let stats_cmd =
  let doc = "Run a use case and print a xentop-style host summary (domains, memory, hypercalls)." in
  let run name mode_str version =
    match lookup_use_case name with
    | Error e -> `Error (false, e)
    | Ok uc ->
        let mode = if mode_str = "exploit" then Campaign.Real_exploit else Campaign.Injection in
        let tb = Testbed.create version in
        if mode = Campaign.Injection then Injector.install tb.Testbed.hv;
        ignore
          (match mode with
          | Campaign.Real_exploit -> uc.Campaign.run_exploit tb
          | Campaign.Injection -> uc.Campaign.run_injection tb);
        Testbed.tick_all tb;
        let hv = tb.Testbed.hv in
        Printf.printf "xentop - Xen %s%s\n" (Version.to_string version)
          (if Hv.is_crashed hv then "   *** HOST CRASHED ***" else "");
        Printf.printf "free frames: %d / %d\n" (Phys_mem.free_frames hv.Hv.mem)
          (Phys_mem.total_frames hv.Hv.mem);
        Printf.printf "%-5s %-10s %8s %8s %6s\n" "DOMID" "NAME" "PAGES" "VCPURUNS" "PROCS";
        List.iter
          (fun k ->
            let d = Kernel.dom k in
            Printf.printf "%-5d %-10s %8d %8d %6d\n" d.Domain.id d.Domain.name
              (List.length (Domain.populated_pfns d))
              (Sched.runs_of hv.Hv.sched ~dom:d.Domain.id)
              (List.length (Process.list (Kernel.processes k))))
          (Testbed.kernels tb);
        Printf.printf "hypercalls (nr: calls):";
        List.iter (fun (n, c) -> Printf.printf " %d:%d" n c) (Hv.hypercall_stats hv);
        Printf.printf "   failed: %d\n" (Hv.hypercalls_failed hv);
        `Ok ()
  in
  let mode_arg =
    Arg.(value & opt string "injection" & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"exploit|injection")
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(ret (const run $ use_case_arg $ mode_arg $ version_arg))

let field_study_cmd =
  let doc = "Render the advisory field study and the risk-driven campaign plan." in
  let run () = print_endline (Ii_advisory.Field_study.render ()) in
  Cmd.v (Cmd.info "field-study" ~doc) Term.(const run $ const ())

let defense_cmd =
  let doc =
    "Evaluate the page-table integrity guard with injected erroneous states."
  in
  let run version =
    print_endline (Ii_exploits.Defense_eval.render (Ii_exploits.Defense_eval.matrix ~version ()))
  in
  Cmd.v (Cmd.info "defense" ~doc) Term.(const run $ version_arg)

let ims_cmd =
  let doc = "List the intrusion-model catalog and injector coverage." in
  let run verbose =
    print_endline (Im_catalog.render ());
    if verbose then
      List.iter
        (fun e ->
          List.iter
            (fun m -> Format.printf "@.%a@." Intrusion_model.pp_long m)
            e.Im_catalog.models)
        Im_catalog.catalog
  in
  Cmd.v (Cmd.info "ims" ~doc) Term.(const run $ verbose_arg)

let trace_cmd =
  let doc =
    "Record a use case with the event tracer; print (or replay) the trace."
  in
  let uc_opt_arg =
    let doc =
      Printf.sprintf "Use case to record — a name (%s) or an XSA id like XSA-148."
        (String.concat ", " Ii_exploits.All_exploits.names)
    in
    Arg.(required & opt (some string) None & info [ "use-case" ] ~docv:"USE-CASE" ~doc)
  in
  let mode_arg =
    Arg.(value & opt string "injection" & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"exploit|injection")
  in
  let seed_arg =
    let doc = "Campaign seed (echoed in the header; the trial itself is deterministic)." in
    Arg.(value & opt int64 7L & info [ "s"; "seed" ] ~docv:"SEED" ~doc)
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit the recording as JSON.") in
  let replay_arg =
    Arg.(value & flag & info [ "replay" ] ~doc:"Replay the recording and check final-state equivalence.")
  in
  let cost_model_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "cost-model" ] ~docv:"FILE"
          ~doc:
            "Load per-operation virtual-clock costs from $(docv) (one 'key = ns' per line, \
             '#' comments); unknown keys keep their defaults out — the loader rejects them.")
  in
  let find_uc name =
    match Ii_exploits.All_exploits.find name with
    | Some uc -> Ok uc
    | None -> (
        match
          List.find_opt
            (fun uc -> uc.Campaign.uc_xsa = name)
            Ii_exploits.All_exploits.use_cases
        with
        | Some uc -> Ok uc
        | None ->
            Error
              (Printf.sprintf "unknown use case %S; available: %s" name
                 (String.concat ", " Ii_exploits.All_exploits.names)))
  in
  let mode_of_string = function
    | "exploit" -> Some Campaign.Real_exploit
    | "injection" -> Some Campaign.Injection
    | _ -> None
  in
  let run_kvm name mode json replay model =
    let module KT = Ii_backends.Backends.Kvm_trace in
    match
      List.find_opt
        (fun uc -> uc.Ii_backends.Backends.Kvm_campaign.uc_name = name)
        Ii_backends.Kvm_use_cases.use_cases
    with
    | None ->
        `Error
          ( false,
            Printf.sprintf "unknown KVM use case %S; available: %s" name
              (String.concat ", "
                 (List.map
                    (fun uc -> uc.Ii_backends.Backends.Kvm_campaign.uc_name)
                    Ii_backends.Kvm_use_cases.use_cases)) )
    | Some uc ->
        let prepare =
          Option.map (fun m tb -> Ii_backends.Backend_kvm.set_cost_model tb m) model
        in
        let r = KT.record ?prepare uc mode Ii_backends.Backend_kvm.Stock in
        if json then print_string (KT.to_json r) else print_string (KT.render r);
        if replay then begin
          let o = KT.replay r in
          Printf.printf "replay: %d boundary events applied, %d records skipped\n"
            o.KT.rp_applied o.KT.rp_skipped;
          Printf.printf "final state %s\n"
            (if o.KT.rp_equal then "EQUIVALENT to the recording"
             else "DIVERGED from the recording");
          Printf.printf "virtual timestamps %s\n"
            (if o.KT.rp_vts_equal then "REPRODUCED byte-for-byte"
             else "DIVERGED from the recording");
          if not (o.KT.rp_equal && o.KT.rp_vts_equal) then exit 1
        end;
        `Ok ()
  in
  let run name mode_s seed version json replay cost_model backend =
    let model =
      match cost_model with
      | None -> Ok None
      | Some f -> Result.map Option.some (Vclock.Cost_model.load f)
    in
    match (model, mode_of_string mode_s, backend) with
    | Error e, _, _ -> `Error (false, "cost-model: " ^ e)
    | Ok _, None, _ -> `Error (false, Printf.sprintf "unknown mode %S (exploit|injection)" mode_s)
    | Ok model, Some mode, "kvm" -> run_kvm name mode json replay model
    | Ok model, Some mode, "xen" -> (
        match find_uc name with
        | Error e -> `Error (false, e)
        | Ok uc ->
            let prepare = Option.map (fun m tb -> Substrate_xen.set_cost_model tb m) model in
            let r = Trace_driver.record ?prepare uc mode version in
            if json then print_string (Trace_driver.to_json r)
            else begin
              Printf.printf "seed: %Ld\n" seed;
              print_string (Trace_driver.render r)
            end;
            if replay then begin
              let o = Trace_driver.replay r in
              Printf.printf "replay: %d boundary events applied, %d records skipped\n"
                o.Trace_driver.rp_applied o.Trace_driver.rp_skipped;
              Printf.printf "final state %s\n"
                (if o.Trace_driver.rp_equal then "EQUIVALENT to the recording"
                 else "DIVERGED from the recording");
              Printf.printf "virtual timestamps %s\n"
                (if o.Trace_driver.rp_vts_equal then "REPRODUCED byte-for-byte"
                 else "DIVERGED from the recording");
              (* non-zero exit so CI can gate on replay + vclock
                 determinism together *)
              if not (o.Trace_driver.rp_equal && o.Trace_driver.rp_vts_equal) then exit 1
            end;
            `Ok ())
    | Ok _, Some _, b -> bad_backend b
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      ret
        (const run $ uc_opt_arg $ mode_arg $ seed_arg $ version_arg $ json_arg $ replay_arg
       $ cost_model_arg $ backend_arg))

let vmi_cmd =
  let doc =
    "Run the VMI detector suite over every use case: coverage matrix, detection latencies \
     and the metrics registry. Exits non-zero when a use-case state escapes every detector \
     on a vulnerable version, or when a scan perturbs the machine."
  in
  let mode_arg =
    Arg.(value & opt string "injection" & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"exploit|injection")
  in
  let period_arg =
    Arg.(value & opt int 1 & info [ "p"; "period" ] ~docv:"N" ~doc:"Scan every N trial steps.")
  in
  let every_ns_arg =
    Arg.(
      value
      & opt (some int64) None
      & info [ "every-ns" ] ~docv:"NS"
          ~doc:
            "Rate-based scheduling: scan when $(docv) simulated ns have elapsed on the \
             machine's virtual clock (overrides $(b,--period)).")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit per-trial latencies as JSON.") in
  let run_kvm mode period every_ns json =
    let module KC = Ii_backends.Backends.Kvm_campaign in
    let module KT = Ii_backends.Backends.Kvm_trace in
    let module KV = Ii_backends.Backends.Kvm_vmi in
    let ucs = Ii_backends.Kvm_use_cases.use_cases in
    let registry = Metrics.create () in
    let trials = KV.coverage ~period ?every_ns ~registry ucs mode Ii_backends.Backend_kvm.Stock in
    if json then print_string (KV.to_json trials)
    else begin
      print_endline (KV.matrix_table trials);
      List.iter
        (fun t ->
          List.iter
            (fun (det, findings) ->
              Printf.printf "%s / %s:\n" t.KV.t_recording.KT.rec_use_case det;
              List.iter (fun f -> Printf.printf "  - %s\n" f) findings)
            t.KV.t_findings)
        trials;
      print_newline ();
      print_string (Metrics.render_prometheus registry)
    end;
    let failed = ref false in
    if mode = Campaign.Injection then
      List.iter
        (fun t ->
          if not (KV.covered t) then begin
            Printf.eprintf "vmi: %s escaped every detector\n" t.KV.t_recording.KT.rec_use_case;
            failed := true
          end)
        trials;
    List.iter
      (fun uc ->
        if not (KV.side_effect_free uc mode Ii_backends.Backend_kvm.Stock) then begin
          Printf.eprintf "vmi: detectors perturbed the %s trial\n" uc.KC.uc_name;
          failed := true
        end)
      ucs;
    if !failed then exit 1;
    `Ok ()
  in
  let run mode_s period every_ns version json backend =
    let mode =
      if mode_s = "exploit" then Campaign.Real_exploit else Campaign.Injection
    in
    if backend = "kvm" then run_kvm mode period every_ns json
    else if backend <> "xen" then bad_backend backend
    else begin
      let ucs = Ii_exploits.All_exploits.use_cases in
      let registry = Metrics.create () in
      let trials = Vmi_driver.coverage ~period ?every_ns ~registry ucs mode version in
      if json then print_string (Vmi_driver.to_json trials)
      else begin
        print_endline (Vmi_driver.matrix_table trials);
        List.iter
          (fun t ->
            List.iter
              (fun (det, findings) ->
                Printf.printf "%s / %s:\n" t.Vmi_driver.t_recording.Trace_driver.rec_use_case det;
                List.iter (fun f -> Printf.printf "  - %s\n" f) findings)
              t.Vmi_driver.t_findings)
          trials;
        print_newline ();
        print_string (Metrics.render_prometheus registry)
      end;
      (* CI gates: every injected state must be caught on the vulnerable
         version, and scans must never perturb the trial they observe. *)
      let failed = ref false in
      if version = Version.V4_6 && mode = Campaign.Injection then
        List.iter
          (fun t ->
            if not (Vmi_driver.covered t) then begin
              Printf.eprintf "vmi: %s escaped every detector\n"
                t.Vmi_driver.t_recording.Trace_driver.rec_use_case;
              failed := true
            end)
          trials;
      List.iter
        (fun uc ->
          if not (Vmi_driver.side_effect_free uc mode version) then begin
            Printf.eprintf "vmi: detectors perturbed the %s trial\n" uc.Campaign.uc_name;
            failed := true
          end)
        ucs;
      if !failed then exit 1;
      `Ok ()
    end
  in
  Cmd.v (Cmd.info "vmi" ~doc)
    Term.(
      ret
        (const run $ mode_arg $ period_arg $ every_ns_arg $ version_arg $ json_arg $ backend_arg))

let attribution_cmd =
  let doc =
    "Run every use case with byte-granular provenance attached and attribute each security \
     violation and VMI finding back to its originating action. Exits non-zero when any \
     violation or finding resolves to an empty origin set."
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the attribution reports (rows + causal graph) as JSON.")
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit the causal graphs as Graphviz DOT.")
  in
  let gate eprint_name complete reports =
    let failed = ref false in
    List.iter
      (fun (name, ok) ->
        if not ok then begin
          Printf.eprintf "attribution: %s has a violation or finding with no origin\n" name;
          failed := true
        end)
      (List.map (fun r -> (eprint_name r, complete r)) reports);
    if !failed then exit 1
  in
  let run_kvm json dot =
    let module KA = Ii_backends.Backends.Kvm_attribution in
    let ucs = Ii_backends.Kvm_use_cases.use_cases in
    let registry = Metrics.create () in
    let reports =
      KA.attribute_all ~registry ucs Campaign.Injection Ii_backends.Backend_kvm.Stock
    in
    if json then print_string (KA.to_json reports)
    else if dot then print_string (KA.to_dot reports)
    else begin
      print_endline (KA.table reports);
      print_string (Metrics.render_prometheus registry)
    end;
    gate (fun r -> r.KA.ar_use_case) KA.complete reports;
    `Ok ()
  in
  let run version json dot backend =
    if backend = "kvm" then run_kvm json dot
    else if backend <> "xen" then bad_backend backend
    else begin
      let ucs = Ii_exploits.All_exploits.use_cases in
      let registry = Metrics.create () in
      let reports = Attribution.attribute_all ~registry ucs Campaign.Injection version in
      if json then print_string (Attribution.to_json reports)
      else if dot then print_string (Attribution.to_dot reports)
      else begin
        print_endline (Attribution.table reports);
        print_string (Metrics.render_prometheus registry)
      end;
      gate (fun r -> r.Attribution.ar_use_case) Attribution.complete reports;
      `Ok ()
    end
  in
  Cmd.v (Cmd.info "attribution" ~doc)
    Term.(ret (const run $ version_arg $ json_arg $ dot_arg $ backend_arg))

let backends_cmd =
  let doc = "List the hypervisor backends the injection stack can drive." in
  let run () =
    List.iter
      (fun (name, desc) -> Printf.printf "%-6s %s\n" name desc)
      Ii_backends.Backends.known
  in
  Cmd.v (Cmd.info "backends" ~doc) Term.(const run $ const ())

let main_cmd =
  let doc = "intrusion injection for virtualized systems (DSN'23 reproduction)" in
  Cmd.group
    (Cmd.info "xenrepro" ~version:"1.0.0" ~doc)
    [ exploit_cmd; inject_cmd; campaign_cmd; tables_cmd; advisory_cmd; console_cmd; venom_cmd; blk_cmd; fuzz_cmd; bench_cmd; ims_cmd; defense_cmd; field_study_cmd; stats_cmd; cross_cmd; trace_cmd; vmi_cmd; attribution_cmd; backends_cmd; Scenario_cmd.cmd; Coverage_cmd.cmd ]

let () = exit (Cmd.eval main_cmd)
