(* The scenario subcommand: the .scn corpus as first-class input —
   list, check, compile, disassemble, run and gate use cases that are
   loadable data instead of OCaml modules. *)

open Cmdliner
module XV = Scn_vm.Make (Ii_exploits.Scenario_xen)
module KV = Scn_vm.Make (Ii_backends.Scenario_kvm)
module KC = Ii_backends.Backends.Kvm_campaign

let backend_to_string = function
  | Scn_bytecode.Any -> "any"
  | Scn_bytecode.Xen_only -> "xen"
  | Scn_bytecode.Kvm_only -> "kvm"

let load_all files =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest -> (
        match Scn_loader.load_file f with
        | Ok p -> go ((f, p) :: acc) rest
        | Error e -> Error e)
  in
  go [] files

(* Load-time gate: a program is checked against the action table of
   every backend its header admits. *)
let check_errors (file, p) =
  let checks =
    match Scn_bytecode.backend p with
    | Scn_bytecode.Xen_only -> [ ("xen", XV.check p) ]
    | Scn_bytecode.Kvm_only -> [ ("kvm", KV.check p) ]
    | Scn_bytecode.Any -> [ ("xen", XV.check p); ("kvm", KV.check p) ]
  in
  List.filter_map
    (fun (b, r) ->
      match r with
      | Ok () -> None
      | Error msg -> Some (Printf.sprintf "%s [%s]: %s" file b msg))
    checks

let jstr s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let jlist f xs = "[" ^ String.concat "," (List.map f xs) ^ "]"

(* --- scenario list ------------------------------------------------------- *)

let corpus_files dir =
  match Sys.readdir dir with
  | exception Sys_error e -> Error e
  | entries ->
      let files =
        Array.to_list entries
        |> List.filter (fun f ->
               Filename.check_suffix f ".scn" || Filename.check_suffix f ".scnc")
        |> List.sort compare
        |> List.map (Filename.concat dir)
      in
      Ok files

let list_cmd =
  let doc = "List the scenarios in a corpus directory." in
  let dir_arg =
    Arg.(value & pos 0 dir "corpus" & info [] ~docv:"DIR" ~doc:"Corpus directory.")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit the listing as JSON.") in
  let run dir json =
    match corpus_files dir with
    | Error e -> `Error (false, e)
    | Ok files -> (
        match load_all files with
        | Error e -> `Error (false, e)
        | Ok progs ->
            if json then
              print_endline
                (jlist
                   (fun (f, p) ->
                     Printf.sprintf
                       "{\"file\":%s,\"name\":%s,\"xsa\":%s,\"backend\":%s,\"instructions\":%d,\"expect\":%s}"
                       (jstr f)
                       (jstr (Scn_bytecode.name p))
                       (jstr (Scn_bytecode.xsa p))
                       (jstr (backend_to_string (Scn_bytecode.backend p)))
                       (Array.length p.Scn_bytecode.exploit
                       + Array.length p.Scn_bytecode.inject)
                       (jlist jstr (Scn_bytecode.expected_violations p)))
                   progs)
            else begin
              Printf.printf "%-14s %-8s %-7s %6s  %-22s %s\n" "NAME" "XSA" "BACKEND"
                "INSTRS" "EXPECT" "FILE";
              List.iter
                (fun (f, p) ->
                  Printf.printf "%-14s %-8s %-7s %6d  %-22s %s\n" (Scn_bytecode.name p)
                    (Scn_bytecode.xsa p)
                    (backend_to_string (Scn_bytecode.backend p))
                    (Array.length p.Scn_bytecode.exploit
                    + Array.length p.Scn_bytecode.inject)
                    (String.concat "," (Scn_bytecode.expected_violations p))
                    f)
                progs
            end;
            `Ok ())
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(ret (const run $ dir_arg $ json_arg))

(* --- scenario check ------------------------------------------------------ *)

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"Scenario files (.scn or .scnc).")

let check_cmd =
  let doc = "Parse, compile and gate scenarios against the backend action tables." in
  let run files =
    match load_all files with
    | Error e -> `Error (false, e)
    | Ok progs -> (
        match List.concat_map check_errors progs with
        | [] ->
            List.iter
              (fun (f, p) ->
                Printf.printf "%s: %s OK (%d instructions)\n" f (Scn_bytecode.name p)
                  (Array.length p.Scn_bytecode.exploit
                  + Array.length p.Scn_bytecode.inject))
              progs;
            `Ok ()
        | errs ->
            List.iter prerr_endline errs;
            `Error (false, Printf.sprintf "%d scenario(s) failed the load-time check" (List.length errs)))
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(ret (const run $ files_arg))

(* --- scenario compile / disasm ------------------------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Scenario file (.scn or .scnc).")

let compile_cmd =
  let doc = "Compile a scenario to flat bytecode (.scnc)." in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Output path.")
  in
  let run file out =
    match Scn_loader.load_file file with
    | Error e -> `Error (false, e)
    | Ok p ->
        let out =
          match out with
          | Some o -> o
          | None -> Filename.remove_extension file ^ ".scnc"
        in
        Scn_loader.save_bytecode out p;
        Printf.printf "%s: %s -> %s (%d bytes)\n" file (Scn_bytecode.name p) out
          (String.length (Scn_bytecode.encode p));
        `Ok ()
  in
  Cmd.v (Cmd.info "compile" ~doc) Term.(ret (const run $ file_arg $ out_arg))

let disasm_cmd =
  let doc = "Disassemble a scenario back to canonical surface text." in
  let run file =
    match Scn_loader.load_file file with
    | Error e -> `Error (false, e)
    | Ok p ->
        print_string (Scn_disasm.disasm p);
        `Ok ()
  in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(ret (const run $ file_arg))

(* --- scenario run -------------------------------------------------------- *)

let modes_of_string = function
  | "exploit" -> Some [ Campaign.Real_exploit ]
  | "injection" -> Some [ Campaign.Injection ]
  | "both" -> Some [ Campaign.Real_exploit; Campaign.Injection ]
  | _ -> None

let domains_arg =
  Arg.(
    value & opt int 2
    & info [ "domains" ] ~docv:"N"
        ~doc:"Concurrent guest domains on the testbed (>= 2: victim + attacker).")

let load_arg =
  Arg.(
    value & opt string "none"
    & info [ "load" ] ~docv:"MIX"
        ~doc:"Deterministic background workload mix every guest runs (none|default|heavy).")

let row_json ~version r =
  Printf.sprintf
    "{\"use_case\":%s,\"version\":%s,\"mode\":%s,\"rc\":%s,\"state\":%b,\"violations\":%s,\"transcript\":%s}"
    (jstr r.Campaign.r_use_case) (jstr version)
    (jstr (Campaign.mode_to_string r.Campaign.r_mode))
    (match r.Campaign.r_rc with Some rc -> string_of_int rc | None -> "null")
    r.Campaign.r_state
    (jlist (fun v -> jstr (Monitor.violation_to_string v)) r.Campaign.r_violations)
    (jlist jstr r.Campaign.r_transcript)

let print_xen_row ~verbose (r : Campaign.result_row) =
  Printf.printf "use case:        %s\n" r.Campaign.r_use_case;
  Printf.printf "Xen version:     %s\n" (Version.to_string r.Campaign.r_version);
  Printf.printf "mode:            %s\n" (Campaign.mode_to_string r.Campaign.r_mode);
  (match r.Campaign.r_rc with
  | Some rc -> Printf.printf "return code:     %d\n" rc
  | None -> ());
  Printf.printf "erroneous state: %s\n"
    (if r.Campaign.r_state then "PRESENT (audited)" else "absent");
  (match r.Campaign.r_violations with
  | [] -> Printf.printf "security:        no violation (the system handled the state)\n"
  | vs ->
      Printf.printf "security violations:\n";
      List.iter (fun v -> Printf.printf "  - %s\n" (Monitor.violation_to_string v)) vs);
  if verbose then begin
    Printf.printf "\n--- transcript ---\n";
    List.iter print_endline r.Campaign.r_transcript
  end;
  print_newline ()

let print_kvm_row ~verbose (r : KC.result_row) =
  Printf.printf "use case:        %s\n" r.KC.r_use_case;
  Printf.printf "KVM build:       %s\n"
    (Ii_backends.Backend_kvm.config_to_string r.KC.r_version);
  Printf.printf "mode:            %s\n" (Campaign.mode_to_string r.KC.r_mode);
  (match r.KC.r_rc with
  | Some rc -> Printf.printf "return code:     %d\n" rc
  | None -> ());
  Printf.printf "erroneous state: %s\n"
    (if r.KC.r_state then "PRESENT (audited)" else "absent");
  (match r.KC.r_violations with
  | [] -> Printf.printf "security:        no violation (the system handled the state)\n"
  | vs ->
      Printf.printf "security violations:\n";
      List.iter (fun v -> Printf.printf "  - %s\n" (Monitor.violation_to_string v)) vs);
  if verbose then begin
    Printf.printf "\n--- transcript ---\n";
    List.iter print_endline r.KC.r_transcript
  end;
  print_newline ()

let kvm_row_json (r : KC.result_row) =
  Printf.sprintf
    "{\"use_case\":%s,\"version\":%s,\"mode\":%s,\"rc\":%s,\"state\":%b,\"violations\":%s,\"transcript\":%s}"
    (jstr r.KC.r_use_case)
    (jstr (Ii_backends.Backend_kvm.config_to_string r.KC.r_version))
    (jstr (Campaign.mode_to_string r.KC.r_mode))
    (match r.KC.r_rc with Some rc -> string_of_int rc | None -> "null")
    r.KC.r_state
    (jlist (fun v -> jstr (Monitor.violation_to_string v)) r.KC.r_violations)
    (jlist jstr r.KC.r_transcript)

(* The concrete backend a run uses: the header's constraint wins; a
   portable (any) scenario follows --backend. *)
let effective_backend p backend_s =
  match (Scn_bytecode.backend p, backend_s) with
  | Scn_bytecode.Xen_only, ("xen" | "") -> Ok `Xen
  | Scn_bytecode.Kvm_only, ("kvm" | "") -> Ok `Kvm
  | Scn_bytecode.Any, ("xen" | "") -> Ok `Xen
  | Scn_bytecode.Any, "kvm" -> Ok `Kvm
  | tag, b ->
      Error
        (Printf.sprintf "scenario %s is %s-only; it cannot run on backend %S"
           (Scn_bytecode.name p)
           (backend_to_string tag)
           b)

let run_cmd =
  let doc = "Execute a compiled scenario in the bytecode VM against a backend." in
  let backend_arg =
    Arg.(value & opt string "" & info [ "b"; "backend" ] ~docv:"BACKEND"
           ~doc:"Backend for portable scenarios (xen|kvm); defaults to the header's constraint.")
  in
  let mode_arg =
    Arg.(value & opt string "both" & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"exploit|injection|both.")
  in
  let version_arg =
    let parse s =
      match Version.of_string s with
      | Some v -> Ok v
      | None -> Error (`Msg (Printf.sprintf "unknown Xen version %S (use 4.6, 4.8 or 4.13)" s))
    in
    let vconv = Arg.conv (parse, fun ppf v -> Version.pp ppf v) in
    Arg.(value & opt vconv Version.V4_6 & info [ "x"; "xen-version" ] ~docv:"VER"
           ~doc:"Target Xen version (4.6, 4.8, 4.13).")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit result rows as JSON.") in
  let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print transcripts.") in
  let run file backend_s mode_s version domains load_s json verbose =
    match Load_mix.of_string load_s with
    | None -> `Error (false, Printf.sprintf "unknown load mix %S (none|default|heavy)" load_s)
    | Some load -> (
        match Scn_loader.load_file file with
        | Error e -> `Error (false, e)
        | Ok p -> (
            match modes_of_string mode_s with
            | None ->
                `Error (false, Printf.sprintf "unknown mode %S (exploit|injection|both)" mode_s)
            | Some modes -> (
                match effective_backend p backend_s with
                | Error e -> `Error (false, e)
                | Ok `Xen -> (
                    match XV.check p with
                    | Error e -> `Error (false, e)
                    | Ok () ->
                        let uc = XV.use_case p in
                        let rows =
                          List.map (fun m -> Campaign.run ~domains ~load uc m version) modes
                        in
                        if json then
                          print_endline
                            (jlist (row_json ~version:(Version.to_string version)) rows)
                        else List.iter (print_xen_row ~verbose) rows;
                        `Ok ())
                | Ok `Kvm -> (
                    match KV.check p with
                    | Error e -> `Error (false, e)
                    | Ok () ->
                        let uc = KV.use_case p in
                        let rows =
                          List.map
                            (fun m ->
                              KC.run ~domains ~load uc m Ii_backends.Backend_kvm.rq1_config)
                            modes
                        in
                        if json then print_endline (jlist kvm_row_json rows)
                        else List.iter (print_kvm_row ~verbose) rows;
                        `Ok ()))))
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ file_arg $ backend_arg $ mode_arg $ version_arg $ domains_arg $ load_arg
        $ json_arg $ verbose_arg))

(* --- scenario gate ------------------------------------------------------- *)

(* The equivalence gate behind the CI step: a compiled scenario must
   reproduce the hand-written module's result rows exactly — same
   transcript bytes, states, return codes, violations and telemetry —
   on every configuration, and its observed violations on the
   vulnerable configuration must cover the header's [expect] classes. *)
let gate_program (file, p) =
  let errs = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> errs := Printf.sprintf "%s: %s" file m :: !errs) fmt in
  (match List.concat_map check_errors [ (file, p) ] with
  | [] -> ()
  | es -> List.iter (fun e -> errs := e :: !errs) es);
  let name = Scn_bytecode.name p in
  let expect = Scn_bytecode.expected_violations p in
  let check_expect observed =
    let classes = List.map Scn_ast.violation_class observed in
    List.iter
      (fun c ->
        if not (List.mem c classes) then
          fail "expected violation class %s not observed on the vulnerable config (saw: %s)" c
            (match classes with [] -> "none" | cs -> String.concat ", " cs))
      expect
  in
  if !errs = [] then begin
    match Scn_bytecode.backend p with
    | Scn_bytecode.Xen_only | Scn_bytecode.Any -> (
        match
          List.find_opt
            (fun uc -> uc.Campaign.uc_name = name)
            Ii_exploits.All_exploits.use_cases
        with
        | None -> fail "no legacy module named %s to gate against" name
        | Some legacy ->
            let uc = XV.use_case p in
            List.iter
              (fun version ->
                List.iter
                  (fun mode ->
                    let a = Campaign.run legacy mode version in
                    let b = Campaign.run uc mode version in
                    if a <> b then
                      fail "diverges from the legacy module on Xen %s / %s"
                        (Version.to_string version) (Campaign.mode_to_string mode))
                  [ Campaign.Real_exploit; Campaign.Injection ])
              Version.all;
            check_expect
              (Campaign.run uc Campaign.Injection Substrate_xen.rq1_config).Campaign.r_violations)
    | Scn_bytecode.Kvm_only -> (
        match
          List.find_opt
            (fun uc -> uc.KC.uc_name = name)
            Ii_backends.Kvm_use_cases.use_cases
        with
        | None -> fail "no legacy module named %s to gate against" name
        | Some legacy ->
            let uc = KV.use_case p in
            List.iter
              (fun config ->
                List.iter
                  (fun mode ->
                    let a = KC.run legacy mode config in
                    let b = KC.run uc mode config in
                    if a <> b then
                      fail "diverges from the legacy module on KVM %s / %s"
                        (Ii_backends.Backend_kvm.config_to_string config)
                        (Campaign.mode_to_string mode))
                  [ Campaign.Real_exploit; Campaign.Injection ])
              Ii_backends.Backend_kvm.configs;
            check_expect
              (KC.run uc Campaign.Injection Ii_backends.Backend_kvm.rq1_config).KC.r_violations)
  end;
  List.rev !errs

let gate_cmd =
  let doc =
    "Run each scenario through the bytecode VM and the same-named hand-written module on \
     every configuration and fail on any divergence (the CI corpus gate)."
  in
  let run files =
    match load_all files with
    | Error e -> `Error (false, e)
    | Ok progs -> (
        match List.concat_map gate_program progs with
        | [] ->
            List.iter
              (fun (f, p) ->
                Printf.printf "%s: %s matches the legacy module on all configurations\n" f
                  (Scn_bytecode.name p))
              progs;
            `Ok ()
        | errs ->
            List.iter prerr_endline errs;
            `Error (false, Printf.sprintf "%d gate failure(s)" (List.length errs)))
  in
  Cmd.v (Cmd.info "gate" ~doc) Term.(ret (const run $ files_arg))

(* --- scenario crossdomain ------------------------------------------------ *)

(* The cross-domain gate behind the CI step: each scenario runs on an
   N-domain testbed under background load and must (a) produce its
   expected violation classes with at least one violation landing in a
   guest domain (the bystander casualty), (b) record and replay byte
   for byte with every domain live, and (c) attribute every violation
   to an originating action through the provenance graph — an intrusion
   found in a bystander domain that cannot be traced to the injector is
   a gate failure. Xen-capable scenarios only: the gate exercises the
   grant-table/event-channel/device-model surfaces. *)
let crossdomain_program ~domains ~load (file, p) =
  let errs = ref [] in
  let fail fmt =
    Printf.ksprintf (fun m -> errs := Printf.sprintf "%s: %s" file m :: !errs) fmt
  in
  (match XV.check p with
  | Error e -> fail "%s" e
  | Ok () -> (
      let uc = XV.use_case p in
      let version = Substrate_xen.rq1_config in
      (* (a) blast radius: expected classes, landing in a guest domain *)
      let row = Campaign.run ~domains ~load uc Campaign.Injection version in
      let classes = List.map Scn_ast.violation_class row.Campaign.r_violations in
      List.iter
        (fun c ->
          if not (List.mem c classes) then
            fail "expected violation class %s not observed at %d domains under %s load" c
              domains (Load_mix.to_string load))
        (Scn_bytecode.expected_violations p);
      if not (List.exists (fun (d, vs) -> d <> "host" && vs <> []) row.Campaign.r_domains)
      then fail "no violation landed in a guest domain (no bystander casualty)";
      (* (b) replay determinism with every domain live *)
      List.iter
        (fun mode ->
          let r = Trace_driver.record ~domains ~load uc mode version in
          let rp = Trace_driver.replay r in
          if not rp.Trace_driver.rp_equal then
            fail "replay diverged in final state (%s mode)" (Campaign.mode_to_string mode);
          if not rp.Trace_driver.rp_vts_equal then
            fail "replay diverged in virtual timestamps (%s mode)" (Campaign.mode_to_string mode))
        [ Campaign.Real_exploit; Campaign.Injection ];
      (* (c) attribution completeness *)
      let report = Attribution.attribute ~domains ~load uc Campaign.Injection version in
      if not (Attribution.complete report) then
        fail "a violation in the blast radius has no attributed origin";
      match !errs with
      | [] ->
          Printf.printf
            "%s: %s OK at %d domains / %s load (%d violation(s), %d affected domain(s))\n"
            file (Scn_bytecode.name p)
            domains (Load_mix.to_string load)
            (List.length row.Campaign.r_violations)
            (List.length row.Campaign.r_domains)
      | _ -> ()));
  List.rev !errs

let crossdomain_cmd =
  let doc =
    "Cross-domain gate: run each scenario on a multi-domain testbed under background load; \
     fail unless the blast radius, replay determinism and per-violation attribution all \
     hold (the CI cross-domain step)."
  in
  let run files domains load_s =
    match Load_mix.of_string load_s with
    | None -> `Error (false, Printf.sprintf "unknown load mix %S (none|default|heavy)" load_s)
    | Some load -> (
        if domains < 2 then `Error (false, "need at least 2 guest domains")
        else
          match load_all files with
          | Error e -> `Error (false, e)
          | Ok progs -> (
              match List.concat_map (crossdomain_program ~domains ~load) progs with
              | [] -> `Ok ()
              | errs ->
                  List.iter prerr_endline errs;
                  `Error
                    (false, Printf.sprintf "%d cross-domain gate failure(s)" (List.length errs))))
  in
  Cmd.v
    (Cmd.info "crossdomain" ~doc)
    Term.(ret (const run $ files_arg $ domains_arg $ load_arg))

let cmd =
  let doc = "Work with compiled intrusion scenarios (.scn corpus)." in
  Cmd.group
    (Cmd.info "scenario" ~doc)
    [ list_cmd; check_cmd; compile_cmd; disasm_cmd; run_cmd; gate_cmd; crossdomain_cmd ]
