(* The coverage subcommand: deterministic coverage maps over the .scn
   corpus — per-scenario bits and novelty, the cumulative union,
   differential coverage between two saved runs, and the CI gate
   (determinism check, non-empty first-run novelty, pinned bit floor). *)

open Cmdliner

module XV = Scenario_cmd.XV
module KV = Scenario_cmd.KV
module KC = Scenario_cmd.KC

let jstr = Scenario_cmd.jstr
let jlist = Scenario_cmd.jlist

(* One result row, projected out of whichever backend's campaign ran it. *)
type srow = {
  sr_name : string;
  sr_mode : string;
  sr_bits : int;
  sr_novelty : int;
  sr_hash : int64;
}

let modes = [ Campaign.Real_exploit; Campaign.Injection ]

let xen_run ?workers ?pooled ~domains ~load progs =
  let ucs = List.map XV.use_case progs in
  let acc = ref Coverage.empty in
  let rows =
    Campaign.run_matrix ?workers ?pooled ~domains ~load ~coverage:acc ucs
      ~versions:[ Substrate_xen.rq1_config ] ~modes
  in
  let srows =
    List.map
      (fun r ->
        let m = Option.value r.Campaign.r_coverage ~default:Coverage.empty in
        {
          sr_name = r.Campaign.r_use_case;
          sr_mode = Campaign.mode_to_string r.Campaign.r_mode;
          sr_bits = Coverage.popcount m;
          sr_novelty = r.Campaign.r_cov_novelty;
          sr_hash = Coverage.hash m;
        })
      rows
  in
  (srows, !acc)

let kvm_run ?workers ?pooled ~domains ~load progs =
  let ucs = List.map KV.use_case progs in
  let acc = ref Coverage.empty in
  let rows =
    KC.run_matrix ?workers ?pooled ~domains ~load ~coverage:acc ucs
      ~versions:[ Ii_backends.Backend_kvm.rq1_config ] ~modes
  in
  let srows =
    List.map
      (fun r ->
        let m = Option.value r.KC.r_coverage ~default:Coverage.empty in
        {
          sr_name = r.KC.r_use_case;
          sr_mode = Campaign.mode_to_string r.KC.r_mode;
          sr_bits = Coverage.popcount m;
          sr_novelty = r.KC.r_cov_novelty;
          sr_hash = Coverage.hash m;
        })
      rows
  in
  (srows, !acc)

(* The corpus subset a backend can execute, already checked against its
   action table. *)
let compatible_progs backend progs =
  List.filter_map
    (fun (file, p) ->
      match backend with
      | `Xen -> (
          if not (XV.compatible p) then None
          else match XV.check p with Ok () -> Some p | Error e -> failwith (file ^ ": " ^ e))
      | `Kvm -> (
          if not (KV.compatible p) then None
          else match KV.check p with Ok () -> Some p | Error e -> failwith (file ^ ": " ^ e)))
    progs

let srow_json r =
  Printf.sprintf "{\"scenario\":%s,\"mode\":%s,\"bits\":%d,\"novelty\":%d,\"hash\":\"%016Lx\"}"
    (jstr r.sr_name) (jstr r.sr_mode) r.sr_bits r.sr_novelty r.sr_hash

(* Per-scenario novelty total: the rows of one scenario are contiguous
   (run_matrix deals cells use-case-major), so summing novelty by name
   is the "what did this scenario add on first sight" signal. *)
let novelty_by_scenario srows =
  List.fold_left
    (fun acc r ->
      match List.assoc_opt r.sr_name acc with
      | Some n -> (r.sr_name, n + r.sr_novelty) :: List.remove_assoc r.sr_name acc
      | None -> (r.sr_name, r.sr_novelty) :: acc)
    [] srows
  |> List.rev

(* --- coverage diff ------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let print_direction label d =
  Printf.printf "%s: %d bit(s)\n" label (Coverage.popcount d);
  List.iter
    (fun (region, bits) -> if bits > 0 then Printf.printf "    %-10s %d\n" region bits)
    (Coverage.region_bits d)

let run_diff file_a file_b json =
  let load path =
    match Coverage.of_json_map (read_file path) with
    | Ok m -> Ok m
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
  in
  match (load file_a, load file_b) with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok a, Ok b ->
      let only_a = Coverage.diff a b and only_b = Coverage.diff b a in
      if json then
        Printf.printf
          "{\"a\":%s,\"b\":%s,\"only_a\":%s,\"only_b\":%s,\"equal\":%b}\n" (jstr file_a)
          (jstr file_b) (Coverage.to_json only_a) (Coverage.to_json only_b)
          (Coverage.equal a b)
      else begin
        Printf.printf "A = %s (%d bits)\nB = %s (%d bits)\n" file_a (Coverage.popcount a)
          file_b (Coverage.popcount b);
        print_direction "only in A" only_a;
        print_direction "only in B" only_b;
        if Coverage.equal a b then print_endline "maps are identical"
      end;
      `Ok ()

(* --- the corpus sweep + gate --------------------------------------------- *)

let run_corpus dir backend_s domains load json min_bits =
  let backend =
    match backend_s with
    | "xen" -> Ok `Xen
    | "kvm" -> Ok `Kvm
    | b -> Error (Printf.sprintf "unknown backend %S (xen|kvm)" b)
  in
  match backend with
  | Error e -> `Error (false, e)
  | Ok backend -> (
      match Scenario_cmd.corpus_files dir with
      | Error e -> `Error (false, e)
      | Ok files -> (
          match Scenario_cmd.load_all files with
          | Error e -> `Error (false, e)
          | Ok progs -> (
              match compatible_progs backend progs with
              | exception Failure e -> `Error (false, e)
              | [] -> `Error (false, Printf.sprintf "no %s-compatible scenarios in %s" backend_s dir)
              | progs ->
                  let run = match backend with `Xen -> xen_run | `Kvm -> kvm_run in
                  (* the run whose rows we report: sequential, fresh boots *)
                  let srows, cum = run ~workers:1 ~domains ~load progs in
                  (* the determinism gate re-runs the same matrix sharded
                     (3 workers, pooled forks) and pooled-sequential; all
                     three cumulative maps must be byte-identical *)
                  let _, cum_sharded = run ~workers:3 ~domains ~load progs in
                  let _, cum_pooled = run ~workers:1 ~pooled:true ~domains ~load progs in
                  let deterministic =
                    Coverage.equal cum cum_sharded && Coverage.equal cum cum_pooled
                  in
                  let no_novelty =
                    List.filter_map
                      (fun (name, n) -> if n = 0 then Some name else None)
                      (novelty_by_scenario srows)
                  in
                  let bits = Coverage.popcount cum in
                  if json then
                    Printf.printf
                      "{\"backend\":%s,\"scenarios\":%s,\"cumulative\":%s,\"deterministic\":%b,\
                       \"scenarios_without_novelty\":%s}\n"
                      (jstr backend_s) (jlist srow_json srows) (Coverage.to_json cum)
                      deterministic
                      (jlist jstr no_novelty)
                  else begin
                    Printf.printf "%-18s %-10s %6s %8s  %s\n" "SCENARIO" "MODE" "BITS"
                      "NOVELTY" "HASH";
                    List.iter
                      (fun r ->
                        Printf.printf "%-18s %-10s %6d %8d  %016Lx\n" r.sr_name r.sr_mode
                          r.sr_bits r.sr_novelty r.sr_hash)
                      srows;
                    Printf.printf "\ncumulative: %d / %d bits (hash %016Lx)\n" bits
                      Coverage.size_bits (Coverage.hash cum);
                    List.iter
                      (fun (region, n) -> Printf.printf "  %-10s %d\n" region n)
                      (Coverage.region_bits cum);
                    Printf.printf "deterministic (workers 1 = workers 3 = pooled): %b\n"
                      deterministic
                  end;
                  if not deterministic then
                    `Error (false, "coverage maps diverged across scheduling strategies")
                  else if no_novelty <> [] then
                    `Error
                      ( false,
                        Printf.sprintf "scenario(s) with no first-run novelty: %s"
                          (String.concat ", " no_novelty) )
                  else if bits < min_bits then
                    `Error
                      ( false,
                        Printf.sprintf "cumulative coverage %d bit(s) below the floor (%d)" bits
                          min_bits )
                  else `Ok ())))

let cmd =
  let doc =
    "Deterministic corpus coverage: per-scenario maps and novelty, the cumulative union, \
     and the CI determinism/floor gate."
  in
  let dir_arg =
    Arg.(value & pos 0 dir "corpus" & info [] ~docv:"DIR" ~doc:"Corpus directory.")
  in
  let backend_arg =
    Arg.(
      value & opt string "xen"
      & info [ "b"; "backend" ] ~docv:"BACKEND" ~doc:"Backend to sweep (xen|kvm).")
  in
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let min_bits_arg =
    Arg.(
      value & opt int 0
      & info [ "min-bits" ] ~docv:"N"
          ~doc:"Fail unless the cumulative map covers at least $(docv) bits (the CI floor).")
  in
  let diff_arg =
    Arg.(
      value
      & opt (some (pair ~sep:',' file file)) None
      & info [ "diff" ] ~docv:"A.json,B.json"
          ~doc:
            "Differential coverage: compare the cumulative maps of two saved --json reports \
             and print the bits unique to each side (no campaign runs).")
  in
  let run dir backend_s domains load_s json min_bits diff =
    match diff with
    | Some (a, b) -> run_diff a b json
    | None -> (
        match Load_mix.of_string load_s with
        | None -> `Error (false, Printf.sprintf "unknown load mix %S (none|default|heavy)" load_s)
        | Some load -> run_corpus dir backend_s domains load json min_bits)
  in
  Cmd.v
    (Cmd.info "coverage" ~doc)
    Term.(
      ret
        (const run $ dir_arg $ backend_arg $ Scenario_cmd.domains_arg $ Scenario_cmd.load_arg
        $ json_arg $ min_bits_arg $ diff_arg))
