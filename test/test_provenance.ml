(* Provenance tests: byte-granular taint mechanics, per-violation
   attribution across all six use cases (every Monitor violation and
   VMI finding must resolve to a non-empty origin set naming the
   injecting action), byte-for-byte causal-graph replay, and the
   provenance-off purity property (attaching the shadow must not change
   a trial's result row). *)

open Ii_trace
open Ii_xen
open Ii_core
module All = Ii_exploits.All_exploits
module B = Ii_backends.Backends
module K = Ii_backends.Backend_kvm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let uc name =
  match All.find name with Some uc -> uc | None -> Alcotest.fail ("no use case " ^ name)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* --- taint mechanics ----------------------------------------------------- *)

let test_taint_observe_silent () =
  let p = Provenance.create () in
  Provenance.with_origin p (Provenance.Injector_action 1) (fun () ->
      Provenance.taint p ~mfn:7 ~off:16 ~len:8);
  check_int "tainted bytes" 8 (Provenance.tainted_bytes p);
  check_bool "silent before any read" true
    (Provenance.silent p = [ (Provenance.Injector_action 1, 8) ]);
  Provenance.observe p ~consumer:Provenance.Pt_walk ~mfn:7 ~off:16 ~len:8;
  check_int "one edge" 1 (Provenance.edge_count p);
  check_bool "no longer silent" true (Provenance.silent p = []);
  check_bool "origin reaches the walker" true
    (Provenance.origins_for p (fun c -> c = Provenance.Pt_walk)
    = [ Provenance.Injector_action 1 ]);
  (* reads of untainted ranges must not fabricate edges *)
  Provenance.observe p ~consumer:Provenance.Pt_walk ~mfn:9 ~off:0 ~len:8;
  check_int "clean bytes add no edge" 1 (Provenance.edge_count p)

let test_overwrite_and_reset_clear () =
  let p = Provenance.create () in
  Provenance.with_origin p (Provenance.Guest_write 2) (fun () ->
      Provenance.taint p ~mfn:3 ~off:0 ~len:16);
  (* an unlabelled overwrite clears the taint it covers *)
  Provenance.taint p ~mfn:3 ~off:0 ~len:8;
  check_int "half cleared" 8 (Provenance.tainted_bytes p);
  Provenance.observe p ~consumer:Provenance.Monitor_scan ~mfn:3 ~off:8 ~len:8;
  Provenance.reset_to_baseline p;
  check_int "reset clears taint" 0 (Provenance.tainted_bytes p);
  check_int "reset clears edges" 0 (Provenance.edge_count p)

let test_innermost_origin_wins () =
  let p = Provenance.create () in
  Provenance.with_origin p (Provenance.Hypercall_arg 13) (fun () ->
      Provenance.with_origin p (Provenance.Injector_action 4) (fun () ->
          Provenance.taint p ~mfn:1 ~off:0 ~len:4));
  Provenance.observe p ~consumer:Provenance.Idt_gate ~mfn:1 ~off:0 ~len:4;
  check_bool "injector action overrides the hypercall origin" true
    (Provenance.origins_read p = [ Provenance.Injector_action 4 ])

(* --- attribution: all six use cases -------------------------------------- *)

let xen_cases = [ "XSA-212-crash"; "XSA-212-priv"; "XSA-148-priv"; "XSA-182-test" ]

let test_xen_attribution_names_injector () =
  List.iter
    (fun name ->
      let r = Attribution.attribute (uc name) Campaign.Injection Version.V4_6 in
      check_bool (name ^ ": has violation or finding rows") true
        (List.exists (fun row -> row.Attribution.a_kind <> "silent") r.Attribution.ar_rows);
      check_bool (name ^ ": complete") true (Attribution.complete r);
      List.iter
        (fun row ->
          if row.Attribution.a_kind <> "silent" then begin
            check_bool
              (Printf.sprintf "%s: %S has origins" name row.Attribution.a_what)
              true
              (row.Attribution.a_origins <> []);
            check_bool
              (Printf.sprintf "%s: %S names the injecting action" name row.Attribution.a_what)
              true
              (List.exists (starts_with ~prefix:"injector#") row.Attribution.a_origins)
          end)
        r.Attribution.ar_rows)
    xen_cases

let test_kvm_attribution_names_injector () =
  List.iter
    (fun kuc ->
      let name = kuc.B.Kvm_campaign.uc_name in
      let r = B.Kvm_attribution.attribute kuc Campaign.Injection K.Stock in
      check_bool (name ^ ": has violation or finding rows") true
        (List.exists
           (fun row -> row.B.Kvm_attribution.a_kind <> "silent")
           r.B.Kvm_attribution.ar_rows);
      check_bool (name ^ ": complete") true (B.Kvm_attribution.complete r);
      List.iter
        (fun row ->
          if row.B.Kvm_attribution.a_kind <> "silent" then
            check_bool
              (Printf.sprintf "%s: %S names the injecting action" name
                 row.B.Kvm_attribution.a_what)
              true
              (List.exists (starts_with ~prefix:"injector#") row.B.Kvm_attribution.a_origins))
        r.B.Kvm_attribution.ar_rows)
    Ii_backends.Kvm_use_cases.use_cases

let test_attribution_deterministic () =
  let run () =
    Attribution.to_json
      (Attribution.attribute_all
         (List.map uc xen_cases)
         Campaign.Injection Version.V4_6)
  in
  check_string "same JSON both runs" (run ()) (run ())

(* --- replay: the causal graph must reproduce byte for byte --------------- *)

let test_replay_graph_identical () =
  List.iter
    (fun uc0 ->
      let r = Trace_driver.record ~provenance:true uc0 Campaign.Injection Version.V4_6 in
      check_bool (uc0.Campaign.uc_name ^ ": graph exported") true
        (r.Trace_driver.rec_prov <> None);
      let o = Trace_driver.replay r in
      check_bool (uc0.Campaign.uc_name ^ ": final state reproduced") true
        o.Trace_driver.rp_equal;
      check_bool (uc0.Campaign.uc_name ^ ": graph byte-for-byte") true
        o.Trace_driver.rp_prov_equal)
    All.use_cases

let test_kvm_replay_graph_identical () =
  List.iter
    (fun kuc ->
      let r = B.Kvm_trace.record ~provenance:true kuc Campaign.Injection K.Stock in
      check_bool (kuc.B.Kvm_campaign.uc_name ^ ": graph exported") true
        (r.B.Kvm_trace.rec_prov <> None);
      let o = B.Kvm_trace.replay r in
      check_bool (kuc.B.Kvm_campaign.uc_name ^ ": graph byte-for-byte") true
        o.B.Kvm_trace.rp_prov_equal)
    Ii_backends.Kvm_use_cases.use_cases

(* --- purity: the shadow must not perturb trials -------------------------- *)

let strip_row (r : Campaign.result_row) =
  ( r.Campaign.r_use_case,
    r.Campaign.r_version,
    r.Campaign.r_mode,
    r.Campaign.r_state,
    r.Campaign.r_state_evidence,
    r.Campaign.r_violations,
    r.Campaign.r_transcript,
    r.Campaign.r_rc,
    r.Campaign.r_telemetry )

let test_provenance_does_not_change_results () =
  List.iter
    (fun uc0 ->
      let off = Trace_driver.record uc0 Campaign.Injection Version.V4_6 in
      let on = Trace_driver.record ~provenance:true uc0 Campaign.Injection Version.V4_6 in
      check_bool (uc0.Campaign.uc_name ^ ": row unchanged") true
        (strip_row off.Trace_driver.rec_row = strip_row on.Trace_driver.rec_row);
      check_bool (uc0.Campaign.uc_name ^ ": final snapshot unchanged") true
        (off.Trace_driver.rec_final = on.Trace_driver.rec_final);
      check_bool (uc0.Campaign.uc_name ^ ": plain recording has no graph") true
        (off.Trace_driver.rec_prov = None))
    All.use_cases

let () =
  Alcotest.run "provenance"
    [
      ( "taint",
        [
          Alcotest.test_case "taint/observe/silent" `Quick test_taint_observe_silent;
          Alcotest.test_case "overwrite and reset clear" `Quick test_overwrite_and_reset_clear;
          Alcotest.test_case "innermost origin wins" `Quick test_innermost_origin_wins;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "xen use cases name the injector" `Quick
            test_xen_attribution_names_injector;
          Alcotest.test_case "kvm use cases name the injector" `Quick
            test_kvm_attribution_names_injector;
          Alcotest.test_case "deterministic JSON" `Quick test_attribution_deterministic;
        ] );
      ( "replay",
        [
          Alcotest.test_case "xen graphs replay byte-for-byte" `Quick
            test_replay_graph_identical;
          Alcotest.test_case "kvm graphs replay byte-for-byte" `Quick
            test_kvm_replay_graph_identical;
        ] );
      ( "purity",
        [
          Alcotest.test_case "provenance does not change results" `Quick
            test_provenance_does_not_change_results;
        ] );
    ]
