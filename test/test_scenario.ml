(* The scenario subsystem (lib/scenario): the DSL front end, the flat
   bytecode, the load-time checker and the register VM.

   - corpus roundtrips: parse -> compile -> encode -> decode and
     parse -> compile -> disasm -> reparse -> recompile are identities
     over every file in corpus/
   - totality: the parser, decoder and checker never raise on arbitrary
     or mutated input — they return [Error] with a position
   - golden equality: each compiled scenario reproduces its legacy
     hand-written module's result rows and monitor snapshots exactly,
     on both backends and in both modes *)

open Ii_xen
open Ii_guest
open Ii_core
open Ii_scenario

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module SX = Ii_exploits.Scenario_xen
module SK = Ii_backends.Scenario_kvm
module XV = Scn_vm.Make (SX)
module KV = Scn_vm.Make (SK)
module KC = Ii_backends.Backends.Kvm_campaign
module BK = Ii_backends.Backend_kvm

(* [dune runtest] runs from _build/default/test (corpus is a sibling,
   materialized by the dune deps); [dune exec] runs from the root. *)
let corpus_dir = if Sys.file_exists "corpus" then "corpus" else "../corpus"

let corpus_files =
  lazy
    (Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".scn")
    |> List.sort compare
    |> List.map (Filename.concat corpus_dir))

let read_file f = In_channel.with_open_bin f In_channel.input_all
let corpus_texts = lazy (List.map (fun f -> (f, read_file f)) (Lazy.force corpus_files))

let compile_exn (f, text) =
  match Scn_compile.compile_string text with
  | Ok p -> p
  | Error e -> Alcotest.failf "%s: %s" f (Scn_ast.error_to_string e)

let corpus_programs = lazy (List.map (fun ft -> (fst ft, compile_exn ft)) (Lazy.force corpus_texts))

(* --- corpus shape --------------------------------------------------------- *)

let test_corpus_complete () =
  let progs = Lazy.force corpus_programs in
  check_int "eight scenarios in the corpus" 8 (List.length progs);
  let names = List.map (fun (_, p) -> Scn_bytecode.name p) progs in
  check_bool "names are unique" true (List.sort_uniq compare names = List.sort compare names);
  List.iter
    (fun n -> check_bool (n ^ " present") true (List.mem n names))
    [
      "XSA-148-priv"; "XSA-182-test"; "XSA-212-crash"; "XSA-212-priv";
      "KVM-VMCS"; "KVM-IDT"; "GNT-XDOM"; "VENOM-dm";
    ]

let check_for p =
  match Scn_bytecode.backend p with
  | Scn_bytecode.Kvm_only -> KV.check p
  | Scn_bytecode.Xen_only | Scn_bytecode.Any -> XV.check p

let test_corpus_checks () =
  List.iter
    (fun (f, p) ->
      match check_for p with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s failed the load-time check: %s" f e)
    (Lazy.force corpus_programs)

(* --- roundtrips ------------------------------------------------------------ *)

let test_encode_decode_roundtrip () =
  List.iter
    (fun (f, p) ->
      match Scn_bytecode.decode (Scn_bytecode.encode p) with
      | Ok p' -> check_bool (f ^ ": decode . encode = id") true (p' = p)
      | Error e -> Alcotest.failf "%s: decode failed: %s" f e)
    (Lazy.force corpus_programs)

let test_disasm_reparse_roundtrip () =
  List.iter
    (fun (f, p) ->
      let text = Scn_disasm.disasm p in
      match Scn_compile.compile_string text with
      | Ok p' -> check_bool (f ^ ": compile . disasm = id") true (p' = p)
      | Error e -> Alcotest.failf "%s: disassembly does not reparse: %s\n%s" f
                     (Scn_ast.error_to_string e) text)
    (Lazy.force corpus_programs)

let test_loader_accepts_both_forms () =
  List.iter
    (fun (f, p) ->
      match Scn_loader.load_string (Scn_bytecode.encode p) with
      | Ok p' -> check_bool (f ^ ": loader takes bytecode") true (p' = p)
      | Error e -> Alcotest.failf "%s: loader rejected bytecode: %s" f e)
    (Lazy.force corpus_programs);
  List.iter
    (fun (f, text) ->
      match Scn_loader.load_string text with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: loader rejected source: %s" f e)
    (Lazy.force corpus_texts)

(* --- totality properties --------------------------------------------------- *)

let ok_error_with_position s =
  match Scn_parser.parse s with
  | Ok _ -> true
  | Error e -> e.Scn_ast.at.Scn_ast.line >= 1 && e.Scn_ast.at.Scn_ast.col >= 1
  | exception _ -> false

let prop_parser_total_random =
  QCheck.Test.make ~name:"parser is total on arbitrary strings" ~count:500
    QCheck.(string)
    ok_error_with_position

(* Mutations of real corpus text probe deep into the grammar: a random
   splice lands mid-statement far more often than a random string. *)
let mutated_corpus_gen =
  QCheck.Gen.(
    let* which = int_bound 5 in
    let* pos = int_bound 4096 in
    let* what = int_bound 2 in
    let* c = char in
    return (which, pos, what, c))

let mutate (which, pos, what, c) =
  let texts = Lazy.force corpus_texts in
  let _, text = List.nth texts (which mod List.length texts) in
  let n = String.length text in
  let pos = pos mod n in
  match what with
  | 0 -> String.sub text 0 pos (* truncate *)
  | 1 -> String.mapi (fun i ch -> if i = pos then c else ch) text (* flip *)
  | _ -> String.sub text 0 pos ^ String.make 1 c ^ String.sub text pos (n - pos) (* insert *)

let prop_parser_total_mutated =
  QCheck.Test.make ~name:"parser is total on mutated corpus text" ~count:500
    (QCheck.make mutated_corpus_gen)
    (fun m -> ok_error_with_position (mutate m))

let decode_total s =
  match Scn_bytecode.decode s with Ok _ | Error _ -> true | exception _ -> false

let prop_decoder_total_random =
  QCheck.Test.make ~name:"decoder is total on arbitrary bytes" ~count:500
    QCheck.(string)
    decode_total

let prop_decoder_total_magic =
  QCheck.Test.make ~name:"decoder is total behind a valid magic" ~count:500
    QCheck.(string)
    (fun s -> decode_total (Scn_bytecode.magic ^ s))

(* Corrupt real bytecode: whatever still decodes must also pass through
   the checker without raising. *)
let prop_checker_total_corrupted =
  QCheck.Test.make ~name:"checker is total on corrupted bytecode" ~count:500
    QCheck.(triple (int_bound 5) (int_bound 65535) (int_bound 255))
    (fun (which, pos, byte) ->
      let progs = Lazy.force corpus_programs in
      let _, p = List.nth progs (which mod List.length progs) in
      let data = Bytes.of_string (Scn_bytecode.encode p) in
      let pos = pos mod Bytes.length data in
      Bytes.set data pos (Char.chr byte);
      match Scn_bytecode.decode (Bytes.to_string data) with
      | Error _ -> true
      | Ok p' -> (
          match (XV.check p', KV.check p') with
          | (Ok () | Error _), (Ok () | Error _) -> true)
      | exception _ -> false)

(* --- golden equality vs the legacy modules -------------------------------- *)

let modes = [ Campaign.Real_exploit; Campaign.Injection ]

let xen_program name =
  let _, p =
    List.find (fun (_, p) -> Scn_bytecode.name p = name) (Lazy.force corpus_programs)
  in
  check_bool (name ^ " checks") true (XV.check p = Ok ());
  XV.use_case p

let legacy_xen name =
  List.find (fun uc -> uc.Campaign.uc_name = name) Ii_exploits.All_exploits.use_cases

let test_golden_xen () =
  List.iter
    (fun name ->
      let scn = xen_program name and legacy = legacy_xen name in
      List.iter
        (fun version ->
          List.iter
            (fun mode ->
              let a = Campaign.run legacy mode version in
              let b = Campaign.run scn mode version in
              check_bool
                (Printf.sprintf "%s %s %s: result rows identical" name
                   (Version.to_string version) (Campaign.mode_to_string mode))
                true (a = b))
            modes)
        [ Version.V4_6; Version.V4_13 ])
    [ "XSA-148-priv"; "XSA-182-test"; "XSA-212-crash"; "XSA-212-priv" ]

let test_golden_xen_snapshots () =
  List.iter
    (fun name ->
      let scn = xen_program name and legacy = legacy_xen name in
      List.iter
        (fun mode ->
          let tb_a = Testbed.create Version.V4_6 in
          ignore (Campaign.run ~tb:tb_a legacy mode Version.V4_6);
          let tb_b = Testbed.create Version.V4_6 in
          ignore (Campaign.run ~tb:tb_b scn mode Version.V4_6);
          check_bool
            (Printf.sprintf "%s %s: final snapshots identical" name
               (Campaign.mode_to_string mode))
            true
            (Substrate_xen.snapshot tb_a = Substrate_xen.snapshot tb_b))
        modes)
    [ "XSA-148-priv"; "XSA-182-test"; "XSA-212-crash"; "XSA-212-priv" ]

let kvm_program name =
  let _, p =
    List.find (fun (_, p) -> Scn_bytecode.name p = name) (Lazy.force corpus_programs)
  in
  check_bool (name ^ " checks") true (KV.check p = Ok ());
  KV.use_case p

let legacy_kvm name =
  List.find (fun uc -> uc.KC.uc_name = name) Ii_backends.Kvm_use_cases.use_cases

let test_golden_kvm () =
  List.iter
    (fun name ->
      let scn = kvm_program name and legacy = legacy_kvm name in
      List.iter
        (fun mode ->
          let a = KC.run legacy mode BK.Stock in
          let b = KC.run scn mode BK.Stock in
          check_bool
            (Printf.sprintf "%s %s: result rows identical" name
               (Campaign.mode_to_string mode))
            true (a = b))
        modes)
    [ "KVM-VMCS"; "KVM-IDT" ]

let test_golden_kvm_snapshots () =
  List.iter
    (fun name ->
      let scn = kvm_program name and legacy = legacy_kvm name in
      List.iter
        (fun mode ->
          let tb_a = BK.create BK.Stock in
          ignore (KC.run ~tb:tb_a legacy mode BK.Stock);
          let tb_b = BK.create BK.Stock in
          ignore (KC.run ~tb:tb_b scn mode BK.Stock);
          check_bool
            (Printf.sprintf "%s %s: final snapshots identical" name
               (Campaign.mode_to_string mode))
            true
            (BK.snapshot tb_a = BK.snapshot tb_b))
        modes)
    [ "KVM-VMCS"; "KVM-IDT" ]

(* The corpus through the scheduler's batching path: same rows as the
   one-at-a-time runs, so compiled scenarios shard like legacy modules. *)
let test_run_corpus_matches_run () =
  let progs =
    List.filter_map
      (fun (_, p) ->
        match Scn_bytecode.backend p with Scn_bytecode.Xen_only -> Some p | _ -> None)
      (Lazy.force corpus_programs)
  in
  let rows = XV.run_corpus ~workers:2 progs ~versions:[ Version.V4_6 ] ~modes in
  List.iter
    (fun p ->
      let uc = XV.use_case p in
      List.iter
        (fun mode ->
          let direct = Campaign.run uc mode Version.V4_6 in
          let sharded =
            List.find
              (fun r ->
                r.Campaign.r_use_case = Scn_bytecode.name p && r.Campaign.r_mode = mode)
              rows
          in
          check_bool
            (Printf.sprintf "%s %s: scheduler row = direct row" (Scn_bytecode.name p)
               (Campaign.mode_to_string mode))
            true (direct = sharded))
        modes)
    progs

(* --- cross-domain scenarios ------------------------------------------------ *)

(* The two multi-domain scenarios, run the way the CI cross-domain gate
   runs them: four guest domains, default background mix. The injection
   campaign must leave a casualty in a bystander domain (a per-domain
   violation row other than the attacker-host row), record/replay must
   stay byte-identical — snapshot AND virtual-timestamp stream — with
   the load running, and attribution must resolve every violation to a
   non-empty origin set. *)
let test_crossdomain_scenarios () =
  let load = Ii_trace.Load_mix.default in
  let version = Substrate_xen.rq1_config in
  List.iter
    (fun name ->
      let uc = xen_program name in
      let row = Campaign.run ~domains:4 ~load uc Campaign.Injection version in
      check_bool (name ^ ": injected state present") true row.Campaign.r_state;
      check_bool (name ^ ": bystander domain affected") true
        (List.exists (fun (d, vs) -> d <> "host" && vs <> []) row.Campaign.r_domains);
      List.iter
        (fun mode ->
          let r = Trace_driver.record ~domains:4 ~load uc mode version in
          let o = Trace_driver.replay r in
          check_bool
            (Printf.sprintf "%s %s: replay equal under load" name
               (Campaign.mode_to_string mode))
            true o.Trace_driver.rp_equal;
          check_bool
            (Printf.sprintf "%s %s: vts stream equal under load" name
               (Campaign.mode_to_string mode))
            true o.Trace_driver.rp_vts_equal)
        modes;
      let a = Attribution.attribute ~domains:4 ~load uc Campaign.Injection version in
      check_bool (name ^ ": every violation attributed") true (Attribution.complete a))
    [ "GNT-XDOM"; "VENOM-dm" ]

(* --- checker specifics ----------------------------------------------------- *)

let compile_str s =
  match Scn_compile.compile_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "unexpected compile error: %s" (Scn_ast.error_to_string e)

let minimal ~backend ~body =
  Printf.sprintf
    {|scenario "T" {
  xsa "-"
  backend %s
  description "t"
  model {
    name "IM-t"
    source unprivileged-guest
    interface hypercall "h"
    target memory-management
    functionality "Write Unauthorized Arbitrary Memory"
    summary "t"
  }
  exploit {
%s
  }
  inject {
    halt
  }
}|}
    backend body

let test_checker_gates () =
  (* an unknown payload name is a load-time error, not a VM trap *)
  let p = compile_str (minimal ~backend:"xen" ~body:"    payload no-such-payload") in
  check_bool "unknown payload rejected" true (Result.is_error (XV.check p));
  (* host writes exist on KVM but not on the Xen PV substrate *)
  let p = compile_str (minimal ~backend:"any" ~body:"    r0 = 1\n    host-w64 r0 r0") in
  check_bool "host-w64 rejected on xen" true (Result.is_error (XV.check p));
  check_bool "host-w64 allowed on kvm" true (KV.check p = Ok ());
  (* backend fences: a kvm-only program may not run on the xen VM *)
  let p = compile_str (minimal ~backend:"kvm" ~body:"    halt") in
  check_bool "kvm-only incompatible with xen" true (not (XV.compatible p));
  check_bool "kvm-only compatible with kvm" true (KV.compatible p);
  (* jumps out of the section are load-time errors *)
  (match Scn_compile.compile_string (minimal ~backend:"xen" ~body:"    if-err nowhere") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undefined label accepted");
  (* env argument range: kernel-l1 takes 0..511 *)
  let p = compile_str (minimal ~backend:"xen" ~body:"    r0 = kernel-l1 9999") in
  check_bool "env arg out of range rejected" true (Result.is_error (XV.check p))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "scenario"
    [
      ( "corpus",
        [
          Alcotest.test_case "complete" `Quick test_corpus_complete;
          Alcotest.test_case "checks" `Quick test_corpus_checks;
          Alcotest.test_case "encode/decode roundtrip" `Quick test_encode_decode_roundtrip;
          Alcotest.test_case "disasm/reparse roundtrip" `Quick test_disasm_reparse_roundtrip;
          Alcotest.test_case "loader both forms" `Quick test_loader_accepts_both_forms;
        ] );
      ( "totality",
        qsuite
          [
            prop_parser_total_random;
            prop_parser_total_mutated;
            prop_decoder_total_random;
            prop_decoder_total_magic;
            prop_checker_total_corrupted;
          ] );
      ( "golden",
        [
          Alcotest.test_case "xen result rows" `Quick test_golden_xen;
          Alcotest.test_case "xen snapshots" `Quick test_golden_xen_snapshots;
          Alcotest.test_case "kvm result rows" `Quick test_golden_kvm;
          Alcotest.test_case "kvm snapshots" `Quick test_golden_kvm_snapshots;
          Alcotest.test_case "scheduler path" `Quick test_run_corpus_matches_run;
          Alcotest.test_case "cross-domain" `Quick test_crossdomain_scenarios;
        ] );
      ("checker", [ Alcotest.test_case "gates" `Quick test_checker_gates ]);
    ]
