(* Tests for the campaign throughput engine: the software TLB must be
   invisible under the architectural invalidation discipline (and
   faithfully stale outside it), O(dirty) testbed reset must be
   observably identical to a fresh boot, the cross-trial monitor scan
   cache must never change a snapshot, and sharded campaigns must be
   byte-identical to sequential ones. *)

open Ii_xen
open Ii_guest
open Ii_core
module All = Ii_exploits.All_exploits

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let attacker_cr3 tb = (Kernel.dom tb.Testbed.attacker).Domain.l4_mfn

(* Locate the L1 entry backing a kernel vaddr so tests can rewrite raw
   PTE bytes the way an exploit would — beneath every software layer. *)
let l1_slot mem ~cr3 va =
  match List.find_opt (fun s -> s.Paging.level = 1) (Paging.walk_path mem ~cr3 va) with
  | Some s -> (s.Paging.table_mfn, s.Paging.index)
  | None -> Alcotest.fail "no L1 entry on the walk path"

(* --- Software TLB --------------------------------------------------------- *)

(* Under the architectural contract — every PTE rewrite followed by
   invlpg, plus arbitrary interleaved flushes — a cached walk must be
   indistinguishable from a fresh one, for any operation sequence. *)
let prop_tlb_transparent_under_invalidation =
  QCheck.Test.make ~name:"tlb: cached walk = fresh walk under invlpg discipline" ~count:20
    QCheck.(list_of_size (Gen.int_range 1 25) (pair (int_bound 89) (int_bound 2)))
    (fun ops ->
      let tb = Testbed.create Version.V4_8 in
      let mem = tb.Testbed.hv.Hv.mem in
      let cr3 = attacker_cr3 tb in
      let tlb = Paging.Tlb.create () in
      List.for_all
        (fun (pfn, op) ->
          let va = Domain.kernel_vaddr_of_pfn pfn in
          (match op with
          | 0 -> () (* plain lookup below *)
          | 1 ->
              (* rewrite the PTE (toggle RW) and invalidate, as a
                 well-behaved kernel would *)
              let table_mfn, index = l1_slot mem ~cr3 va in
              let frame = Phys_mem.frame mem table_mfn in
              let e = Frame.get_entry frame index in
              let e' = if Pte.test Pte.Rw e then Pte.clear Pte.Rw e else Pte.set Pte.Rw e in
              Frame.set_entry frame index e';
              Paging.Tlb.invlpg tlb ~cr3 va
          | _ -> Paging.Tlb.flush_all tlb);
          Paging.walk_cached tlb mem ~cr3 va = Paging.walk mem ~cr3 va
          && Paging.translate_cached tlb mem ~cr3 ~kind:Paging.Write ~user:false va
             = Paging.translate mem ~cr3 ~kind:Paging.Write ~user:false va)
        ops)

(* The other half of faithfulness: a raw PTE rewrite *without* invlpg
   must keep serving the stale translation — the window real XSA
   exploits race — until an explicit flush. *)
let test_stale_tlb_without_invlpg () =
  let tb = Testbed.create Version.V4_8 in
  let mem = tb.Testbed.hv.Hv.mem in
  let cr3 = attacker_cr3 tb in
  let va = Domain.kernel_vaddr_of_pfn 5 in
  let tlb = Paging.Tlb.create () in
  let cached_before = Paging.walk_cached tlb mem ~cr3 va in
  let table_mfn, index = l1_slot mem ~cr3 va in
  let frame = Phys_mem.frame mem table_mfn in
  let old = Frame.get_entry frame index in
  let mfn6 =
    match Domain.mfn_of_pfn (Kernel.dom tb.Testbed.attacker) 6 with
    | Some m -> m
    | None -> Alcotest.fail "pfn 6 unpopulated"
  in
  Frame.set_entry frame index (Pte.make ~mfn:mfn6 ~flags:(Pte.flags old));
  let fresh = Paging.walk mem ~cr3 va in
  check_bool "fresh walk sees the rewrite" true (fresh <> cached_before);
  check_bool "cached walk is stale" true (Paging.walk_cached tlb mem ~cr3 va = cached_before);
  Paging.Tlb.flush_all tlb;
  check_bool "flush restores agreement" true (Paging.walk_cached tlb mem ~cr3 va = fresh)

(* Testbed.reset recycles frames (generation bump), so even a TLB that
   saw pre-reset state must agree with fresh walks afterwards with no
   explicit flush. *)
let test_tlb_survives_reset () =
  let tb = Testbed.create Version.V4_8 in
  let mem = tb.Testbed.hv.Hv.mem in
  let cr3 = attacker_cr3 tb in
  let tlb = Paging.Tlb.create () in
  let vas = List.init 8 (fun i -> Domain.kernel_vaddr_of_pfn (3 * i)) in
  List.iter (fun va -> ignore (Paging.walk_cached tlb mem ~cr3 va)) vas;
  Testbed.reset tb;
  let cr3' = attacker_cr3 tb in
  List.iter
    (fun va ->
      check_bool "post-reset agreement" true
        (Paging.walk_cached tlb mem ~cr3:cr3' va = Paging.walk mem ~cr3:cr3' va))
    vas

(* --- Reset = create ------------------------------------------------------- *)

(* The contract on Testbed.reset: a reset testbed is observably
   equivalent to a freshly created one. Campaign.run with a reused
   testbed must therefore return the exact row a full boot returns, for
   every use case and both modes. *)
let test_reset_equals_create_campaign () =
  let tb = Testbed.create Version.V4_6 in
  List.iter
    (fun uc ->
      List.iter
        (fun mode ->
          let fresh = Campaign.run uc mode Version.V4_6 in
          let reused = Campaign.run ~tb uc mode Version.V4_6 in
          check_bool (uc.Campaign.uc_name ^ "/" ^ Campaign.mode_to_string mode) true
            (fresh = reused))
        [ Campaign.Real_exploit; Campaign.Injection ])
    All.use_cases

let test_reset_equals_create_snapshot () =
  let pristine = Monitor.snapshot (Testbed.create Version.V4_8) in
  let tb = Testbed.create Version.V4_8 in
  let hv = tb.Testbed.hv in
  Injector.install hv;
  ignore
    (Injector.write_u64 tb.Testbed.attacker ~addr:0x9000L
       ~action:Injector.Arbitrary_write_physical 0xBEEFL);
  Testbed.reset tb;
  check_bool "snapshot of reset testbed = snapshot of fresh testbed" true
    (Monitor.snapshot tb = pristine)

(* --- Monitor scan cache --------------------------------------------------- *)

(* The cache's one guarantee: passing it never changes a snapshot. Hit
   it with randomized physical-memory corruption and resets — exactly
   the traffic a randomized campaign generates. *)
let prop_scan_cache_transparent =
  QCheck.Test.make ~name:"monitor: snapshot with cache = snapshot without" ~count:10
    QCheck.(list_of_size (Gen.int_range 1 8) (pair (int_bound 0x1F_FFF8) small_int))
    (fun writes ->
      let tb = Testbed.create Version.V4_8 in
      let cache = Monitor.create_scan_cache () in
      List.for_all
        (fun (off, v) ->
          (* align to the u64 containment contract; a straddling write
             raises Bad_maddr, which is Phys_mem's business, not the
             cache's *)
          let off = off land lnot 7 in
          Phys_mem.write_u64 tb.Testbed.hv.Hv.mem (Int64.of_int off) (Int64.of_int v);
          let agree = Monitor.snapshot ~cache tb = Monitor.snapshot tb in
          if v mod 3 = 0 then Testbed.reset tb;
          agree && Monitor.snapshot ~cache tb = Monitor.snapshot tb)
        writes)

(* --- Warm pools and COW forks --------------------------------------------- *)

(* The contract on Testbed.create_pooled: a COW fork of the frozen
   template is observably equivalent to a fresh boot. Every use case,
   both modes, must return the exact row a full build returns. *)
let test_pooled_equals_fresh_campaign () =
  let tb = Testbed.create_pooled Version.V4_6 in
  List.iter
    (fun uc ->
      List.iter
        (fun mode ->
          let fresh = Campaign.run uc mode Version.V4_6 in
          let pooled = Campaign.run ~tb uc mode Version.V4_6 in
          check_bool (uc.Campaign.uc_name ^ "/" ^ Campaign.mode_to_string mode ^ " pooled") true
            (fresh = pooled))
        [ Campaign.Real_exploit; Campaign.Injection ])
    All.use_cases

(* The same contract with extra domains and background load live: the
   pool keys on the domain count, the template stays load-free, and the
   fork installs its own per-domain streams — so a loaded four-domain
   fork must return the exact row a loaded four-domain fresh boot
   returns, per-domain violation rows included. *)
let test_pooled_equals_fresh_multidomain () =
  let load = Ii_trace.Load_mix.default in
  let tb = Testbed.create_pooled ~domains:4 ~load Version.V4_6 in
  List.iter
    (fun uc ->
      List.iter
        (fun mode ->
          let fresh = Campaign.run ~domains:4 ~load uc mode Version.V4_6 in
          let pooled = Campaign.run ~tb uc mode Version.V4_6 in
          check_bool
            (uc.Campaign.uc_name ^ "/" ^ Campaign.mode_to_string mode
           ^ " multi-domain pooled")
            true (fresh = pooled))
        [ Campaign.Real_exploit; Campaign.Injection ])
    All.use_cases

let test_pooled_equals_fresh_kvm () =
  let module BK = Ii_backends.Backend_kvm in
  let module KC = Ii_backends.Backends.Kvm_campaign in
  let tb = BK.create_pooled BK.Stock in
  List.iter
    (fun uc ->
      List.iter
        (fun mode ->
          let fresh = KC.run uc mode BK.Stock in
          let pooled = KC.run ~tb uc mode BK.Stock in
          check_bool (uc.KC.uc_name ^ "/" ^ Campaign.mode_to_string mode ^ " kvm pooled") true
            (fresh = pooled))
        [ Campaign.Real_exploit; Campaign.Injection ])
    Ii_backends.Kvm_use_cases.use_cases

(* Out-of-band observers on a forked testbed: interleaved monitor scans
   (through the scan cache, whose anchoring rides the baseline epoch the
   fork inherits) must not change the row, and the row must still equal
   the fresh-boot one. *)
let test_pooled_interleaved_scans () =
  let uc = Option.get (All.find "XSA-148-priv") in
  let row_with tb =
    let cache = Monitor.create_scan_cache () in
    Campaign.run ~tb
      ~observer:(fun tb -> ignore (Monitor.snapshot ~cache tb))
      uc Campaign.Injection Version.V4_6
  in
  let fresh = row_with (Testbed.create Version.V4_6) in
  let pooled = row_with (Testbed.create_pooled Version.V4_6) in
  check_bool "interleaved scans: pooled = fresh" true (fresh = pooled)

(* The provenance shadow attaches to a fork exactly as to a fresh boot:
   same causal graph, same taint. *)
let test_pooled_provenance () =
  let uc = Option.get (All.find "XSA-182-test") in
  let stats tb =
    Substrate_xen.enable_provenance tb;
    ignore (Campaign.run ~tb uc Campaign.Injection Version.V4_6);
    let p = Option.get (Substrate_xen.provenance tb) in
    (Ii_trace.Provenance.edge_count p, Ii_trace.Provenance.tainted_bytes p)
  in
  let fresh = stats (Testbed.create Version.V4_6) in
  let pooled = stats (Testbed.create_pooled Version.V4_6) in
  check_bool "provenance on fork = on fresh boot" true (fresh = pooled)

(* Scan-cache anchoring survives the fork: the cache keys on
   (baseline epoch, page-info generation), both of which the fork
   copies, so passing a cache never changes a snapshot — across
   corruption and resets. *)
let test_fork_scan_cache_anchoring () =
  let tb = Testbed.create_pooled Version.V4_8 in
  let cache = Monitor.create_scan_cache () in
  let agree () = Monitor.snapshot ~cache tb = Monitor.snapshot tb in
  check_bool "initial agreement" true (agree ());
  Phys_mem.write_u64 tb.Testbed.hv.Hv.mem 0x9000L 0xBEEFL;
  check_bool "after corruption" true (agree ());
  Testbed.reset tb;
  check_bool "after reset" true (agree ())

let test_fork_template_isolation () =
  let t = Phys_mem.create ~frames:8 in
  Phys_mem.capture_baseline t;
  Phys_mem.freeze t;
  let f = Phys_mem.fork t in
  check_int "all frames shared at birth" 8 (Phys_mem.shared_frames f);
  Phys_mem.write_u64 f 0x1008L 0xDEADL;
  check_int "first write unshares its frame" 7 (Phys_mem.shared_frames f);
  check_bool "fork sees its write" true (Phys_mem.read_u64 f 0x1008L = 0xDEADL);
  check_bool "template untouched" true (Phys_mem.read_u64 t 0x1008L = 0L);
  ignore (Phys_mem.reset_to_baseline f : int);
  check_bool "fork resets to template state" true (Phys_mem.read_u64 f 0x1008L = 0L);
  (* a sibling fork never sees the other's divergence *)
  let g = Phys_mem.fork t in
  check_bool "sibling fork pristine" true (Phys_mem.read_u64 g 0x1008L = 0L)

let test_frozen_template_immutable () =
  let t = Phys_mem.create ~frames:4 in
  Phys_mem.capture_baseline t;
  Phys_mem.freeze t;
  check_bool "frozen template rejects writes" true
    (match Phys_mem.write_u64 t 0L 1L with
    | exception Invalid_argument _ -> true
    | () -> false);
  check_bool "fork requires a frozen template" true
    (match Phys_mem.fork (Phys_mem.create ~frames:4) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Batching scheduler ---------------------------------------------------- *)

(* The flattened versions x trials queue must regroup into summaries
   byte-identical to running each version's campaign on its own,
   whatever the worker count; the streaming variant must agree on the
   tallies it keeps. *)
let test_scheduler_matches_per_version () =
  let versions = [ Version.V4_6; Version.V4_8 ] in
  let seq = List.map (Random_campaign.run ~seed:7L ~trials:10) versions in
  check_bool "scheduler w1 = per-version runs" true
    (Campaign_scheduler.run ~seed:7L ~trials:10 ~workers:1 versions = seq);
  check_bool "scheduler w3 = per-version runs" true
    (Campaign_scheduler.run ~seed:7L ~trials:10 ~workers:3 versions = seq);
  let streamed = Campaign_scheduler.run_streamed ~seed:7L ~trials:10 ~workers:3 versions in
  check_bool "streamed tallies = materialized tallies" true
    (List.for_all2
       (fun (s : Random_campaign.summary) t ->
         s.Random_campaign.tally = t.Campaign_scheduler.st_tally)
       seq streamed)

(* --- Shard engine ---------------------------------------------------------- *)

exception Boom of int

let test_shard_exception_propagation () =
  match
    Shard.map_init ~workers:2
      ~init:(fun () -> ())
      (fun () i () -> if i = 5 then raise (Boom i) else i)
      (List.init 32 (fun _ -> ()))
  with
  | _ -> Alcotest.fail "worker exception was swallowed"
  | exception Boom 5 -> ()

let test_shard_fold_sum () =
  let sum w =
    Shard.fold_init ~workers:w ~n:1000 ~init:(fun () -> ()) ~f:(fun () i -> i) ~merge:( + ) 0
  in
  check_int "sequential fold" (999 * 1000 / 2) (sum 1);
  check_int "3-worker fold agrees" (sum 1) (sum 3)

let test_workers_of_string () =
  check_bool "auto resolves within [1,8]" true
    (match Shard.workers_of_string "auto" with Ok n -> n >= 1 && n <= 8 | Error _ -> false);
  check_bool "literal count" true (Shard.workers_of_string "3" = Ok 3);
  check_bool "zero rejected" true (Result.is_error (Shard.workers_of_string "0"));
  check_bool "negative rejected" true (Result.is_error (Shard.workers_of_string "-4"));
  check_bool "junk rejected" true (Result.is_error (Shard.workers_of_string "lots"));
  check_bool "empty rejected" true (Result.is_error (Shard.workers_of_string ""));
  check_bool "float rejected" true (Result.is_error (Shard.workers_of_string "2.5"));
  check_bool "whitespace rejected" true (Result.is_error (Shard.workers_of_string " 3"));
  (* every rejection names the flag the string came from *)
  List.iter
    (fun s ->
      match Shard.workers_of_string s with
      | Ok _ -> Alcotest.failf "%S unexpectedly accepted" s
      | Error msg ->
          check_bool
            (Printf.sprintf "error for %S names --workers" s)
            true
            (String.length msg >= 9 && String.sub msg 0 9 = "--workers"))
    [ "0"; "-1"; "junk"; "" ]

(* --- Sharding determinism ------------------------------------------------- *)

let test_random_campaign_shard_identical () =
  let seq = Random_campaign.run ~seed:7L ~trials:30 Version.V4_8 in
  let sharded = Random_campaign.run ~seed:7L ~trials:30 ~workers:3 Version.V4_8 in
  check_bool "sequential = 3-worker summary" true (seq = sharded)

let test_run_matrix_shard_identical () =
  let seq = Campaign.run_matrix All.use_cases ~versions:[ Version.V4_6 ] ~modes:[ Campaign.Injection ] in
  let sharded =
    Campaign.run_matrix ~workers:2 All.use_cases ~versions:[ Version.V4_6 ]
      ~modes:[ Campaign.Injection ]
  in
  check_bool "sequential = 2-worker matrix" true (seq = sharded)

(* --- Phys_mem allocator --------------------------------------------------- *)

let test_alloc_lowest_free () =
  let mem = Phys_mem.create ~frames:16 in
  let a = Phys_mem.alloc mem Phys_mem.Xen in
  let b = Phys_mem.alloc mem Phys_mem.Xen in
  let c = Phys_mem.alloc mem (Phys_mem.Dom 1) in
  check_int "first" 0 a;
  check_int "second" 1 b;
  check_int "third" 2 c;
  Phys_mem.free mem b;
  check_int "freed slot is reused first" b (Phys_mem.alloc mem Phys_mem.Xen)

let test_alloc_zeroed_after_dirty_free () =
  let mem = Phys_mem.create ~frames:8 in
  let m = Phys_mem.alloc mem Phys_mem.Xen in
  Frame.set_u64 (Phys_mem.frame mem m) 0 0xDEAD_BEEFL;
  Phys_mem.free mem m;
  let m' = Phys_mem.alloc mem (Phys_mem.Dom 3) in
  check_int "same frame" m m';
  check_bool "scrubbed on reallocation" true
    (Frame.to_bytes (Phys_mem.frame_ro mem m') = Bytes.make 4096 '\000')

let test_free_frames_counter () =
  let mem = Phys_mem.create ~frames:12 in
  check_int "all free" 12 (Phys_mem.free_frames mem);
  let ms = Phys_mem.alloc_many mem Phys_mem.Xen 5 in
  check_int "after alloc_many" 7 (Phys_mem.free_frames mem);
  List.iter (Phys_mem.free mem) ms;
  check_int "after freeing" 12 (Phys_mem.free_frames mem)

(* --- Page_info generation and checkpointing ------------------------------- *)

let test_page_info_generation () =
  let pages = Page_info.create ~frames:8 in
  let g0 = Page_info.generation pages in
  Page_info.get_page pages 3;
  check_int "plain refcounting does not move the generation" g0 (Page_info.generation pages);
  (match Page_info.get_page_type pages 3 Page_info.PGT_l1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "typing a fresh frame");
  check_bool "typing bumps the generation" true (Page_info.generation pages > g0)

let test_page_info_checkpoint_restore () =
  let pages = Page_info.create ~frames:8 in
  let ck = Page_info.checkpoint pages in
  let g0 = Page_info.generation pages in
  (match Page_info.get_page_type pages 2 Page_info.PGT_l2 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "typing a fresh frame");
  Page_info.touch pages 5;
  (Page_info.get pages 5).Page_info.ptype <- Page_info.PGT_seg;
  Page_info.restore pages ck;
  check_bool "type rolled back" true ((Page_info.get pages 2).Page_info.ptype = Page_info.PGT_none);
  check_int "type count rolled back" 0 (Page_info.get pages 2).Page_info.type_count;
  check_bool "out-of-band write rolled back" true
    ((Page_info.get pages 5).Page_info.ptype = Page_info.PGT_none);
  check_int "generation rolled back" g0 (Page_info.generation pages);
  check_bool "counts consistent" true (Page_info.counts_consistent pages)

let () =
  Alcotest.run "perf_engine"
    [
      ( "tlb",
        [
          Alcotest.test_case "stale without invlpg" `Quick test_stale_tlb_without_invlpg;
          Alcotest.test_case "coherent across reset" `Quick test_tlb_survives_reset;
        ]
        @ qsuite [ prop_tlb_transparent_under_invalidation ] );
      ( "reset",
        [
          Alcotest.test_case "campaign rows: reset = create" `Quick
            test_reset_equals_create_campaign;
          Alcotest.test_case "snapshots: reset = create" `Quick test_reset_equals_create_snapshot;
        ] );
      ("scan_cache", qsuite [ prop_scan_cache_transparent ]);
      ( "pool",
        [
          Alcotest.test_case "campaign rows: pooled = fresh (xen)" `Quick
            test_pooled_equals_fresh_campaign;
          Alcotest.test_case "campaign rows: pooled = fresh (kvm)" `Quick
            test_pooled_equals_fresh_kvm;
          Alcotest.test_case "campaign rows: pooled = fresh (4 domains, loaded)" `Quick
            test_pooled_equals_fresh_multidomain;
          Alcotest.test_case "interleaved scans on a fork" `Quick test_pooled_interleaved_scans;
          Alcotest.test_case "provenance on a fork" `Quick test_pooled_provenance;
          Alcotest.test_case "scan-cache anchoring on a fork" `Quick
            test_fork_scan_cache_anchoring;
        ] );
      ( "cow_fork",
        [
          Alcotest.test_case "template isolation" `Quick test_fork_template_isolation;
          Alcotest.test_case "frozen template immutable" `Quick test_frozen_template_immutable;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "flattened queue = per-version runs" `Quick
            test_scheduler_matches_per_version;
        ] );
      ( "shard",
        [
          Alcotest.test_case "exception propagation" `Quick test_shard_exception_propagation;
          Alcotest.test_case "streaming fold" `Quick test_shard_fold_sum;
          Alcotest.test_case "workers_of_string" `Quick test_workers_of_string;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "random campaign" `Quick test_random_campaign_shard_identical;
          Alcotest.test_case "run_matrix" `Quick test_run_matrix_shard_identical;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "lowest free first" `Quick test_alloc_lowest_free;
          Alcotest.test_case "zeroed after dirty free" `Quick test_alloc_zeroed_after_dirty_free;
          Alcotest.test_case "free counter" `Quick test_free_frames_counter;
        ] );
      ( "page_info",
        [
          Alcotest.test_case "generation" `Quick test_page_info_generation;
          Alcotest.test_case "checkpoint/restore" `Quick test_page_info_checkpoint_restore;
        ] );
    ]
