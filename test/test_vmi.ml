(* Tests for the VMI introspection layer and the metrics registry: the
   registry must hand back the same instrument for the same identity and
   render deterministically; the semantic views must be reconstructions
   from raw frame bytes that never dirty a frame; every injected
   use-case state must be caught by at least one detector with a finite
   latency; detector-enabled recordings must replay to the same final
   snapshot; and the monitor's scan cache must stay transparent while
   VMI scans, injections and campaign resets interleave. *)

open Ii_trace
open Ii_xen
open Ii_vmi
open Ii_guest
open Ii_core
module All = Ii_exploits.All_exploits

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let uc name =
  match All.find name with Some uc -> uc | None -> Alcotest.fail ("no use case " ^ name)

(* --- metrics registry ----------------------------------------------------- *)

let test_counter_identity () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg ~labels:[ ("mode", "injection") ] "trials_total" in
  let b = Metrics.counter reg ~labels:[ ("mode", "injection") ] "trials_total" in
  Metrics.inc a;
  Metrics.inc ~by:2 b;
  (* same (name, labels) -> same series: both publishers accumulated *)
  check_int "shared series" 3 (Metrics.counter_value a);
  let other = Metrics.counter reg ~labels:[ ("mode", "exploit") ] "trials_total" in
  check_int "distinct labels, distinct series" 0 (Metrics.counter_value other)

let test_counter_monotonic () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "c" in
  check_bool "negative inc rejected" true
    (try
       Metrics.inc ~by:(-1) c;
       false
     with Invalid_argument _ -> true)

let test_kind_conflict () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "series");
  check_bool "gauge over counter rejected" true
    (try
       ignore (Metrics.gauge reg "series");
       false
     with Invalid_argument _ -> true)

let test_histogram_buckets () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[ 1.; 10.; 100. ] "cost" in
  List.iter (Metrics.observe h) [ 0.5; 5.; 5.; 50.; 5000. ];
  check_int "count" 5 (Metrics.histogram_count h);
  check_bool "sum" true (Metrics.histogram_sum h = 5060.5);
  (* cumulative, +inf last, last count = total *)
  check_bool "cumulative buckets" true
    (Metrics.bucket_counts h = [ (1., 1); (10., 3); (100., 4); (infinity, 5) ]);
  check_bool "different buckets rejected" true
    (try
       ignore (Metrics.histogram reg ~buckets:[ 2.; 20. ] "cost");
       false
     with Invalid_argument _ -> true)

let msg_contains msg needle =
  let n = String.length needle and m = String.length msg in
  let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
  go 0

(* Every re-registration error must name the offending metric — a bare
   "already registered" with no name is useless in a trial log. *)
let test_reregistration_errors_name_metric () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "clashing_series");
  (match Metrics.gauge reg "clashing_series" with
  | exception Invalid_argument msg ->
      check_bool "kind clash names the metric" true (msg_contains msg "clashing_series")
  | _ -> Alcotest.fail "expected Invalid_argument");
  ignore (Metrics.histogram reg ~buckets:[ 1.; 2. ] "histo_series");
  (match Metrics.histogram reg ~buckets:[ 1.; 3. ] "histo_series" with
  | exception Invalid_argument msg ->
      check_bool "bucket clash names the metric" true (msg_contains msg "histo_series")
  | _ -> Alcotest.fail "expected Invalid_argument");
  match Metrics.histogram reg ~buckets:[] "empty_buckets" with
  | exception Invalid_argument msg ->
      check_bool "bad buckets names the metric" true (msg_contains msg "empty_buckets")
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_histogram_quantile () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[ 1.; 2.; 4. ] "quantile_series" in
  check_bool "empty histogram is nan" true (Float.is_nan (Metrics.histogram_quantile h 0.5));
  List.iter (Metrics.observe h) [ 0.5; 1.5; 1.5; 3. ];
  check_bool "median interpolates within its bucket" true
    (Float.abs (Metrics.histogram_quantile h 0.5 -. 1.5) < 1e-9);
  check_bool "q=1 reaches the top populated bound" true
    (Metrics.histogram_quantile h 1.0 = 4.);
  (* observations in the +inf bucket clamp to the highest finite bound *)
  Metrics.observe h 5000.;
  check_bool "overflow clamps" true (Metrics.histogram_quantile h 1.0 = 4.);
  check_bool "q outside [0,1] rejected" true
    (try
       ignore (Metrics.histogram_quantile h 1.5);
       false
     with Invalid_argument _ -> true)

let test_render_inf_bucket_explicit () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[ 1. ] "lat" in
  Metrics.observe h 5.;
  let s = Metrics.render_prometheus reg in
  check_bool "+Inf bucket line rendered" true
    (msg_contains s "lat_bucket{le=\"+Inf\"} 1")

let test_render_order_independent () =
  (* registration order must not leak into the rendering *)
  let build order =
    let reg = Metrics.create () in
    List.iter
      (fun (name, label) ->
        Metrics.inc (Metrics.counter reg ~labels:[ ("l", label) ] name))
      order;
    Metrics.observe (Metrics.histogram reg ~buckets:[ 4.; 16. ] "h") 5.;
    (Metrics.render_prometheus reg, Metrics.render_json reg)
  in
  let fwd = build [ ("b_total", "x"); ("a_total", "y"); ("a_total", "x") ] in
  let rev = build [ ("a_total", "x"); ("a_total", "y"); ("b_total", "x") ] in
  check_string "prometheus deterministic" (fst fwd) (fst rev);
  check_string "json deterministic" (snd fwd) (snd rev)

(* --- semantic views ------------------------------------------------------- *)

let test_frame_hash_read_only () =
  let tb = Testbed.create Version.V4_6 in
  let hv = tb.Testbed.hv in
  let before = Phys_mem.dirty_count hv.Hv.mem in
  let h1 = Vmi.View.frame_hash hv hv.Hv.idt_mfn in
  let h2 = Vmi.View.frame_hash hv hv.Hv.idt_mfn in
  check_bool "stable" true (h1 = h2);
  check_int "hashing dirtied nothing" before (Phys_mem.dirty_count hv.Hv.mem);
  Phys_mem.write_u64 hv.Hv.mem
    (Int64.of_int (hv.Hv.idt_mfn * Addr.page_size))
    0xDEADL;
  check_bool "sensitive to a byte change" true
    (Vmi.View.frame_hash hv hv.Hv.idt_mfn <> h1)

let test_views_pristine () =
  let tb = Testbed.create Version.V4_6 in
  let hv = tb.Testbed.hv in
  let dom = Kernel.dom tb.Testbed.attacker in
  let g = Vmi.View.pt_graph hv dom in
  check_bool "root is a node" true (List.mem_assoc dom.Domain.l4_mfn g.Vmi.View.g_nodes);
  check_bool "leaves found" true (g.Vmi.View.g_leaves <> []);
  check_bool "cost counted" true (g.Vmi.View.g_frames_read >= List.length g.Vmi.View.g_nodes);
  check_int "no exposure on a healthy system" 0 (Vmi.View.exposure_count hv g);
  check_bool "m2p consistent" true (Vmi.View.m2p_mismatches hv = []);
  check_bool "idt gates present and registered" true
    (Vmi.View.idt_gates hv <> []
    && List.for_all
         (fun (_, gate) -> Cpu.handler_name hv.Hv.cpu gate.Idt.handler <> None)
         (Vmi.View.idt_gates hv))

let test_detectors_silent_when_pristine () =
  let tb = Testbed.create Version.V4_6 in
  let hv = tb.Testbed.hv in
  List.iter
    (fun d ->
      d.Vmi.Detector.arm hv;
      let r = d.Vmi.Detector.scan hv in
      check_bool (d.Vmi.Detector.name ^ " silent") true (r.Vmi.Detector.findings = []))
    (Vmi.Detector.all ())

let test_scan_reads_only_and_counts () =
  let tb = Testbed.create Version.V4_6 in
  let hv = tb.Testbed.hv in
  let sched = Vmi.Scheduler.create (Vmi.Detector.all ()) in
  Vmi.Scheduler.arm sched hv;
  let dirty = Phys_mem.dirty_count hv.Hv.mem in
  Vmi.Scheduler.scan_now sched hv.Hv.trace hv;
  check_int "a full scan dirtied nothing" dirty (Phys_mem.dirty_count hv.Hv.mem);
  check_int "five detectors scanned" 5 (Vmi.Scheduler.scans_run sched);
  check_bool "scan cost counted" true (Vmi.Scheduler.frames_read sched > 0);
  (* satellite wiring: the always-on trace counters saw the scans *)
  check_int "counters" 5 (Trace.Counters.vmi_scans (Trace.counters hv.Hv.trace))

let test_integrity_fires_on_corruption () =
  let tb = Testbed.create Version.V4_6 in
  let hv = tb.Testbed.hv in
  let d = Vmi.Detector.integrity_hasher () in
  d.Vmi.Detector.arm hv;
  Phys_mem.write_u64 hv.Hv.mem (Int64.of_int (hv.Hv.idt_mfn * Addr.page_size)) 0xBADL;
  let r = d.Vmi.Detector.scan hv in
  check_bool "hash mismatch reported" true (r.Vmi.Detector.findings <> [])

(* --- detector campaigns --------------------------------------------------- *)

let vmi_trials =
  lazy (Vmi_driver.coverage All.use_cases Campaign.Injection Version.V4_6)

let test_every_state_detected () =
  List.iter
    (fun t ->
      let name = t.Vmi_driver.t_recording.Trace_driver.rec_use_case in
      check_bool (name ^ " covered") true (Vmi_driver.covered t);
      match Vmi_driver.best_latency t with
      | Some l -> check_bool (name ^ " finite positive latency") true (l > 0)
      | None -> Alcotest.fail (name ^ " has no latency"))
    (Lazy.force vmi_trials)

let test_expected_detectors_fire () =
  let fired name t = List.mem_assoc name t.Vmi_driver.t_first_fire in
  let find name =
    List.find
      (fun t -> t.Vmi_driver.t_recording.Trace_driver.rec_use_case = name)
      (Lazy.force vmi_trials)
  in
  (* the crash use case is caught by the baseline/liveness detectors,
     the three privilege ones by the page-table exposure scanner *)
  check_bool "integrity on XSA-212-crash" true (fired "integrity" (find "XSA-212-crash"));
  check_bool "idt-gates on XSA-212-crash" true (fired "idt-gates" (find "XSA-212-crash"));
  check_bool "liveness on XSA-212-crash" true (fired "liveness" (find "XSA-212-crash"));
  List.iter
    (fun ucn -> check_bool ("pt-exposure on " ^ ucn) true (fired "pt-exposure" (find ucn)))
    [ "XSA-212-priv"; "XSA-148-priv"; "XSA-182-test" ];
  (* a consistent system stays consistent: injections here never break M2P *)
  List.iter
    (fun t -> check_bool "m2p-inverse silent" false (fired "m2p-inverse" t))
    (Lazy.force vmi_trials)

let test_side_effect_free () =
  List.iter
    (fun uc ->
      check_bool (uc.Campaign.uc_name ^ " side-effect-free") true
        (Vmi_driver.side_effect_free uc Campaign.Injection Version.V4_6))
    All.use_cases

let test_detector_recording_replays () =
  List.iter
    (fun t ->
      let o = Trace_driver.replay t.Vmi_driver.t_recording in
      check_bool
        (t.Vmi_driver.t_recording.Trace_driver.rec_use_case ^ " replay equal")
        true o.Trace_driver.rp_equal)
    (Lazy.force vmi_trials)

let test_trial_deterministic () =
  let u = uc "XSA-148-priv" in
  let a = Vmi_driver.run_trial u Campaign.Injection Version.V4_6 in
  let b = Vmi_driver.run_trial u Campaign.Injection Version.V4_6 in
  check_bool "byte-identical recordings" true
    (a.Vmi_driver.t_recording.Trace_driver.rec_bytes
    = b.Vmi_driver.t_recording.Trace_driver.rec_bytes);
  check_bool "identical firing order" true
    (a.Vmi_driver.t_first_fire = b.Vmi_driver.t_first_fire);
  check_bool "identical latencies" true (a.Vmi_driver.t_latency = b.Vmi_driver.t_latency)

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

(* Satellite: a ring small enough to wrap during the trial evicts the
   injection record; the surviving records must not be mistaken for an
   origin, or every latency silently reports from whatever scan record
   happened to survive. *)
let test_wraparound_during_scan_drops_latency () =
  let u = uc "XSA-148-priv" in
  let t = Vmi_driver.run_trial ~capacity_bytes:256 u Campaign.Injection Version.V4_6 in
  check_bool "ring wrapped" true (t.Vmi_driver.t_recording.Trace_driver.rec_dropped > 0);
  check_bool "no injection origin claimed" true (t.Vmi_driver.t_inject_seq = None);
  List.iter
    (fun (d, l) -> check_bool (d ^ ": no latency from survivors") true (l = None))
    t.Vmi_driver.t_latency;
  check_bool "trial not counted as covered" true (not (Vmi_driver.covered t));
  (* detectors still fired — only the latency claim is withdrawn *)
  check_bool "firings preserved" true (t.Vmi_driver.t_first_fire <> [])

let test_matrix_render () =
  let s = Vmi_driver.matrix_table (Lazy.force vmi_trials) in
  List.iter
    (fun needle -> check_bool ("matrix mentions " ^ needle) true (contains s needle))
    [ "pt-exposure"; "XSA-212-crash" ]

(* --- monitor scan cache under VMI/campaign interleaving ------------------- *)

(* Satellite: the cross-trial scan cache keys on the dirty list and the
   type-state generation. VMI scans touch neither (pure reads), a trial
   injection touches both, and a campaign reset rolls them back — the
   cache must stay transparent across every interleaving. *)
let test_scan_cache_vmi_interleave () =
  let tb = Testbed.create Version.V4_6 in
  let hv = tb.Testbed.hv in
  let cache = Monitor.create_scan_cache () in
  let agree msg =
    check_bool (msg ^ ": cached = fresh") true
      (Monitor.snapshot ~cache tb = Monitor.snapshot tb)
  in
  let pristine = Monitor.snapshot ~cache tb in
  agree "initial";
  let sched = Vmi.Scheduler.create (Vmi.Detector.all ()) in
  Vmi.Scheduler.arm sched hv;
  Vmi.Scheduler.scan_now sched hv.Hv.trace hv;
  agree "after vmi scan";
  check_bool "scans kept the snapshot pristine" true
    (Monitor.snapshot ~cache tb = pristine);
  Injector.install hv;
  ignore ((uc "XSA-148-priv").Campaign.run_injection tb);
  agree "after injection";
  check_bool "injected state visible through the cache" true
    (Monitor.snapshot ~cache tb <> pristine);
  Testbed.reset tb;
  agree "after reset";
  check_bool "reset returned to pristine" true (Monitor.snapshot ~cache tb = pristine);
  Vmi.Scheduler.scan_now sched hv.Hv.trace hv;
  agree "after post-reset scan"

let () =
  Alcotest.run "vmi"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter identity" `Quick test_counter_identity;
          Alcotest.test_case "counter monotonic" `Quick test_counter_monotonic;
          Alcotest.test_case "kind conflict" `Quick test_kind_conflict;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "render order-independent" `Quick
            test_render_order_independent;
          Alcotest.test_case "re-registration errors name the metric" `Quick
            test_reregistration_errors_name_metric;
          Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
          Alcotest.test_case "+Inf bucket rendered" `Quick test_render_inf_bucket_explicit;
        ] );
      ( "views",
        [
          Alcotest.test_case "frame hash read-only" `Quick test_frame_hash_read_only;
          Alcotest.test_case "pristine views" `Quick test_views_pristine;
        ] );
      ( "detectors",
        [
          Alcotest.test_case "silent when pristine" `Quick
            test_detectors_silent_when_pristine;
          Alcotest.test_case "scan reads only" `Quick test_scan_reads_only_and_counts;
          Alcotest.test_case "integrity fires" `Quick test_integrity_fires_on_corruption;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "every state detected" `Quick test_every_state_detected;
          Alcotest.test_case "expected detectors fire" `Quick
            test_expected_detectors_fire;
          Alcotest.test_case "side-effect-free" `Quick test_side_effect_free;
          Alcotest.test_case "recordings replay" `Quick test_detector_recording_replays;
          Alcotest.test_case "trial deterministic" `Quick test_trial_deterministic;
          Alcotest.test_case "wraparound during scan drops latency" `Quick
            test_wraparound_during_scan_drops_latency;
          Alcotest.test_case "matrix render" `Quick test_matrix_render;
        ] );
      ( "scan_cache",
        [
          Alcotest.test_case "vmi/campaign interleaving" `Quick
            test_scan_cache_vmi_interleave;
        ] );
    ]
