(* Unit and property tests for the hypervisor library. *)

open Ii_xen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)

let errno_t : Errno.t Alcotest.testable =
  Alcotest.testable (fun ppf e -> Errno.pp ppf e) ( = )

let ok_unit = function Ok () -> true | Error (_ : Errno.t) -> false

(* --- Version ---------------------------------------------------------- *)

let test_version_predicates () =
  check_bool "4.6 148" false (Version.xsa148_fixed Version.V4_6);
  check_bool "4.8 148" true (Version.xsa148_fixed Version.V4_8);
  check_bool "4.6 182" false (Version.xsa182_fixed Version.V4_6);
  check_bool "4.6 212" false (Version.xsa212_fixed Version.V4_6);
  check_bool "4.13 212" true (Version.xsa212_fixed Version.V4_13);
  check_bool "4.6 hardened" false (Version.hardened_address_space Version.V4_6);
  check_bool "4.8 hardened" false (Version.hardened_address_space Version.V4_8);
  check_bool "4.13 hardened" true (Version.hardened_address_space Version.V4_13)

let test_version_strings () =
  List.iter
    (fun v ->
      match Version.of_string (Version.to_string v) with
      | Some v' -> check_bool "roundtrip" true (v = v')
      | None -> Alcotest.fail "of_string")
    Version.all;
  check_bool "unknown" true (Version.of_string "5.0" = None);
  check_bool "banner" true (String.length (Version.banner Version.V4_6) > 0)

(* --- Errno ------------------------------------------------------------ *)

let test_errno_codes () =
  check_int "EFAULT" 14 (Errno.to_int Errno.EFAULT);
  check_int "EINVAL" 22 (Errno.to_int Errno.EINVAL);
  check_int "-EFAULT" (-14) (Errno.to_return_code Errno.EFAULT);
  Alcotest.(check string) "name" "EPERM" (Errno.to_string Errno.EPERM)

(* --- Page_info --------------------------------------------------------- *)

let test_page_type_discipline () =
  let t = Page_info.create ~frames:4 in
  check_bool "promote fresh" true (Page_info.get_page_type t 0 Page_info.PGT_l1 = Ok ());
  check_bool "retype busy" true
    (Page_info.get_page_type t 0 Page_info.PGT_writable = Error Errno.EBUSY);
  check_bool "same type ok" true (Page_info.get_page_type t 0 Page_info.PGT_l1 = Ok ());
  check_int "count" 2 (Page_info.get t 0).Page_info.type_count;
  Page_info.put_page_type t 0;
  Page_info.put_page_type t 0;
  check_int "count zero" 0 (Page_info.get t 0).Page_info.type_count;
  check_bool "retype after drop" true (Page_info.get_page_type t 0 Page_info.PGT_writable = Ok ())

let test_page_refcounts () =
  let t = Page_info.create ~frames:2 in
  Page_info.get_page t 1;
  Page_info.get_page t 1;
  check_int "refs" 2 (Page_info.get t 1).Page_info.ref_count;
  Page_info.put_page t 1;
  Page_info.put_page t 1;
  Alcotest.check_raises "underflow" (Invalid_argument "Page_info.put_page: refcount underflow")
    (fun () -> Page_info.put_page t 1)

let test_page_levels () =
  check_bool "l1" true (Page_info.table_level Page_info.PGT_l1 = Some 1);
  check_bool "l4" true (Page_info.table_level Page_info.PGT_l4 = Some 4);
  check_bool "writable" true (Page_info.table_level Page_info.PGT_writable = None);
  check_bool "roundtrip" true
    (List.for_all
       (fun l -> Page_info.table_level (Page_info.ptype_of_level l) = Some l)
       [ 1; 2; 3; 4 ]);
  check_bool "consistent" true (Page_info.counts_consistent (Page_info.create ~frames:8))

(* --- Event channels ----------------------------------------------------- *)

let test_evtchn_bind_send () =
  let a = Event_channel.create ~max_ports:8 in
  let b = Event_channel.create ~max_ports:8 in
  let remote_port =
    match Event_channel.alloc_unbound a ~allowed_remote:2 with
    | Ok p -> p
    | Error _ -> Alcotest.fail "alloc"
  in
  (match
     Event_channel.bind_interdomain ~local:b ~local_dom:2 ~remote:a ~remote_dom:1 ~remote_port
   with
  | Ok p ->
      check_bool "send ok" true (Event_channel.send b p = Ok ());
      check_int "pending" 1 (List.length (Event_channel.pending_ports b));
      check_bool "consume" true (Event_channel.consume b p);
      check_bool "consume twice" false (Event_channel.consume b p)
  | Error _ -> Alcotest.fail "bind");
  check_int "remote bound" 1 (List.length (Event_channel.bound_ports a))

let test_evtchn_permissions () =
  let a = Event_channel.create ~max_ports:4 in
  let b = Event_channel.create ~max_ports:4 in
  let p = Result.get_ok (Event_channel.alloc_unbound a ~allowed_remote:5) in
  check_bool "wrong dom refused" true
    (Event_channel.bind_interdomain ~local:b ~local_dom:2 ~remote:a ~remote_dom:1 ~remote_port:p
    = Error Errno.EPERM);
  check_bool "bad port" true
    (Event_channel.bind_interdomain ~local:b ~local_dom:2 ~remote:a ~remote_dom:1 ~remote_port:99
    = Error Errno.EINVAL);
  check_bool "send unbound" true (Event_channel.send a p = Error Errno.ENOENT)

let test_evtchn_exhaustion_and_close () =
  let a = Event_channel.create ~max_ports:2 in
  ignore (Event_channel.alloc_unbound a ~allowed_remote:1);
  ignore (Event_channel.alloc_unbound a ~allowed_remote:1);
  check_bool "full" true (Event_channel.alloc_unbound a ~allowed_remote:1 = Error Errno.ENOSPC);
  check_bool "close" true (Event_channel.close a 0 = Ok ());
  check_bool "close free" true (Event_channel.close a 0 = Error Errno.ENOENT);
  check_bool "realloc" true (Event_channel.alloc_unbound a ~allowed_remote:1 = Ok 0)

let test_evtchn_force_pending () =
  let a = Event_channel.create ~max_ports:16 in
  check_int "forced" 16 (Event_channel.force_pending_all a);
  check_int "pending" 16 (List.length (Event_channel.pending_ports a));
  check_int "again" 0 (Event_channel.force_pending_all a)

(* --- Grant tables -------------------------------------------------------- *)

let gt_alloc_pool () =
  let next = ref 1000 in
  let freed = ref [] in
  let alloc () =
    incr next;
    !next
  in
  let release mfn = freed := mfn :: !freed in
  (alloc, release, freed)

let test_grant_map_unmap () =
  let t = Grant_table.create ~grefs:8 in
  check_bool "grant" true
    (ok_unit (Grant_table.grant_access t ~gref:3 ~grantee:2 ~mfn:77 ~readonly:false));
  (match Grant_table.map t ~granter:1 ~mapper:2 ~gref:3 with
  | Ok r ->
      check_int "mfn" 77 r.Grant_table.mapped_mfn;
      check_bool "rw" false r.Grant_table.map_readonly;
      check_bool "end while mapped" true (Grant_table.end_access t ~gref:3 = Error Errno.EBUSY);
      check_bool "unmap" true (ok_unit (Grant_table.unmap t ~handle:r.Grant_table.handle));
      check_bool "end after unmap" true (ok_unit (Grant_table.end_access t ~gref:3))
  | Error _ -> Alcotest.fail "map");
  check_bool "map revoked" true (Grant_table.map t ~granter:1 ~mapper:2 ~gref:3 = Error Errno.ENOENT)

let test_grant_wrong_mapper () =
  let t = Grant_table.create ~grefs:4 in
  ignore (Grant_table.grant_access t ~gref:0 ~grantee:2 ~mfn:5 ~readonly:true);
  check_bool "wrong dom" true (Grant_table.map t ~granter:1 ~mapper:3 ~gref:0 = Error Errno.EPERM);
  check_bool "bad gref" true (Grant_table.map t ~granter:1 ~mapper:2 ~gref:9 = Error Errno.EINVAL)

let test_grant_version_switch () =
  let t = Grant_table.create ~grefs:4 in
  let alloc, release, freed = gt_alloc_pool () in
  check_bool "to v2" true (ok_unit (Grant_table.set_version t ~alloc ~release Grant_table.V2));
  check_int "status frames" 1 (List.length (Grant_table.status_frames t));
  check_bool "back to v1" true (ok_unit (Grant_table.set_version t ~alloc ~release Grant_table.V1));
  check_int "status released" 1 (List.length !freed);
  check_int "none retained" 0 (List.length (Grant_table.status_frames t))

let test_grant_version_switch_blocked_while_mapped () =
  let t = Grant_table.create ~grefs:4 in
  let alloc, release, _ = gt_alloc_pool () in
  ignore (Grant_table.grant_access t ~gref:0 ~grantee:2 ~mfn:5 ~readonly:true);
  ignore (Grant_table.map t ~granter:1 ~mapper:2 ~gref:0);
  check_bool "busy" true
    (Grant_table.set_version t ~alloc ~release Grant_table.V2 = Error Errno.EBUSY)

(* --- Grant/evtchn error paths under multi-domain load --------------------- *)

(* The same error paths, driven through the full hypercall dispatcher on
   a four-domain testbed with the default background mix running: every
   tick interleaves two bystander domains' grant/evtchn/memory traffic
   with the steps under test, so the error returns must hold with other
   domains' handles and ports live in the same tables. *)

module TB = Ii_guest.Testbed
module GK = Ii_guest.Kernel

let loaded_tb () = TB.create ~domains:4 ~load:Ii_trace.Load_mix.default Version.V4_8

let test_grant_revoked_mid_map_under_load () =
  let tb = loaded_tb () in
  let victim = tb.TB.victim and attacker = tb.TB.attacker in
  let rc k call = GK.hypercall_rc k call in
  TB.tick_all tb;
  check_int "grant" 0
    (rc victim
       (Hypercall.Grant_table_op
          (Hypercall.Gnttab_grant_access
             { gref = 5; grantee = GK.domid attacker; pfn = 30; readonly = true })));
  TB.tick_all tb;
  let handle =
    rc attacker
      (Hypercall.Grant_table_op
         (Hypercall.Gnttab_map { granter = GK.domid victim; gref = 5 }))
  in
  check_bool "mapped" true (handle >= 0);
  TB.tick_all tb;
  (* the granter revokes while the foreign mapping is still live *)
  check_int "revoke mid-map refused" (-16)
    (rc victim (Hypercall.Grant_table_op (Hypercall.Gnttab_end_access { gref = 5 })));
  TB.tick_all tb;
  check_int "unmap" 0
    (rc attacker
       (Hypercall.Grant_table_op (Hypercall.Gnttab_unmap { granter = GK.domid victim; handle })));
  check_int "revoke after unmap" 0
    (rc victim (Hypercall.Grant_table_op (Hypercall.Gnttab_end_access { gref = 5 })));
  check_int "map after revoke" (-2)
    (rc attacker
       (Hypercall.Grant_table_op (Hypercall.Gnttab_map { granter = GK.domid victim; gref = 5 })))

let test_grant_crossdomain_unmap_ordering_under_load () =
  let tb = loaded_tb () in
  let victim = tb.TB.victim and attacker = tb.TB.attacker in
  let extra =
    match TB.guest_kernels tb with
    | _ :: _ :: e :: _ -> e
    | _ -> Alcotest.fail "expected a third guest domain"
  in
  let rc k call = GK.hypercall_rc k call in
  (* one gref granted to two different domains in turn: the granter may
     only retire the entry once every mapper has released it, whatever
     order they unmap in *)
  check_int "grant to attacker" 0
    (rc victim
       (Hypercall.Grant_table_op
          (Hypercall.Gnttab_grant_access
             { gref = 6; grantee = GK.domid attacker; pfn = 31; readonly = true })));
  let h1 =
    rc attacker
      (Hypercall.Grant_table_op
         (Hypercall.Gnttab_map { granter = GK.domid victim; gref = 6 }))
  in
  check_bool "first mapping" true (h1 >= 0);
  TB.tick_all tb;
  (* a third domain is not the grantee: its map attempt must fail even
     while the legitimate mapping is live *)
  check_int "third domain refused" (-1)
    (rc extra
       (Hypercall.Grant_table_op
          (Hypercall.Gnttab_map { granter = GK.domid victim; gref = 6 })));
  TB.tick_all tb;
  (* a second mapping by the grantee shares the entry *)
  let h2 =
    rc attacker
      (Hypercall.Grant_table_op
         (Hypercall.Gnttab_map { granter = GK.domid victim; gref = 6 }))
  in
  check_bool "second mapping" true (h2 >= 0 && h2 <> h1);
  check_int "revoke with two live" (-16)
    (rc victim (Hypercall.Grant_table_op (Hypercall.Gnttab_end_access { gref = 6 })));
  check_int "unmap first" 0
    (rc attacker
       (Hypercall.Grant_table_op
          (Hypercall.Gnttab_unmap { granter = GK.domid victim; handle = h1 })));
  check_int "revoke with one live" (-16)
    (rc victim (Hypercall.Grant_table_op (Hypercall.Gnttab_end_access { gref = 6 })));
  TB.tick_all tb;
  check_int "unmap second" 0
    (rc attacker
       (Hypercall.Grant_table_op
          (Hypercall.Gnttab_unmap { granter = GK.domid victim; handle = h2 })));
  check_int "stale handle" (-2)
    (rc attacker
       (Hypercall.Grant_table_op
          (Hypercall.Gnttab_unmap { granter = GK.domid victim; handle = h1 })));
  check_int "revoke after both" 0
    (rc victim (Hypercall.Grant_table_op (Hypercall.Gnttab_end_access { gref = 6 })))

let test_evtchn_closed_channel_under_load () =
  let tb = loaded_tb () in
  let victim = tb.TB.victim and attacker = tb.TB.attacker in
  let rc k call = GK.hypercall_rc k call in
  let remote_port =
    rc victim
      (Hypercall.Event_channel_op
         (Hypercall.Evtchn_alloc_unbound { allowed_remote = GK.domid attacker }))
  in
  check_bool "alloc" true (remote_port >= 0);
  let local =
    rc attacker
      (Hypercall.Event_channel_op
         (Hypercall.Evtchn_bind_interdomain
            { remote_dom = GK.domid victim; remote_port }))
  in
  check_bool "bind" true (local >= 0);
  TB.tick_all tb;
  check_int "send" 0
    (rc attacker (Hypercall.Event_channel_op (Hypercall.Evtchn_send { port = local })));
  (* the peer closes its end: the sender's port still exists but the
     signal has nowhere to land *)
  check_int "peer close" 0
    (rc victim (Hypercall.Event_channel_op (Hypercall.Evtchn_close { port = remote_port })));
  TB.tick_all tb;
  check_int "send to closed peer" (-2)
    (rc attacker (Hypercall.Event_channel_op (Hypercall.Evtchn_send { port = local })));
  (* closing our own end, then sending on it *)
  check_int "own close" 0
    (rc attacker (Hypercall.Event_channel_op (Hypercall.Evtchn_close { port = local })));
  check_int "send on own closed port" (-2)
    (rc attacker (Hypercall.Event_channel_op (Hypercall.Evtchn_send { port = local })));
  check_int "double close" (-2)
    (rc attacker (Hypercall.Event_channel_op (Hypercall.Evtchn_close { port = local })));
  check_int "close out of range" (-22)
    (rc attacker (Hypercall.Event_channel_op (Hypercall.Evtchn_close { port = 999 })))

(* --- Sched ---------------------------------------------------------------- *)

let test_sched_round_robin () =
  let sched = Sched.create () in
  ignore (Sched.add_vcpu sched ~dom:0);
  ignore (Sched.add_vcpu sched ~dom:1);
  ignore (Sched.add_vcpu sched ~dom:2);
  let order = List.init 6 (fun _ -> Sched.tick sched) in
  check_bool "fair rotation" true
    (order
    = [ Sched.Scheduled 0; Sched.Scheduled 1; Sched.Scheduled 2; Sched.Scheduled 0;
        Sched.Scheduled 1; Sched.Scheduled 2 ]);
  check_int "runs counted" 2 (Sched.runs_of sched ~dom:1)

let test_sched_idle () =
  let sched = Sched.create () in
  check_bool "idle" true (Sched.tick sched = Sched.Idle)

let test_sched_hang_pins_cpu () =
  let sched = Sched.create ~watchdog_enabled:false () in
  ignore (Sched.add_vcpu sched ~dom:0);
  ignore (Sched.add_vcpu sched ~dom:1);
  check_bool "hang" true (Sched.hang_vcpu sched ~dom:1 ~reason:"#DB storm" = Ok ());
  (match Sched.tick sched with
  | Sched.Cpu_stalled _ -> ()
  | Sched.Scheduled _ | Sched.Idle -> Alcotest.fail "expected stall");
  check_int "dom0 starved" 0 (Sched.runs_of sched ~dom:0);
  check_int "stall counted" 1 (Sched.stalled_slices sched);
  check_bool "unhang" true (Sched.unhang_vcpu sched ~dom:1 = Ok ());
  (match Sched.tick sched with
  | Sched.Scheduled _ -> ()
  | Sched.Cpu_stalled _ | Sched.Idle -> Alcotest.fail "expected progress");
  check_int "stall reset" 0 (Sched.stalled_slices sched)

let test_sched_watchdog () =
  let sched = Sched.create ~watchdog_threshold:3 () in
  ignore (Sched.add_vcpu sched ~dom:0);
  ignore (Sched.hang_vcpu sched ~dom:0 ~reason:"loop");
  for _ = 1 to 3 do
    ignore (Sched.tick sched)
  done;
  check_bool "not yet" false (Sched.watchdog_fired sched);
  ignore (Sched.tick sched);
  check_bool "fired" true (Sched.watchdog_fired sched);
  check_bool "hang missing dom" true (Sched.hang_vcpu sched ~dom:9 ~reason:"x" = Error Errno.ENOENT)

let test_sched_smp_degradation_vs_freeze () =
  (* the deployment ablation: one hung vcpu freezes a 1-pCPU host but
     only degrades a 2-pCPU one *)
  let smp = Sched.create ~pcpus:2 ~watchdog_threshold:3 () in
  ignore (Sched.add_vcpu smp ~dom:0);
  ignore (Sched.add_vcpu smp ~dom:1);
  ignore (Sched.add_vcpu smp ~dom:2);
  ignore (Sched.hang_vcpu smp ~dom:1 ~reason:"loop");
  for _ = 1 to 12 do
    ignore (Sched.tick smp)
  done;
  check_bool "others still run" true (Sched.runs_of smp ~dom:0 > 0 && Sched.runs_of smp ~dom:2 > 0);
  check_int "hung vcpu got nothing" 0 (Sched.runs_of smp ~dom:1);
  check_bool "no watchdog" false (Sched.watchdog_fired smp);
  (* a second hang pins the last pCPU: now it is a freeze *)
  ignore (Sched.hang_vcpu smp ~dom:2 ~reason:"loop");
  for _ = 1 to 6 do
    ignore (Sched.tick smp)
  done;
  check_bool "now stalled" true (Sched.stalled_slices smp > 0);
  check_bool "watchdog fires" true (Sched.watchdog_fired smp)

let test_hv_watchdog_panics () =
  let hv = Hv.boot ~version:Version.V4_8 ~frames:512 in
  ignore (Builder.create_domain hv ~name:"g" ~privileged:false ~pages:32);
  ignore (Sched.hang_vcpu hv.Hv.sched ~dom:0 ~reason:"emulation loop");
  for _ = 1 to 16 do
    ignore (Hv.sched_tick hv)
  done;
  check_bool "panicked" true (Hv.is_crashed hv);
  check_bool "watchdog dump" true
    (List.mem "(XEN) *** WATCHDOG TIMEOUT ***" (Hv.console_lines hv))

(* --- Hv boot ----------------------------------------------------------- *)

let boot ?(version = Version.V4_6) () = Hv.boot ~version ~frames:512

let test_boot_structures () =
  let hv = boot () in
  check_bool "idt installed" true (Cpu.idt_mfn hv.Hv.cpu = Some hv.Hv.idt_mfn);
  check_bool "pf gate valid" true
    (let gate = Idt.read_gate hv.Hv.mem hv.Hv.idt_mfn Idt.vector_page_fault in
     gate.Idt.gate_present && Cpu.handler_name hv.Hv.cpu gate.Idt.handler = Some "page_fault");
  check_bool "console boot line" true
    (List.exists
       (fun l -> String.length l > 5 && String.sub l 0 5 = "(XEN)")
       (Hv.console_lines hv))

let test_m2p () =
  let hv = boot () in
  check_bool "invalid initially" true (Hv.m2p_lookup hv 100 = None);
  Hv.m2p_set hv 100 (Some 7);
  check_bool "set" true (Hv.m2p_lookup hv 100 = Some 7);
  let frame_mfn, off = Hv.m2p_frame_for hv 100 in
  check_i64 "raw bytes" 7L (Frame.get_u64 (Phys_mem.frame hv.Hv.mem frame_mfn) off);
  Hv.m2p_set hv 100 None;
  check_bool "cleared" true (Hv.m2p_lookup hv 100 = None);
  check_bool "m2p frame recognized" true (Hv.is_m2p_frame hv frame_mfn)

let test_release_page_discipline () =
  let hv = boot () in
  let mfn = Hv.alloc_xen_page hv in
  Page_info.get_page hv.Hv.pages mfn;
  Alcotest.check errno_t "busy" Errno.EBUSY (Result.get_error (Hv.release_page hv mfn));
  Page_info.put_page hv.Hv.pages mfn;
  check_bool "released" true (ok_unit (Hv.release_page hv mfn));
  check_bool "freed" true (Phys_mem.owner hv.Hv.mem mfn = Phys_mem.Free)

let test_panic_once () =
  let hv = boot () in
  Hv.panic hv ~reason:"first" ~dump:[ "dump line" ];
  Hv.panic hv ~reason:"second" ~dump:[];
  (match hv.Hv.crashed with
  | Some { Hv.reason; _ } -> Alcotest.(check string) "first wins" "first" reason
  | None -> Alcotest.fail "not crashed");
  check_bool "dump logged" true (List.mem "(XEN) dump line" (Hv.console_lines hv))

let test_deliver_fault_panics_on_corrupt_gate () =
  let hv = boot () in
  Idt.write_gate hv.Hv.mem hv.Hv.idt_mfn Idt.vector_page_fault
    { Idt.handler = 0x666L; selector = 0xe008; gate_present = true };
  (match Hv.deliver_fault hv ~vector:Idt.vector_page_fault ~detail:"test" with
  | Cpu.Double_fault_panic _ -> ()
  | _ -> Alcotest.fail "expected double fault");
  check_bool "crashed" true (Hv.is_crashed hv);
  check_bool "dump mentions DOUBLE FAULT" true
    (List.mem "(XEN) *** DOUBLE FAULT ***" (Hv.console_lines hv))

let test_hypercall_extension_table () =
  let hv = boot () in
  check_bool "empty" true (Hv.lookup_hypercall hv 40 = None);
  Hv.register_hypercall hv ~number:40 ~name:"test" (fun _ _ _ -> Ok 5L);
  (match Hv.lookup_hypercall hv 40 with
  | Some (name, h) ->
      Alcotest.(check string) "name" "test" name;
      let dom =
        Domain.make ~id:9 ~name:"x" ~privileged:false ~max_pfn:1 ~start_info_pfn:0 ~vdso_pfn:0
      in
      check_bool "call" true (h hv dom [||] = Ok 5L)
  | None -> Alcotest.fail "registered");
  Hv.register_hypercall hv ~number:40 ~name:"test2" (fun _ _ _ -> Ok 6L);
  match Hv.lookup_hypercall hv 40 with
  | Some (name, _) -> Alcotest.(check string) "replaced" "test2" name
  | None -> Alcotest.fail "lost"

(* --- Builder + Mm ------------------------------------------------------- *)

let built ?(version = Version.V4_6) () =
  let hv = Hv.boot ~version ~frames:1024 in
  let dom0 = Builder.create_domain hv ~name:"dom0" ~privileged:true ~pages:64 in
  let guest = Builder.create_domain hv ~name:"guest" ~privileged:false ~pages:64 in
  (hv, dom0, guest)

let kva pfn = Domain.kernel_vaddr_of_pfn pfn
let guest_read hv dom va = Cpu.read_u64 hv.Hv.cpu ~ring:Cpu.Kernel ~cr3:dom.Domain.l4_mfn va
let guest_write hv dom va v = Cpu.write_u64 hv.Hv.cpu ~ring:Cpu.Kernel ~cr3:dom.Domain.l4_mfn va v

let test_builder_address_space () =
  let hv, _, guest = built () in
  check_bool "data rw" true (Result.is_ok (guest_write hv guest (kva 5) 0xABCL));
  check_bool "read back" true (guest_read hv guest (kva 5) = Ok 0xABCL);
  let l4_pfn = 63 in
  check_bool "pt readable" true (Result.is_ok (guest_read hv guest (kva l4_pfn)));
  check_bool "pt not writable" true (Result.is_error (guest_write hv guest (kva l4_pfn) 1L));
  match
    Cpu.read_bytes hv.Hv.cpu ~ring:Cpu.Kernel ~cr3:guest.Domain.l4_mfn (kva 0)
      (String.length Builder.start_info_magic)
  with
  | Ok b -> Alcotest.(check string) "magic" Builder.start_info_magic (Bytes.to_string b)
  | Error _ -> Alcotest.fail "start_info read"

let test_builder_m2p_visible () =
  let hv, _, guest = built () in
  let pfn = 3 in
  let mfn = Option.get (Domain.mfn_of_pfn guest pfn) in
  check_bool "m2p" true (Hv.m2p_lookup hv mfn = Some pfn);
  let m2p_va = Int64.add Layout.m2p_base (Int64.of_int (mfn * 8)) in
  check_bool "guest reads m2p" true (guest_read hv guest m2p_va = Ok (Int64.of_int pfn));
  check_bool "guest cannot write m2p" true (Result.is_error (guest_write hv guest m2p_va 0L))

let test_builder_counts_consistent () =
  let hv, _, _ = built () in
  check_bool "consistent" true (Page_info.counts_consistent hv.Hv.pages)

let test_builder_vdso_user_mapping () =
  let hv, _, guest = built () in
  let va = Builder.user_vdso_va in
  (match
     Cpu.read_bytes hv.Hv.cpu ~ring:Cpu.User ~cr3:guest.Domain.l4_mfn va
       (String.length Builder.vdso_magic)
   with
  | Ok b -> Alcotest.(check string) "vdso magic" Builder.vdso_magic (Bytes.to_string b)
  | Error _ -> Alcotest.fail "user vdso read");
  check_bool "user cannot write vdso" true
    (Result.is_error (Cpu.write_u64 hv.Hv.cpu ~ring:Cpu.User ~cr3:guest.Domain.l4_mfn va 0L))

let test_builder_pt_count () =
  check_int "pt pages for 64" 7 (Builder.pt_page_count ~pages:64);
  check_int "pt pages for 600" (1 + 1 + 1 + 2 + 3) (Builder.pt_page_count ~pages:600)

(* --- Mm: mmu_update validation ----------------------------------------- *)

let l1_of hv dom =
  match Paging.walk hv.Hv.mem ~cr3:dom.Domain.l4_mfn (kva 0) with
  | Ok tr -> (List.nth tr.Paging.path 3).Paging.table_mfn
  | Error _ -> Alcotest.fail "no kernel l1"

let l2_of hv dom =
  match Paging.walk hv.Hv.mem ~cr3:dom.Domain.l4_mfn (kva 0) with
  | Ok tr -> (List.nth tr.Paging.path 2).Paging.table_mfn
  | Error _ -> Alcotest.fail "no kernel l2"

let entry_ptr mfn index = Int64.add (Addr.maddr_of_mfn mfn) (Int64.of_int (8 * index))

let test_mmu_update_remap () =
  let hv, _, guest = built () in
  let l1 = l1_of hv guest in
  let mfn9 = Option.get (Domain.mfn_of_pfn guest 9) in
  check_bool "unmap" true (Mm.mmu_update hv guest ~updates:[ (entry_ptr l1 9, Pte.none) ] = Ok 1);
  check_bool "unmapped" true (Result.is_error (guest_read hv guest (kva 9)));
  let e = Pte.make ~mfn:mfn9 ~flags:[ Pte.Present; Pte.Rw; Pte.User ] in
  check_bool "remap" true (Mm.mmu_update hv guest ~updates:[ (entry_ptr l1 9, e) ] = Ok 1);
  check_bool "mapped again" true (Result.is_ok (guest_read hv guest (kva 9)))

let test_mmu_update_rejects_xen_frames () =
  let hv, _, guest = built () in
  let l1 = l1_of hv guest in
  let e = Pte.make ~mfn:hv.Hv.idt_mfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ] in
  Alcotest.check errno_t "idt write refused" Errno.EPERM
    (Result.get_error (Mm.mmu_update hv guest ~updates:[ (entry_ptr l1 200, e) ]));
  let m2p_frame = hv.Hv.m2p_mfns.(0) in
  let e = Pte.make ~mfn:m2p_frame ~flags:[ Pte.Present; Pte.User ] in
  check_bool "m2p ro ok" true (Mm.mmu_update hv guest ~updates:[ (entry_ptr l1 200, e) ] = Ok 1)

let test_mmu_update_rejects_writable_pt_mapping () =
  let hv, _, guest = built () in
  let l1 = l1_of hv guest in
  let e = Pte.make ~mfn:guest.Domain.l4_mfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ] in
  Alcotest.check errno_t "no writable pt maps" Errno.EPERM
    (Result.get_error (Mm.mmu_update hv guest ~updates:[ (entry_ptr l1 200, e) ]));
  let e_ro = Pte.make ~mfn:guest.Domain.l4_mfn ~flags:[ Pte.Present; Pte.User ] in
  check_bool "ro pt map ok" true (Mm.mmu_update hv guest ~updates:[ (entry_ptr l1 200, e_ro) ] = Ok 1)

let test_mmu_update_rejects_foreign_frames () =
  let hv, dom0, guest = built () in
  let l1 = l1_of hv guest in
  let foreign = Option.get (Domain.mfn_of_pfn dom0 5) in
  let e = Pte.make ~mfn:foreign ~flags:[ Pte.Present; Pte.Rw; Pte.User ] in
  Alcotest.check errno_t "foreign refused" Errno.EPERM
    (Result.get_error (Mm.mmu_update hv guest ~updates:[ (entry_ptr l1 200, e) ]));
  let l1_dom0 = l1_of hv dom0 in
  let guest_frame = Option.get (Domain.mfn_of_pfn guest 5) in
  let e = Pte.make ~mfn:guest_frame ~flags:[ Pte.Present; Pte.Rw; Pte.User ] in
  check_bool "dom0 maps guest" true
    (Mm.mmu_update hv dom0 ~updates:[ (entry_ptr l1_dom0 200, e) ] = Ok 1)

let test_mmu_update_grant_allows_foreign () =
  let hv, _, guest = built () in
  let victim = Builder.create_domain hv ~name:"victim" ~privileged:false ~pages:32 in
  let victim_frame = Option.get (Domain.mfn_of_pfn victim 5) in
  (* without a grant: refused *)
  let l1 = l1_of hv guest in
  let e = Pte.make ~mfn:victim_frame ~flags:[ Pte.Present; Pte.User ] in
  Alcotest.check errno_t "no grant" Errno.EPERM
    (Result.get_error (Mm.mmu_update hv guest ~updates:[ (entry_ptr l1 201, e) ]));
  (* with an active grant mapping record: allowed read-only *)
  ignore
    (Grant_table.grant_access victim.Domain.grant ~gref:0 ~grantee:guest.Domain.id
       ~mfn:victim_frame ~readonly:true);
  ignore (Grant_table.map victim.Domain.grant ~granter:victim.Domain.id ~mapper:guest.Domain.id ~gref:0);
  check_bool "granted ro ok" true (Mm.mmu_update hv guest ~updates:[ (entry_ptr l1 201, e) ] = Ok 1);
  (* but not writable when the grant is read-only *)
  let e_rw = Pte.set Pte.Rw e in
  Alcotest.check errno_t "granted ro not rw" Errno.EPERM
    (Result.get_error (Mm.mmu_update hv guest ~updates:[ (entry_ptr l1 202, e_rw) ]))

let test_mmu_update_rejects_non_table () =
  let hv, _, guest = built () in
  let data_mfn = Option.get (Domain.mfn_of_pfn guest 5) in
  Alcotest.check errno_t "not a pt page" Errno.EINVAL
    (Result.get_error (Mm.mmu_update hv guest ~updates:[ (entry_ptr data_mfn 0, Pte.none) ]))

let test_mmu_update_xen_l4_slots_protected () =
  let hv, _, guest = built () in
  let l4 = guest.Domain.l4_mfn in
  Alcotest.check errno_t "slot 256 protected" Errno.EPERM
    (Result.get_error (Mm.mmu_update hv guest ~updates:[ (entry_ptr l4 Layout.m2p_slot, Pte.none) ]))

let test_mmu_update_xsa148_behaviour () =
  let check version expected_ok =
    let hv = Hv.boot ~version ~frames:1024 in
    let guest = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:64 in
    let l2 = l2_of hv guest in
    let l1 = l1_of hv guest in
    let pse = Pte.make ~mfn:l1 ~flags:[ Pte.Present; Pte.Rw; Pte.User; Pte.Pse ] in
    let result = Mm.mmu_update hv guest ~updates:[ (entry_ptr l2 9, pse) ] in
    check_bool
      (Printf.sprintf "PSE on %s" (Version.to_string version))
      expected_ok (Result.is_ok result)
  in
  check Version.V4_6 true;
  check Version.V4_8 false;
  check Version.V4_13 false

let test_mmu_update_xsa182_behaviour () =
  let attempt version =
    let hv = Hv.boot ~version ~frames:1024 in
    let guest = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:64 in
    let l4 = guest.Domain.l4_mfn in
    let slot = Layout.xen_extra_slot in
    let ro = Pte.make ~mfn:l4 ~flags:[ Pte.Present; Pte.User ] in
    let rw = Pte.make ~mfn:l4 ~flags:[ Pte.Present; Pte.User; Pte.Rw ] in
    let step1 = Mm.mmu_update hv guest ~updates:[ (entry_ptr l4 slot, ro) ] in
    let step2 = Mm.mmu_update hv guest ~updates:[ (entry_ptr l4 slot, rw) ] in
    (Result.is_ok step1, Result.is_ok step2)
  in
  check_bool "4.6 both succeed" true (attempt Version.V4_6 = (true, true));
  check_bool "4.8 upgrade refused" true (attempt Version.V4_8 = (true, false));
  check_bool "4.13 self-map refused" true (attempt Version.V4_13 = (false, false))

let test_safe_flags () =
  check_bool "4.6 l4 includes rw" true (List.mem Pte.Rw (Mm.safe_flags Version.V4_6 ~level:4));
  check_bool "4.8 l4 excludes rw" false (List.mem Pte.Rw (Mm.safe_flags Version.V4_8 ~level:4));
  check_bool "4.6 l2 excludes rw" false (List.mem Pte.Rw (Mm.safe_flags Version.V4_6 ~level:2))

let test_update_va_mapping () =
  let hv, _, guest = built () in
  check_bool "unmap via va" true (Result.is_ok (Mm.update_va_mapping hv guest ~va:(kva 7) Pte.none));
  check_bool "unmapped" true (Result.is_error (guest_read hv guest (kva 7)));
  Alcotest.check errno_t "no path" Errno.EINVAL
    (Result.get_error (Mm.update_va_mapping hv guest ~va:0x400_0000_0000L Pte.none))

let test_decrease_reservation () =
  let hv, _, guest = built () in
  Alcotest.check errno_t "mapped busy" Errno.EBUSY
    (Result.get_error (Mm.decrease_reservation hv guest [ 7 ]));
  ignore (Mm.update_va_mapping hv guest ~va:(kva 7) Pte.none);
  let mfn = Option.get (Domain.mfn_of_pfn guest 7) in
  check_bool "released" true (Mm.decrease_reservation hv guest [ 7 ] = Ok 1);
  check_bool "p2m cleared" true (Domain.mfn_of_pfn guest 7 = None);
  check_bool "m2p cleared" true (Hv.m2p_lookup hv mfn = None);
  check_bool "frame freed" true (Phys_mem.owner hv.Hv.mem mfn = Phys_mem.Free);
  Alcotest.check errno_t "absent pfn" Errno.EINVAL
    (Result.get_error (Mm.decrease_reservation hv guest [ 7 ]))

let test_pin_unpin () =
  let hv, _, guest = built () in
  let l1 = l1_of hv guest in
  check_bool "pin l1" true (Result.is_ok (Mm.pin_table hv guest ~level:1 l1));
  check_bool "pinned" true (Page_info.get hv.Hv.pages l1).Page_info.pinned;
  check_bool "unpin" true (Result.is_ok (Mm.unpin_table hv guest l1));
  Alcotest.check errno_t "unpin twice" Errno.EINVAL
    (Result.get_error (Mm.unpin_table hv guest l1))

(* --- Uaccess -------------------------------------------------------------- *)

let test_uaccess_checked () =
  let hv, _, guest = built () in
  let data = Bytes.of_string "hello" in
  check_bool "guest kernel target ok" true (ok_unit (Uaccess.copy_to_guest hv guest (kva 5) data));
  (match Uaccess.copy_from_guest hv guest (kva 5) 5 with
  | Ok b -> Alcotest.(check string) "read back" "hello" (Bytes.to_string b)
  | Error _ -> Alcotest.fail "copy_from");
  let xen_va = Layout.directmap_of_maddr (Addr.maddr_of_mfn hv.Hv.idt_mfn) in
  Alcotest.check errno_t "addr_ok enforced" Errno.EFAULT
    (Result.get_error (Uaccess.copy_to_guest hv guest xen_va data))

let test_uaccess_unchecked_is_arbitrary () =
  let hv, _, guest = built () in
  let target_mfn = hv.Hv.idt_mfn in
  let xen_va = Layout.directmap_of_maddr (Addr.maddr_of_mfn target_mfn) in
  let data = Bytes.make 8 '\xAA' in
  check_bool "broken path writes Xen memory" true
    (ok_unit (Uaccess.copy_to_guest_unchecked hv guest xen_va data));
  check_i64 "bytes landed" 0xAAAAAAAAAAAAAAAAL
    (Frame.get_u64 (Phys_mem.frame hv.Hv.mem target_mfn) 0)

let test_uaccess_range_check () =
  let hv, _, _ = built () in
  check_bool "guest range" true (Uaccess.guest_range_ok hv (kva 0) 4096);
  check_bool "xen range" false (Uaccess.guest_range_ok hv Layout.directmap_base 8);
  check_bool "straddling" false (Uaccess.guest_range_ok hv (Int64.sub Layout.m2p_base 4L) 16)

(* --- Memory_exchange ------------------------------------------------------ *)

let unmap hv dom pfn = ignore (Mm.update_va_mapping hv dom ~va:(kva pfn) Pte.none)

let test_exchange_normal () =
  let hv, _, guest = built () in
  unmap hv guest 9;
  let old_mfn = Option.get (Domain.mfn_of_pfn guest 9) in
  let out = kva 5 in
  match
    Memory_exchange.exchange hv guest { Memory_exchange.in_pfns = [ 9 ]; out_extent_start = out }
  with
  | Ok { Memory_exchange.nr_exchanged; new_mfns } ->
      check_int "one" 1 nr_exchanged;
      let new_mfn = List.hd new_mfns in
      ignore old_mfn (* the allocator may legitimately hand the same frame back *);
      check_bool "p2m updated" true (Domain.mfn_of_pfn guest 9 = Some new_mfn);
      check_bool "m2p updated" true (Hv.m2p_lookup hv new_mfn = Some 9);
      if new_mfn <> old_mfn then
        check_bool "old m2p cleared" true (Hv.m2p_lookup hv old_mfn = None);
      check_i64 "result word" (Memory_exchange.result_word new_mfn)
        (Result.get_ok (guest_read hv guest out))
  | Error _ -> Alcotest.fail "exchange"

let test_exchange_mapped_page_busy () =
  let hv, _, guest = built () in
  Alcotest.check errno_t "busy" Errno.EBUSY
    (Result.get_error
       (Memory_exchange.exchange hv guest
          { Memory_exchange.in_pfns = [ 9 ]; out_extent_start = kva 5 }))

let test_exchange_xsa212 () =
  let attempt version =
    let hv = Hv.boot ~version ~frames:1024 in
    let guest = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:64 in
    unmap hv guest 9;
    let target = Layout.directmap_of_maddr (Addr.maddr_of_mfn hv.Hv.idt_mfn) in
    Memory_exchange.exchange hv guest
      { Memory_exchange.in_pfns = [ 9 ]; out_extent_start = target }
  in
  check_bool "4.6 vulnerable" true (Result.is_ok (attempt Version.V4_6));
  Alcotest.check errno_t "4.8 fixed" Errno.EFAULT (Result.get_error (attempt Version.V4_8));
  Alcotest.check errno_t "4.13 fixed" Errno.EFAULT (Result.get_error (attempt Version.V4_13))

let test_exchange_conserves_pages () =
  let hv, _, guest = built () in
  let before = List.length (Domain.populated_pfns guest) in
  unmap hv guest 9;
  unmap hv guest 10;
  (match
     Memory_exchange.exchange hv guest
       { Memory_exchange.in_pfns = [ 9; 10 ]; out_extent_start = kva 5 }
   with
  | Ok { Memory_exchange.nr_exchanged; _ } -> check_int "two" 2 nr_exchanged
  | Error _ -> Alcotest.fail "exchange");
  check_int "conserved" before (List.length (Domain.populated_pfns guest))

(* --- Abi (register-level hypercalls) ---------------------------------------- *)

let scratch_va = kva 5

let stage hv dom data =
  match Cpu.write_bytes hv.Hv.cpu ~ring:Cpu.Kernel ~cr3:dom.Domain.l4_mfn scratch_va data with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "staging buffer"

let test_abi_mmu_update () =
  let hv, _, guest = built () in
  let l1 = l1_of hv guest in
  stage hv guest (Abi.encode_mmu_updates [ (entry_ptr l1 9, Pte.none) ]);
  check_int "rax" 1 (Abi.dispatch hv guest ~number:Abi.mmu_update_nr ~rdi:scratch_va ~rsi:1L ());
  check_bool "unmapped" true (Result.is_error (guest_read hv guest (kva 9)));
  (* bad request pointer *)
  check_int "efault" (-14)
    (Abi.dispatch hv guest ~number:Abi.mmu_update_nr ~rdi:Layout.directmap_base ~rsi:1L ());
  (* unbounded count *)
  check_int "einval" (-22)
    (Abi.dispatch hv guest ~number:Abi.mmu_update_nr ~rdi:scratch_va ~rsi:99999L ())

let test_abi_update_va_mapping () =
  let hv, _, guest = built () in
  check_int "rax" 0
    (Abi.dispatch hv guest ~number:Abi.update_va_mapping_nr ~rdi:(kva 9) ~rsi:Pte.none ());
  check_bool "unmapped" true (Result.is_error (guest_read hv guest (kva 9)))

let test_abi_memory_op_decrease () =
  let hv, _, guest = built () in
  ignore (Mm.update_va_mapping hv guest ~va:(kva 9) Pte.none);
  (* pfn array at scratch+64, struct at scratch *)
  let array_va = Int64.add scratch_va 64L in
  stage hv guest (Abi.encode_decrease ~extent_start:array_va ~nr_extents:1);
  (match Cpu.write_bytes hv.Hv.cpu ~ring:Cpu.Kernel ~cr3:guest.Domain.l4_mfn array_va
           (Abi.encode_u64_array [ 9L ]) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "array staging");
  check_int "released" 1
    (Abi.dispatch hv guest ~number:Abi.memory_op_nr ~rdi:Abi.subop_decrease_reservation
       ~rsi:scratch_va ());
  check_bool "gone" true (Domain.mfn_of_pfn guest 9 = None)

let test_abi_memory_op_exchange_xsa212 () =
  let attempt version =
    let hv = Hv.boot ~version ~frames:1024 in
    let guest = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:64 in
    ignore (Mm.update_va_mapping hv guest ~va:(kva 9) Pte.none);
    let target = Layout.directmap_of_maddr (Addr.maddr_of_mfn hv.Hv.idt_mfn) in
    let array_va = Int64.add scratch_va 64L in
    stage hv guest (Abi.encode_exchange ~in_extent_start:array_va ~nr_in:1 ~out_extent_start:target);
    (match Cpu.write_bytes hv.Hv.cpu ~ring:Cpu.Kernel ~cr3:guest.Domain.l4_mfn array_va
             (Abi.encode_u64_array [ 9L ]) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "array staging");
    Abi.dispatch hv guest ~number:Abi.memory_op_nr ~rdi:Abi.subop_exchange ~rsi:scratch_va ()
  in
  check_int "4.6 raw breakout accepted" 1 (attempt Version.V4_6);
  check_int "4.8 raw breakout refused" (-14) (attempt Version.V4_8)

let test_abi_console_io () =
  let hv, _, guest = built () in
  stage hv guest (Bytes.of_string "abi hello");
  check_int "rax" 0
    (Abi.dispatch hv guest ~number:Abi.console_io_nr ~rdi:0L ~rsi:9L ~rdx:scratch_va ());
  check_bool "console" true
    (List.exists
       (fun l -> l = Printf.sprintf "(XEN) (d%d) abi hello" guest.Domain.id)
       (Hv.console_lines hv))

let test_abi_mmuext_pin_unpin () =
  let hv, _, guest = built () in
  let l1 = l1_of hv guest in
  stage hv guest (Abi.encode_mmuext [ (Abi.mmuext_pin_l1, Int64.of_int l1) ]);
  check_int "pin rax" 1 (Abi.dispatch hv guest ~number:Abi.mmuext_op_nr ~rdi:scratch_va ~rsi:1L ());
  check_bool "pinned" true (Page_info.get hv.Hv.pages l1).Page_info.pinned;
  stage hv guest (Abi.encode_mmuext [ (Abi.mmuext_unpin, Int64.of_int l1) ]);
  check_int "unpin rax" 1 (Abi.dispatch hv guest ~number:Abi.mmuext_op_nr ~rdi:scratch_va ~rsi:1L ());
  stage hv guest (Abi.encode_mmuext [ (99L, Int64.of_int l1) ]);
  check_int "bad cmd" (-38)
    (Abi.dispatch hv guest ~number:Abi.mmuext_op_nr ~rdi:scratch_va ~rsi:1L ())

let test_abi_extension_fallthrough () =
  let hv, _, guest = built () in
  Hv.register_hypercall hv ~number:40 ~name:"probe" (fun _ _ args ->
      if Array.length args = 4 && args.(3) = 7L then Ok (Int64.add args.(0) args.(1))
      else Error Errno.EINVAL);
  check_int "registers forwarded" 5
    (Abi.dispatch hv guest ~number:40 ~rdi:2L ~rsi:3L ~rdx:0L ~r10:7L ());
  check_int "unknown" (-38) (Abi.dispatch hv guest ~number:77 ())

(* --- Hypercall dispatch ---------------------------------------------------- *)

let test_dispatch_numbers () =
  check_int "mmu_update" 1 (Hypercall.number_of_call (Hypercall.Mmu_update []));
  check_int "memory_op" 12
    (Hypercall.number_of_call
       (Hypercall.Memory_exchange { Memory_exchange.in_pfns = []; out_extent_start = 0L }));
  check_int "raw" 40 (Hypercall.number_of_call (Hypercall.Raw { number = 40; args = [||] }))

let test_dispatch_grant_ops () =
  let hv, dom0, guest = built () in
  let rc call = Hypercall.return_code (Hypercall.dispatch hv guest call) in
  check_int "grant access" 0
    (rc
       (Hypercall.Grant_table_op
          (Hypercall.Gnttab_grant_access { gref = 1; grantee = 0; pfn = 5; readonly = true })));
  let handle =
    Hypercall.return_code
      (Hypercall.dispatch hv dom0
         (Hypercall.Grant_table_op (Hypercall.Gnttab_map { granter = guest.Domain.id; gref = 1 })))
  in
  check_bool "mapped" true (handle >= 0);
  check_int "unmap" 0
    (Hypercall.return_code
       (Hypercall.dispatch hv dom0
          (Hypercall.Grant_table_op
             (Hypercall.Gnttab_unmap { granter = guest.Domain.id; handle }))))

let test_dispatch_evtchn_ops () =
  let hv, dom0, guest = built () in
  let port =
    Hypercall.return_code
      (Hypercall.dispatch hv dom0
         (Hypercall.Event_channel_op
            (Hypercall.Evtchn_alloc_unbound { allowed_remote = guest.Domain.id })))
  in
  check_bool "alloc" true (port >= 0);
  let local =
    Hypercall.return_code
      (Hypercall.dispatch hv guest
         (Hypercall.Event_channel_op
            (Hypercall.Evtchn_bind_interdomain { remote_dom = dom0.Domain.id; remote_port = port })))
  in
  check_bool "bind" true (local >= 0);
  check_int "send" 0
    (Hypercall.return_code
       (Hypercall.dispatch hv guest
          (Hypercall.Event_channel_op (Hypercall.Evtchn_send { port = local }))))

let test_dispatch_refuses_when_crashed () =
  let hv, _, guest = built () in
  Hv.panic hv ~reason:"test" ~dump:[];
  Alcotest.check errno_t "crashed" Errno.EINVAL
    (Result.get_error (Hypercall.dispatch hv guest (Hypercall.Mmu_update [])))

let test_dispatch_unknown_raw () =
  let hv, _, guest = built () in
  Alcotest.check errno_t "enosys" Errno.ENOSYS
    (Result.get_error (Hypercall.dispatch hv guest (Hypercall.Raw { number = 99; args = [||] })))

let test_hypercall_accounting () =
  let hv, _, guest = built () in
  let n0 = List.length (Hv.hypercall_stats hv) in
  ignore n0;
  ignore (Hypercall.dispatch hv guest (Hypercall.Mmu_update []));
  ignore (Hypercall.dispatch hv guest (Hypercall.Mmu_update []));
  ignore (Hypercall.dispatch hv guest (Hypercall.Raw { number = 99; args = [||] }));
  check_bool "mmu counted" true (List.mem_assoc 1 (Hv.hypercall_stats hv));
  check_bool "at least two" true (List.assoc 1 (Hv.hypercall_stats hv) >= 2);
  check_bool "failure counted" true ((Hv.hypercalls_failed hv) >= 1)

let test_dispatch_console_io () =
  let hv, _, guest = built () in
  ignore (Hypercall.dispatch hv guest (Hypercall.Console_io "hello from guest"));
  check_bool "console line" true
    (List.exists
       (fun l -> l = Printf.sprintf "(XEN) (d%d) hello from guest" guest.Domain.id)
       (Hv.console_lines hv))

(* Fuzz: random garbage updates must produce errnos, never exceptions,
   and never leave the hypervisor crashed. *)
let prop_mmu_update_total =
  QCheck.Test.make ~name:"mmu_update never raises on garbage" ~count:200
    QCheck.(pair (map Int64.of_int int) (map Int64.of_int int))
    (fun (ptr, value) ->
      let hv = Hv.boot ~version:Version.V4_6 ~frames:512 in
      let guest = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:32 in
      (match Mm.mmu_update hv guest ~updates:[ (ptr, value) ] with Ok _ | Error _ -> true)
      && not (Hv.is_crashed hv))

let prop_exchange_total =
  QCheck.Test.make ~name:"memory_exchange never raises on garbage" ~count:100
    QCheck.(pair (small_list (int_bound 64)) (map Int64.of_int int))
    (fun (pfns, out) ->
      let hv = Hv.boot ~version:Version.V4_8 ~frames:512 in
      let guest = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:32 in
      match
        Memory_exchange.exchange hv guest
          { Memory_exchange.in_pfns = pfns; out_extent_start = out }
      with
      | Ok _ | Error _ -> true)

let prop_p2m_m2p_inverse =
  QCheck.Test.make ~name:"p2m and m2p stay inverse" ~count:50
    QCheck.(small_list (int_bound 31))
    (fun pfns ->
      let hv = Hv.boot ~version:Version.V4_6 ~frames:512 in
      let guest = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:32 in
      (* churn: unmap + exchange the requested pfns (ignoring failures) *)
      List.iter
        (fun pfn ->
          ignore (Mm.update_va_mapping hv guest ~va:(kva pfn) Pte.none);
          ignore
            (Memory_exchange.exchange hv guest
               { Memory_exchange.in_pfns = [ pfn ]; out_extent_start = kva 5 }))
        pfns;
      List.for_all
        (fun pfn ->
          match Domain.mfn_of_pfn guest pfn with
          | None -> true
          | Some mfn -> Hv.m2p_lookup hv mfn = Some pfn)
        (Domain.populated_pfns guest))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "xen"
    [
      ( "version",
        [
          Alcotest.test_case "predicates" `Quick test_version_predicates;
          Alcotest.test_case "strings" `Quick test_version_strings;
        ] );
      ("errno", [ Alcotest.test_case "codes" `Quick test_errno_codes ]);
      ( "page_info",
        [
          Alcotest.test_case "type discipline" `Quick test_page_type_discipline;
          Alcotest.test_case "refcounts" `Quick test_page_refcounts;
          Alcotest.test_case "levels" `Quick test_page_levels;
        ] );
      ( "event_channel",
        [
          Alcotest.test_case "bind and send" `Quick test_evtchn_bind_send;
          Alcotest.test_case "permissions" `Quick test_evtchn_permissions;
          Alcotest.test_case "exhaustion and close" `Quick test_evtchn_exhaustion_and_close;
          Alcotest.test_case "force pending" `Quick test_evtchn_force_pending;
        ] );
      ( "grant_table",
        [
          Alcotest.test_case "map/unmap" `Quick test_grant_map_unmap;
          Alcotest.test_case "wrong mapper" `Quick test_grant_wrong_mapper;
          Alcotest.test_case "version switch" `Quick test_grant_version_switch;
          Alcotest.test_case "switch blocked while mapped" `Quick
            test_grant_version_switch_blocked_while_mapped;
          Alcotest.test_case "revoked mid-map under load" `Quick
            test_grant_revoked_mid_map_under_load;
          Alcotest.test_case "cross-domain unmap ordering under load" `Quick
            test_grant_crossdomain_unmap_ordering_under_load;
          Alcotest.test_case "closed channel under load" `Quick
            test_evtchn_closed_channel_under_load;
        ] );
      ( "sched",
        [
          Alcotest.test_case "round robin" `Quick test_sched_round_robin;
          Alcotest.test_case "idle" `Quick test_sched_idle;
          Alcotest.test_case "hang pins cpu" `Quick test_sched_hang_pins_cpu;
          Alcotest.test_case "watchdog" `Quick test_sched_watchdog;
          Alcotest.test_case "smp: degradation vs freeze" `Quick
            test_sched_smp_degradation_vs_freeze;
          Alcotest.test_case "hv watchdog panics" `Quick test_hv_watchdog_panics;
        ] );
      ( "hv",
        [
          Alcotest.test_case "boot structures" `Quick test_boot_structures;
          Alcotest.test_case "m2p" `Quick test_m2p;
          Alcotest.test_case "release discipline" `Quick test_release_page_discipline;
          Alcotest.test_case "panic once" `Quick test_panic_once;
          Alcotest.test_case "fault panics on corrupt gate" `Quick
            test_deliver_fault_panics_on_corrupt_gate;
          Alcotest.test_case "hypercall extension" `Quick test_hypercall_extension_table;
        ] );
      ( "builder",
        [
          Alcotest.test_case "address space" `Quick test_builder_address_space;
          Alcotest.test_case "m2p visible" `Quick test_builder_m2p_visible;
          Alcotest.test_case "counts consistent" `Quick test_builder_counts_consistent;
          Alcotest.test_case "vdso user mapping" `Quick test_builder_vdso_user_mapping;
          Alcotest.test_case "pt count" `Quick test_builder_pt_count;
        ] );
      ( "mm",
        [
          Alcotest.test_case "remap" `Quick test_mmu_update_remap;
          Alcotest.test_case "rejects xen frames" `Quick test_mmu_update_rejects_xen_frames;
          Alcotest.test_case "rejects writable pt maps" `Quick
            test_mmu_update_rejects_writable_pt_mapping;
          Alcotest.test_case "rejects foreign frames" `Quick test_mmu_update_rejects_foreign_frames;
          Alcotest.test_case "grant allows foreign" `Quick test_mmu_update_grant_allows_foreign;
          Alcotest.test_case "rejects non-table" `Quick test_mmu_update_rejects_non_table;
          Alcotest.test_case "xen l4 slots protected" `Quick test_mmu_update_xen_l4_slots_protected;
          Alcotest.test_case "XSA-148 version behaviour" `Quick test_mmu_update_xsa148_behaviour;
          Alcotest.test_case "XSA-182 version behaviour" `Quick test_mmu_update_xsa182_behaviour;
          Alcotest.test_case "safe flags" `Quick test_safe_flags;
          Alcotest.test_case "update_va_mapping" `Quick test_update_va_mapping;
          Alcotest.test_case "decrease_reservation" `Quick test_decrease_reservation;
          Alcotest.test_case "pin/unpin" `Quick test_pin_unpin;
        ]
        @ qsuite [ prop_mmu_update_total ] );
      ( "uaccess",
        [
          Alcotest.test_case "checked" `Quick test_uaccess_checked;
          Alcotest.test_case "unchecked is arbitrary" `Quick test_uaccess_unchecked_is_arbitrary;
          Alcotest.test_case "range check" `Quick test_uaccess_range_check;
        ] );
      ( "memory_exchange",
        [
          Alcotest.test_case "normal" `Quick test_exchange_normal;
          Alcotest.test_case "mapped busy" `Quick test_exchange_mapped_page_busy;
          Alcotest.test_case "XSA-212 version behaviour" `Quick test_exchange_xsa212;
          Alcotest.test_case "conserves pages" `Quick test_exchange_conserves_pages;
        ]
        @ qsuite [ prop_exchange_total; prop_p2m_m2p_inverse ] );
      ( "abi",
        [
          Alcotest.test_case "mmu_update" `Quick test_abi_mmu_update;
          Alcotest.test_case "update_va_mapping" `Quick test_abi_update_va_mapping;
          Alcotest.test_case "memory_op decrease" `Quick test_abi_memory_op_decrease;
          Alcotest.test_case "memory_op exchange (XSA-212 raw)" `Quick
            test_abi_memory_op_exchange_xsa212;
          Alcotest.test_case "console_io" `Quick test_abi_console_io;
          Alcotest.test_case "mmuext pin/unpin" `Quick test_abi_mmuext_pin_unpin;
          Alcotest.test_case "extension fallthrough" `Quick test_abi_extension_fallthrough;
        ] );
      ( "hypercall",
        [
          Alcotest.test_case "numbers" `Quick test_dispatch_numbers;
          Alcotest.test_case "grant ops" `Quick test_dispatch_grant_ops;
          Alcotest.test_case "evtchn ops" `Quick test_dispatch_evtchn_ops;
          Alcotest.test_case "refuses when crashed" `Quick test_dispatch_refuses_when_crashed;
          Alcotest.test_case "unknown raw" `Quick test_dispatch_unknown_raw;
          Alcotest.test_case "console io" `Quick test_dispatch_console_io;
          Alcotest.test_case "accounting" `Quick test_hypercall_accounting;
        ] );
    ]
