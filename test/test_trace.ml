(* Tests for the trace subsystem: ring wraparound must keep the newest
   records, a deterministic trial must record a byte-identical trace
   every time, replaying a recording's boundary events must reproduce
   its final monitor snapshot, and enabling the ring must never change
   a campaign result. *)

open Ii_trace
open Ii_xen
open Ii_core
module All = Ii_exploits.All_exploits

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let uc name =
  match All.find name with Some uc -> uc | None -> Alcotest.fail ("no use case " ^ name)

(* --- ring mechanics ------------------------------------------------------ *)

let test_roundtrip () =
  let tr = Trace.create () in
  Trace.enable tr;
  let evs =
    [
      Trace.Hypercall { domid = 2; number = 1; digest = 42L; payload = "abc" };
      Trace.Guest_mem
        { domid = 1; op = Trace.Op_write_u64; va = 0xffff880000002000L; len = 8; data = "01234567" };
      Trace.Fault { vector = 14; escalation = 1 };
      Trace.Page_type { mfn = 77; from_type = 0; to_type = 2 };
      Trace.Net_cmd { to_host = "xen2"; port = 1234; conn_id = 0; cmd = "whoami" };
      Trace.Xenstore_write
        { caller = -1; injected = true; path = "/local/domain/2/memory/target"; value = "64" };
      Trace.Monitor_verdict { violations = 3; classes = 0xe };
      Trace.Panic { reason = "DOUBLE FAULT" };
    ]
  in
  List.iter (Trace.emit tr) evs;
  let recs = Trace.records tr in
  check_int "count" (List.length evs) (List.length recs);
  List.iteri
    (fun i { Trace.seq; event; _ } ->
      check_int "seq" i seq;
      check_bool "event" true (event = List.nth evs i))
    recs;
  (* the framed image decodes to the same records *)
  check_bool "records_of_string" true (Trace.records_of_string (Trace.to_bytes tr) = recs)

let test_wraparound_keeps_newest () =
  let tr = Trace.create () in
  Trace.enable ~capacity_bytes:256 tr;
  for i = 0 to 99 do
    Trace.emit tr (Trace.Tlb_invlpg { va = Int64.of_int i })
  done;
  check_bool "evicted some" true (Trace.dropped tr > 0);
  let recs = Trace.records tr in
  check_bool "kept some" true (recs <> []);
  (* survivors are exactly the newest suffix, in order *)
  let expected_first = 100 - List.length recs in
  List.iteri
    (fun i { Trace.seq; event; _ } ->
      check_int "suffix seq" (expected_first + i) seq;
      check_bool "suffix payload" true (event = Trace.Tlb_invlpg { va = Int64.of_int seq }))
    recs

let test_disabled_ring_records_nothing () =
  let tr = Trace.create () in
  Trace.emit tr Trace.Tlb_flush_all;
  check_int "no records" 0 (List.length (Trace.records tr));
  (* counters tick regardless of the ring *)
  Trace.note_fault tr ~double:false;
  check_int "counter" 1 (Trace.Counters.faults (Trace.counters tr))

let test_depth_suppression () =
  let tr = Trace.create () in
  Trace.enable tr;
  check_bool "top level" true (Trace.top_level tr);
  Trace.enter tr;
  check_bool "nested" false (Trace.top_level tr);
  Trace.leave tr;
  check_bool "top again" true (Trace.top_level tr)

let test_detection_latency () =
  let inj = Trace.Injector_access { action = 1; addr = 0L; len = 8 } in
  let verdict n = Trace.Monitor_verdict { violations = n; classes = 1 } in
  let recs evs = List.mapi (fun seq event -> { Trace.seq; vts = 0L; event }) evs in
  check_bool "missing injector" true
    (Trace.detection_latency (recs [ verdict 1 ]) = None);
  check_bool "empty verdict ignored" true
    (Trace.detection_latency (recs [ inj; verdict 0 ]) = None);
  check_bool "latency is the seq distance" true
    (Trace.detection_latency (recs [ inj; Trace.Tlb_flush_all; Trace.Sched_round; verdict 2 ])
    = Some 3)

(* --- determinism --------------------------------------------------------- *)

let test_record_deterministic () =
  let uc = uc "XSA-148-priv" in
  let a = Trace_driver.record uc Campaign.Injection Version.V4_6 in
  let b = Trace_driver.record uc Campaign.Injection Version.V4_6 in
  check_string "byte-identical traces" a.Trace_driver.rec_bytes b.Trace_driver.rec_bytes;
  check_int "nothing dropped" 0 a.Trace_driver.rec_dropped

(* --- replay -------------------------------------------------------------- *)

let test_replay_equivalent () =
  List.iter
    (fun uc ->
      List.iter
        (fun mode ->
          let r = Trace_driver.record uc mode Version.V4_6 in
          let o = Trace_driver.replay r in
          check_bool
            (Printf.sprintf "replay %s/%s reaches the recorded final state"
               uc.Campaign.uc_name (Campaign.mode_to_string mode))
            true o.Trace_driver.rp_equal;
          check_bool "applied something" true (o.Trace_driver.rp_applied > 0))
        [ Campaign.Real_exploit; Campaign.Injection ])
    All.use_cases

(* --- tracing must not perturb results ------------------------------------ *)

let strip_row (r : Campaign.result_row) =
  (r.Campaign.r_use_case, r.Campaign.r_version, r.Campaign.r_mode, r.Campaign.r_state,
   r.Campaign.r_state_evidence, r.Campaign.r_violations, r.Campaign.r_transcript,
   r.Campaign.r_rc, r.Campaign.r_telemetry)

let test_tracing_does_not_change_results () =
  List.iter
    (fun uc ->
      let plain = Campaign.run uc Campaign.Injection Version.V4_6 in
      let traced = (Trace_driver.record uc Campaign.Injection Version.V4_6).Trace_driver.rec_row in
      check_bool
        (Printf.sprintf "%s: traced row = plain row" uc.Campaign.uc_name)
        true
        (strip_row plain = strip_row traced))
    All.use_cases

(* --- telemetry ----------------------------------------------------------- *)

let test_telemetry_counts_injector () =
  let r = Campaign.run (uc "XSA-148-priv") Campaign.Injection Version.V4_6 in
  let t = r.Campaign.r_telemetry in
  check_bool "at least one hypercall" true (Trace.total_hypercalls t >= 1);
  check_bool "injector access counted" true (t.Trace.tm_injector_accesses >= 1);
  check_bool "injector hypercall keyed by number" true
    (List.mem_assoc Injector.hypercall_number t.Trace.tm_hypercalls)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_telemetry_table_renders () =
  let r = Campaign.run (uc "XSA-212-crash") Campaign.Injection Version.V4_6 in
  let s = Campaign.telemetry_table [ r ] in
  check_bool "mentions the use case" true (contains ~sub:"XSA-212-crash" s);
  check_bool "has the hypercall column" true (contains ~sub:"Hypercalls" s)

(* With extra domains live the table grows one row per affected domain:
   the Dom/Viol columns name each casualty, and every domain the trial
   touched must appear in the rendering. *)
let test_telemetry_table_per_domain_rows () =
  let r =
    Campaign.run ~domains:4 ~load:Load_mix.default (uc "XSA-212-priv") Campaign.Injection
      Version.V4_6
  in
  let s = Campaign.telemetry_table [ r ] in
  check_bool "has the Dom column" true (contains ~sub:"Dom" s);
  check_bool "has the Viol column" true (contains ~sub:"Viol" s);
  check_bool "at least one affected domain" true (r.Campaign.r_domains <> []);
  List.iter
    (fun (d, _) -> check_bool (d ^ " rendered") true (contains ~sub:d s))
    r.Campaign.r_domains

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "wraparound keeps newest" `Quick test_wraparound_keeps_newest;
          Alcotest.test_case "disabled ring records nothing" `Quick
            test_disabled_ring_records_nothing;
          Alcotest.test_case "depth suppression" `Quick test_depth_suppression;
          Alcotest.test_case "detection latency" `Quick test_detection_latency;
        ] );
      ( "determinism",
        [ Alcotest.test_case "same trial, same bytes" `Quick test_record_deterministic ] );
      ( "replay",
        [ Alcotest.test_case "replay = record, all use cases" `Quick test_replay_equivalent ] );
      ( "telemetry",
        [
          Alcotest.test_case "tracing does not change results" `Quick
            test_tracing_does_not_change_results;
          Alcotest.test_case "injector counted" `Quick test_telemetry_counts_injector;
          Alcotest.test_case "table renders" `Quick test_telemetry_table_renders;
          Alcotest.test_case "per-domain rows" `Quick test_telemetry_table_per_domain_rows;
        ] );
    ]
