(* Tests for the KVM-style hypervisor (nested paging, VMCS, the ioctl
   injector) and the cross-system injection study. *)

open Ii_xen
open Ii_kvm

let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)

let host () =
  let kvm = Kvm.boot ~frames:2048 in
  let vm = Kvm.create_vm kvm ~name:"g" ~pages:64 in
  (kvm, vm)

(* --- Nested ------------------------------------------------------------- *)

let test_ept_translate () =
  let kvm, vm = host () in
  (* gpa 5 maps somewhere valid; beyond the guest size it must not *)
  check_bool "mapped" true
    (Result.is_ok (Nested.ept_translate (Kvm.mem kvm) ~ept_root:vm.Kvm.ept_root 0x5000L));
  (match Nested.ept_translate (Kvm.mem kvm) ~ept_root:vm.Kvm.ept_root 0x100_0000L with
  | Error (Nested.Ept_violation _) -> ()
  | _ -> Alcotest.fail "expected EPT violation");
  (* distinct gpas map to distinct host frames *)
  let ma g = Result.get_ok (Nested.ept_translate (Kvm.mem kvm) ~ept_root:vm.Kvm.ept_root g) in
  check_bool "injective" true (ma 0x1000L <> ma 0x2000L)

let test_two_dimensional_walk () =
  let kvm, vm = host () in
  let va = Int64.add Layout.guest_kernel_base 0x5000L in
  check_bool "guest write" true (Kvm.guest_write_u64 kvm vm va 0xFACEL = Ok ());
  check_bool "guest read" true (Kvm.guest_read_u64 kvm vm va = Ok 0xFACEL);
  (* the write landed in the host frame the EPT names for gpa 5 *)
  let ma = Result.get_ok (Kvm.gpa_to_maddr kvm vm 0x5000L) in
  check_i64 "backing frame" 0xFACEL (Phys_mem.read_u64 (Kvm.mem kvm) ma)

let test_guest_walk_faults () =
  let kvm, vm = host () in
  (match Kvm.guest_read_u64 kvm vm 0x1234L with
  | Error (Nested.Guest_not_present _) -> ()
  | _ -> Alcotest.fail "unmapped guest va must fault in the guest dimension");
  (* write through a read-only guest mapping: make one *)
  let idt_ma = Result.get_ok (Kvm.gpa_to_maddr kvm vm vm.Kvm.idt_gpa) in
  ignore idt_ma;
  ()

let test_vm_isolation () =
  let kvm = Kvm.boot ~frames:2048 in
  let a = Kvm.create_vm kvm ~name:"a" ~pages:64 in
  let b = Kvm.create_vm kvm ~name:"b" ~pages:64 in
  let va = Int64.add Layout.guest_kernel_base 0x3000L in
  ignore (Kvm.guest_write_u64 kvm a va 0xAAAAL);
  ignore (Kvm.guest_write_u64 kvm b va 0xBBBBL);
  check_bool "a sees its own" true (Kvm.guest_read_u64 kvm a va = Ok 0xAAAAL);
  check_bool "b sees its own" true (Kvm.guest_read_u64 kvm b va = Ok 0xBBBBL);
  (* same gpa, different host frames *)
  check_bool "ept roots differ" true (a.Kvm.ept_root <> b.Kvm.ept_root);
  check_bool "backing differs" true
    (Kvm.gpa_to_maddr kvm a 0x3000L <> Kvm.gpa_to_maddr kvm b 0x3000L)

(* --- VMCS / guest IDT ------------------------------------------------------ *)

let test_vm_entry_ok () =
  let kvm, vm = host () in
  check_bool "entry ok" true (Kvm.vm_entry kvm vm = Ok ());
  check_bool "fault handled" true
    (Kvm.deliver_guest_fault kvm vm ~vector:14 = Ok ())

let test_vmcs_corruption_kills_vm_only () =
  let kvm = Kvm.boot ~frames:2048 in
  let victim = Kvm.create_vm kvm ~name:"victim" ~pages:64 in
  let bystander = Kvm.create_vm kvm ~name:"bystander" ~pages:64 in
  Phys_mem.write_u64 (Kvm.mem kvm) (Int64.add (Addr.maddr_of_mfn victim.Kvm.vmcs_mfn) 8L) 0xBADL;
  check_bool "entry fails" true (Result.is_error (Kvm.vm_entry kvm victim));
  check_bool "victim dead" true (victim.Kvm.state <> Kvm.Vm_running);
  check_bool "bystander fine" true (Kvm.vm_entry kvm bystander = Ok ());
  check_bool "stays dead" true (Result.is_error (Kvm.vm_entry kvm victim));
  check_bool "console notes" true
    (List.exists
       (fun l ->
         let needle = "VM-entry failed" in
         let n = String.length needle and m = String.length l in
         let rec go i = i + n <= m && (String.sub l i n = needle || go (i + 1)) in
         go 0)
       (Kvm.console kvm))

let test_guest_idt_corruption_kills_guest_only () =
  let kvm, vm = host () in
  let idt_ma = Result.get_ok (Kvm.gpa_to_maddr kvm vm vm.Kvm.idt_gpa) in
  Phys_mem.write_u64 (Kvm.mem kvm)
    (Int64.add idt_ma (Int64.of_int (Idt.handler_offset 14)))
    0x666L;
  check_bool "guest panic" true (Result.is_error (Kvm.deliver_guest_fault kvm vm ~vector:14));
  check_bool "vm dead" true (vm.Kvm.state <> Kvm.Vm_running);
  (* other vectors were untouched but the VM is already gone *)
  check_bool "still dead" true (Result.is_error (Kvm.deliver_guest_fault kvm vm ~vector:3))

(* --- the ioctl injector ------------------------------------------------------ *)

let test_injector_actions () =
  let kvm, vm = host () in
  let ma = Result.get_ok (Kvm.gpa_to_maddr kvm vm 0x7000L) in
  let data = Bytes.create 8 in
  Bytes.set_int64_le data 0 0x1122L;
  check_bool "phys write" true
    (Kvm.arbitrary_access kvm ~addr:ma Kvm.Arbitrary_write_physical ~data = Ok None);
  (match Kvm.arbitrary_access kvm ~addr:ma Kvm.Arbitrary_read_physical ~data:(Bytes.create 8) with
  | Ok (Some b) -> check_i64 "read back" 0x1122L (Bytes.get_int64_le b 0)
  | _ -> Alcotest.fail "read");
  (* linear action resolves through the host direct map *)
  let lin = Layout.directmap_of_maddr ma in
  (match Kvm.arbitrary_access kvm ~addr:lin Kvm.Arbitrary_read_linear ~data:(Bytes.create 8) with
  | Ok (Some b) -> check_i64 "linear read" 0x1122L (Bytes.get_int64_le b 0)
  | _ -> Alcotest.fail "linear read");
  check_bool "oob refused" true
    (Kvm.arbitrary_access kvm ~addr:0x7FFF_0000_0000L Kvm.Arbitrary_write_physical ~data
    = Error Errno.EINVAL);
  check_bool "empty refused" true
    (Kvm.arbitrary_access kvm ~addr:ma Kvm.Arbitrary_read_physical ~data:Bytes.empty
    = Error Errno.EINVAL)

(* --- cross-system study -------------------------------------------------------- *)

let rows = lazy (Ii_exploits.Cross_system.run ())

let test_cross_system_all_inject () =
  List.iter
    (fun r -> check_bool (r.Ii_exploits.Cross_system.cs_system ^ " injected") true
        r.Ii_exploits.Cross_system.cs_injected)
    (Lazy.force rows)

let test_cross_system_blast_radius () =
  match Lazy.force rows with
  | [ xen; kvm_idt; kvm_vmcs ] ->
      check_bool "xen host dies" false xen.Ii_exploits.Cross_system.host_survives;
      check_bool "kvm host survives idt" true kvm_idt.Ii_exploits.Cross_system.host_survives;
      check_bool "kvm bystander survives idt" true
        kvm_idt.Ii_exploits.Cross_system.bystander_survives;
      check_bool "kvm host survives vmcs" true kvm_vmcs.Ii_exploits.Cross_system.host_survives;
      check_bool "kvm bystander survives vmcs" true
        kvm_vmcs.Ii_exploits.Cross_system.bystander_survives
  | _ -> Alcotest.fail "three rows expected"

let test_cross_system_shared_im () =
  check_bool "one portable IM" true
    (Ii_exploits.Cross_system.im.Ii_core.Intrusion_model.functionality
    = Ii_core.Abusive_functionality.Write_unauthorized_arbitrary_memory)

let () =
  Alcotest.run "kvm"
    [
      ( "nested",
        [
          Alcotest.test_case "ept translate" `Quick test_ept_translate;
          Alcotest.test_case "two-dimensional walk" `Quick test_two_dimensional_walk;
          Alcotest.test_case "guest walk faults" `Quick test_guest_walk_faults;
          Alcotest.test_case "vm isolation" `Quick test_vm_isolation;
        ] );
      ( "vmcs+idt",
        [
          Alcotest.test_case "vm entry ok" `Quick test_vm_entry_ok;
          Alcotest.test_case "vmcs corruption kills vm only" `Quick
            test_vmcs_corruption_kills_vm_only;
          Alcotest.test_case "guest idt corruption kills guest only" `Quick
            test_guest_idt_corruption_kills_guest_only;
        ] );
      ("injector", [ Alcotest.test_case "actions" `Quick test_injector_actions ]);
      ( "cross_system",
        [
          Alcotest.test_case "all inject" `Quick test_cross_system_all_inject;
          Alcotest.test_case "blast radius" `Quick test_cross_system_blast_radius;
          Alcotest.test_case "shared IM" `Quick test_cross_system_shared_im;
        ] );
    ]
