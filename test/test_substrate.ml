(* Refactor-neutrality and substrate tests.

   The substrate refactor must leave the Xen path byte-identical:
   trace recordings and campaign result rows produced through the
   substrate-generic drivers must equal the pre-refactor fixtures in
   [Golden_xen] (captured before the refactor; never regenerated).
   The KVM backend must be a complete substrate: campaign runs,
   checkpoint/reset, Errno-mapped injection port, deterministic trace
   record/replay, and working detectors. *)

open Ii_trace
open Ii_xen
open Ii_core
module All = Ii_exploits.All_exploits
module BK = Ii_backends.Backend_kvm
module KC = Ii_backends.Backends.Kvm_campaign
module KT = Ii_backends.Backends.Kvm_trace
module KV = Ii_backends.Backends.Kvm_vmi
module KU = Ii_backends.Kvm_use_cases

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let uc name =
  match All.find name with Some uc -> uc | None -> Alcotest.fail ("no use case " ^ name)

let mode_of_string = function
  | "exploit" -> Campaign.Real_exploit
  | "injection" -> Campaign.Injection
  | m -> Alcotest.fail ("bad mode in fixture: " ^ m)

(* The exact fingerprint the fixture generator used, re-implemented
   here: any drift in row content or formatting shows up as a diff. *)
let fingerprint (r : Campaign.result_row) =
  let t = r.Campaign.r_telemetry in
  String.concat "\n"
    ([ Printf.sprintf "use_case=%s" r.Campaign.r_use_case;
       Printf.sprintf "version=%s" (Version.to_string r.Campaign.r_version);
       Printf.sprintf "mode=%s" (Campaign.mode_to_string r.Campaign.r_mode);
       Printf.sprintf "state=%b" r.Campaign.r_state;
       Printf.sprintf "rc=%s"
         (match r.Campaign.r_rc with Some rc -> string_of_int rc | None -> "-") ]
    @ List.map (fun e -> "evidence=" ^ e) r.Campaign.r_state_evidence
    @ List.map
        (fun v -> "violation=" ^ Monitor.violation_to_string v)
        r.Campaign.r_violations
    @ List.map (fun l -> "transcript=" ^ l) r.Campaign.r_transcript
    @ [ Printf.sprintf "telemetry=%s|f%d|F%d|d%d|fl%d|i%d|p%d|g%d|e%d|inj%d|vs%d|vf%d|vfr%d"
          (String.concat ","
             (List.map (fun (n, c) -> Printf.sprintf "%d:%d" n c) t.Trace.tm_hypercalls))
          t.Trace.tm_hypercalls_failed t.Trace.tm_faults t.Trace.tm_double_faults
          t.Trace.tm_flushes t.Trace.tm_invlpgs t.Trace.tm_page_type_changes
          t.Trace.tm_grant_ops t.Trace.tm_evtchn_ops t.Trace.tm_injector_accesses
          t.Trace.tm_vmi_scans t.Trace.tm_vmi_findings t.Trace.tm_vmi_frames ])

(* --- Xen neutrality ------------------------------------------------------ *)

let test_golden_trace_bytes () =
  List.iter
    (fun (name, mode_s, trace_bytes, _) ->
      let r = Trace_driver.record (uc name) (mode_of_string mode_s) Version.V4_6 in
      (* the fixtures pre-date the virtual-timestamp field; stripping it
         re-frames the v2 ring back to the v1 layout they were cut from,
         so the (seq, event) stream is still compared byte-for-byte *)
      check_string
        (Printf.sprintf "%s/%s trace bytes" name mode_s)
        trace_bytes
        (Trace.strip_vts r.Trace_driver.rec_bytes))
    Golden_xen.cases

let test_golden_row_fingerprints () =
  List.iter
    (fun (name, mode_s, _, row_fp) ->
      let r = Trace_driver.record (uc name) (mode_of_string mode_s) Version.V4_6 in
      check_string
        (Printf.sprintf "%s/%s row fingerprint" name mode_s)
        row_fp
        (fingerprint r.Trace_driver.rec_row))
    Golden_xen.cases

let test_golden_recordings_replay () =
  List.iter
    (fun (name, mode_s, _, _) ->
      let r = Trace_driver.record (uc name) (mode_of_string mode_s) Version.V4_6 in
      let o = Trace_driver.replay r in
      check_bool (Printf.sprintf "%s/%s applied" name mode_s) true (o.Trace_driver.rp_applied > 0);
      check_bool (Printf.sprintf "%s/%s equal" name mode_s) true o.Trace_driver.rp_equal)
    Golden_xen.cases

let test_backend_field_tags_xen () =
  let r = Campaign.run (uc "XSA-148-priv") Campaign.Injection Version.V4_6 in
  check_string "r_backend" "xen" r.Campaign.r_backend

(* --- the shared four-action codec ---------------------------------------- *)

let all_actions =
  [
    Access.Arbitrary_read_linear;
    Access.Arbitrary_write_linear;
    Access.Arbitrary_read_physical;
    Access.Arbitrary_write_physical;
  ]

let test_access_roundtrip () =
  List.iter
    (fun a ->
      check_bool (Access.to_string a) true (Access.of_code (Access.code a) = Some a))
    all_actions;
  check_bool "bad code" true (Access.of_code 99L = None);
  (* the injector and the KVM ioctl expose the same codec *)
  List.iter
    (fun a -> check_bool "injector codec" true (Access.code a = Injector.action_code a))
    all_actions;
  List.iter
    (fun a ->
      check_bool "write split" (Access.is_write a)
        (a = Access.Arbitrary_write_linear || a = Access.Arbitrary_write_physical);
      check_bool "physical split" (Access.is_physical a)
        (a = Access.Arbitrary_read_physical || a = Access.Arbitrary_write_physical))
    all_actions

(* --- KVM backend --------------------------------------------------------- *)

let test_kvm_errno () =
  let t = BK.create BK.Stock in
  let b = Bytes.make 8 '\xaa' in
  (* gated port: ENOSYS before the injector is installed *)
  check_bool "enosys" true
    (BK.inject_write t ~addr:(Int64.add (Addr.maddr_of_mfn t.BK.victim.Ii_kvm.Kvm.vmcs_mfn) 8L)
       Access.Arbitrary_write_physical b
    = Error Errno.ENOSYS);
  BK.install_injector t;
  check_bool "installed" true (BK.injector_installed t);
  (* unmapped target: EINVAL, same as the Xen injector *)
  check_bool "einval" true
    (BK.inject_write t ~addr:0x7fff_ffff_0000L Access.Arbitrary_write_physical b
    = Error Errno.EINVAL);
  (* failures surface as the same negative-errno return codes Xen uses *)
  check_int "enosys rc" (-38) (Errno.to_return_code Errno.ENOSYS);
  let kvm_rc = (KC.run KU.vmcs_uc Campaign.Injection BK.Stock).KC.r_rc in
  check_bool "success rc" true (kvm_rc = Some 0)

let test_kvm_checkpoint_reset () =
  let t = BK.create BK.Stock in
  let vmcs_mfn = t.BK.victim.Ii_kvm.Kvm.vmcs_mfn in
  let clean_hash = BK.frame_hash t vmcs_mfn in
  let r = KC.run ~tb:t KU.vmcs_uc Campaign.Injection BK.Stock in
  check_bool "state injected" true r.KC.r_state;
  check_bool "victim died" true (t.BK.victim.Ii_kvm.Kvm.state <> Ii_kvm.Kvm.Vm_running);
  check_bool "hash moved" true (BK.frame_hash t vmcs_mfn <> clean_hash);
  BK.reset t;
  check_bool "hash restored" true (BK.frame_hash t vmcs_mfn = clean_hash);
  check_bool "victim revived" true (t.BK.victim.Ii_kvm.Kvm.state = Ii_kvm.Kvm.Vm_running);
  check_bool "injector disarmed" true (not (BK.injector_installed t));
  (* a reset testbed audits clean and produces the same row again *)
  let audit = BK.audit t (BK.Vmcs_entry_tampered t.BK.victim.Ii_kvm.Kvm.vm_id) in
  check_bool "audit clean" false audit.Erroneous_state.holds;
  let r2 = KC.run ~tb:t KU.vmcs_uc Campaign.Injection BK.Stock in
  check_bool "rerun equal" true
    (r2.KC.r_state = r.KC.r_state && r2.KC.r_violations = r.KC.r_violations
   && r2.KC.r_rc = r.KC.r_rc)

let test_kvm_rq1 () =
  List.iter
    (fun (name, same_state, same_violation) ->
      check_bool (name ^ " state") true same_state;
      check_bool (name ^ " violation") true same_violation)
    (KC.validate_rq1 KU.use_cases)

let test_kvm_trace_deterministic () =
  List.iter
    (fun u ->
      let a = KT.record u Campaign.Injection BK.Stock in
      let b = KT.record u Campaign.Injection BK.Stock in
      check_string (u.KC.uc_name ^ " bytes") a.KT.rec_bytes b.KT.rec_bytes)
    KU.use_cases

let test_kvm_replay () =
  List.iter
    (fun u ->
      List.iter
        (fun mode ->
          let r = KT.record u mode BK.Stock in
          let o = KT.replay r in
          check_bool (u.KC.uc_name ^ " applied") true (o.KT.rp_applied > 0);
          check_bool (u.KC.uc_name ^ " equal") true o.KT.rp_equal)
        [ Campaign.Real_exploit; Campaign.Injection ])
    KU.use_cases

let test_kvm_detectors_cover () =
  let trials = KV.coverage KU.use_cases Campaign.Injection BK.Stock in
  check_int "trials" (List.length KU.use_cases) (List.length trials);
  List.iter
    (fun t ->
      check_bool (t.KV.t_recording.KT.rec_use_case ^ " covered") true (KV.covered t))
    trials;
  List.iter
    (fun u ->
      check_bool (u.KC.uc_name ^ " side-effect-free") true
        (KV.side_effect_free u Campaign.Injection BK.Stock))
    KU.use_cases

(* The domain-indexed view of Substrate.S, exercised on both backends:
   [domains] names every guest in stable row order, scaling with
   ?domains, and [violations_by_domain] partitions exactly the flat
   [violations] list — same multiset, every group keyed by a known
   domain name or "host", no empty groups. *)
let test_domain_indexed_view () =
  let xen_tb = Ii_guest.Testbed.create ~domains:4 ~load:Load_mix.default Version.V4_6 in
  check_int "xen: four guest domains" 4 (List.length (Substrate_xen.domains xen_tb));
  let uc = Option.get (All.find "XSA-212-priv") in
  let before = Substrate_xen.snapshot xen_tb in
  ignore (Campaign.run ~tb:xen_tb uc Campaign.Injection Version.V4_6);
  Ii_guest.Testbed.tick_all xen_tb;
  let after = Substrate_xen.snapshot xen_tb in
  let flat = Substrate_xen.violations ~before ~after in
  let grouped = Substrate_xen.violations_by_domain ~before ~after in
  (* valid group keys: "host", plus any domain on the machine — dom0
     included, which is not in the guest-row [domains] list *)
  let names =
    "host" :: List.map Ii_guest.Kernel.hostname (Ii_guest.Testbed.kernels xen_tb)
  in
  List.iter
    (fun (d, vs) ->
      check_bool ("xen: known domain " ^ d) true (List.mem d names);
      check_bool ("xen: non-empty group " ^ d) true (vs <> []))
    grouped;
  check_int "xen: groups partition the flat list" (List.length flat)
    (List.length (List.concat_map snd grouped));
  let kvm_tb = BK.create ~domains:3 BK.Stock in
  check_int "kvm: three guest domains" 3 (List.length (BK.domains kvm_tb));
  let kb = BK.snapshot kvm_tb in
  ignore (KC.run ~tb:kvm_tb KU.vmcs_uc Campaign.Injection BK.Stock);
  let ka = BK.snapshot kvm_tb in
  let kflat = BK.violations ~before:kb ~after:ka in
  let kgrouped = BK.violations_by_domain ~before:kb ~after:ka in
  let knames = "host" :: BK.domains kvm_tb in
  List.iter
    (fun (d, vs) ->
      check_bool ("kvm: known domain " ^ d) true (List.mem d knames);
      check_bool ("kvm: non-empty group " ^ d) true (vs <> []))
    kgrouped;
  check_int "kvm: groups partition the flat list" (List.length kflat)
    (List.length (List.concat_map snd kgrouped))

let test_backend_registry () =
  check_bool "xen known" true (Ii_backends.Backends.is_known "xen");
  check_bool "kvm known" true (Ii_backends.Backends.is_known "kvm");
  check_bool "vbox unknown" false (Ii_backends.Backends.is_known "vbox");
  let r = KC.run KU.idt_uc Campaign.Injection BK.Stock in
  check_string "r_backend kvm" "kvm" r.KC.r_backend

(* --- cross-backend comparability ----------------------------------------- *)

let test_cross_backend_rows () =
  let rows = Ii_exploits.Cross_system.run () in
  check_int "rows" 3 (List.length rows);
  List.iter
    (fun r ->
      check_bool "injected" true r.Ii_exploits.Cross_system.cs_injected;
      check_bool "rc comparable" true (r.Ii_exploits.Cross_system.cs_rc = Some 0);
      check_bool "violations observed" true (r.Ii_exploits.Cross_system.cs_violations <> []))
    rows;
  match rows with
  | [ xen; kvm_idt; kvm_vmcs ] ->
      check_bool "xen host dies" false xen.Ii_exploits.Cross_system.host_survives;
      check_bool "kvm hosts survive" true
        (kvm_idt.Ii_exploits.Cross_system.host_survives
        && kvm_vmcs.Ii_exploits.Cross_system.host_survives);
      check_bool "kvm bystanders survive" true
        (kvm_idt.Ii_exploits.Cross_system.bystander_survives
        && kvm_vmcs.Ii_exploits.Cross_system.bystander_survives)
  | _ -> Alcotest.fail "expected [xen; kvm-idt; kvm-vmcs]"

let () =
  Alcotest.run "substrate"
    [
      ( "neutrality",
        [
          Alcotest.test_case "golden trace bytes" `Quick test_golden_trace_bytes;
          Alcotest.test_case "golden row fingerprints" `Quick test_golden_row_fingerprints;
          Alcotest.test_case "golden recordings replay" `Quick test_golden_recordings_replay;
          Alcotest.test_case "xen rows tagged" `Quick test_backend_field_tags_xen;
        ] );
      ( "codec",
        [ Alcotest.test_case "four-action roundtrip" `Quick test_access_roundtrip ] );
      ( "kvm",
        [
          Alcotest.test_case "errno mapping" `Quick test_kvm_errno;
          Alcotest.test_case "checkpoint and reset" `Quick test_kvm_checkpoint_reset;
          Alcotest.test_case "rq1 exploit = injection" `Quick test_kvm_rq1;
          Alcotest.test_case "trace deterministic" `Quick test_kvm_trace_deterministic;
          Alcotest.test_case "record/replay equal" `Quick test_kvm_replay;
          Alcotest.test_case "detectors cover states" `Quick test_kvm_detectors_cover;
          Alcotest.test_case "registry" `Quick test_backend_registry;
          Alcotest.test_case "domain-indexed view" `Quick test_domain_indexed_view;
        ] );
      ( "cross",
        [ Alcotest.test_case "comparable rows" `Quick test_cross_backend_rows ] );
    ]
