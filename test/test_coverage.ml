(* Coverage observability: the deterministic coverage maps of
   lib/trace/coverage.ml and their end-to-end contracts.

   - map algebra: merge is a commutative idempotent OR, diff inverts it,
     novelty is popcount-of-diff (unit + qcheck properties)
   - renderers: hex and JSON round-trip byte-for-byte; the FNV hash and
     the Prometheus label escaping are pinned
   - determinism: campaign coverage maps are byte-identical across
     worker counts, pooled vs fresh testbeds, the batching scheduler's
     materialized and streamed paths, and record vs replay — on both
     backends
   - corpus: every scenario contributes novelty on first sight *)

open Ii_trace
open Ii_xen
open Ii_core
open Ii_scenario

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* [dune runtest] runs from _build/default/test (corpus is a sibling,
   materialized by the dune deps); [dune exec] runs from the root. *)
let corpus_dir = if Sys.file_exists "corpus" then "corpus" else "../corpus"

(* --- axes ---------------------------------------------------------------- *)

let region m name =
  match List.assoc_opt name (Coverage.region_bits m) with
  | Some n -> n
  | None -> Alcotest.failf "no region %s" name

let test_axes () =
  let c = Coverage.create () in
  Coverage.note_violation c ~cls:1 ~domain:"guest03";
  Coverage.note_violation c ~cls:1 ~domain:"guest03";
  Coverage.note_prov c ~consumer:3 ~origin_kind:1;
  Coverage.note_port c ~nr:7 ~outcome:0;
  Coverage.note_port c ~nr:7 ~outcome:22;
  Coverage.note_record c 5;
  Coverage.note_scn_edge c ~section:0 ~prev:0xffffff ~pc:0;
  let m = Coverage.snapshot c in
  check_int "violation" 1 (region m "violation");
  check_int "provenance" 1 (region m "provenance");
  check_int "port" 2 (region m "port");
  check_int "scn_edge" 1 (region m "scn_edge");
  check_int "record" 1 (region m "record");
  check_int "total" 6 (Coverage.popcount m);
  check_bool "not empty" false (Coverage.is_empty m);
  (* out-of-range inputs clamp modularly instead of raising *)
  Coverage.note_violation c ~cls:(-17) ~domain:"";
  Coverage.note_port c ~nr:100000 ~outcome:(-3);
  Coverage.note_record c 9999;
  ignore (Coverage.snapshot c)

let test_scn_buckets () =
  (* hit counts bucketize AFL-style: revisiting an edge lights new
     bucket bits at 1, 2, 3, 4, 8, 16, 32 and 128 hits *)
  let bits_after hits =
    let c = Coverage.create () in
    for _ = 1 to hits do
      Coverage.note_scn_edge c ~section:1 ~prev:4 ~pc:5
    done;
    region (Coverage.snapshot c) "scn_edge"
  in
  check_int "1 hit" 1 (bits_after 1);
  check_int "2 hits" 1 (bits_after 2);
  check_int "7 hits" 1 (bits_after 7);
  check_int "8 hits" 1 (bits_after 8);
  check_bool "more hits, different bucket" true (Coverage.count_bucket 1 <> Coverage.count_bucket 200);
  check_int "bucket of 1" 0 (Coverage.count_bucket 1);
  check_int "bucket of 2" 1 (Coverage.count_bucket 2);
  check_int "bucket of 3" 2 (Coverage.count_bucket 3);
  check_int "bucket of 7" 3 (Coverage.count_bucket 7);
  check_int "bucket of 15" 4 (Coverage.count_bucket 15);
  check_int "bucket of 31" 5 (Coverage.count_bucket 31);
  check_int "bucket of 127" 6 (Coverage.count_bucket 127);
  check_int "bucket of 128" 7 (Coverage.count_bucket 128)

let test_slot_helpers () =
  check_bool "domain_slot in range" true
    (List.for_all
       (fun d ->
         let s = Coverage.domain_slot d in
         s >= 0 && s < 32)
       [ "host"; "guest03"; "xen3"; ""; "a-very-long-domain-name" ]);
  check_bool "scn_slot in range" true
    (let s = Coverage.scn_slot ~section:255 ~prev:0xffffff ~pc:1023 in
     s >= 0 && s < 1024);
  (* distinct domains shouldn't all collide *)
  check_bool "domain slots spread" true
    (Coverage.domain_slot "guest01" <> Coverage.domain_slot "guest03"
    || Coverage.domain_slot "host" <> Coverage.domain_slot "guest03")

(* --- algebra (unit) ------------------------------------------------------ *)

let sample_map ints =
  let c = Coverage.create () in
  List.iter
    (fun i ->
      let i = abs i in
      match i mod 5 with
      | 0 -> Coverage.note_violation c ~cls:(i / 5) ~domain:(string_of_int (i / 30))
      | 1 -> Coverage.note_prov c ~consumer:(i / 5) ~origin_kind:(i / 40)
      | 2 -> Coverage.note_port c ~nr:(i / 5) ~outcome:(i / 320)
      | 3 -> Coverage.note_scn_edge c ~section:(i land 0xff) ~prev:(i / 7) ~pc:(i / 3)
      | _ -> Coverage.note_record c (i / 5))
    ints;
  Coverage.snapshot c

let test_algebra () =
  let a = sample_map [ 1; 2; 3; 40; 55; 123; 999 ] in
  let b = sample_map [ 3; 7; 88; 1000; 4567 ] in
  check_bool "merge commutes" true (Coverage.equal (Coverage.merge a b) (Coverage.merge b a));
  check_bool "merge idempotent" true (Coverage.equal (Coverage.merge a a) a);
  check_bool "empty is identity" true (Coverage.equal (Coverage.merge a Coverage.empty) a);
  check_bool "diff of self is empty" true (Coverage.is_empty (Coverage.diff a a));
  check_bool "diff/merge round-trip" true
    (Coverage.equal (Coverage.merge b (Coverage.diff a b)) (Coverage.merge a b));
  check_int "novelty against self" 0 (Coverage.novelty a ~against:a);
  check_int "novelty against empty" (Coverage.popcount a)
    (Coverage.novelty a ~against:Coverage.empty);
  check_int "novelty is popcount of diff"
    (Coverage.popcount (Coverage.diff a b))
    (Coverage.novelty a ~against:b)

(* --- renderers ----------------------------------------------------------- *)

let test_renderers_roundtrip () =
  let m = sample_map [ 11; 22; 33; 44; 55; 666; 7777 ] in
  (match Coverage.of_hex (Coverage.to_hex m) with
  | Ok m' -> check_bool "hex round-trip" true (Coverage.equal m m')
  | Error e -> Alcotest.fail e);
  (match Coverage.of_json_map (Coverage.to_json m) with
  | Ok m' -> check_bool "json round-trip" true (Coverage.equal m m')
  | Error e -> Alcotest.fail e);
  check_bool "of_hex rejects short input" true (Result.is_error (Coverage.of_hex "abcd"));
  check_bool "of_json_map rejects maplessness" true
    (Result.is_error (Coverage.of_json_map "{\"bits\":3}"))

let test_hash_pinned () =
  (* the FNV-1a-64 of 1328 zero bytes: pins both the map size and the
     hash function; a layout change must show up here *)
  check_string "empty map hash" "1e93b06b2b33bae5"
    (Printf.sprintf "%016Lx" (Coverage.hash Coverage.empty));
  check_int "size_bits" 10624 Coverage.size_bits;
  (* same feed, same hash — across independent collectors *)
  let m1 = sample_map [ 5; 17; 29 ] and m2 = sample_map [ 5; 17; 29 ] in
  check_bool "hash deterministic" true (Coverage.hash m1 = Coverage.hash m2);
  check_bool "hash discriminates" true (Coverage.hash m1 <> Coverage.hash Coverage.empty)

let test_publish () =
  let reg = Metrics.create () in
  let m = sample_map [ 2; 7; 12 ] in
  Coverage.publish ~labels:[ ("backend", "xen") ] reg m;
  let out = Metrics.render_prometheus reg in
  check_bool "coverage_bits_total present" true (contains ~affix:"coverage_bits_total" out)

let test_prometheus_escaping () =
  (* satellite regression: label values containing backslashes, quotes
     and newlines must escape exactly per the exposition format (%S
     would also mangle tabs and non-ASCII bytes) *)
  let reg = Metrics.create () in
  let g =
    Metrics.gauge reg
      ~labels:[ ("path", "C:\\tmp"); ("msg", "say \"hi\"\nnow"); ("tab", "a\tb") ]
      "escape_test"
  in
  Metrics.set g 1.0;
  check_string "prometheus escaping pinned"
    "# TYPE escape_test gauge\n\
     escape_test{msg=\"say \\\"hi\\\"\\nnow\",path=\"C:\\\\tmp\",tab=\"a\tb\"} 1\n"
    (Metrics.render_prometheus reg);
  (* the JSON renderer escapes its keys too *)
  let reg2 = Metrics.create () in
  Metrics.set (Metrics.gauge reg2 ~labels:[ ("k\"ey", "v") ] "g") 2.0;
  check_bool "json renderer stays parseable" true
    (contains ~affix:"\"k\\\"ey\":\"v\"" (Metrics.render_json reg2))

(* --- qcheck properties --------------------------------------------------- *)

let arb_ints = QCheck.(list_of_size (Gen.int_bound 40) (int_bound 100_000))
let arb_map = QCheck.map sample_map arb_ints

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge is commutative" ~count:200 (QCheck.pair arb_map arb_map)
    (fun (a, b) -> Coverage.equal (Coverage.merge a b) (Coverage.merge b a))

let prop_merge_idempotent =
  QCheck.Test.make ~name:"merge is idempotent" ~count:200 arb_map (fun a ->
      Coverage.equal (Coverage.merge a a) a)

let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:200
    (QCheck.triple arb_map arb_map arb_map)
    (fun (a, b, c) ->
      Coverage.equal
        (Coverage.merge a (Coverage.merge b c))
        (Coverage.merge (Coverage.merge a b) c))

let prop_diff_merge_roundtrip =
  QCheck.Test.make ~name:"merge b (diff a b) = merge a b" ~count:200
    (QCheck.pair arb_map arb_map) (fun (a, b) ->
      Coverage.equal (Coverage.merge b (Coverage.diff a b)) (Coverage.merge a b))

let prop_novelty_zero_on_repeat =
  QCheck.Test.make ~name:"cumulative novelty hits zero on repeated identical trials"
    ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 1 6) arb_map)
    (fun ms ->
      (* run the same trial sequence twice; the second pass must report
         zero novelty everywhere, and the first pass's novelty must sum
         to the union's popcount (novelty never double-counts) *)
      let acc = ref Coverage.empty in
      let novelty m =
        let n = Coverage.novelty m ~against:!acc in
        acc := Coverage.merge !acc m;
        n
      in
      let first = List.map novelty ms in
      let second = List.map novelty ms in
      List.for_all (fun n -> n = 0) second
      && List.fold_left ( + ) 0 first = Coverage.popcount !acc)

let prop_novelty_monotone =
  QCheck.Test.make ~name:"novelty of a fixed map is non-increasing as coverage accumulates"
    ~count:100
    (QCheck.pair arb_map (QCheck.list_of_size (QCheck.Gen.int_bound 6) arb_map))
    (fun (m, ms) ->
      let acc = ref Coverage.empty in
      let seq =
        List.map
          (fun other ->
            let n = Coverage.novelty m ~against:!acc in
            acc := Coverage.merge !acc other;
            n)
          (ms @ [ m ])
      in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | _ -> true
      in
      non_increasing seq)

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex round-trips" ~count:200 arb_map (fun m ->
      match Coverage.of_hex (Coverage.to_hex m) with
      | Ok m' -> Coverage.equal m m'
      | Error _ -> false)

(* --- campaign determinism ------------------------------------------------ *)

let some_ucs n = List.filteri (fun i _ -> i < n) Ii_exploits.All_exploits.use_cases

let matrix ?pooled ~workers ?domains ?load ucs =
  let acc = ref Coverage.empty in
  let rows =
    Campaign.run_matrix ~workers ?pooled ?domains ?load ~coverage:acc ucs
      ~versions:[ Version.V4_6 ]
      ~modes:[ Campaign.Real_exploit; Campaign.Injection ]
  in
  (List.map (fun r -> (r.Campaign.r_coverage, r.Campaign.r_cov_novelty)) rows, !acc)

let test_matrix_workers_invariant () =
  let ucs = some_ucs 3 in
  let rows1, cum1 = matrix ~workers:1 ucs in
  let rows3, cum3 = matrix ~workers:3 ucs in
  check_bool "cumulative maps byte-identical" true (Coverage.equal cum1 cum3);
  check_bool "per-row maps and novelty identical" true
    (List.for_all2
       (fun (m1, n1) (m3, n3) ->
         n1 = n3
         &&
         match (m1, m3) with
         | Some m1, Some m3 -> Coverage.equal m1 m3
         | None, None -> true
         | _ -> false)
       rows1 rows3);
  check_bool "cumulative non-empty" false (Coverage.is_empty cum1)

let test_matrix_pooled_invariant () =
  (* pooled COW forks vs fresh boots, on a loaded multi-domain testbed *)
  let ucs = some_ucs 2 in
  let load = Load_mix.default in
  let _, fresh = matrix ~workers:1 ~pooled:false ~domains:4 ~load ucs in
  let _, pooled = matrix ~workers:1 ~pooled:true ~domains:4 ~load ucs in
  check_bool "pooled = fresh" true (Coverage.equal fresh pooled)

let test_matrix_detached_rows () =
  (* without ~coverage the rows must look exactly like pre-coverage rows *)
  let rows =
    Campaign.run_matrix ~workers:1 (some_ucs 1) ~versions:[ Version.V4_6 ]
      ~modes:[ Campaign.Injection ]
  in
  List.iter
    (fun r ->
      check_bool "no map" true (r.Campaign.r_coverage = None);
      check_int "no novelty" 0 r.Campaign.r_cov_novelty)
    rows

(* --- scheduler determinism ----------------------------------------------- *)

let test_scheduler_coverage_invariant () =
  let versions = [ Version.V4_6 ] in
  let trials = 6 in
  let cum workers =
    let acc = ref Coverage.empty in
    ignore (Campaign_scheduler.run ~workers ~coverage:acc ~trials versions);
    !acc
  in
  let c1 = cum 1 and c3 = cum 3 in
  check_bool "scheduler workers 1 = 3" true (Coverage.equal c1 c3);
  check_bool "scheduler map non-empty" false (Coverage.is_empty c1);
  (* the streamed path merges in scheduler order; OR-merge makes that
     invisible *)
  let acc = ref Coverage.empty in
  ignore (Campaign_scheduler.run_streamed ~workers:3 ~coverage:acc ~trials versions);
  check_bool "streamed = materialized" true (Coverage.equal c1 !acc)

(* --- record/replay ------------------------------------------------------- *)

let test_replay_reproduces_map_xen () =
  let uc =
    match Ii_exploits.All_exploits.find "XSA-212-priv" with
    | Some uc -> uc
    | None -> Alcotest.fail "no XSA-212-priv"
  in
  List.iter
    (fun mode ->
      let r = Trace_driver.record ~provenance:true ~coverage:true uc mode Version.V4_6 in
      (match r.Trace_driver.rec_cov with
      | None -> Alcotest.fail "recording has no coverage map"
      | Some m ->
          check_bool "recorded map non-empty" false (Coverage.is_empty m);
          check_bool "record axis populated (ring was recording)" true (region m "record" > 0));
      let rp = Trace_driver.replay r in
      check_bool "replay final state equal" true rp.Trace_driver.rp_equal;
      check_bool "replay vts equal" true rp.Trace_driver.rp_vts_equal;
      check_bool "replay coverage map byte-identical" true rp.Trace_driver.rp_cov_equal)
    [ Campaign.Real_exploit; Campaign.Injection ]

let test_replay_reproduces_map_scenario () =
  (* a bytecode scenario records Scn_edge events; replay refeeds the
     scn_edge axis from the ring without running the VM *)
  let module XV = Scn_vm.Make (Ii_exploits.Scenario_xen) in
  let p =
    match Scn_loader.load_file (Filename.concat corpus_dir "xsa212_priv.scn") with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let uc = XV.use_case p in
  let r = Trace_driver.record ~coverage:true uc Campaign.Injection Version.V4_6 in
  (match r.Trace_driver.rec_cov with
  | None -> Alcotest.fail "no coverage map"
  | Some m -> check_bool "scn_edge axis populated" true (region m "scn_edge" > 0));
  let rp = Trace_driver.replay r in
  check_bool "replay vts equal" true rp.Trace_driver.rp_vts_equal;
  check_bool "replay coverage map byte-identical" true rp.Trace_driver.rp_cov_equal

let test_replay_reproduces_map_kvm () =
  let module KT = Ii_backends.Backends.Kvm_trace in
  let uc =
    match
      List.find_opt
        (fun uc -> uc.Ii_backends.Backends.Kvm_campaign.uc_name = "KVM-VMCS")
        Ii_backends.Kvm_use_cases.use_cases
    with
    | Some uc -> uc
    | None -> Alcotest.fail "no KVM-VMCS"
  in
  List.iter
    (fun mode ->
      let r = KT.record ~coverage:true uc mode Ii_backends.Backend_kvm.Stock in
      (match r.KT.rec_cov with
      | None -> Alcotest.fail "recording has no coverage map"
      | Some m -> check_bool "recorded map non-empty" false (Coverage.is_empty m));
      let rp = KT.replay r in
      check_bool "replay final state equal" true rp.KT.rp_equal;
      check_bool "replay coverage map byte-identical" true rp.KT.rp_cov_equal)
    [ Campaign.Real_exploit; Campaign.Injection ]

(* --- corpus novelty ------------------------------------------------------ *)

let corpus_programs =
  lazy
    (Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".scn")
    |> List.sort compare
    |> List.map (fun f ->
           match Scn_loader.load_file (Filename.concat corpus_dir f) with
           | Ok p -> p
           | Error e -> Alcotest.failf "%s: %s" f e))

let test_corpus_first_run_novelty () =
  let module XV = Scn_vm.Make (Ii_exploits.Scenario_xen) in
  let module KV = Scn_vm.Make (Ii_backends.Scenario_kvm) in
  let module KC = Ii_backends.Backends.Kvm_campaign in
  let progs = Lazy.force corpus_programs in
  let novelty_by_name = Hashtbl.create 8 in
  let note name n =
    Hashtbl.replace novelty_by_name name (n + Option.value ~default:0 (Hashtbl.find_opt novelty_by_name name))
  in
  let xen = List.filter XV.compatible progs in
  let acc = ref Coverage.empty in
  List.iter
    (fun r -> note r.Campaign.r_use_case r.Campaign.r_cov_novelty)
    (Campaign.run_matrix ~workers:1 ~coverage:acc (List.map XV.use_case xen)
       ~versions:[ Version.V4_6 ]
       ~modes:[ Campaign.Real_exploit; Campaign.Injection ]);
  let kvm = List.filter KV.compatible progs in
  let kacc = ref Coverage.empty in
  List.iter
    (fun r -> note r.KC.r_use_case r.KC.r_cov_novelty)
    (KC.run_matrix ~workers:1 ~coverage:kacc (List.map KV.use_case kvm)
       ~versions:[ Ii_backends.Backend_kvm.Stock ]
       ~modes:[ Campaign.Real_exploit; Campaign.Injection ]);
  check_int "all eight scenarios ran" 8 (Hashtbl.length novelty_by_name);
  Hashtbl.iter
    (fun name n ->
      check_bool (Printf.sprintf "%s contributes novelty on first run" name) true (n > 0))
    novelty_by_name

let () =
  Alcotest.run "coverage"
    [
      ( "axes",
        [
          Alcotest.test_case "five axes populate" `Quick test_axes;
          Alcotest.test_case "scn edge count buckets" `Quick test_scn_buckets;
          Alcotest.test_case "slot helpers" `Quick test_slot_helpers;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "merge/diff/novelty" `Quick test_algebra;
          Alcotest.test_case "renderers round-trip" `Quick test_renderers_roundtrip;
          Alcotest.test_case "hash and layout pinned" `Quick test_hash_pinned;
          Alcotest.test_case "publish to metrics" `Quick test_publish;
          Alcotest.test_case "prometheus label escaping" `Quick test_prometheus_escaping;
        ] );
      ("properties", qsuite
        [
          prop_merge_commutative;
          prop_merge_idempotent;
          prop_merge_associative;
          prop_diff_merge_roundtrip;
          prop_novelty_zero_on_repeat;
          prop_novelty_monotone;
          prop_hex_roundtrip;
        ]);
      ( "campaign determinism",
        [
          Alcotest.test_case "workers 1 = workers 3" `Quick test_matrix_workers_invariant;
          Alcotest.test_case "pooled = fresh (4 domains, load)" `Quick
            test_matrix_pooled_invariant;
          Alcotest.test_case "detached rows unchanged" `Quick test_matrix_detached_rows;
          Alcotest.test_case "scheduler workers + streamed" `Quick
            test_scheduler_coverage_invariant;
        ] );
      ( "record/replay",
        [
          Alcotest.test_case "xen replay reproduces map" `Quick test_replay_reproduces_map_xen;
          Alcotest.test_case "scenario replay refeeds scn edges" `Quick
            test_replay_reproduces_map_scenario;
          Alcotest.test_case "kvm replay reproduces map" `Quick test_replay_reproduces_map_kvm;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "every scenario novel on first run" `Quick
            test_corpus_first_run_novelty;
        ] );
    ]
