(* Virtual-clock tests: cost-model parsing, replay reproducing the
   recorded virtual timestamps byte-for-byte on every use case and both
   backends, checkpoint/reset/fork clock inheritance (pooled = fresh),
   rate-based scan scheduling determinism, and the detached = attached
   neutrality property (detaching the clock must not change a trial's
   behaviour, only freeze its timestamps). *)

open Ii_trace
open Ii_xen
open Ii_vmi
open Ii_core
module All = Ii_exploits.All_exploits
module B = Ii_backends.Backends
module K = Ii_backends.Backend_kvm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_i64 = Alcotest.(check int64)

let uc name =
  match All.find name with Some uc -> uc | None -> Alcotest.fail ("no use case " ^ name)

(* --- the cost model ------------------------------------------------------ *)

let test_cost_model_roundtrip () =
  let d = Vclock.Cost_model.default in
  (match Vclock.Cost_model.of_string (Vclock.Cost_model.to_string d) with
  | Ok m -> check_bool "to_string/of_string roundtrip" true (m = d)
  | Error e -> Alcotest.fail e);
  check_int "fifteen ops priced" 15 (List.length (Vclock.Cost_model.to_assoc d));
  List.iter
    (fun k ->
      check_bool (k ^ " priced") true
        (List.mem_assoc k (Vclock.Cost_model.to_assoc d)))
    [ "grant_map"; "evtchn_send"; "dm_io" ];
  List.iter
    (fun (_, v) -> check_bool "all defaults positive" true (Int64.compare v 0L > 0))
    (Vclock.Cost_model.to_assoc d)

let test_cost_model_parsing () =
  (match Vclock.Cost_model.of_string "# comment\n\ntlb_hit = 5\nhypercall_dispatch=1000\n" with
  | Ok m ->
      check_i64 "override applied" 5L (Vclock.cost m Vclock.Tlb_hit);
      check_i64 "second override" 1000L (Vclock.cost m Vclock.Hypercall_dispatch);
      check_i64 "untouched key keeps default" (Vclock.cost Vclock.Cost_model.default Vclock.Pte_install)
        (Vclock.cost m Vclock.Pte_install)
  | Error e -> Alcotest.fail e);
  (match Vclock.Cost_model.of_string "grant_map = 7\nevtchn_send = 9\ndm_io = 11\n" with
  | Ok m ->
      check_i64 "grant_map override" 7L (Vclock.cost m Vclock.Grant_map);
      check_i64 "evtchn_send override" 9L (Vclock.cost m Vclock.Evtchn_send);
      check_i64 "dm_io override" 11L (Vclock.cost m Vclock.Dm_io)
  | Error e -> Alcotest.fail e);
  check_bool "unknown key rejected" true
    (Result.is_error (Vclock.Cost_model.of_string "frobnicate = 3"));
  check_bool "negative grant_map rejected" true
    (Result.is_error (Vclock.Cost_model.of_string "grant_map = -260"));
  check_bool "negative cost rejected" true
    (Result.is_error (Vclock.Cost_model.of_string "tlb_hit = -1"));
  check_bool "non-integer rejected" true
    (Result.is_error (Vclock.Cost_model.of_string "tlb_hit = fast"));
  check_bool "missing file is an Error, not an exception" true
    (Result.is_error (Vclock.Cost_model.load "/nonexistent/cost.model"))

let test_charge_mechanics () =
  let c = Vclock.create () in
  check_i64 "starts at zero" 0L (Vclock.now c);
  Vclock.charge c Vclock.Tlb_hit;
  check_i64 "one hit" (Vclock.cost (Vclock.model c) Vclock.Tlb_hit) (Vclock.now c);
  Vclock.charge_n c Vclock.Page_walk_step 4;
  check_i64 "four walk steps"
    (Int64.add
       (Vclock.cost (Vclock.model c) Vclock.Tlb_hit)
       (Int64.mul 4L (Vclock.cost (Vclock.model c) Vclock.Page_walk_step)))
    (Vclock.now c);
  let frozen = Vclock.now c in
  Vclock.set_attached c false;
  Vclock.charge c Vclock.Fault_delivery;
  check_i64 "detached charges are no-ops" frozen (Vclock.now c);
  Vclock.set_attached c true;
  Vclock.charge c Vclock.Fault_delivery;
  check_bool "re-attached charges land" true (Int64.compare (Vclock.now c) frozen > 0)

(* --- replay reproduces virtual timestamps -------------------------------- *)

let test_xen_replay_vts_identical () =
  List.iter
    (fun uc0 ->
      let r = Trace_driver.record uc0 Campaign.Injection Version.V4_6 in
      let o = Trace_driver.replay r in
      check_bool (uc0.Campaign.uc_name ^ ": final state reproduced") true
        o.Trace_driver.rp_equal;
      check_bool (uc0.Campaign.uc_name ^ ": vts stream reproduced") true
        o.Trace_driver.rp_vts_equal)
    All.use_cases

let test_kvm_replay_vts_identical () =
  List.iter
    (fun kuc ->
      let r = B.Kvm_trace.record kuc Campaign.Injection K.Stock in
      let o = B.Kvm_trace.replay r in
      check_bool (kuc.B.Kvm_campaign.uc_name ^ ": final state reproduced") true
        o.B.Kvm_trace.rp_equal;
      check_bool (kuc.B.Kvm_campaign.uc_name ^ ": vts stream reproduced") true
        o.B.Kvm_trace.rp_vts_equal)
    Ii_backends.Kvm_use_cases.use_cases

let test_records_carry_vts () =
  let r = Trace_driver.record (uc "XSA-148-priv") Campaign.Injection Version.V4_6 in
  let recs = Trace_driver.events r in
  check_bool "some records" true (recs <> []);
  (* vts is monotone along the ring (charges only ever add) *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        Int64.compare a.Trace.vts b.Trace.vts <= 0 && monotone rest
    | _ -> true
  in
  check_bool "vts monotone" true (monotone recs);
  check_bool "clock advanced during the trial" true
    (List.exists (fun rc -> Int64.compare rc.Trace.vts 0L > 0) recs)

(* --- checkpoint / reset / fork carry the clock --------------------------- *)

let test_reset_restores_clock () =
  let tb = Substrate_xen.create Version.V4_6 in
  let v0 = Substrate_xen.vclock tb in
  ignore (Campaign.run ~tb (uc "XSA-148-priv") Campaign.Injection Version.V4_6);
  Substrate_xen.reset tb;
  check_i64 "xen reset restores post-boot vts" v0 (Substrate_xen.vclock tb);
  let ktb = K.create K.Stock in
  let kv0 = K.vclock ktb in
  ignore (B.Kvm_campaign.run ~tb:ktb Ii_backends.Kvm_use_cases.idt_uc Campaign.Injection K.Stock);
  K.reset ktb;
  check_i64 "kvm reset restores post-boot vts" kv0 (K.vclock ktb)

let test_pooled_equals_fresh_with_clock () =
  let fresh = Substrate_xen.create Version.V4_6 in
  let pooled = Substrate_xen.create_pooled Version.V4_6 in
  check_i64 "xen fork inherits post-boot clock" (Substrate_xen.vclock fresh)
    (Substrate_xen.vclock pooled);
  let a = Campaign.run ~tb:fresh (uc "XSA-148-priv") Campaign.Injection Version.V4_6 in
  let b = Campaign.run ~tb:pooled (uc "XSA-148-priv") Campaign.Injection Version.V4_6 in
  check_i64 "xen pooled trial vtime identical" a.Campaign.r_vtime_ns b.Campaign.r_vtime_ns;
  check_bool "xen vtime positive" true (Int64.compare a.Campaign.r_vtime_ns 0L > 0);
  let kf = K.create K.Stock in
  let kp = K.create_pooled K.Stock in
  check_i64 "kvm fork inherits post-boot clock" (K.vclock kf) (K.vclock kp);
  let ka = B.Kvm_campaign.run ~tb:kf Ii_backends.Kvm_use_cases.vmcs_uc Campaign.Injection K.Stock in
  let kb = B.Kvm_campaign.run ~tb:kp Ii_backends.Kvm_use_cases.vmcs_uc Campaign.Injection K.Stock in
  check_i64 "kvm pooled trial vtime identical" ka.B.Kvm_campaign.r_vtime_ns
    kb.B.Kvm_campaign.r_vtime_ns

let test_sharded_matrix_vtime_identical () =
  (* r_vtime_ns is part of the row, so the existing seq = sharded matrix
     identity also pins virtual time across worker pools *)
  let versions = [ Version.V4_6; Version.V4_8 ] in
  let seq =
    Campaign.run_matrix All.use_cases ~versions ~modes:[ Campaign.Injection ]
  in
  let par =
    Campaign.run_matrix ~workers:2 ~pooled:true All.use_cases ~versions
      ~modes:[ Campaign.Injection ]
  in
  check_bool "sharded rows (including vtime) identical" true (seq = par)

(* --- rate-based scan scheduling ------------------------------------------ *)

let test_rate_based_scheduler_fires_on_deadline () =
  let scans = ref 0 in
  let d =
    {
      Vmi.Detector.name = "probe";
      arm = (fun () -> ());
      scan =
        (fun () ->
          incr scans;
          { Vmi.Detector.findings = []; frames_read = 2 });
    }
  in
  let tr = Trace.create () in
  let sched = Vmi.Scheduler.create ~every_ns:100L [ d ] in
  Vmi.Scheduler.arm sched ();
  Vmi.Scheduler.step sched tr ();
  check_int "first step always scans" 1 !scans;
  Vmi.Scheduler.step sched tr ();
  check_int "no virtual time elapsed: no scan" 1 !scans;
  Vclock.set (Trace.vclock tr) 99L;
  Vmi.Scheduler.step sched tr ();
  check_int "before the deadline: no scan" 1 !scans;
  Vclock.set (Trace.vclock tr) 100L;
  Vmi.Scheduler.step sched tr ();
  check_int "deadline reached: scan" 2 !scans;
  Vclock.set (Trace.vclock tr) 350L;
  Vmi.Scheduler.step sched tr ();
  check_int "re-armed from scan time" 3 !scans;
  check_int "scans_run agrees" 3 (Vmi.Scheduler.scans_run sched);
  check_i64 "scan cost accrues on the scheduler"
    (Int64.mul 6L (Vclock.cost Vclock.Cost_model.default Vclock.Vmi_scan_frame))
    (Vmi.Scheduler.scan_cost_ns sched);
  check_i64 "scan cost never touches the machine clock" 350L (Trace.vts tr)

let test_rate_based_trial_deterministic () =
  let run () =
    let t =
      Vmi_driver.run_trial ~every_ns:10_000L (uc "XSA-148-priv") Campaign.Injection
        Version.V4_6
    in
    ( t.Vmi_driver.t_scans,
      t.Vmi_driver.t_first_fire,
      t.Vmi_driver.t_latency_ns,
      t.Vmi_driver.t_scan_cost_ns )
  in
  check_bool "two rate-based trials fire identically" true (run () = run ())

let test_latency_ns_reported () =
  let trials =
    Vmi_driver.coverage All.use_cases Campaign.Injection Version.V4_6
  in
  List.iter
    (fun t ->
      let name = t.Vmi_driver.t_recording.Trace_driver.rec_use_case in
      check_bool (name ^ ": covered") true (Vmi_driver.covered t);
      match Vmi_driver.best_latency_ns t with
      | Some ns -> check_bool (name ^ ": ns latency non-negative") true (Int64.compare ns 0L >= 0)
      | None -> Alcotest.fail (name ^ ": no ns latency despite coverage"))
    trials;
  (* the JSON carries both denominations for the overlap release *)
  let json = Vmi_driver.to_json trials in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "legacy events key present" true (contains json "\"latency\":");
  check_bool "ns key present" true (contains json "\"latency_ns\":")

(* --- neutrality: detached = attached ------------------------------------- *)

let strip_row (r : Campaign.result_row) =
  ( r.Campaign.r_use_case,
    r.Campaign.r_version,
    r.Campaign.r_mode,
    r.Campaign.r_state,
    r.Campaign.r_state_evidence,
    r.Campaign.r_violations,
    r.Campaign.r_transcript,
    r.Campaign.r_rc,
    r.Campaign.r_telemetry )

let test_detached_clock_does_not_change_results () =
  List.iter
    (fun uc0 ->
      let on = Trace_driver.record uc0 Campaign.Injection Version.V4_6 in
      let off =
        Trace_driver.record
          ~prepare:(fun tb -> Substrate_xen.set_vclock_attached tb false)
          uc0 Campaign.Injection Version.V4_6
      in
      check_bool (uc0.Campaign.uc_name ^ ": row unchanged modulo vtime") true
        (strip_row on.Trace_driver.rec_row = strip_row off.Trace_driver.rec_row);
      check_bool (uc0.Campaign.uc_name ^ ": detached vtime is zero") true
        (off.Trace_driver.rec_row.Campaign.r_vtime_ns = 0L);
      check_bool (uc0.Campaign.uc_name ^ ": attached vtime positive") true
        (Int64.compare on.Trace_driver.rec_row.Campaign.r_vtime_ns 0L > 0);
      check_bool (uc0.Campaign.uc_name ^ ": final snapshot unchanged") true
        (on.Trace_driver.rec_final = off.Trace_driver.rec_final);
      (* the (seq, event) stream is identical; only the stamps differ *)
      check_string (uc0.Campaign.uc_name ^ ": event stream unchanged")
        (Trace.strip_vts on.Trace_driver.rec_bytes)
        (Trace.strip_vts off.Trace_driver.rec_bytes))
    All.use_cases

let test_tracing_off_vtime_identical () =
  (* charges are unconditional, so a trial consumes the same virtual
     time whether or not the ring records it *)
  let tb = Substrate_xen.create Version.V4_6 in
  let traced =
    Trace_driver.record (uc "XSA-148-priv") Campaign.Injection Version.V4_6
  in
  let untraced = Campaign.run ~tb (uc "XSA-148-priv") Campaign.Injection Version.V4_6 in
  check_i64 "ring on/off vtime identical"
    traced.Trace_driver.rec_row.Campaign.r_vtime_ns untraced.Campaign.r_vtime_ns

let () =
  Alcotest.run "vclock"
    [
      ( "cost model",
        [
          Alcotest.test_case "default roundtrip" `Quick test_cost_model_roundtrip;
          Alcotest.test_case "config parsing" `Quick test_cost_model_parsing;
          Alcotest.test_case "charge mechanics" `Quick test_charge_mechanics;
        ] );
      ( "replay",
        [
          Alcotest.test_case "xen vts streams reproduce" `Quick test_xen_replay_vts_identical;
          Alcotest.test_case "kvm vts streams reproduce" `Quick test_kvm_replay_vts_identical;
          Alcotest.test_case "records carry monotone vts" `Quick test_records_carry_vts;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "reset restores the clock" `Quick test_reset_restores_clock;
          Alcotest.test_case "pooled = fresh with clock" `Quick
            test_pooled_equals_fresh_with_clock;
          Alcotest.test_case "sharded matrix vtime identical" `Quick
            test_sharded_matrix_vtime_identical;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "rate-based deadlines" `Quick
            test_rate_based_scheduler_fires_on_deadline;
          Alcotest.test_case "rate-based trials deterministic" `Quick
            test_rate_based_trial_deterministic;
          Alcotest.test_case "ns latency reported" `Quick test_latency_ns_reported;
        ] );
      ( "neutrality",
        [
          Alcotest.test_case "detached clock does not change results" `Quick
            test_detached_clock_does_not_change_results;
          Alcotest.test_case "tracing off vtime identical" `Quick
            test_tracing_off_vtime_identical;
        ] );
    ]
