(** Xen hypercall error codes.

    Hypercalls return [Ok value] or [Error errno]; the guest-visible
    encoding is the negated errno, exactly as the paper reports
    ("the exploit execution fails with a return code of -EFAULT"). *)

type t =
  | EPERM
  | ENOENT
  | ENOMEM
  | EACCES
  | EFAULT
  | EBUSY
  | EINVAL
  | ENOSYS
  | ENOSPC

val to_int : t -> int
(** The positive errno value (EFAULT = 14, ...). *)

val to_return_code : t -> int
(** The guest-visible negative return code. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

type 'a result = ('a, t) Stdlib.result
