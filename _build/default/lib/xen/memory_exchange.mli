(** The [XENMEM_exchange] memory op and its XSA-212 defect.

    A guest trades in some of its pages for fresh ones; the hypervisor
    writes one result word per exchanged extent to a guest-supplied
    output array. In this simulated ABI the result word is the new
    page's machine address with access bits
    ([new_mfn << 12 | P|RW|US]) — see DESIGN.md §"memory_exchange
    result encoding": it preserves the exploit structure of a
    semi-controlled value at a fully-controlled address, where the
    attacker owns the frame named by the written value.

    On the XSA-212-vulnerable version the output address is not checked
    ({!Uaccess.copy_to_guest_unchecked}), so pointing it into Xen's
    address space turns the result write into an arbitrary hypervisor
    memory write. Fixed versions reject such addresses with [EFAULT]
    before exchanging anything. *)

type request = { in_pfns : Addr.pfn list; out_extent_start : Addr.vaddr }

type outcome = {
  nr_exchanged : int;
  new_mfns : Addr.mfn list;  (** replacement frames, in exchange order *)
}

val result_word : Addr.mfn -> int64
(** The value written to the output array for a replacement frame. *)

val exchange : Hv.t -> Domain.t -> request -> (outcome, Errno.t) result
