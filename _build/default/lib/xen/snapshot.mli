(** Domain save/restore — the toolstack's migration primitive.

    A snapshot captures the domain's pseudo-physical {e data} pages and
    its XenStore subtree; page tables are deliberately not carried
    (their contents are host-specific machine frame numbers) and are
    rebuilt by the domain builder on restore, exactly as live migration
    recreates the P2M on the destination.

    Because data pages travel verbatim, so do any erroneous states
    living in them — a vDSO backdoor planted by an intrusion survives
    save/restore onto a pristine host. That makes snapshots a concrete
    carrier for the paper's "porting erroneous states" idea (§III-C),
    and restoring an infected snapshot an injection vector of its own. *)

type t = {
  s_name : string;
  s_pages : int;
  s_privileged : bool;
  s_data : (Addr.pfn * bytes) list;  (** non-table pages, pfn order *)
  s_xenstore : (string * string) list;  (** the domain's subtree, relative keys *)
}

val capture : Hv.t -> Domain.t -> t

val restore : Hv.t -> t -> Domain.t
(** Build a fresh domain (new domid, new frames, freshly validated
    page tables) and replay the captured data pages and XenStore keys.
    Raises [Failure] on resource exhaustion, like the builder. *)

val data_bytes : t -> int
(** Total payload size (for reporting). *)
