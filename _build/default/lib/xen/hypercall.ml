type mmuext =
  | Pin_l4_table of Addr.mfn
  | Pin_l3_table of Addr.mfn
  | Pin_l2_table of Addr.mfn
  | Pin_l1_table of Addr.mfn
  | Unpin_table of Addr.mfn
  | New_baseptr of Addr.mfn

type grant_op =
  | Gnttab_setup_table of { nr_frames : int }
  | Gnttab_set_version of Grant_table.gt_version
  | Gnttab_grant_access of { gref : int; grantee : int; pfn : Addr.pfn; readonly : bool }
  | Gnttab_end_access of { gref : int }
  | Gnttab_map of { granter : int; gref : int }
  | Gnttab_unmap of { granter : int; handle : int }

type evtchn_op =
  | Evtchn_alloc_unbound of { allowed_remote : int }
  | Evtchn_bind_interdomain of { remote_dom : int; remote_port : int }
  | Evtchn_bind_virq of { virq : int }
  | Evtchn_send of { port : int }
  | Evtchn_close of { port : int }

type call =
  | Mmu_update of (int64 * Pte.t) list
  | Mmuext_op of mmuext
  | Update_va_mapping of { va : Addr.vaddr; value : Pte.t }
  | Memory_exchange of Memory_exchange.request
  | Decrease_reservation of Addr.pfn list
  | Grant_table_op of grant_op
  | Event_channel_op of evtchn_op
  | Console_io of string
  | Raw of { number : int; args : int64 array }

let number_of_call = function
  | Mmu_update _ -> 1
  | Update_va_mapping _ -> 3
  | Memory_exchange _ | Decrease_reservation _ -> 12
  | Console_io _ -> 18
  | Grant_table_op _ -> 20
  | Mmuext_op _ -> 26
  | Event_channel_op _ -> 32
  | Raw { number; _ } -> number

let name_of_call = function
  | Mmu_update _ -> "mmu_update"
  | Update_va_mapping _ -> "update_va_mapping"
  | Memory_exchange _ -> "memory_op(XENMEM_exchange)"
  | Decrease_reservation _ -> "memory_op(XENMEM_decrease_reservation)"
  | Console_io _ -> "console_io"
  | Grant_table_op _ -> "grant_table_op"
  | Mmuext_op _ -> "mmuext_op"
  | Event_channel_op _ -> "event_channel_op"
  | Raw { number; _ } -> Printf.sprintf "hypercall#%d" number

let ok0 = Ok 0L
let of_unit = function Ok () -> ok0 | Error e -> Error e
let of_int = function Ok n -> Ok (Int64.of_int n) | Error e -> Error e

let do_mmuext hv dom = function
  | Pin_l4_table mfn -> of_unit (Mm.pin_table hv dom ~level:4 mfn)
  | Pin_l3_table mfn -> of_unit (Mm.pin_table hv dom ~level:3 mfn)
  | Pin_l2_table mfn -> of_unit (Mm.pin_table hv dom ~level:2 mfn)
  | Pin_l1_table mfn -> of_unit (Mm.pin_table hv dom ~level:1 mfn)
  | Unpin_table mfn -> of_unit (Mm.unpin_table hv dom mfn)
  | New_baseptr mfn -> of_unit (Mm.set_baseptr hv dom mfn)

let do_grant_op hv dom = function
  | Gnttab_setup_table { nr_frames } ->
      if nr_frames <= 0 || nr_frames > 4 then Error Errno.EINVAL
      else if Grant_table.memory_backed dom.Domain.grant then Error Errno.EBUSY
      else begin
        let frames = List.init nr_frames (fun _ -> Hv.alloc_xen_page hv) in
        Grant_table.set_shared dom.Domain.grant frames;
        (* the guest maps these frames itself (validate_l1 admits a
           domain's own grant frames); return the first mfn like the
           real op returns the frame list *)
        Ok (Int64.of_int (List.hd frames))
      end
  | Gnttab_set_version v ->
      let alloc () = Hv.alloc_xen_page hv in
      let release mfn = match Hv.release_page hv mfn with Ok () | Error _ -> () in
      of_unit (Grant_table.set_version dom.Domain.grant ~alloc ~release v)
  | Gnttab_grant_access { gref; grantee; pfn; readonly } -> (
      match Domain.mfn_of_pfn dom pfn with
      | None -> Error Errno.EINVAL
      | Some mfn -> of_unit (Grant_table.grant_access dom.Domain.grant ~gref ~grantee ~mfn ~readonly))
  | Gnttab_end_access { gref } -> of_unit (Grant_table.end_access dom.Domain.grant ~gref)
  | Gnttab_map { granter; gref } -> (
      match Hv.find_domain hv granter with
      | None -> Error Errno.EINVAL
      | Some gd ->
          let result =
            if Grant_table.memory_backed gd.Domain.grant then
              Grant_table.map_memory gd.Domain.grant ~mem:hv.Hv.mem ~granter
                ~mapper:dom.Domain.id ~gref
                ~gfn_to_mfn:(fun gfn -> Domain.mfn_of_pfn gd gfn)
            else Grant_table.map gd.Domain.grant ~granter ~mapper:dom.Domain.id ~gref
          in
          (match result with
          | Ok record -> Ok (Int64.of_int record.Grant_table.handle)
          | Error e -> Error e))
  | Gnttab_unmap { granter; handle } -> (
      match Hv.find_domain hv granter with
      | None -> Error Errno.EINVAL
      | Some gd ->
          if Grant_table.memory_backed gd.Domain.grant then
            of_unit (Grant_table.unmap_memory gd.Domain.grant ~mem:hv.Hv.mem ~handle)
          else of_unit (Grant_table.unmap gd.Domain.grant ~handle))

let do_evtchn hv dom = function
  | Evtchn_alloc_unbound { allowed_remote } -> (
      match Event_channel.alloc_unbound dom.Domain.events ~allowed_remote with
      | Ok port -> Ok (Int64.of_int port)
      | Error e -> Error e)
  | Evtchn_bind_interdomain { remote_dom; remote_port } -> (
      match Hv.find_domain hv remote_dom with
      | None -> Error Errno.EINVAL
      | Some rd -> (
          match
            Event_channel.bind_interdomain ~local:dom.Domain.events ~local_dom:dom.Domain.id
              ~remote:rd.Domain.events ~remote_dom ~remote_port
          with
          | Ok port -> Ok (Int64.of_int port)
          | Error e -> Error e))
  | Evtchn_bind_virq { virq } -> (
      match Event_channel.bind_virq dom.Domain.events ~virq with
      | Ok port -> Ok (Int64.of_int port)
      | Error e -> Error e)
  | Evtchn_send { port } -> (
      (* interdomain semantics: signalling my port raises the peer's *)
      match Event_channel.port dom.Domain.events port with
      | Some { Event_channel.binding = Some (Event_channel.Interdomain { remote_dom; remote_port }); _ }
        -> (
          match Hv.find_domain hv remote_dom with
          | Some rd -> of_unit (Event_channel.send rd.Domain.events remote_port)
          | None -> Error Errno.EINVAL)
      | Some { Event_channel.binding = Some (Event_channel.Virq _); _ } ->
          of_unit (Event_channel.send dom.Domain.events port)
      | Some _ -> Error Errno.ENOENT
      | None -> Error Errno.EINVAL)
  | Evtchn_close { port } -> of_unit (Event_channel.close dom.Domain.events port)

let dispatch_uncounted hv dom call =
  if Hv.is_crashed hv then Error Errno.EINVAL
  else
    match call with
    | Mmu_update updates -> of_int (Mm.mmu_update hv dom ~updates)
    | Mmuext_op op -> do_mmuext hv dom op
    | Update_va_mapping { va; value } -> of_unit (Mm.update_va_mapping hv dom ~va value)
    | Memory_exchange req -> (
        match Memory_exchange.exchange hv dom req with
        | Ok { Memory_exchange.nr_exchanged; _ } -> Ok (Int64.of_int nr_exchanged)
        | Error e -> Error e)
    | Decrease_reservation pfns -> of_int (Mm.decrease_reservation hv dom pfns)
    | Grant_table_op op -> do_grant_op hv dom op
    | Event_channel_op op -> do_evtchn hv dom op
    | Console_io s ->
        Hv.log hv (Printf.sprintf "(d%d) %s" dom.Domain.id s);
        ok0
    | Raw { number; args } -> (
        match Hv.lookup_hypercall hv number with
        | Some (_, handler) -> handler hv dom args
        | None -> Error Errno.ENOSYS)

let dispatch hv dom call =
  let result = dispatch_uncounted hv dom call in
  Hv.count_hypercall hv ~number:(number_of_call call) ~failed:(Result.is_error result);
  result

let dispatch_unit hv dom call =
  match dispatch hv dom call with Ok _ -> Ok () | Error e -> Error e

let return_code = function
  | Ok v -> Int64.to_int v
  | Error e -> Errno.to_return_code e
