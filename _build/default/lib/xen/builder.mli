(** The PV domain builder: construct a domain's initial address space
    the way the Xen toolstack does, then validate it through the normal
    promotion path.

    The initial layout for a domain with [pages] pseudo-physical pages:
    - pfn 0: the start_info page (fingerprintable magic, domain id,
      SIF_INITDOMAIN flag, pt_base, vDSO pfn — what the XSA-148 exploit
      scans physical memory for);
    - pfn 1: the vDSO page (ELF-like magic + domain id + code area —
      the page the privilege-escalation exploits patch);
    - pfns 2..: data pages;
    - top pfns: the initial page tables. Page-table pages are mapped
      {e read-only} in the kernel area (direct paging: all writes go
      through the hypervisor); everything else is mapped read-write.

    The M2P mapping under L4 slot 256 is built from Xen-owned,
    per-domain table pages: the L4 entry carries RW (permissions are
    enforced at the read-only leaves), which is exactly the latitude
    the XSA-212-priv attack exploits when it links a forged PMD under
    the same PUD. *)

val start_info_magic : string
(** "xen-3.0-x86_64" *)

val vdso_magic : string
val sif_initdomain : int64
val user_vdso_va : Addr.vaddr
(** Where the vDSO is mapped in guest user space. *)

(** Byte offsets of the start_info fields. *)
module Start_info : sig
  val magic_off : int
  val domid_off : int
  val flags_off : int
  val pt_base_off : int
  val nr_pages_off : int
  val vdso_pfn_off : int
  val hostname_off : int
end

(** Byte offsets within the vDSO page. *)
module Vdso : sig
  val magic_off : int
  val domid_off : int
  val code_off : int
  val code_len : int
end

val create_domain :
  Hv.t -> name:string -> privileged:bool -> pages:int -> Domain.t
(** Allocate, build, validate, pin and install the domain. Raises
    [Failure] on resource exhaustion and [Invalid_argument] for
    nonsensical sizes; a validation failure of the freshly built address
    space is a bug and raises [Failure]. *)

val pt_page_count : pages:int -> int
(** Table pages the builder reserves at the top of the pfn space. *)
