(** Grant tables: the mechanism by which one domain lends pages to
    another (or to a driver domain).

    Both grant-table versions are implemented, including the v2 status
    frames whose lifecycle is the subject of XSA-387 (status pages must
    be returned to Xen when a guest switches from v2 back to v1). The
    grant substrate supports the "Keep Page Reference" intrusion model
    of §IV-B. *)

type gt_version = V1 | V2

type entry = {
  mutable permit : bool;  (** access currently granted *)
  mutable grantee : int;  (** domain allowed to map *)
  mutable g_mfn : Addr.mfn;
  mutable readonly : bool;
  mutable in_use : int;  (** live mappings through this grant *)
}

type map_record = {
  handle : int;
  mapper : int;
  granter : int;
  gref : int;
  mapped_mfn : Addr.mfn;
  map_readonly : bool;
}

type t

val create : grefs:int -> t
val version : t -> gt_version
val entry : t -> int -> entry option
val status_frames : t -> Addr.mfn list

(** {1 The memory-backed v1 table}

    In real Xen the grant table {e is} memory: Xen-owned frames the
    guest maps and writes 8-byte entries into; the hypervisor parses
    them when another domain maps a grant. [gnttab_setup_table]
    installs such frames ({!set_shared}); from then on {!map_memory}
    reads the wire entries — and an arbitrary-write primitive aimed at
    those frames forges grants that were never made (the
    Corrupt-a-Page-Reference intrusion model). *)

module Wire : sig
  type wire_entry = { w_flags : int; w_domid : int; w_gfn : int }

  val entry_size : int
  (** 8 bytes: flags u16, domid u16, gfn u32 (little endian). *)

  val gtf_permit_access : int
  val gtf_readonly : int
  val gtf_in_use : int
  val read : Frame.t -> int -> wire_entry
  val write : Frame.t -> int -> wire_entry -> unit
end

val shared_frames : t -> Addr.mfn list
val set_shared : t -> Addr.mfn list -> unit
val memory_backed : t -> bool

val map_memory :
  t ->
  mem:Phys_mem.t ->
  granter:int ->
  mapper:int ->
  gref:int ->
  gfn_to_mfn:(int -> Addr.mfn option) ->
  (map_record, Errno.t) result
(** Parse the wire entry for [gref] from the shared frames, validate
    it, mark it in use (in memory) and record the mapping. *)

val unmap_memory : t -> mem:Phys_mem.t -> handle:int -> (unit, Errno.t) result

val set_version :
  t -> alloc:(unit -> Addr.mfn) -> release:(Addr.mfn -> unit) -> gt_version ->
  (unit, Errno.t) result
(** Switching to v2 allocates status frames from the hypervisor;
    switching back to v1 releases them — the operation whose buggy
    variants motivate the grant-table intrusion model. Fails with
    [EBUSY] while grants are mapped. *)

val grant_access :
  t -> gref:int -> grantee:int -> mfn:Addr.mfn -> readonly:bool -> (unit, Errno.t) result

val end_access : t -> gref:int -> (unit, Errno.t) result
(** Fails with [EBUSY] while the grant is mapped. *)

val map : t -> granter:int -> mapper:int -> gref:int -> (map_record, Errno.t) result
(** Validate and record a foreign mapping; the mapper then installs a
    PTE for [mapped_mfn] via the normal, validated MMU path. *)

val unmap : t -> handle:int -> (unit, Errno.t) result
val mappings : t -> map_record list
val find_mapping : t -> handle:int -> map_record option
val active_grants : t -> int

val deep_copy : t -> t
(** Structural copy (for hypervisor checkpointing). *)
