(** Domain control operations — the toolstack-facing lifecycle
    management (Xen's [domctl] interface).

    Destruction exercises the page-accounting discipline end to end:
    dropping the root references cascades through {!Mm.put_table_type},
    un-accounting every mapping the domain held, after which its frames
    release cleanly — except those still referenced from outside (an
    active grant mapping, a foreign mapping). Those remain as {e zombie
    pages}, exactly as real Xen keeps zombie domains alive until the
    last reference drops. *)

type destroy_report = {
  freed : int;  (** frames returned to the free pool *)
  zombie : Addr.mfn list;  (** frames still pinned by external references *)
}

val pause : Hv.t -> Domain.t -> (unit, Errno.t) result
(** Take the domain off the run queue. *)

val unpause : Hv.t -> Domain.t -> (unit, Errno.t) result

val destroy : Hv.t -> Domain.t -> (destroy_report, Errno.t) result
(** Tear the domain down: vcpu removed, event channels closed, address
    space un-accounted, grant/status frames released, frames freed,
    P2M/M2P and XenStore cleaned, domain delisted. Refuses ([EPERM]) to
    destroy dom0. *)

val list_domains : Hv.t -> (int * string * int) list
(** (domid, name, populated pages) for every live domain. *)
