type ptype = PGT_none | PGT_writable | PGT_l1 | PGT_l2 | PGT_l3 | PGT_l4 | PGT_seg

type info = {
  mutable owner : Phys_mem.owner;
  mutable ptype : ptype;
  mutable type_count : int;
  mutable ref_count : int;
  mutable validated : bool;
  mutable pinned : bool;
}

type t = info array

let fresh () =
  { owner = Phys_mem.Free; ptype = PGT_none; type_count = 0; ref_count = 0;
    validated = false; pinned = false }

let create ~frames = Array.init frames (fun _ -> fresh ())

let get t mfn =
  if mfn < 0 || mfn >= Array.length t then invalid_arg "Page_info.get: bad mfn";
  t.(mfn)

let table_level = function
  | PGT_l1 -> Some 1
  | PGT_l2 -> Some 2
  | PGT_l3 -> Some 3
  | PGT_l4 -> Some 4
  | PGT_none | PGT_writable | PGT_seg -> None

let ptype_of_level = function
  | 1 -> PGT_l1
  | 2 -> PGT_l2
  | 3 -> PGT_l3
  | 4 -> PGT_l4
  | _ -> invalid_arg "Page_info.ptype_of_level"

let ptype_to_string = function
  | PGT_none -> "none"
  | PGT_writable -> "writable"
  | PGT_l1 -> "l1_table"
  | PGT_l2 -> "l2_table"
  | PGT_l3 -> "l3_table"
  | PGT_l4 -> "l4_table"
  | PGT_seg -> "seg_desc"

let get_page t mfn =
  let i = get t mfn in
  i.ref_count <- i.ref_count + 1

let put_page t mfn =
  let i = get t mfn in
  if i.ref_count <= 0 then invalid_arg "Page_info.put_page: refcount underflow";
  i.ref_count <- i.ref_count - 1

let get_page_type t mfn ptype =
  let i = get t mfn in
  if i.ptype = ptype && i.type_count > 0 then (
    i.type_count <- i.type_count + 1;
    Ok ())
  else if i.type_count = 0 then (
    i.ptype <- ptype;
    i.type_count <- 1;
    i.validated <- false;
    Ok ())
  else Error Errno.EBUSY

let put_page_type t mfn =
  let i = get t mfn in
  if i.type_count <= 0 then invalid_arg "Page_info.put_page_type: type count underflow";
  i.type_count <- i.type_count - 1;
  if i.type_count = 0 then (
    i.validated <- false;
    i.pinned <- false)

let set_validated t mfn v = (get t mfn).validated <- v

let counts_consistent t =
  Array.for_all
    (fun i -> i.type_count >= 0 && i.ref_count >= 0 && ((not i.pinned) || i.type_count > 0))
    t
