type request = { in_pfns : Addr.pfn list; out_extent_start : Addr.vaddr }
type outcome = { nr_exchanged : int; new_mfns : Addr.mfn list }

let result_word mfn =
  Int64.logor (Addr.maddr_of_mfn mfn)
    (Int64.of_int 0x7 (* Present | RW | User: a directly usable mapping word *))

let out_addr start i = Int64.add start (Int64.of_int (8 * i))

let le64 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  b

let exchange hv dom { in_pfns; out_extent_start } =
  if Hv.is_crashed hv then Error Errno.EINVAL
  else
    let n = List.length in_pfns in
    let checked = Version.xsa212_fixed hv.Hv.version in
    (* The fix: validate the whole output range up front. The vulnerable
       version goes straight to the copy loop. *)
    if checked && not (Uaccess.guest_range_ok hv out_extent_start (8 * n)) then Error Errno.EFAULT
    else
      let copy_back =
        if checked then Uaccess.copy_to_guest else Uaccess.copy_to_guest_unchecked
      in
      let rec go i acc = function
        | [] -> Ok { nr_exchanged = i; new_mfns = List.rev acc }
        | pfn :: rest -> (
            match Domain.mfn_of_pfn dom pfn with
            | None -> Error Errno.EINVAL
            | Some old_mfn -> (
                match Hv.release_page hv old_mfn with
                | Error e -> Error e
                | Ok () ->
                    Domain.set_p2m dom pfn None;
                    Hv.m2p_set hv old_mfn None;
                    let new_mfn = Hv.alloc_domain_page hv dom in
                    Domain.set_p2m dom pfn (Some new_mfn);
                    Hv.m2p_set hv new_mfn (Some pfn);
                    (* nr_exchanged counts completed extents; the result
                       word for this one lands at start + 8 * i. *)
                    (match copy_back hv dom (out_addr out_extent_start i) (le64 (result_word new_mfn)) with
                    | Ok () -> go (i + 1) (new_mfn :: acc) rest
                    | Error e -> Error e)))
      in
      go 0 [] in_pfns
