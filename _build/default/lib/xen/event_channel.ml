type port_binding =
  | Unbound of { allowed_remote : int }
  | Interdomain of { remote_dom : int; remote_port : int }
  | Virq of int

type port = {
  mutable binding : port_binding option;
  mutable pending : bool;
  mutable masked : bool;
}

type t = port array

let create ~max_ports =
  if max_ports <= 0 then invalid_arg "Event_channel.create";
  Array.init max_ports (fun _ -> { binding = None; pending = false; masked = false })

let max_ports t = Array.length t
let port t i = if i >= 0 && i < Array.length t then Some t.(i) else None

let find_free t =
  let n = Array.length t in
  let rec go i = if i >= n then None else if t.(i).binding = None then Some i else go (i + 1) in
  go 0

let alloc_unbound t ~allowed_remote =
  match find_free t with
  | None -> Error Errno.ENOSPC
  | Some i ->
      t.(i).binding <- Some (Unbound { allowed_remote });
      Ok i

let bind_interdomain ~local ~local_dom ~remote ~remote_dom ~remote_port =
  match port remote remote_port with
  | None -> Error Errno.EINVAL
  | Some rp -> (
      match rp.binding with
      | Some (Unbound { allowed_remote }) when allowed_remote = local_dom -> (
          match find_free local with
          | None -> Error Errno.ENOSPC
          | Some lp ->
              local.(lp).binding <- Some (Interdomain { remote_dom; remote_port });
              rp.binding <- Some (Interdomain { remote_dom = local_dom; remote_port = lp });
              Ok lp)
      | Some (Unbound _) -> Error Errno.EPERM
      | Some (Interdomain _ | Virq _) -> Error Errno.EBUSY
      | None -> Error Errno.ENOENT)

let bind_virq t ~virq =
  match find_free t with
  | None -> Error Errno.ENOSPC
  | Some i ->
      t.(i).binding <- Some (Virq virq);
      Ok i

let send t i =
  match port t i with
  | None -> Error Errno.EINVAL
  | Some p -> (
      match p.binding with
      | Some (Interdomain _ | Virq _) ->
          p.pending <- true;
          Ok ()
      | Some (Unbound _) | None -> Error Errno.ENOENT)

let consume t i =
  match port t i with
  | None -> false
  | Some p ->
      let was = p.pending in
      p.pending <- false;
      was

let close t i =
  match port t i with
  | None -> Error Errno.EINVAL
  | Some p -> (
      match p.binding with
      | None -> Error Errno.ENOENT
      | Some _ ->
          p.binding <- None;
          p.pending <- false;
          p.masked <- false;
          Ok ())

let collect t f =
  let acc = ref [] in
  Array.iteri (fun i p -> if f p then acc := i :: !acc) t;
  List.rev !acc

let pending_ports t = collect t (fun p -> p.pending)
let bound_ports t = collect t (fun p -> p.binding <> None)

let force_pending_all t =
  let n = ref 0 in
  Array.iter
    (fun p ->
      if not p.pending then (
        p.pending <- true;
        incr n))
    t;
  !n

let deep_copy t =
  Array.map (fun p -> { binding = p.binding; pending = p.pending; masked = p.masked }) t
