(** The register-level hypercall ABI.

    Real PV guests do not call typed OCaml functions: they load a
    hypercall number and up to three register arguments, where pointer
    arguments name little-endian structures in {e guest} memory that the
    hypervisor copies in through [__copy_from_user]. This module
    implements that boundary on top of {!Hypercall}: register decode,
    guest-buffer fetch ([EFAULT] on bad pointers), structure layouts.

    Layouts (all fields u64 LE):
    - [mmu_update] (1): rdi = request array pointer, rsi = count;
      each request is 16 bytes: [ptr], [val].
    - [update_va_mapping] (3): rdi = va, rsi = new entry.
    - [memory_op] (12): rdi = subop, rsi = struct pointer.
      Subop 1 (decrease_reservation): 16-byte struct [extent_start]
      (pointer to a u64 pfn array), [nr_extents].
      Subop 11 (exchange): 24-byte struct [in_extent_start] (pointer to
      a u64 pfn array), [nr_in], [out_extent_start].
    - [console_io] (18): rdi = CONSOLEIO_write (0), rsi = length,
      rdx = buffer pointer.
    - [mmuext_op] (26): rdi = op array pointer, rsi = count; each op is
      16 bytes: [cmd] (0..3 = pin L1..L4, 4 = unpin, 5 = new baseptr),
      [mfn]. *)

val mmu_update_nr : int
val update_va_mapping_nr : int
val memory_op_nr : int
val console_io_nr : int
val mmuext_op_nr : int

val subop_decrease_reservation : int64
val subop_exchange : int64

val mmuext_pin_l1 : int64
val mmuext_pin_l2 : int64
val mmuext_pin_l3 : int64
val mmuext_pin_l4 : int64
val mmuext_unpin : int64
val mmuext_new_baseptr : int64

val dispatch :
  Hv.t -> Domain.t -> number:int -> ?rdi:int64 -> ?rsi:int64 -> ?rdx:int64 -> ?r10:int64 ->
  unit -> int
(** Decode and execute; the return value is the guest-visible rax
    (result, or a negative errno). Registers default to 0. Numbers not
    in the static table fall through to the extension table with
    [| rdi; rsi; rdx; r10 |] — which is exactly the injector's
    [arbitrary_access(addr, buf, n, action)] calling convention. *)

(** {1 Guest-side marshalling helpers}

    Build the argument structures in guest memory (at a caller-chosen
    scratch virtual address) exactly as a PV kernel's hypercall stubs
    would. *)

val encode_mmu_updates : (int64 * Pte.t) list -> bytes
val encode_u64_array : int64 list -> bytes
val encode_exchange : in_extent_start:int64 -> nr_in:int -> out_extent_start:int64 -> bytes
val encode_decrease : extent_start:int64 -> nr_extents:int -> bytes
val encode_mmuext : (int64 * int64) list -> bytes
