let guest_range_ok _hv va len =
  let last = Int64.add va (Int64.of_int (max 0 (len - 1))) in
  let ok a =
    match Layout.region_of_vaddr a with
    | Layout.Guest_low | Layout.Guest_kernel -> true
    | Layout.M2p | Layout.Linear_pt | Layout.Xen_extra | Layout.Xen_private | Layout.Direct_map ->
        false
  in
  ok va && ok last

let via_guest_tables_write hv dom va data =
  match Cpu.write_bytes hv.Hv.cpu ~ring:Cpu.Kernel ~cr3:dom.Domain.l4_mfn va data with
  | Ok () -> Ok ()
  | Error _ -> Error Errno.EFAULT

let via_guest_tables_read hv dom va len =
  match Cpu.read_bytes hv.Hv.cpu ~ring:Cpu.Kernel ~cr3:dom.Domain.l4_mfn va len with
  | Ok b -> Ok b
  | Error _ -> Error Errno.EFAULT

let copy_to_guest hv dom va data =
  if not (guest_range_ok hv va (Bytes.length data)) then Error Errno.EFAULT
  else via_guest_tables_write hv dom va data

let copy_from_guest hv dom va len =
  if not (guest_range_ok hv va len) then Error Errno.EFAULT
  else via_guest_tables_read hv dom va len

(* The XSA-212 defect: no __addr_ok. Xen-linear targets resolve through
   the hypervisor's own direct map — an arbitrary access primitive. *)
let copy_to_guest_unchecked hv dom va data =
  match Layout.maddr_of_directmap va with
  | Some ma ->
      (try
         Phys_mem.write_bytes hv.Hv.mem ma data;
         Ok ()
       with Phys_mem.Bad_maddr _ -> Error Errno.EFAULT)
  | None -> via_guest_tables_write hv dom va data

let copy_from_guest_unchecked hv dom va len =
  match Layout.maddr_of_directmap va with
  | Some ma -> (
      try Ok (Phys_mem.read_bytes hv.Hv.mem ma len) with Phys_mem.Bad_maddr _ -> Error Errno.EFAULT)
  | None -> via_guest_tables_read hv dom va len
