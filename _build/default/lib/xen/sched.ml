type vcpu_state = Runnable | Hung_in_hypervisor of string
type vcpu = { v_dom : int; mutable state : vcpu_state; mutable runs : int }
type outcome = Scheduled of int | Cpu_stalled of string | Idle

type t = {
  mutable queue : vcpu list;  (** round-robin order; head runs next *)
  wd_enabled : bool;
  wd_threshold : int;
  n_pcpus : int;
  mutable stalled : int;
}

let create ?(watchdog_enabled = true) ?(watchdog_threshold = 8) ?(pcpus = 1) () =
  if pcpus <= 0 then invalid_arg "Sched.create: pcpus must be positive";
  {
    queue = [];
    wd_enabled = watchdog_enabled;
    wd_threshold = watchdog_threshold;
    n_pcpus = pcpus;
    stalled = 0;
  }

let pcpus t = t.n_pcpus

let watchdog_enabled t = t.wd_enabled

let add_vcpu t ~dom =
  let v = { v_dom = dom; state = Runnable; runs = 0 } in
  t.queue <- t.queue @ [ v ];
  v

let vcpus t = t.queue
let vcpu_of t ~dom = List.find_opt (fun v -> v.v_dom = dom) t.queue
let runs_of t ~dom = match vcpu_of t ~dom with Some v -> v.runs | None -> 0

let remove_vcpu t ~dom =
  match vcpu_of t ~dom with
  | None -> Error Errno.ENOENT
  | Some _ ->
      t.queue <- List.filter (fun v -> v.v_dom <> dom) t.queue;
      Ok ()

let hung_vcpus_internal t =
  List.filter_map
    (fun v -> match v.state with Hung_in_hypervisor r -> Some (v.v_dom, r) | Runnable -> None)
    t.queue

let tick t =
  let hung_list = hung_vcpus_internal t in
  if List.length hung_list >= t.n_pcpus then begin
    (* every pCPU is pinned by a vcpu looping inside the hypervisor *)
    t.stalled <- t.stalled + 1;
    let dom, reason = List.hd hung_list in
    Cpu_stalled (Printf.sprintf "d%d vcpu stuck in hypervisor (%s)" dom reason)
  end
  else begin
    t.stalled <- 0;
    (* rotate to the next runnable vcpu; hung ones hold their pCPUs *)
    let rec next n =
      if n <= 0 then Idle
      else
        match t.queue with
        | [] -> Idle
        | v :: rest -> (
            t.queue <- rest @ [ v ];
            match v.state with
            | Runnable ->
                v.runs <- v.runs + 1;
                Scheduled v.v_dom
            | Hung_in_hypervisor _ -> next (n - 1))
    in
    next (List.length t.queue)
  end

let stalled_slices t = t.stalled
let watchdog_fired t = t.wd_enabled && t.stalled > t.wd_threshold

let hang_vcpu t ~dom ~reason =
  match vcpu_of t ~dom with
  | None -> Error Errno.ENOENT
  | Some v ->
      v.state <- Hung_in_hypervisor reason;
      Ok ()

let unhang_vcpu t ~dom =
  match vcpu_of t ~dom with
  | None -> Error Errno.ENOENT
  | Some v ->
      v.state <- Runnable;
      t.stalled <- 0;
      Ok ()

let hung_vcpus t = hung_vcpus_internal t

type checkpoint = { ck_queue : (int * vcpu_state * int) list; ck_stalled : int }

let checkpoint t =
  { ck_queue = List.map (fun v -> (v.v_dom, v.state, v.runs)) t.queue; ck_stalled = t.stalled }

let restore t ck =
  t.queue <- List.map (fun (v_dom, state, runs) -> { v_dom; state; runs }) ck.ck_queue;
  t.stalled <- ck.ck_stalled
