let start_info_magic = "xen-3.0-x86_64"
let vdso_magic = "\x7fELF-vdso-v1"
let sif_initdomain = 1L
let user_vdso_va = 0x0000_7fff_f000_0000L

module Start_info = struct
  let magic_off = 0
  let domid_off = 16
  let flags_off = 24
  let pt_base_off = 32
  let nr_pages_off = 40
  let vdso_pfn_off = 48
  let hostname_off = 64
end

module Vdso = struct
  let magic_off = 0
  let domid_off = 16
  let code_off = 64
  let code_len = 256
end

let kernel_l1_count ~pages = (pages + Addr.entries_per_table - 1) / Addr.entries_per_table
let pt_page_count ~pages = 1 + 1 + 1 + kernel_l1_count ~pages + 3

let intermediate = Pte.make ~flags:[ Pte.Present; Pte.Rw; Pte.User ]
let leaf_rw mfn = Pte.make ~mfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ]
let leaf_ro mfn = Pte.make ~mfn ~flags:[ Pte.Present; Pte.User ]

let write_start_info hv dom ~mfn ~l4_mfn ~pages =
  let frame = Phys_mem.frame hv.Hv.mem mfn in
  Frame.write_string frame Start_info.magic_off start_info_magic;
  Frame.set_u64 frame Start_info.domid_off (Int64.of_int dom.Domain.id);
  Frame.set_u64 frame Start_info.flags_off (if dom.Domain.privileged then sif_initdomain else 0L);
  Frame.set_u64 frame Start_info.pt_base_off (Int64.of_int l4_mfn);
  Frame.set_u64 frame Start_info.nr_pages_off (Int64.of_int pages);
  Frame.set_u64 frame Start_info.vdso_pfn_off (Int64.of_int dom.Domain.vdso_pfn);
  Frame.write_string frame Start_info.hostname_off (dom.Domain.name ^ "\000")

let write_vdso hv dom ~mfn =
  let frame = Phys_mem.frame hv.Hv.mem mfn in
  Frame.write_string frame Vdso.magic_off vdso_magic;
  Frame.set_u64 frame Vdso.domid_off (Int64.of_int dom.Domain.id);
  for i = 0 to Vdso.code_len - 2 do
    Frame.set_u8 frame (Vdso.code_off + i) 0x90 (* nop sled *)
  done;
  Frame.set_u8 frame (Vdso.code_off + Vdso.code_len - 1) 0xc3 (* ret *)

(* Per-domain, Xen-owned tables mapping the M2P read-only under L4 slot
   256. The upper entries carry RW — restriction lives at the leaves. *)
let build_m2p_chain hv l4_frame =
  let m2p_frames = Array.length hv.Hv.m2p_mfns in
  if m2p_frames > Addr.entries_per_table then
    invalid_arg "Builder: M2P too large for a single L1";
  let pud_x = Hv.alloc_xen_page hv in
  let l2_x = Hv.alloc_xen_page hv in
  let l1_x = Hv.alloc_xen_page hv in
  Frame.set_entry l4_frame Layout.m2p_slot (intermediate ~mfn:pud_x);
  Frame.set_entry (Phys_mem.frame hv.Hv.mem pud_x) 0 (intermediate ~mfn:l2_x);
  Frame.set_entry (Phys_mem.frame hv.Hv.mem l2_x) 0 (intermediate ~mfn:l1_x);
  Array.iteri
    (fun i m2p_mfn -> Frame.set_entry (Phys_mem.frame hv.Hv.mem l1_x) i (leaf_ro m2p_mfn))
    hv.Hv.m2p_mfns;
  let mark mfn level =
    Page_info.touch hv.Hv.pages mfn;
    let info = Page_info.get hv.Hv.pages mfn in
    info.Page_info.ptype <- Page_info.ptype_of_level level;
    info.Page_info.type_count <- 1;
    info.Page_info.validated <- true
  in
  mark pud_x 3;
  mark l2_x 2;
  mark l1_x 1;
  [ pud_x; l2_x; l1_x ]

let create_domain hv ~name ~privileged ~pages =
  let pt_count = pt_page_count ~pages in
  if pages < pt_count + 3 then invalid_arg "Builder.create_domain: domain too small";
  let id = Hv.fresh_domid hv in
  let dom = Domain.make ~id ~name ~privileged ~max_pfn:pages ~start_info_pfn:0 ~vdso_pfn:1 in
  (* Populate the P2M in pfn order; frames come out contiguous. *)
  for pfn = 0 to pages - 1 do
    let mfn = Hv.alloc_domain_page hv dom in
    Domain.set_p2m dom pfn (Some mfn);
    Hv.m2p_set hv mfn (Some pfn)
  done;
  let mfn_of pfn =
    match Domain.mfn_of_pfn dom pfn with
    | Some mfn -> mfn
    | None -> failwith "Builder: unpopulated pfn"
  in
  (* Page-table pages live at the top of the pfn space. *)
  let kl1s = kernel_l1_count ~pages in
  let l4_pfn = pages - 1 in
  let l3k_pfn = pages - 2 in
  let l2k_pfn = pages - 3 in
  let l1k_pfn j = pages - 4 - j in
  let l3u_pfn = pages - 4 - kl1s in
  let l2u_pfn = pages - 5 - kl1s in
  let l1u_pfn = pages - 6 - kl1s in
  let pt_pfns =
    l4_pfn :: l3k_pfn :: l2k_pfn :: l3u_pfn :: l2u_pfn :: l1u_pfn
    :: List.init kl1s (fun j -> l1k_pfn j)
  in
  let is_pt_pfn pfn = List.mem pfn pt_pfns in
  let l4_mfn = mfn_of l4_pfn in
  let l4_frame = Phys_mem.frame hv.Hv.mem l4_mfn in
  let entry_frame pfn = Phys_mem.frame hv.Hv.mem (mfn_of pfn) in
  (* Kernel area: pfn p mapped at guest_kernel_base + p * PAGE_SIZE. *)
  Frame.set_entry l4_frame (Addr.l4_index Layout.guest_kernel_base) (intermediate ~mfn:(mfn_of l3k_pfn));
  Frame.set_entry (entry_frame l3k_pfn) 0 (intermediate ~mfn:(mfn_of l2k_pfn));
  for j = 0 to kl1s - 1 do
    Frame.set_entry (entry_frame l2k_pfn) j (intermediate ~mfn:(mfn_of (l1k_pfn j)))
  done;
  for pfn = 0 to pages - 1 do
    let j = pfn / Addr.entries_per_table and i = pfn mod Addr.entries_per_table in
    let leaf = if is_pt_pfn pfn then leaf_ro else leaf_rw in
    Frame.set_entry (entry_frame (l1k_pfn j)) i (leaf (mfn_of pfn))
  done;
  (* User area: only the vDSO, read-only + user. *)
  let uva = user_vdso_va in
  Frame.set_entry l4_frame (Addr.l4_index uva) (intermediate ~mfn:(mfn_of l3u_pfn));
  Frame.set_entry (entry_frame l3u_pfn) (Addr.l3_index uva) (intermediate ~mfn:(mfn_of l2u_pfn));
  Frame.set_entry (entry_frame l2u_pfn) (Addr.l2_index uva) (intermediate ~mfn:(mfn_of l1u_pfn));
  Frame.set_entry (entry_frame l1u_pfn) (Addr.l1_index uva) (leaf_ro (mfn_of dom.Domain.vdso_pfn));
  (* Xen-provided M2P mapping. *)
  let m2p_chain = build_m2p_chain hv l4_frame in
  (* Special pages. *)
  write_start_info hv dom ~mfn:(mfn_of dom.Domain.start_info_pfn) ~l4_mfn ~pages;
  write_vdso hv dom ~mfn:(mfn_of dom.Domain.vdso_pfn);
  dom.Domain.pt_pages <- List.map mfn_of pt_pfns @ m2p_chain;
  (* Validate through the normal promotion path, pin, and switch. *)
  hv.Hv.domains <- hv.Hv.domains @ [ dom ];
  (match Mm.promote hv dom ~level:4 l4_mfn with
  | Ok () -> ()
  | Error e ->
      failwith
        (Printf.sprintf "Builder: fresh address space failed validation (%s)" (Errno.to_string e)));
  (match Mm.pin_table hv dom ~level:4 l4_mfn with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "Builder: pin failed (%s)" (Errno.to_string e)));
  (match Mm.set_baseptr hv dom l4_mfn with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "Builder: baseptr failed (%s)" (Errno.to_string e)));
  ignore (Sched.add_vcpu hv.Hv.sched ~dom:id);
  (* The toolstack's initial XenStore nodes for the new domain. *)
  Xenstore.inject_write hv.Hv.xenstore (Xenstore.domain_path id "name") name;
  Xenstore.inject_write hv.Hv.xenstore
    (Xenstore.domain_path id "memory/target")
    (string_of_int pages);
  Hv.log hv
    (Printf.sprintf "d%d (%s%s): %d pages, pt_base mfn 0x%x" id name
       (if privileged then ", privileged" else "")
       pages l4_mfn);
  dom
