lib/xen/event_channel.mli: Errno
