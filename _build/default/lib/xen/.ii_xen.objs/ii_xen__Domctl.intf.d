lib/xen/domctl.mli: Addr Domain Errno Hv
