lib/xen/hypercall.ml: Addr Domain Errno Event_channel Grant_table Hv Int64 List Memory_exchange Mm Printf Pte Result
