lib/xen/builder.ml: Addr Array Domain Errno Frame Hv Int64 Layout List Mm Page_info Phys_mem Printf Pte Sched Xenstore
