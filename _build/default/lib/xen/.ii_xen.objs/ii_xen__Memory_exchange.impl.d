lib/xen/memory_exchange.ml: Addr Bytes Domain Errno Hv Int64 List Uaccess Version
