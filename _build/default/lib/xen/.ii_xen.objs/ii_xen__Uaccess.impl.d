lib/xen/uaccess.ml: Bytes Cpu Domain Errno Hv Int64 Layout Phys_mem
