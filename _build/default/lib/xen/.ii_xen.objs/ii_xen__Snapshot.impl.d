lib/xen/snapshot.ml: Addr Builder Bytes Domain Frame Hashtbl Hv List Option Phys_mem Printf String Xenstore
