lib/xen/page_info.mli: Addr Errno Phys_mem
