lib/xen/event_channel.ml: Array Errno List
