lib/xen/errno.mli: Format Stdlib
