lib/xen/sched.ml: Errno List Printf
