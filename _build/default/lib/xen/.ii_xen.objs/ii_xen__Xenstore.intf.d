lib/xen/xenstore.mli: Errno
