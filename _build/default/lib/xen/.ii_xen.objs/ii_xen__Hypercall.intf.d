lib/xen/hypercall.mli: Addr Domain Errno Grant_table Hv Memory_exchange Pte
