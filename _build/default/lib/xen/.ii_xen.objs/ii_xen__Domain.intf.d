lib/xen/domain.mli: Addr Event_channel Format Grant_table Phys_mem
