lib/xen/domain.ml: Addr Array Event_channel Format Grant_table Int64 Layout List Phys_mem
