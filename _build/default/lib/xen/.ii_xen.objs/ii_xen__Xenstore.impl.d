lib/xen/xenstore.ml: Errno Hashtbl List Printf String
