lib/xen/errno.ml: Format Stdlib
