lib/xen/memory_exchange.mli: Addr Domain Errno Hv
