lib/xen/grant_table.mli: Addr Errno Frame Phys_mem
