lib/xen/sched.mli: Errno
