lib/xen/grant_table.ml: Addr Array Errno Frame Hashtbl Int64 List Phys_mem
