lib/xen/mm.mli: Addr Domain Errno Hv Pte Version
