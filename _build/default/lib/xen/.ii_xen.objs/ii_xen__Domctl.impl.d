lib/xen/domctl.ml: Addr Domain Errno Event_channel Grant_table Hv List Mm Page_info Phys_mem Printf Sched Xenstore
