lib/xen/hv.ml: Addr Array Buffer Cpu Domain Errno Frame Hashtbl Idt Int64 Layout List Option Page_info Phys_mem Printf Sched String Version Xenstore
