lib/xen/version.ml: Format Printf
