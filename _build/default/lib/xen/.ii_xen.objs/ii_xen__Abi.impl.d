lib/xen/abi.ml: Bytes Errno Hypercall Int64 List Memory_exchange Uaccess
