lib/xen/uaccess.mli: Addr Domain Errno Hv
