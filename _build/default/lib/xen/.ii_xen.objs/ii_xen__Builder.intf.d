lib/xen/builder.mli: Addr Domain Hv
