lib/xen/version.mli: Format
