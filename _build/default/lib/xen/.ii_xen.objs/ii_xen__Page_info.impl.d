lib/xen/page_info.ml: Array Bytes Errno List Phys_mem
