lib/xen/page_info.ml: Array Errno Phys_mem
