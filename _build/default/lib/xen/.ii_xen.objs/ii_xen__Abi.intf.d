lib/xen/abi.mli: Domain Hv Pte
