lib/xen/hv.mli: Addr Buffer Cpu Domain Errno Hashtbl Page_info Phys_mem Sched Version Xenstore
