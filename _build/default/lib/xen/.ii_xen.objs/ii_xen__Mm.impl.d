lib/xen/mm.ml: Addr Domain Errno Frame Grant_table Hv Int64 Layout List Page_info Paging Phys_mem Pte Result Version
