lib/xen/snapshot.mli: Addr Domain Hv
