(** A Xen domain's hypervisor-side state.

    Guest-kernel structures (processes, filesystem, console) live in the
    guest library; this record is what Xen itself knows: identity,
    privilege, the P2M map, the page-table root and the pages the domain
    builder handed over. *)

type t = {
  id : int;
  name : string;  (** also used as the guest hostname in transcripts *)
  privileged : bool;  (** true for dom0 *)
  p2m : Addr.mfn option array;  (** pfn -> mfn; [None] = no page *)
  mutable l4_mfn : Addr.mfn;  (** page-table root (start_info.pt_base) *)
  mutable pt_pages : Addr.mfn list;  (** builder-installed table pages *)
  start_info_pfn : Addr.pfn;
  vdso_pfn : Addr.pfn;
  grant : Grant_table.t;
  events : Event_channel.t;
  mutable dom_crashed : bool;
}

val make :
  id:int -> name:string -> privileged:bool -> max_pfn:int ->
  start_info_pfn:Addr.pfn -> vdso_pfn:Addr.pfn -> t

val deep_copy : t -> t
(** Structural copy — P2M, grant table and event channels included —
    so a checkpointed domain is immune to later mutation. *)

val max_pfn : t -> int
val mfn_of_pfn : t -> Addr.pfn -> Addr.mfn option
val pfn_of_mfn : t -> Addr.mfn -> Addr.pfn option
(** Linear scan of the P2M; Xen proper uses the M2P, which the
    hypervisor maintains — this is a testing aid. *)

val set_p2m : t -> Addr.pfn -> Addr.mfn option -> unit
val populated_pfns : t -> Addr.pfn list
val owned : t -> Phys_mem.owner
val kernel_vaddr_of_pfn : Addr.pfn -> Addr.vaddr
(** Where the builder maps guest page [pfn] in the PV kernel area. *)

val pfn_of_kernel_vaddr : Addr.vaddr -> Addr.pfn option
val pp : Format.formatter -> t -> unit
