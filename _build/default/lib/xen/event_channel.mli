(** Per-domain event channels — Xen's interrupt substrate.

    The paper notes that interrupts in Xen are "implemented using event
    channel data structures", which is why memory-corruption erroneous
    states can surface as interrupt misbehaviour. This module provides
    the substrate targeted by the interrupt-flavoured intrusion model
    (Uncontrolled Arbitrary Interrupt Requests). *)

type port_binding =
  | Unbound of { allowed_remote : int }
  | Interdomain of { remote_dom : int; remote_port : int }
  | Virq of int

type port = {
  mutable binding : port_binding option;  (** [None] = free port *)
  mutable pending : bool;
  mutable masked : bool;
}

type t

val create : max_ports:int -> t
val max_ports : t -> int
val port : t -> int -> port option

val alloc_unbound : t -> allowed_remote:int -> (int, Errno.t) result
(** Allocate a free port that [allowed_remote] may later bind to. *)

val bind_interdomain :
  local:t -> local_dom:int -> remote:t -> remote_dom:int -> remote_port:int ->
  (int, Errno.t) result
(** Bind a new local port to a remote unbound port; completes the remote
    side too. Fails with [EPERM] unless the remote port allows
    [local_dom]. *)

val bind_virq : t -> virq:int -> (int, Errno.t) result
val send : t -> int -> (unit, Errno.t) result
(** Mark a bound port of {e this} table pending — the delivery
    primitive. Interdomain routing (signal the peer's port) lives in
    the hypercall dispatcher. *)

val consume : t -> int -> bool
(** Clear and report a port's pending bit. *)

val close : t -> int -> (unit, Errno.t) result
val pending_ports : t -> int list
val bound_ports : t -> int list

val force_pending_all : t -> int
(** Set every port pending regardless of binding, returning how many
    were raised — the raw erroneous state behind the uncontrolled
    interrupt intrusion model. Never called by legitimate hypercalls. *)

val deep_copy : t -> t
(** Structural copy (for hypervisor checkpointing). *)
