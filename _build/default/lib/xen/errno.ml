type t = EPERM | ENOENT | ENOMEM | EACCES | EFAULT | EBUSY | EINVAL | ENOSYS | ENOSPC

let to_int = function
  | EPERM -> 1
  | ENOENT -> 2
  | ENOMEM -> 12
  | EACCES -> 13
  | EFAULT -> 14
  | EBUSY -> 16
  | EINVAL -> 22
  | ENOSYS -> 38
  | ENOSPC -> 28

let to_return_code e = -to_int e

let to_string = function
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | ENOMEM -> "ENOMEM"
  | EACCES -> "EACCES"
  | EFAULT -> "EFAULT"
  | EBUSY -> "EBUSY"
  | EINVAL -> "EINVAL"
  | ENOSYS -> "ENOSYS"
  | ENOSPC -> "ENOSPC"

let pp ppf e = Format.fprintf ppf "-%s" (to_string e)

type 'a result = ('a, t) Stdlib.result
