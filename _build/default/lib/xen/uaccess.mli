(** Hypervisor access to guest-supplied pointers
    ([__copy_to_user] / [__copy_from_user]).

    The checked variants enforce [__addr_ok]: a guest pointer must lie
    in guest-accessible address space before the hypervisor dereferences
    it through the guest's page tables.

    The [*_unchecked] variants reproduce the XSA-212 defect: the range
    check is skipped, and because hypervisor code runs with all of
    memory mapped, a pointer into Xen's direct map becomes an arbitrary
    read/write primitive. *)

val copy_to_guest : Hv.t -> Domain.t -> Addr.vaddr -> bytes -> (unit, Errno.t) result
val copy_from_guest : Hv.t -> Domain.t -> Addr.vaddr -> int -> (bytes, Errno.t) result

val copy_to_guest_unchecked : Hv.t -> Domain.t -> Addr.vaddr -> bytes -> (unit, Errno.t) result
(** The broken path: direct-map addresses are written through Xen's own
    mapping; other addresses fall back to the guest path without the
    [__addr_ok] filter. *)

val copy_from_guest_unchecked : Hv.t -> Domain.t -> Addr.vaddr -> int -> (bytes, Errno.t) result

val guest_range_ok : Hv.t -> Addr.vaddr -> int -> bool
(** The correct [__addr_ok] predicate: the whole range sits in
    guest-low or guest-kernel space. *)
