type t = (string, string) Hashtbl.t

let create () = Hashtbl.create 31
let domain_path id key = Printf.sprintf "/local/domain/%d/%s" id key

let own_subtree caller path =
  let prefix = Printf.sprintf "/local/domain/%d/" caller in
  String.length path >= String.length prefix && String.sub path 0 (String.length prefix) = prefix

let may_access ~caller path = caller = 0 || own_subtree caller path

let write t ~caller path value =
  if may_access ~caller path then begin
    Hashtbl.replace t path value;
    Ok ()
  end
  else Error Errno.EACCES

let read t ~caller path =
  if not (may_access ~caller path) then Error Errno.EACCES
  else match Hashtbl.find_opt t path with Some v -> Ok v | None -> Error Errno.ENOENT

let rm t ~caller path =
  if not (may_access ~caller path) then Error Errno.EACCES
  else if Hashtbl.mem t path then begin
    Hashtbl.remove t path;
    Ok ()
  end
  else Error Errno.ENOENT

let list_prefix t ~caller prefix =
  if not (may_access ~caller prefix) then Error Errno.EACCES
  else
    Ok
      (List.sort String.compare
         (Hashtbl.fold
            (fun path _ acc ->
              if
                String.length path >= String.length prefix
                && String.sub path 0 (String.length prefix) = prefix
              then path :: acc
              else acc)
            t []))

let inject_write t path value = Hashtbl.replace t path value
let dump t = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [])

let restore_dump t entries =
  Hashtbl.reset t;
  List.iter (fun (k, v) -> Hashtbl.replace t k v) entries
