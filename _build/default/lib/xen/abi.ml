let mmu_update_nr = 1
let update_va_mapping_nr = 3
let memory_op_nr = 12
let console_io_nr = 18
let mmuext_op_nr = 26
let subop_decrease_reservation = 1L
let subop_exchange = 11L
let mmuext_pin_l1 = 0L
let mmuext_pin_l2 = 1L
let mmuext_pin_l3 = 2L
let mmuext_pin_l4 = 3L
let mmuext_unpin = 4L
let mmuext_new_baseptr = 5L

(* --- guest-side marshalling ------------------------------------------- *)

let encode_words words =
  let b = Bytes.create (8 * List.length words) in
  List.iteri (fun i w -> Bytes.set_int64_le b (8 * i) w) words;
  b

let encode_mmu_updates updates =
  encode_words (List.concat_map (fun (ptr, v) -> [ ptr; v ]) updates)

let encode_u64_array = encode_words

let encode_exchange ~in_extent_start ~nr_in ~out_extent_start =
  encode_words [ in_extent_start; Int64.of_int nr_in; out_extent_start ]

let encode_decrease ~extent_start ~nr_extents =
  encode_words [ extent_start; Int64.of_int nr_extents ]

let encode_mmuext ops = encode_words (List.concat_map (fun (cmd, mfn) -> [ cmd; mfn ]) ops)

(* --- hypervisor-side decode -------------------------------------------- *)

let word b i = Bytes.get_int64_le b (8 * i)

let fetch hv dom ptr len k =
  match Uaccess.copy_from_guest hv dom ptr len with
  | Ok b -> k b
  | Error e -> Error e

(* Bound request counts like Xen does, so a guest cannot make the
   hypervisor copy in unbounded buffers. *)
let sane_count n = n >= 0 && n <= 1024

let decode_mmu_update hv dom ~rdi ~rsi =
  let count = Int64.to_int rsi in
  if not (sane_count count) then Error Errno.EINVAL
  else
    fetch hv dom rdi (16 * count) (fun b ->
        let updates = List.init count (fun i -> (word b (2 * i), word b ((2 * i) + 1))) in
        Ok (Hypercall.Mmu_update updates))

let decode_memory_op hv dom ~rdi ~rsi =
  if rdi = subop_decrease_reservation then
    fetch hv dom rsi 16 (fun b ->
        let extent_start = word b 0 and nr = Int64.to_int (word b 1) in
        if not (sane_count nr) then Error Errno.EINVAL
        else
          fetch hv dom extent_start (8 * nr) (fun pfns ->
              Ok (Hypercall.Decrease_reservation (List.init nr (fun i -> Int64.to_int (word pfns i))))))
  else if rdi = subop_exchange then
    fetch hv dom rsi 24 (fun b ->
        let in_start = word b 0 and nr = Int64.to_int (word b 1) and out_start = word b 2 in
        if not (sane_count nr) then Error Errno.EINVAL
        else
          fetch hv dom in_start (8 * nr) (fun pfns ->
              Ok
                (Hypercall.Memory_exchange
                   {
                     Memory_exchange.in_pfns = List.init nr (fun i -> Int64.to_int (word pfns i));
                     out_extent_start = out_start;
                   })))
  else Error Errno.ENOSYS

let decode_mmuext hv dom ~rdi ~rsi k =
  let count = Int64.to_int rsi in
  if not (sane_count count) then Error Errno.EINVAL
  else
    fetch hv dom rdi (16 * count) (fun b ->
        let ops = List.init count (fun i -> (word b (2 * i), word b ((2 * i) + 1))) in
        k ops)

let mmuext_call (cmd, mfn64) =
  let mfn = Int64.to_int mfn64 in
  if cmd = mmuext_pin_l1 then Ok (Hypercall.Pin_l1_table mfn)
  else if cmd = mmuext_pin_l2 then Ok (Hypercall.Pin_l2_table mfn)
  else if cmd = mmuext_pin_l3 then Ok (Hypercall.Pin_l3_table mfn)
  else if cmd = mmuext_pin_l4 then Ok (Hypercall.Pin_l4_table mfn)
  else if cmd = mmuext_unpin then Ok (Hypercall.Unpin_table mfn)
  else if cmd = mmuext_new_baseptr then Ok (Hypercall.New_baseptr mfn)
  else Error Errno.ENOSYS

let rc = Hypercall.return_code

let dispatch hv dom ~number ?(rdi = 0L) ?(rsi = 0L) ?(rdx = 0L) ?(r10 = 0L) () =
  if number = mmu_update_nr then
    match decode_mmu_update hv dom ~rdi ~rsi with
    | Ok call -> rc (Hypercall.dispatch hv dom call)
    | Error e -> Errno.to_return_code e
  else if number = update_va_mapping_nr then
    rc (Hypercall.dispatch hv dom (Hypercall.Update_va_mapping { va = rdi; value = rsi }))
  else if number = memory_op_nr then
    match decode_memory_op hv dom ~rdi ~rsi with
    | Ok call -> rc (Hypercall.dispatch hv dom call)
    | Error e -> Errno.to_return_code e
  else if number = console_io_nr then begin
    let len = Int64.to_int rsi in
    if not (sane_count len) then Errno.to_return_code Errno.EINVAL
    else
      match Uaccess.copy_from_guest hv dom rdx len with
      | Ok b -> rc (Hypercall.dispatch hv dom (Hypercall.Console_io (Bytes.to_string b)))
      | Error e -> Errno.to_return_code e
  end
  else if number = mmuext_op_nr then
    let result =
      decode_mmuext hv dom ~rdi ~rsi (fun ops ->
          (* apply in order; stop at the first failure like Xen *)
          let rec go n = function
            | [] -> Ok n
            | op :: rest -> (
                match mmuext_call op with
                | Error e -> Error e
                | Ok call -> (
                    match Hypercall.dispatch hv dom (Hypercall.Mmuext_op call) with
                    | Ok _ -> go (n + 1) rest
                    | Error e -> Error e))
          in
          go 0 ops)
    in
    (match result with Ok n -> n | Error e -> Errno.to_return_code e)
  else rc (Hypercall.dispatch hv dom (Hypercall.Raw { number; args = [| rdi; rsi; rdx; r10 |] }))
