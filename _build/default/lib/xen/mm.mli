(** Direct-paging memory management: validated guest page-table updates.

    PV guests own their page tables but every change goes through the
    hypervisor ([mmu_update] / [update_va_mapping] / pinning), which
    validates entries against the page-type system before writing them
    (§V-A). This module contains the three code-path differences that
    the paper's evaluation turns on:

    - {b XSA-148} (4.6): [validate_entry] at L2 does not reject the PSE
      bit, so a guest can install a 2 MiB superpage over its own
      page-table pages and gain writable page-table access.
    - {b XSA-182} (4.6): the flags-only fast path of [mmu_update]
      wrongly treats RW as a safe flag for L4 entries, so a read-only
      L4 self-map can be upgraded to writable without revalidation.
    - Hardening (4.13): guests may not own L4 slots 257..259 any more
      (checked against {!Layout.guest_may_own_l4_slot}).

    All functions return Xen errnos; they never raise on bad guest
    input. *)

type account = {
  acc_target : Addr.mfn;
  acc_kind : [ `Data_ro | `Data_rw | `Table of int | `Linear ];
}
(** How a present entry is accounted against its target frame. *)

val validate_entry :
  Hv.t -> Domain.t -> level:int -> table_mfn:Addr.mfn -> Pte.t ->
  (account option, Errno.t) result
(** Pure validation of a single new entry (no side effects).
    [None] for a non-present entry. *)

val promote : Hv.t -> Domain.t -> level:int -> Addr.mfn -> (unit, Errno.t) result
(** Give a frame the page-table type of [level], recursively validating
    and accounting its contents (Xen's type promotion). Re-promoting an
    already-typed table just takes another type reference. *)

val put_table_type : Hv.t -> Domain.t -> Addr.mfn -> unit
(** Drop a type reference; when the last one goes, un-account the
    table's entries (Xen's type invalidation). *)

type flush = Flush_none | Flush_all | Flush_page of Addr.mfn * Addr.vaddr
(** What a successful page-table write does to the software TLB
    ({!Paging.Tlb}). The hypercall paths flush — like real Xen — while
    the raw injector path bypasses this module and flushes nothing,
    which is how it leaves stale translations behind. *)

val mmu_update :
  ?flush:flush ->
  Hv.t -> Domain.t -> updates:(int64 * Pte.t) list -> (int, Errno.t) result
(** Apply page-table updates. Each request is [(ptr, value)] where [ptr]
    is the machine address of the entry (low bits: command, only
    MMU_NORMAL_PT_UPDATE here). Returns the number applied; stops at the
    first rejected request. [flush] (default [Flush_all]) runs after
    each applied update. *)

val update_va_mapping :
  Hv.t -> Domain.t -> va:Addr.vaddr -> Pte.t -> (unit, Errno.t) result
(** Update the leaf entry that maps [va] in the caller's current
    address space, with a targeted [invlpg] of just that page
    (UVMF_INVLPG semantics). *)

val pin_table : Hv.t -> Domain.t -> level:int -> Addr.mfn -> (unit, Errno.t) result
val unpin_table : Hv.t -> Domain.t -> Addr.mfn -> (unit, Errno.t) result

val set_baseptr : Hv.t -> Domain.t -> Addr.mfn -> (unit, Errno.t) result
(** MMUEXT_NEW_BASEPTR: switch the domain's page-table root. *)

val decrease_reservation : Hv.t -> Domain.t -> Addr.pfn list -> (int, Errno.t) result
(** Return pages to the hypervisor. A page still referenced (mapped or
    typed) is refused with [EBUSY] — the discipline whose bypass yields
    the Keep-Page-Access erroneous state. Returns pages released. *)

val safe_flags : Version.t -> level:int -> Pte.flag list
(** Flags the fast path may change without revalidation — includes [Rw]
    at L4 exactly on the XSA-182-vulnerable version. *)
