(** The VENOM mini-study: exploit vs. injection on the device model,
    across configurations — the §III narrative made executable.

    The study mirrors the main campaign's structure at device-model
    scale: the same erroneous state (corrupted FDC request handler) is
    produced by the real overflow on vulnerable builds and by the
    injector on all builds; whether code execution follows depends on
    the build's handler validation. *)

type mode = Exploit | Injection

type outcome = {
  o_mode : mode;
  o_cfg : Fdc.config;
  o_state : bool;  (** handler corrupted (audited) *)
  o_violation : bool;  (** attacker-controlled dispatch happened *)
  o_log : string list;
}

val im : Intrusion_model.t
(** Write Unauthorized Memory via the FDC device-emulation interface. *)

val run : Fdc.config -> mode -> outcome

val matrix : unit -> outcome list
(** All four configurations x both modes. *)

val render : outcome list -> string
