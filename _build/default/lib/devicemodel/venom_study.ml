type mode = Exploit | Injection

type outcome = {
  o_mode : mode;
  o_cfg : Fdc.config;
  o_state : bool;
  o_violation : bool;
  o_log : string list;
}

let im =
  Intrusion_model.make ~name:"IM-venom-fdc"
    ~source:Intrusion_model.Guest_userspace
    ~interface:(Intrusion_model.Device_emulation "fdc")
    ~target:Intrusion_model.Device_model
    ~functionality:Abusive_functionality.Write_unauthorized_memory
    ~representative_of:[ "XSA-133"; "CVE-2015-3456" ]
    "A guest user with device access overflows the FDC FIFO, corrupting device-model memory."

let attacker_handler = 0x0000_6666_c0de_c0deL

let payload () =
  (* FIFO-sized filler followed by the forged handler pointer. *)
  let b = Bytes.make (Fdc.fifo_size + 8) 'A' in
  Bytes.set_int64_le b Fdc.fifo_size attacker_handler;
  b

let overflow_tail () =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 attacker_handler;
  b

let mode_to_string = function Exploit -> "exploit" | Injection -> "injection"

let run cfg mode =
  let fdc = Fdc.create cfg in
  let log = ref [] in
  let say s = log := s :: !log in
  (match mode with
  | Exploit -> (
      say "guest: crafted kernel module sends an over-long FD_WRITE buffer";
      match Fdc.issue fdc (Fdc.Fd_write_data (payload ())) with
      | Ok () -> say "fdc accepted the buffer"
      | Error e -> say ("fdc: " ^ e))
  | Injection ->
      say "injector: overwriting device-model memory past the FIFO";
      Fdc.inject_overflow fdc (overflow_tail ()));
  let state = not (Fdc.handler_intact fdc) in
  say
    (Printf.sprintf "audit: request handler = 0x%016Lx (%s)" (Fdc.handler_value fdc)
       (if state then "corrupted" else "intact"));
  let violation =
    match Fdc.kick fdc with
    | `Dispatched ->
        say "dispatch: legitimate handler ran";
        false
    | `Hijacked v ->
        say (Printf.sprintf "dispatch: control transferred to 0x%016Lx (code execution)" v);
        true
    | `Rejected_corrupt_handler ->
        say "dispatch: handler validation rejected the corrupted pointer (handled)";
        false
  in
  { o_mode = mode; o_cfg = cfg; o_state = state; o_violation = violation; o_log = List.rev !log }

let configs =
  [
    { Fdc.venom_vulnerable = true; handler_validation = false };
    { Fdc.venom_vulnerable = true; handler_validation = true };
    { Fdc.venom_vulnerable = false; handler_validation = false };
    { Fdc.venom_vulnerable = false; handler_validation = true };
  ]

let matrix () =
  List.concat_map (fun cfg -> [ run cfg Exploit; run cfg Injection ]) configs

let render outcomes =
  Report.table ~title:"VENOM device-model study (exploit vs injection across configurations)"
    ~header:[ "Build"; "Mode"; "Err.State"; "Sec.Viol." ]
    (List.map
       (fun o ->
         [
           Printf.sprintf "venom=%b validation=%b" o.o_cfg.Fdc.venom_vulnerable
             o.o_cfg.Fdc.handler_validation;
           mode_to_string o.o_mode;
           Report.check o.o_state;
           (if o.o_violation then Report.check true else if o.o_state then Report.shield else "");
         ])
       outcomes)
