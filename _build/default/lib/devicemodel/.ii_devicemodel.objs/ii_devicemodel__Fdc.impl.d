lib/devicemodel/fdc.ml: Bytes Char
