lib/devicemodel/venom_study.ml: Abusive_functionality Bytes Fdc Intrusion_model List Printf Report
