lib/devicemodel/blk_study.ml: Abusive_functionality Addr Blkdev Bytes Domain Errno Injector Int64 Intrusion_model Kernel List Option Report String Testbed Version
