lib/devicemodel/blk_study.mli: Intrusion_model
