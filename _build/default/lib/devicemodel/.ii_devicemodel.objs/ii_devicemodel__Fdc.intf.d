lib/devicemodel/fdc.mli:
