lib/devicemodel/blkdev.mli: Addr Domain Errno Hv Kernel Paging
