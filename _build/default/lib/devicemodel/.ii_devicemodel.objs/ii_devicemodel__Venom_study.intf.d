lib/devicemodel/venom_study.mli: Fdc Intrusion_model
