lib/devicemodel/blkdev.ml: Addr Array Domain Errno Frame Grant_table Hv Hypercall Int64 Kernel Option Phys_mem Printf Pte
