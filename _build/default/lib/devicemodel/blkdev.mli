(** A paravirtual block-device pair (blkfront/blkback style).

    The split-driver model is Xen's main I/O surface, and its backends
    are a steady source of advisories. This implementation is built on
    the real substrates: the frontend grants a shared ring page and a
    data page to the backend domain through the memory-backed grant
    table; the backend maps the grants, parses ring requests, and moves
    sectors between its disk (Xen-owned frames) and the guest's data
    page.

    The vulnerable variant carries a classic backend off-by-one: the
    sector bound check accepts [sector = capacity], so reading the
    one-past-the-end sector discloses whatever lives in the frame
    adjacent to the disk — here, a backend secret. The injector
    reproduces the same erroneous state (secret bytes in a
    guest-readable page) on the fixed backend with two
    [arbitrary_access] calls, which is exactly the paper's pitch for
    device-driver intrusion models. *)

module Ring : sig
  val req_prod_off : int
  val rsp_prod_off : int
  val slots : int
  val slot_off : int -> int
  (** Requests are 32 bytes: id, op (0 = read, 1 = write), sector,
      status (written by the backend: 0 ok, negative errno). *)

  val op_read : int64
  val op_write : int64
end

type backend

val sectors : int
(** Disk capacity in 512-byte sectors. *)

val secret : string
(** What lives in the frame right after the disk. *)

val create_backend :
  Hv.t -> backend_dom:Domain.t -> off_by_one:bool -> backend
(** Allocate the disk frames (and the adjacent secret frame) from the
    Xen heap and fill the disk with a recognizable pattern. *)

val disk_frame : backend -> int -> Addr.mfn
(** Frame holding the given 8-sector group (for injection targeting). *)

val secret_frame : backend -> Addr.mfn

type frontend

val connect :
  Kernel.t -> backend_domid:int -> ring_pfn:Addr.pfn -> data_pfn:Addr.pfn ->
  (frontend, Errno.t) result
(** Set up the grant table if needed, grant the ring and data pages to
    the backend, and initialize the ring. *)

val submit : frontend -> op:int64 -> sector:int -> (int, Errno.t) result
(** Queue a request; returns its ring id. *)

val backend_poll : backend -> frontend -> int
(** Map the grants, process every outstanding request, write statuses,
    unmap. Returns requests completed. *)

val response_status : frontend -> int -> int64 option
(** Status of request [id], if the backend answered. *)

val read_data : frontend -> off:int -> len:int -> (bytes, Paging.fault) result
(** Read the frontend's data page through the guest's own mapping. *)

val write_data : frontend -> off:int -> bytes -> (unit, Paging.fault) result
