type mode = Exploit | Injection

type outcome = {
  o_mode : mode;
  o_off_by_one : bool;
  o_status : int64 option;
  o_state : bool;
  o_disclosure : bool;
}

let im =
  Intrusion_model.make ~name:"IM-blkback-oob-read"
    ~source:Intrusion_model.Device_driver
    ~interface:(Intrusion_model.Device_emulation "blkback ring")
    ~target:Intrusion_model.Device_model
    ~functionality:Abusive_functionality.Read_unauthorized_memory
    "A frontend request reads past the backend's disk into adjacent backend memory."

let ring_pfn = 45
let data_pfn = 46

let secret_prefix = String.sub Blkdev.secret 0 14

let data_has_secret fe =
  match Blkdev.read_data fe ~off:0 ~len:(String.length secret_prefix) with
  | Ok b -> Bytes.to_string b = secret_prefix
  | Error _ -> false

let run ~off_by_one mode =
  let tb = Testbed.create Version.V4_13 in
  let hv = tb.Testbed.hv in
  Injector.install hv;
  let dom0 = Kernel.dom tb.Testbed.dom0 in
  let be = Blkdev.create_backend hv ~backend_dom:dom0 ~off_by_one in
  let fe =
    match
      Blkdev.connect tb.Testbed.attacker ~backend_domid:dom0.Domain.id ~ring_pfn ~data_pfn
    with
    | Ok fe -> fe
    | Error e -> failwith (Errno.to_string e)
  in
  match mode with
  | Exploit ->
      let id =
        match Blkdev.submit fe ~op:Blkdev.Ring.op_read ~sector:Blkdev.sectors with
        | Ok id -> id
        | Error e -> failwith (Errno.to_string e)
      in
      ignore (Blkdev.backend_poll be fe);
      let status = Blkdev.response_status fe id in
      let state = data_has_secret fe in
      { o_mode = mode; o_off_by_one = off_by_one; o_status = status; o_state = state;
        o_disclosure = state }
  | Injection ->
      (* arbitrary_access: lift the adjacent backend frame straight into
         the guest's data page *)
      let k = tb.Testbed.attacker in
      let secret_addr = Addr.maddr_of_mfn (Blkdev.secret_frame be) in
      let data_addr =
        Addr.maddr_of_mfn (Option.get (Domain.mfn_of_pfn (Kernel.dom k) data_pfn))
      in
      (match
         Injector.read k ~addr:secret_addr ~action:Injector.Arbitrary_read_physical ~len:512
       with
      | Ok bytes -> (
          match
            Injector.write k ~addr:data_addr ~action:Injector.Arbitrary_write_physical bytes
          with
          | Ok () -> ()
          | Error e -> failwith (Errno.to_string e))
      | Error e -> failwith (Errno.to_string e));
      let state = data_has_secret fe in
      { o_mode = mode; o_off_by_one = off_by_one; o_status = None; o_state = state;
        o_disclosure = state }

let matrix () =
  List.concat_map
    (fun off_by_one -> [ run ~off_by_one Exploit; run ~off_by_one Injection ])
    [ true; false ]

let render outcomes =
  Report.table
    ~title:"Block-backend study: OOB-sector exploit vs injection (secret in guest data page)"
    ~header:[ "Backend"; "Mode"; "Backend status"; "Err.State"; "Disclosure" ]
    (List.map
       (fun o ->
         [
           (if o.o_off_by_one then "off-by-one" else "fixed");
           (match o.o_mode with Exploit -> "exploit" | Injection -> "injection");
           (match o.o_status with Some s -> Int64.to_string s | None -> "-");
           Report.check o.o_state;
           Report.check o.o_disclosure;
         ])
       outcomes)
