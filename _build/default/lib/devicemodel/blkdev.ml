module Ring = struct
  let req_prod_off = 0
  let rsp_prod_off = 8
  let slots = 32
  let base = 64
  let slot_size = 32
  let slot_off i = base + (i mod slots * slot_size)
  let op_read = 0L
  let op_write = 1L
end

let sectors = 64
let sector_size = 512
let sectors_per_frame = Addr.page_size / sector_size
let disk_frames = sectors / sectors_per_frame
let secret = "BACKEND-SECRET: other tenants' cached blocks live here."

type backend = {
  hv : Hv.t;
  backend_dom : Domain.t;
  frames : Addr.mfn array;  (** [0..disk_frames-1] disk, [disk_frames] the adjacent secret *)
  off_by_one : bool;
}

let disk_frame be group = be.frames.(group)
let secret_frame be = be.frames.(disk_frames)

let create_backend hv ~backend_dom ~off_by_one =
  let frames = Array.init (disk_frames + 1) (fun _ -> Hv.alloc_xen_page hv) in
  let be = { hv; backend_dom; frames; off_by_one } in
  for s = 0 to sectors - 1 do
    let frame = Phys_mem.frame hv.Hv.mem frames.(s / sectors_per_frame) in
    let off = s mod sectors_per_frame * sector_size in
    Frame.write_string frame off (Printf.sprintf "SECTOR%02d" s)
  done;
  Frame.write_string (Phys_mem.frame hv.Hv.mem (secret_frame be)) 0 secret;
  be

(* One-past-the-end sectors land in the adjacent frame — the memory
   shape the off-by-one discloses. *)
let sector_addr be s =
  Int64.add
    (Addr.maddr_of_mfn be.frames.(s / sectors_per_frame))
    (Int64.of_int (s mod sectors_per_frame * sector_size))

let sector_valid be s = if be.off_by_one then s >= 0 && s <= sectors else s >= 0 && s < sectors

type frontend = {
  k : Kernel.t;
  backend_domid : int;
  ring_va : Addr.vaddr;
  data_va : Addr.vaddr;
  ring_mfn : Addr.mfn;
  data_mfn : Addr.mfn;
  ring_gref : int;
  data_gref : int;
}

let grant_frame_pfn = 44
let ring_gref = 20
let data_gref = 21

let connect k ~backend_domid ~ring_pfn ~data_pfn =
  let dom = Kernel.dom k in
  let rc call = Kernel.hypercall_rc k call in
  let setup () =
    if Grant_table.memory_backed dom.Domain.grant then 0
    else begin
      let grant_mfn = rc (Hypercall.Grant_table_op (Hypercall.Gnttab_setup_table { nr_frames = 1 })) in
      if grant_mfn < 0 then grant_mfn
      else
        rc
          (Hypercall.Update_va_mapping
             {
               va = Domain.kernel_vaddr_of_pfn grant_frame_pfn;
               value = Pte.make ~mfn:grant_mfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ];
             })
    end
  in
  if setup () < 0 then Error Errno.ENOMEM
  else
    let grant_va = Domain.kernel_vaddr_of_pfn grant_frame_pfn in
    let wire gref pfn =
      let word =
        Int64.logor
          (Int64.of_int Grant_table.Wire.gtf_permit_access)
          (Int64.logor
             (Int64.shift_left (Int64.of_int backend_domid) 16)
             (Int64.shift_left (Int64.of_int pfn) 32))
      in
      Kernel.write_u64 k (Int64.add grant_va (Int64.of_int (8 * gref))) word
    in
    match (wire ring_gref ring_pfn, wire data_gref data_pfn) with
    | Ok (), Ok () ->
        let ring_va = Domain.kernel_vaddr_of_pfn ring_pfn in
        (* initialize producer/consumer indices *)
        (match
           ( Kernel.write_u64 k (Int64.add ring_va (Int64.of_int Ring.req_prod_off)) 0L,
             Kernel.write_u64 k (Int64.add ring_va (Int64.of_int Ring.rsp_prod_off)) 0L )
         with
        | Ok (), Ok () ->
            Ok
              {
                k;
                backend_domid;
                ring_va;
                data_va = Domain.kernel_vaddr_of_pfn data_pfn;
                ring_mfn = Option.get (Domain.mfn_of_pfn dom ring_pfn);
                data_mfn = Option.get (Domain.mfn_of_pfn dom data_pfn);
                ring_gref;
                data_gref;
              }
        | _ -> Error Errno.EFAULT)
    | _ -> Error Errno.EFAULT

let ring_word fe off = Kernel.read_u64 fe.k (Int64.add fe.ring_va (Int64.of_int off))
let ring_set fe off v = Kernel.write_u64 fe.k (Int64.add fe.ring_va (Int64.of_int off)) v

let submit fe ~op ~sector =
  match ring_word fe Ring.req_prod_off with
  | Error _ -> Error Errno.EFAULT
  | Ok prod ->
      let id = Int64.to_int prod in
      let off = Ring.slot_off id in
      let put rel v =
        match ring_set fe (off + rel) v with Ok () -> () | Error _ -> ()
      in
      put 0 prod;
      put 8 op;
      put 16 (Int64.of_int sector);
      put 24 (-1L);
      (match ring_set fe Ring.req_prod_off (Int64.add prod 1L) with
      | Ok () -> Ok id
      | Error _ -> Error Errno.EFAULT)

(* The backend side: map the grants (taking real maptrack references),
   then work directly on the granted frames — a driver domain's view. *)
let backend_poll be fe =
  let hv = be.hv in
  let granter = (Kernel.dom fe.k).Domain.id in
  let grant_map gref =
    Hypercall.dispatch hv be.backend_dom
      (Hypercall.Grant_table_op (Hypercall.Gnttab_map { granter; gref }))
  in
  let unmap handle =
    ignore
      (Hypercall.dispatch hv be.backend_dom
         (Hypercall.Grant_table_op (Hypercall.Gnttab_unmap { granter; handle })))
  in
  (* map both grants; abort politely if the frontend lied *)
  match (grant_map fe.ring_gref, grant_map fe.data_gref) with
  | Ok ring_handle, Ok data_handle ->
      let ring = Phys_mem.frame hv.Hv.mem fe.ring_mfn in
      let data_ma = Addr.maddr_of_mfn fe.data_mfn in
      let req_prod = Int64.to_int (Frame.get_u64 ring Ring.req_prod_off) in
      let rsp_prod = Int64.to_int (Frame.get_u64 ring Ring.rsp_prod_off) in
      let completed = ref 0 in
      for id = rsp_prod to req_prod - 1 do
        let off = Ring.slot_off id in
        let op = Frame.get_u64 ring (off + 8) in
        let sector = Int64.to_int (Frame.get_u64 ring (off + 16)) in
        let status =
          if not (sector_valid be sector) then Int64.of_int (Errno.to_return_code Errno.EINVAL)
          else begin
            let disk = sector_addr be sector in
            if op = Ring.op_read then
              Phys_mem.write_bytes hv.Hv.mem data_ma (Phys_mem.read_bytes hv.Hv.mem disk sector_size)
            else if op = Ring.op_write then
              Phys_mem.write_bytes hv.Hv.mem disk (Phys_mem.read_bytes hv.Hv.mem data_ma sector_size)
            else ();
            if op = Ring.op_read || op = Ring.op_write then 0L
            else Int64.of_int (Errno.to_return_code Errno.ENOSYS)
          end
        in
        Frame.set_u64 ring (off + 24) status;
        incr completed
      done;
      Frame.set_u64 ring Ring.rsp_prod_off (Int64.of_int req_prod);
      unmap (Int64.to_int ring_handle);
      unmap (Int64.to_int data_handle);
      !completed
  | Ok h, Error _ | Error _, Ok h ->
      unmap (Int64.to_int h);
      0
  | Error _, Error _ -> 0

let response_status fe id =
  match (ring_word fe Ring.rsp_prod_off, ring_word fe (Ring.slot_off id + 24)) with
  | Ok rsp, Ok status when Int64.to_int rsp > id -> Some status
  | _ -> None

let read_data fe ~off ~len = Kernel.read_bytes fe.k (Int64.add fe.data_va (Int64.of_int off)) len
let write_data fe ~off data = Kernel.write_bytes fe.k (Int64.add fe.data_va (Int64.of_int off)) data
