(** The block-backend study: exploit vs. injection on the split-driver
    stack.

    A guest frontend asks the backend for the one-past-the-end sector.
    On an off-by-one backend the request succeeds and the adjacent
    backend secret lands in the guest's data page (disclosure); a fixed
    backend answers -EINVAL. The injector reproduces the same erroneous
    state — secret bytes in the guest-readable data page — regardless
    of the backend build, which is how one assesses the blast radius of
    backend bugs that are not known yet. *)

type mode = Exploit | Injection

type outcome = {
  o_mode : mode;
  o_off_by_one : bool;
  o_status : int64 option;  (** backend's answer to the OOB request *)
  o_state : bool;  (** secret bytes present in the guest data page *)
  o_disclosure : bool;
}

val im : Intrusion_model.t
val run : off_by_one:bool -> mode -> outcome
val matrix : unit -> outcome list
val render : outcome list -> string
