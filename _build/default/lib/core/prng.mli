(** A small deterministic PRNG (xorshift64 variant) for randomized injection
    campaigns.

    Campaigns must be reproducible from a seed — results are compared
    across hypervisor versions, so the same trial sequence has to hit
    the same targets on each. The standard library's [Random] is
    deliberately not used. *)

type t

val create : seed:int64 -> t
val copy : t -> t
val next : t -> int64
val int : t -> bound:int -> int
(** Uniform-ish in [0, bound). [bound] must be positive. *)

val int64 : t -> int64
val bool : t -> bool
val choose : t -> 'a list -> 'a
(** Raises [Invalid_argument] on an empty list. *)
