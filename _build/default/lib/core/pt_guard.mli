(** A deployable defence mechanism: a page-table integrity guard.

    §III-C proposes exactly this evaluation: "Assuming a deployed
    mechanism to prevent unauthorized modification of page tables, the
    effectiveness of this mechanism can be tested using our approach."
    This module is that mechanism; {!Defense_eval} is that test.

    The guard keeps golden copies of every protected frame (all
    validated page-table pages, the IDT, and the M2P) and tracks the
    {e authorized} update stream through the hypervisor's
    [pt_write_hook] — the same trick real integrity monitors use by
    hooking the validated MMU path. An {!audit} compares live bytes
    against the golden copies: divergence means an unauthorized write
    happened behind the hypervisor's back (an injected or exploited
    erroneous state). Policy [Detect_and_repair] additionally restores
    the golden bytes. *)

type policy = Detect_only | Detect_and_repair

type detection = {
  d_mfn : Addr.mfn;
  d_offsets : int list;  (** corrupted 8-byte-word offsets *)
  repaired : bool;
}

type t

val deploy : Hv.t -> policy -> t
(** Snapshot all protected frames and hook the authorized update
    stream. One guard per hypervisor; redeploying replaces the hook. *)

val policy : t -> policy
val protected_frames : t -> Addr.mfn list
val protect : t -> Addr.mfn -> unit
(** Add a frame to the protected set (snapshotting it now). *)

val audit : t -> detection list
(** Compare live state against the golden copies (and the authorized
    update stream); repair if the policy says so. Returns this audit's
    detections. *)

val detections : t -> detection list
(** Everything detected so far, most recent first. *)

val audits_run : t -> int

val enable_periodic : t -> every:int -> unit
(** Piggyback on the scheduler: run {!audit} every [every] validated
    scheduler slices (via {!Testbed.tick_all}'s sched path this means
    every [every] ticks). Requires the caller to invoke {!on_tick}. *)

val on_tick : t -> unit
(** Advance the periodic-audit clock (call once per scheduler round). *)
