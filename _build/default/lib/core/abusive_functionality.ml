type cls = Memory_access | Memory_management | Exceptional_conditions | Non_memory_related

type t =
  | Read_unauthorized_memory
  | Write_unauthorized_memory
  | Write_unauthorized_arbitrary_memory
  | Rw_unauthorized_memory
  | Fail_memory_access
  | Corrupt_virtual_memory_mapping
  | Corrupt_page_reference
  | Decrease_page_mapping_availability
  | Guest_writable_page_table_entry
  | Fail_memory_mapping
  | Uncontrolled_memory_allocation
  | Keep_page_access
  | Induce_fatal_exception
  | Induce_memory_exception
  | Induce_hang_state
  | Uncontrolled_interrupt_requests

let all =
  [
    Read_unauthorized_memory;
    Write_unauthorized_memory;
    Write_unauthorized_arbitrary_memory;
    Rw_unauthorized_memory;
    Fail_memory_access;
    Corrupt_virtual_memory_mapping;
    Corrupt_page_reference;
    Decrease_page_mapping_availability;
    Guest_writable_page_table_entry;
    Fail_memory_mapping;
    Uncontrolled_memory_allocation;
    Keep_page_access;
    Induce_fatal_exception;
    Induce_memory_exception;
    Induce_hang_state;
    Uncontrolled_interrupt_requests;
  ]

let cls_all = [ Memory_access; Memory_management; Exceptional_conditions; Non_memory_related ]

let cls_of = function
  | Read_unauthorized_memory | Write_unauthorized_memory | Write_unauthorized_arbitrary_memory
  | Rw_unauthorized_memory | Fail_memory_access ->
      Memory_access
  | Corrupt_virtual_memory_mapping | Corrupt_page_reference | Decrease_page_mapping_availability
  | Guest_writable_page_table_entry | Fail_memory_mapping | Uncontrolled_memory_allocation
  | Keep_page_access ->
      Memory_management
  | Induce_fatal_exception | Induce_memory_exception -> Exceptional_conditions
  | Induce_hang_state | Uncontrolled_interrupt_requests -> Non_memory_related

let to_string = function
  | Read_unauthorized_memory -> "Read Unauthorized Memory"
  | Write_unauthorized_memory -> "Write Unauthorized Memory"
  | Write_unauthorized_arbitrary_memory -> "Write Unauthorized Arbitrary Memory"
  | Rw_unauthorized_memory -> "R/W Unauthorized Memory"
  | Fail_memory_access -> "Fail a Memory Access"
  | Corrupt_virtual_memory_mapping -> "Corrupt Virtual Memory Mapping"
  | Corrupt_page_reference -> "Corrupt a Page Reference"
  | Decrease_page_mapping_availability -> "Decrease Page Mapping Availability"
  | Guest_writable_page_table_entry -> "Guest-Writable Page Table Entry"
  | Fail_memory_mapping -> "Fail a memory mapping"
  | Uncontrolled_memory_allocation -> "Uncontrolled Memory Allocation"
  | Keep_page_access -> "Keep Page Access"
  | Induce_fatal_exception -> "Induce a Fatal Exception"
  | Induce_memory_exception -> "Induce a Memory Exception"
  | Induce_hang_state -> "Induce a Hang State"
  | Uncontrolled_interrupt_requests -> "Uncontrolled Arbitrary Interrupts Requests"

let cls_to_string = function
  | Memory_access -> "Memory Access"
  | Memory_management -> "Memory Management"
  | Exceptional_conditions -> "Exceptional Conditions"
  | Non_memory_related -> "Non-Memory Related"

let of_string s = List.find_opt (fun af -> to_string af = s) all

let paper_count = function
  | Read_unauthorized_memory -> 13
  | Write_unauthorized_memory -> 8
  | Write_unauthorized_arbitrary_memory -> 5
  | Rw_unauthorized_memory -> 6
  | Fail_memory_access -> 3
  | Corrupt_virtual_memory_mapping -> 4
  | Corrupt_page_reference -> 4
  | Decrease_page_mapping_availability -> 7
  | Guest_writable_page_table_entry -> 7
  | Fail_memory_mapping -> 2
  | Uncontrolled_memory_allocation -> 5
  | Keep_page_access -> 11
  | Induce_fatal_exception -> 6
  | Induce_memory_exception -> 5
  | Induce_hang_state -> 20
  | Uncontrolled_interrupt_requests -> 2

let paper_class_total = function
  | Memory_access -> 35
  | Memory_management -> 40
  | Exceptional_conditions -> 11
  | Non_memory_related -> 22

let pp ppf af = Format.pp_print_string ppf (to_string af)
