(** The intrusion-model catalog: every abusive functionality of Table I
    mapped to instantiated intrusion models and to the injector
    implementation that can produce its erroneous states.

    The paper envisions "each system having its own injector, providing
    abusive functionality interfaces" (§IX-A) and concedes that "for
    complex IMs, one may not be able to find viable solutions to expose
    an interface that enables injection" (§IX-D). The catalog makes
    that coverage explicit: memory-backed states go through the
    [arbitrary_access] hypercall; states living in non-memory
    hypervisor structures go through component hooks; and the
    functionalities the §IV-D study found under-specified are recorded
    as such rather than papered over. *)

type injector_impl =
  | Via_arbitrary_access
      (** the state is memory bytes; hypercall 40 plants it *)
  | Via_component_hook of string
      (** a component-specific injector, e.g. ["Sched.hang_vcpu"] *)
  | Unimplemented of string
      (** what an implementation would take *)

type entry = {
  functionality : Abusive_functionality.t;
  models : Intrusion_model.t list;  (** instantiated IMs *)
  injector : injector_impl;
  example_states : string list;  (** concrete erroneous states covered *)
}

val catalog : entry list
(** Exactly one entry per taxonomy functionality, in Table I order. *)

val find : Abusive_functionality.t -> entry

val implemented : entry -> bool

val coverage : unit -> int * int
(** (functionalities with a working injector, total). *)

val render : unit -> string
