module Af = Abusive_functionality

type injector_impl =
  | Via_arbitrary_access
  | Via_component_hook of string
  | Unimplemented of string

type entry = {
  functionality : Af.t;
  models : Intrusion_model.t list;
  injector : injector_impl;
  example_states : string list;
}

let im name af ?(source = Intrusion_model.Unprivileged_guest)
    ?(interface = Intrusion_model.Hypercall_interface "arbitrary_access")
    ?(target = Intrusion_model.Memory_management_component) ?(represents = []) description =
  Intrusion_model.make ~name ~source ~interface ~target ~functionality:af
    ~representative_of:represents description

let catalog =
  [
    {
      functionality = Af.Read_unauthorized_memory;
      models =
        [
          im "IM-read-unauthorized" Af.Read_unauthorized_memory ~represents:[ "XSA-108" ]
            "A guest reads hypervisor or foreign-domain memory it was never granted.";
        ];
      injector = Via_arbitrary_access;
      example_states =
        [ "foreign start_info/vDSO contents disclosed"; "hypervisor heap words read" ];
    };
    {
      functionality = Af.Write_unauthorized_memory;
      models =
        [
          im "IM-write-unauthorized" Af.Write_unauthorized_memory
            ~interface:(Intrusion_model.Device_emulation "fdc")
            ~target:Intrusion_model.Device_model ~represents:[ "XSA-133" ]
            "Adjacent memory beyond a device buffer is corrupted (VENOM class).";
        ];
      injector = Via_arbitrary_access;
      example_states = [ "FDC request-handler pointer overwritten" ];
    };
    {
      functionality = Af.Write_unauthorized_arbitrary_memory;
      models =
        [
          im "IM-write-arbitrary-memory" Af.Write_unauthorized_arbitrary_memory
            ~interface:(Intrusion_model.Hypercall_interface "memory_exchange")
            ~represents:[ "XSA-212" ]
            "A hypercall writes an attacker-chosen hypervisor address (CWE-123).";
        ];
      injector = Via_arbitrary_access;
      example_states = [ "IDT page-fault gate overwritten"; "PUD entry links a forged PMD" ];
    };
    {
      functionality = Af.Rw_unauthorized_memory;
      models =
        [
          im "IM-rw-unauthorized" Af.Rw_unauthorized_memory ~represents:[ "CVE-2019-17343" ]
            "A transient window grants both read and write outside the allocation.";
        ];
      injector = Via_arbitrary_access;
      example_states = [ "read-modify-write of a foreign frame" ];
    };
    {
      functionality = Af.Fail_memory_access;
      models = [];
      injector =
        Unimplemented
          "advisory metadata is too unspecific to model faithfully (§IV-D: \"we can only infer \
           that somehow the operation fails\")";
      example_states = [];
    };
    {
      functionality = Af.Corrupt_virtual_memory_mapping;
      models =
        [
          im "IM-corrupt-vmm" Af.Corrupt_virtual_memory_mapping ~represents:[ "CVE-2020-27672" ]
            "A racing update leaves a stale or wrong mapping installed.";
        ];
      injector = Via_arbitrary_access;
      example_states = [ "leaf PTE retargeted to the wrong frame" ];
    };
    {
      functionality = Af.Corrupt_page_reference;
      models =
        [
          im "IM-corrupt-page-ref" Af.Corrupt_page_reference ~represents:[ "XSA-387" ]
            "Reference bookkeeping diverges from the mappings that actually exist.";
        ];
      injector = Via_arbitrary_access;
      example_states = [ "unaccounted leaf mapping planted next to live refcounts" ];
    };
    {
      functionality = Af.Decrease_page_mapping_availability;
      models =
        [
          im "IM-mapping-availability" Af.Decrease_page_mapping_availability
            ~source:Intrusion_model.Management_interface
            ~interface:(Intrusion_model.Hypercall_interface "xenstore")
            ~represents:[ "XSA-27" ]
            "A tampered management node makes the victim surrender its own pages.";
        ];
      injector = Via_component_hook "Xenstore.inject_write (memory/target)";
      example_states = [ "memory/target forged below the working set; balloon complies" ];
    };
    {
      functionality = Af.Guest_writable_page_table_entry;
      models =
        [
          im "IM-guest-writable-pte" Af.Guest_writable_page_table_entry
            ~interface:(Intrusion_model.Hypercall_interface "mmu_update")
            ~represents:[ "XSA-148"; "XSA-182" ]
            "The guest acquires a writable mapping of its own page tables.";
        ];
      injector = Via_arbitrary_access;
      example_states = [ "PSE superpage over page-table frames"; "writable L4 self-mapping" ];
    };
    {
      functionality = Af.Fail_memory_mapping;
      models = [];
      injector =
        Unimplemented
          "advisory metadata is too unspecific to model faithfully (§IV-D, same caveat as Fail \
           a Memory Access)";
      example_states = [];
    };
    {
      functionality = Af.Uncontrolled_memory_allocation;
      models =
        [
          im "IM-memory-exhaustion" Af.Uncontrolled_memory_allocation
            ~interface:(Intrusion_model.Hypercall_interface "memory_op")
            "A guest-reachable path allocates hypervisor memory without bound.";
        ];
      injector = Via_component_hook "Hv.exhaust_memory";
      example_states = [ "free-frame pool drained into the Xen heap" ];
    };
    {
      functionality = Af.Keep_page_access;
      models =
        [
          im "IM-keep-page-access" Af.Keep_page_access
            ~interface:(Intrusion_model.Hypercall_interface "XENMEM_decrease_reservation")
            ~represents:[ "XSA-387"; "XSA-393" ]
            "The guest retains a usable mapping of a page after releasing it to Xen.";
          im "IM-keep-grant-status" Af.Keep_page_access
            ~interface:(Intrusion_model.Hypercall_interface "grant_table_op")
            ~target:Intrusion_model.Grant_tables_component ~represents:[ "XSA-387" ]
            "Grant-v2 status frames stay mapped after the switch back to v1.";
        ];
      injector = Via_arbitrary_access;
      example_states = [ "stale leaf mapping of a freed-and-reallocated frame" ];
    };
    {
      functionality = Af.Induce_fatal_exception;
      models =
        [
          im "IM-fatal-exception" Af.Induce_fatal_exception ~represents:[ "XSA-156" ]
            "Exception plumbing is corrupted until delivery escalates fatally.";
        ];
      injector = Via_arbitrary_access;
      example_states = [ "corrupted gate escalates #PF to a double-fault panic" ];
    };
    {
      functionality = Af.Induce_memory_exception;
      models =
        [
          im "IM-memory-exception" Af.Induce_memory_exception ~represents:[ "CVE-2019-17343" ]
            "A live mapping is destroyed so the next legitimate access faults.";
        ];
      injector = Via_arbitrary_access;
      example_states = [ "kernel mapping zeroed; next access takes a paging exception" ];
    };
    {
      functionality = Af.Induce_hang_state;
      models =
        [
          im "IM-hang-state" Af.Induce_hang_state
            ~interface:Intrusion_model.Instruction_interception
            ~target:Intrusion_model.Scheduler_component ~represents:[ "XSA-156" ]
            "A vcpu loops inside the hypervisor and pins the pCPU.";
        ];
      injector = Via_component_hook "Sched.hang_vcpu";
      example_states = [ "vcpu stuck in hypervisor; watchdog or starvation follows" ];
    };
    {
      functionality = Af.Uncontrolled_interrupt_requests;
      models =
        [
          im "IM-interrupt-storm" Af.Uncontrolled_interrupt_requests
            ~interface:(Intrusion_model.Hypercall_interface "event_channel_op")
            ~target:Intrusion_model.Interrupt_virtualization
            "Event-channel pending state is raised at an uncontrolled rate.";
        ];
      injector = Via_component_hook "Event_channel.force_pending_all";
      example_states = [ "every port pending regardless of binding" ];
    };
  ]

let find af = List.find (fun e -> e.functionality = af) catalog

let implemented e =
  match e.injector with
  | Via_arbitrary_access | Via_component_hook _ -> true
  | Unimplemented _ -> false

let coverage () =
  (List.length (List.filter implemented catalog), List.length catalog)

let render () =
  let impl_to_string = function
    | Via_arbitrary_access -> "arbitrary_access (hypercall 40)"
    | Via_component_hook h -> "hook: " ^ h
    | Unimplemented why -> "unimplemented: " ^ why
  in
  let rows =
    List.map
      (fun e ->
        [
          Af.to_string e.functionality;
          string_of_int (List.length e.models);
          impl_to_string e.injector;
        ])
      catalog
  in
  let got, total = coverage () in
  Report.table
    ~title:
      (Printf.sprintf "Intrusion-model catalog: injector coverage %d/%d functionalities" got total)
    ~header:[ "Abusive Functionality"; "IMs"; "Injector" ]
    rows
