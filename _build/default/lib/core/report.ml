let check b = if b then "Y" else ""
let shield = "[shield]"

let table ?title ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width i =
    List.fold_left
      (fun acc row -> match List.nth_opt row i with Some c -> max acc (String.length c) | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_row row =
    let cells = List.mapi (fun i w -> pad (Option.value ~default:"" (List.nth_opt row i)) w) widths in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule = "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+" in
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf rule;
  Buffer.contents buf
