(** Plain-text table rendering for the experiment harness. *)

val table : ?title:string -> header:string list -> string list list -> string
(** Render rows in an aligned ASCII grid. *)

val check : bool -> string
(** "Y" for a checkmark cell, "" for an empty one (Table III style). *)

val shield : string
(** The Table III shield: an erroneous state handled by the system. *)
