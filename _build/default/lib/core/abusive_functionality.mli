(** The taxonomy of abusive functionalities (Table I).

    An abusive functionality is "the essential characteristic that can
    be generalized from a collection of exploits": the unintended
    capability an attacker acquires by activating a vulnerability
    (§III-B, §IV-D). The paper's preliminary study classified 100
    memory-related Xen CVEs into four classes and the functionalities
    below; some CVEs exhibit more than one functionality, so the 108
    classifications exceed the 100 CVEs. *)

type cls =
  | Memory_access
  | Memory_management
  | Exceptional_conditions
  | Non_memory_related

type t =
  (* Memory Access *)
  | Read_unauthorized_memory
  | Write_unauthorized_memory
  | Write_unauthorized_arbitrary_memory
  | Rw_unauthorized_memory
  | Fail_memory_access
  (* Memory Management *)
  | Corrupt_virtual_memory_mapping
  | Corrupt_page_reference
  | Decrease_page_mapping_availability
  | Guest_writable_page_table_entry
  | Fail_memory_mapping
  | Uncontrolled_memory_allocation
  | Keep_page_access
  (* Exceptional Conditions *)
  | Induce_fatal_exception
  | Induce_memory_exception
  (* Non-Memory Related *)
  | Induce_hang_state
  | Uncontrolled_interrupt_requests

val all : t list
val cls_of : t -> cls
val cls_all : cls list
val to_string : t -> string
(** The Table I row label, e.g. ["Write Unauthorized Arbitrary Memory"]. *)

val cls_to_string : cls -> string
val of_string : string -> t option

val paper_count : t -> int
(** The per-row CVE count of Table I. Class totals (35/40/11/22) are
    printed in the paper; rows whose digits did not survive text
    extraction are reconstructed to sum to them (see EXPERIMENTS.md). *)

val paper_class_total : cls -> int
val pp : Format.formatter -> t -> unit
