(** Deterministic work sharding over OCaml 5 domains.

    The campaign engines shard independent trials across domains; the
    contract that makes this invisible to callers is {e positional
    determinism}: the result list matches the input list element-wise,
    regardless of worker count or scheduling, so a sharded run is
    byte-identical to the sequential one as long as [f] itself depends
    only on its per-worker state, the item and its index. *)

val map_init : ?workers:int -> init:(unit -> 's) -> ('s -> int -> 'a -> 'b) -> 'a list -> 'b list
(** [map_init ~workers ~init f xs] maps [f state index x] over [xs].
    Each worker calls [init] once and threads the resulting state
    through the items it happens to process (e.g. one testbed per
    worker). [workers] defaults to 1, which runs sequentially on the
    calling domain — the reference behaviour sharded runs must match.
    Raises [Invalid_argument] if [workers < 1]; exceptions from [f] on
    any worker are re-raised on the caller. *)

val map : ?workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_init] without per-worker state. *)
