type state =
  | Correct
  | Vulnerable of string
  | Erroneous of string
  | Violated of string
  | Handled of string

type event =
  | Introduce_vulnerability of string
  | Attack of { exploit : string; activates : bool }
  | Error_handling of string
  | Propagate

let step state event =
  match (state, event) with
  | Correct, Introduce_vulnerability v -> Vulnerable v
  | Correct, (Attack _ | Error_handling _ | Propagate) -> Correct
  | Vulnerable v, Attack { exploit; activates } ->
      if activates then Erroneous (Printf.sprintf "%s exploited by %s" v exploit) else Vulnerable v
  | Vulnerable _, Introduce_vulnerability v' -> Vulnerable v'
  | (Vulnerable _ as s), (Error_handling _ | Propagate) -> s
  | Erroneous e, Error_handling mech -> Handled (Printf.sprintf "%s contained by %s" e mech)
  | Erroneous e, Propagate -> Violated (Printf.sprintf "%s led to a security violation" e)
  | (Erroneous _ as s), (Introduce_vulnerability _ | Attack _) -> s
  | (Violated _ as s), _ -> s
  | (Handled _ as s), _ -> s

let run start events =
  let final, rev_trace =
    List.fold_left
      (fun (s, trace) e ->
        let s' = step s e in
        (s', s' :: trace))
      (start, [ start ])
      events
  in
  (final, List.rev rev_trace)

let venom_scenario =
  [
    Introduce_vulnerability "XSA-133: FDC accepts over-long input buffers";
    Attack { exploit = "crafted kernel module floods the FDC FIFO"; activates = true };
    Propagate;
  ]

let state_to_string = function
  | Correct -> "correct service"
  | Vulnerable v -> Printf.sprintf "vulnerable (%s)" v
  | Erroneous e -> Printf.sprintf "erroneous state (%s)" e
  | Violated e -> Printf.sprintf "security violation (%s)" e
  | Handled e -> Printf.sprintf "handled (%s)" e

let pp ppf s = Format.pp_print_string ppf (state_to_string s)
let reachable_violation events = match run Correct events with Violated _, _ -> true | _ -> false
