(** The chain of dependability threats with the extended-AVI model
    (Fig 1): fault -> error -> failure, specialized for malicious
    faults as attack + vulnerability -> intrusion -> erroneous state ->
    security violation.

    The chain is an explicit state machine so its structural properties
    — no erroneous state without both an attack and a vulnerability, no
    violation out of a handled state — can be exercised and
    property-tested. *)

type state =
  | Correct  (** service as specified, no latent fault *)
  | Vulnerable of string  (** a latent fault (vulnerability) is present *)
  | Erroneous of string  (** an intrusion produced an erroneous state *)
  | Violated of string  (** a security attribute failed *)
  | Handled of string  (** the erroneous state was processed in time *)

type event =
  | Introduce_vulnerability of string  (** design/development/operation fault *)
  | Attack of { exploit : string; activates : bool }
      (** an intentional attempt; it causes an intrusion only when it
          activates the vulnerability *)
  | Error_handling of string  (** fault tolerance processes the state *)
  | Propagate  (** nothing stops the erroneous state *)

val step : state -> event -> state
val run : state -> event list -> state * state list
(** Final state and the visited trace (including the start). *)

val venom_scenario : event list
(** The §III-A illustration: the XSA-133 (VENOM) FDC overflow. *)

val state_to_string : state -> string
val pp : Format.formatter -> state -> unit

val reachable_violation : event list -> bool
(** True when the event sequence drives [Correct] into [Violated]. *)
