(** Fig 2: the methodology's key components, end to end.

    [run] drives one injection through the named stages — intrusion
    model selection, injector invocation, erroneous-state audit, system
    monitoring — and records what each stage produced. It is a
    transparent, narrated version of what {!Campaign.run} does in bulk. *)

type stage_record = { stage : string; detail : string list }

type trace = {
  p_im : Intrusion_model.t;
  p_injected : bool;
  p_audits : (Erroneous_state.spec * Erroneous_state.audit) list;
  p_violations : Monitor.violation list;
  p_stages : stage_record list;
}

val run :
  Testbed.t ->
  im:Intrusion_model.t ->
  inject:(Testbed.t -> Campaign.attempt) ->
  trace

val pp : Format.formatter -> trace -> unit
