type trigger_source =
  | Unprivileged_guest
  | Privileged_guest
  | Guest_userspace
  | Device_driver
  | Management_interface

type interface =
  | Hypercall_interface of string
  | Device_emulation of string
  | Instruction_interception

type target_component =
  | Memory_management_component
  | Interrupt_virtualization
  | Grant_tables_component
  | Device_model
  | Scheduler_component

type t = {
  im_name : string;
  source : trigger_source;
  interface : interface;
  target : target_component;
  functionality : Abusive_functionality.t;
  description : string;
  representative_of : string list;
}

let make ~name ~source ~interface ~target ~functionality ?(representative_of = []) description =
  { im_name = name; source; interface; target; functionality; description; representative_of }

let source_to_string = function
  | Unprivileged_guest -> "unprivileged guest VM"
  | Privileged_guest -> "privileged guest (dom0)"
  | Guest_userspace -> "guest user space"
  | Device_driver -> "device driver"
  | Management_interface -> "management interface"

let interface_to_string = function
  | Hypercall_interface h -> Printf.sprintf "hypercall (%s)" h
  | Device_emulation d -> Printf.sprintf "device emulation (%s)" d
  | Instruction_interception -> "intercepted instruction"

let target_to_string = function
  | Memory_management_component -> "memory management"
  | Interrupt_virtualization -> "interrupt virtualization"
  | Grant_tables_component -> "grant tables"
  | Device_model -> "device model"
  | Scheduler_component -> "scheduler"

let compatible a b =
  a.functionality = b.functionality && a.target = b.target && a.source = b.source

let pp ppf t =
  Format.fprintf ppf "%s [%a via %s on %s]" t.im_name Abusive_functionality.pp t.functionality
    (interface_to_string t.interface) (target_to_string t.target)

let pp_long ppf t =
  Format.fprintf ppf
    "@[<v2>IM %s:@ source: %s@ interface: %s@ target: %s@ abusive functionality: %a@ represents: \
     %s@ %s@]"
    t.im_name (source_to_string t.source) (interface_to_string t.interface)
    (target_to_string t.target) Abusive_functionality.pp t.functionality
    (match t.representative_of with [] -> "(unspecified)" | l -> String.concat ", " l)
    t.description
