(** Fig 3: the intrusion's internal impact vs. its abstraction.

    The left of Fig 3 is the system as a concrete state machine whose
    transitions consume instruction sets until a vulnerability
    activation moves it into an erroneous state. The right is the
    external (attacker) view: a single {e abusive functionality} that
    maps the initial state straight to the erroneous state. Both are
    "equivalent in functionality"; this module makes that equivalence
    executable (and property-testable). *)

type outcome = Running of int  (** internal state id *) | Erroneous_reached of string

type concrete = {
  transitions : (int * string * int) list;  (** (state, instruction set, state') *)
  initial : int;
  vulnerability : int * string * string;
      (** (state, triggering input, erroneous-state label) *)
}

val run_concrete : concrete -> string list -> outcome
(** Feed input instruction sets one by one; unknown inputs leave the
    state unchanged (the system ignores them). *)

type abstraction = {
  abusive_input : string list;  (** the inputs that drive the abuse *)
  erroneous_label : string;
}

val abstract : concrete -> inputs:string list -> abstraction option
(** The attacker's abstraction of a successful input sequence: [None]
    when the sequence does not reach the erroneous state. *)

val run_abstract : abstraction -> string list -> outcome

val equivalent : concrete -> inputs:string list -> bool
(** Both machines agree on whether [inputs] reaches the erroneous
    state — the Fig 3 claim. *)

val xsa_example : concrete
(** A 4-state machine modelled on the paper's Fig 3 narrative. *)
