type outcome = Running of int | Erroneous_reached of string

type concrete = {
  transitions : (int * string * int) list;
  initial : int;
  vulnerability : int * string * string;
}

let run_concrete machine inputs =
  let v_state, v_input, v_label = machine.vulnerability in
  let rec go state = function
    | [] -> Running state
    | input :: rest ->
        if state = v_state && input = v_input then Erroneous_reached v_label
        else
          let next =
            List.find_map
              (fun (s, i, s') -> if s = state && i = input then Some s' else None)
              machine.transitions
          in
          go (Option.value ~default:state next) rest
  in
  go machine.initial inputs

type abstraction = { abusive_input : string list; erroneous_label : string }

let abstract machine ~inputs =
  match run_concrete machine inputs with
  | Erroneous_reached label -> Some { abusive_input = inputs; erroneous_label = label }
  | Running _ -> None

let run_abstract a inputs =
  if inputs = a.abusive_input then Erroneous_reached a.erroneous_label else Running 0

let equivalent machine ~inputs =
  match (run_concrete machine inputs, abstract machine ~inputs) with
  | Erroneous_reached l, Some a -> (
      match run_abstract a inputs with
      | Erroneous_reached l' -> l = l'
      | Running _ -> false)
  | Running _, None -> true
  | Erroneous_reached _, None | Running _, Some _ -> false

(* Fig 3's narrative: state 1 processes instruction set a and moves to
   state 2, keeps processing until the activation transition fires. *)
let xsa_example =
  {
    transitions = [ (1, "a", 2); (2, "b", 3); (3, "c", 1); (2, "a", 2) ];
    initial = 1;
    vulnerability = (3, "crafted-hypercall", "malicious return address on the stack");
  }
