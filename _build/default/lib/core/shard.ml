(* Deterministic work sharding over OCaml 5 domains.

   Results land in an array indexed by input position, so the output
   order is the input order no matter which worker ran which item —
   byte-identical to the sequential run by construction. Work is dealt
   by an atomic counter (dynamic load balancing), which is safe exactly
   because items are independent: campaign trials carry their own PRNG
   seed and their own testbed. *)

let worker_count = function
  | Some w when w >= 1 -> w
  | Some _ -> invalid_arg "Shard: workers must be >= 1"
  | None -> 1

let map_init ?workers ~init f xs =
  let workers = worker_count workers in
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else if workers = 1 then
    (* sequential fast path: no domains, same per-worker state contract *)
    let state = init () in
    Array.to_list (Array.mapi (fun i x -> f state i x) items)
  else begin
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let body () =
      let state = init () in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          out.(i) <- Some (f state i items.(i));
          loop ()
        end
      in
      loop ()
    in
    (* Stdlib.Domain explicitly: the -open'd Ii_xen shadows Domain *)
    let spawned = Array.init (min workers n - 1) (fun _ -> Stdlib.Domain.spawn body) in
    let self = try Ok (body ()) with e -> Error e in
    Array.iter Stdlib.Domain.join spawned;
    (match self with Ok () -> () | Error e -> raise e);
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) out)
  end

let map ?workers f xs = map_init ?workers ~init:(fun () -> ()) (fun () _ x -> f x) xs
