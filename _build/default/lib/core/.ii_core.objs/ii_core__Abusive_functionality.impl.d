lib/core/abusive_functionality.ml: Format List
