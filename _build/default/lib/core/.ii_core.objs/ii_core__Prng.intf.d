lib/core/prng.mli:
