lib/core/pipeline.mli: Campaign Erroneous_state Format Intrusion_model Monitor Testbed
