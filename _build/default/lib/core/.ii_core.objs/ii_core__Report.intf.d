lib/core/report.mli:
