lib/core/weird_machine.ml: List Option
