lib/core/intrusion_model.ml: Abusive_functionality Format Printf String
