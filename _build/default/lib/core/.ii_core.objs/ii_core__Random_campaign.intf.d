lib/core/random_campaign.mli: Monitor Version
