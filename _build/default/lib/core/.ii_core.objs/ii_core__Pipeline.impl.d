lib/core/pipeline.ml: Campaign Erroneous_state Format Injector Intrusion_model List Monitor Printf Testbed
