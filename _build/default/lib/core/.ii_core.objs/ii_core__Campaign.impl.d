lib/core/campaign.ml: Abusive_functionality Erroneous_state Injector Intrusion_model List Monitor Printf Report Testbed Version
