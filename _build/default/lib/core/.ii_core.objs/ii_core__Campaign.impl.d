lib/core/campaign.ml: Abusive_functionality Erroneous_state Hashtbl Injector Intrusion_model List Monitor Printf Report Shard Testbed Version
