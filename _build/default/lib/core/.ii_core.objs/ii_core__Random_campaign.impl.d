lib/core/random_campaign.ml: Addr Array Domain Event_channel Hv Hypercall Idt Injector Int64 Kernel List Monitor Phys_mem Printf Prng Report Sched Shard Testbed Version Xenstore
