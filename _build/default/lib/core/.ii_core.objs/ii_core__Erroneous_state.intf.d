lib/core/erroneous_state.mli: Addr Format Hv
