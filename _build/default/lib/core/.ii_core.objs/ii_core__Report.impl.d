lib/core/report.ml: Buffer List Option String
