lib/core/weird_machine.mli:
