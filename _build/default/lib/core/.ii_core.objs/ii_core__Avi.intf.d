lib/core/avi.mli: Format
