lib/core/shard.mli:
