lib/core/shard.ml: Array Atomic Stdlib
