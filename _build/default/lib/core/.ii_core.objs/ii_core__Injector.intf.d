lib/core/injector.mli: Addr Errno Hv Kernel
