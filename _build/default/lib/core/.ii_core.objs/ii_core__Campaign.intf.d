lib/core/campaign.mli: Erroneous_state Intrusion_model Monitor Testbed Version
