lib/core/monitor.ml: Addr Domain Event_channel Format Frame Fs Hashtbl Hv Int64 Kernel Layout List Netsim Option Page_info Phys_mem Printf Pte Sched String Testbed
