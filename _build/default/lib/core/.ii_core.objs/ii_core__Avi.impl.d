lib/core/avi.ml: Format List Printf
