lib/core/pt_guard.ml: Addr Array Domain Frame Hashtbl Hv List Phys_mem Printf
