lib/core/injector.ml: Addr Array Bytes Domain Errno Hv Hypercall Int64 Kernel Layout Phys_mem Printf Uaccess Version
