lib/core/erroneous_state.ml: Addr Cpu Domain Errno Event_channel Format Frame Hv Idt Layout List Paging Phys_mem Printf Pte Sched Xenstore
