lib/core/im_catalog.ml: Abusive_functionality Intrusion_model List Printf Report
