lib/core/intrusion_model.mli: Abusive_functionality Format
