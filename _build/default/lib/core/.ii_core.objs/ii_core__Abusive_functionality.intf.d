lib/core/abusive_functionality.mli: Format
