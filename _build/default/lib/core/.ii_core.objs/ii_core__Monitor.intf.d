lib/core/monitor.mli: Addr Domain Format Hashtbl Hv Testbed
