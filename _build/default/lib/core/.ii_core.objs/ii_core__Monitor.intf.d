lib/core/monitor.mli: Domain Format Hv Testbed
