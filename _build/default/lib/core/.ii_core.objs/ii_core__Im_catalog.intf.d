lib/core/im_catalog.mli: Abusive_functionality Intrusion_model
