lib/core/prng.ml: Int64 List
