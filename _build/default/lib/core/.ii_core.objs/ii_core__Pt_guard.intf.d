lib/core/pt_guard.mli: Addr Hv
