type stage_record = { stage : string; detail : string list }

type trace = {
  p_im : Intrusion_model.t;
  p_injected : bool;
  p_audits : (Erroneous_state.spec * Erroneous_state.audit) list;
  p_violations : Monitor.violation list;
  p_stages : stage_record list;
}

let run tb ~im ~inject =
  let stages = ref [] in
  let record stage detail = stages := { stage; detail } :: !stages in
  record "intrusion-model"
    [ Format.asprintf "%a" Intrusion_model.pp im ];
  Injector.install tb.Testbed.hv;
  record "injector" [ Printf.sprintf "hypercall %d installed" Injector.hypercall_number ];
  let before = Monitor.snapshot tb in
  let attempt = inject tb in
  record "erroneous-state" attempt.Campaign.transcript;
  for _ = 1 to 3 do
    Testbed.tick_all tb
  done;
  let audits =
    List.map (fun s -> (s, Erroneous_state.audit tb.Testbed.hv s)) attempt.Campaign.states
  in
  record "audit"
    (List.map
       (fun (s, a) ->
         Printf.sprintf "%s: %s" (Erroneous_state.describe s)
           (if a.Erroneous_state.holds then "present" else "absent"))
       audits);
  let after = Monitor.snapshot tb in
  let violations = Monitor.violations ~before ~after in
  record "monitor"
    (match violations with
    | [] -> [ "no security violation: the system handled the erroneous state" ]
    | vs -> List.map Monitor.violation_to_string vs);
  {
    p_im = im;
    p_injected = List.for_all (fun (_, a) -> a.Erroneous_state.holds) audits && audits <> [];
    p_audits = audits;
    p_violations = violations;
    p_stages = List.rev !stages;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun { stage; detail } ->
      Format.fprintf ppf "== %s ==@," stage;
      List.iter (fun line -> Format.fprintf ppf "   %s@," line) detail)
    t.p_stages;
  Format.fprintf ppf "@]"
