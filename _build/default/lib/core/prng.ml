type t = { mutable state : int64 }

let create ~seed = { state = (if seed = 0L then 0x9E3779B97F4A7C15L else seed) }
let copy t = { state = t.state }

(* xorshift64* (Vigna) *)
let next t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_right_logical x 12) in
  let x = Int64.logxor x (Int64.shift_left x 25) in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let int64 = next
let bool t = Int64.logand (next t) 1L = 1L

let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | l -> List.nth l (int t ~bound:(List.length l))
