(** Intrusion models (IMs).

    An IM "abstracts how an erroneous state is achieved when using an
    abusive functionality through a given interface" (§IV-B). An
    instantiation fixes a triggering source, an interaction interface
    and a target component for a concrete virtualized system and
    evaluation objective (§IV-C). *)

type trigger_source =
  | Unprivileged_guest  (** a domU kernel user *)
  | Privileged_guest  (** dom0 *)
  | Guest_userspace
  | Device_driver
  | Management_interface

type interface =
  | Hypercall_interface of string  (** e.g. ["memory_exchange"] *)
  | Device_emulation of string  (** e.g. ["fdc"] — the VENOM surface *)
  | Instruction_interception

type target_component =
  | Memory_management_component
  | Interrupt_virtualization
  | Grant_tables_component
  | Device_model
  | Scheduler_component

type t = {
  im_name : string;
  source : trigger_source;
  interface : interface;
  target : target_component;
  functionality : Abusive_functionality.t;
  description : string;
  representative_of : string list;  (** XSAs/CVEs this IM generalizes *)
}

val make :
  name:string ->
  source:trigger_source ->
  interface:interface ->
  target:target_component ->
  functionality:Abusive_functionality.t ->
  ?representative_of:string list ->
  string ->
  t
(** [make ~name ... description]. *)

val source_to_string : trigger_source -> string
val interface_to_string : interface -> string
val target_to_string : target_component -> string

val compatible : t -> t -> bool
(** Two IMs are compatible (generalize to the same injections) when
    they share functionality, target and source — the §IV-B observation
    that XSA-148 and XSA-182 "lead to the same erroneous state". *)

val pp : Format.formatter -> t -> unit
val pp_long : Format.formatter -> t -> unit
