type ctx = { hostname : string; fs : Fs.t; uid : int }

let user_name = function 0 -> "root" | 1000 -> "xen" | n -> Printf.sprintf "user%d" n

let id_string uid =
  let name = user_name uid in
  Printf.sprintf "uid=%d(%s) gid=%d(%s) groups=%d(%s)" uid name uid name uid name

(* --- tokenizing ------------------------------------------------------ *)

let split_words line =
  let words = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf
    end
  in
  let n = String.length line in
  let rec go i in_quote =
    if i >= n then flush ()
    else
      let c = line.[i] in
      match (in_quote, c) with
      | None, (' ' | '\t') ->
          flush ();
          go (i + 1) None
      | None, ('"' | '\'') -> go (i + 1) (Some c)
      | Some q, c when c = q -> go (i + 1) None
      | _, c ->
          Buffer.add_char buf c;
          go (i + 1) in_quote
  in
  go 0 None;
  List.rev !words

let split_on_string sep s =
  let seplen = String.length sep in
  let rec go acc start =
    match
      let rec find i =
        if i + seplen > String.length s then None
        else if String.sub s i seplen = sep then Some i
        else find (i + 1)
      in
      find start
    with
    | Some i -> go (String.sub s start (i - start) :: acc) (i + seplen)
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
  in
  go [] 0

(* --- substitution: $(cmd), $HOSTNAME --------------------------------- *)

let rec substitute ctx s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if i + 1 < n && s.[i] = '$' && s.[i + 1] = '(' then begin
      (* find matching close paren *)
      let rec close j depth =
        if j >= n then None
        else if s.[j] = '(' then close (j + 1) (depth + 1)
        else if s.[j] = ')' then if depth = 0 then Some j else close (j + 1) (depth - 1)
        else close (j + 1) depth
      in
      match close (i + 2) 0 with
      | Some j ->
          Buffer.add_string buf (run ctx (String.sub s (i + 2) (j - i - 2)));
          go (j + 1)
      | None ->
          Buffer.add_char buf s.[i];
          go (i + 1)
    end
    else if i + 8 < n && String.sub s i 9 = "$HOSTNAME" then begin
      Buffer.add_string buf ctx.hostname;
      go (i + 9)
    end
    else if i + 8 < n && String.sub s i 9 = "$hostname" then begin
      Buffer.add_string buf ctx.hostname;
      go (i + 9)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

(* --- execution -------------------------------------------------------- *)

and run_simple ctx line =
  match split_words line with
  | [] -> ""
  | cmd :: args -> (
      match (cmd, args) with
      | "echo", args -> String.concat " " args
      | "id", [] -> id_string ctx.uid
      | "whoami", [] -> user_name ctx.uid
      | "hostname", [] -> ctx.hostname
      | "true", _ -> ""
      | "ls", [] -> String.concat "\n" (Fs.paths ctx.fs)
      | "cat", [ path ] -> (
          match Fs.read ctx.fs path with
          | None -> Printf.sprintf "cat: %s: No such file or directory" path
          | Some file ->
              if Fs.readable_by file ~uid:ctx.uid then file.Fs.content
              else Printf.sprintf "cat: %s: Permission denied" path)
      | cmd, _ -> Printf.sprintf "sh: %s: command not found" cmd)

and run_redirecting ctx line =
  match split_on_string " > " line with
  | [ cmd; path ] ->
      let out = run_simple ctx (substitute ctx cmd) in
      Fs.write ctx.fs ~path:(String.trim path) ~uid:ctx.uid out;
      ""
  | _ -> run_simple ctx (substitute ctx line)

and run ctx line =
  let parts = split_on_string "&&" line in
  let outputs = List.map (fun part -> run_redirecting ctx (String.trim part)) parts in
  String.concat "\n" (List.filter (fun s -> s <> "") outputs)
