(** A PV guest kernel.

    Wraps a {!Ii_xen.Domain.t} with the guest-side machinery the
    evaluation needs: a printk log with dmesg-style timestamps, a tiny
    filesystem and shell, hypercall wrappers, memory accessors that
    route faults through Xen's IDT (so a corrupted IDT turns any guest
    fault into the paper's double-fault panic), and the vDSO execution
    hook that makes an installed backdoor actually run. *)

type t

val create : Hv.t -> Domain.t -> Netsim.t -> t
val hv : t -> Hv.t
val dom : t -> Domain.t
val fs : t -> Fs.t
val hostname : t -> string
val ip : t -> string
val domid : t -> int

(** {1 Kernel log} *)

val printk : t -> string -> unit
val printk_tagged : t -> tag:string -> string -> unit
(** [printk_tagged ~tag:"xen_exploit" "..."] renders
    ["[  ...] xen_exploit:   ..."] like the paper's transcripts. *)

val klog : t -> string list
(** Log lines, oldest first. *)

(** {1 Hypercalls and privileged instructions} *)

val hypercall : t -> Hypercall.call -> (int64, Errno.t) result
val hypercall_rc : t -> Hypercall.call -> int
(** Guest-visible return code ([-14] for [EFAULT]...). *)

val raw_hypercall :
  t -> number:int -> ?rdi:int64 -> ?rsi:int64 -> ?rdx:int64 -> ?r10:int64 -> unit -> int
(** The register-level path ({!Ii_xen.Abi}): argument structures are
    fetched from this kernel's memory, exactly like a real PV stub. *)

val sidt : t -> Addr.vaddr
val pt_base_mfn : t -> Addr.mfn
(** From the start_info page, like a real PV kernel learns it. *)

val start_info_vaddr : t -> Addr.vaddr
val vdso_mfn : t -> Addr.mfn

val pt_entry : t -> table_mfn:Addr.mfn -> index:int -> Pte.t option
(** Read one of the kernel's own page-table entries through its
    read-only kernel mapping of the table page ([None] when the frame
    is not mapped in the kernel area — e.g. a Xen-owned table). *)

(** {1 Memory access (kernel privilege)}

    On a page fault these deliver the exception through Xen's IDT
    first; if Xen survives (gate intact) the kernel logs the usual
    "unable to handle kernel paging request" and the access fails. *)

val read_u64 : t -> Addr.vaddr -> (int64, Paging.fault) result
val write_u64 : t -> Addr.vaddr -> int64 -> (unit, Paging.fault) result
val read_bytes : t -> Addr.vaddr -> int -> (bytes, Paging.fault) result
val write_bytes : t -> Addr.vaddr -> bytes -> (unit, Paging.fault) result

val invlpg : t -> Addr.vaddr -> unit
(** MMUEXT_INVLPG_LOCAL: drop the cached translation of one page in
    this domain's address space. Exploits that remap a window page by
    rewriting a page-table entry directly must issue this — exactly as
    their real-world counterparts do — or keep reading the old frame
    through the TLB. *)

val user_write_u64 : t -> Addr.vaddr -> int64 -> (unit, Paging.fault) result
(** Same, with user privilege (used by the XSA-182 test's final
    user-space write). *)

val user_read_u64 : t -> Addr.vaddr -> (int64, Paging.fault) result

(** {1 Event-channel delivery} *)

val bind_irq_handler : t -> port:int -> (unit -> unit) -> unit
(** Register the kernel's handler for a local event-channel port. *)

val irqs_handled : t -> int
(** Events consumed so far. Each {!tick} drains at most a fixed budget
    of pending ports, so an injected interrupt storm shows up as a
    persistent backlog rather than an infinite loop. *)

(** {1 Shell and processes} *)

val shell : t -> uid:int -> string -> string
(** Run a command line; [ps] is resolved against the kernel's process
    table, everything else by {!Shell}. *)

val processes : t -> Process.t

(** {1 The vDSO hook} *)

module Backdoor : sig
  val magic : string

  type payload =
    | Run_as_root of string  (** shell command *)
    | Reverse_shell of { host : string; port : int }

  val encode : payload -> bytes
  (** The byte blob an attacker writes at the vDSO code offset. *)

  val decode : bytes -> payload option
end

val balloon : t -> unit
(** Honour the XenStore [memory/target] node by releasing the highest
    releasable data pages back to the hypervisor (page-table and
    special pages are never ballooned). Runs on every {!tick}. *)

val tick : t -> unit
(** One scheduler tick: the balloon driver runs, then user processes
    execute the vDSO; if its code area carries a backdoor, the payload
    runs with root privilege. This is how patching another domain's
    vDSO becomes a privilege escalation. *)
