(** A miniature shell interpreter for the guest transcripts.

    The exploits and the backdoors they install run shell commands on
    compromised domains ("echo \"|$(id)|@$(hostname)\" >
    /tmp/injector_log", "whoami && hostname", "cat /root/root_msg").
    This interpreter supports exactly the features those transcripts
    exercise: command substitution, [&&] chains, output redirection and
    a handful of builtins, each executing with a caller-chosen uid. *)

type ctx = { hostname : string; fs : Fs.t; uid : int }

val user_name : int -> string
(** 0 -> "root", 1000 -> "xen", n -> "user<n>". *)

val id_string : int -> string
(** The [id] output for a uid, e.g.
    ["uid=0(root) gid=0(root) groups=0(root)"]. *)

val run : ctx -> string -> string
(** Execute a command line; returns its standard output (no trailing
    newline). Never raises: unknown commands report
    ["sh: ...: command not found"]. *)
