type file = { content : string; uid : int; gid : int }
type t = (string, file) Hashtbl.t

let create () = Hashtbl.create 17
let write t ~path ~uid content = Hashtbl.replace t path { content; uid; gid = uid }
let read t path = Hashtbl.find_opt t path
let exists t path = Hashtbl.mem t path
let remove t path = Hashtbl.remove t path
let paths t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let readable_by file ~uid = uid = 0 || file.uid <> 0
