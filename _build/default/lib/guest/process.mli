(** Guest user processes.

    Just enough process machinery for the evaluation's transcripts and
    for attributing vDSO execution: processes have pids, uids and
    command lines; the scheduler tick walks the runnable processes and
    each of them "calls into" the vDSO — which is why one patched page
    is enough to own every process in the domain, root's included. *)

type proc = { pid : int; uid : int; cmdline : string; mutable vdso_calls : int }

type t

val create : unit -> t
(** A fresh table holding the two canonical residents: [init] (pid 1,
    root) and the [xen] user's shell (pid 1000, uid 1000). *)

val spawn : t -> uid:int -> cmdline:string -> proc
val kill : t -> pid:int -> bool
val find : t -> pid:int -> proc option
val list : t -> proc list
(** Ascending pid order. *)

val running_uids : t -> int list
(** Distinct uids with at least one live process. *)

val ps_output : t -> string
(** The [ps] rendering the shell builtin prints. *)

val on_tick : t -> unit
(** Every live process makes one vDSO call. *)
