(** The paper's experimental environment: one host running a given Xen
    version, a privileged dom0 ("xen3"), an attacker-controlled guest
    ("guest03"), a victim guest ("guest01") and a remote attacker host
    ("xen2") on the simulated network.

    Everything but the Xen version is identical across instantiations,
    matching §IX-C ("the only difference was the Xen version"). *)

type t = {
  hv : Hv.t;
  net : Netsim.t;
  dom0 : Kernel.t;
  attacker : Kernel.t;
  victim : Kernel.t;
  remote_host : string;
}

val create : ?frames:int -> ?dom0_pages:int -> ?guest_pages:int -> Version.t -> t
(** Defaults: 2048 frames, 128 dom0 pages, 96 pages per guest. *)

val kernels : t -> Kernel.t list
(** All guest kernels, dom0 first. *)

val tick_all : t -> unit
(** One scheduler round on every domain (vDSO hooks run). *)

val remote_listen : t -> port:int -> unit
(** Start a listener on the remote attacker host. *)
