type proc = { pid : int; uid : int; cmdline : string; mutable vdso_calls : int }

type t = { mutable procs : proc list; mutable next_pid : int }

let spawn t ~uid ~cmdline =
  let p = { pid = t.next_pid; uid; cmdline; vdso_calls = 0 } in
  t.next_pid <- t.next_pid + 1;
  t.procs <- t.procs @ [ p ];
  p

let create () =
  let t = { procs = []; next_pid = 1 } in
  ignore (spawn t ~uid:0 ~cmdline:"/sbin/init");
  t.next_pid <- 1000;
  ignore (spawn t ~uid:1000 ~cmdline:"-bash");
  t

let kill t ~pid =
  let before = List.length t.procs in
  t.procs <- List.filter (fun p -> p.pid <> pid) t.procs;
  List.length t.procs < before

let find t ~pid = List.find_opt (fun p -> p.pid = pid) t.procs
let list t = List.sort (fun a b -> compare a.pid b.pid) t.procs
let running_uids t = List.sort_uniq compare (List.map (fun p -> p.uid) t.procs)

let ps_output t =
  let header = Printf.sprintf "%5s %-8s %s" "PID" "USER" "COMMAND" in
  let rows =
    List.map
      (fun p -> Printf.sprintf "%5d %-8s %s" p.pid (Shell.user_name p.uid) p.cmdline)
      (list t)
  in
  String.concat "\n" (header :: rows)

let on_tick t = List.iter (fun p -> p.vdso_calls <- p.vdso_calls + 1) t.procs
