(** A minimal per-guest filesystem.

    Just enough for the evaluation transcripts: the XSA-212-priv
    violation is the appearance of [/tmp/injector_log] owned by root in
    every domain, and the XSA-148-priv violation reads
    [/root/root_msg] over a reverse shell. *)

type file = { content : string; uid : int; gid : int }
type t

val create : unit -> t
val write : t -> path:string -> uid:int -> string -> unit
val read : t -> string -> file option
val exists : t -> string -> bool
val remove : t -> string -> unit
val paths : t -> string list

val readable_by : file -> uid:int -> bool
(** Root reads everything; root-owned files are root-only; everything
    else is world-readable. *)
