lib/guest/process.mli:
