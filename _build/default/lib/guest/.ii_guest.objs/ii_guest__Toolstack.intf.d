lib/guest/toolstack.mli: Errno Hv Kernel
