lib/guest/toolstack.ml: Hv Kernel String Xenstore
