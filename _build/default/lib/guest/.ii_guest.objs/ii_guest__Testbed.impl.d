lib/guest/testbed.ml: Builder Hv Kernel List Netsim Sched
