lib/guest/shell.mli: Fs
