lib/guest/fs.ml: Hashtbl List String
