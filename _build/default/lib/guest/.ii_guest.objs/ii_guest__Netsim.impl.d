lib/guest/netsim.ml: Buffer List Printf
