lib/guest/process.ml: List Printf Shell String
