lib/guest/kernel.ml: Abi Addr Builder Bytes Char Cpu Domain Event_channel Format Frame Fs Hashtbl Hv Hypercall Idt Int64 List Netsim Paging Phys_mem Printf Process Pte Shell String Xenstore
