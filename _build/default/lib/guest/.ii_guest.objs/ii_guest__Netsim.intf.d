lib/guest/netsim.mli: Buffer
