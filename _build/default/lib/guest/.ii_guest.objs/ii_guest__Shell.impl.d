lib/guest/shell.ml: Buffer Fs List Printf String
