lib/guest/testbed.mli: Hv Kernel Netsim Version
