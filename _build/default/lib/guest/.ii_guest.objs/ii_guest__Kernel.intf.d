lib/guest/kernel.mli: Addr Domain Errno Fs Hv Hypercall Netsim Paging Process Pte
