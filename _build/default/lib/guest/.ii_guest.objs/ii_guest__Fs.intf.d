lib/guest/fs.mli:
