let set_memory_target k ~domid ~pages =
  Xenstore.write (Kernel.hv k).Hv.xenstore ~caller:(Kernel.domid k)
    (Xenstore.domain_path domid "memory/target")
    (string_of_int pages)

let memory_target hv ~domid =
  match Xenstore.read hv.Hv.xenstore ~caller:0 (Xenstore.domain_path domid "memory/target") with
  | Ok s -> int_of_string_opt (String.trim s)
  | Error _ -> None

let guest_name k ~domid =
  Xenstore.read (Kernel.hv k).Hv.xenstore ~caller:(Kernel.domid k)
    (Xenstore.domain_path domid "name")

let list_domain_nodes k =
  Xenstore.list_prefix (Kernel.hv k).Hv.xenstore ~caller:(Kernel.domid k) "/local/domain/"
