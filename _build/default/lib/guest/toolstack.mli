(** The dom0 toolstack's management operations over XenStore.

    This is the management interface whose abuse the paper's §IX names
    as a next intrusion-model family: a legitimate toolstack tunes
    guests through their XenStore subtrees (memory targets above all);
    a compromised toolstack — or an injected XenStore corruption — uses
    the same channel against them. *)

val set_memory_target : Kernel.t -> domid:int -> pages:int -> (unit, Errno.t) result
(** Write a guest's [memory/target]. The caller must be dom0; XenStore
    refuses everyone else with [EACCES]. The guest's balloon driver
    honours the target on its next scheduling tick. *)

val memory_target : Hv.t -> domid:int -> int option
(** Hypervisor-side read of the current target node. *)

val guest_name : Kernel.t -> domid:int -> (string, Errno.t) result

val list_domain_nodes : Kernel.t -> (string list, Errno.t) result
(** All XenStore paths under /local/domain/ visible to the caller. *)
