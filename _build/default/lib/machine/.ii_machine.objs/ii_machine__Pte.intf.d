lib/machine/pte.mli: Addr Format
