lib/machine/frame.ml: Addr Bytes Char Printf String
