lib/machine/phys_mem.mli: Addr Frame
