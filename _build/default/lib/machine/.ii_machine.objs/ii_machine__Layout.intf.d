lib/machine/layout.mli: Addr
