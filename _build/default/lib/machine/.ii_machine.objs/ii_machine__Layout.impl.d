lib/machine/layout.ml: Addr Int64
