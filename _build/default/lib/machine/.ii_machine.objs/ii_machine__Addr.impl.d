lib/machine/addr.ml: Format Int64
