lib/machine/frame.mli:
