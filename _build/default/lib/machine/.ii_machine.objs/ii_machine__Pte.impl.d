lib/machine/pte.ml: Format Int64 List String
