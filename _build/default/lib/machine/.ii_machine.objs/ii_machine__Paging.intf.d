lib/machine/paging.mli: Addr Format Layout Phys_mem Pte
