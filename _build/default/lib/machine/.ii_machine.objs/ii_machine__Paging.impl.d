lib/machine/paging.ml: Addr Format Frame Hashtbl Int64 Layout List Phys_mem Pte
