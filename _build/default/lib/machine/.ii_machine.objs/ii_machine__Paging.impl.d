lib/machine/paging.ml: Addr Format Frame Int64 Layout List Phys_mem Pte
