lib/machine/idt.ml: Addr Frame Int64 Phys_mem
