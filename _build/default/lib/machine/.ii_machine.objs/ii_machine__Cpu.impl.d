lib/machine/cpu.ml: Addr Bytes Hashtbl Idt Int64 Layout Option Paging Phys_mem Result
