lib/machine/cpu.ml: Addr Bytes Hashtbl Idt Int64 Layout List Option Paging Phys_mem Result
