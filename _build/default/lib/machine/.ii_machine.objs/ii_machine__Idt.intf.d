lib/machine/idt.mli: Addr Phys_mem
