lib/machine/phys_mem.ml: Addr Array Bytes Frame Hashtbl Int64 List
