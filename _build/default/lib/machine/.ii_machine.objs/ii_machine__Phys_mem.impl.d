lib/machine/phys_mem.ml: Addr Array Bytes Char Frame Int64 List
