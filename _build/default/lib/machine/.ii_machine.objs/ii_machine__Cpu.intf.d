lib/machine/cpu.mli: Addr Paging Phys_mem
