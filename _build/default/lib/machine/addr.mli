(** Address types and arithmetic for the simulated x86-64 machine.

    The simulator distinguishes, exactly as Xen does:
    - {b machine addresses} ([maddr]): byte addresses into host physical
      memory;
    - {b machine frame numbers} ([mfn]): physical 4 KiB frame indices;
    - {b pseudo-physical frame numbers} ([pfn]): the guest's view of its
      own contiguous "physical" memory, translated through the P2M;
    - {b virtual addresses} ([vaddr]): 48-bit canonical x86-64 virtual
      addresses decomposed by the 4-level page walk. *)

type maddr = int64
(** Machine (host physical) byte address. *)

type vaddr = int64
(** Canonical 48-bit virtual address, sign-extended to 64 bits. *)

type mfn = int
(** Machine frame number: [maddr / page_size]. *)

type pfn = int
(** Guest pseudo-physical frame number. *)

val page_shift : int
(** 12: pages are 4 KiB. *)

val page_size : int
(** [1 lsl page_shift]. *)

val page_mask : int64
(** Mask selecting the in-page offset bits. *)

val superpage_size : int
(** Size in bytes of a 2 MiB level-2 superpage mapping. *)

val entries_per_table : int
(** 512 entries per page-table page. *)

val maddr_of_mfn : mfn -> maddr
val mfn_of_maddr : maddr -> mfn

val page_offset : int64 -> int
(** Offset of an address within its page. *)

val is_page_aligned : int64 -> bool

val align_down : int64 -> int64
(** Round an address down to its page boundary. *)

val align_up : int64 -> int64
(** Round an address up to the next page boundary (identity if aligned). *)

val canonical : int64 -> vaddr
(** Sign-extend bit 47 to produce a canonical virtual address. *)

val is_canonical : vaddr -> bool

val l4_index : vaddr -> int
val l3_index : vaddr -> int
val l2_index : vaddr -> int
val l1_index : vaddr -> int
(** Page-walk indices, each in [0, 511]. *)

val of_indices : l4:int -> l3:int -> l2:int -> l1:int -> offset:int -> vaddr
(** Rebuild a canonical virtual address from walk indices; inverse of the
    [l*_index]/[page_offset] decomposition. *)

val l4_slot_base : int -> vaddr
(** Base virtual address of the 512 GiB region covered by an L4 slot. *)

val pp_maddr : Format.formatter -> maddr -> unit
val pp_vaddr : Format.formatter -> vaddr -> unit
