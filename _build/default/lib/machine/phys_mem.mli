(** Simulated host physical memory: a finite array of 4 KiB frames.

    Ownership here is only an allocation tag (who asked for the frame);
    access control is enforced elsewhere (page tables + hypervisor
    validation). An attacker holding a forged mapping can therefore read
    and write frames they do not own, which is the whole point. *)

type owner =
  | Free
  | Xen  (** owned by the hypervisor *)
  | Dom of int  (** owned by domain [id] *)

type t

exception Bad_maddr of Addr.maddr
(** Raised on access outside the installed physical memory. *)

val create : frames:int -> t
(** Fresh memory of [frames] zeroed frames, all [Free]. *)

val total_frames : t -> int
val frame : t -> Addr.mfn -> Frame.t

(** {1 Allocation} *)

val alloc : t -> owner -> Addr.mfn
(** Allocate the lowest free frame, zeroed. Raises [Failure] when memory
    is exhausted. *)

val alloc_many : t -> owner -> int -> Addr.mfn list
val free : t -> Addr.mfn -> unit
val owner : t -> Addr.mfn -> owner
val set_owner : t -> Addr.mfn -> owner -> unit
val free_frames : t -> int
val frames_owned_by : t -> owner -> Addr.mfn list
val is_valid_mfn : t -> Addr.mfn -> bool

(** {1 Byte access by machine address}

    These primitives cross frame boundaries transparently. *)

val read_u8 : t -> Addr.maddr -> int
val write_u8 : t -> Addr.maddr -> int -> unit
val read_u64 : t -> Addr.maddr -> int64
val write_u64 : t -> Addr.maddr -> int64 -> unit
val read_bytes : t -> Addr.maddr -> int -> bytes
val write_bytes : t -> Addr.maddr -> bytes -> unit
val write_string : t -> Addr.maddr -> string -> unit
