type t = int64

type flag =
  | Present
  | Rw
  | User
  | Pwt
  | Pcd
  | Accessed
  | Dirty
  | Pse
  | Global
  | Avail0
  | Avail1
  | Avail2
  | Nx

let bit = function
  | Present -> 0
  | Rw -> 1
  | User -> 2
  | Pwt -> 3
  | Pcd -> 4
  | Accessed -> 5
  | Dirty -> 6
  | Pse -> 7
  | Global -> 8
  | Avail0 -> 9
  | Avail1 -> 10
  | Avail2 -> 11
  | Nx -> 63

let all_flags =
  [ Present; Rw; User; Pwt; Pcd; Accessed; Dirty; Pse; Global; Avail0; Avail1; Avail2; Nx ]

let none = 0L
let mask f = Int64.shift_left 1L (bit f)
let test f e = Int64.logand e (mask f) <> 0L
let set f e = Int64.logor e (mask f)
let clear f e = Int64.logand e (Int64.lognot (mask f))
let with_flags fs e = List.fold_left (fun e f -> set f e) e fs

(* Physical frame lives in bits 12..51 (40-bit MFN is ample here). *)
let mfn_field_mask = 0x000F_FFFF_FFFF_F000L
let mfn e = Int64.to_int (Int64.shift_right_logical (Int64.logand e mfn_field_mask) 12)

let make ~mfn ~flags =
  let base = Int64.logand (Int64.shift_left (Int64.of_int mfn) 12) mfn_field_mask in
  with_flags flags base

let flags e = List.filter (fun f -> test f e) all_flags

let flags_equal_modulo ~ignore a b =
  if mfn a <> mfn b then false
  else
    let significant = List.filter (fun f -> not (List.mem f ignore)) all_flags in
    List.for_all (fun f -> test f a = test f b) significant

let is_present = test Present

let flag_to_string = function
  | Present -> "P"
  | Rw -> "RW"
  | User -> "US"
  | Pwt -> "PWT"
  | Pcd -> "PCD"
  | Accessed -> "A"
  | Dirty -> "D"
  | Pse -> "PSE"
  | Global -> "G"
  | Avail0 -> "AV0"
  | Avail1 -> "AV1"
  | Avail2 -> "AV2"
  | Nx -> "NX"

let pp ppf e =
  if not (is_present e) then Format.fprintf ppf "<not-present:%016Lx>" e
  else
    Format.fprintf ppf "mfn=0x%x [%s]" (mfn e)
      (String.concat "|" (List.map flag_to_string (flags e)))
