(** A single 4 KiB frame of simulated physical memory.

    Frames hold raw bytes. Page-table pages, the IDT, guest kernel pages
    and attacker payloads all live in frames, so forged data is
    indistinguishable from legitimate data — exactly the property the
    exploits rely on. *)

type t

val create : unit -> t
(** A zero-filled frame. *)

val copy : t -> t

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit

val get_u64 : t -> int -> int64
(** Little-endian 64-bit load at byte offset [off] (0 <= off <= 4088). *)

val set_u64 : t -> int -> int64 -> unit

val get_entry : t -> int -> int64
(** Read page-table entry [i] (0..511): [get_u64 t (8*i)]. *)

val set_entry : t -> int -> int64 -> unit

val read_bytes : t -> int -> int -> bytes
(** [read_bytes t off len] copies [len] bytes starting at [off]. *)

val write_bytes : t -> int -> bytes -> unit
val write_string : t -> int -> string -> unit
val fill : t -> char -> unit

val find_string : t -> string -> int option
(** Offset of the first occurrence of a byte pattern, if any. *)

val equal : t -> t -> bool
val to_bytes : t -> bytes
