(** The Xen x86-64 virtual-address-space layout.

    Xen segments the 48-bit address space into regions with fixed roles
    and per-region guest permissions (§V-A of the paper: "the range
    0xffff800000000000 - 0xffff807fffffffff is read-only for guest
    domains"). On real hardware the policy materializes as what Xen does
    or does not map; the simulator expresses it as a region table the CPU
    consults on guest-privilege accesses.

    The [hardened] flag models the post-XSA-213 hardening shipped in Xen
    4.9+ (present in 4.13, absent in 4.6/4.8): the 512 GiB RWX
    linear-page-table window was removed, so guest-level accesses to
    [0xffff8040_00000000 ..] and to the extra self-map slots fault even
    when page-table bytes would otherwise translate them. *)

type access = No_access | Read_only | Read_write

type region =
  | Guest_low  (** slots 0..255: guest user space and low mappings *)
  | M2p  (** machine-to-physical table, guest read-only *)
  | Linear_pt  (** pre-hardening 512 GiB linear-PT window *)
  | Xen_extra  (** historically guest-mappable extra slots (257..259) *)
  | Xen_private  (** hypervisor text/heap virtual area *)
  | Direct_map  (** Xen's direct map of all physical memory *)
  | Guest_kernel  (** PV guest kernel area (slots 272..511) *)

val region_of_vaddr : Addr.vaddr -> region

val region_name : region -> string

val guest_access : hardened:bool -> Addr.vaddr -> access
(** Strongest access a guest-privilege memory reference may perform at
    this address, before the page walk is even consulted. *)

val hypervisor_access : Addr.vaddr -> access

(** {1 Region constants} *)

val m2p_base : Addr.vaddr
val linear_pt_base : Addr.vaddr
(** 0xffff8040_00000000 — the window the XSA-212-priv exploit installs
    its payload mappings into. *)

val linear_pt_end : Addr.vaddr
val xen_extra_base : Addr.vaddr
val xen_extra_slot : int
(** The L4 slot (258) the XSA-182 PoC uses for its self-mapping entry. *)

val directmap_base : Addr.vaddr
val guest_kernel_base : Addr.vaddr
val m2p_slot : int
(** L4 slot 256, shared by the M2P table and the linear-PT window. *)

val directmap_of_maddr : Addr.maddr -> Addr.vaddr
(** Xen's linear address for a machine address. *)

val maddr_of_directmap : Addr.vaddr -> Addr.maddr option
(** Inverse of [directmap_of_maddr]; [None] outside the direct map. *)

val is_xen_l4_slot : int -> bool
(** True for L4 slots reserved to Xen in every version (M2P/linear slot,
    private area, direct map). Guests may never install these. *)

val guest_may_own_l4_slot : hardened:bool -> int -> bool
(** Whether page-table validation lets a guest install its own L4 entry
    in this slot. Pre-hardening, the extra slots (257..259) were
    permitted — the latitude the XSA-182 PoC needs; hardened versions
    restrict guests to their own low and kernel slots. *)
