type access = No_access | Read_only | Read_write

type region =
  | Guest_low
  | M2p
  | Linear_pt
  | Xen_extra
  | Xen_private
  | Direct_map
  | Guest_kernel

let m2p_slot = 256
let m2p_base = Addr.l4_slot_base m2p_slot

(* The linear-PT window is the second half of L4 slot 256, i.e. the L3
   indices 256..511 of the same PUD that maps the M2P. *)
let linear_pt_base = Int64.add m2p_base 0x40_0000_0000L
let linear_pt_end = Int64.add m2p_base 0x7f_ffff_ffffL
let xen_extra_slot = 258
let xen_extra_base = Addr.l4_slot_base 257
let xen_private_base = Addr.l4_slot_base 260
let directmap_slot = 262
let directmap_base = Addr.l4_slot_base directmap_slot
let directmap_end_slot = 271
let guest_kernel_slot = 272
let guest_kernel_base = Addr.l4_slot_base guest_kernel_slot

let region_of_vaddr va =
  let va = Addr.canonical va in
  let slot = Addr.l4_index va in
  if Int64.logand va 0x8000_0000_0000L = 0L then Guest_low
  else if slot = m2p_slot then if va < linear_pt_base then M2p else Linear_pt
  else if slot >= 257 && slot <= 259 then Xen_extra
  else if slot >= 260 && slot <= 261 then Xen_private
  else if slot >= directmap_slot && slot <= directmap_end_slot then Direct_map
  else Guest_kernel

let region_name = function
  | Guest_low -> "guest-low"
  | M2p -> "m2p"
  | Linear_pt -> "linear-pt"
  | Xen_extra -> "xen-extra"
  | Xen_private -> "xen-private"
  | Direct_map -> "direct-map"
  | Guest_kernel -> "guest-kernel"

let guest_access ~hardened va =
  match region_of_vaddr va with
  | Guest_low | Guest_kernel -> Read_write
  | M2p -> Read_only
  | Linear_pt | Xen_extra -> if hardened then No_access else Read_write
  | Xen_private | Direct_map -> No_access

let hypervisor_access va =
  match region_of_vaddr va with
  | Direct_map | Xen_private -> Read_write
  | M2p -> Read_write
  | Guest_low | Guest_kernel | Linear_pt | Xen_extra -> No_access

let directmap_of_maddr ma = Int64.add directmap_base ma

let maddr_of_directmap va =
  let va = Addr.canonical va in
  if va >= directmap_base && Addr.l4_index va <= directmap_end_slot && Addr.l4_index va >= directmap_slot
  then Some (Int64.sub va directmap_base)
  else None

let is_xen_l4_slot slot =
  slot = m2p_slot || (slot >= 260 && slot <= directmap_end_slot)

let guest_may_own_l4_slot ~hardened slot =
  if slot < 0 || slot > 511 then false
  else if is_xen_l4_slot slot then false
  else if slot >= 257 && slot <= 259 then not hardened
  else true

(* Silence unused warnings for documented bases that exist for clients. *)
let _ = xen_private_base
let _ = xen_extra_base
