type owner = Free | Xen | Dom of int

type t = {
  frames : Frame.t array;
  owners : owner array;
  mutable next_hint : int;  (* lowest index possibly free, to keep alloc fast *)
}

exception Bad_maddr of Addr.maddr

let create ~frames =
  if frames <= 0 then invalid_arg "Phys_mem.create: frames must be positive";
  {
    frames = Array.init frames (fun _ -> Frame.create ());
    owners = Array.make frames Free;
    next_hint = 0;
  }

let total_frames t = Array.length t.frames
let is_valid_mfn t mfn = mfn >= 0 && mfn < total_frames t

let frame t mfn =
  if not (is_valid_mfn t mfn) then raise (Bad_maddr (Addr.maddr_of_mfn mfn));
  t.frames.(mfn)

let owner t mfn =
  if not (is_valid_mfn t mfn) then raise (Bad_maddr (Addr.maddr_of_mfn mfn));
  t.owners.(mfn)

let set_owner t mfn o =
  if not (is_valid_mfn t mfn) then raise (Bad_maddr (Addr.maddr_of_mfn mfn));
  t.owners.(mfn) <- o

let alloc t o =
  let n = total_frames t in
  let rec find i = if i >= n then None else if t.owners.(i) = Free then Some i else find (i + 1) in
  match find t.next_hint with
  | None -> failwith "Phys_mem.alloc: out of physical memory"
  | Some mfn ->
      t.owners.(mfn) <- o;
      t.next_hint <- mfn + 1;
      Frame.fill t.frames.(mfn) '\000';
      mfn

let alloc_many t o n = List.init n (fun _ -> alloc t o)

let free t mfn =
  if not (is_valid_mfn t mfn) then raise (Bad_maddr (Addr.maddr_of_mfn mfn));
  t.owners.(mfn) <- Free;
  Frame.fill t.frames.(mfn) '\000';
  if mfn < t.next_hint then t.next_hint <- mfn

let free_frames t = Array.fold_left (fun acc o -> if o = Free then acc + 1 else acc) 0 t.owners

let frames_owned_by t o =
  let acc = ref [] in
  for i = total_frames t - 1 downto 0 do
    if t.owners.(i) = o then acc := i :: !acc
  done;
  !acc

let split t ma len =
  let mfn = Addr.mfn_of_maddr ma in
  if not (is_valid_mfn t mfn) then raise (Bad_maddr ma);
  let off = Addr.page_offset ma in
  if off + len > Addr.page_size then raise (Bad_maddr ma) else (mfn, off)

let read_u8 t ma =
  let mfn, off = split t ma 1 in
  Frame.get_u8 t.frames.(mfn) off

let write_u8 t ma v =
  let mfn, off = split t ma 1 in
  Frame.set_u8 t.frames.(mfn) off v

(* 64-bit accesses are required to be contained in one frame, as natural
   alignment guarantees on real hardware. *)
let read_u64 t ma =
  let mfn, off = split t ma 8 in
  Frame.get_u64 t.frames.(mfn) off

let write_u64 t ma v =
  let mfn, off = split t ma 8 in
  Frame.set_u64 t.frames.(mfn) off v

let read_bytes t ma len =
  let buf = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set buf i (Char.chr (read_u8 t (Int64.add ma (Int64.of_int i))))
  done;
  buf

let write_bytes t ma b =
  Bytes.iteri (fun i c -> write_u8 t (Int64.add ma (Int64.of_int i)) (Char.code c)) b

let write_string t ma s = write_bytes t ma (Bytes.of_string s)
