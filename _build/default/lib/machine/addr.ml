type maddr = int64
type vaddr = int64
type mfn = int
type pfn = int

let page_shift = 12
let page_size = 1 lsl page_shift
let page_mask = Int64.of_int (page_size - 1)
let superpage_size = 512 * page_size
let entries_per_table = 512

let maddr_of_mfn mfn = Int64.shift_left (Int64.of_int mfn) page_shift
let mfn_of_maddr ma = Int64.to_int (Int64.shift_right_logical ma page_shift)
let page_offset a = Int64.to_int (Int64.logand a page_mask)
let is_page_aligned a = Int64.logand a page_mask = 0L
let align_down a = Int64.logand a (Int64.lognot page_mask)

let align_up a =
  if is_page_aligned a then a
  else Int64.add (align_down a) (Int64.of_int page_size)

(* Canonical addresses replicate bit 47 into bits 48..63. *)
let canonical a =
  let low48 = Int64.logand a 0xFFFF_FFFF_FFFFL in
  if Int64.logand a 0x8000_0000_0000L <> 0L then
    Int64.logor low48 0xFFFF_0000_0000_0000L
  else low48

let is_canonical a = canonical a = a

let index level va =
  let shift = page_shift + (9 * (level - 1)) in
  Int64.to_int (Int64.logand (Int64.shift_right_logical va shift) 0x1FFL)

let l4_index va = index 4 va
let l3_index va = index 3 va
let l2_index va = index 2 va
let l1_index va = index 1 va

let of_indices ~l4 ~l3 ~l2 ~l1 ~offset =
  let part idx level = Int64.shift_left (Int64.of_int idx) (page_shift + (9 * (level - 1))) in
  let raw =
    Int64.logor
      (Int64.logor (part l4 4) (part l3 3))
      (Int64.logor (Int64.logor (part l2 2) (part l1 1)) (Int64.of_int offset))
  in
  canonical raw

let l4_slot_base slot = of_indices ~l4:slot ~l3:0 ~l2:0 ~l1:0 ~offset:0
let pp_maddr ppf a = Format.fprintf ppf "0x%012Lx" a
let pp_vaddr ppf a = Format.fprintf ppf "0x%016Lx" a
