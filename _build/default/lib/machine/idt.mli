(** The interrupt descriptor table, stored in a physical frame.

    Each of the 256 vectors has a 16-byte gate: the handler's linear
    address followed by a selector/flags word. Because the table is
    ordinary memory, an arbitrary write primitive can corrupt a gate —
    the erroneous state behind the XSA-212-crash use case. *)

type gate = { handler : Addr.vaddr; selector : int; gate_present : bool }

val vector_page_fault : int
(** 14 *)

val vector_double_fault : int
(** 8 *)

val vector_general_protection : int
(** 13 *)

val xen_code_selector : int
(** 0xe008, as printed in Xen crash dumps. *)

val gate_size : int
val handler_offset : int -> int
(** Byte offset, within the IDT page, of vector [v]'s handler address —
    the address the XSA-212-crash exploit targets. *)

val init : Phys_mem.t -> Addr.mfn -> unit
(** Reset every gate to not-present. *)

val write_gate : Phys_mem.t -> Addr.mfn -> int -> gate -> unit
val read_gate : Phys_mem.t -> Addr.mfn -> int -> gate
