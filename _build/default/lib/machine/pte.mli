(** x86-64 page-table entries.

    Entries are plain 64-bit values stored in page-table pages; the
    simulated MMU decodes them exactly like hardware does. Exploits forge
    entries by writing raw bytes, so all semantics must live in the bit
    encoding, never in OCaml-side bookkeeping. *)

type t = int64
(** A raw page-table entry. *)

type flag =
  | Present  (** bit 0 — entry is valid *)
  | Rw  (** bit 1 — writable *)
  | User  (** bit 2 — accessible from user (guest) privilege *)
  | Pwt  (** bit 3 — page write-through *)
  | Pcd  (** bit 4 — page cache disable *)
  | Accessed  (** bit 5 *)
  | Dirty  (** bit 6 *)
  | Pse  (** bit 7 — superpage at L2/L3; PAT at L1 *)
  | Global  (** bit 8 *)
  | Avail0  (** bit 9 — software-available (Xen uses these) *)
  | Avail1  (** bit 10 *)
  | Avail2  (** bit 11 *)
  | Nx  (** bit 63 — no-execute *)

val bit : flag -> int
(** Bit position of a flag. *)

val none : t
(** The all-zero (not-present) entry. *)

val make : mfn:Addr.mfn -> flags:flag list -> t
(** Build an entry pointing at [mfn] with exactly [flags] set. *)

val mfn : t -> Addr.mfn
(** Frame number encoded in bits 12..51. *)

val test : flag -> t -> bool
val set : flag -> t -> t
val clear : flag -> t -> t
val with_flags : flag list -> t -> t

val flags : t -> flag list
(** All flags set in the entry, in bit order. *)

val flags_equal_modulo : ignore:flag list -> t -> t -> bool
(** [flags_equal_modulo ~ignore a b] is true when [a] and [b] encode the
    same frame and differ at most in the [ignore] flags. This is the
    comparison at the heart of the XSA-182 fast-path bug. *)

val is_present : t -> bool
val pp : Format.formatter -> t -> unit
val flag_to_string : flag -> string
