type entry = {
  xsa : int option;
  cve : string;
  year : int;
  title : string;
  component : string;
  summary : string;
  afs : Abusive_functionality.t list;
  synthetic : bool;
}

module Af = Abusive_functionality

(* --- anchors: the advisories the paper names ------------------------- *)

let anchor ~xsa ~cve ~year ~title ~component ~summary afs =
  { xsa = Some xsa; cve; year; title; component; summary; afs; synthetic = false }

let anchors =
  [
    anchor ~xsa:108 ~cve:"CVE-2014-7188" ~year:2014
      ~title:"Improper MSR range used for x2APIC emulation" ~component:"x86 emulator"
      ~summary:
        "A malicious HVM guest can leak hypervisor memory contents by reading uninitialized \
         data through the emulated x2APIC MSR range."
      [ Af.Read_unauthorized_memory ];
    anchor ~xsa:133 ~cve:"CVE-2015-3456" ~year:2015 ~title:"Privilege escalation via emulated floppy disk drive"
      ~component:"qemu device model"
      ~summary:
        "VENOM: the floppy disk controller does not restrict the size of its input; an \
         out-of-bounds write corrupts adjacent device-model memory that should be inaccessible."
      [ Af.Write_unauthorized_memory ];
    anchor ~xsa:148 ~cve:"CVE-2015-7835" ~year:2015
      ~title:"Uncontrolled creation of large page mappings by PV guests"
      ~component:"memory management"
      ~summary:
        "A missing check on the PSE invariant of L2 page-table entries leaves a guest-writable \
         page table entry reachable from an unprivileged PV guest."
      [ Af.Guest_writable_page_table_entry ];
    anchor ~xsa:182 ~cve:"CVE-2016-6258" ~year:2016
      ~title:"x86: Privilege escalation in PV guests" ~component:"memory management"
      ~summary:
        "The fast path that revalidates pre-existing L4 page tables wrongly treats the RW bit \
         as safe, leaving a guest-writable page table entry via a recursive self-mapping."
      [ Af.Guest_writable_page_table_entry ];
    anchor ~xsa:212 ~cve:"CVE-2017-7228" ~year:2017
      ~title:"x86: broken check in memory_exchange() permits PV guest breakout"
      ~component:"memory management"
      ~summary:
        "An insufficient check on the output address of memory_exchange allows an arbitrary \
         write to hypervisor memory from an unprivileged guest."
      [ Af.Write_unauthorized_arbitrary_memory ];
    anchor ~xsa:345 ~cve:"CVE-2020-27672" ~year:2020
      ~title:"x86: Race condition in Xen mapping code" ~component:"memory management"
      ~summary:
        "A race in the mapping code corrupts the virtual memory mapping under concurrent \
         updates, and the retry logic can hang the CPU while it spins on the broken state."
      [ Af.Corrupt_virtual_memory_mapping; Af.Induce_hang_state ];
    anchor ~xsa:387 ~cve:"CVE-2021-28701" ~year:2021
      ~title:"Grant table v2 status pages may remain accessible after de-allocation"
      ~component:"grant tables"
      ~summary:
        "Status pages that should be released to Xen when a guest switches from grant table v2 \
         to v1 are not; the guest can retain access to a page after releasing it to the \
         hypervisor."
      [ Af.Keep_page_access ];
    anchor ~xsa:393 ~cve:"XSA-393" ~year:2021
      ~title:"arm: Guest frontends can retain access to backend-released pages"
      ~component:"memory management"
      ~summary:
        "The code that removes a page mapping, activated when XENMEM_decrease_reservation is \
         issued after a cache maintenance instruction, lets a guest retain access to a page \
         after releasing it to the hypervisor."
      [ Af.Keep_page_access ];
    anchor ~xsa:156 ~cve:"CVE-2015-5307" ~year:2015
      ~title:"x86: CPU lockup during exception delivery" ~component:"vcpu context switch"
      ~summary:
        "A benign #AC/#DB exception loop with guest-controlled loop condition can hang the CPU \
         indefinitely."
      [ Af.Induce_hang_state ];
    anchor ~xsa:284 ~cve:"CVE-2019-17343" ~year:2019
      ~title:"x86: PV guest INVLPG-like flushes may leave stale mediated access"
      ~component:"memory management"
      ~summary:
        "A flush-handling error grants transient read/write access to memory outside the \
         guest's allocation, and an unaligned follow-up access lets a guest induce a memory \
         exception inside the hypervisor."
      [ Af.Rw_unauthorized_memory; Af.Induce_memory_exception ];
  ]

(* --- synthetic remainder ---------------------------------------------- *)

(* One advisory-style sentence per functionality; each contains the
   keyword phrase the classifier keys on, so classifier accuracy over
   the corpus is a meaningful test. *)
let phrase = function
  | Af.Read_unauthorized_memory ->
      "allows a malicious guest to leak hypervisor memory contents via uninitialized padding"
  | Af.Write_unauthorized_memory ->
      "an out-of-bounds write corrupts adjacent hypervisor memory"
  | Af.Write_unauthorized_arbitrary_memory ->
      "insufficient pointer validation allows an arbitrary write to hypervisor memory"
  | Af.Rw_unauthorized_memory ->
      "grants read/write access to memory outside the guest's allocation"
  | Af.Fail_memory_access -> "causes a legitimate guest memory access to fail spuriously"
  | Af.Corrupt_virtual_memory_mapping ->
      "stale state corrupts the virtual memory mapping maintained by the hypervisor"
  | Af.Corrupt_page_reference -> "a reference counting error corrupts a page reference"
  | Af.Decrease_page_mapping_availability ->
      "an error path reduces page mapping availability for other domains"
  | Af.Guest_writable_page_table_entry ->
      "a missing validation step leaves a guest-writable page table entry reachable"
  | Af.Fail_memory_mapping -> "causes a requested memory mapping to fail silently"
  | Af.Uncontrolled_memory_allocation ->
      "can trigger unbounded allocation and exhaust hypervisor memory"
  | Af.Keep_page_access ->
      "lets a guest retain access to a page after releasing it to the hypervisor"
  | Af.Induce_fatal_exception ->
      "a reachable BUG() assertion lets a guest trigger a fatal exception"
  | Af.Induce_memory_exception ->
      "an unaligned access lets a guest induce a memory exception inside the hypervisor"
  | Af.Induce_hang_state -> "a guest-controlled loop condition can hang the CPU"
  | Af.Uncontrolled_interrupt_requests ->
      "spurious interrupts can be raised at an uncontrolled rate"

let components =
  [|
    "memory management"; "grant tables"; "event channels"; "x86 emulator"; "p2m";
    "shadow paging"; "IOMMU"; "qemu device model"; "balloon driver"; "mmio handling";
    "vcpu context switch"; "scheduler";
  |]

(* Per-functionality synthetic single-label counts: Table I minus the
   anchors above, minus the six dual-label entries below. *)
let synthetic_singles =
  [
    (Af.Read_unauthorized_memory, 11);
    (Af.Write_unauthorized_memory, 6);
    (Af.Write_unauthorized_arbitrary_memory, 4);
    (Af.Rw_unauthorized_memory, 5);
    (Af.Fail_memory_access, 3);
    (Af.Corrupt_virtual_memory_mapping, 3);
    (Af.Corrupt_page_reference, 3);
    (Af.Decrease_page_mapping_availability, 6);
    (Af.Guest_writable_page_table_entry, 5);
    (Af.Fail_memory_mapping, 1);
    (Af.Uncontrolled_memory_allocation, 4);
    (Af.Keep_page_access, 8);
    (Af.Induce_fatal_exception, 5);
    (Af.Induce_memory_exception, 3);
    (Af.Induce_hang_state, 15);
    (Af.Uncontrolled_interrupt_requests, 2);
  ]

let synthetic_duals =
  [
    [ Af.Read_unauthorized_memory; Af.Write_unauthorized_memory ];
    [ Af.Induce_hang_state; Af.Induce_fatal_exception ];
    [ Af.Keep_page_access; Af.Corrupt_page_reference ];
    [ Af.Decrease_page_mapping_availability; Af.Fail_memory_mapping ];
    [ Af.Induce_memory_exception; Af.Induce_hang_state ];
    [ Af.Uncontrolled_memory_allocation; Af.Induce_hang_state ];
  ]

let synthetic_entry index afs =
  let component = components.(index mod Array.length components) in
  let year = 2013 + (index mod 9) in
  let summary =
    String.concat "; moreover, " (List.map phrase afs)
    ^ Printf.sprintf " (reachable via the %s component)." component
  in
  {
    xsa = None;
    cve = Printf.sprintf "CVE-%d-9%03d" year (100 + index);
    year;
    title =
      Printf.sprintf "Reconstructed advisory #%d (%s)" (index + 1)
        (String.concat " + " (List.map Af.to_string afs));
    component;
    summary;
    afs;
    synthetic = true;
  }

let synthetics =
  let singles =
    List.concat_map (fun (af, n) -> List.init n (fun _ -> [ af ])) synthetic_singles
  in
  List.mapi synthetic_entry (singles @ synthetic_duals)

let corpus = anchors @ synthetics
let size = List.length corpus
let classifications = List.fold_left (fun acc e -> acc + List.length e.afs) 0 corpus

let counts () =
  List.map
    (fun af ->
      (af, List.fold_left (fun acc e -> if List.mem af e.afs then acc + 1 else acc) 0 corpus))
    Af.all

let class_totals () =
  let counts = counts () in
  List.map
    (fun cls ->
      ( cls,
        List.fold_left (fun acc (af, n) -> if Af.cls_of af = cls then acc + n else acc) 0 counts
      ))
    Af.cls_all

let entries_for af = List.filter (fun e -> List.mem af e.afs) corpus
let find_xsa n = List.find_opt (fun e -> e.xsa = Some n) corpus

let table1 () =
  let counts = counts () in
  let rows =
    List.concat_map
      (fun cls ->
        let total = List.assoc cls (class_totals ()) in
        [ Printf.sprintf "%s - %d CVEs" (Af.cls_to_string cls) total; "" ]
        |> fun header_row ->
        (match header_row with
        | [ h; _ ] -> [ [ h; "" ] ]
        | _ -> [])
        @ List.filter_map
            (fun (af, n) ->
              if Af.cls_of af = cls then Some [ "  " ^ Af.to_string af; string_of_int n ]
              else None)
            counts)
      Af.cls_all
  in
  Report.table
    ~title:
      "TABLE I: Abusive functionalities obtainable from activating Xen vulnerabilities (100 \
       CVEs, 108 classifications)"
    ~header:[ "Abusive Functionality"; "CVEs" ] rows
