lib/advisory/classify.mli: Abusive_functionality Corpus
