lib/advisory/field_study.ml: Abusive_functionality Buffer Corpus Hashtbl Ii_core List Option Printf
