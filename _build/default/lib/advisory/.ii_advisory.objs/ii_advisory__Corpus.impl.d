lib/advisory/corpus.ml: Abusive_functionality Array List Printf Report String
