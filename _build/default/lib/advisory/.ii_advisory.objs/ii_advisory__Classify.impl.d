lib/advisory/classify.ml: Abusive_functionality Corpus List String
