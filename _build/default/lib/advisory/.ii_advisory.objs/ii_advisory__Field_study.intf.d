lib/advisory/field_study.mli: Abusive_functionality Ii_core
