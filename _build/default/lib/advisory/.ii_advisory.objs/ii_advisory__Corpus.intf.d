lib/advisory/corpus.mli: Abusive_functionality
