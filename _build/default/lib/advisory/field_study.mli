(** The field study behind intrusion-model selection.

    §IV-D closes with: "An extended study to cover all vulnerabilities
    on Xen is planned for future work. We want to study in detail known
    vulnerabilities and their abusive functionalities to properly
    understand what are the possible set of erroneous states that we
    may inject and which IMs we can abstract from them." This module is
    that machinery over the reconstructed corpus: prevalence rankings,
    per-component and per-year views, and a bridge into the
    {!Ii_core.Im_catalog} that turns prevalence into a concrete,
    injectable campaign plan. *)

val by_year : unit -> (int * int) list
(** (year, CVEs) ascending by year. *)

val by_component : unit -> (string * int) list
(** (component, CVEs) descending by count. *)

val by_class : unit -> (Abusive_functionality.cls * int) list

val prevalence : unit -> (Abusive_functionality.t * int) list
(** Functionalities ranked by corpus prevalence, descending. *)

val campaign_plan : top:int -> (Abusive_functionality.t * Ii_core.Im_catalog.entry) list
(** The [top] most prevalent functionalities that have a working
    injector, paired with their catalog entries — what a risk-driven
    campaign would run first (§III-C's hardening scenario). *)

val injectable_share : unit -> float
(** Fraction of the corpus's classifications whose functionality has a
    working injector — how much of the observed threat landscape the
    current injector set covers. *)

val render : unit -> string
