module Af = Abusive_functionality

let rules =
  [
    (Af.Read_unauthorized_memory, [ "leak hypervisor memory contents"; "uninitialized" ]);
    (Af.Write_unauthorized_memory, [ "out-of-bounds write corrupts adjacent" ]);
    (Af.Write_unauthorized_arbitrary_memory, [ "arbitrary write to hypervisor memory" ]);
    (Af.Rw_unauthorized_memory, [ "read/write access to memory outside" ]);
    (Af.Fail_memory_access, [ "memory access to fail" ]);
    (Af.Corrupt_virtual_memory_mapping, [ "corrupts the virtual memory mapping" ]);
    (Af.Corrupt_page_reference, [ "corrupts a page reference" ]);
    (Af.Decrease_page_mapping_availability, [ "reduces page mapping availability" ]);
    (Af.Guest_writable_page_table_entry, [ "guest-writable page table entry" ]);
    (Af.Fail_memory_mapping, [ "memory mapping to fail" ]);
    (Af.Uncontrolled_memory_allocation, [ "unbounded allocation" ]);
    (Af.Keep_page_access, [ "retain access to a page after releasing" ]);
    (Af.Induce_fatal_exception, [ "fatal exception"; "bug() assertion" ]);
    (Af.Induce_memory_exception, [ "induce a memory exception" ]);
    (Af.Induce_hang_state, [ "hang the cpu" ]);
    (Af.Uncontrolled_interrupt_requests, [ "uncontrolled rate"; "interrupt storm" ]);
  ]

let contains haystack needle =
  let h = String.lowercase_ascii haystack and n = String.lowercase_ascii needle in
  let hl = String.length h and nl = String.length n in
  let rec go i = if i + nl > hl then false else String.sub h i nl = n || go (i + 1) in
  nl > 0 && go 0

let classify (e : Corpus.entry) =
  List.filter_map
    (fun (af, phrases) ->
      if List.exists (contains e.Corpus.summary) phrases then Some af else None)
    rules

let confusion () =
  List.filter_map
    (fun e ->
      let got = classify e in
      let want = List.sort compare e.Corpus.afs in
      if List.sort compare got = want then None else Some (e, got))
    Corpus.corpus

let accuracy () =
  let wrong = List.length (confusion ()) in
  float_of_int (Corpus.size - wrong) /. float_of_int Corpus.size
