(** The 100-CVE advisory corpus behind Table I.

    The paper's §IV-D study randomly selected 100 memory-related CVEs
    from the Xen Security Advisory list and classified the abusive
    functionalities an attacker can acquire from each. The original
    selection is not published, so this corpus reconstructs it: a set
    of anchor entries for well-known XSAs (including every XSA the
    paper cites) plus synthetic entries phrased like XSA advisories,
    chosen so the per-functionality counts reproduce Table I exactly
    (108 classifications over 100 CVEs — some CVEs carry two
    functionalities, as the paper notes for CVE-2019-17343 and
    CVE-2020-27672). *)

type entry = {
  xsa : int option;  (** advisory number; [None] for CVE-only entries *)
  cve : string;
  year : int;
  title : string;
  component : string;
  summary : string;  (** the "related metadata" the classifier reads *)
  afs : Abusive_functionality.t list;  (** ground-truth classification *)
  synthetic : bool;  (** reconstructed rather than anchored on a real XSA *)
}

val corpus : entry list
val size : int
(** 100. *)

val classifications : int
(** 108. *)

val counts : unit -> (Abusive_functionality.t * int) list
(** Ground-truth per-functionality counts over the corpus. *)

val class_totals : unit -> (Abusive_functionality.cls * int) list
val entries_for : Abusive_functionality.t -> entry list
val find_xsa : int -> entry option
val table1 : unit -> string
(** Render Table I from the corpus. *)
