(** The metadata classifier of §IV-D.

    The study assessed each vulnerability "by going through all related
    metadata for some context" and derived the abusive functionalities
    an adversary could acquire. This module mechanizes that step as an
    ordered keyword ruleset over the advisory summary text. *)

val classify : Corpus.entry -> Abusive_functionality.t list
(** All functionalities whose rules match the entry's summary, in
    taxonomy order. *)

val rules : (Abusive_functionality.t * string list) list
(** The keyword phrases behind each functionality (for inspection). *)

val accuracy : unit -> float
(** Fraction of corpus entries whose classification matches the ground
    truth exactly. *)

val confusion : unit -> (Corpus.entry * Abusive_functionality.t list) list
(** Entries the classifier got wrong, with what it produced. *)
