module Af = Abusive_functionality

let tally key_of =
  let tbl = Hashtbl.create 17 in
  List.iter
    (fun e ->
      List.iter
        (fun key ->
          Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
        (key_of e))
    Corpus.corpus;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let by_year () =
  List.sort (fun (a, _) (b, _) -> compare a b) (tally (fun e -> [ e.Corpus.year ]))

let by_component () =
  List.sort
    (fun (_, a) (_, b) -> compare b a)
    (tally (fun e -> [ e.Corpus.component ]))

let by_class () =
  List.sort
    (fun (_, a) (_, b) -> compare b a)
    (tally (fun e -> List.map Af.cls_of e.Corpus.afs))

let prevalence () =
  List.sort (fun (_, a) (_, b) -> compare b a) (tally (fun e -> e.Corpus.afs))

let campaign_plan ~top =
  let ranked = prevalence () in
  let injectable =
    List.filter_map
      (fun (af, _) ->
        let entry = Ii_core.Im_catalog.find af in
        if Ii_core.Im_catalog.implemented entry then Some (af, entry) else None)
      ranked
  in
  List.filteri (fun i _ -> i < top) injectable

let injectable_share () =
  let total, covered =
    List.fold_left
      (fun (total, covered) (af, n) ->
        let ok = Ii_core.Im_catalog.implemented (Ii_core.Im_catalog.find af) in
        (total + n, if ok then covered + n else covered))
      (0, 0) (prevalence ())
  in
  if total = 0 then 0.0 else float_of_int covered /. float_of_int total

let render () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Ii_core.Report.table ~title:"Field study: abusive-functionality prevalence"
       ~header:[ "Abusive Functionality"; "CVEs"; "Injectable" ]
       (List.map
          (fun (af, n) ->
            [
              Af.to_string af;
              string_of_int n;
              (if Ii_core.Im_catalog.implemented (Ii_core.Im_catalog.find af) then "yes" else "no");
            ])
          (prevalence ())));
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Ii_core.Report.table ~title:"Field study: CVEs per component"
       ~header:[ "Component"; "CVEs" ]
       (List.map (fun (c, n) -> [ c; string_of_int n ]) (by_component ())));
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf
       "Injector coverage of the observed threat landscape: %.1f%% of classifications.\n"
       (100. *. injectable_share ()));
  Buffer.add_string buf "Risk-driven campaign plan (top five prevalent, injectable):\n";
  List.iter
    (fun (af, entry) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-44s -> %d intrusion model(s)\n" (Af.to_string af)
           (List.length entry.Ii_core.Im_catalog.models)))
    (campaign_plan ~top:5);
  Buffer.contents buf
