type gpa = int64

type fault = Ept_violation of gpa | Guest_not_present of int | Guest_protection

(* The EPT is a normal 4-level table over the guest-physical space, so
   the machine walker applies verbatim (guest-physical plays the role
   of the virtual address). *)
let ept_translate mem ~ept_root gpa =
  match Paging.walk mem ~cr3:ept_root gpa with
  | Ok tr -> Ok tr.Paging.t_maddr
  | Error _ -> Error (Ept_violation gpa)

let guest_index level va =
  match level with
  | 4 -> Addr.l4_index va
  | 3 -> Addr.l3_index va
  | 2 -> Addr.l2_index va
  | 1 -> Addr.l1_index va
  | _ -> invalid_arg "Nested.guest_index"

let translate mem ~ept_root ~guest_cr3_gpa ~write va =
  let va = Addr.canonical va in
  let read_gpa_u64 gpa =
    match ept_translate mem ~ept_root gpa with
    | Ok ma -> Ok (Phys_mem.read_u64 mem ma)
    | Error f -> Error f
  in
  let rec walk level table_gpa rw =
    let entry_gpa = Int64.add table_gpa (Int64.of_int (8 * guest_index level va)) in
    match read_gpa_u64 entry_gpa with
    | Error f -> Error f
    | Ok entry ->
        if not (Pte.is_present entry) then Error (Guest_not_present level)
        else
          let rw = rw && Pte.test Pte.Rw entry in
          let next_gpa = Addr.maddr_of_mfn (Pte.mfn entry) in
          if level = 1 then
            if write && not rw then Error Guest_protection
            else
              let leaf_gpa = Int64.add next_gpa (Int64.of_int (Addr.page_offset va)) in
              ept_translate mem ~ept_root leaf_gpa
          else walk (level - 1) next_gpa rw
  in
  walk 4 (Addr.align_down guest_cr3_gpa) true

let map_gpa mem ~alloc ~ept_root gpa mfn =
  let gpa = Addr.canonical gpa in
  let rec go level table_mfn =
    let index = guest_index level gpa in
    let frame = Phys_mem.frame mem table_mfn in
    if level = 1 then
      Frame.set_entry frame index (Pte.make ~mfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ])
    else
      let entry = Frame.get_entry frame index in
      let next =
        if Pte.is_present entry then Pte.mfn entry
        else begin
          let fresh = alloc () in
          Frame.set_entry frame index
            (Pte.make ~mfn:fresh ~flags:[ Pte.Present; Pte.Rw; Pte.User ]);
          fresh
        end
      in
      go (level - 1) next
  in
  go 4 ept_root
