lib/kvm/nested.ml: Addr Frame Int64 Paging Phys_mem Pte
