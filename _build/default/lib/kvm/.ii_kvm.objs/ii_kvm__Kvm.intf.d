lib/kvm/kvm.mli: Addr Errno Nested Phys_mem
