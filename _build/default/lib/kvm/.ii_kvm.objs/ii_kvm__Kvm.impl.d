lib/kvm/kvm.ml: Addr Buffer Bytes Errno Frame Idt Int64 Layout Nested Phys_mem Printf Pte String
