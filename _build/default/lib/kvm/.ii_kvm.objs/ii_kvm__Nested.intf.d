lib/kvm/nested.mli: Addr Phys_mem
