(** A minimal KVM-style hardware-assisted hypervisor — the "hypervisor
    B" of §IX-A's cross-system scenario.

    The architecture differs from the Xen PV substrate on purpose:
    - guests own their page tables outright (no hypervisor validation
      of guest entries — isolation comes from the EPT instead);
    - the guest's IDT lives in {e guest} memory, so corrupting it harms
      only that guest;
    - the host-critical control structure is the per-VM VMCS, held in
      host memory: corrupting it makes the next VM entry fail and KVM
      kills the VM — the host survives.

    The same intrusion model ("corrupt a descriptor-table handler")
    therefore has a different blast radius here than on Xen, which is
    exactly the kind of finding cross-system injection exists to
    surface. The injector is an ioctl-style host interface
    ({!arbitrary_access}) with the same four actions as the Xen
    prototype, so test scripts port across systems. *)

type vm_state = Vm_running | Vm_crashed of string

type vm = {
  vm_id : int;
  vm_name : string;
  ept_root : Addr.mfn;
  vmcs_mfn : Addr.mfn;  (** host-owned control structure *)
  guest_pages : int;
  guest_cr3_gpa : Nested.gpa;
  idt_gpa : Nested.gpa;  (** the guest's own IDT, in guest memory *)
  mutable state : vm_state;
}

type t

val boot : frames:int -> t
val mem : t -> Phys_mem.t
val console : t -> string list
val vms : t -> vm list

val create_vm : t -> name:string -> pages:int -> vm
(** Guest-physical pages 0..pages-1 mapped through a fresh EPT; a
    kernel-style guest address space built {e by the guest} in its own
    memory; a guest IDT at a fixed guest-physical page; a VMCS in host
    memory. *)

val vmcs_magic : int64
val vmcs_entry_handler : int64
(** The legitimate VMCS fields [vm_entry] checks. *)

val vm_entry : t -> vm -> (unit, string) result
(** Run the VM for a slice: validates the VMCS first; corruption fails
    the entry and kills the VM ("KVM: VM-entry failed"). *)

val deliver_guest_fault : t -> vm -> vector:int -> (unit, string) result
(** Deliver an exception through the {e guest's} IDT: a corrupted gate
    panics the guest kernel (the VM), never the host. *)

val guest_read_u64 : t -> vm -> Addr.vaddr -> (int64, Nested.fault) result
val guest_write_u64 : t -> vm -> Addr.vaddr -> int64 -> (unit, Nested.fault) result
(** Guest accesses through the full two-dimensional walk. *)

val gpa_to_maddr : t -> vm -> Nested.gpa -> (Addr.maddr, Nested.fault) result

(** {1 The KVM injector (ioctl-style)} *)

type action = Read_host_linear | Write_host_linear | Read_host_physical | Write_host_physical

val arbitrary_access :
  t -> addr:int64 -> action -> data:bytes -> (bytes option, Errno.t) result
(** The host-side injector: same action surface as the Xen hypercall
    prototype ([linear] resolves through the host direct map). Write
    actions consume [data]; read actions return bytes of
    [Bytes.length data]. *)
