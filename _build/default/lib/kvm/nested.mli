(** Two-dimensional (nested) paging — the KVM/EPT memory architecture.

    Unlike Xen PV's direct paging (guest tables hold machine frame
    numbers, validated by the hypervisor), a hardware-assisted
    hypervisor gives each VM its own {e guest-physical} address space:
    guest page tables hold guest-physical frame numbers, and a second,
    hypervisor-owned table (the EPT) maps guest-physical to
    host-physical. Every step of the guest walk is itself translated
    through the EPT.

    The EPT reuses the 4-level walker ({!Ii_machine.Paging}) over
    guest-physical addresses; the guest dimension is walked here, with
    each table pointer resolved through the EPT first. *)

type gpa = int64
(** Guest-physical address. *)

type fault =
  | Ept_violation of gpa  (** no EPT mapping for this guest-physical page *)
  | Guest_not_present of int  (** guest walk stopped at this level *)
  | Guest_protection  (** guest-level permission denial *)

val ept_translate : Phys_mem.t -> ept_root:Addr.mfn -> gpa -> (Addr.maddr, fault) result
(** One-dimensional: guest-physical to host-physical through the EPT. *)

val translate :
  Phys_mem.t ->
  ept_root:Addr.mfn ->
  guest_cr3_gpa:gpa ->
  write:bool ->
  Addr.vaddr ->
  (Addr.maddr, fault) result
(** Full two-dimensional walk: guest virtual -> guest physical (via the
    guest's own tables, themselves read through the EPT) -> host
    physical. *)

val map_gpa :
  Phys_mem.t -> alloc:(unit -> Addr.mfn) -> ept_root:Addr.mfn -> gpa -> Addr.mfn ->
  unit
(** Install an EPT mapping (allocating intermediate EPT tables from the
    host as needed). *)
