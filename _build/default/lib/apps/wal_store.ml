type t = { k : Kernel.t; wal : Addr.pfn; data : Addr.pfn; n_slots : int }

let checksum_magic = 0x5EED_5EED_5EED_5EEDL
let checksum ~key ~value = Int64.logxor (Int64.logxor key value) checksum_magic
let slot_size = 32

let create k ?(wal_pfn = 40) ?(data_pfn = 41) ?(slots = 16) () =
  if slots <= 0 || slots * slot_size > Addr.page_size then invalid_arg "Wal_store.create";
  { k; wal = wal_pfn; data = data_pfn; n_slots = slots }

let slots t = t.n_slots
let wal_pfn t = t.wal
let data_pfn t = t.data

let field_addr page slot off =
  Int64.add (Domain.kernel_vaddr_of_pfn page) (Int64.of_int ((slot * slot_size) + off))

let write_field t page slot off v =
  match Kernel.write_u64 t.k (field_addr page slot off) v with
  | Ok () -> Ok ()
  | Error _ -> Error "store page unreachable"

let read_field t page slot off =
  match Kernel.read_u64 t.k (field_addr page slot off) with
  | Ok v -> Some v
  | Error _ -> None

let check_slot t slot = if slot < 0 || slot >= t.n_slots then Error "slot out of range" else Ok ()

let write_record t page slot ~key ~value ~committed =
  let ( let* ) = Result.bind in
  let* () = check_slot t slot in
  let* () = write_field t page slot 0 key in
  let* () = write_field t page slot 8 value in
  let* () = write_field t page slot 16 (checksum ~key ~value) in
  write_field t page slot 24 (if committed then 1L else 0L)

let begin_only t ~slot ~key ~value = write_record t t.wal slot ~key ~value ~committed:false

let put t ~slot ~key ~value =
  let ( let* ) = Result.bind in
  let* () = write_record t t.wal slot ~key ~value ~committed:false in
  let* () = write_record t t.data slot ~key ~value ~committed:true in
  write_record t t.wal slot ~key ~value ~committed:true

type record = { r_key : int64; r_value : int64; r_sum : int64; r_committed : bool }

let read_record t page slot =
  match
    (read_field t page slot 0, read_field t page slot 8, read_field t page slot 16,
     read_field t page slot 24)
  with
  | Some r_key, Some r_value, Some r_sum, Some c ->
      Some { r_key; r_value; r_sum; r_committed = c = 1L }
  | _ -> None

let record_valid r = r.r_sum = checksum ~key:r.r_key ~value:r.r_value

let get t ~slot =
  match read_record t t.data slot with
  | Some r when r.r_committed && record_valid r -> Some (r.r_key, r.r_value)
  | Some _ | None -> None

type verdict = { atomicity : bool; consistency : bool; durability : bool }

let audit t =
  let v = ref { atomicity = true; consistency = true; durability = true } in
  for slot = 0 to t.n_slots - 1 do
    match (read_record t t.wal slot, read_record t t.data slot) with
    | Some w, Some d when w.r_committed ->
        if not (record_valid w) then v := { !v with consistency = false };
        if not (record_valid d) then v := { !v with consistency = false };
        if d.r_key <> w.r_key || d.r_value <> w.r_value then v := { !v with atomicity = false };
        if d.r_value = 0L && w.r_value <> 0L then v := { !v with durability = false }
    | _ -> ()
  done;
  !v

let recover t =
  let repaired = ref 0 in
  for slot = 0 to t.n_slots - 1 do
    match (read_record t t.wal slot, read_record t t.data slot) with
    | Some w, Some d when w.r_committed && record_valid w ->
        if (not (record_valid d)) || d.r_key <> w.r_key || d.r_value <> w.r_value then begin
          match write_record t t.data slot ~key:w.r_key ~value:w.r_value ~committed:true with
          | Ok () -> incr repaired
          | Error _ -> ()
        end
    | _ -> ()
  done;
  !repaired

let pp_verdict ppf { atomicity; consistency; durability } =
  let mark b = if b then "ok" else "VIOLATED" in
  Format.fprintf ppf "atomicity=%s consistency=%s durability=%s" (mark atomicity)
    (mark consistency) (mark durability)
