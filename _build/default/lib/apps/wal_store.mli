(** A write-ahead-logged key/value store running inside a guest — the
    "transactional business-critical system on a public cloud" of
    §III-C, built so its ACID properties can be audited under injected
    hypervisor intrusions.

    Records live in two of the guest's own pages (a WAL page and a data
    page), written through the guest's normal memory path. Every record
    carries a checksum; transactions go intent → data → commit mark, so
    the audit can distinguish atomicity, consistency and durability
    damage; and {!recover} replays committed WAL records over divergent
    data, measuring how much of an intrusion the application layer can
    undo by itself. *)

type t

val create : Kernel.t -> ?wal_pfn:Addr.pfn -> ?data_pfn:Addr.pfn -> ?slots:int -> unit -> t
(** Defaults: WAL at pfn 40, data at pfn 41, 16 slots. *)

val slots : t -> int
val wal_pfn : t -> Addr.pfn
val data_pfn : t -> Addr.pfn
val checksum : key:int64 -> value:int64 -> int64

val put : t -> slot:int -> key:int64 -> value:int64 -> (unit, string) result
(** A full transaction: WAL intent, data write, WAL commit mark. *)

val begin_only : t -> slot:int -> key:int64 -> value:int64 -> (unit, string) result
(** Intent without data or commit — an in-flight transaction. *)

val get : t -> slot:int -> (int64 * int64) option
(** The slot's committed key/value, [None] when absent or the data
    record fails its checksum. *)

type verdict = { atomicity : bool; consistency : bool; durability : bool }

val audit : t -> verdict
(** Check every committed WAL record against the data page. *)

val recover : t -> int
(** Replay committed, checksum-valid WAL records over divergent data
    records. Returns slots repaired. Damage to the WAL itself is not
    recoverable at this layer. *)

val pp_verdict : Format.formatter -> verdict -> unit
