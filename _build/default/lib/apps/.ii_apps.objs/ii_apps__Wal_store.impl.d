lib/apps/wal_store.ml: Addr Domain Format Int64 Kernel Result
