lib/apps/wal_store.mli: Addr Format Kernel
