examples/cross_hypervisor.mli:
