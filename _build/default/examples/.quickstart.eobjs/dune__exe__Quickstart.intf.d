examples/quickstart.mli:
