examples/acid_cloud.ml: Addr Domain Errno Format Ii_apps Injector Int64 Kernel List Option Printf Testbed Version
