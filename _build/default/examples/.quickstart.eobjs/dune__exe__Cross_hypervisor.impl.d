examples/cross_hypervisor.ml: Cross_system Format Ii_exploits Intrusion_model
