examples/toolstack_tour.ml: Addr Builder Bytes Domain Domctl Errno Hv List Option Phys_mem Printf Sched Snapshot Version Xenstore
