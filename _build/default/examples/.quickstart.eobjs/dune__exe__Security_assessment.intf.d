examples/security_assessment.mli:
