examples/porting_states.ml: Abusive_functionality Errno Erroneous_state Format Idt Ii_advisory Injector Int64 Intrusion_model Kernel List Monitor Option Printf String Testbed Version
