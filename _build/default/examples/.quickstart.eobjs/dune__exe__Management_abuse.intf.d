examples/management_abuse.mli:
