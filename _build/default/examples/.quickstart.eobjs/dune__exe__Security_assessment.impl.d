examples/security_assessment.ml: Campaign Ii_exploits List Printf Version
