examples/quickstart.ml: Abusive_functionality Campaign Errno Erroneous_state Format Hv Idt Injector Int64 Intrusion_model Kernel List Pipeline Printf Testbed Version
