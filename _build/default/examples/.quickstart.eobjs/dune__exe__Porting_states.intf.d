examples/porting_states.mli:
