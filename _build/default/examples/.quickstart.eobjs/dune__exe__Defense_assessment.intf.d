examples/defense_assessment.mli:
