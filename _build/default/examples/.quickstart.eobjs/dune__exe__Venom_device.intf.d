examples/venom_device.mli:
