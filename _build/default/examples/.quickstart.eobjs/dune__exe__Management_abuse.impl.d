examples/management_abuse.ml: Domain Errno Erroneous_state Hv Kernel List Monitor Printf String Testbed Toolstack Version Xenstore
