examples/acid_cloud.mli:
