examples/defense_assessment.ml: Defense_eval Hv Idt Ii_exploits Injector Int64 Kernel List Printf Pt_guard String Testbed Version
