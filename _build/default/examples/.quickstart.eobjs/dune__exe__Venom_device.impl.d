examples/venom_device.ml: Fdc Format Ii_devicemodel Intrusion_model List Printf Venom_study
