examples/toolstack_tour.mli:
