(* A tour of the toolstack substrate: domain lifecycle, ballooning,
   save/restore — and why each of these is an injection surface.

   Run with:  dune exec examples/toolstack_tour.exe *)

let show_domains hv =
  List.iter
    (fun (id, name, pages) -> Printf.printf "  d%-2d %-10s %4d pages\n" id name pages)
    (Domctl.list_domains hv)

let () =
  let hv = Hv.boot ~version:Version.V4_13 ~frames:4096 in
  let _dom0 = Builder.create_domain hv ~name:"dom0" ~privileged:true ~pages:128 in
  let web = Builder.create_domain hv ~name:"web" ~privileged:false ~pages:96 in
  let db = Builder.create_domain hv ~name:"db" ~privileged:false ~pages:96 in
  print_endline "xl list:";
  show_domains hv;

  (* pause/unpause *)
  ignore (Domctl.pause hv web);
  Printf.printf "\npaused 'web'; scheduler outcomes over one round: ";
  for _ = 1 to 3 do
    match Hv.sched_tick hv with
    | Sched.Scheduled d -> Printf.printf "d%d " d
    | Sched.Cpu_stalled _ -> print_string "stall "
    | Sched.Idle -> print_string "idle "
  done;
  print_newline ();
  ignore (Domctl.unpause hv web);

  (* balloon via the management plane *)
  Xenstore.inject_write hv.Hv.xenstore (Xenstore.domain_path db.Domain.id "memory/target") "70";
  print_endline "\nset db memory/target = 70; (a kernel tick would now balloon it down)";

  (* snapshot, destroy, restore *)
  let mfn = Option.get (Domain.mfn_of_pfn db 5) in
  Phys_mem.write_string hv.Hv.mem (Addr.maddr_of_mfn mfn) "customer-table-rows";
  let snap = Snapshot.capture hv db in
  Printf.printf "\nsnapshot of 'db': %d data pages, %d bytes payload\n"
    (List.length snap.Snapshot.s_data)
    (Snapshot.data_bytes snap);
  (match Domctl.destroy hv db with
  | Ok r -> Printf.printf "destroyed 'db': %d frames freed\n" r.Domctl.freed
  | Error e -> Printf.printf "destroy failed: %s\n" (Errno.to_string e));
  let db' = Snapshot.restore hv snap in
  let mfn' = Option.get (Domain.mfn_of_pfn db' 5) in
  Printf.printf "restored as d%d; page 5 reads: %S\n" db'.Domain.id
    (Bytes.to_string (Phys_mem.read_bytes hv.Hv.mem (Addr.maddr_of_mfn mfn') 19));

  print_endline "\nxl list:";
  show_domains hv;

  print_endline
    "\nEvery operation above is also an injection surface: a forged memory/target\n\
     balloons a victim away (management-interface IM), and a snapshot carries any\n\
     erroneous state living in data pages onto the next host (see the lifecycle\n\
     test suite for both, made executable)."
