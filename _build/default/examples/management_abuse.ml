(* The management-interface intrusion model (§IX future work,
   implemented): a compromised toolstack — or a XenStore vulnerability —
   shrinks a victim's memory target; the guest's own balloon driver then
   faithfully gives its pages away. The erroneous state is a tampered
   XenStore node; the violation is availability loss, observed by the
   monitor without any cooperation from the victim.

   Run with:  dune exec examples/management_abuse.exe *)

let () =
  let tb = Testbed.create Version.V4_13 in
  let victim = tb.Testbed.victim in
  let victim_id = Kernel.domid victim in
  let path = Xenstore.domain_path victim_id "memory/target" in

  Printf.printf "victim %s: %d pages, memory/target = %s\n" (Kernel.hostname victim)
    (List.length (Domain.populated_pfns (Kernel.dom victim)))
    (match Toolstack.memory_target tb.Testbed.hv ~domid:victim_id with
    | Some n -> string_of_int n
    | None -> "?");

  (* 1. the attacker guest cannot reach the node through the API *)
  (match Toolstack.set_memory_target tb.Testbed.attacker ~domid:victim_id ~pages:16 with
  | Error e -> Printf.printf "attacker's xenstore write refused: %s (as it must be)\n" (Errno.to_string e)
  | Ok () -> print_endline "BUG: unprivileged write accepted");

  (* 2. the intrusion model: inject the tampered node directly *)
  let before = Monitor.snapshot tb in
  Xenstore.inject_write tb.Testbed.hv.Hv.xenstore path "40";
  let audit =
    Erroneous_state.audit tb.Testbed.hv
      (Erroneous_state.Xenstore_tampered { path; legitimate = "96" })
  in
  Printf.printf "\ninjected erroneous state: %s\n"
    (String.concat "; " audit.Erroneous_state.evidence);

  (* 3. the victim schedules; its balloon driver honours the forged target *)
  Testbed.tick_all tb;
  Printf.printf "after one scheduling round: victim has %d pages\n"
    (List.length (Domain.populated_pfns (Kernel.dom victim)));
  List.iter (fun l -> Printf.printf "  victim dmesg: %s\n" l)
    (List.filteri (fun i _ -> i < 5) (Kernel.klog victim));

  (* 4. the monitor reports the violation *)
  let after = Monitor.snapshot tb in
  print_newline ();
  match Monitor.violations ~before ~after with
  | [] -> print_endline "no violation observed (unexpected)"
  | vs -> List.iter (fun v -> Printf.printf "violation: %s\n" (Monitor.violation_to_string v)) vs
