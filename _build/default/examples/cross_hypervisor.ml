(* Cross-system intrusion injection (§IX-A): "imagine that cloud
   provider X wants to evaluate how its virtualized environment that
   uses hypervisor A would be affected by a vulnerability similar to
   one discovered in an hypervisor B. This can be achieved by injecting
   erroneous states from vulnerabilities in B using an intrusion
   injector in A."

   Here the portable intrusion model is the XSA-212 class (corrupt a
   descriptor-table handler). Each system provides its own injector —
   the Xen arbitrary_access hypercall, the KVM ioctl — and the
   architectures give the same conceptual state three different blast
   radii.

   Run with:  dune exec examples/cross_hypervisor.exe *)

open Ii_exploits

let () =
  Format.printf "portable intrusion model:@.%a@.@." Intrusion_model.pp_long Cross_system.im;
  let rows = Cross_system.run () in
  print_endline (Cross_system.render rows);
  print_newline ();
  print_endline
    "Reading the table: on Xen PV the descriptor table is host state, so the injected\n\
     state takes the whole machine down. On the KVM-style host the guest owns its IDT\n\
     (only the guest dies) and the host-critical analogue, the VMCS, fails closed: the\n\
     VM is killed at the next entry and every bystander keeps running. Same intrusion\n\
     model, three different security postures — measured without possessing a single\n\
     working exploit for either system."
