(* Evaluating a defence mechanism with intrusion injection — the first
   applicability scenario of §III-C: "Assuming a deployed mechanism to
   prevent unauthorized modification of page tables, the effectiveness
   of this mechanism can be tested using our approach."

   The mechanism is a page-table integrity guard (golden copies of all
   table pages + the IDT + the M2P, refreshed along the hypervisor's
   validated update stream, audited periodically). The test drives the
   four evaluation erroneous states into the *vulnerable* Xen 4.6 —
   something one could never arrange on demand with real exploits alone
   — and measures what each guard deployment actually stops.

   Run with:  dune exec examples/defense_assessment.exe *)

open Ii_exploits

let () =
  print_endline (Defense_eval.render (Defense_eval.matrix ()));
  print_newline ();

  (* A narrated single run showing the guard working in real time. *)
  print_endline "Narrated: detect+repair racing the XSA-212-crash state";
  let tb = Testbed.create Version.V4_6 in
  Injector.install tb.Testbed.hv;
  let guard = Pt_guard.deploy tb.Testbed.hv Pt_guard.Detect_and_repair in
  Pt_guard.enable_periodic guard ~every:1;
  Printf.printf "  guard deployed over %d frames (page tables, IDT, M2P)\n"
    (List.length (Pt_guard.protected_frames guard));
  let k = tb.Testbed.attacker in
  let gate = Int64.add (Kernel.sidt k) (Int64.of_int (Idt.handler_offset Idt.vector_page_fault)) in
  (match Injector.write_u64 k ~addr:gate ~action:Injector.Arbitrary_write_linear 0xbadL with
  | Ok () -> print_endline "  injected: IDT page-fault gate overwritten"
  | Error _ -> print_endline "  injection failed");
  Pt_guard.on_tick guard;
  Printf.printf "  periodic audit ran (%d total); detections so far: %d\n"
    (Pt_guard.audits_run guard)
    (List.length (Pt_guard.detections guard));
  ignore (Kernel.read_u64 k 0xdead_0000L);
  Printf.printf "  attacker triggers a page fault... host crashed: %b\n"
    (Hv.is_crashed tb.Testbed.hv);
  print_newline ();
  print_endline "--- Xen console ---";
  List.iter print_endline
    (List.filter
       (fun l ->
         let rec c i = i + 8 <= String.length l && (String.sub l i 8 = "pt-guard" || c (i + 1)) in
         c 0)
       (Hv.console_lines tb.Testbed.hv));
  print_newline ();
  print_endline
    "Without intrusion injection this measurement needs a working exploit for every state;\n\
     with it, the guard's coverage is measured directly — including against states whose\n\
     vulnerabilities are not known yet."
