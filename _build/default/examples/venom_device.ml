(* The VENOM illustration of §III, executable: the same erroneous state
   (corrupted FDC request-handler pointer in the device model) produced
   two ways — by the real FIFO overflow on a vulnerable build, and by
   the injector on any build — and assessed against a build with
   handler validation.

   Run with:  dune exec examples/venom_device.exe *)

open Ii_devicemodel

let () =
  Format.printf "intrusion model:@.%a@.@." Intrusion_model.pp_long Venom_study.im;
  let outcomes = Venom_study.matrix () in
  print_endline (Venom_study.render outcomes);
  print_newline ();
  print_endline "Narrated run (vulnerable build, real exploit):";
  let o = Venom_study.run { Fdc.venom_vulnerable = true; handler_validation = false } Venom_study.Exploit in
  List.iter (fun l -> Printf.printf "  %s\n" l) o.Venom_study.o_log;
  print_newline ();
  print_endline "Narrated run (fixed build, injection — same state, same verdict):";
  let o = Venom_study.run { Fdc.venom_vulnerable = false; handler_validation = false } Venom_study.Injection in
  List.iter (fun l -> Printf.printf "  %s\n" l) o.Venom_study.o_log;
  print_newline ();
  print_endline "Narrated run (validated build, injection — the state is handled):";
  let o = Venom_study.run { Fdc.venom_vulnerable = false; handler_validation = true } Venom_study.Injection in
  List.iter (fun l -> Printf.printf "  %s\n" l) o.Venom_study.o_log
