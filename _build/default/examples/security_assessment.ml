(* Security assessment across versions (the paper's RQ3 and the
   cloud-provider scenario of §III-C): inject the same erroneous states
   into different Xen versions and compare how each handles them.

   Run with:  dune exec examples/security_assessment.exe *)

let () =
  print_endline "Injecting the four use-case erroneous states into every Xen version...";
  print_newline ();
  let rows =
    Campaign.run_matrix Ii_exploits.All_exploits.use_cases ~versions:Version.all
      ~modes:[ Campaign.Injection ]
  in
  print_endline (Campaign.table3 rows);
  print_newline ();

  (* Score each version: how many injected states did it handle? *)
  let scores =
    List.map
      (fun version ->
        let mine = List.filter (fun r -> r.Campaign.r_version = version) rows in
        let handled =
          List.length (List.filter (fun r -> r.Campaign.r_state && not (Campaign.violated r)) mine)
        in
        (version, List.length mine, handled))
      Version.all
  in
  print_endline "Assessment: erroneous states handled per version";
  List.iter
    (fun (version, total, handled) ->
      Printf.printf "  Xen %-5s handled %d of %d injected states%s\n" (Version.to_string version)
        handled total
        (if handled > 0 then "  <- hardening visible" else ""))
    scores;
  print_newline ();

  (* The paper's §VIII conclusion, recomputed from the data. *)
  let handled_of v = match List.find_opt (fun (v', _, _) -> v' = v) scores with
    | Some (_, _, h) -> h
    | None -> 0
  in
  if handled_of Version.V4_13 > handled_of Version.V4_8 then
    print_endline
      "Conclusion: Xen 4.13 handles erroneous states that 4.6/4.8 do not — the post-XSA-213\n\
       hardening (removal of the 512GiB RWX linear-page-table window) reflects a different\n\
       security level, exactly as §VIII reports."
  else print_endline "Unexpected: no hardening difference observed."
