(* "Porting erroneous states" (§III-C): evaluate how hypervisor A would
   be affected by a vulnerability class observed in hypervisor B, by
   modelling B's advisory as an intrusion model and injecting the
   corresponding erroneous state into A.

   Here the foreign advisory is a KVM-style device-model escape
   (VENOM-class: CVE-2015-3456 affected QEMU under KVM, Xen and
   VirtualBox alike). We derive its abusive functionality from the
   advisory corpus, port it to a descriptor-table corruption in Xen,
   and run the injection across all three versions.

   Run with:  dune exec examples/porting_states.exe *)

module Af = Abusive_functionality

let () =
  (* 1. Start from the foreign advisory's classification. *)
  let venom = Option.get (Ii_advisory.Corpus.find_xsa 133) in
  Printf.printf "foreign advisory: %s (%s)\n" venom.Ii_advisory.Corpus.cve
    venom.Ii_advisory.Corpus.title;
  let afs = Ii_advisory.Classify.classify venom in
  Printf.printf "classified abusive functionality: %s\n\n"
    (String.concat ", " (List.map Af.to_string afs));

  (* 2. Instantiate an IM for the *target* system (Xen) preserving the
        abusive functionality but mapping the interface. *)
  let im =
    Intrusion_model.make ~name:"IM-ported-venom"
      ~source:Intrusion_model.Unprivileged_guest
      ~interface:(Intrusion_model.Hypercall_interface "arbitrary_access")
      ~target:Intrusion_model.Memory_management_component
      ~functionality:(List.hd afs)
      ~representative_of:[ venom.Ii_advisory.Corpus.cve ]
      "Ported from a device-model overflow: unauthorized write into hypervisor-held memory."
  in
  Format.printf "ported intrusion model:@.%a@.@." Intrusion_model.pp_long im;

  (* 3. Inject the corresponding erroneous state (corruption of memory
        the hypervisor relies on — here, a descriptor-table handler)
        into each Xen version and compare. *)
  List.iter
    (fun version ->
      let tb = Testbed.create version in
      Injector.install tb.Testbed.hv;
      let k = tb.Testbed.attacker in
      let before = Monitor.snapshot tb in
      let gate =
        Int64.add (Kernel.sidt k) (Int64.of_int (Idt.handler_offset Idt.vector_page_fault))
      in
      (match Injector.write_u64 k ~addr:gate ~action:Injector.Arbitrary_write_linear 0x1337L with
      | Ok () -> ()
      | Error e -> failwith (Errno.to_string e));
      ignore (Kernel.read_u64 k 0xdead_0000L);
      let audit =
        Erroneous_state.audit tb.Testbed.hv
          (Erroneous_state.Idt_gate_corrupted { vector = Idt.vector_page_fault })
      in
      let after = Monitor.snapshot tb in
      let violations = Monitor.violations ~before ~after in
      Printf.printf "Xen %-5s state=%-7s violations=[%s]\n" (Version.to_string version)
        (if audit.Erroneous_state.holds then "present" else "absent")
        (String.concat "; " (List.map Monitor.violation_to_string violations)))
    Version.all;
  print_newline ();
  print_endline
    "The ported state injects identically everywhere: for this class, none of the\n\
     versions carries a specific defence — a finding a cloud provider could only\n\
     obtain by porting the foreign vulnerability's *effects*, since the foreign\n\
     exploit itself does not run against Xen."
