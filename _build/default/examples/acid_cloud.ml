(* Assessing a transactional system under hypervisor intrusions — the
   §III-C scenario: "a transactional business-critical system that runs
   on a public cloud. How can one assess the impact of successful
   intrusions on the hypervisor in the ability of the transactional
   system to ensure the ACID properties?"

   The WAL-based store (Ii_apps.Wal_store) runs inside the victim
   guest. The attacker cannot touch its pages through any legitimate
   interface, so instead of waiting for a cross-domain exploit we
   *inject* the erroneous states intrusions would cause, audit which
   ACID properties broke, and measure how much the store's own WAL
   recovery can undo.

   Run with:  dune exec examples/acid_cloud.exe *)

module Store = Ii_apps.Wal_store

type scenario = { s_name : string; s_inject : Testbed.t -> Store.t -> unit }

let frame_addr (tb : Testbed.t) pfn off =
  let mfn = Option.get (Domain.mfn_of_pfn (Kernel.dom tb.Testbed.victim) pfn) in
  Int64.add (Addr.maddr_of_mfn mfn) (Int64.of_int off)

let inject_word tb addr v =
  match
    Injector.write_u64 tb.Testbed.attacker ~addr ~action:Injector.Arbitrary_write_physical v
  with
  | Ok () -> ()
  | Error e -> failwith (Errno.to_string e)

let scenarios =
  [
    { s_name = "baseline (no intrusion)"; s_inject = (fun _ _ -> ()) };
    {
      s_name = "corrupt a committed data value";
      s_inject =
        (fun tb st -> inject_word tb (frame_addr tb (Store.data_pfn st) ((3 * 32) + 8)) 0x666L);
    };
    {
      s_name = "tear a record (bad checksum)";
      s_inject =
        (fun tb st -> inject_word tb (frame_addr tb (Store.data_pfn st) ((5 * 32) + 16)) 0L);
    };
    {
      s_name = "erase a committed value";
      s_inject =
        (fun tb st -> inject_word tb (frame_addr tb (Store.data_pfn st) ((7 * 32) + 8)) 0L);
    };
    {
      s_name = "forge a WAL commit mark";
      s_inject =
        (fun tb st ->
          let base = frame_addr tb (Store.wal_pfn st) (9 * 32) in
          inject_word tb base 9L;
          inject_word tb (Int64.add base 8L) 77L;
          inject_word tb (Int64.add base 16L) (Store.checksum ~key:9L ~value:77L);
          inject_word tb (Int64.add base 24L) 1L);
    };
  ]

let () =
  Printf.printf "%-36s %-44s %-9s %-44s\n" "intrusion scenario" "audit after intrusion" "repaired"
    "audit after WAL recovery";
  List.iter
    (fun { s_name; s_inject } ->
      let tb = Testbed.create Version.V4_13 in
      Injector.install tb.Testbed.hv;
      let store = Store.create tb.Testbed.victim () in
      for i = 0 to 7 do
        match Store.put store ~slot:i ~key:(Int64.of_int (100 + i)) ~value:(Int64.of_int (1000 + i)) with
        | Ok () -> ()
        | Error e -> failwith e
      done;
      ignore (Store.begin_only store ~slot:8 ~key:108L ~value:1008L);
      s_inject tb store;
      let before = Format.asprintf "%a" Store.pp_verdict (Store.audit store) in
      let repaired = Store.recover store in
      let after = Format.asprintf "%a" Store.pp_verdict (Store.audit store) in
      Printf.printf "%-36s %-44s %-9d %-44s\n" s_name before repaired after)
    scenarios;
  print_newline ();
  print_endline
    "Data-page corruption is detected by checksums and undone by WAL replay; a forged\n\
     commit mark in the WAL itself defeats the application layer entirely. Exactly the\n\
     kind of finding §III-C says intrusion injection should enable for systems that\n\
     merely run *on top of* the virtualized infrastructure."
