(* Quickstart: boot a simulated Xen host, install the intrusion
   injector, drive one erroneous state in, and watch the monitor decide
   whether a security violation followed.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A testbed: Xen 4.8, dom0 ("xen3"), a victim guest and an
        attacker-controlled guest — the paper's §VI environment. *)
  let tb = Testbed.create Version.V4_8 in
  Printf.printf "booted Xen %s with %d domains\n"
    (Version.to_string tb.Testbed.hv.Hv.version)
    (List.length tb.Testbed.hv.Hv.domains);

  (* 2. Install the injector: a new hypercall in the call table. *)
  Injector.install tb.Testbed.hv;
  Printf.printf "injector installed as hypercall %d (%s)\n\n" Injector.hypercall_number
    Injector.hypercall_name;

  (* 3. Pick an intrusion model and run the Fig-2 pipeline: corrupt the
        page-fault gate of the IDT, the XSA-212-crash erroneous state. *)
  let im =
    Intrusion_model.make ~name:"IM-write-arbitrary-memory"
      ~source:Intrusion_model.Unprivileged_guest
      ~interface:(Intrusion_model.Hypercall_interface "arbitrary_access")
      ~target:Intrusion_model.Memory_management_component
      ~functionality:Abusive_functionality.Write_unauthorized_arbitrary_memory
      ~representative_of:[ "XSA-212" ]
      "Overwrite a descriptor-table handler from an unprivileged guest."
  in
  let inject (tb : Testbed.t) =
    let k = tb.Testbed.attacker in
    let gate =
      Int64.add (Kernel.sidt k) (Int64.of_int (Idt.handler_offset Idt.vector_page_fault))
    in
    (match Injector.write_u64 k ~addr:gate ~action:Injector.Arbitrary_write_linear 0xbad_c0deL with
    | Ok () -> ()
    | Error e -> failwith (Errno.to_string e));
    (* activate: any guest page fault now goes through the corrupt gate *)
    ignore (Kernel.read_u64 k 0xdead_0000L);
    {
      Campaign.transcript = [ "IDT page-fault gate overwritten; fault triggered" ];
      states = [ Erroneous_state.Idt_gate_corrupted { vector = Idt.vector_page_fault } ];
      rc = None;
    }
  in
  let trace = Pipeline.run tb ~im ~inject in
  Format.printf "%a@." Pipeline.pp trace;

  (* 4. The Xen console shows what the operator would see. *)
  print_endline "--- Xen console ---";
  List.iter print_endline (Hv.console_lines tb.Testbed.hv)
