test/test_guest.ml: Addr Alcotest Builder Bytes Domain Frame Fs Hv Hypercall Ii_guest Ii_xen Kernel Layout List Netsim Option Phys_mem Process Pte Result Shell String Testbed Version
