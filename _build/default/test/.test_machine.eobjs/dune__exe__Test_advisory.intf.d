test/test_advisory.mli:
