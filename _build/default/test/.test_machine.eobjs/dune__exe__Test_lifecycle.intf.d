test/test_lifecycle.mli:
