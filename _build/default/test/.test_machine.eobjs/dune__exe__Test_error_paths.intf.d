test/test_error_paths.mli:
