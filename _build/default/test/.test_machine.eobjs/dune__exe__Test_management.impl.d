test/test_management.ml: Alcotest Domain Errno Erroneous_state Hv Ii_core Ii_guest Ii_xen Kernel List Monitor Phys_mem Result String Testbed Toolstack Version Xenstore
