test/test_machine.ml: Addr Alcotest Bytes Char Cpu Frame Gen Idt Int64 Layout List Paging Phys_mem Pte QCheck QCheck_alcotest Result
