test/test_perf_engine.mli:
