test/test_devicemodel.ml: Alcotest Blk_study Blkdev Bytes Domain Errno Fdc Ii_core Ii_devicemodel Ii_guest Ii_xen Int64 Kernel List Result String Testbed Venom_study Version
