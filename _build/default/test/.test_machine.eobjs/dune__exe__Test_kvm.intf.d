test/test_kvm.mli:
