test/test_xen.mli:
