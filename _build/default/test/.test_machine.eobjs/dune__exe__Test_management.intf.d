test/test_management.mli:
