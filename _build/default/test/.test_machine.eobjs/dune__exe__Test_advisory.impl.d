test/test_advisory.ml: Abusive_functionality Alcotest Classify Corpus Field_study Float Ii_advisory Ii_core List Printf String
