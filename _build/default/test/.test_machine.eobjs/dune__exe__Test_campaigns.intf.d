test/test_campaigns.mli:
