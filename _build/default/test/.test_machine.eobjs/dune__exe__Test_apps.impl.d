test/test_apps.ml: Addr Alcotest Domain Hv Ii_apps Ii_core Ii_guest Ii_xen Int64 Kernel Option Phys_mem Testbed Version
