test/test_kvm.ml: Addr Alcotest Bytes Errno Idt Ii_core Ii_exploits Ii_kvm Ii_xen Int64 Kvm Layout Lazy List Nested Phys_mem Result String
