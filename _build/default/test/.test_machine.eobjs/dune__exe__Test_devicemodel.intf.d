test/test_devicemodel.mli:
