test/test_campaigns.ml: Alcotest Array Ii_core Ii_xen Int64 List Monitor Prng QCheck QCheck_alcotest Random_campaign String Version
