(* Tests for the guest application layer: the WAL store and its
   behaviour under injected corruption. *)

open Ii_xen
open Ii_guest

module Store = Ii_apps.Wal_store

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh () =
  let tb = Testbed.create Version.V4_13 in
  Ii_core.Injector.install tb.Testbed.hv;
  let store = Store.create tb.Testbed.victim () in
  (tb, store)

let commit_some store n =
  for i = 0 to n - 1 do
    match Store.put store ~slot:i ~key:(Int64.of_int (100 + i)) ~value:(Int64.of_int (1000 + i)) with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  done

let corrupt (tb : Testbed.t) pfn off v =
  let mfn = Option.get (Domain.mfn_of_pfn (Kernel.dom tb.Testbed.victim) pfn) in
  Phys_mem.write_u64 tb.Testbed.hv.Hv.mem (Int64.add (Addr.maddr_of_mfn mfn) (Int64.of_int off)) v

let clean_verdict = { Store.atomicity = true; consistency = true; durability = true }

let test_put_get () =
  let _, store = fresh () in
  commit_some store 8;
  (match Store.get store ~slot:3 with
  | Some (k, v) ->
      Alcotest.(check int64) "key" 103L k;
      Alcotest.(check int64) "value" 1003L v
  | None -> Alcotest.fail "slot 3 missing");
  check_bool "empty slot" true (Store.get store ~slot:12 = None);
  check_bool "clean audit" true (Store.audit store = clean_verdict)

let test_in_flight_transaction_is_invisible () =
  let _, store = fresh () in
  ignore (Store.begin_only store ~slot:0 ~key:1L ~value:2L);
  check_bool "not visible" true (Store.get store ~slot:0 = None);
  check_bool "audit clean" true (Store.audit store = clean_verdict)

let test_slot_bounds () =
  let _, store = fresh () in
  check_bool "negative" true (Store.put store ~slot:(-1) ~key:1L ~value:1L = Error "slot out of range");
  check_bool "too big" true
    (Store.put store ~slot:(Store.slots store) ~key:1L ~value:1L = Error "slot out of range")

let test_data_corruption_detected_and_recovered () =
  let tb, store = fresh () in
  commit_some store 8;
  corrupt tb (Store.data_pfn store) ((3 * 32) + 8) 0x666L;
  let v = Store.audit store in
  check_bool "atomicity broken" false v.Store.atomicity;
  check_bool "consistency broken" false v.Store.consistency;
  check_bool "unreadable while corrupt" true (Store.get store ~slot:3 = None);
  check_int "one slot repaired" 1 (Store.recover store);
  check_bool "clean after recovery" true (Store.audit store = clean_verdict);
  check_bool "value restored" true (Store.get store ~slot:3 = Some (103L, 1003L))

let test_torn_checksum_recovered () =
  let tb, store = fresh () in
  commit_some store 8;
  corrupt tb (Store.data_pfn store) ((5 * 32) + 16) 0L;
  check_bool "consistency broken" false (Store.audit store).Store.consistency;
  check_int "repaired" 1 (Store.recover store);
  check_bool "clean" true (Store.audit store = clean_verdict)

let test_wal_forgery_not_recoverable () =
  let tb, store = fresh () in
  commit_some store 8;
  (* forge a committed WAL record with a valid checksum but no data *)
  let base = 9 * 32 in
  corrupt tb (Store.wal_pfn store) (base + 0) 9L;
  corrupt tb (Store.wal_pfn store) (base + 8) 77L;
  corrupt tb (Store.wal_pfn store) (base + 16) (Store.checksum ~key:9L ~value:77L);
  corrupt tb (Store.wal_pfn store) (base + 24) 1L;
  check_bool "audit broken" true (Store.audit store <> clean_verdict);
  ignore (Store.recover store);
  (* recovery replays the forged record into data: the application now
     holds attacker-chosen state — WAL damage defeats this layer *)
  check_bool "forged record materialized" true (Store.get store ~slot:9 = Some (9L, 77L))

let test_recover_idempotent () =
  let tb, store = fresh () in
  commit_some store 4;
  corrupt tb (Store.data_pfn store) ((2 * 32) + 8) 1L;
  check_int "first pass repairs" 1 (Store.recover store);
  check_int "second pass idle" 0 (Store.recover store)

let () =
  Alcotest.run "apps"
    [
      ( "wal_store",
        [
          Alcotest.test_case "put/get" `Quick test_put_get;
          Alcotest.test_case "in-flight invisible" `Quick test_in_flight_transaction_is_invisible;
          Alcotest.test_case "slot bounds" `Quick test_slot_bounds;
          Alcotest.test_case "data corruption recovered" `Quick
            test_data_corruption_detected_and_recovered;
          Alcotest.test_case "torn checksum recovered" `Quick test_torn_checksum_recovered;
          Alcotest.test_case "wal forgery not recoverable" `Quick test_wal_forgery_not_recoverable;
          Alcotest.test_case "recover idempotent" `Quick test_recover_idempotent;
        ] );
    ]
