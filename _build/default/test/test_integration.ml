(* Cross-library integration tests: the extension intrusion models the
   paper sketches (Keep Page Access via use-after-free and grant-table
   v2 status pages, uncontrolled interrupts), plus end-to-end console
   and determinism checks. *)

open Ii_xen
open Ii_guest
open Ii_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains line needle =
  let n = String.length needle and m = String.length line in
  let rec go i = i + n <= m && (String.sub line i n = needle || go (i + 1)) in
  go 0

let attacker_l1 (tb : Testbed.t) =
  let dom = Kernel.dom tb.Testbed.attacker in
  match Paging.walk tb.Testbed.hv.Hv.mem ~cr3:dom.Domain.l4_mfn (Domain.kernel_vaddr_of_pfn 0) with
  | Ok tr -> (List.nth tr.Paging.path 3).Paging.table_mfn
  | Error _ -> Alcotest.fail "no attacker L1"

(* --- Keep Page Access via XENMEM_decrease_reservation (XSA-393 style) --- *)

let test_keep_page_access_uaf () =
  let tb = Testbed.create Version.V4_8 in
  Injector.install tb.Testbed.hv;
  let hv = tb.Testbed.hv in
  let k = tb.Testbed.attacker in
  let dom = Kernel.dom k in
  let victim_pfn = 30 in
  let target_mfn = Option.get (Domain.mfn_of_pfn dom victim_pfn) in
  (* 1. plant a forged extra leaf mapping via the injector (the raw
        erroneous state: an unaccounted page reference) *)
  let l1 = attacker_l1 tb in
  let forged_index = 300 in
  let entry_addr =
    Layout.directmap_of_maddr
      (Int64.add (Addr.maddr_of_mfn l1) (Int64.of_int (8 * forged_index)))
  in
  let forged = Pte.make ~mfn:target_mfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ] in
  check_bool "inject forged pte" true
    (Injector.write_u64 k ~addr:entry_addr ~action:Injector.Arbitrary_write_linear forged = Ok ());
  (* 2. legitimately release the page: accounting never saw the forged
        mapping, so the hypervisor frees the frame *)
  check_int "unmap rc" 0
    (Kernel.hypercall_rc k
       (Hypercall.Update_va_mapping { va = Domain.kernel_vaddr_of_pfn victim_pfn; value = Pte.none }));
  check_int "decrease rc" 1
    (Kernel.hypercall_rc k (Hypercall.Decrease_reservation [ victim_pfn ]));
  check_bool "frame freed" true (Phys_mem.owner hv.Hv.mem target_mfn = Phys_mem.Free);
  (* 3. the audit certifies the erroneous state *)
  let audit =
    Erroneous_state.audit hv
      (Erroneous_state.Page_kept_after_release { domid = dom.Domain.id; mfn = target_mfn })
  in
  check_bool "state audited" true audit.Erroneous_state.holds;
  (* 4. the frame is reallocated to another domain, which stores a
        secret there — and the attacker reads it through the stale
        mapping: the use-after-free pays off *)
  let victim = Kernel.dom tb.Testbed.victim in
  let reallocated = Hv.alloc_domain_page hv victim in
  check_int "reallocated same frame" target_mfn reallocated;
  Phys_mem.write_string hv.Hv.mem (Addr.maddr_of_mfn reallocated) "victim-secret";
  let stale_va =
    Int64.add Layout.guest_kernel_base (Int64.of_int (forged_index * Addr.page_size))
  in
  (match Kernel.read_bytes k stale_va 13 with
  | Ok b -> Alcotest.(check string) "secret leaked" "victim-secret" (Bytes.to_string b)
  | Error _ -> Alcotest.fail "stale mapping should still translate")

(* --- Keep Page Access via grant-table v2 status pages (XSA-387 style) --- *)

let test_keep_page_access_grant_status () =
  let tb = Testbed.create Version.V4_8 in
  Injector.install tb.Testbed.hv;
  let hv = tb.Testbed.hv in
  let k = tb.Testbed.attacker in
  let dom = Kernel.dom k in
  (* switch to grant table v2: Xen allocates status frames *)
  check_int "to v2" 0
    (Kernel.hypercall_rc k (Hypercall.Grant_table_op (Hypercall.Gnttab_set_version Grant_table.V2)));
  let status_mfn = List.hd (Grant_table.status_frames dom.Domain.grant) in
  (* inject a retained mapping of the status frame *)
  let l1 = attacker_l1 tb in
  let idx = 301 in
  let entry_addr =
    Layout.directmap_of_maddr (Int64.add (Addr.maddr_of_mfn l1) (Int64.of_int (8 * idx)))
  in
  check_bool "inject status mapping" true
    (Injector.write_u64 k ~addr:entry_addr ~action:Injector.Arbitrary_write_linear
       (Pte.make ~mfn:status_mfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ])
    = Ok ());
  (* switch back to v1: the correct implementation releases the status
     frames to Xen — but the injected mapping survives *)
  check_int "to v1" 0
    (Kernel.hypercall_rc k (Hypercall.Grant_table_op (Hypercall.Gnttab_set_version Grant_table.V1)));
  check_bool "status released" true (Phys_mem.owner hv.Hv.mem status_mfn = Phys_mem.Free);
  let audit =
    Erroneous_state.audit hv
      (Erroneous_state.Page_kept_after_release { domid = dom.Domain.id; mfn = status_mfn })
  in
  check_bool "keep-page-reference state" true audit.Erroneous_state.holds

(* --- memory-backed grant tables (gnttab_setup_table) ----------------------- *)

let grant_rc k op = Kernel.hypercall_rc k (Hypercall.Grant_table_op op)

let setup_grant_frame tb (k : Kernel.t) =
  (* the guest asks for a shared grant frame and maps it at pfn-40's va *)
  let grant_mfn = grant_rc k (Hypercall.Gnttab_setup_table { nr_frames = 1 }) in
  check_bool "setup ok" true (grant_mfn > 0);
  let va = Domain.kernel_vaddr_of_pfn 40 in
  check_int "map grant frame" 0
    (Kernel.hypercall_rc k
       (Hypercall.Update_va_mapping
          { va; value = Pte.make ~mfn:grant_mfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ] }));
  ignore tb;
  (grant_mfn, va)

let test_memory_grant_flow () =
  let tb = Testbed.create Version.V4_8 in
  let victim = tb.Testbed.victim and attacker = tb.Testbed.attacker in
  let _, grant_va = setup_grant_frame tb victim in
  (* the victim writes a secret and then a wire grant entry for it,
     directly into the shared frame through its own mapping *)
  check_bool "secret" true
    (Result.is_ok (Kernel.write_u64 victim (Domain.kernel_vaddr_of_pfn 5) 0x5EC2E7L));
  let gref = 3 in
  let wire_word granter_flags domid gfn =
    Int64.logor
      (Int64.of_int granter_flags)
      (Int64.logor
         (Int64.shift_left (Int64.of_int domid) 16)
         (Int64.shift_left (Int64.of_int gfn) 32))
  in
  check_bool "wire entry written" true
    (Result.is_ok
       (Kernel.write_u64 victim
          (Int64.add grant_va (Int64.of_int (8 * gref)))
          (wire_word
             (Grant_table.Wire.gtf_permit_access lor Grant_table.Wire.gtf_readonly)
             (Kernel.domid attacker) 5)));
  (* the attacker maps the grant and installs a read-only PTE for it *)
  let handle = grant_rc attacker (Hypercall.Gnttab_map { granter = Kernel.domid victim; gref }) in
  check_bool "mapped" true (handle >= 0);
  let victim_mfn = Option.get (Domain.mfn_of_pfn (Kernel.dom victim) 5) in
  check_int "install pte" 0
    (Kernel.hypercall_rc attacker
       (Hypercall.Update_va_mapping
          {
            va = Domain.kernel_vaddr_of_pfn 41;
            value = Pte.make ~mfn:victim_mfn ~flags:[ Pte.Present; Pte.User ];
          }));
  check_bool "attacker reads granted page" true
    (Kernel.read_u64 attacker (Domain.kernel_vaddr_of_pfn 41) = Ok 0x5EC2E7L);
  (* the in-use bit is visible in the victim's shared frame *)
  (match Kernel.read_u64 victim (Int64.add grant_va (Int64.of_int (8 * gref))) with
  | Ok w ->
      check_bool "in-use bit set" true
        (Int64.to_int (Int64.logand w 0xFFFFL) land Grant_table.Wire.gtf_in_use <> 0)
  | Error _ -> Alcotest.fail "wire read");
  (* writable mapping of a read-only grant is refused *)
  check_bool "ro grant not writable" true
    (Kernel.hypercall_rc attacker
       (Hypercall.Update_va_mapping
          {
            va = Domain.kernel_vaddr_of_pfn 42;
            value = Pte.make ~mfn:victim_mfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ];
          })
    < 0);
  (* unmap clears the in-use bit *)
  check_int "unmap" 0
    (grant_rc attacker (Hypercall.Gnttab_unmap { granter = Kernel.domid victim; handle }));
  match Kernel.read_u64 victim (Int64.add grant_va (Int64.of_int (8 * gref))) with
  | Ok w ->
      check_bool "in-use cleared" true
        (Int64.to_int (Int64.logand w 0xFFFFL) land Grant_table.Wire.gtf_in_use = 0)
  | Error _ -> Alcotest.fail "wire read"

let test_memory_grant_refusals () =
  let tb = Testbed.create Version.V4_8 in
  let victim = tb.Testbed.victim and attacker = tb.Testbed.attacker in
  ignore (setup_grant_frame tb victim);
  (* no entry: ENOENT *)
  check_int "unused gref" (-2)
    (grant_rc attacker (Hypercall.Gnttab_map { granter = Kernel.domid victim; gref = 7 }));
  (* double setup refused *)
  check_int "double setup" (-16) (grant_rc victim (Hypercall.Gnttab_setup_table { nr_frames = 1 }));
  check_int "bad count" (-22) (grant_rc victim (Hypercall.Gnttab_setup_table { nr_frames = 0 }))

let test_corrupt_grant_entry_im () =
  (* the Corrupt-a-Page-Reference intrusion model: the attacker forges a
     grant the victim never made, by injecting bytes into the victim's
     (Xen-owned) grant frame, then harvests it through the fully
     legitimate grant-mapping machinery *)
  let tb = Testbed.create Version.V4_13 in
  Injector.install tb.Testbed.hv;
  let victim = tb.Testbed.victim and attacker = tb.Testbed.attacker in
  let grant_mfn, _ = setup_grant_frame tb victim in
  check_bool "victim secret" true
    (Result.is_ok (Kernel.write_u64 victim (Domain.kernel_vaddr_of_pfn 6) 0xC0FFEEL));
  (* nothing granted: the attacker cannot map *)
  check_int "no grant yet" (-2)
    (grant_rc attacker (Hypercall.Gnttab_map { granter = Kernel.domid victim; gref = 9 }));
  (* inject the forged wire entry *)
  let forged =
    Int64.logor
      (Int64.of_int Grant_table.Wire.gtf_permit_access)
      (Int64.logor
         (Int64.shift_left (Int64.of_int (Kernel.domid attacker)) 16)
         (Int64.shift_left 6L 32))
  in
  check_bool "injected" true
    (Injector.write_u64 attacker
       ~addr:(Int64.add (Addr.maddr_of_mfn grant_mfn) (Int64.of_int (8 * 9)))
       ~action:Injector.Arbitrary_write_physical forged
    = Ok ());
  (* now the legitimate machinery hands the page over *)
  let handle = grant_rc attacker (Hypercall.Gnttab_map { granter = Kernel.domid victim; gref = 9 }) in
  check_bool "forged grant mapped" true (handle >= 0);
  let victim_mfn = Option.get (Domain.mfn_of_pfn (Kernel.dom victim) 6) in
  check_int "pte for stolen page" 0
    (Kernel.hypercall_rc attacker
       (Hypercall.Update_va_mapping
          {
            va = Domain.kernel_vaddr_of_pfn 43;
            value = Pte.make ~mfn:victim_mfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ];
          }));
  check_bool "secret stolen" true
    (Kernel.read_u64 attacker (Domain.kernel_vaddr_of_pfn 43) = Ok 0xC0FFEEL);
  (* a deployed guard protecting the grant frame catches the state *)
  let g = Pt_guard.deploy tb.Testbed.hv Pt_guard.Detect_only in
  Pt_guard.protect g grant_mfn;
  check_int "clean baseline after protect" 0 (List.length (Pt_guard.audit g));
  check_bool "reinjection detected" true
    (Injector.write_u64 attacker
       ~addr:(Int64.add (Addr.maddr_of_mfn grant_mfn) (Int64.of_int (8 * 10)))
       ~action:Injector.Arbitrary_write_physical forged
    = Ok ()
    && Pt_guard.audit g <> [])

(* --- Uncontrolled interrupts (the §IX expansion) ------------------------- *)

let test_interrupt_storm_im () =
  let tb = Testbed.create Version.V4_6 in
  let victim = Kernel.dom tb.Testbed.victim in
  let before = Monitor.snapshot tb in
  (* the interrupt-flavoured injector: raise every port regardless of
     binding *)
  let raised = Event_channel.force_pending_all victim.Domain.events in
  check_bool "ports raised" true (raised >= 16);
  let audit =
    Erroneous_state.audit tb.Testbed.hv
      (Erroneous_state.Interrupt_storm { domid = victim.Domain.id; min_pending = 16 })
  in
  check_bool "storm state" true audit.Erroneous_state.holds;
  let after = Monitor.snapshot tb in
  check_bool "availability violation" true
    (List.exists
       (function Monitor.Availability_degradation _ -> true | _ -> false)
       (Monitor.violations ~before ~after))

(* --- event delivery + interrupt storm cost ---------------------------------- *)

let test_event_delivery () =
  let tb = Testbed.create Version.V4_8 in
  let dom0 = tb.Testbed.dom0 and victim = tb.Testbed.victim in
  (* dom0 offers a port; the victim binds and dom0 signals it *)
  let remote_port =
    Kernel.hypercall_rc dom0
      (Hypercall.Event_channel_op
         (Hypercall.Evtchn_alloc_unbound { allowed_remote = Kernel.domid victim }))
  in
  check_bool "alloc" true (remote_port >= 0);
  let local =
    Kernel.hypercall_rc victim
      (Hypercall.Event_channel_op
         (Hypercall.Evtchn_bind_interdomain { remote_dom = Kernel.domid dom0; remote_port }))
  in
  check_bool "bind" true (local >= 0);
  let fired = ref 0 in
  Kernel.bind_irq_handler victim ~port:local (fun () -> incr fired);
  (* dom0 signals its own bound port; the dispatcher raises the
     victim's peer port *)
  check_int "send" 0
    (Kernel.hypercall_rc dom0
       (Hypercall.Event_channel_op (Hypercall.Evtchn_send { port = remote_port })));
  check_int "victim port pending" 1
    (List.length (Event_channel.pending_ports (Kernel.dom victim).Domain.events));
  Kernel.tick victim;
  check_int "handler ran once" 1 !fired;
  check_int "irqs counted" 1 (Kernel.irqs_handled victim);
  (* a second tick with nothing pending does not re-fire *)
  Kernel.tick victim;
  check_int "no refire" 1 !fired

let test_interrupt_storm_backlog () =
  let tb = Testbed.create Version.V4_8 in
  let victim = tb.Testbed.victim in
  ignore (Event_channel.force_pending_all (Kernel.dom victim).Domain.events);
  let pending0 = List.length (Event_channel.pending_ports (Kernel.dom victim).Domain.events) in
  Kernel.tick victim;
  let pending1 = List.length (Event_channel.pending_ports (Kernel.dom victim).Domain.events) in
  (* the budget bounds per-tick work: backlog drains gradually *)
  check_int "budget of eight" (pending0 - 8) pending1;
  check_int "work accounted" 8 (Kernel.irqs_handled victim)

(* --- Uncontrolled Memory Allocation IM --------------------------------------- *)

let test_memory_exhaustion_im () =
  let tb = Testbed.create Version.V4_8 in
  let before = Monitor.snapshot tb in
  let taken = Hv.exhaust_memory tb.Testbed.hv ~leave:8 in
  check_bool "frames taken" true (taken > 100);
  check_int "pool drained" 8 (Phys_mem.free_frames tb.Testbed.hv.Hv.mem);
  let after = Monitor.snapshot tb in
  check_bool "availability violation" true
    (List.exists
       (function Monitor.Availability_degradation _ -> true | _ -> false)
       (Monitor.violations ~before ~after));
  (* downstream effect: nobody can build a domain any more *)
  check_bool "allocation now fails" true
    (try
       ignore (Builder.create_domain tb.Testbed.hv ~name:"late" ~privileged:false ~pages:64);
       false
     with Failure _ -> true)

(* --- Induce a Hang State (the largest Table I class) ----------------------- *)

let test_hang_state_im () =
  let tb = Testbed.create Version.V4_8 in
  let attacker_id = Kernel.domid tb.Testbed.attacker in
  let spec = Erroneous_state.Vcpu_hung { domid = attacker_id } in
  check_bool "clean" false (Erroneous_state.audit tb.Testbed.hv spec).Erroneous_state.holds;
  let before = Monitor.snapshot tb in
  (* the hang-state injector: the vcpu never leaves the hypervisor *)
  check_bool "inject hang" true
    (Sched.hang_vcpu tb.Testbed.hv.Hv.sched ~dom:attacker_id ~reason:"#DB storm (XSA-156 class)"
    = Ok ());
  check_bool "state audited" true (Erroneous_state.audit tb.Testbed.hv spec).Erroneous_state.holds;
  (* one scheduling round: everyone starves *)
  Testbed.tick_all tb;
  let mid = Monitor.snapshot tb in
  check_bool "availability violation" true
    (List.exists
       (function Monitor.Availability_degradation _ -> true | _ -> false)
       (Monitor.violations ~before ~after:mid));
  check_int "victim got no slice" 0 (Sched.runs_of tb.Testbed.hv.Hv.sched ~dom:1);
  (* keep stalling: the watchdog eventually panics the host *)
  for _ = 1 to 4 do
    Testbed.tick_all tb
  done;
  check_bool "watchdog panic" true (Hv.is_crashed tb.Testbed.hv);
  check_bool "crash violation recorded" true
    (List.exists
       (function Monitor.Hypervisor_crash _ -> true | _ -> false)
       (Monitor.violations ~before ~after:(Monitor.snapshot tb)))

let test_hang_state_without_watchdog_is_availability_only () =
  (* the deployment choice the paper's §IX discusses: without a
     watchdog the hang never crashes the host, it only starves it *)
  let sched = Sched.create ~watchdog_enabled:false () in
  ignore (Sched.add_vcpu sched ~dom:0);
  ignore (Sched.hang_vcpu sched ~dom:0 ~reason:"loop");
  for _ = 1 to 100 do
    ignore (Sched.tick sched)
  done;
  check_bool "never fires" false (Sched.watchdog_fired sched);
  check_int "stalled throughout" 100 (Sched.stalled_slices sched)

(* --- console content across the crash path -------------------------------- *)

let test_crash_console_dump () =
  let row =
    Campaign.run (Option.get (Ii_exploits.All_exploits.find "XSA-212-crash")) Campaign.Injection
      Version.V4_6
  in
  check_bool "row crashed" true
    (List.exists (function Monitor.Hypervisor_crash _ -> true | _ -> false) row.Campaign.r_violations);
  (* a fresh identical run exposes the console *)
  let tb = Testbed.create Version.V4_6 in
  Injector.install tb.Testbed.hv;
  let k = tb.Testbed.attacker in
  let gate = Int64.add (Kernel.sidt k) (Int64.of_int (Idt.handler_offset Idt.vector_page_fault)) in
  ignore (Injector.write_u64 k ~addr:gate ~action:Injector.Arbitrary_write_linear 0xBADL);
  ignore (Kernel.read_u64 k 0xdead0000L);
  let console = Hv.console_lines tb.Testbed.hv in
  List.iter
    (fun needle ->
      check_bool needle true (List.exists (fun l -> contains l needle) console))
    [
      "*** DOUBLE FAULT ***";
      "Xen-4.6.0 x86_64 debug=y Not tainted";
      "Panic on CPU 0: DOUBLE FAULT -- system shutdown";
      "Reboot in five seconds...";
      "intrusion-injector: hypercall 40";
    ]

(* --- injector is inert until used ------------------------------------------ *)

let test_injector_installation_is_benign () =
  let tb = Testbed.create Version.V4_13 in
  let before = Monitor.snapshot tb in
  Injector.install tb.Testbed.hv;
  Testbed.tick_all tb;
  let after = Monitor.snapshot tb in
  check_bool "no violations from installing" true (Monitor.violations ~before ~after = [])

(* --- determinism of the whole evaluation ------------------------------------ *)

let test_matrix_deterministic () =
  let run () =
    Campaign.run_matrix Ii_exploits.All_exploits.use_cases ~versions:[ Version.V4_6 ]
      ~modes:[ Campaign.Injection ]
  in
  let a = Campaign.table3 (run ()) in
  let b = Campaign.table3 (run ()) in
  Alcotest.(check string) "identical tables" a b

let () =
  Alcotest.run "integration"
    [
      ( "keep_page_access",
        [
          Alcotest.test_case "decrease_reservation UAF" `Quick test_keep_page_access_uaf;
          Alcotest.test_case "grant v2 status pages" `Quick test_keep_page_access_grant_status;
        ] );
      ( "events",
        [
          Alcotest.test_case "delivery" `Quick test_event_delivery;
          Alcotest.test_case "storm backlog" `Quick test_interrupt_storm_backlog;
        ] );
      ( "exhaustion",
        [ Alcotest.test_case "memory exhaustion IM" `Quick test_memory_exhaustion_im ] );
      ( "memory_grants",
        [
          Alcotest.test_case "legitimate flow" `Quick test_memory_grant_flow;
          Alcotest.test_case "refusals" `Quick test_memory_grant_refusals;
          Alcotest.test_case "corrupt-grant-entry IM" `Quick test_corrupt_grant_entry_im;
        ] );
      ("interrupts", [ Alcotest.test_case "storm IM" `Quick test_interrupt_storm_im ]);
      ( "hang_state",
        [
          Alcotest.test_case "hang IM: starvation then watchdog" `Quick test_hang_state_im;
          Alcotest.test_case "no watchdog: availability only" `Quick
            test_hang_state_without_watchdog_is_availability_only;
        ] );
      ( "console",
        [
          Alcotest.test_case "crash dump" `Slow test_crash_console_dump;
          Alcotest.test_case "injector benign" `Quick test_injector_installation_is_benign;
        ] );
      ("determinism", [ Alcotest.test_case "matrix" `Slow test_matrix_deterministic ]);
    ]
