(* Remaining behavioural corners: multi-L1 domains, layout boundaries,
   rendering edge cases, and small-surface modules. *)

open Ii_xen
open Ii_guest
open Ii_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains line needle =
  let n = String.length needle and m = String.length line in
  let rec go i = i + n <= m && (String.sub line i n = needle || go (i + 1)) in
  go 0

(* --- large domains (multiple kernel L1 tables) --------------------------- *)

let test_builder_multi_l1 () =
  let hv = Hv.boot ~version:Version.V4_6 ~frames:4096 in
  let g = Builder.create_domain hv ~name:"big" ~privileged:false ~pages:600 in
  check_int "pt pages (1 l4 + 1 l3k + 1 l2k + 2 l1k + 3 user + 3 m2p)" 11
    (List.length g.Domain.pt_pages);
  let readable pfn =
    Result.is_ok
      (Cpu.read_u64 hv.Hv.cpu ~ring:Cpu.Kernel ~cr3:g.Domain.l4_mfn
         (Domain.kernel_vaddr_of_pfn pfn))
  in
  check_bool "last pfn of first L1" true (readable 511);
  check_bool "first pfn of second L1" true (readable 512);
  check_bool "beyond the domain" false (readable 600);
  check_bool "counts consistent" true (Page_info.counts_consistent hv.Hv.pages);
  (* the big domain tears down cleanly too *)
  (match Domctl.destroy hv g with
  | Ok r -> check_int "all pages freed" 600 r.Domctl.freed
  | Error _ -> Alcotest.fail "destroy");
  check_bool "still consistent" true (Page_info.counts_consistent hv.Hv.pages)

let test_builder_rejects_tiny_domains () =
  let hv = Hv.boot ~version:Version.V4_6 ~frames:512 in
  Alcotest.check_raises "too small"
    (Invalid_argument "Builder.create_domain: domain too small") (fun () ->
      ignore (Builder.create_domain hv ~name:"tiny" ~privileged:false ~pages:5))

(* --- layout boundaries ------------------------------------------------------ *)

let test_layout_slot_boundaries () =
  (* the last byte of the M2P half and the first byte of the linear
     window sit in different regions of the same L4 slot *)
  let last_m2p = Int64.sub Layout.linear_pt_base 8L in
  check_bool "m2p side" true (Layout.region_of_vaddr last_m2p = Layout.M2p);
  check_bool "linear side" true (Layout.region_of_vaddr Layout.linear_pt_base = Layout.Linear_pt);
  (* slot 271/272: direct map ends where the guest kernel area begins *)
  let last_dm = Int64.sub Layout.guest_kernel_base 8L in
  check_bool "directmap side" true (Layout.region_of_vaddr last_dm = Layout.Direct_map);
  check_bool "kernel side" true
    (Layout.region_of_vaddr Layout.guest_kernel_base = Layout.Guest_kernel)

(* --- rendering edges --------------------------------------------------------- *)

let test_report_ragged_rows () =
  let s = Report.table ~header:[ "a"; "b"; "c" ] [ [ "1" ]; [ "1"; "2"; "3"; "4" ] ] in
  (* short rows pad, long rows keep their extra column *)
  check_bool "renders" true (String.length s > 0);
  check_bool "grid intact" true (contains s "| 1 |")

let test_violation_strings () =
  List.iter
    (fun (v, needle) -> check_bool needle true (contains (Monitor.violation_to_string v) needle))
    [
      (Monitor.Hypervisor_crash "x", "crash");
      (Monitor.Privilege_escalation "x", "escalation");
      (Monitor.Unauthorized_disclosure "x", "disclosure");
      (Monitor.Integrity_violation "x", "integrity");
      (Monitor.Guest_crash "x", "guest crash");
      (Monitor.Availability_degradation "x", "availability");
    ]

let test_campaign_mode_strings () =
  check_str "exploit" "exploit" (Campaign.mode_to_string Campaign.Real_exploit);
  check_str "injection" "injection" (Campaign.mode_to_string Campaign.Injection)

let test_erroneous_state_describe_all () =
  List.iter
    (fun spec -> check_bool "non-empty" true (String.length (Erroneous_state.describe spec) > 10))
    [
      Erroneous_state.Idt_gate_corrupted { vector = 14 };
      Erroneous_state.Pud_entry_links_pmd { pud_mfn = 1; index = 2; pmd_mfn = 3 };
      Erroneous_state.L2_pse_mapping { l2_mfn = 1; index = 2 };
      Erroneous_state.L4_selfmap_writable { l4_mfn = 1; slot = 258 };
      Erroneous_state.Page_kept_after_release { domid = 1; mfn = 2 };
      Erroneous_state.Interrupt_storm { domid = 1; min_pending = 8 };
      Erroneous_state.Xenstore_tampered { path = "/x"; legitimate = "1" };
      Erroneous_state.Vcpu_hung { domid = 1 };
    ]

(* --- netsim corners ----------------------------------------------------------- *)

let test_netsim_multiple_listeners_and_connections () =
  let net = Netsim.create () in
  Netsim.listen net ~host:"a" ~port:80;
  Netsim.listen net ~host:"a" ~port:443;
  Netsim.listen net ~host:"a" ~port:80 (* idempotent *);
  let connect port =
    Netsim.connect net ~from_host:"c" ~from_ip:"10.0.0.9" ~host:"a" ~port ~uid:1000
      ~exec:(fun _ -> "")
  in
  check_bool "80" true (Result.is_ok (connect 80));
  check_bool "443" true (Result.is_ok (connect 443));
  check_bool "80 again" true (Result.is_ok (connect 80));
  check_int "two on 80" 2 (List.length (Netsim.connections_to net ~host:"a" ~port:80));
  check_int "one on 443" 1 (List.length (Netsim.connections_to net ~host:"a" ~port:443));
  check_int "none on 22" 0 (List.length (Netsim.connections_to net ~host:"a" ~port:22))

(* --- intrusion-model printers --------------------------------------------------- *)

let test_im_interface_strings () =
  check_bool "hypercall" true
    (contains (Intrusion_model.interface_to_string (Intrusion_model.Hypercall_interface "x")) "x");
  check_bool "device" true
    (contains (Intrusion_model.interface_to_string (Intrusion_model.Device_emulation "fdc")) "fdc");
  check_bool "instruction" true
    (String.length (Intrusion_model.interface_to_string Intrusion_model.Instruction_interception) > 0);
  List.iter
    (fun s -> check_bool "source" true (String.length (Intrusion_model.source_to_string s) > 0))
    [
      Intrusion_model.Unprivileged_guest;
      Intrusion_model.Privileged_guest;
      Intrusion_model.Guest_userspace;
      Intrusion_model.Device_driver;
      Intrusion_model.Management_interface;
    ];
  List.iter
    (fun t -> check_bool "target" true (String.length (Intrusion_model.target_to_string t) > 0))
    [
      Intrusion_model.Memory_management_component;
      Intrusion_model.Interrupt_virtualization;
      Intrusion_model.Grant_tables_component;
      Intrusion_model.Device_model;
      Intrusion_model.Scheduler_component;
    ]

(* --- abusive-functionality classes are exhaustive -------------------------------- *)

let test_af_class_partition () =
  let classes = List.map Abusive_functionality.cls_of Abusive_functionality.all in
  List.iter
    (fun cls -> check_bool "class used" true (List.mem cls classes))
    Abusive_functionality.cls_all;
  check_int "class sizes sum" (List.length Abusive_functionality.all) (List.length classes)

let () =
  Alcotest.run "misc"
    [
      ( "builder",
        [
          Alcotest.test_case "multi-L1 domain" `Quick test_builder_multi_l1;
          Alcotest.test_case "rejects tiny domains" `Quick test_builder_rejects_tiny_domains;
        ] );
      ("layout", [ Alcotest.test_case "slot boundaries" `Quick test_layout_slot_boundaries ]);
      ( "rendering",
        [
          Alcotest.test_case "ragged rows" `Quick test_report_ragged_rows;
          Alcotest.test_case "violation strings" `Quick test_violation_strings;
          Alcotest.test_case "mode strings" `Quick test_campaign_mode_strings;
          Alcotest.test_case "state descriptions" `Quick test_erroneous_state_describe_all;
        ] );
      ( "netsim",
        [ Alcotest.test_case "multiple listeners" `Quick test_netsim_multiple_listeners_and_connections ] );
      ( "intrusion_model",
        [
          Alcotest.test_case "interface strings" `Quick test_im_interface_strings;
          Alcotest.test_case "class partition" `Quick test_af_class_partition;
        ] );
    ]
