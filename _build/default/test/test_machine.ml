(* Unit and property tests for the simulated-machine substrate. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)

(* --- Addr -------------------------------------------------------------- *)

let test_page_constants () =
  check_int "page size" 4096 Addr.page_size;
  check_int "entries per table" 512 Addr.entries_per_table;
  check_int "superpage" (512 * 4096) Addr.superpage_size

let test_mfn_maddr_roundtrip () =
  List.iter
    (fun mfn -> check_int "roundtrip" mfn (Addr.mfn_of_maddr (Addr.maddr_of_mfn mfn)))
    [ 0; 1; 511; 512; 4095; 1 lsl 20 ]

let test_alignment () =
  check_bool "aligned" true (Addr.is_page_aligned 0x1000L);
  check_bool "unaligned" false (Addr.is_page_aligned 0x1001L);
  check_i64 "align down" 0x1000L (Addr.align_down 0x1FFFL);
  check_i64 "align up" 0x2000L (Addr.align_up 0x1001L);
  check_i64 "align up aligned" 0x1000L (Addr.align_up 0x1000L);
  check_int "offset" 0xABC (Addr.page_offset 0x1ABCL)

let test_canonical () =
  check_i64 "low canonical" 0x7FFF_FFFF_FFFFL (Addr.canonical 0x7FFF_FFFF_FFFFL);
  check_i64 "high canonical" 0xFFFF_8000_0000_0000L (Addr.canonical 0x0000_8000_0000_0000L);
  check_bool "is canonical low" true (Addr.is_canonical 0x1234L);
  check_bool "not canonical" false (Addr.is_canonical 0x0000_9000_0000_0000L)

let test_indices () =
  let va = Addr.of_indices ~l4:256 ~l3:1 ~l2:2 ~l1:3 ~offset:0x45 in
  check_int "l4" 256 (Addr.l4_index va);
  check_int "l3" 1 (Addr.l3_index va);
  check_int "l2" 2 (Addr.l2_index va);
  check_int "l1" 3 (Addr.l1_index va);
  check_int "offset" 0x45 (Addr.page_offset va);
  check_bool "canonical" true (Addr.is_canonical va)

let test_l4_slot_base () =
  check_i64 "slot 0" 0L (Addr.l4_slot_base 0);
  check_i64 "slot 256" 0xFFFF_8000_0000_0000L (Addr.l4_slot_base 256);
  check_i64 "slot 262" 0xFFFF_8300_0000_0000L (Addr.l4_slot_base 262);
  check_i64 "slot 272" 0xFFFF_8800_0000_0000L (Addr.l4_slot_base 272)

let prop_indices_roundtrip =
  QCheck.Test.make ~name:"of_indices/indices roundtrip" ~count:500
    QCheck.(quad (int_bound 511) (int_bound 511) (int_bound 511) (int_bound 511))
    (fun (l4, l3, l2, l1) ->
      let va = Addr.of_indices ~l4 ~l3 ~l2 ~l1 ~offset:0 in
      Addr.l4_index va = l4 && Addr.l3_index va = l3 && Addr.l2_index va = l2
      && Addr.l1_index va = l1 && Addr.is_canonical va)

(* --- Pte ---------------------------------------------------------------- *)

let test_pte_make () =
  let e = Pte.make ~mfn:0x1234 ~flags:[ Pte.Present; Pte.Rw ] in
  check_int "mfn" 0x1234 (Pte.mfn e);
  check_bool "present" true (Pte.test Pte.Present e);
  check_bool "rw" true (Pte.test Pte.Rw e);
  check_bool "user" false (Pte.test Pte.User e)

let test_pte_set_clear () =
  let e = Pte.none in
  check_bool "none not present" false (Pte.is_present e);
  let e = Pte.set Pte.Present e in
  check_bool "set" true (Pte.is_present e);
  let e = Pte.clear Pte.Present e in
  check_bool "clear" false (Pte.is_present e)

let test_pte_nx_bit () =
  let e = Pte.make ~mfn:1 ~flags:[ Pte.Nx ] in
  check_bool "nx" true (Pte.test Pte.Nx e);
  check_int "mfn unaffected" 1 (Pte.mfn e)

let test_flags_equal_modulo () =
  let a = Pte.make ~mfn:5 ~flags:[ Pte.Present; Pte.User ] in
  let b = Pte.set Pte.Rw a in
  check_bool "differ" false (Pte.flags_equal_modulo ~ignore:[] a b);
  check_bool "modulo rw" true (Pte.flags_equal_modulo ~ignore:[ Pte.Rw ] a b);
  let c = Pte.make ~mfn:6 ~flags:[ Pte.Present; Pte.User ] in
  check_bool "different mfn never equal" false (Pte.flags_equal_modulo ~ignore:[ Pte.Rw ] a c)

let all_flags =
  [ Pte.Present; Pte.Rw; Pte.User; Pte.Pwt; Pte.Pcd; Pte.Accessed; Pte.Dirty; Pte.Pse;
    Pte.Global; Pte.Avail0; Pte.Avail1; Pte.Avail2; Pte.Nx ]

let prop_pte_roundtrip =
  let flag_gen = QCheck.Gen.(map (List.filteri (fun i _ -> i land 1 = 0)) (return all_flags)) in
  ignore flag_gen;
  QCheck.Test.make ~name:"pte encode/decode roundtrip" ~count:500
    QCheck.(pair (int_bound 0xFFFFF) (list_of_size Gen.(int_bound 12) (int_bound 12)))
    (fun (mfn, flag_idx) ->
      let flags = List.sort_uniq compare (List.map (List.nth all_flags) flag_idx) in
      let e = Pte.make ~mfn ~flags in
      Pte.mfn e = mfn && List.for_all (fun f -> Pte.test f e) flags
      && List.for_all (fun f -> List.mem f flags = Pte.test f e) all_flags)

(* --- Frame -------------------------------------------------------------- *)

let test_frame_u64 () =
  let f = Frame.create () in
  Frame.set_u64 f 0 0x1122334455667788L;
  check_i64 "read back" 0x1122334455667788L (Frame.get_u64 f 0);
  check_int "little endian" 0x88 (Frame.get_u8 f 0);
  check_int "high byte" 0x11 (Frame.get_u8 f 7)

let test_frame_entry () =
  let f = Frame.create () in
  Frame.set_entry f 511 42L;
  check_i64 "entry 511" 42L (Frame.get_u64 f (511 * 8));
  check_i64 "get_entry" 42L (Frame.get_entry f 511)

let test_frame_bounds () =
  let f = Frame.create () in
  Alcotest.check_raises "oob u64" (Invalid_argument "Frame: access [4089,+8) out of page")
    (fun () -> ignore (Frame.get_u64 f 4089));
  Alcotest.check_raises "negative" (Invalid_argument "Frame: access [-1,+1) out of page")
    (fun () -> ignore (Frame.get_u8 f (-1)))

let test_frame_find_string () =
  let f = Frame.create () in
  Frame.write_string f 100 "needle";
  check_bool "found" true (Frame.find_string f "needle" = Some 100);
  check_bool "missing" true (Frame.find_string f "absent" = None);
  check_bool "empty" true (Frame.find_string f "" = Some 0)

let test_frame_copy_independent () =
  let f = Frame.create () in
  Frame.set_u8 f 0 1;
  let g = Frame.copy f in
  Frame.set_u8 f 0 2;
  check_int "copy unchanged" 1 (Frame.get_u8 g 0)

(* --- Phys_mem ------------------------------------------------------------ *)

let test_alloc_free () =
  let m = Phys_mem.create ~frames:8 in
  let a = Phys_mem.alloc m Phys_mem.Xen in
  let b = Phys_mem.alloc m (Phys_mem.Dom 1) in
  check_int "first" 0 a;
  check_int "second" 1 b;
  check_bool "owner a" true (Phys_mem.owner m a = Phys_mem.Xen);
  check_int "free count" 6 (Phys_mem.free_frames m);
  Phys_mem.free m a;
  check_int "freed" 7 (Phys_mem.free_frames m);
  let c = Phys_mem.alloc m Phys_mem.Xen in
  check_int "lowest reused" 0 c

let test_alloc_zeroed () =
  let m = Phys_mem.create ~frames:2 in
  let a = Phys_mem.alloc m Phys_mem.Xen in
  Frame.set_u64 (Phys_mem.frame m a) 0 99L;
  Phys_mem.free m a;
  let b = Phys_mem.alloc m Phys_mem.Xen in
  check_i64 "zeroed on realloc" 0L (Frame.get_u64 (Phys_mem.frame m b) 0)

let test_exhaustion () =
  let m = Phys_mem.create ~frames:2 in
  ignore (Phys_mem.alloc m Phys_mem.Xen);
  ignore (Phys_mem.alloc m Phys_mem.Xen);
  Alcotest.check_raises "exhausted" (Failure "Phys_mem.alloc: out of physical memory") (fun () ->
      ignore (Phys_mem.alloc m Phys_mem.Xen))

let test_cross_frame_bytes () =
  let m = Phys_mem.create ~frames:2 in
  ignore (Phys_mem.alloc m Phys_mem.Xen);
  ignore (Phys_mem.alloc m Phys_mem.Xen);
  let addr = Int64.of_int (Addr.page_size - 4) in
  Phys_mem.write_bytes m addr (Bytes.of_string "ABCDEFGH");
  let got = Phys_mem.read_bytes m addr 8 in
  Alcotest.(check string) "cross-frame" "ABCDEFGH" (Bytes.to_string got);
  check_int "frame 1 byte" (Char.code 'E') (Phys_mem.read_u8 m (Int64.of_int Addr.page_size))

let test_bad_maddr () =
  let m = Phys_mem.create ~frames:1 in
  check_bool "raises" true
    (try
       ignore (Phys_mem.read_u8 m 0x10000L);
       false
     with Phys_mem.Bad_maddr _ -> true)

let test_owned_list () =
  let m = Phys_mem.create ~frames:4 in
  let a = Phys_mem.alloc m (Phys_mem.Dom 7) in
  let b = Phys_mem.alloc m (Phys_mem.Dom 7) in
  ignore (Phys_mem.alloc m Phys_mem.Xen);
  Alcotest.(check (list int)) "owned" [ a; b ] (Phys_mem.frames_owned_by m (Phys_mem.Dom 7))

let prop_phys_write_read =
  QCheck.Test.make ~name:"phys u64 write/read" ~count:300
    QCheck.(pair (int_bound (8 * 4096 - 8)) (map Int64.of_int int))
    (fun (off, v) ->
      let m = Phys_mem.create ~frames:8 in
      for _ = 1 to 8 do
        ignore (Phys_mem.alloc m Phys_mem.Xen)
      done;
      let off = off - (off mod 8) in
      let addr = Int64.of_int off in
      Phys_mem.write_u64 m addr v;
      Phys_mem.read_u64 m addr = v)

(* --- Layout -------------------------------------------------------------- *)

let test_regions () =
  let r va = Layout.region_of_vaddr va in
  check_bool "guest low" true (r 0x1000L = Layout.Guest_low);
  check_bool "m2p" true (r Layout.m2p_base = Layout.M2p);
  check_bool "linear" true (r Layout.linear_pt_base = Layout.Linear_pt);
  check_bool "linear end" true (r Layout.linear_pt_end = Layout.Linear_pt);
  check_bool "extra" true (r (Addr.l4_slot_base 258) = Layout.Xen_extra);
  check_bool "private" true (r (Addr.l4_slot_base 260) = Layout.Xen_private);
  check_bool "directmap" true (r Layout.directmap_base = Layout.Direct_map);
  check_bool "kernel" true (r Layout.guest_kernel_base = Layout.Guest_kernel)

let test_guest_access_hardening () =
  let ga h va = Layout.guest_access ~hardened:h va in
  check_bool "m2p ro" true (ga false Layout.m2p_base = Layout.Read_only);
  check_bool "m2p ro hardened" true (ga true Layout.m2p_base = Layout.Read_only);
  check_bool "linear rw pre" true (ga false Layout.linear_pt_base = Layout.Read_write);
  check_bool "linear blocked hardened" true (ga true Layout.linear_pt_base = Layout.No_access);
  check_bool "extra rw pre" true (ga false (Addr.l4_slot_base 258) = Layout.Read_write);
  check_bool "extra blocked hardened" true (ga true (Addr.l4_slot_base 258) = Layout.No_access);
  check_bool "directmap never" true (ga false Layout.directmap_base = Layout.No_access);
  check_bool "kernel always" true (ga true Layout.guest_kernel_base = Layout.Read_write)

let test_directmap_roundtrip () =
  let ma = 0x123456L in
  let va = Layout.directmap_of_maddr ma in
  check_bool "roundtrip" true (Layout.maddr_of_directmap va = Some ma);
  check_bool "not directmap" true (Layout.maddr_of_directmap 0x1000L = None)

let test_l4_slot_rules () =
  check_bool "xen slot 256" true (Layout.is_xen_l4_slot 256);
  check_bool "xen slot 262" true (Layout.is_xen_l4_slot 262);
  check_bool "not 258" false (Layout.is_xen_l4_slot 258);
  check_bool "guest may own 0" true (Layout.guest_may_own_l4_slot ~hardened:false 0);
  check_bool "guest may own 258 pre" true (Layout.guest_may_own_l4_slot ~hardened:false 258);
  check_bool "guest 258 hardened" false (Layout.guest_may_own_l4_slot ~hardened:true 258);
  check_bool "never 256" false (Layout.guest_may_own_l4_slot ~hardened:false 256);
  check_bool "never 262" false (Layout.guest_may_own_l4_slot ~hardened:false 262);
  check_bool "out of range" false (Layout.guest_may_own_l4_slot ~hardened:false 512)

let prop_guest_never_writes_xen =
  QCheck.Test.make ~name:"directmap/private never guest accessible" ~count:300
    QCheck.(pair bool (int_bound 0xFFFF))
    (fun (hardened, off) ->
      let va = Int64.add Layout.directmap_base (Int64.of_int (off * 8)) in
      Layout.guest_access ~hardened va = Layout.No_access)

(* --- Paging -------------------------------------------------------------- *)

(* Build a tiny address space by hand: cr3 -> l3 -> l2 -> l1 -> data. *)
let tiny_space () =
  let m = Phys_mem.create ~frames:16 in
  let alloc () = Phys_mem.alloc m Phys_mem.Xen in
  let l4 = alloc () and l3 = alloc () and l2 = alloc () and l1 = alloc () and data = alloc () in
  let inter target = Pte.make ~mfn:target ~flags:[ Pte.Present; Pte.Rw; Pte.User ] in
  let va = Addr.of_indices ~l4:0 ~l3:0 ~l2:0 ~l1:5 ~offset:0 in
  Frame.set_entry (Phys_mem.frame m l4) 0 (inter l3);
  Frame.set_entry (Phys_mem.frame m l3) 0 (inter l2);
  Frame.set_entry (Phys_mem.frame m l2) 0 (inter l1);
  Frame.set_entry (Phys_mem.frame m l1) 5 (Pte.make ~mfn:data ~flags:[ Pte.Present; Pte.Rw; Pte.User ]);
  (m, l4, l1, data, va)

let test_walk_success () =
  let m, l4, _, data, va = tiny_space () in
  match Paging.walk m ~cr3:l4 va with
  | Ok tr ->
      check_i64 "maddr" (Addr.maddr_of_mfn data) tr.Paging.t_maddr;
      check_bool "writable" true tr.Paging.writable;
      check_bool "user" true tr.Paging.user;
      check_bool "not superpage" false tr.Paging.superpage;
      check_int "path length" 4 (List.length tr.Paging.path)
  | Error _ -> Alcotest.fail "walk failed"

let test_walk_not_present () =
  let m, l4, _, _, _ = tiny_space () in
  let va = Addr.of_indices ~l4:0 ~l3:0 ~l2:0 ~l1:9 ~offset:0 in
  (match Paging.walk m ~cr3:l4 va with
  | Error (Paging.Not_present 1) -> ()
  | _ -> Alcotest.fail "expected not-present at L1");
  let va = Addr.of_indices ~l4:3 ~l3:0 ~l2:0 ~l1:0 ~offset:0 in
  match Paging.walk m ~cr3:l4 va with
  | Error (Paging.Not_present 4) -> ()
  | _ -> Alcotest.fail "expected not-present at L4"

let test_walk_rw_anded () =
  let m, l4, l1, data, va = tiny_space () in
  Frame.set_entry (Phys_mem.frame m l1) 5 (Pte.make ~mfn:data ~flags:[ Pte.Present; Pte.User ]);
  (match Paging.walk m ~cr3:l4 va with
  | Ok tr -> check_bool "leaf ro" false tr.Paging.writable
  | Error _ -> Alcotest.fail "walk");
  match Paging.translate m ~cr3:l4 ~kind:Paging.Write ~user:true va with
  | Error { Paging.reason = Paging.Write_to_readonly; _ } -> ()
  | _ -> Alcotest.fail "expected write fault"

let test_walk_user_anded () =
  let m, l4, l1, data, va = tiny_space () in
  Frame.set_entry (Phys_mem.frame m l1) 5 (Pte.make ~mfn:data ~flags:[ Pte.Present; Pte.Rw ]);
  match Paging.translate m ~cr3:l4 ~kind:Paging.Read ~user:true va with
  | Error { Paging.reason = Paging.User_access_to_supervisor; _ } -> ()
  | _ -> Alcotest.fail "expected user fault"

let test_superpage_walk () =
  let m = Phys_mem.create ~frames:16 in
  let alloc () = Phys_mem.alloc m Phys_mem.Xen in
  let l4 = alloc () and l3 = alloc () and l2 = alloc () in
  let inter t = Pte.make ~mfn:t ~flags:[ Pte.Present; Pte.Rw; Pte.User ] in
  Frame.set_entry (Phys_mem.frame m l4) 0 (inter l3);
  Frame.set_entry (Phys_mem.frame m l3) 0 (inter l2);
  (* PSE entry with an unaligned mfn: hardware rounds down to the
     512-frame boundary (0 here). *)
  Frame.set_entry (Phys_mem.frame m l2) 1
    (Pte.make ~mfn:7 ~flags:[ Pte.Present; Pte.Rw; Pte.User; Pte.Pse ]);
  let va = Addr.of_indices ~l4:0 ~l3:0 ~l2:1 ~l1:3 ~offset:0x10 in
  match Paging.walk m ~cr3:l4 va with
  | Ok tr ->
      check_bool "superpage" true tr.Paging.superpage;
      check_i64 "maddr within superpage" (Int64.of_int ((3 * 4096) + 0x10)) tr.Paging.t_maddr;
      check_int "path stops at l2" 3 (List.length tr.Paging.path)
  | Error _ -> Alcotest.fail "superpage walk failed"

let test_non_canonical () =
  let m, l4, _, _, _ = tiny_space () in
  match Paging.translate m ~cr3:l4 ~kind:Paging.Read ~user:false 0x0000_9000_0000_0000L with
  | Error { Paging.reason = Paging.Non_canonical; _ } -> ()
  | _ -> Alcotest.fail "expected non-canonical fault"

let test_nx () =
  let m, l4, l1, data, va = tiny_space () in
  Frame.set_entry (Phys_mem.frame m l1) 5
    (Pte.make ~mfn:data ~flags:[ Pte.Present; Pte.Rw; Pte.User; Pte.Nx ]);
  match Paging.translate m ~cr3:l4 ~kind:Paging.Exec ~user:true va with
  | Error { Paging.reason = Paging.Nx_violation; _ } -> ()
  | _ -> Alcotest.fail "expected NX fault"

let test_walk_path_on_fault () =
  let m, l4, _, _, _ = tiny_space () in
  let va = Addr.of_indices ~l4:0 ~l3:0 ~l2:0 ~l1:9 ~offset:0 in
  let path = Paging.walk_path m ~cr3:l4 va in
  check_int "partial path recorded" 4 (List.length path)

let prop_walk_agrees_with_translate =
  QCheck.Test.make ~name:"translate(read,supervisor) succeeds iff walk does" ~count:200
    QCheck.(pair (int_bound 15) (int_bound 511))
    (fun (l1_idx, _) ->
      let m, l4, _, _, _ = tiny_space () in
      let va = Addr.of_indices ~l4:0 ~l3:0 ~l2:0 ~l1:l1_idx ~offset:0 in
      let w = Paging.walk m ~cr3:l4 va in
      let t = Paging.translate m ~cr3:l4 ~kind:Paging.Read ~user:false va in
      Result.is_ok w = Result.is_ok t)

(* --- Idt ------------------------------------------------------------------ *)

let test_idt_gate_roundtrip () =
  let m = Phys_mem.create ~frames:2 in
  let idt = Phys_mem.alloc m Phys_mem.Xen in
  Idt.init m idt;
  let gate = { Idt.handler = 0xFFFF_8300_0000_1234L; selector = Idt.xen_code_selector; gate_present = true } in
  Idt.write_gate m idt 14 gate;
  let got = Idt.read_gate m idt 14 in
  check_i64 "handler" gate.Idt.handler got.Idt.handler;
  check_int "selector" 0xe008 got.Idt.selector;
  check_bool "present" true got.Idt.gate_present

let test_idt_raw_offsets () =
  (* The crash exploit computes the handler's byte offset directly. *)
  check_int "pf gate offset" (14 * 16) (Idt.handler_offset 14);
  let m = Phys_mem.create ~frames:2 in
  let idt = Phys_mem.alloc m Phys_mem.Xen in
  Idt.write_gate m idt 14
    { Idt.handler = 0xAAL; selector = 0xe008; gate_present = true };
  check_i64 "raw read" 0xAAL (Frame.get_u64 (Phys_mem.frame m idt) (14 * 16))

let test_idt_vector_range () =
  let m = Phys_mem.create ~frames:2 in
  let idt = Phys_mem.alloc m Phys_mem.Xen in
  Alcotest.check_raises "bad vector" (Invalid_argument "Idt: vector out of range") (fun () ->
      ignore (Idt.read_gate m idt 256))

(* --- Cpu ------------------------------------------------------------------- *)

let cpu_space ~hardened =
  let m = Phys_mem.create ~frames:32 in
  let cpu = Cpu.create m ~hardened in
  let alloc () = Phys_mem.alloc m Phys_mem.Xen in
  let l4 = alloc () and l3 = alloc () and l2 = alloc () and l1 = alloc () and data = alloc () in
  let inter t = Pte.make ~mfn:t ~flags:[ Pte.Present; Pte.Rw; Pte.User ] in
  let kslot = Addr.l4_index Layout.guest_kernel_base in
  Frame.set_entry (Phys_mem.frame m l4) kslot (inter l3);
  Frame.set_entry (Phys_mem.frame m l3) 0 (inter l2);
  Frame.set_entry (Phys_mem.frame m l2) 0 (inter l1);
  Frame.set_entry (Phys_mem.frame m l1) 0 (inter data);
  (m, cpu, l4, data, Layout.guest_kernel_base)

let test_cpu_kernel_rw () =
  let _, cpu, l4, _, va = cpu_space ~hardened:false in
  (match Cpu.write_u64 cpu ~ring:Cpu.Kernel ~cr3:l4 va 7L with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write");
  match Cpu.read_u64 cpu ~ring:Cpu.Kernel ~cr3:l4 va with
  | Ok v -> check_i64 "read back" 7L v
  | Error _ -> Alcotest.fail "read"

let test_cpu_hyp_directmap () =
  let m, cpu, l4, data, _ = cpu_space ~hardened:false in
  let va = Layout.directmap_of_maddr (Addr.maddr_of_mfn data) in
  (match Cpu.write_u64 cpu ~ring:Cpu.Hyp ~cr3:l4 va 9L with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "hyp write");
  check_i64 "phys visible" 9L (Phys_mem.read_u64 m (Addr.maddr_of_mfn data))

let test_cpu_hyp_rejects_guest_va () =
  let _, cpu, l4, _, va = cpu_space ~hardened:false in
  match Cpu.read_u64 cpu ~ring:Cpu.Hyp ~cr3:l4 va with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hyp ring must not resolve guest-kernel vaddrs"

let test_cpu_guest_blocked_from_directmap () =
  let _, cpu, l4, data, _ = cpu_space ~hardened:false in
  let va = Layout.directmap_of_maddr (Addr.maddr_of_mfn data) in
  match Cpu.read_u64 cpu ~ring:Cpu.Kernel ~cr3:l4 va with
  | Error { Paging.reason = Paging.Layout_denied Layout.Direct_map; _ } -> ()
  | _ -> Alcotest.fail "expected layout denial"

let test_cpu_layout_hardening () =
  let check_access hardened expect =
    let _, cpu, l4, _, _ = cpu_space ~hardened in
    let va = Layout.linear_pt_base in
    let got =
      match Cpu.read_u64 cpu ~ring:Cpu.Kernel ~cr3:l4 va with
      | Error { Paging.reason = Paging.Layout_denied _; _ } -> `Denied
      | Error _ -> `Fault
      | Ok _ -> `Ok
    in
    check_bool "hardening behaviour" true (got = expect)
  in
  (* pre-hardening: the region is allowed by layout (then faults on the
     empty tables); hardened: denied outright. *)
  check_access false `Fault;
  check_access true `Denied

let test_cpu_exception_delivery () =
  let m, cpu, _, _, _ = cpu_space ~hardened:false in
  let idt = Phys_mem.alloc m Phys_mem.Xen in
  Idt.init m idt;
  Cpu.set_idt cpu idt;
  let handler = 0xFFFF_8300_0000_4000L in
  Cpu.register_handler cpu handler "page_fault";
  Idt.write_gate m idt 14 { Idt.handler; selector = 0xe008; gate_present = true };
  Idt.write_gate m idt 8 { Idt.handler; selector = 0xe008; gate_present = true };
  (match Cpu.deliver_exception cpu ~vector:14 with
  | Cpu.Handled { handler_label; _ } -> Alcotest.(check string) "label" "page_fault" handler_label
  | _ -> Alcotest.fail "expected handled");
  (* corrupt the PF gate: double fault *)
  Idt.write_gate m idt 14 { Idt.handler = 0xBADL; selector = 0xe008; gate_present = true };
  (match Cpu.deliver_exception cpu ~vector:14 with
  | Cpu.Double_fault_panic { first_vector; bad_handler } ->
      check_int "vector" 14 first_vector;
      check_i64 "bad handler" 0xBADL bad_handler
  | _ -> Alcotest.fail "expected double fault");
  (* corrupt the DF gate too: triple fault *)
  Idt.write_gate m idt 8 { Idt.handler = 0xBAD2L; selector = 0xe008; gate_present = true };
  match Cpu.deliver_exception cpu ~vector:14 with
  | Cpu.Triple_fault -> ()
  | _ -> Alcotest.fail "expected triple fault"

let test_cpu_sidt () =
  let m, cpu, _, _, _ = cpu_space ~hardened:false in
  let idt = Phys_mem.alloc m Phys_mem.Xen in
  Cpu.set_idt cpu idt;
  check_i64 "sidt is directmap of idt" (Layout.directmap_of_maddr (Addr.maddr_of_mfn idt))
    (Cpu.sidt cpu)

let test_cpu_bytes_cross_page () =
  let m, cpu, l4, _, va = cpu_space ~hardened:false in
  (* map a second page right after the first *)
  let l1 =
    match Paging.walk m ~cr3:l4 va with
    | Ok tr -> (List.nth tr.Paging.path 3).Paging.table_mfn
    | Error _ -> Alcotest.fail "walk"
  in
  let data2 = Phys_mem.alloc m Phys_mem.Xen in
  Frame.set_entry (Phys_mem.frame m l1) 1
    (Pte.make ~mfn:data2 ~flags:[ Pte.Present; Pte.Rw; Pte.User ]);
  let addr = Int64.add va (Int64.of_int (Addr.page_size - 3)) in
  (match Cpu.write_bytes cpu ~ring:Cpu.Kernel ~cr3:l4 addr (Bytes.of_string "XYZW12") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "cross-page write");
  match Cpu.read_bytes cpu ~ring:Cpu.Kernel ~cr3:l4 addr 6 with
  | Ok b -> Alcotest.(check string) "cross-page" "XYZW12" (Bytes.to_string b)
  | Error _ -> Alcotest.fail "cross-page read"

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "machine"
    [
      ( "addr",
        [
          Alcotest.test_case "page constants" `Quick test_page_constants;
          Alcotest.test_case "mfn/maddr roundtrip" `Quick test_mfn_maddr_roundtrip;
          Alcotest.test_case "alignment" `Quick test_alignment;
          Alcotest.test_case "canonical" `Quick test_canonical;
          Alcotest.test_case "indices" `Quick test_indices;
          Alcotest.test_case "l4 slot bases" `Quick test_l4_slot_base;
        ]
        @ qsuite [ prop_indices_roundtrip ] );
      ( "pte",
        [
          Alcotest.test_case "make" `Quick test_pte_make;
          Alcotest.test_case "set/clear" `Quick test_pte_set_clear;
          Alcotest.test_case "nx bit" `Quick test_pte_nx_bit;
          Alcotest.test_case "flags_equal_modulo" `Quick test_flags_equal_modulo;
        ]
        @ qsuite [ prop_pte_roundtrip ] );
      ( "frame",
        [
          Alcotest.test_case "u64 little endian" `Quick test_frame_u64;
          Alcotest.test_case "entries" `Quick test_frame_entry;
          Alcotest.test_case "bounds" `Quick test_frame_bounds;
          Alcotest.test_case "find string" `Quick test_frame_find_string;
          Alcotest.test_case "copy independence" `Quick test_frame_copy_independent;
        ] );
      ( "phys_mem",
        [
          Alcotest.test_case "alloc/free" `Quick test_alloc_free;
          Alcotest.test_case "zeroed on realloc" `Quick test_alloc_zeroed;
          Alcotest.test_case "exhaustion" `Quick test_exhaustion;
          Alcotest.test_case "cross-frame bytes" `Quick test_cross_frame_bytes;
          Alcotest.test_case "bad maddr" `Quick test_bad_maddr;
          Alcotest.test_case "owned list" `Quick test_owned_list;
        ]
        @ qsuite [ prop_phys_write_read ] );
      ( "layout",
        [
          Alcotest.test_case "regions" `Quick test_regions;
          Alcotest.test_case "hardening" `Quick test_guest_access_hardening;
          Alcotest.test_case "directmap roundtrip" `Quick test_directmap_roundtrip;
          Alcotest.test_case "l4 slot rules" `Quick test_l4_slot_rules;
        ]
        @ qsuite [ prop_guest_never_writes_xen ] );
      ( "paging",
        [
          Alcotest.test_case "walk success" `Quick test_walk_success;
          Alcotest.test_case "not present" `Quick test_walk_not_present;
          Alcotest.test_case "rw anded" `Quick test_walk_rw_anded;
          Alcotest.test_case "user anded" `Quick test_walk_user_anded;
          Alcotest.test_case "superpage" `Quick test_superpage_walk;
          Alcotest.test_case "non-canonical" `Quick test_non_canonical;
          Alcotest.test_case "nx" `Quick test_nx;
          Alcotest.test_case "walk path on fault" `Quick test_walk_path_on_fault;
        ]
        @ qsuite [ prop_walk_agrees_with_translate ] );
      ( "idt",
        [
          Alcotest.test_case "gate roundtrip" `Quick test_idt_gate_roundtrip;
          Alcotest.test_case "raw offsets" `Quick test_idt_raw_offsets;
          Alcotest.test_case "vector range" `Quick test_idt_vector_range;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "kernel rw" `Quick test_cpu_kernel_rw;
          Alcotest.test_case "hyp directmap" `Quick test_cpu_hyp_directmap;
          Alcotest.test_case "hyp rejects guest va" `Quick test_cpu_hyp_rejects_guest_va;
          Alcotest.test_case "guest blocked from directmap" `Quick test_cpu_guest_blocked_from_directmap;
          Alcotest.test_case "layout hardening" `Quick test_cpu_layout_hardening;
          Alcotest.test_case "exception delivery" `Quick test_cpu_exception_delivery;
          Alcotest.test_case "sidt" `Quick test_cpu_sidt;
          Alcotest.test_case "bytes cross page" `Quick test_cpu_bytes_cross_page;
        ] );
    ]
