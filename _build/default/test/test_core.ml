(* Tests for the paper's core contribution: taxonomy, intrusion models,
   erroneous-state audits, the injector, the monitor, the AVI chain and
   the weird-machine abstraction. *)

open Ii_xen
open Ii_guest
open Ii_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

module Af = Abusive_functionality

(* --- Abusive_functionality ------------------------------------------------ *)

let test_af_taxonomy_shape () =
  check_int "sixteen functionalities" 16 (List.length Af.all);
  check_int "four classes" 4 (List.length Af.cls_all);
  List.iter
    (fun cls ->
      check_bool "class non-empty" true (List.exists (fun af -> Af.cls_of af = cls) Af.all))
    Af.cls_all

let test_af_paper_totals () =
  check_int "total classifications" 108 (List.fold_left (fun a af -> a + Af.paper_count af) 0 Af.all);
  List.iter
    (fun cls ->
      let sum =
        List.fold_left (fun a af -> if Af.cls_of af = cls then a + Af.paper_count af else a) 0 Af.all
      in
      check_int (Af.cls_to_string cls) (Af.paper_class_total cls) sum)
    Af.cls_all;
  check_int "memory access" 35 (Af.paper_class_total Af.Memory_access);
  check_int "memory management" 40 (Af.paper_class_total Af.Memory_management);
  check_int "exceptional" 11 (Af.paper_class_total Af.Exceptional_conditions);
  check_int "non-memory" 22 (Af.paper_class_total Af.Non_memory_related)

let test_af_string_roundtrip () =
  List.iter
    (fun af ->
      match Af.of_string (Af.to_string af) with
      | Some af' -> check_bool "roundtrip" true (af = af')
      | None -> Alcotest.fail "of_string")
    Af.all;
  check_bool "unknown" true (Af.of_string "Telepathy" = None)

let test_af_paper_rows () =
  (* the counts printed verbatim in the paper's Table I *)
  check_int "keep page access" 11 (Af.paper_count Af.Keep_page_access);
  check_int "corrupt vmm" 4 (Af.paper_count Af.Corrupt_virtual_memory_mapping);
  check_int "corrupt page ref" 4 (Af.paper_count Af.Corrupt_page_reference);
  check_int "fail mapping" 2 (Af.paper_count Af.Fail_memory_mapping);
  check_int "fatal" 6 (Af.paper_count Af.Induce_fatal_exception);
  check_int "mem exc" 5 (Af.paper_count Af.Induce_memory_exception);
  check_int "hang" 20 (Af.paper_count Af.Induce_hang_state);
  check_int "irq" 2 (Af.paper_count Af.Uncontrolled_interrupt_requests)

(* --- Intrusion_model -------------------------------------------------------- *)

let im_a =
  Intrusion_model.make ~name:"A" ~source:Intrusion_model.Unprivileged_guest
    ~interface:(Intrusion_model.Hypercall_interface "mmu_update")
    ~target:Intrusion_model.Memory_management_component
    ~functionality:Af.Guest_writable_page_table_entry "test"

let test_im_compatibility () =
  let im_b =
    Intrusion_model.make ~name:"B" ~source:Intrusion_model.Unprivileged_guest
      ~interface:(Intrusion_model.Hypercall_interface "memory_exchange")
      ~target:Intrusion_model.Memory_management_component
      ~functionality:Af.Guest_writable_page_table_entry "other interface, same abuse"
  in
  check_bool "same functionality compatible" true (Intrusion_model.compatible im_a im_b);
  let im_c = { im_b with Intrusion_model.functionality = Af.Read_unauthorized_memory } in
  check_bool "different functionality" false (Intrusion_model.compatible im_a im_c);
  let im_d = { im_b with Intrusion_model.source = Intrusion_model.Privileged_guest } in
  check_bool "different source" false (Intrusion_model.compatible im_a im_d)

let test_im_render () =
  let s = Format.asprintf "%a" Intrusion_model.pp im_a in
  check_bool "mentions name" true (String.length s > 0 && s.[0] = 'A');
  let long = Format.asprintf "%a" Intrusion_model.pp_long im_a in
  check_bool "long mentions source" true
    (let rec contains i =
       i + 12 <= String.length long && (String.sub long i 12 = "unprivileged" || contains (i + 1))
     in
     contains 0)

(* --- Erroneous_state audits -------------------------------------------------- *)

let tb () = Testbed.create Version.V4_6

let test_audit_idt () =
  let tb = tb () in
  let hv = tb.Testbed.hv in
  let spec = Erroneous_state.Idt_gate_corrupted { vector = Idt.vector_page_fault } in
  check_bool "clean" false (Erroneous_state.audit hv spec).Erroneous_state.holds;
  Idt.write_gate hv.Hv.mem hv.Hv.idt_mfn Idt.vector_page_fault
    { Idt.handler = 0x123L; selector = 0xe008; gate_present = true };
  let audit = Erroneous_state.audit hv spec in
  check_bool "corrupted detected" true audit.Erroneous_state.holds;
  check_bool "evidence" true (audit.Erroneous_state.evidence <> [])

let test_audit_l4_selfmap () =
  let tb = tb () in
  let hv = tb.Testbed.hv in
  let l4 = (Kernel.dom tb.Testbed.attacker).Domain.l4_mfn in
  let slot = Layout.xen_extra_slot in
  let spec = Erroneous_state.L4_selfmap_writable { l4_mfn = l4; slot } in
  check_bool "clean" false (Erroneous_state.audit hv spec).Erroneous_state.holds;
  Frame.set_entry (Phys_mem.frame hv.Hv.mem l4) slot
    (Pte.make ~mfn:l4 ~flags:[ Pte.Present; Pte.User ]);
  check_bool "ro self-map not enough" false (Erroneous_state.audit hv spec).Erroneous_state.holds;
  Frame.set_entry (Phys_mem.frame hv.Hv.mem l4) slot
    (Pte.make ~mfn:l4 ~flags:[ Pte.Present; Pte.User; Pte.Rw ]);
  check_bool "rw self-map detected" true (Erroneous_state.audit hv spec).Erroneous_state.holds

let test_audit_page_kept () =
  let tb = tb () in
  let hv = tb.Testbed.hv in
  let attacker = Kernel.dom tb.Testbed.attacker in
  let victim_mfn = Option.get (Domain.mfn_of_pfn (Kernel.dom tb.Testbed.victim) 5) in
  let spec = Erroneous_state.Page_kept_after_release { domid = attacker.Domain.id; mfn = victim_mfn } in
  check_bool "clean" false (Erroneous_state.audit hv spec).Erroneous_state.holds;
  (* plant a forged leaf mapping of the victim frame in the attacker's L1 *)
  let l1 =
    match Paging.walk hv.Hv.mem ~cr3:attacker.Domain.l4_mfn (Domain.kernel_vaddr_of_pfn 0) with
    | Ok tr -> (List.nth tr.Paging.path 3).Paging.table_mfn
    | Error _ -> Alcotest.fail "walk"
  in
  Frame.set_entry (Phys_mem.frame hv.Hv.mem l1) 200
    (Pte.make ~mfn:victim_mfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ]);
  check_bool "kept mapping detected" true (Erroneous_state.audit hv spec).Erroneous_state.holds

let test_audit_interrupt_storm () =
  let tb = tb () in
  let hv = tb.Testbed.hv in
  let dom = Kernel.dom tb.Testbed.victim in
  let spec = Erroneous_state.Interrupt_storm { domid = dom.Domain.id; min_pending = 10 } in
  check_bool "clean" false (Erroneous_state.audit hv spec).Erroneous_state.holds;
  ignore (Event_channel.force_pending_all dom.Domain.events);
  check_bool "storm detected" true (Erroneous_state.audit hv spec).Erroneous_state.holds

let test_walk_evidence () =
  let tb = tb () in
  let lines =
    Erroneous_state.walk_evidence tb.Testbed.hv
      ~cr3:(Kernel.dom tb.Testbed.attacker).Domain.l4_mfn (Domain.kernel_vaddr_of_pfn 0)
  in
  check_int "four levels" 4 (List.length lines);
  check_bool "describes L4" true
    (match lines with l :: _ -> String.length l > 2 && String.sub l 0 2 = "L4" | [] -> false)

(* --- Injector ------------------------------------------------------------------ *)

let itb () =
  let tb = tb () in
  Injector.install tb.Testbed.hv;
  tb

let test_injector_install () =
  let tb = tb () in
  check_bool "absent" false (Injector.installed tb.Testbed.hv);
  Injector.install tb.Testbed.hv;
  check_bool "installed" true (Injector.installed tb.Testbed.hv);
  Injector.install tb.Testbed.hv;
  check_bool "idempotent" true (Injector.installed tb.Testbed.hv);
  check_bool "logged" true
    (List.exists
       (fun l ->
         let rec contains i =
           i + 18 <= String.length l && (String.sub l i 18 = "intrusion-injector" || contains (i + 1))
         in
         contains 0)
       (Hv.console_lines tb.Testbed.hv))

let test_injector_not_installed_enosys () =
  let tb = tb () in
  let k = tb.Testbed.attacker in
  check_int "enosys" (-38)
    (Kernel.hypercall_rc k
       (Hypercall.Raw { number = Injector.hypercall_number; args = [| 0L; 0L; 8L; 1L |] }))

let test_injector_write_read_linear () =
  let tb = itb () in
  let k = tb.Testbed.attacker in
  let target_mfn = Option.get (Domain.mfn_of_pfn (Kernel.dom tb.Testbed.victim) 5) in
  let addr = Layout.directmap_of_maddr (Addr.maddr_of_mfn target_mfn) in
  check_bool "write" true
    (Injector.write_u64 k ~addr ~action:Injector.Arbitrary_write_linear 0xC0FFEEL = Ok ());
  check_bool "phys landed" true
    (Phys_mem.read_u64 tb.Testbed.hv.Hv.mem (Addr.maddr_of_mfn target_mfn) = 0xC0FFEEL);
  check_bool "read back" true
    (Injector.read_u64 k ~addr ~action:Injector.Arbitrary_read_linear = Ok 0xC0FFEEL)

let test_injector_physical_mode () =
  let tb = itb () in
  let k = tb.Testbed.attacker in
  let target_mfn = Option.get (Domain.mfn_of_pfn (Kernel.dom tb.Testbed.victim) 6) in
  let addr = Addr.maddr_of_mfn target_mfn in
  check_bool "phys write" true
    (Injector.write_u64 k ~addr ~action:Injector.Arbitrary_write_physical 0xFEEDL = Ok ());
  check_bool "phys read" true
    (Injector.read_u64 k ~addr ~action:Injector.Arbitrary_read_physical = Ok 0xFEEDL)

let test_injector_rejects_bad_targets () =
  let tb = itb () in
  let k = tb.Testbed.attacker in
  check_bool "guest va not linear" true
    (Injector.write_u64 k ~addr:(Domain.kernel_vaddr_of_pfn 5)
       ~action:Injector.Arbitrary_write_linear 0L
    = Error Errno.EINVAL);
  check_bool "out of range physical" true
    (Injector.write_u64 k ~addr:0x7FFF_FFFF_0000L ~action:Injector.Arbitrary_write_physical 0L
    = Error Errno.EINVAL)

let test_injector_action_codes () =
  List.iter
    (fun a ->
      match Injector.action_of_code (Injector.action_code a) with
      | Some a' -> check_bool "roundtrip" true (a = a')
      | None -> Alcotest.fail "action code")
    [
      Injector.Arbitrary_read_linear;
      Injector.Arbitrary_write_linear;
      Injector.Arbitrary_read_physical;
      Injector.Arbitrary_write_physical;
    ];
  check_bool "bad code" true (Injector.action_of_code 9L = None)

let test_injector_works_on_all_versions () =
  List.iter
    (fun version ->
      let tb = Testbed.create version in
      Injector.install tb.Testbed.hv;
      let k = tb.Testbed.attacker in
      let addr = Layout.directmap_of_maddr (Addr.maddr_of_mfn tb.Testbed.hv.Hv.idt_mfn) in
      check_bool
        (Printf.sprintf "injects on %s" (Version.to_string version))
        true
        (Injector.write_u64 k ~addr ~action:Injector.Arbitrary_write_linear 0xBADL = Ok ()))
    Version.all

let prop_injector_write_read_identity =
  QCheck.Test.make ~name:"injector write/read identity" ~count:50
    QCheck.(pair (int_bound 400) (map Int64.of_int int))
    (fun (off, v) ->
      let tb = Testbed.create Version.V4_8 in
      Injector.install tb.Testbed.hv;
      let k = tb.Testbed.attacker in
      let base = Addr.maddr_of_mfn (Option.get (Domain.mfn_of_pfn (Kernel.dom tb.Testbed.victim) 7)) in
      let addr = Int64.add base (Int64.of_int (off * 8)) in
      let addr = if off * 8 + 8 > Addr.page_size then base else addr in
      Injector.write_u64 k ~addr ~action:Injector.Arbitrary_write_physical v = Ok ()
      && Injector.read_u64 k ~addr ~action:Injector.Arbitrary_read_physical = Ok v)

(* --- Monitor ---------------------------------------------------------------------- *)

let test_monitor_clean_baseline () =
  let tb = tb () in
  let s = Monitor.snapshot tb in
  let s' = Monitor.snapshot tb in
  check_bool "no violations on idle system" true (Monitor.violations ~before:s ~after:s' = []);
  check_bool "zero pt exposure" true (List.for_all (fun (_, n) -> n = 0) s.Monitor.pt_exposure)

let test_monitor_detects_crash () =
  let tb = tb () in
  let before = Monitor.snapshot tb in
  Hv.panic tb.Testbed.hv ~reason:"BOOM" ~dump:[];
  let after = Monitor.snapshot tb in
  match Monitor.violations ~before ~after with
  | [ Monitor.Hypervisor_crash r ] -> check_str "reason" "BOOM" r
  | _ -> Alcotest.fail "expected crash violation"

let test_monitor_detects_escalation () =
  let tb = tb () in
  let before = Monitor.snapshot tb in
  Fs.write (Kernel.fs tb.Testbed.victim) ~path:"/tmp/injector_log" ~uid:0 "pwned";
  let after = Monitor.snapshot tb in
  check_bool "escalation" true
    (List.exists
       (function Monitor.Privilege_escalation _ -> true | _ -> false)
       (Monitor.violations ~before ~after))

let test_monitor_pt_exposure () =
  let tb = tb () in
  let hv = tb.Testbed.hv in
  let dom = Kernel.dom tb.Testbed.attacker in
  check_int "clean" 0 (Monitor.writable_pt_exposure hv dom);
  (* plant a writable self-map in a guest-reachable slot *)
  Frame.set_entry (Phys_mem.frame hv.Hv.mem dom.Domain.l4_mfn) Layout.xen_extra_slot
    (Pte.make ~mfn:dom.Domain.l4_mfn ~flags:[ Pte.Present; Pte.User; Pte.Rw ]);
  check_bool "exposure detected" true (Monitor.writable_pt_exposure hv dom > 0)

let test_monitor_pt_exposure_respects_hardening () =
  let tb = Testbed.create Version.V4_13 in
  let hv = tb.Testbed.hv in
  let dom = Kernel.dom tb.Testbed.attacker in
  Frame.set_entry (Phys_mem.frame hv.Hv.mem dom.Domain.l4_mfn) Layout.xen_extra_slot
    (Pte.make ~mfn:dom.Domain.l4_mfn ~flags:[ Pte.Present; Pte.User; Pte.Rw ]);
  check_int "hardened layout hides the state" 0 (Monitor.writable_pt_exposure hv dom)

let test_monitor_same_class () =
  let a = [ Monitor.Hypervisor_crash "x" ] in
  let b = [ Monitor.Hypervisor_crash "y" ] in
  check_bool "same modulo evidence" true (Monitor.same_class a b);
  check_bool "different" false (Monitor.same_class a [ Monitor.Privilege_escalation "z" ]);
  check_bool "empty vs empty" true (Monitor.same_class [] [])

(* --- Avi ------------------------------------------------------------------------ *)

let test_avi_venom_chain () =
  let final, trace = Avi.run Avi.Correct Avi.venom_scenario in
  (match final with Avi.Violated _ -> () | _ -> Alcotest.fail "expected violation");
  check_int "trace length" 4 (List.length trace);
  check_bool "reachable" true (Avi.reachable_violation Avi.venom_scenario)

let test_avi_handled () =
  let events =
    [
      Avi.Introduce_vulnerability "v";
      Avi.Attack { exploit = "e"; activates = true };
      Avi.Error_handling "page-type audit";
    ]
  in
  match Avi.run Avi.Correct events with
  | Avi.Handled _, _ -> ()
  | _ -> Alcotest.fail "expected handled"

let test_avi_no_violation_without_activation () =
  let events =
    [ Avi.Introduce_vulnerability "v"; Avi.Attack { exploit = "e"; activates = false }; Avi.Propagate ]
  in
  check_bool "latent fault stays latent" false (Avi.reachable_violation events)

let test_avi_no_violation_without_vulnerability () =
  let events = [ Avi.Attack { exploit = "e"; activates = true }; Avi.Propagate ] in
  check_bool "no vuln, no intrusion" false (Avi.reachable_violation events)

let prop_avi_violation_needs_attack_and_vuln =
  let event_gen =
    QCheck.Gen.(
      oneof
        [
          return (Avi.Introduce_vulnerability "v");
          map (fun b -> Avi.Attack { exploit = "e"; activates = b }) bool;
          return (Avi.Error_handling "h");
          return Avi.Propagate;
        ])
  in
  QCheck.Test.make ~name:"violation requires vulnerability then activating attack" ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_bound 8) event_gen))
    (fun events ->
      if Avi.reachable_violation events then
        List.exists (function Avi.Introduce_vulnerability _ -> true | _ -> false) events
        && List.exists (function Avi.Attack { activates = true; _ } -> true | _ -> false) events
      else true)

(* --- Weird_machine ----------------------------------------------------------------- *)

let test_weird_machine_concrete () =
  let m = Weird_machine.xsa_example in
  (match Weird_machine.run_concrete m [ "a"; "b"; "crafted-hypercall" ] with
  | Weird_machine.Erroneous_reached _ -> ()
  | Weird_machine.Running _ -> Alcotest.fail "expected erroneous state");
  match Weird_machine.run_concrete m [ "a"; "a"; "a" ] with
  | Weird_machine.Running 2 -> ()
  | _ -> Alcotest.fail "expected state 2"

let test_weird_machine_abstraction () =
  let m = Weird_machine.xsa_example in
  let inputs = [ "a"; "b"; "crafted-hypercall" ] in
  (match Weird_machine.abstract m ~inputs with
  | Some a -> (
      match Weird_machine.run_abstract a inputs with
      | Weird_machine.Erroneous_reached _ -> ()
      | Weird_machine.Running _ -> Alcotest.fail "abstract must reach erroneous")
  | None -> Alcotest.fail "abstraction exists");
  check_bool "benign has no abstraction" true (Weird_machine.abstract m ~inputs:[ "a" ] = None)

let prop_weird_machine_equivalence =
  let input_gen = QCheck.Gen.(oneofl [ "a"; "b"; "c"; "crafted-hypercall"; "noise" ]) in
  QCheck.Test.make ~name:"concrete and abstract machines agree (Fig 3)" ~count:500
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_bound 6) input_gen))
    (fun inputs -> Weird_machine.equivalent Weird_machine.xsa_example ~inputs)

(* --- Im_catalog ----------------------------------------------------------------- *)

let test_catalog_covers_taxonomy () =
  check_int "one entry per functionality" (List.length Af.all) (List.length Im_catalog.catalog);
  List.iter
    (fun af ->
      let e = Im_catalog.find af in
      check_bool "right functionality" true (e.Im_catalog.functionality = af))
    Af.all

let test_catalog_models_consistent () =
  List.iter
    (fun e ->
      (* every model inside an entry carries the entry's functionality *)
      List.iter
        (fun m ->
          check_bool "model functionality matches" true
            (m.Intrusion_model.functionality = e.Im_catalog.functionality))
        e.Im_catalog.models;
      (* implemented entries come with models and example states *)
      if Im_catalog.implemented e then begin
        check_bool "has a model" true (e.Im_catalog.models <> []);
        check_bool "has example states" true (e.Im_catalog.example_states <> [])
      end
      else check_bool "unimplemented documented" true
        (match e.Im_catalog.injector with
        | Im_catalog.Unimplemented why -> String.length why > 10
        | _ -> false))
    Im_catalog.catalog

let test_catalog_coverage () =
  let got, total = Im_catalog.coverage () in
  check_int "total" 16 total;
  check_int "implemented" 14 got;
  check_bool "render mentions coverage" true
    (let s = Im_catalog.render () in
     let needle = "14/16" in
     let n = String.length needle and m = String.length s in
     let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
     go 0)

(* --- Report / Pipeline ----------------------------------------------------------------- *)

let test_report_table () =
  let s = Report.table ~title:"T" ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  check_bool "title" true (String.length s > 0 && s.[0] = 'T');
  check_bool "grid" true (String.contains s '+');
  check_str "check" "Y" (Report.check true);
  check_str "empty" "" (Report.check false)

let test_pipeline_stages () =
  let tb = tb () in
  let im = im_a in
  let inject (tb : Testbed.t) =
    let hv = tb.Testbed.hv in
    let l4 = (Kernel.dom tb.Testbed.attacker).Domain.l4_mfn in
    Frame.set_entry (Phys_mem.frame hv.Hv.mem l4) Layout.xen_extra_slot
      (Pte.make ~mfn:l4 ~flags:[ Pte.Present; Pte.User; Pte.Rw ]);
    {
      Campaign.transcript = [ "planted self-map" ];
      states = [ Erroneous_state.L4_selfmap_writable { l4_mfn = l4; slot = Layout.xen_extra_slot } ];
      rc = None;
    }
  in
  let trace = Pipeline.run tb ~im ~inject in
  check_bool "injected" true trace.Pipeline.p_injected;
  check_int "five stages" 5 (List.length trace.Pipeline.p_stages);
  check_bool "violation observed" true (trace.Pipeline.p_violations <> []);
  Alcotest.(check (list string))
    "stage names"
    [ "intrusion-model"; "injector"; "erroneous-state"; "audit"; "monitor" ]
    (List.map (fun s -> s.Pipeline.stage) trace.Pipeline.p_stages)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "core"
    [
      ( "abusive_functionality",
        [
          Alcotest.test_case "taxonomy shape" `Quick test_af_taxonomy_shape;
          Alcotest.test_case "paper totals" `Quick test_af_paper_totals;
          Alcotest.test_case "string roundtrip" `Quick test_af_string_roundtrip;
          Alcotest.test_case "paper rows" `Quick test_af_paper_rows;
        ] );
      ( "intrusion_model",
        [
          Alcotest.test_case "compatibility" `Quick test_im_compatibility;
          Alcotest.test_case "render" `Quick test_im_render;
        ] );
      ( "erroneous_state",
        [
          Alcotest.test_case "idt audit" `Quick test_audit_idt;
          Alcotest.test_case "l4 self-map audit" `Quick test_audit_l4_selfmap;
          Alcotest.test_case "page kept audit" `Quick test_audit_page_kept;
          Alcotest.test_case "interrupt storm audit" `Quick test_audit_interrupt_storm;
          Alcotest.test_case "walk evidence" `Quick test_walk_evidence;
        ] );
      ( "injector",
        [
          Alcotest.test_case "install" `Quick test_injector_install;
          Alcotest.test_case "enosys when absent" `Quick test_injector_not_installed_enosys;
          Alcotest.test_case "write/read linear" `Quick test_injector_write_read_linear;
          Alcotest.test_case "physical mode" `Quick test_injector_physical_mode;
          Alcotest.test_case "rejects bad targets" `Quick test_injector_rejects_bad_targets;
          Alcotest.test_case "action codes" `Quick test_injector_action_codes;
          Alcotest.test_case "works on all versions" `Quick test_injector_works_on_all_versions;
        ]
        @ qsuite [ prop_injector_write_read_identity ] );
      ( "monitor",
        [
          Alcotest.test_case "clean baseline" `Quick test_monitor_clean_baseline;
          Alcotest.test_case "detects crash" `Quick test_monitor_detects_crash;
          Alcotest.test_case "detects escalation" `Quick test_monitor_detects_escalation;
          Alcotest.test_case "pt exposure" `Quick test_monitor_pt_exposure;
          Alcotest.test_case "pt exposure respects hardening" `Quick
            test_monitor_pt_exposure_respects_hardening;
          Alcotest.test_case "same class" `Quick test_monitor_same_class;
        ] );
      ( "avi",
        [
          Alcotest.test_case "venom chain" `Quick test_avi_venom_chain;
          Alcotest.test_case "handled" `Quick test_avi_handled;
          Alcotest.test_case "no activation no violation" `Quick
            test_avi_no_violation_without_activation;
          Alcotest.test_case "no vulnerability no violation" `Quick
            test_avi_no_violation_without_vulnerability;
        ]
        @ qsuite [ prop_avi_violation_needs_attack_and_vuln ] );
      ( "weird_machine",
        [
          Alcotest.test_case "concrete runs" `Quick test_weird_machine_concrete;
          Alcotest.test_case "abstraction" `Quick test_weird_machine_abstraction;
        ]
        @ qsuite [ prop_weird_machine_equivalence ] );
      ( "im_catalog",
        [
          Alcotest.test_case "covers taxonomy" `Quick test_catalog_covers_taxonomy;
          Alcotest.test_case "models consistent" `Quick test_catalog_models_consistent;
          Alcotest.test_case "coverage" `Quick test_catalog_coverage;
        ] );
      ( "report+pipeline",
        [
          Alcotest.test_case "table rendering" `Quick test_report_table;
          Alcotest.test_case "pipeline stages" `Quick test_pipeline_stages;
        ] );
    ]
