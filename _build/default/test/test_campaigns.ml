(* Tests for the deterministic PRNG and the randomized injection
   campaigns (§IV-C). *)

open Ii_xen
open Ii_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Prng --------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:123L in
  let b = Prng.create ~seed:123L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seed_matters () =
  let a = Prng.create ~seed:1L in
  let b = Prng.create ~seed:2L in
  check_bool "different streams" true
    (List.init 8 (fun _ -> Prng.next a) <> List.init 8 (fun _ -> Prng.next b))

let test_prng_zero_seed () =
  let a = Prng.create ~seed:0L in
  check_bool "zero seed produces output" true (Prng.next a <> 0L)

let test_prng_copy () =
  let a = Prng.create ~seed:9L in
  ignore (Prng.next a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next a) (Prng.next b)

let test_prng_int_bounds () =
  let rng = Prng.create ~seed:5L in
  for _ = 1 to 1000 do
    let v = Prng.int rng ~bound:7 in
    check_bool "in range" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng ~bound:0))

let test_prng_choose () =
  let rng = Prng.create ~seed:5L in
  let xs = [ "a"; "b"; "c" ] in
  for _ = 1 to 100 do
    check_bool "member" true (List.mem (Prng.choose rng xs) xs)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty list") (fun () ->
      ignore (Prng.choose rng []))

let prop_prng_int_distribution =
  QCheck.Test.make ~name:"prng ints cover the range" ~count:20
    QCheck.(int_range 2 32)
    (fun bound ->
      let rng = Prng.create ~seed:(Int64.of_int (bound * 7919)) in
      let seen = Array.make bound false in
      for _ = 1 to bound * 64 do
        seen.(Prng.int rng ~bound) <- true
      done;
      Array.for_all (fun b -> b) seen)

(* --- Random_campaign ------------------------------------------------------ *)

let small ?(targets = Random_campaign.intrusion_targets) ?(seed = 7L) version =
  Random_campaign.run ~seed ~trials:30 ~targets version

let test_campaign_shape () =
  let s = small Version.V4_6 in
  check_int "trials recorded" 30 (List.length s.Random_campaign.trials);
  check_int "tally sums to trials" 30
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Random_campaign.tally);
  check_bool "indices ordered" true
    (List.mapi (fun i t -> t.Random_campaign.index = i) s.Random_campaign.trials
    |> List.for_all (fun b -> b))

let test_campaign_deterministic () =
  let a = small Version.V4_8 in
  let b = small Version.V4_8 in
  check_bool "same outcomes" true
    (List.map (fun t -> t.Random_campaign.outcome) a.Random_campaign.trials
    = List.map (fun t -> t.Random_campaign.outcome) b.Random_campaign.trials);
  check_bool "same addresses" true
    (List.map (fun t -> t.Random_campaign.t_addr) a.Random_campaign.trials
    = List.map (fun t -> t.Random_campaign.t_addr) b.Random_campaign.trials)

let test_campaign_same_trials_across_versions () =
  let sums = Random_campaign.compare_versions ~seed:7L ~trials:30 Version.all in
  match sums with
  | [ a; b; c ] ->
      let addrs s = List.map (fun t -> t.Random_campaign.t_addr) s.Random_campaign.trials in
      check_bool "same targets hit on every version" true
        (addrs a = addrs b && addrs b = addrs c)
  | _ -> Alcotest.fail "three summaries"

let test_campaign_idt_class_crashes () =
  let s =
    Random_campaign.run ~seed:42L ~trials:60 ~targets:[ Random_campaign.Idt_gates ] Version.V4_6
  in
  check_bool "some crashes" true (List.assoc Random_campaign.Crashed s.Random_campaign.tally > 0);
  (* crashes must come with a crash violation recorded *)
  List.iter
    (fun t ->
      if t.Random_campaign.outcome = Random_campaign.Crashed then
        check_bool "crash violation attached" true
          (List.exists
             (function Monitor.Hypervisor_crash _ -> true | _ -> false)
             t.Random_campaign.t_violations))
    s.Random_campaign.trials

let test_campaign_m2p_class_violates_integrity () =
  let s =
    Random_campaign.run ~seed:11L ~trials:40 ~targets:[ Random_campaign.M2p_entries ] Version.V4_8
  in
  check_bool "m2p corruption observable" true
    (List.assoc Random_campaign.Violated s.Random_campaign.tally > 0)

let test_campaign_soft_errors_are_latent () =
  (* single accidental bit flips mostly stay latent: never Refused, and
     the campaign survives them without exceptions *)
  let s =
    Random_campaign.run ~seed:3L ~trials:50 ~targets:[ Random_campaign.Soft_error_bit_flip ]
      Version.V4_6
  in
  check_int "nothing refused" 0 (List.assoc Random_campaign.Refused s.Random_campaign.tally);
  check_int "tally total" 50
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Random_campaign.tally)

let test_campaign_reboots_after_crash () =
  (* with only the IDT class and many trials, several crashes occur; the
     campaign must keep making progress (fresh testbeds) *)
  let s =
    Random_campaign.run ~seed:42L ~trials:80 ~targets:[ Random_campaign.Idt_gates ] Version.V4_6
  in
  check_int "all trials ran" 80 (List.length s.Random_campaign.trials)

let test_campaign_component_hooks () =
  let s =
    Random_campaign.run ~seed:5L ~trials:40 ~targets:[ Random_campaign.Component_hooks ]
      Version.V4_8
  in
  check_int "all trials ran" 40 (List.length s.Random_campaign.trials);
  check_int "none refused" 0 (List.assoc Random_campaign.Refused s.Random_campaign.tally);
  (* hooks are observable: the majority of trials violate something *)
  check_bool "violations observed" true
    (List.assoc Random_campaign.Violated s.Random_campaign.tally
     + List.assoc Random_campaign.Crashed s.Random_campaign.tally
    > 10);
  (* determinism still holds with hooks in the mix *)
  let s2 =
    Random_campaign.run ~seed:5L ~trials:40 ~targets:[ Random_campaign.Component_hooks ]
      Version.V4_8
  in
  check_bool "deterministic" true
    (List.map (fun t -> t.Random_campaign.outcome) s.Random_campaign.trials
    = List.map (fun t -> t.Random_campaign.outcome) s2.Random_campaign.trials)

let test_campaign_rejects_empty_targets () =
  Alcotest.check_raises "no targets" (Invalid_argument "Random_campaign.run: no targets")
    (fun () -> ignore (Random_campaign.run ~targets:[] Version.V4_6))

let test_campaign_render () =
  let sums = Random_campaign.compare_versions ~seed:7L ~trials:10 [ Version.V4_6; Version.V4_13 ] in
  let s = Random_campaign.render sums in
  check_bool "mentions versions" true
    (let has needle =
       let n = String.length needle and m = String.length s in
       let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
       go 0
     in
     has "4.6" && has "4.13" && has "crashed")

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "campaigns"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed matters" `Quick test_prng_seed_matters;
          Alcotest.test_case "zero seed" `Quick test_prng_zero_seed;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "choose" `Quick test_prng_choose;
        ]
        @ qsuite [ prop_prng_int_distribution ] );
      ( "random_campaign",
        [
          Alcotest.test_case "shape" `Quick test_campaign_shape;
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
          Alcotest.test_case "same trials across versions" `Quick
            test_campaign_same_trials_across_versions;
          Alcotest.test_case "idt class crashes" `Quick test_campaign_idt_class_crashes;
          Alcotest.test_case "m2p class violates integrity" `Quick
            test_campaign_m2p_class_violates_integrity;
          Alcotest.test_case "soft errors are latent" `Quick test_campaign_soft_errors_are_latent;
          Alcotest.test_case "reboots after crash" `Quick test_campaign_reboots_after_crash;
          Alcotest.test_case "component hooks" `Quick test_campaign_component_hooks;
          Alcotest.test_case "rejects empty targets" `Quick test_campaign_rejects_empty_targets;
          Alcotest.test_case "render" `Quick test_campaign_render;
        ] );
    ]
