(* Tests for the advisory corpus and classifier (Table I). *)

open Ii_core
open Ii_advisory

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module Af = Abusive_functionality

let contains line needle =
  let n = String.length needle and m = String.length line in
  let rec go i = i + n <= m && (String.sub line i n = needle || go (i + 1)) in
  go 0

let test_corpus_size () =
  check_int "100 CVEs" 100 Corpus.size;
  check_int "108 classifications" 108 Corpus.classifications

let test_counts_match_table1 () =
  List.iter
    (fun (af, n) -> check_int (Af.to_string af) (Af.paper_count af) n)
    (Corpus.counts ())

let test_class_totals () =
  List.iter
    (fun (cls, n) -> check_int (Af.cls_to_string cls) (Af.paper_class_total cls) n)
    (Corpus.class_totals ())

let test_every_entry_labelled () =
  List.iter
    (fun e ->
      check_bool "non-empty labels" true (e.Corpus.afs <> []);
      check_bool "at most two" true (List.length e.Corpus.afs <= 2);
      check_bool "no duplicate labels" true
        (List.length (List.sort_uniq compare e.Corpus.afs) = List.length e.Corpus.afs);
      check_bool "summary non-empty" true (String.length e.Corpus.summary > 20);
      check_bool "cve formatted" true
        (String.length e.Corpus.cve >= 4
        && (String.sub e.Corpus.cve 0 4 = "CVE-" || String.sub e.Corpus.cve 0 4 = "XSA-")))
    Corpus.corpus

let test_multilabel_entries () =
  let duals = List.filter (fun e -> List.length e.Corpus.afs = 2) Corpus.corpus in
  check_int "eight dual-label CVEs (108 - 100)" 8 (List.length duals);
  (* the paper's named multi-functionality examples are present *)
  check_bool "CVE-2019-17343" true
    (List.exists (fun e -> e.Corpus.cve = "CVE-2019-17343") duals);
  check_bool "CVE-2020-27672" true
    (List.exists (fun e -> e.Corpus.cve = "CVE-2020-27672") duals)

let test_paper_anchors_present () =
  List.iter
    (fun (xsa, af) ->
      match Corpus.find_xsa xsa with
      | Some e ->
          check_bool (Printf.sprintf "XSA-%d labelled" xsa) true (List.mem af e.Corpus.afs);
          check_bool "anchor not synthetic" false e.Corpus.synthetic
      | None -> Alcotest.fail (Printf.sprintf "XSA-%d missing" xsa))
    [
      (148, Af.Guest_writable_page_table_entry);
      (182, Af.Guest_writable_page_table_entry);
      (212, Af.Write_unauthorized_arbitrary_memory);
      (133, Af.Write_unauthorized_memory);
      (387, Af.Keep_page_access);
      (393, Af.Keep_page_access);
    ]

let test_entries_for () =
  let keep = Corpus.entries_for Af.Keep_page_access in
  check_int "keep page access entries" 11 (List.length keep);
  check_bool "387 among them" true (List.exists (fun e -> e.Corpus.xsa = Some 387) keep)

let test_classifier_exact () =
  Alcotest.(check (float 0.0)) "accuracy 1.0" 1.0 (Classify.accuracy ());
  check_int "no confusion" 0 (List.length (Classify.confusion ()))

let test_classifier_rules_cover_taxonomy () =
  List.iter
    (fun af -> check_bool (Af.to_string af) true (List.mem_assoc af Classify.rules))
    Af.all

let test_classifier_on_fresh_text () =
  let entry =
    {
      Corpus.xsa = None;
      cve = "CVE-2099-0001";
      year = 2099;
      title = "test";
      component = "memory management";
      summary =
        "A race lets a guest retain access to a page after releasing it; separately a \
         guest-controlled loop condition can hang the CPU.";
      afs = [ Af.Keep_page_access; Af.Induce_hang_state ];
      synthetic = true;
    }
  in
  Alcotest.(check bool)
    "multi-label classification" true
    (List.sort compare (Classify.classify entry) = List.sort compare entry.Corpus.afs)

let test_classifier_empty_summary () =
  let entry =
    {
      Corpus.xsa = None;
      cve = "CVE-2099-0002";
      year = 2099;
      title = "";
      component = "";
      summary = "nothing relevant here";
      afs = [];
      synthetic = true;
    }
  in
  check_int "no labels" 0 (List.length (Classify.classify entry))

(* --- Field_study --------------------------------------------------------- *)

let test_field_study_totals () =
  let sum l = List.fold_left (fun a (_, n) -> a + n) 0 l in
  check_int "years cover all CVEs" 100 (sum (Field_study.by_year ()));
  check_int "components cover all CVEs" 100 (sum (Field_study.by_component ()));
  check_int "classes cover all classifications" 108 (sum (Field_study.by_class ()));
  check_int "prevalence covers all classifications" 108 (sum (Field_study.prevalence ()))

let test_field_study_prevalence_order () =
  match Field_study.prevalence () with
  | (top_af, top_n) :: rest ->
      check_bool "hang state leads" true (top_af = Af.Induce_hang_state);
      check_int "with 20" 20 top_n;
      check_bool "descending" true
        (List.for_all2
           (fun (_, a) (_, b) -> a >= b)
           ((top_af, top_n) :: rest |> List.filteri (fun i _ -> i < List.length rest))
           rest)
  | [] -> Alcotest.fail "empty prevalence"

let test_field_study_campaign_plan () =
  let plan = Field_study.campaign_plan ~top:5 in
  check_int "five entries" 5 (List.length plan);
  List.iter
    (fun (af, entry) ->
      check_bool "injectable" true (Ii_core.Im_catalog.implemented entry);
      check_bool "entry matches" true (entry.Ii_core.Im_catalog.functionality = af))
    plan;
  (* the plan is ordered by prevalence *)
  match plan with
  | (first, _) :: _ -> check_bool "hang first" true (first = Af.Induce_hang_state)
  | [] -> Alcotest.fail "empty plan"

let test_field_study_injectable_share () =
  let share = Field_study.injectable_share () in
  (* 108 classifications; only Fail-Access (3) and Fail-Mapping (2)
     lack injectors: 103/108 *)
  check_bool "share" true (Float.abs (share -. (103. /. 108.)) < 1e-9)

let test_table1_rendering () =
  let t = Corpus.table1 () in
  check_bool "title" true (contains t "TABLE I");
  check_bool "class header with total" true (contains t "Memory Management - 40 CVEs");
  check_bool "row" true (contains t "Keep Page Access");
  check_bool "count" true (contains t "11")

let () =
  Alcotest.run "advisory"
    [
      ( "corpus",
        [
          Alcotest.test_case "size" `Quick test_corpus_size;
          Alcotest.test_case "counts match Table I" `Quick test_counts_match_table1;
          Alcotest.test_case "class totals" `Quick test_class_totals;
          Alcotest.test_case "entries well-formed" `Quick test_every_entry_labelled;
          Alcotest.test_case "multi-label entries" `Quick test_multilabel_entries;
          Alcotest.test_case "paper anchors" `Quick test_paper_anchors_present;
          Alcotest.test_case "entries_for" `Quick test_entries_for;
        ] );
      ( "classifier",
        [
          Alcotest.test_case "exact on corpus" `Quick test_classifier_exact;
          Alcotest.test_case "rules cover taxonomy" `Quick test_classifier_rules_cover_taxonomy;
          Alcotest.test_case "fresh text" `Quick test_classifier_on_fresh_text;
          Alcotest.test_case "irrelevant text" `Quick test_classifier_empty_summary;
        ] );
      ( "field_study",
        [
          Alcotest.test_case "totals" `Quick test_field_study_totals;
          Alcotest.test_case "prevalence order" `Quick test_field_study_prevalence_order;
          Alcotest.test_case "campaign plan" `Quick test_field_study_campaign_plan;
          Alcotest.test_case "injectable share" `Quick test_field_study_injectable_share;
        ] );
      ("table1", [ Alcotest.test_case "rendering" `Quick test_table1_rendering ]);
    ]
