(* Tests for the management-interface substrate and intrusion model:
   XenStore permissions, the dom0 toolstack, the guest balloon driver,
   and the injected-tampering erroneous state. *)

open Ii_xen
open Ii_guest
open Ii_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- Xenstore ------------------------------------------------------------ *)

let test_xenstore_paths () =
  check_str "domain path" "/local/domain/3/memory/target" (Xenstore.domain_path 3 "memory/target")

let test_xenstore_permissions () =
  let xs = Xenstore.create () in
  (* dom0 writes anywhere *)
  check_bool "dom0 write" true (Xenstore.write xs ~caller:0 "/local/domain/2/name" "g" = Ok ());
  check_bool "dom0 read" true (Xenstore.read xs ~caller:0 "/local/domain/2/name" = Ok "g");
  (* a guest only within its own subtree *)
  check_bool "own write" true (Xenstore.write xs ~caller:2 "/local/domain/2/data/x" "1" = Ok ());
  check_bool "foreign write refused" true
    (Xenstore.write xs ~caller:2 "/local/domain/1/memory/target" "0" = Error Errno.EACCES);
  check_bool "foreign read refused" true
    (Xenstore.read xs ~caller:2 "/local/domain/1/name" = Error Errno.EACCES);
  check_bool "missing" true (Xenstore.read xs ~caller:2 "/local/domain/2/nope" = Error Errno.ENOENT)

let test_xenstore_rm_and_list () =
  let xs = Xenstore.create () in
  ignore (Xenstore.write xs ~caller:0 "/local/domain/1/a" "1");
  ignore (Xenstore.write xs ~caller:0 "/local/domain/1/b" "2");
  ignore (Xenstore.write xs ~caller:0 "/local/domain/2/c" "3");
  (match Xenstore.list_prefix xs ~caller:0 "/local/domain/1/" with
  | Ok l -> Alcotest.(check (list string)) "list" [ "/local/domain/1/a"; "/local/domain/1/b" ] l
  | Error _ -> Alcotest.fail "list");
  check_bool "guest list own" true
    (Xenstore.list_prefix xs ~caller:1 "/local/domain/1/" = Ok [ "/local/domain/1/a"; "/local/domain/1/b" ]);
  check_bool "guest list foreign refused" true
    (Xenstore.list_prefix xs ~caller:1 "/local/domain/2/" = Error Errno.EACCES);
  check_bool "rm" true (Xenstore.rm xs ~caller:0 "/local/domain/1/a" = Ok ());
  check_bool "rm gone" true (Xenstore.rm xs ~caller:0 "/local/domain/1/a" = Error Errno.ENOENT);
  check_int "dump" 2 (List.length (Xenstore.dump xs))

let test_xenstore_inject_bypasses_perms () =
  let xs = Xenstore.create () in
  Xenstore.inject_write xs "/local/domain/1/memory/target" "16";
  check_bool "landed" true (Xenstore.read xs ~caller:0 "/local/domain/1/memory/target" = Ok "16")

(* --- Toolstack ----------------------------------------------------------- *)

let tb () = Testbed.create Version.V4_8

let test_builder_seeds_xenstore () =
  let tb = tb () in
  let hv = tb.Testbed.hv in
  check_bool "name node" true
    (Xenstore.read hv.Hv.xenstore ~caller:0 (Xenstore.domain_path 2 "name") = Ok "guest03");
  check_bool "target node" true (Toolstack.memory_target hv ~domid:2 = Some 96)

let test_toolstack_set_target () =
  let tb = tb () in
  let victim_id = Kernel.domid tb.Testbed.victim in
  check_bool "dom0 sets target" true
    (Toolstack.set_memory_target tb.Testbed.dom0 ~domid:victim_id ~pages:80 = Ok ());
  check_bool "visible" true (Toolstack.memory_target tb.Testbed.hv ~domid:victim_id = Some 80);
  (* an unprivileged guest cannot *)
  check_bool "attacker refused" true
    (Toolstack.set_memory_target tb.Testbed.attacker ~domid:victim_id ~pages:1
    = Error Errno.EACCES)

let test_toolstack_name_and_list () =
  let tb = tb () in
  check_bool "name" true (Toolstack.guest_name tb.Testbed.dom0 ~domid:2 = Ok "guest03");
  match Toolstack.list_domain_nodes tb.Testbed.dom0 with
  | Ok l -> check_int "six nodes (3 domains x 2)" 6 (List.length l)
  | Error _ -> Alcotest.fail "list"

(* --- Balloon driver -------------------------------------------------------- *)

let test_balloon_honours_target () =
  let tb = tb () in
  let victim = tb.Testbed.victim in
  let victim_id = Kernel.domid victim in
  let before = List.length (Domain.populated_pfns (Kernel.dom victim)) in
  ignore (Toolstack.set_memory_target tb.Testbed.dom0 ~domid:victim_id ~pages:(before - 10));
  Kernel.tick victim;
  let after = List.length (Domain.populated_pfns (Kernel.dom victim)) in
  check_int "released ten pages" (before - 10) after;
  check_bool "logged" true
    (List.exists
       (fun l ->
         let rec contains i =
           i + 7 <= String.length l && (String.sub l i 7 = "balloon" || contains (i + 1))
         in
         contains 0)
       (Kernel.klog victim))

let test_balloon_never_releases_pt_or_special_pages () =
  let tb = tb () in
  let victim = tb.Testbed.victim in
  let dom = Kernel.dom victim in
  ignore (Toolstack.set_memory_target tb.Testbed.dom0 ~domid:(Kernel.domid victim) ~pages:1);
  for _ = 1 to 5 do
    Kernel.tick victim
  done;
  (* special pages and the page tables must survive any target *)
  check_bool "start_info" true (Domain.mfn_of_pfn dom 0 <> None);
  check_bool "vdso" true (Domain.mfn_of_pfn dom 1 <> None);
  List.iter
    (fun mfn ->
      check_bool "pt page survives" true
        (Phys_mem.owner tb.Testbed.hv.Hv.mem mfn = Domain.owned dom
        || Phys_mem.owner tb.Testbed.hv.Hv.mem mfn = Phys_mem.Xen))
    dom.Domain.pt_pages;
  (* the kernel stays functional *)
  check_bool "kernel alive" true (Result.is_ok (Kernel.read_u64 victim (Kernel.start_info_vaddr victim)))

let test_balloon_stable_at_target () =
  let tb = tb () in
  let victim = tb.Testbed.victim in
  ignore (Toolstack.set_memory_target tb.Testbed.dom0 ~domid:(Kernel.domid victim) ~pages:90);
  Kernel.tick victim;
  let a = List.length (Domain.populated_pfns (Kernel.dom victim)) in
  Kernel.tick victim;
  let b = List.length (Domain.populated_pfns (Kernel.dom victim)) in
  check_int "no further release" a b

(* --- the management-interface intrusion model ------------------------------ *)

let test_injected_tampering_causes_availability_violation () =
  let tb = tb () in
  let victim = tb.Testbed.victim in
  let victim_id = Kernel.domid victim in
  let path = Xenstore.domain_path victim_id "memory/target" in
  let spec = Erroneous_state.Xenstore_tampered { path; legitimate = "96" } in
  check_bool "clean" false (Erroneous_state.audit tb.Testbed.hv spec).Erroneous_state.holds;
  let before = Monitor.snapshot tb in
  (* the injection: a compromised management plane shrinks the victim *)
  Xenstore.inject_write tb.Testbed.hv.Hv.xenstore path "40";
  check_bool "state audited" true (Erroneous_state.audit tb.Testbed.hv spec).Erroneous_state.holds;
  Testbed.tick_all tb;
  let after = Monitor.snapshot tb in
  let violations = Monitor.violations ~before ~after in
  check_bool "availability violation" true
    (List.exists
       (function Monitor.Availability_degradation _ -> true | _ -> false)
       violations)

let test_legitimate_ballooning_is_not_an_intrusion () =
  (* The same state change via the *authorized* path still registers as
     availability pressure — the monitor reports effects, and the audit
     distinguishes tampering by comparing against the recorded
     legitimate value, which dom0 updates. *)
  let tb = tb () in
  let victim_id = Kernel.domid tb.Testbed.victim in
  ignore (Toolstack.set_memory_target tb.Testbed.dom0 ~domid:victim_id ~pages:40);
  let path = Xenstore.domain_path victim_id "memory/target" in
  let spec = Erroneous_state.Xenstore_tampered { path; legitimate = "40" } in
  check_bool "not tampered vs updated baseline" false
    (Erroneous_state.audit tb.Testbed.hv spec).Erroneous_state.holds

let () =
  Alcotest.run "management"
    [
      ( "xenstore",
        [
          Alcotest.test_case "paths" `Quick test_xenstore_paths;
          Alcotest.test_case "permissions" `Quick test_xenstore_permissions;
          Alcotest.test_case "rm and list" `Quick test_xenstore_rm_and_list;
          Alcotest.test_case "inject bypasses perms" `Quick test_xenstore_inject_bypasses_perms;
        ] );
      ( "toolstack",
        [
          Alcotest.test_case "builder seeds xenstore" `Quick test_builder_seeds_xenstore;
          Alcotest.test_case "set target" `Quick test_toolstack_set_target;
          Alcotest.test_case "name and list" `Quick test_toolstack_name_and_list;
        ] );
      ( "balloon",
        [
          Alcotest.test_case "honours target" `Quick test_balloon_honours_target;
          Alcotest.test_case "spares pt/special pages" `Quick
            test_balloon_never_releases_pt_or_special_pages;
          Alcotest.test_case "stable at target" `Quick test_balloon_stable_at_target;
        ] );
      ( "intrusion_model",
        [
          Alcotest.test_case "injected tampering violates availability" `Quick
            test_injected_tampering_causes_availability_violation;
          Alcotest.test_case "legitimate ballooning distinguished" `Quick
            test_legitimate_ballooning_is_not_an_intrusion;
        ] );
    ]
