(* Tests for the device models: the FDC (VENOM study) and the
   paravirtual block-device pair (off-by-one backend study). *)

open Ii_xen
open Ii_guest
open Ii_devicemodel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let vulnerable = { Fdc.venom_vulnerable = true; handler_validation = false }
let fixed = { Fdc.venom_vulnerable = false; handler_validation = false }
let hardened = { Fdc.venom_vulnerable = true; handler_validation = true }

let test_fifo_normal_write () =
  let fdc = Fdc.create fixed in
  check_bool "small write ok" true (Fdc.issue fdc (Fdc.Fd_write_data (Bytes.make 64 'x')) = Ok ());
  check_bool "handler intact" true (Fdc.handler_intact fdc);
  check_bool "read id" true (Fdc.issue fdc Fdc.Fd_read_id = Ok ());
  check_bool "reset" true (Fdc.issue fdc Fdc.Fd_reset = Ok ())

let test_fixed_rejects_overflow () =
  let fdc = Fdc.create fixed in
  (match Fdc.issue fdc (Fdc.Fd_write_data (Bytes.make (Fdc.fifo_size + 8) 'x')) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "fixed build must reject");
  check_bool "handler intact" true (Fdc.handler_intact fdc)

let test_fixed_rejects_accumulated_overflow () =
  let fdc = Fdc.create fixed in
  check_bool "first ok" true (Fdc.issue fdc (Fdc.Fd_write_data (Bytes.make 500 'x')) = Ok ());
  (match Fdc.issue fdc (Fdc.Fd_write_data (Bytes.make 100 'y')) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accumulated overflow must be rejected");
  check_bool "reset clears" true (Fdc.issue fdc Fdc.Fd_reset = Ok ());
  check_bool "after reset ok" true (Fdc.issue fdc (Fdc.Fd_write_data (Bytes.make 100 'y')) = Ok ())

let test_venom_overflow_corrupts_handler () =
  let fdc = Fdc.create vulnerable in
  let payload = Bytes.make (Fdc.fifo_size + 8) 'A' in
  Bytes.set_int64_le payload Fdc.fifo_size 0xEF11L;
  check_bool "accepted" true (Fdc.issue fdc (Fdc.Fd_write_data payload) = Ok ());
  check_bool "handler corrupted" false (Fdc.handler_intact fdc);
  match Fdc.kick fdc with
  | `Hijacked v -> Alcotest.(check int64) "attacker value" 0xEF11L v
  | `Dispatched | `Rejected_corrupt_handler -> Alcotest.fail "expected hijack"

let test_injection_reproduces_overflow_state () =
  let via_exploit = Fdc.create vulnerable in
  let payload = Bytes.make (Fdc.fifo_size + 8) 'A' in
  Bytes.set_int64_le payload Fdc.fifo_size 0x1234L;
  ignore (Fdc.issue via_exploit (Fdc.Fd_write_data payload));
  let via_injection = Fdc.create fixed in
  let tail = Bytes.create 8 in
  Bytes.set_int64_le tail 0 0x1234L;
  Fdc.inject_overflow via_injection tail;
  Alcotest.(check int64)
    "same erroneous state" (Fdc.handler_value via_exploit) (Fdc.handler_value via_injection)

let test_handler_validation_shields () =
  let fdc = Fdc.create hardened in
  let tail = Bytes.create 8 in
  Bytes.set_int64_le tail 0 0x1234L;
  Fdc.inject_overflow fdc tail;
  check_bool "state present" false (Fdc.handler_intact fdc);
  match Fdc.kick fdc with
  | `Rejected_corrupt_handler -> ()
  | `Hijacked _ | `Dispatched -> Alcotest.fail "validation must shield"

let test_reset_restores () =
  let fdc = Fdc.create vulnerable in
  let tail = Bytes.create 8 in
  Bytes.set_int64_le tail 0 0x1L;
  Fdc.inject_overflow fdc tail;
  Fdc.reset fdc;
  check_bool "intact after reset" true (Fdc.handler_intact fdc);
  check_bool "dispatches" true (Fdc.kick fdc = `Dispatched)

(* --- the study -------------------------------------------------------------- *)

let test_study_matrix () =
  let outcomes = Venom_study.matrix () in
  check_int "eight runs" 8 (List.length outcomes);
  (* exploit only corrupts vulnerable builds *)
  List.iter
    (fun o ->
      match o.Venom_study.o_mode with
      | Venom_study.Exploit ->
          check_bool "exploit state iff vulnerable" o.Venom_study.o_cfg.Fdc.venom_vulnerable
            o.Venom_study.o_state
      | Venom_study.Injection -> check_bool "injection always lands" true o.Venom_study.o_state)
    outcomes;
  (* violation iff state and no validation *)
  List.iter
    (fun o ->
      let expected = o.Venom_study.o_state && not o.Venom_study.o_cfg.Fdc.handler_validation in
      check_bool "violation rule" expected o.Venom_study.o_violation)
    outcomes

let test_study_render () =
  let s = Venom_study.render (Venom_study.matrix ()) in
  check_bool "mentions shield" true
    (let n = String.length Ii_core.Report.shield in
     let rec go i =
       i + n <= String.length s && (String.sub s i n = Ii_core.Report.shield || go (i + 1))
     in
     go 0)

let test_study_im () =
  check_bool "af" true
    (Venom_study.im.Ii_core.Intrusion_model.functionality
    = Ii_core.Abusive_functionality.Write_unauthorized_memory)

(* --- Blkdev --------------------------------------------------------------- *)

let blk_env ~off_by_one =
  let tb = Testbed.create Version.V4_13 in
  Ii_core.Injector.install tb.Testbed.hv;
  let dom0 = Kernel.dom tb.Testbed.dom0 in
  let be = Blkdev.create_backend tb.Testbed.hv ~backend_dom:dom0 ~off_by_one in
  let fe =
    match Blkdev.connect tb.Testbed.attacker ~backend_domid:dom0.Domain.id ~ring_pfn:45 ~data_pfn:46 with
    | Ok fe -> fe
    | Error e -> Alcotest.fail (Errno.to_string e)
  in
  (tb, be, fe)

let roundtrip be fe ~op ~sector =
  match Blkdev.submit fe ~op ~sector with
  | Error e -> Alcotest.fail (Errno.to_string e)
  | Ok id ->
      ignore (Blkdev.backend_poll be fe);
      Blkdev.response_status fe id

let test_blk_read_write () =
  let _, be, fe = blk_env ~off_by_one:false in
  (* read a sector: the disk pattern lands in the data page *)
  check_bool "read ok" true (roundtrip be fe ~op:Blkdev.Ring.op_read ~sector:7 = Some 0L);
  (match Blkdev.read_data fe ~off:0 ~len:8 with
  | Ok b -> Alcotest.(check string) "pattern" "SECTOR07" (Bytes.to_string b)
  | Error _ -> Alcotest.fail "data read");
  (* write a sector and read it back *)
  check_bool "stage data" true (Result.is_ok (Blkdev.write_data fe ~off:0 (Bytes.of_string "mydata!!")));
  check_bool "write ok" true (roundtrip be fe ~op:Blkdev.Ring.op_write ~sector:3 = Some 0L);
  check_bool "readback ok" true (roundtrip be fe ~op:Blkdev.Ring.op_read ~sector:3 = Some 0L);
  match Blkdev.read_data fe ~off:0 ~len:8 with
  | Ok b -> Alcotest.(check string) "written" "mydata!!" (Bytes.to_string b)
  | Error _ -> Alcotest.fail "data read"

let test_blk_bounds () =
  let _, be, fe = blk_env ~off_by_one:false in
  check_bool "oob refused" true
    (roundtrip be fe ~op:Blkdev.Ring.op_read ~sector:Blkdev.sectors
    = Some (Int64.of_int (-22)));
  check_bool "negative refused" true
    (roundtrip be fe ~op:Blkdev.Ring.op_read ~sector:(-1) = Some (Int64.of_int (-22)));
  check_bool "bad op refused" true (roundtrip be fe ~op:9L ~sector:1 = Some (Int64.of_int (-38)))

let test_blk_off_by_one_discloses () =
  let _, be, fe = blk_env ~off_by_one:true in
  check_bool "oob accepted" true
    (roundtrip be fe ~op:Blkdev.Ring.op_read ~sector:Blkdev.sectors = Some 0L);
  match Blkdev.read_data fe ~off:0 ~len:14 with
  | Ok b -> Alcotest.(check string) "secret leaked" "BACKEND-SECRET" (Bytes.to_string b)
  | Error _ -> Alcotest.fail "data read"

let test_blk_grants_are_real () =
  (* the backend goes through the grant machinery: without the wire
     entries (fresh frontend domain, no grants) mapping fails and the
     backend completes nothing *)
  let tb = Testbed.create Version.V4_13 in
  let dom0 = Kernel.dom tb.Testbed.dom0 in
  let be = Blkdev.create_backend tb.Testbed.hv ~backend_dom:dom0 ~off_by_one:false in
  let fe =
    match Blkdev.connect tb.Testbed.attacker ~backend_domid:dom0.Domain.id ~ring_pfn:45 ~data_pfn:46 with
    | Ok fe -> fe
    | Error e -> Alcotest.fail (Errno.to_string e)
  in
  (* revoke the ring grant by zeroing the wire entry *)
  let grant_va = Domain.kernel_vaddr_of_pfn 44 in
  ignore (Kernel.write_u64 tb.Testbed.attacker (Int64.add grant_va (Int64.of_int (8 * 20))) 0L);
  ignore (Blkdev.submit fe ~op:Blkdev.Ring.op_read ~sector:1);
  check_int "nothing processed" 0 (Blkdev.backend_poll be fe)

let test_blk_study_matrix () =
  let outcomes = Blk_study.matrix () in
  check_int "four runs" 4 (List.length outcomes);
  List.iter
    (fun o ->
      match (o.Blk_study.o_mode, o.Blk_study.o_off_by_one) with
      | Blk_study.Exploit, true ->
          check_bool "exploit works on buggy backend" true o.Blk_study.o_disclosure;
          check_bool "status ok" true (o.Blk_study.o_status = Some 0L)
      | Blk_study.Exploit, false ->
          check_bool "exploit fails on fixed backend" false o.Blk_study.o_disclosure;
          check_bool "einval" true (o.Blk_study.o_status = Some (Int64.of_int (-22)))
      | Blk_study.Injection, _ ->
          check_bool "injection always lands" true o.Blk_study.o_state)
    outcomes;
  check_bool "im functionality" true
    (Blk_study.im.Ii_core.Intrusion_model.functionality
    = Ii_core.Abusive_functionality.Read_unauthorized_memory)

let () =
  Alcotest.run "devicemodel"
    [
      ( "fdc",
        [
          Alcotest.test_case "normal write" `Quick test_fifo_normal_write;
          Alcotest.test_case "fixed rejects overflow" `Quick test_fixed_rejects_overflow;
          Alcotest.test_case "fixed rejects accumulated overflow" `Quick
            test_fixed_rejects_accumulated_overflow;
          Alcotest.test_case "venom corrupts handler" `Quick test_venom_overflow_corrupts_handler;
          Alcotest.test_case "injection reproduces state" `Quick
            test_injection_reproduces_overflow_state;
          Alcotest.test_case "validation shields" `Quick test_handler_validation_shields;
          Alcotest.test_case "reset restores" `Quick test_reset_restores;
        ] );
      ( "venom_study",
        [
          Alcotest.test_case "matrix" `Quick test_study_matrix;
          Alcotest.test_case "render" `Quick test_study_render;
          Alcotest.test_case "intrusion model" `Quick test_study_im;
        ] );
      ( "blkdev",
        [
          Alcotest.test_case "read/write roundtrip" `Quick test_blk_read_write;
          Alcotest.test_case "bounds" `Quick test_blk_bounds;
          Alcotest.test_case "off-by-one discloses" `Quick test_blk_off_by_one_discloses;
          Alcotest.test_case "grants are real" `Quick test_blk_grants_are_real;
          Alcotest.test_case "study matrix" `Quick test_blk_study_matrix;
        ] );
    ]
