(* Cross-cutting property tests: structural invariants that must hold
   for arbitrary inputs, checked with qcheck. *)

open Ii_xen
open Ii_guest
open Ii_core

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

(* --- Layout ------------------------------------------------------------- *)

let arb_canonical =
  QCheck.map
    (fun (hi, lo) ->
      Addr.canonical (Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)))
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0x3FFF_FFFF))

let prop_layout_total =
  QCheck.Test.make ~name:"every canonical address has exactly one region" ~count:2000
    arb_canonical
    (fun va ->
      (* region_of_vaddr is total and stable *)
      Layout.region_of_vaddr va = Layout.region_of_vaddr va)

let access_rank = function Layout.No_access -> 0 | Layout.Read_only -> 1 | Layout.Read_write -> 2

let prop_hardening_monotone =
  QCheck.Test.make ~name:"hardening never grants access it previously denied" ~count:2000
    arb_canonical
    (fun va ->
      access_rank (Layout.guest_access ~hardened:true va)
      <= access_rank (Layout.guest_access ~hardened:false va))

let prop_guest_and_hyp_disjoint_on_writes =
  QCheck.Test.make ~name:"no address is writable by both guest policy and hypervisor policy"
    ~count:2000 arb_canonical
    (fun va ->
      not
        (Layout.guest_access ~hardened:false va = Layout.Read_write
        && Layout.hypervisor_access va = Layout.Read_write))

let prop_directmap_roundtrip =
  QCheck.Test.make ~name:"directmap_of_maddr/maddr_of_directmap roundtrip" ~count:1000
    QCheck.(int_bound 0x3FFF_FFFF)
    (fun off ->
      let ma = Int64.of_int off in
      Layout.maddr_of_directmap (Layout.directmap_of_maddr ma) = Some ma)

(* --- Pte ------------------------------------------------------------------ *)

let arb_pte =
  QCheck.map
    (fun (mfn, bits) ->
      let flags =
        List.filteri
          (fun i _ -> bits land (1 lsl i) <> 0)
          [ Pte.Present; Pte.Rw; Pte.User; Pte.Pse; Pte.Nx; Pte.Accessed; Pte.Dirty; Pte.Global ]
      in
      Pte.make ~mfn ~flags)
    QCheck.(pair (int_bound 0xFFFFF) (int_bound 255))

let prop_flags_equal_modulo_reflexive =
  QCheck.Test.make ~name:"flags_equal_modulo is reflexive" ~count:500 arb_pte (fun e ->
      Pte.flags_equal_modulo ~ignore:[] e e)

let prop_flags_equal_modulo_ignores =
  QCheck.Test.make ~name:"toggling an ignored flag preserves equality-modulo" ~count:500 arb_pte
    (fun e ->
      let e' = if Pte.test Pte.Rw e then Pte.clear Pte.Rw e else Pte.set Pte.Rw e in
      Pte.flags_equal_modulo ~ignore:[ Pte.Rw ] e e'
      && not (Pte.flags_equal_modulo ~ignore:[] e e'))

(* --- Grant-table wire entries ---------------------------------------------- *)

let prop_grant_wire_roundtrip =
  QCheck.Test.make ~name:"grant wire entry roundtrip" ~count:500
    QCheck.(triple (int_bound 0xFFFF) (int_bound 0xFFFF) (int_bound 0xFFFFFF))
    (fun (flags, domid, gfn) ->
      let frame = Frame.create () in
      let e = { Grant_table.Wire.w_flags = flags; w_domid = domid; w_gfn = gfn } in
      Grant_table.Wire.write frame 7 e;
      Grant_table.Wire.read frame 7 = e)

(* --- Backdoor blob --------------------------------------------------------- *)

let prop_backdoor_roundtrip =
  QCheck.Test.make ~name:"backdoor encode/decode roundtrip" ~count:300
    QCheck.(string_gen_of_size (Gen.int_bound 30) Gen.printable)
    (fun cmd ->
      Kernel.Backdoor.decode (Kernel.Backdoor.encode (Kernel.Backdoor.Run_as_root cmd))
      = Some (Kernel.Backdoor.Run_as_root cmd))

let prop_backdoor_rejects_noise =
  QCheck.Test.make ~name:"backdoor decode rejects random bytes without the magic" ~count:300
    QCheck.(string_gen_of_size (Gen.int_bound 30) Gen.char)
    (fun s ->
      let blob = Bytes.of_string s in
      if Bytes.length blob >= 4 && Bytes.sub_string blob 0 4 = Kernel.Backdoor.magic then true
      else Kernel.Backdoor.decode blob = None)

(* --- Shell ------------------------------------------------------------------- *)

let prop_shell_total =
  QCheck.Test.make ~name:"shell never raises" ~count:500
    QCheck.(string_gen_of_size (Gen.int_bound 30) Gen.printable)
    (fun cmd ->
      let ctx = { Shell.hostname = "h"; fs = Fs.create (); uid = 1000 } in
      ignore (Shell.run ctx cmd);
      true)

(* --- Mm: random valid operation sequences keep the books straight ----------- *)

type mm_op = Unmap of int | Remap of int | Exchange of int | Decrease of int | Pin_unpin

let arb_ops =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 20)
        (oneof
           [
             map (fun p -> Unmap (3 + (p mod 20))) (int_bound 100);
             map (fun p -> Remap (3 + (p mod 20))) (int_bound 100);
             map (fun p -> Exchange (3 + (p mod 20))) (int_bound 100);
             map (fun p -> Decrease (3 + (p mod 20))) (int_bound 100);
             return Pin_unpin;
           ]))
  in
  QCheck.make gen

let prop_mm_sequences_consistent =
  QCheck.Test.make ~name:"valid op sequences keep counts consistent and M2P inverse" ~count:60
    arb_ops
    (fun ops ->
      let hv = Hv.boot ~version:Version.V4_6 ~frames:512 in
      let dom = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:32 in
      let kva pfn = Domain.kernel_vaddr_of_pfn pfn in
      let l1 =
        match Paging.walk hv.Hv.mem ~cr3:dom.Domain.l4_mfn (kva 0) with
        | Ok tr -> (List.nth tr.Paging.path 3).Paging.table_mfn
        | Error _ -> assert false
      in
      List.iter
        (fun op ->
          match op with
          | Unmap pfn -> ignore (Mm.update_va_mapping hv dom ~va:(kva pfn) Pte.none)
          | Remap pfn -> (
              match Domain.mfn_of_pfn dom pfn with
              | Some mfn ->
                  ignore
                    (Mm.update_va_mapping hv dom ~va:(kva pfn)
                       (Pte.make ~mfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ]))
              | None -> ())
          | Exchange pfn ->
              ignore (Mm.update_va_mapping hv dom ~va:(kva pfn) Pte.none);
              ignore
                (Memory_exchange.exchange hv dom
                   { Memory_exchange.in_pfns = [ pfn ]; out_extent_start = kva 3 })
          | Decrease pfn ->
              ignore (Mm.update_va_mapping hv dom ~va:(kva pfn) Pte.none);
              ignore (Mm.decrease_reservation hv dom [ pfn ])
          | Pin_unpin ->
              ignore (Mm.pin_table hv dom ~level:1 l1);
              ignore (Mm.unpin_table hv dom l1))
        ops;
      Page_info.counts_consistent hv.Hv.pages
      && List.for_all
           (fun pfn ->
             match Domain.mfn_of_pfn dom pfn with
             | None -> true
             | Some mfn -> Hv.m2p_lookup hv mfn = Some pfn)
           (Domain.populated_pfns dom)
      && not (Hv.is_crashed hv))

(* --- Abi: random registers never raise -------------------------------------- *)

let prop_abi_total =
  QCheck.Test.make ~name:"raw hypercalls never raise on arbitrary registers" ~count:150
    QCheck.(
      quad (int_bound 45) (map Int64.of_int int) (map Int64.of_int int) (map Int64.of_int int))
    (fun (number, rdi, rsi, rdx) ->
      let hv = Hv.boot ~version:Version.V4_8 ~frames:256 in
      let dom = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:16 in
      ignore (Abi.dispatch hv dom ~number ~rdi ~rsi ~rdx ());
      true)

(* --- Snapshot ----------------------------------------------------------------- *)

let prop_snapshot_idempotent =
  QCheck.Test.make ~name:"capture/restore/capture preserves the data payload" ~count:30
    QCheck.(small_list (pair (int_bound 15) (map Int64.of_int int)))
    (fun writes ->
      let hv = Hv.boot ~version:Version.V4_8 ~frames:1024 in
      let g = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:32 in
      List.iter
        (fun (pfn, v) ->
          let pfn = 3 + pfn in
          match Domain.mfn_of_pfn g pfn with
          | Some mfn -> Phys_mem.write_u64 hv.Hv.mem (Addr.maddr_of_mfn mfn) v
          | None -> ())
        writes;
      let snap = Snapshot.capture hv g in
      ignore (Domctl.destroy hv g);
      let g2 = Snapshot.restore hv snap in
      let snap2 = Snapshot.capture hv g2 in
      snap.Snapshot.s_data = snap2.Snapshot.s_data)

(* --- Nested paging: the two dimensions compose ------------------------------- *)

let prop_nested_composition =
  QCheck.Test.make ~name:"2D walk = guest-dimension then EPT" ~count:50
    QCheck.(pair (int_bound 55) (map Int64.of_int int))
    (fun (gpfn, v) ->
      let kvm = Ii_kvm.Kvm.boot ~frames:1024 in
      let vm = Ii_kvm.Kvm.create_vm kvm ~name:"p" ~pages:60 in
      let va = Int64.add Layout.guest_kernel_base (Int64.of_int (gpfn * Addr.page_size)) in
      match Ii_kvm.Kvm.guest_write_u64 kvm vm va v with
      | Error _ -> gpfn >= 60 (* only unmapped gpfns may fail *)
      | Ok () -> (
          (* the same word must be visible through the EPT alone *)
          match Ii_kvm.Kvm.gpa_to_maddr kvm vm (Int64.of_int (gpfn * Addr.page_size)) with
          | Ok ma -> Phys_mem.read_u64 (Ii_kvm.Kvm.mem kvm) ma = v
          | Error _ -> false))

let prop_nested_isolation =
  QCheck.Test.make ~name:"same gpa in two VMs never shares a host frame" ~count:30
    QCheck.(int_bound 55)
    (fun gpfn ->
      let kvm = Ii_kvm.Kvm.boot ~frames:1024 in
      let a = Ii_kvm.Kvm.create_vm kvm ~name:"a" ~pages:60 in
      let b = Ii_kvm.Kvm.create_vm kvm ~name:"b" ~pages:60 in
      let gpa = Int64.of_int (gpfn * Addr.page_size) in
      match (Ii_kvm.Kvm.gpa_to_maddr kvm a gpa, Ii_kvm.Kvm.gpa_to_maddr kvm b gpa) with
      | Ok ma, Ok mb -> ma <> mb
      | _ -> false)

(* --- Random campaign: tally is a partition ------------------------------------ *)

let prop_campaign_partition =
  QCheck.Test.make ~name:"campaign tallies partition the trials" ~count:10
    QCheck.(int_bound 1000)
    (fun seed ->
      let s =
        Random_campaign.run ~seed:(Int64.of_int (seed + 1)) ~trials:20 Version.V4_8
      in
      List.fold_left (fun a (_, n) -> a + n) 0 s.Random_campaign.tally = 20)

let () =
  Alcotest.run "properties"
    [
      ( "layout",
        qsuite
          [
            prop_layout_total;
            prop_hardening_monotone;
            prop_guest_and_hyp_disjoint_on_writes;
            prop_directmap_roundtrip;
          ] );
      ("pte", qsuite [ prop_flags_equal_modulo_reflexive; prop_flags_equal_modulo_ignores ]);
      ("grant_wire", qsuite [ prop_grant_wire_roundtrip ]);
      ("backdoor", qsuite [ prop_backdoor_roundtrip; prop_backdoor_rejects_noise ]);
      ("shell", qsuite [ prop_shell_total ]);
      ("mm", qsuite [ prop_mm_sequences_consistent ]);
      ("abi", qsuite [ prop_abi_total ]);
      ("snapshot", qsuite [ prop_snapshot_idempotent ]);
      ("nested", qsuite [ prop_nested_composition; prop_nested_isolation ]);
      ("campaign", qsuite [ prop_campaign_partition ]);
    ]
