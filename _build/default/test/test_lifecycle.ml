(* Tests for domain lifecycle control (Domctl) and save/restore
   (Snapshot), including the erroneous-state-carrying-snapshot case. *)

open Ii_xen
open Ii_guest

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let host () =
  let hv = Hv.boot ~version:Version.V4_8 ~frames:2048 in
  let dom0 = Builder.create_domain hv ~name:"dom0" ~privileged:true ~pages:64 in
  (hv, dom0)

(* --- Domctl ---------------------------------------------------------------- *)

let test_pause_unpause () =
  let hv, _ = host () in
  let g = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:64 in
  check_bool "pause" true (Domctl.pause hv g = Ok ());
  (* only dom0 runs now *)
  let outcomes = List.init 4 (fun _ -> Hv.sched_tick hv) in
  check_bool "guest never scheduled" true
    (List.for_all (fun o -> o <> Sched.Scheduled g.Domain.id) outcomes);
  check_bool "pause twice" true (Domctl.pause hv g = Error Errno.ENOENT);
  check_bool "unpause" true (Domctl.unpause hv g = Ok ());
  check_bool "unpause twice" true (Domctl.unpause hv g = Error Errno.EBUSY);
  let outcomes = List.init 4 (fun _ -> Hv.sched_tick hv) in
  check_bool "guest runs again" true
    (List.exists (fun o -> o = Sched.Scheduled g.Domain.id) outcomes)

let test_destroy_frees_everything () =
  let hv, _ = host () in
  let free_before = Phys_mem.free_frames hv.Hv.mem in
  let g = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:64 in
  (match Domctl.destroy hv g with
  | Ok r ->
      check_int "freed" 64 r.Domctl.freed;
      check_int "no zombies" 0 (List.length r.Domctl.zombie)
  | Error _ -> Alcotest.fail "destroy");
  check_int "all frames reclaimed" free_before (Phys_mem.free_frames hv.Hv.mem);
  check_int "delisted" 1 (List.length (Domctl.list_domains hv));
  check_bool "counts consistent" true (Page_info.counts_consistent hv.Hv.pages);
  check_bool "xenstore cleaned" true
    (Xenstore.read hv.Hv.xenstore ~caller:0 (Xenstore.domain_path g.Domain.id "name")
    = Error Errno.ENOENT)

let test_destroy_protects_dom0 () =
  let hv, dom0 = host () in
  check_bool "dom0 protected" true (Domctl.destroy hv dom0 = Error Errno.EPERM)

let test_destroy_then_recreate () =
  let hv, _ = host () in
  let g = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:96 in
  ignore (Domctl.destroy hv g);
  let g2 = Builder.create_domain hv ~name:"g2" ~privileged:false ~pages:96 in
  (* the fresh domain is fully functional *)
  check_bool "write works" true
    (Result.is_ok
       (Cpu.write_u64 hv.Hv.cpu ~ring:Cpu.Kernel ~cr3:g2.Domain.l4_mfn
          (Domain.kernel_vaddr_of_pfn 5) 1L))

let test_destroy_with_grant_leaves_zombie () =
  let hv, dom0 = host () in
  let g = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:64 in
  (* g grants a page; dom0 maps it and installs a PTE (taking refs) *)
  let granted_mfn = Option.get (Domain.mfn_of_pfn g 5) in
  ignore (Grant_table.grant_access g.Domain.grant ~gref:0 ~grantee:0 ~mfn:granted_mfn ~readonly:false);
  ignore (Grant_table.map g.Domain.grant ~granter:g.Domain.id ~mapper:0 ~gref:0);
  let l1_dom0 =
    match Paging.walk hv.Hv.mem ~cr3:dom0.Domain.l4_mfn (Domain.kernel_vaddr_of_pfn 0) with
    | Ok tr -> (List.nth tr.Paging.path 3).Paging.table_mfn
    | Error _ -> Alcotest.fail "walk"
  in
  let ptr = Int64.add (Addr.maddr_of_mfn l1_dom0) (Int64.of_int (8 * 200)) in
  check_bool "dom0 maps granted page" true
    (Mm.mmu_update hv dom0
       ~updates:[ (ptr, Pte.make ~mfn:granted_mfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ]) ]
    = Ok 1);
  match Domctl.destroy hv g with
  | Ok r ->
      check_int "one zombie" 1 (List.length r.Domctl.zombie);
      check_bool "the granted frame" true (List.mem granted_mfn r.Domctl.zombie);
      (* the zombie page still holds the old owner: dom0's mapping keeps
         working and no one else gets handed the frame *)
      check_bool "not reallocated" true (Phys_mem.owner hv.Hv.mem granted_mfn <> Phys_mem.Free)
  | Error _ -> Alcotest.fail "destroy"

(* --- Snapshot ----------------------------------------------------------------- *)

let test_snapshot_roundtrip () =
  let hv, _ = host () in
  let g = Builder.create_domain hv ~name:"wanderer" ~privileged:false ~pages:64 in
  (* write recognizable data *)
  let mfn5 = Option.get (Domain.mfn_of_pfn g 5) in
  Phys_mem.write_string hv.Hv.mem (Addr.maddr_of_mfn mfn5) "travelling-data";
  Xenstore.inject_write hv.Hv.xenstore (Xenstore.domain_path g.Domain.id "app/state") "42";
  let snap = Snapshot.capture hv g in
  check_str "name" "wanderer" snap.Snapshot.s_name;
  check_bool "payload present" true (List.mem_assoc 5 snap.Snapshot.s_data);
  check_bool "no start_info page" true (not (List.mem_assoc 0 snap.Snapshot.s_data));
  check_bool "no pt pages" true (not (List.mem_assoc 63 snap.Snapshot.s_data));
  check_bool "xenstore captured" true (List.mem ("app/state", "42") snap.Snapshot.s_xenstore);
  check_bool "sized" true (Snapshot.data_bytes snap > 0);
  ignore (Domctl.destroy hv g);
  (* restore on the same (or any) host *)
  let g2 = Snapshot.restore hv snap in
  check_bool "fresh domid" true (g2.Domain.id <> g.Domain.id);
  let mfn5' = Option.get (Domain.mfn_of_pfn g2 5) in
  check_str "data travelled" "travelling-data"
    (Bytes.to_string (Phys_mem.read_bytes hv.Hv.mem (Addr.maddr_of_mfn mfn5') 15));
  check_bool "xenstore replayed" true
    (Xenstore.read hv.Hv.xenstore ~caller:0 (Xenstore.domain_path g2.Domain.id "app/state")
    = Ok "42");
  (* and the restored address space is fully functional *)
  check_bool "kernel write" true
    (Result.is_ok
       (Cpu.write_u64 hv.Hv.cpu ~ring:Cpu.Kernel ~cr3:g2.Domain.l4_mfn
          (Domain.kernel_vaddr_of_pfn 6) 7L))

let test_snapshot_start_info_is_fresh () =
  let hv, _ = host () in
  let g = Builder.create_domain hv ~name:"g" ~privileged:false ~pages:64 in
  let snap = Snapshot.capture hv g in
  ignore (Domctl.destroy hv g);
  let g2 = Snapshot.restore hv snap in
  (* pt_base in the restored start_info names the NEW page tables *)
  let si_mfn = Option.get (Domain.mfn_of_pfn g2 0) in
  let pt_base =
    Frame.get_u64 (Phys_mem.frame hv.Hv.mem si_mfn) Builder.Start_info.pt_base_off
  in
  check_bool "fresh pt_base" true (Int64.to_int pt_base = g2.Domain.l4_mfn)

let test_infected_snapshot_carries_the_state () =
  (* the §III-C porting scenario made literal: a backdoored vDSO
     survives save/restore onto a pristine host and fires there *)
  let tb = Testbed.create Version.V4_8 in
  let hv = tb.Testbed.hv in
  let victim = tb.Testbed.victim in
  let frame = Phys_mem.frame hv.Hv.mem (Kernel.vdso_mfn victim) in
  Frame.write_bytes frame Builder.Vdso.code_off
    (Kernel.Backdoor.encode (Kernel.Backdoor.Run_as_root "echo pwned > /tmp/ported"));
  let snap = Snapshot.capture hv (Kernel.dom victim) in
  (* a brand-new host, same version, never attacked *)
  let tb2 = Testbed.create Version.V4_8 in
  let restored_dom = Snapshot.restore tb2.Testbed.hv snap in
  let restored = Kernel.create tb2.Testbed.hv restored_dom tb2.Testbed.net in
  check_bool "clean before tick" false (Fs.exists (Kernel.fs restored) "/tmp/ported");
  Kernel.tick restored;
  match Fs.read (Kernel.fs restored) "/tmp/ported" with
  | Some f ->
      check_int "runs as root on the new host" 0 f.Fs.uid;
      check_str "payload output" "pwned" f.Fs.content
  | None -> Alcotest.fail "ported erroneous state did not fire"

let () =
  Alcotest.run "lifecycle"
    [
      ( "domctl",
        [
          Alcotest.test_case "pause/unpause" `Quick test_pause_unpause;
          Alcotest.test_case "destroy frees everything" `Quick test_destroy_frees_everything;
          Alcotest.test_case "destroy protects dom0" `Quick test_destroy_protects_dom0;
          Alcotest.test_case "destroy then recreate" `Quick test_destroy_then_recreate;
          Alcotest.test_case "active grant leaves zombie" `Quick
            test_destroy_with_grant_leaves_zombie;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "start_info rebuilt fresh" `Quick test_snapshot_start_info_is_fresh;
          Alcotest.test_case "infected snapshot carries the state" `Quick
            test_infected_snapshot_carries_the_state;
        ] );
    ]
