(* Error-path coverage: the failure branches a robust hypervisor must
   take — rollbacks, partial completions, boundary conditions. *)

open Ii_xen
open Ii_guest

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let errno_t : Errno.t Alcotest.testable = Alcotest.testable (fun ppf e -> Errno.pp ppf e) ( = )

let built () =
  let hv = Hv.boot ~version:Version.V4_6 ~frames:1024 in
  let dom0 = Builder.create_domain hv ~name:"dom0" ~privileged:true ~pages:64 in
  let guest = Builder.create_domain hv ~name:"guest" ~privileged:false ~pages:64 in
  (hv, dom0, guest)

let kva = Domain.kernel_vaddr_of_pfn
let entry_ptr mfn index = Int64.add (Addr.maddr_of_mfn mfn) (Int64.of_int (8 * index))

let table_at hv dom ~level va =
  match Paging.walk hv.Hv.mem ~cr3:dom.Domain.l4_mfn va with
  | Ok tr -> (List.nth tr.Paging.path (4 - level)).Paging.table_mfn
  | Error _ -> Alcotest.fail "walk"

(* --- promote rollback ---------------------------------------------------- *)

let test_promote_rollback_restores_counts () =
  let hv, _, guest = built () in
  (* build a candidate L1 page with one good entry and one bad entry
     (pointing at a Xen frame) in a data page the guest owns *)
  let cand_mfn = Option.get (Domain.mfn_of_pfn guest 10) in
  (* drop its current accounting: unmap from kernel space *)
  ignore (Mm.update_va_mapping hv guest ~va:(kva 10) Pte.none);
  let frame = Phys_mem.frame hv.Hv.mem cand_mfn in
  let good_target = Option.get (Domain.mfn_of_pfn guest 11) in
  ignore (Mm.update_va_mapping hv guest ~va:(kva 11) Pte.none);
  let refs_before = (Page_info.get hv.Hv.pages good_target).Page_info.ref_count in
  Frame.set_entry frame 0 (Pte.make ~mfn:good_target ~flags:[ Pte.Present; Pte.User ]);
  Frame.set_entry frame 1 (Pte.make ~mfn:hv.Hv.idt_mfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ]);
  Alcotest.check errno_t "promotion fails on the bad entry" Errno.EPERM
    (Result.get_error (Mm.promote hv guest ~level:1 cand_mfn));
  (* rollback: no residual type, and the good target's ref restored *)
  let info = Page_info.get hv.Hv.pages cand_mfn in
  check_int "type cleared" 0 info.Page_info.type_count;
  check_bool "untyped" true (info.Page_info.ptype = Page_info.PGT_none);
  check_int "good target refs restored" refs_before
    (Page_info.get hv.Hv.pages good_target).Page_info.ref_count;
  (* fixing the bad entry lets promotion succeed *)
  Frame.set_entry frame 1 Pte.none;
  check_bool "promotes after fix" true (Result.is_ok (Mm.promote hv guest ~level:1 cand_mfn));
  check_bool "counts consistent" true (Page_info.counts_consistent hv.Hv.pages)

let test_promote_wrong_owner () =
  let hv, dom0, guest = built () in
  (* a mapped foreign page is refused as busy before ownership is even
     considered; an unmapped one hits the ownership check proper *)
  let dom0_page = Option.get (Domain.mfn_of_pfn dom0 10) in
  Alcotest.check errno_t "mapped foreign frame busy" Errno.EBUSY
    (Result.get_error (Mm.promote hv guest ~level:1 dom0_page));
  ignore (Mm.update_va_mapping hv dom0 ~va:(kva 10) Pte.none);
  Alcotest.check errno_t "unmapped foreign frame" Errno.EPERM
    (Result.get_error (Mm.promote hv guest ~level:1 dom0_page))

let test_promote_busy_type () =
  let hv, _, guest = built () in
  (* a mapped-writable data page cannot become a page table *)
  let mapped = Option.get (Domain.mfn_of_pfn guest 10) in
  Alcotest.check errno_t "writable type busy" Errno.EBUSY
    (Result.get_error (Mm.promote hv guest ~level:1 mapped))

(* --- mmu_update partial completion ----------------------------------------- *)

let test_mmu_update_stops_at_first_failure () =
  let hv, _, guest = built () in
  let l1 = table_at hv guest ~level:1 (kva 0) in
  let good = (entry_ptr l1 9, Pte.none) in
  let bad =
    ( entry_ptr l1 10,
      Pte.make ~mfn:hv.Hv.idt_mfn ~flags:[ Pte.Present; Pte.Rw; Pte.User ] )
  in
  let never = (entry_ptr l1 11, Pte.none) in
  Alcotest.check errno_t "fails on the bad request" Errno.EPERM
    (Result.get_error (Mm.mmu_update hv guest ~updates:[ good; bad; never ]));
  (* the first request was applied; the third was not *)
  check_bool "first applied" true (Result.is_error
    (Cpu.read_u64 hv.Hv.cpu ~ring:Cpu.Kernel ~cr3:guest.Domain.l4_mfn (kva 9)));
  check_bool "third untouched" true (Result.is_ok
    (Cpu.read_u64 hv.Hv.cpu ~ring:Cpu.Kernel ~cr3:guest.Domain.l4_mfn (kva 11)))

let test_mmu_update_bad_command_bits () =
  let hv, _, guest = built () in
  let l1 = table_at hv guest ~level:1 (kva 0) in
  let ptr = Int64.logor (entry_ptr l1 9) 2L (* MMU_MACHPHYS_UPDATE: unsupported *) in
  Alcotest.check errno_t "unsupported command" Errno.ENOSYS
    (Result.get_error (Mm.mmu_update hv guest ~updates:[ (ptr, Pte.none) ]))

let test_decrease_reservation_stops_at_error () =
  let hv, _, guest = built () in
  ignore (Mm.update_va_mapping hv guest ~va:(kva 9) Pte.none);
  (* pfn 9 releasable, pfn 10 still mapped -> EBUSY after the first *)
  Alcotest.check errno_t "stops at busy page" Errno.EBUSY
    (Result.get_error (Mm.decrease_reservation hv guest [ 9; 10 ]));
  check_bool "first actually released" true (Domain.mfn_of_pfn guest 9 = None);
  check_bool "second kept" true (Domain.mfn_of_pfn guest 10 <> None)

let test_update_va_mapping_superpage_leaf () =
  let hv, _, guest = built () in
  (* install a PSE mapping (4.6 accepts), then try to update "the L1"
     beneath it: there is none, the leaf is the superpage *)
  let l2 = table_at hv guest ~level:2 (kva 0) in
  let l1 = table_at hv guest ~level:1 (kva 0) in
  let pse = Pte.make ~mfn:l1 ~flags:[ Pte.Present; Pte.Rw; Pte.User; Pte.Pse ] in
  check_bool "pse installed" true (Mm.mmu_update hv guest ~updates:[ (entry_ptr l2 9, pse) ] = Ok 1);
  let va_in_superpage = Int64.add Layout.guest_kernel_base (Int64.of_int (9 * Addr.superpage_size)) in
  Alcotest.check errno_t "no entry-wise update through a superpage" Errno.EINVAL
    (Result.get_error (Mm.update_va_mapping hv guest ~va:va_in_superpage Pte.none))

(* --- exchange partial effects ------------------------------------------------ *)

let test_exchange_stops_mid_list () =
  let hv, _, guest = built () in
  ignore (Mm.update_va_mapping hv guest ~va:(kva 9) Pte.none);
  (* second pfn still mapped: the eager check fails it after the first
     extent has already been exchanged — a real partial effect *)
  match
    Memory_exchange.exchange hv guest
      { Memory_exchange.in_pfns = [ 9; 10 ]; out_extent_start = kva 5 }
  with
  | Error Errno.EBUSY -> check_bool "first extent re-populated" true (Domain.mfn_of_pfn guest 9 <> None)
  | Error e -> Alcotest.fail (Errno.to_string e)
  | Ok _ -> Alcotest.fail "expected failure on the second extent"

let test_exchange_empty_list () =
  let hv, _, guest = built () in
  match
    Memory_exchange.exchange hv guest { Memory_exchange.in_pfns = []; out_extent_start = kva 5 }
  with
  | Ok { Memory_exchange.nr_exchanged = 0; new_mfns = [] } -> ()
  | _ -> Alcotest.fail "empty exchange is a no-op"

(* --- grant/xenstore boundaries ----------------------------------------------- *)

let test_grant_wire_out_of_range_gref () =
  let hv, dom0, guest = built () in
  ignore
    (Hypercall.dispatch hv guest
       (Hypercall.Grant_table_op (Hypercall.Gnttab_setup_table { nr_frames = 1 })));
  (* gref beyond the single shared frame *)
  Alcotest.check errno_t "gref beyond shared frames" Errno.EINVAL
    (Result.get_error
       (Grant_table.map_memory guest.Domain.grant ~mem:hv.Hv.mem ~granter:guest.Domain.id
          ~mapper:dom0.Domain.id ~gref:9999
          ~gfn_to_mfn:(fun _ -> None)));
  Alcotest.check errno_t "negative gref" Errno.EINVAL
    (Result.get_error
       (Grant_table.map_memory guest.Domain.grant ~mem:hv.Hv.mem ~granter:guest.Domain.id
          ~mapper:dom0.Domain.id ~gref:(-1)
          ~gfn_to_mfn:(fun _ -> None)))

let test_grant_wire_bad_gfn () =
  let hv, dom0, guest = built () in
  ignore
    (Hypercall.dispatch hv guest
       (Hypercall.Grant_table_op (Hypercall.Gnttab_setup_table { nr_frames = 1 })));
  let frame_mfn = List.hd (Grant_table.shared_frames guest.Domain.grant) in
  Grant_table.Wire.write (Phys_mem.frame hv.Hv.mem frame_mfn) 0
    {
      Grant_table.Wire.w_flags = Grant_table.Wire.gtf_permit_access;
      w_domid = dom0.Domain.id;
      w_gfn = 99999;
    };
  Alcotest.check errno_t "unpopulated gfn" Errno.EINVAL
    (Result.get_error
       (Grant_table.map_memory guest.Domain.grant ~mem:hv.Hv.mem ~granter:guest.Domain.id
          ~mapper:dom0.Domain.id ~gref:0
          ~gfn_to_mfn:(fun gfn -> Domain.mfn_of_pfn guest gfn)))

let test_xenstore_boundaries () =
  let xs = Xenstore.create () in
  (* a guest cannot write at its subtree's parent or a sibling's *)
  check_bool "parent refused" true
    (Xenstore.write xs ~caller:3 "/local/domain/3" "x" = Error Errno.EACCES);
  check_bool "prefix trick refused" true
    (Xenstore.write xs ~caller:3 "/local/domain/33/name" "x" = Error Errno.EACCES);
  check_bool "own deep path ok" true
    (Xenstore.write xs ~caller:3 "/local/domain/3/a/b/c/d" "x" = Ok ())

(* --- injector boundaries ------------------------------------------------------ *)

let test_injector_cross_frame_and_limits () =
  let tb = Testbed.create Version.V4_8 in
  Ii_core.Injector.install tb.Testbed.hv;
  let k = tb.Testbed.attacker in
  (* a ranged physical write across a frame boundary *)
  let mfn = Option.get (Domain.mfn_of_pfn (Kernel.dom k) 5) in
  let addr = Int64.add (Addr.maddr_of_mfn mfn) (Int64.of_int (Addr.page_size - 4)) in
  check_bool "cross-frame write" true
    (Ii_core.Injector.write k ~addr ~action:Ii_core.Injector.Arbitrary_write_physical
       (Bytes.of_string "ABCDEFGH")
    = Ok ());
  (match Ii_core.Injector.read k ~addr ~action:Ii_core.Injector.Arbitrary_read_physical ~len:8 with
  | Ok b -> Alcotest.(check string) "cross-frame read" "ABCDEFGH" (Bytes.to_string b)
  | Error _ -> Alcotest.fail "read");
  (* zero-length and end-of-memory are refused *)
  check_bool "zero length" true
    (Ii_core.Injector.read k ~addr ~action:Ii_core.Injector.Arbitrary_read_physical ~len:0
    = Error Errno.EINVAL);
  let last = Addr.maddr_of_mfn (Phys_mem.total_frames tb.Testbed.hv.Hv.mem) in
  check_bool "end of ram" true
    (Ii_core.Injector.write_u64 k ~addr:last ~action:Ii_core.Injector.Arbitrary_write_physical 0L
    = Error Errno.EINVAL)

(* --- crash-state behaviour ----------------------------------------------------- *)

let test_everything_refuses_after_crash () =
  let hv, _, guest = built () in
  Hv.panic hv ~reason:"test" ~dump:[];
  Alcotest.check errno_t "mmu_update" Errno.EINVAL
    (Result.get_error (Mm.mmu_update hv guest ~updates:[]));
  Alcotest.check errno_t "exchange" Errno.EINVAL
    (Result.get_error
       (Memory_exchange.exchange hv guest { Memory_exchange.in_pfns = []; out_extent_start = 0L }));
  check_int "abi" (-22) (Abi.dispatch hv guest ~number:1 ());
  check_bool "sched idles" true (Hv.sched_tick hv = Sched.Idle)

let () =
  Alcotest.run "error_paths"
    [
      ( "promote",
        [
          Alcotest.test_case "rollback restores counts" `Quick test_promote_rollback_restores_counts;
          Alcotest.test_case "wrong owner" `Quick test_promote_wrong_owner;
          Alcotest.test_case "busy type" `Quick test_promote_busy_type;
        ] );
      ( "mmu_update",
        [
          Alcotest.test_case "stops at first failure" `Quick test_mmu_update_stops_at_first_failure;
          Alcotest.test_case "bad command bits" `Quick test_mmu_update_bad_command_bits;
          Alcotest.test_case "decrease stops at error" `Quick test_decrease_reservation_stops_at_error;
          Alcotest.test_case "no update through superpage" `Quick test_update_va_mapping_superpage_leaf;
        ] );
      ( "exchange",
        [
          Alcotest.test_case "stops mid-list" `Quick test_exchange_stops_mid_list;
          Alcotest.test_case "empty list" `Quick test_exchange_empty_list;
        ] );
      ( "grant+xenstore",
        [
          Alcotest.test_case "gref out of range" `Quick test_grant_wire_out_of_range_gref;
          Alcotest.test_case "bad gfn" `Quick test_grant_wire_bad_gfn;
          Alcotest.test_case "xenstore boundaries" `Quick test_xenstore_boundaries;
        ] );
      ( "injector",
        [ Alcotest.test_case "cross-frame and limits" `Quick test_injector_cross_frame_and_limits ] );
      ( "crash",
        [ Alcotest.test_case "everything refuses after crash" `Quick test_everything_refuses_after_crash ] );
    ]
