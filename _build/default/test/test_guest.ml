(* Tests for the guest-kernel library: filesystem, shell, network
   simulation, kernel wrappers and the vDSO backdoor hook. *)

open Ii_xen
open Ii_guest

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- Fs ----------------------------------------------------------------- *)

let test_fs_write_read () =
  let fs = Fs.create () in
  Fs.write fs ~path:"/tmp/a" ~uid:1000 "hello";
  (match Fs.read fs "/tmp/a" with
  | Some f ->
      check_str "content" "hello" f.Fs.content;
      check_int "uid" 1000 f.Fs.uid
  | None -> Alcotest.fail "missing");
  check_bool "exists" true (Fs.exists fs "/tmp/a");
  Fs.remove fs "/tmp/a";
  check_bool "removed" false (Fs.exists fs "/tmp/a")

let test_fs_overwrite () =
  let fs = Fs.create () in
  Fs.write fs ~path:"/x" ~uid:0 "one";
  Fs.write fs ~path:"/x" ~uid:1000 "two";
  match Fs.read fs "/x" with
  | Some f ->
      check_str "latest" "two" f.Fs.content;
      check_int "latest uid" 1000 f.Fs.uid
  | None -> Alcotest.fail "missing"

let test_fs_permissions () =
  let root_file = { Fs.content = "secret"; uid = 0; gid = 0 } in
  let user_file = { Fs.content = "public"; uid = 1000; gid = 1000 } in
  check_bool "root reads root" true (Fs.readable_by root_file ~uid:0);
  check_bool "user blocked from root file" false (Fs.readable_by root_file ~uid:1000);
  check_bool "user reads own" true (Fs.readable_by user_file ~uid:1000);
  check_bool "other user reads non-root" true (Fs.readable_by user_file ~uid:1001)

let test_fs_paths_sorted () =
  let fs = Fs.create () in
  Fs.write fs ~path:"/b" ~uid:0 "";
  Fs.write fs ~path:"/a" ~uid:0 "";
  Alcotest.(check (list string)) "sorted" [ "/a"; "/b" ] (Fs.paths fs)

(* --- Shell --------------------------------------------------------------- *)

let ctx ?(uid = 1000) () = { Shell.hostname = "xen3"; fs = Fs.create (); uid }

let test_shell_builtins () =
  let c = ctx () in
  check_str "hostname" "xen3" (Shell.run c "hostname");
  check_str "whoami" "xen" (Shell.run c "whoami");
  check_str "id" "uid=1000(xen) gid=1000(xen) groups=1000(xen)" (Shell.run c "id");
  check_str "echo" "a b c" (Shell.run c "echo a b c");
  check_str "root id" "uid=0(root) gid=0(root) groups=0(root)"
    (Shell.run { c with Shell.uid = 0 } "id")

let test_shell_chain () =
  let c = ctx ~uid:0 () in
  check_str "chain" "root\nxen3" (Shell.run c "whoami && hostname")

let test_shell_substitution () =
  let c = ctx ~uid:0 () in
  check_str "subst" "|uid=0(root) gid=0(root) groups=0(root)|@xen3"
    (Shell.run c "echo \"|$(id)|@$(hostname)\"")

let test_shell_redirect () =
  let c = ctx ~uid:0 () in
  let out = Shell.run c "echo \"|$(id)|@$(hostname)\" > /tmp/injector_log" in
  check_str "silent" "" out;
  match Fs.read c.Shell.fs "/tmp/injector_log" with
  | Some f ->
      check_str "file content" "|uid=0(root) gid=0(root) groups=0(root)|@xen3" f.Fs.content;
      check_int "root owned" 0 f.Fs.uid
  | None -> Alcotest.fail "no file"

let test_shell_cat_permissions () =
  let c = ctx ~uid:0 () in
  Fs.write c.Shell.fs ~path:"/root/root_msg" ~uid:0 "Confidential content in root folder!";
  check_str "root cat" "Confidential content in root folder!" (Shell.run c "cat /root/root_msg");
  let user = { c with Shell.uid = 1000 } in
  check_str "user denied" "cat: /root/root_msg: Permission denied"
    (Shell.run user "cat /root/root_msg");
  check_str "missing" "cat: /nope: No such file or directory" (Shell.run c "cat /nope")

let test_shell_unknown () =
  check_str "unknown" "sh: nmap: command not found" (Shell.run (ctx ()) "nmap -sS target")

let test_shell_user_names () =
  check_str "root" "root" (Shell.user_name 0);
  check_str "xen" "xen" (Shell.user_name 1000);
  check_str "other" "user42" (Shell.user_name 42)

(* --- Netsim ----------------------------------------------------------------- *)

let test_netsim_refused_without_listener () =
  let net = Netsim.create () in
  match
    Netsim.connect net ~from_host:"a" ~from_ip:"10.0.0.1" ~host:"b" ~port:80 ~uid:0
      ~exec:(fun _ -> "")
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected refusal"

let test_netsim_connect_and_run () =
  let net = Netsim.create () in
  Netsim.listen net ~host:"xen2" ~port:1234;
  check_bool "listening" true (Netsim.is_listening net ~host:"xen2" ~port:1234);
  match
    Netsim.connect net ~from_host:"xen3" ~from_ip:"10.3.1.180" ~host:"xen2" ~port:1234 ~uid:0
      ~exec:(fun cmd -> if cmd = "whoami" then "root" else "?")
  with
  | Error e -> Alcotest.fail e
  | Ok conn ->
      check_str "exec routes to victim" "root" (Netsim.run_command conn "whoami");
      check_int "tracked" 1 (List.length (Netsim.connections_to net ~host:"xen2" ~port:1234));
      let t = Netsim.transcript conn in
      check_bool "banner" true
        (String.length t > 0 && String.sub t 0 (String.length "Listening on") = "Listening on");
      check_bool "command logged" true
        (List.exists (fun l -> l = "whoami") (String.split_on_char '\n' t))

(* --- Kernel -------------------------------------------------------------- *)

let tb () = Testbed.create Version.V4_6

let contains line needle =
  let n = String.length needle and m = String.length line in
  let rec go i = i + n <= m && (String.sub line i n = needle || go (i + 1)) in
  go 0

let test_kernel_identity () =
  let tb = tb () in
  check_str "dom0 hostname" "xen3" (Kernel.hostname tb.Testbed.dom0);
  check_str "attacker hostname" "guest03" (Kernel.hostname tb.Testbed.attacker);
  check_str "ip" "10.3.1.182" (Kernel.ip tb.Testbed.attacker);
  check_bool "dom0 privileged" true (Kernel.dom tb.Testbed.dom0).Domain.privileged;
  check_bool "root_msg seeded" true (Fs.exists (Kernel.fs tb.Testbed.dom0) "/root/root_msg")

let test_kernel_printk () =
  let tb = tb () in
  let k = tb.Testbed.attacker in
  Kernel.printk k "hello";
  Kernel.printk_tagged k ~tag:"xen_exploit" "xen version = 4.6";
  match Kernel.klog k with
  | [ a; b ] ->
      check_bool "stamped" true (String.length a > 6 && a.[0] = '[');
      check_bool "tagged" true (contains b "xen_exploit")
  | _ -> Alcotest.fail "expected two lines"

let test_kernel_start_info () =
  let tb = tb () in
  let k = tb.Testbed.attacker in
  check_int "pt_base matches domain" (Kernel.dom k).Domain.l4_mfn (Kernel.pt_base_mfn k);
  check_bool "vdso mfn valid" true (Kernel.vdso_mfn k >= 0)

let test_kernel_pt_entry () =
  let tb = tb () in
  let k = tb.Testbed.attacker in
  let l4 = Kernel.pt_base_mfn k in
  (match Kernel.pt_entry k ~table_mfn:l4 ~index:(Addr.l4_index Layout.guest_kernel_base) with
  | Some e -> check_bool "kernel slot present" true (Pte.is_present e)
  | None -> Alcotest.fail "l4 readable");
  check_bool "xen frame unreadable" true
    (Kernel.pt_entry k ~table_mfn:(Kernel.hv k).Hv.idt_mfn ~index:0 = None)

let test_kernel_memory_access () =
  let tb = tb () in
  let k = tb.Testbed.attacker in
  let va = Domain.kernel_vaddr_of_pfn 5 in
  check_bool "write" true (Result.is_ok (Kernel.write_u64 k va 77L));
  check_bool "read" true (Kernel.read_u64 k va = Ok 77L);
  check_bool "fault" true (Result.is_error (Kernel.read_u64 k 0xdead0000L));
  check_bool "not crashed" false (Hv.is_crashed (Kernel.hv k));
  check_bool "bug logged" true (List.exists (fun l -> contains l "BUG") (Kernel.klog k))

let test_kernel_hypercall_rc () =
  let tb = tb () in
  let k = tb.Testbed.attacker in
  check_int "enosys" (-38) (Kernel.hypercall_rc k (Hypercall.Raw { number = 99; args = [||] }))

let test_kernel_shell_uses_own_fs () =
  let tb = tb () in
  ignore (Kernel.shell tb.Testbed.attacker ~uid:0 "echo x > /tmp/mark");
  check_bool "attacker fs" true (Fs.exists (Kernel.fs tb.Testbed.attacker) "/tmp/mark");
  check_bool "victim fs untouched" false (Fs.exists (Kernel.fs tb.Testbed.victim) "/tmp/mark")

(* --- Backdoor ------------------------------------------------------------ *)

let test_backdoor_roundtrip () =
  let payloads =
    [
      Kernel.Backdoor.Run_as_root "echo hi > /tmp/x";
      Kernel.Backdoor.Reverse_shell { host = "xen2"; port = 1234 };
    ]
  in
  List.iter
    (fun p ->
      match Kernel.Backdoor.decode (Kernel.Backdoor.encode p) with
      | Some p' -> check_bool "roundtrip" true (p = p')
      | None -> Alcotest.fail "decode")
    payloads;
  check_bool "garbage" true (Kernel.Backdoor.decode (Bytes.make 64 'x') = None);
  check_bool "short" true (Kernel.Backdoor.decode (Bytes.create 3) = None)

let write_backdoor k payload =
  let hv = Kernel.hv k in
  let frame = Phys_mem.frame hv.Hv.mem (Kernel.vdso_mfn k) in
  Frame.write_bytes frame Builder.Vdso.code_off (Kernel.Backdoor.encode payload)

let test_tick_runs_backdoor () =
  let tb = tb () in
  let k = tb.Testbed.victim in
  Kernel.tick k;
  check_bool "clean tick" false (Fs.exists (Kernel.fs k) "/tmp/injector_log");
  write_backdoor k (Kernel.Backdoor.Run_as_root "echo \"|$(id)|@$(hostname)\" > /tmp/injector_log");
  Kernel.tick k;
  match Fs.read (Kernel.fs k) "/tmp/injector_log" with
  | Some f ->
      check_int "root" 0 f.Fs.uid;
      check_str "content" "|uid=0(root) gid=0(root) groups=0(root)|@guest01" f.Fs.content
  | None -> Alcotest.fail "backdoor did not run"

let test_tick_reverse_shell () =
  let tb = tb () in
  Testbed.remote_listen tb ~port:1234;
  write_backdoor tb.Testbed.dom0 (Kernel.Backdoor.Reverse_shell { host = "xen2"; port = 1234 });
  Kernel.tick tb.Testbed.dom0;
  Kernel.tick tb.Testbed.dom0;
  let conns = Netsim.connections_to tb.Testbed.net ~host:"xen2" ~port:1234 in
  check_int "one connection" 1 (List.length conns);
  let conn = List.hd conns in
  check_int "root shell" 0 conn.Netsim.conn_uid;
  check_str "remote commands execute as root" "root\nxen3"
    (Netsim.run_command conn "whoami && hostname")

let test_tick_noop_after_crash () =
  let tb = tb () in
  Hv.panic tb.Testbed.hv ~reason:"dead" ~dump:[];
  write_backdoor tb.Testbed.victim (Kernel.Backdoor.Run_as_root "echo x > /tmp/after_crash");
  Kernel.tick tb.Testbed.victim;
  check_bool "no execution on dead host" false
    (Fs.exists (Kernel.fs tb.Testbed.victim) "/tmp/after_crash")

(* --- Process ------------------------------------------------------------- *)

let test_process_table () =
  let t = Process.create () in
  (match Process.list t with
  | [ init; sh ] ->
      check_int "init pid" 1 init.Process.pid;
      check_int "init uid" 0 init.Process.uid;
      check_int "shell pid" 1000 sh.Process.pid;
      check_int "shell uid" 1000 sh.Process.uid
  | _ -> Alcotest.fail "two residents expected");
  let p = Process.spawn t ~uid:1000 ~cmdline:"./attack" in
  check_int "fresh pid" 1001 p.Process.pid;
  check_int "three procs" 3 (List.length (Process.list t));
  Alcotest.(check (list int)) "uids" [ 0; 1000 ] (Process.running_uids t);
  check_bool "kill" true (Process.kill t ~pid:p.Process.pid);
  check_bool "kill gone" false (Process.kill t ~pid:p.Process.pid);
  check_bool "find init" true (Process.find t ~pid:1 <> None)

let test_process_vdso_calls () =
  let t = Process.create () in
  Process.on_tick t;
  Process.on_tick t;
  List.iter (fun p -> check_int "two calls" 2 p.Process.vdso_calls) (Process.list t)

let test_ps_builtin () =
  let tb = tb () in
  let k = tb.Testbed.attacker in
  ignore (Process.spawn (Kernel.processes k) ~uid:1000 ~cmdline:"./xsa212_poc");
  let out = Kernel.shell k ~uid:1000 "ps" in
  check_bool "header" true (contains out "COMMAND");
  check_bool "init listed" true (contains out "/sbin/init");
  check_bool "attacker tool listed" true (contains out "./xsa212_poc");
  check_bool "user names resolved" true (contains out "root" && contains out "xen")

let test_tick_counts_vdso_calls () =
  let tb = tb () in
  Kernel.tick tb.Testbed.victim;
  List.iter
    (fun p -> check_int "one call per tick" 1 p.Process.vdso_calls)
    (Process.list (Kernel.processes tb.Testbed.victim))

(* --- Testbed ---------------------------------------------------------------- *)

let test_testbed_shape () =
  let tb = tb () in
  check_int "three kernels" 3 (List.length (Testbed.kernels tb));
  check_int "three domains" 3 (List.length tb.Testbed.hv.Hv.domains);
  check_str "remote host" "xen2" tb.Testbed.remote_host;
  let tb2 = Testbed.create Version.V4_6 in
  check_int "deterministic l4"
    (Kernel.dom tb.Testbed.attacker).Domain.l4_mfn
    (Kernel.dom tb2.Testbed.attacker).Domain.l4_mfn

let test_testbed_isolation_baseline () =
  let tb = tb () in
  let victim_mfn = Option.get (Domain.mfn_of_pfn (Kernel.dom tb.Testbed.victim) 5) in
  let va = Layout.directmap_of_maddr (Addr.maddr_of_mfn victim_mfn) in
  check_bool "attacker blocked" true (Result.is_error (Kernel.read_u64 tb.Testbed.attacker va))

let () =
  Alcotest.run "guest"
    [
      ( "fs",
        [
          Alcotest.test_case "write/read" `Quick test_fs_write_read;
          Alcotest.test_case "overwrite" `Quick test_fs_overwrite;
          Alcotest.test_case "permissions" `Quick test_fs_permissions;
          Alcotest.test_case "paths sorted" `Quick test_fs_paths_sorted;
        ] );
      ( "shell",
        [
          Alcotest.test_case "builtins" `Quick test_shell_builtins;
          Alcotest.test_case "&& chain" `Quick test_shell_chain;
          Alcotest.test_case "substitution" `Quick test_shell_substitution;
          Alcotest.test_case "redirect" `Quick test_shell_redirect;
          Alcotest.test_case "cat permissions" `Quick test_shell_cat_permissions;
          Alcotest.test_case "unknown command" `Quick test_shell_unknown;
          Alcotest.test_case "user names" `Quick test_shell_user_names;
        ] );
      ( "netsim",
        [
          Alcotest.test_case "refused without listener" `Quick test_netsim_refused_without_listener;
          Alcotest.test_case "connect and run" `Quick test_netsim_connect_and_run;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "identity" `Quick test_kernel_identity;
          Alcotest.test_case "printk" `Quick test_kernel_printk;
          Alcotest.test_case "start_info" `Quick test_kernel_start_info;
          Alcotest.test_case "pt_entry" `Quick test_kernel_pt_entry;
          Alcotest.test_case "memory access" `Quick test_kernel_memory_access;
          Alcotest.test_case "hypercall rc" `Quick test_kernel_hypercall_rc;
          Alcotest.test_case "shell fs isolation" `Quick test_kernel_shell_uses_own_fs;
        ] );
      ( "backdoor",
        [
          Alcotest.test_case "roundtrip" `Quick test_backdoor_roundtrip;
          Alcotest.test_case "tick runs payload" `Quick test_tick_runs_backdoor;
          Alcotest.test_case "reverse shell" `Quick test_tick_reverse_shell;
          Alcotest.test_case "noop after crash" `Quick test_tick_noop_after_crash;
        ] );
      ( "process",
        [
          Alcotest.test_case "table" `Quick test_process_table;
          Alcotest.test_case "vdso calls" `Quick test_process_vdso_calls;
          Alcotest.test_case "ps builtin" `Quick test_ps_builtin;
          Alcotest.test_case "tick counts calls" `Quick test_tick_counts_vdso_calls;
        ] );
      ( "testbed",
        [
          Alcotest.test_case "shape" `Quick test_testbed_shape;
          Alcotest.test_case "isolation baseline" `Quick test_testbed_isolation_baseline;
        ] );
    ]
