(* Tests for the page-table integrity guard and the §III-C defence
   evaluation built on intrusion injection. *)

open Ii_xen
open Ii_guest
open Ii_core
open Ii_exploits

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tb version =
  let tb = Testbed.create version in
  Injector.install tb.Testbed.hv;
  tb

let gate_addr (tb : Testbed.t) =
  Int64.add
    (Kernel.sidt tb.Testbed.attacker)
    (Int64.of_int (Idt.handler_offset Idt.vector_page_fault))

let inject_gate tb =
  match
    Injector.write_u64 tb.Testbed.attacker ~addr:(gate_addr tb)
      ~action:Injector.Arbitrary_write_linear 0xBADL
  with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "injection failed"

(* --- Pt_guard ------------------------------------------------------------- *)

let test_guard_protects_expected_frames () =
  let tb = tb Version.V4_6 in
  let g = Pt_guard.deploy tb.Testbed.hv Pt_guard.Detect_only in
  let protected_set = Pt_guard.protected_frames g in
  check_bool "idt protected" true (List.mem tb.Testbed.hv.Hv.idt_mfn protected_set);
  check_bool "m2p protected" true (List.mem tb.Testbed.hv.Hv.m2p_mfns.(0) protected_set);
  let attacker_l4 = (Kernel.dom tb.Testbed.attacker).Domain.l4_mfn in
  check_bool "guest l4 protected" true (List.mem attacker_l4 protected_set);
  check_bool "many pt pages" true (List.length protected_set > 20)

let test_guard_clean_audit () =
  let tb = tb Version.V4_6 in
  let g = Pt_guard.deploy tb.Testbed.hv Pt_guard.Detect_only in
  check_int "nothing detected" 0 (List.length (Pt_guard.audit g));
  check_int "one audit" 1 (Pt_guard.audits_run g)

let test_guard_detects_injection () =
  let tb = tb Version.V4_6 in
  let g = Pt_guard.deploy tb.Testbed.hv Pt_guard.Detect_only in
  inject_gate tb;
  match Pt_guard.audit g with
  | [ d ] ->
      check_int "the idt frame" tb.Testbed.hv.Hv.idt_mfn d.Pt_guard.d_mfn;
      check_int "one word" 1 (List.length d.Pt_guard.d_offsets);
      check_bool "not repaired" false d.Pt_guard.repaired;
      (* detect-only leaves the corruption in place *)
      check_bool "still corrupted" true (Pt_guard.audit g <> [])
  | _ -> Alcotest.fail "expected exactly one detection"

let test_guard_repair_restores () =
  let tb = tb Version.V4_6 in
  let g = Pt_guard.deploy tb.Testbed.hv Pt_guard.Detect_and_repair in
  inject_gate tb;
  let spec = Erroneous_state.Idt_gate_corrupted { vector = Idt.vector_page_fault } in
  check_bool "state present" true (Erroneous_state.audit tb.Testbed.hv spec).Erroneous_state.holds;
  (match Pt_guard.audit g with
  | [ d ] -> check_bool "repaired" true d.Pt_guard.repaired
  | _ -> Alcotest.fail "one detection");
  check_bool "state gone" false (Erroneous_state.audit tb.Testbed.hv spec).Erroneous_state.holds;
  check_int "clean after repair" 0 (List.length (Pt_guard.audit g));
  (* the attack step now fails: the fault is handled *)
  ignore (Kernel.read_u64 tb.Testbed.attacker 0xdead0000L);
  check_bool "host survives" false (Hv.is_crashed tb.Testbed.hv);
  check_bool "repair logged" true
    (List.exists
       (fun l ->
         let rec c i = i + 8 <= String.length l && (String.sub l i 8 = "pt-guard" || c (i + 1)) in
         c 0)
       (Hv.console_lines tb.Testbed.hv))

let test_guard_ignores_legitimate_updates () =
  let tb = tb Version.V4_6 in
  let g = Pt_guard.deploy tb.Testbed.hv Pt_guard.Detect_and_repair in
  let k = tb.Testbed.attacker in
  (* a legitimate, validated update flows through the hook *)
  check_int "unmap ok" 0
    (Kernel.hypercall_rc k
       (Hypercall.Update_va_mapping { va = Domain.kernel_vaddr_of_pfn 9; value = Pte.none }));
  check_int "no false positive" 0 (List.length (Pt_guard.audit g));
  (* and the golden copy followed the update: repair must NOT undo it *)
  check_bool "still unmapped" true
    (Result.is_error (Kernel.read_u64 k (Domain.kernel_vaddr_of_pfn 9)))

let test_guard_balloon_is_legitimate () =
  let tb = tb Version.V4_8 in
  let g = Pt_guard.deploy tb.Testbed.hv Pt_guard.Detect_and_repair in
  ignore
    (Toolstack.set_memory_target tb.Testbed.dom0 ~domid:(Kernel.domid tb.Testbed.victim) ~pages:90);
  Kernel.tick tb.Testbed.victim;
  check_int "balloon causes no detections" 0 (List.length (Pt_guard.audit g))

let test_guard_periodic () =
  let tb = tb Version.V4_6 in
  let g = Pt_guard.deploy tb.Testbed.hv Pt_guard.Detect_and_repair in
  Pt_guard.enable_periodic g ~every:3;
  inject_gate tb;
  Pt_guard.on_tick g;
  Pt_guard.on_tick g;
  check_int "not yet" 0 (Pt_guard.audits_run g);
  Pt_guard.on_tick g;
  check_int "fired" 1 (Pt_guard.audits_run g);
  check_bool "repaired by periodic audit" false
    (Erroneous_state.audit tb.Testbed.hv
       (Erroneous_state.Idt_gate_corrupted { vector = Idt.vector_page_fault }))
      .Erroneous_state.holds

let test_guard_protect_extra_frame () =
  let tb = tb Version.V4_6 in
  let g = Pt_guard.deploy tb.Testbed.hv Pt_guard.Detect_only in
  let extra = Option.get (Domain.mfn_of_pfn (Kernel.dom tb.Testbed.victim) 5) in
  Pt_guard.protect g extra;
  Phys_mem.write_u64 tb.Testbed.hv.Hv.mem (Addr.maddr_of_mfn extra) 0x99L;
  check_bool "extra frame audited" true
    (List.exists (fun d -> d.Pt_guard.d_mfn = extra) (Pt_guard.audit g))

(* --- Defense_eval ------------------------------------------------------------ *)

let matrix = lazy (Defense_eval.matrix ())

let rows_for d = List.filter (fun r -> r.Defense_eval.r_deployment = d) (Lazy.force matrix)

let test_eval_shape () =
  check_int "12 rows" 12 (List.length (Lazy.force matrix));
  check_int "4 scenarios" 4 (List.length Defense_eval.scenarios)

let test_eval_injection_always_lands () =
  List.iter
    (fun r -> check_bool (r.Defense_eval.scenario ^ " injected") true r.Defense_eval.injected)
    (Lazy.force matrix)

let test_eval_no_guard_attacks_succeed () =
  List.iter
    (fun r ->
      check_bool "undetected" false r.Defense_eval.detected;
      check_bool "attack works" true r.Defense_eval.attack_succeeded)
    (rows_for Defense_eval.No_guard)

let test_eval_detect_only_sees_but_does_not_stop () =
  List.iter
    (fun r ->
      check_bool "detected" true r.Defense_eval.detected;
      check_bool "attack still works" true r.Defense_eval.attack_succeeded)
    (rows_for Defense_eval.Detect)

let test_eval_repair_blocks_everything () =
  List.iter
    (fun r ->
      check_bool "detected" true r.Defense_eval.detected;
      check_bool "attack blocked" false r.Defense_eval.attack_succeeded)
    (rows_for Defense_eval.Detect_and_repair)

let test_eval_render () =
  let s = Defense_eval.render (Lazy.force matrix) in
  check_bool "mentions blocked" true
    (let rec c i = i + 7 <= String.length s && (String.sub s i 7 = "blocked" || c (i + 1)) in
     c 0)

let () =
  Alcotest.run "defense"
    [
      ( "pt_guard",
        [
          Alcotest.test_case "protects expected frames" `Quick test_guard_protects_expected_frames;
          Alcotest.test_case "clean audit" `Quick test_guard_clean_audit;
          Alcotest.test_case "detects injection" `Quick test_guard_detects_injection;
          Alcotest.test_case "repair restores" `Quick test_guard_repair_restores;
          Alcotest.test_case "ignores legitimate updates" `Quick
            test_guard_ignores_legitimate_updates;
          Alcotest.test_case "balloon is legitimate" `Quick test_guard_balloon_is_legitimate;
          Alcotest.test_case "periodic audits" `Quick test_guard_periodic;
          Alcotest.test_case "protect extra frame" `Quick test_guard_protect_extra_frame;
        ] );
      ( "defense_eval",
        [
          Alcotest.test_case "shape" `Slow test_eval_shape;
          Alcotest.test_case "injection always lands" `Slow test_eval_injection_always_lands;
          Alcotest.test_case "no guard: attacks succeed" `Slow test_eval_no_guard_attacks_succeed;
          Alcotest.test_case "detect-only: sees, does not stop" `Slow
            test_eval_detect_only_sees_but_does_not_stop;
          Alcotest.test_case "repair: blocks everything" `Slow test_eval_repair_blocks_everything;
          Alcotest.test_case "render" `Slow test_eval_render;
        ] );
    ]
