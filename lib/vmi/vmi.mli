(** Out-of-band virtual machine introspection.

    A VMI agent on a real host reads [/dev/mem] (or maps the guest's
    frames) and reconstructs semantic state — page-table graphs, the
    IDT, the M2P — from raw bytes, without any cooperation from the
    monitored software. This library does exactly that against the
    simulated machine: every reconstruction in {!View} goes through
    {!Phys_mem.frame_ro} and the read-only accessors, so a scan can
    never perturb the system it observes (pinned by a test: a trial's
    final snapshot is identical with detectors on and off).

    On top of the views sits a pluggable {!Detector} abstraction — the
    monitoring tools the paper's intrusion-injection campaigns are meant
    to assess — and a {!Scheduler} that interleaves periodic scans with
    campaign trial steps and reports {e detection latency}: the trace
    sequence number at which each detector first fired, correlated
    against the injector's access records. *)

(** {1 Semantic views over raw frames} *)

module View : sig
  val frame_hash : Hv.t -> Addr.mfn -> int64
  (** FNV-1a of the frame contents ({!Phys_mem.frame_hash}). *)

  val idt_gates : Hv.t -> (int * Idt.gate) list
  (** The present gates of the in-memory IDT, by vector. *)

  (** The page-table graph reachable from a domain's root, rebuilt from
      frame bytes exactly as hardware would walk them — forged entries
      and superpage aliases included. *)
  type pt_graph = {
    g_nodes : (Addr.mfn * int) list;
        (** table frames and the deepest level each was visited at *)
    g_leaves : (Addr.vaddr * Addr.mfn * bool) list;
        (** (virtual address, target frame, cumulatively-writable) for
            every 4 KiB translation; a level-2 PSE superpage contributes
            one leaf per covered frame *)
    g_frames_read : int;  (** table frames visited (the scan cost) *)
  }

  val pt_graph : Hv.t -> Domain.t -> pt_graph

  val exposure_count : Hv.t -> pt_graph -> int
  (** How many leaves give guest-privilege code a writable window onto a
      sensitive frame: the leaf is writable along its whole path, the
      virtual address is guest-writable under the version's
      {!Layout.guest_access} policy, and the target is a page-table
      frame (a graph node), Xen-owned, or carries a live table type in
      {!Page_info}. This is the erroneous-state signature of the
      XSA-148 / XSA-182 / XSA-212-priv use cases. *)

  val m2p_raw : Hv.t -> Addr.mfn -> int64
  (** The raw M2P entry for [mfn], read from table bytes. *)

  val m2p_mismatches : Hv.t -> (int * Addr.mfn * Addr.pfn) list
  (** P2M/M2P inconsistencies: [(domid, mfn, pfn)] for every populated
      P2M slot whose M2P entry does not map back to it. *)
end

(** {1 Detectors} *)

module Detector : sig
  type scan_result = {
    findings : string list;  (** human-readable anomaly descriptions *)
    frames_read : int;  (** deterministic cost proxy for this scan *)
  }

  (** One monitoring strategy over a machine state ['st] (an {!Hv.t}
      for the Xen detectors below; other substrates supply their own
      state type). [arm] captures whatever baseline the strategy needs
      from a known-good system; [scan] re-derives the view and reports
      anomalies. Both must be side-effect-free on the machine (reads
      only). *)
  type 'st t = { name : string; arm : 'st -> unit; scan : 'st -> scan_result }

  val contramap : ('b -> 'a) -> 'a t -> 'b t
  (** Adapt a detector to a larger state by projecting out the part it
      scans (e.g. an [Hv.t] detector over a whole testbed). *)

  val integrity_hasher : unit -> Hv.t t
  (** Baseline FNV-1a hashes over the hypervisor-critical frames (IDT,
      Xen text, the M2P table); fires when any hash changes. *)

  val idt_gate_auditor : unit -> Hv.t t
  (** Invariant-based (no baseline): fires on any present gate whose
      handler is not a registered Xen entry point. *)

  val pt_exposure_scanner : unit -> Hv.t t
  (** Per-domain baseline of {!View.exposure_count}; fires when a
      domain's writable-exposure count rises above it. *)

  val m2p_inverse_checker : unit -> Hv.t t
  (** Baseline count of {!View.m2p_mismatches}; fires on increase. *)

  val liveness : unit -> Hv.t t
  (** Heartbeat: fires on hypervisor crash, watchdog-visible scheduler
      stall growth, newly hung vcpus or newly crashed domains. *)

  val all : unit -> Hv.t t list
  (** Fresh instances of every detector, in a fixed order. *)
end

(** {1 Scan scheduling and latency} *)

module Scheduler : sig
  type 'st t

  val create :
    ?period:int ->
    ?every_ns:int64 ->
    ?registry:Metrics.registry ->
    'st Detector.t list ->
    'st t
  (** [period] (default 1) is how many {!step} calls elapse between
      scans; the first step always scans. When [every_ns] is given the
      scheduler is {e rate-based} instead: a step scans iff the
      machine's virtual clock ({!Trace.vts}) has reached the deadline
      armed [every_ns] simulated ns after the previous scan ([period]
      is then ignored). Because the deadline is a pure function of the
      deterministic clock, sharded/pooled campaigns fire scans at
      identical virtual instants. When [registry] is given, every scan
      publishes [vmi_scans_total]/[vmi_findings_total] (labelled by
      detector) and the [vmi_scan_frames] histogram. *)

  val arm : 'st t -> 'st -> unit
  (** Arm every detector against the current (known-good) state. *)

  val step : 'st t -> Trace.t -> 'st -> unit
  (** One interleaving point in a trial; scans when the period elapses
      (step-count mode) or the virtual-time deadline has passed
      (rate-based mode). [Trace.t] is where scan records and counters
      land — the monitored system's trace, passed explicitly since
      ['st] is opaque here. *)

  val scan_now : 'st t -> Trace.t -> 'st -> unit
  (** Run every detector once: emits a [Vmi_scan] trace record and bumps
      the VMI counters per detector, and records the first firing
      sequence number and virtual timestamp per detector. *)

  val scans_run : 'st t -> int
  val frames_read : 'st t -> int

  val scan_cost_ns : 'st t -> int64
  (** Cumulative virtual cost of every scan so far: frames read priced
      at the trace's {!Vclock.Cost_model} [Vmi_scan_frame] rate. Scans
      are out-of-band observers, so this accrues here and is {e never}
      charged to the machine's clock — tracing-off neutrality and
      replay determinism depend on that. *)

  val first_fire : 'st t -> (string * int) list
  (** [(detector, seq)] for each detector that has fired, in firing
      order. [seq] is the trace sequence number captured just before the
      scan's own record — comparable against [Injector_access] records
      in the same trace. Only meaningful while the ring is recording. *)

  val first_fire_vts : 'st t -> (string * int64) list
  (** [(detector, vts)] analogue of {!first_fire}: the machine's virtual
      timestamp (ns) captured just before the scan's own record, so
      [fire - inject] is a detection latency in simulated ns.
      Meaningful whenever the clock is attached, recording or not. *)

  val findings : 'st t -> (string * string list) list
  (** Cumulative distinct findings per detector (firing order). *)
end

val scan_buckets : float list
(** Histogram bucket bounds (frames read per scan) shared by the
    scheduler and the bench. *)
