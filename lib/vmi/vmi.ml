(* Out-of-band introspection: semantic views rebuilt from raw frame
   bytes via read-only accessors, detectors on top, and a periodic scan
   scheduler. See vmi.mli for the contract. *)

let scan_buckets = [ 4.; 16.; 64.; 256.; 1024. ]

(* --- views ------------------------------------------------------------ *)

module View = struct
  let frame_hash hv mfn =
    Phys_mem.observe hv.Hv.mem ~consumer:Provenance.Vmi_view ~mfn ~off:0 ~len:Addr.page_size;
    Phys_mem.frame_hash hv.Hv.mem mfn

  let idt_gates hv =
    let rec go v acc =
      if v < 0 then acc
      else
        let g = Idt.read_gate hv.Hv.mem hv.Hv.idt_mfn v in
        go (v - 1) (if g.Idt.gate_present then (v, g) :: acc else acc)
    in
    go 255 []

  type pt_graph = {
    g_nodes : (Addr.mfn * int) list;
    g_leaves : (Addr.vaddr * Addr.mfn * bool) list;
    g_frames_read : int;
  }

  (* Shift of a walk index at each table level; composing them rebuilds
     the virtual address the hardware would decode. *)
  let level_shift = function 4 -> 39 | 3 -> 30 | 2 -> 21 | _ -> 12

  let pt_graph hv dom =
    let mem = hv.Hv.mem in
    let nodes = Hashtbl.create 32 in
    let leaves = ref [] in
    let frames_read = ref 0 in
    (* The walk mirrors the hardware decode: level strictly decreases,
       so even a self-mapped root (XSA-182) terminates in <= 4 levels.
       [va] accumulates the index bits chosen so far; [rw] is the AND of
       the Rw bits along the path (x86 semantics: a mapping is writable
       only if every level permits it). *)
    let rec walk mfn level va rw =
      incr frames_read;
      Phys_mem.observe mem ~consumer:Provenance.Vmi_view ~mfn ~off:0 ~len:Addr.page_size;
      if not (Hashtbl.mem nodes mfn) then Hashtbl.replace nodes mfn level;
      Frame.iter_present (Phys_mem.frame_ro mem mfn) (fun i e ->
          let target = Pte.mfn e in
          let va' = Int64.logor va (Int64.shift_left (Int64.of_int i) (level_shift level)) in
          let rw' = rw && Pte.test Pte.Rw e in
          if level = 1 then begin
            if Phys_mem.is_valid_mfn mem target then
              leaves := (Addr.canonical va', target, rw') :: !leaves
          end
          else if level = 2 && Pte.test Pte.Pse e then begin
            (* a 2 MiB superpage: one 4 KiB leaf per covered frame,
               aliasing whatever real frames sit in that naturally
               aligned 512-frame window (the XSA-148 signature) *)
            let base = target land lnot (Addr.entries_per_table - 1) in
            for j = 0 to Addr.entries_per_table - 1 do
              if Phys_mem.is_valid_mfn mem (base + j) then
                leaves :=
                  ( Addr.canonical (Int64.logor va' (Int64.shift_left (Int64.of_int j) 12)),
                    base + j,
                    rw' )
                  :: !leaves
            done
          end
          else if Phys_mem.is_valid_mfn mem target then walk target (level - 1) va' rw')
    in
    if Phys_mem.is_valid_mfn mem dom.Domain.l4_mfn then
      walk dom.Domain.l4_mfn 4 0L true;
    {
      g_nodes = Hashtbl.fold (fun m l acc -> (m, l) :: acc) nodes [];
      g_leaves = !leaves;
      g_frames_read = !frames_read;
    }

  let exposure_count hv g =
    let mem = hv.Hv.mem in
    let hardened = Hv.hardened hv in
    let is_node = Hashtbl.create 32 in
    List.iter (fun (m, _) -> Hashtbl.replace is_node m ()) g.g_nodes;
    let sensitive target =
      Hashtbl.mem is_node target
      || Phys_mem.owner mem target = Phys_mem.Xen
      ||
      let info = Page_info.get hv.Hv.pages target in
      Page_info.table_level info.Page_info.ptype <> None
      && info.Page_info.type_count > 0
    in
    List.fold_left
      (fun acc (va, target, rw) ->
        if
          rw
          && Layout.guest_access ~hardened (Addr.canonical va) = Layout.Read_write
          && sensitive target
        then acc + 1
        else acc)
      0 g.g_leaves

  let m2p_raw hv mfn =
    let frame, off = Hv.m2p_frame_for hv mfn in
    Phys_mem.observe hv.Hv.mem ~consumer:Provenance.Vmi_view ~mfn:frame ~off ~len:8;
    Frame.get_u64 (Phys_mem.frame_ro hv.Hv.mem frame) off

  let m2p_mismatches hv =
    List.concat_map
      (fun dom ->
        List.filter_map
          (fun pfn ->
            match Domain.mfn_of_pfn dom pfn with
            | None -> None
            | Some mfn ->
                if m2p_raw hv mfn = Int64.of_int pfn then None
                else Some (dom.Domain.id, mfn, pfn))
          (Domain.populated_pfns dom))
      hv.Hv.domains
end

(* --- detectors -------------------------------------------------------- *)

module Detector = struct
  type scan_result = { findings : string list; frames_read : int }

  (* Parametric in the machine state it observes: Xen detectors scan an
     [Hv.t], other backends supply their own state type and adapt
     reusable detectors with [contramap]. *)
  type 'st t = { name : string; arm : 'st -> unit; scan : 'st -> scan_result }

  let contramap f d = { name = d.name; arm = (fun st -> d.arm (f st)); scan = (fun st -> d.scan (f st)) }

  let critical_frames hv = hv.Hv.idt_mfn :: hv.Hv.text_mfn :: Array.to_list hv.Hv.m2p_mfns

  let integrity_hasher () =
    let baseline = ref [] in
    {
      name = "integrity";
      arm =
        (fun hv ->
          baseline := List.map (fun m -> (m, View.frame_hash hv m)) (critical_frames hv));
      scan =
        (fun hv ->
          let findings =
            List.filter_map
              (fun (m, h0) ->
                if View.frame_hash hv m = h0 then None
                else Some (Printf.sprintf "critical frame %d hash diverged from baseline" m))
              !baseline
          in
          { findings; frames_read = List.length !baseline });
    }

  let idt_gate_auditor () =
    {
      name = "idt-gates";
      arm = (fun _ -> ());
      scan =
        (fun hv ->
          let findings =
            List.filter_map
              (fun (v, g) ->
                match Cpu.handler_name hv.Hv.cpu g.Idt.handler with
                | Some _ -> None
                | None ->
                    Some
                      (Printf.sprintf "vector %d gate points at unknown handler %016Lx" v
                         g.Idt.handler))
              (View.idt_gates hv)
          in
          { findings; frames_read = 1 });
    }

  let pt_exposure_scanner () =
    let baseline : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let scan_domains hv f =
      List.fold_left
        (fun frames dom ->
          let g = View.pt_graph hv dom in
          f dom (View.exposure_count hv g);
          frames + g.View.g_frames_read)
        0 hv.Hv.domains
    in
    {
      name = "pt-exposure";
      arm =
        (fun hv ->
          Hashtbl.reset baseline;
          ignore
            (scan_domains hv (fun dom n -> Hashtbl.replace baseline dom.Domain.id n)));
      scan =
        (fun hv ->
          let findings = ref [] in
          let frames =
            scan_domains hv (fun dom n ->
                let base =
                  Option.value ~default:0 (Hashtbl.find_opt baseline dom.Domain.id)
                in
                if n > base then
                  findings :=
                    Printf.sprintf
                      "dom%d page tables expose %d writable window(s) onto sensitive frames (baseline %d)"
                      dom.Domain.id n base
                    :: !findings)
          in
          { findings = List.rev !findings; frames_read = frames });
    }

  let m2p_inverse_checker () =
    let baseline = ref 0 in
    {
      name = "m2p-inverse";
      arm = (fun hv -> baseline := List.length (View.m2p_mismatches hv));
      scan =
        (fun hv ->
          let mismatches = View.m2p_mismatches hv in
          let findings =
            if List.length mismatches > !baseline then
              List.map
                (fun (d, mfn, pfn) ->
                  Printf.sprintf "dom%d p2m says pfn %d -> mfn %d but m2p disagrees" d pfn
                    mfn)
                mismatches
            else []
          in
          { findings; frames_read = Array.length hv.Hv.m2p_mfns });
    }

  let liveness () =
    let base_stalls = ref 0 in
    let base_hung = ref 0 in
    let base_dom_crashed = ref [] in
    {
      name = "liveness";
      arm =
        (fun hv ->
          base_stalls := Sched.stalled_slices hv.Hv.sched;
          base_hung := List.length (Sched.hung_vcpus hv.Hv.sched);
          base_dom_crashed :=
            List.filter_map
              (fun d -> if d.Domain.dom_crashed then Some d.Domain.id else None)
              hv.Hv.domains);
      scan =
        (fun hv ->
          let findings = ref [] in
          (match hv.Hv.crashed with
          | Some c -> findings := Printf.sprintf "hypervisor crashed: %s" c.Hv.reason :: !findings
          | None -> ());
          if Sched.stalled_slices hv.Hv.sched > !base_stalls then
            findings :=
              Printf.sprintf "scheduler stalled for %d consecutive slice(s)"
                (Sched.stalled_slices hv.Hv.sched)
              :: !findings;
          let hung = Sched.hung_vcpus hv.Hv.sched in
          if List.length hung > !base_hung then
            List.iter
              (fun (d, why) ->
                findings := Printf.sprintf "dom%d vcpu hung in hypervisor: %s" d why :: !findings)
              hung;
          List.iter
            (fun d ->
              if d.Domain.dom_crashed && not (List.mem d.Domain.id !base_dom_crashed) then
                findings := Printf.sprintf "dom%d crashed" d.Domain.id :: !findings)
            hv.Hv.domains;
          { findings = List.rev !findings; frames_read = 0 });
    }

  let all () =
    [
      integrity_hasher ();
      pt_exposure_scanner ();
      idt_gate_auditor ();
      m2p_inverse_checker ();
      liveness ();
    ]
end

(* --- scan scheduler --------------------------------------------------- *)

module Scheduler = struct
  type 'st t = {
    detectors : 'st Detector.t list;
    period : int;
    every_ns : int64 option;  (* rate-based mode: scan every N virtual ns *)
    registry : Metrics.registry option;
    mutable steps : int;
    mutable deadline : int64 option;  (* next virtual-time scan deadline *)
    mutable scans_run : int;
    mutable frames_read : int;
    mutable scan_cost_ns : int64;  (* virtual cost of scans, never charged to the machine *)
    mutable first_fire : (string * int) list;  (* insertion = firing order *)
    mutable first_fire_vts : (string * int64) list;
    mutable found : (string * string list) list;
  }

  let create ?(period = 1) ?every_ns ?registry detectors =
    if period < 1 then invalid_arg "Vmi.Scheduler.create: period must be >= 1";
    (match every_ns with
    | Some ns when Int64.compare ns 1L < 0 ->
        invalid_arg "Vmi.Scheduler.create: every_ns must be >= 1"
    | _ -> ());
    {
      detectors;
      period;
      every_ns;
      registry;
      steps = 0;
      deadline = None;
      scans_run = 0;
      frames_read = 0;
      scan_cost_ns = 0L;
      first_fire = [];
      first_fire_vts = [];
      found = [];
    }

  let arm t st = List.iter (fun d -> d.Detector.arm st) t.detectors

  let publish t detector ~findings ~frames =
    match t.registry with
    | None -> ()
    | Some reg ->
        let labels = [ ("detector", detector) ] in
        Metrics.inc
          (Metrics.counter reg ~help:"VMI detector scans" ~labels "vmi_scans_total");
        Metrics.inc ~by:findings
          (Metrics.counter reg ~help:"VMI detector findings" ~labels "vmi_findings_total");
        Metrics.observe
          (Metrics.histogram reg ~help:"Frames read per VMI scan" ~buckets:scan_buckets
             "vmi_scan_frames")
          (float_of_int frames)

  let scan_now t tr st =
    List.iter
      (fun d ->
        let r = d.Detector.scan st in
        let n = List.length r.Detector.findings in
        (* capture the sequence number and virtual timestamp this scan's
           own record will get: they sit after every machine event the
           detector could have reacted to, so [fire - inject] is a true
           latency in both denominations *)
        let s = Trace.seq tr in
        let vts = Trace.vts tr in
        if Trace.recording tr then
          Trace.emit tr
            (Trace.Vmi_scan
               { detector = d.Detector.name; findings = n; frames = r.Detector.frames_read });
        Trace.note_vmi_scan tr ~findings:n ~frames:r.Detector.frames_read;
        t.scans_run <- t.scans_run + 1;
        t.frames_read <- t.frames_read + r.Detector.frames_read;
        (* scans are out-of-band observers: their cost accrues on the
           scheduler's own tally, never the machine's virtual clock *)
        t.scan_cost_ns <-
          Int64.add t.scan_cost_ns
            (Int64.mul
               (Int64.of_int r.Detector.frames_read)
               (Vclock.cost (Vclock.model (Trace.vclock tr)) Vclock.Vmi_scan_frame));
        if n > 0 then begin
          if not (List.mem_assoc d.Detector.name t.first_fire) then begin
            t.first_fire <- t.first_fire @ [ (d.Detector.name, s) ];
            t.first_fire_vts <- t.first_fire_vts @ [ (d.Detector.name, vts) ]
          end;
          let prev =
            Option.value ~default:[] (List.assoc_opt d.Detector.name t.found)
          in
          let fresh = List.filter (fun f -> not (List.mem f prev)) r.Detector.findings in
          if fresh <> [] then
            t.found <-
              List.remove_assoc d.Detector.name t.found @ [ (d.Detector.name, prev @ fresh) ]
        end;
        publish t d.Detector.name ~findings:n ~frames:r.Detector.frames_read)
      t.detectors

  let step t tr st =
    (match t.every_ns with
    | Some ns -> (
        (* rate-based: scan when the machine's virtual clock has crossed
           the deadline; the first step always scans and arms it. Purely
           a function of the deterministic clock, so sharded and pooled
           runs fire at identical points. *)
        let now = Trace.vts tr in
        match t.deadline with
        | None ->
            scan_now t tr st;
            t.deadline <- Some (Int64.add now ns)
        | Some d when Int64.compare now d >= 0 ->
            scan_now t tr st;
            t.deadline <- Some (Int64.add now ns)
        | Some _ -> ())
    | None -> if t.steps mod t.period = 0 then scan_now t tr st);
    t.steps <- t.steps + 1

  let scans_run t = t.scans_run
  let frames_read t = t.frames_read
  let scan_cost_ns t = t.scan_cost_ns
  let first_fire t = t.first_fire
  let first_fire_vts t = t.first_fire_vts
  let findings t = t.found
end
