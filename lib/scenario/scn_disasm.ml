(* Bytecode → canonical surface text. The output reparses, and because
   the compiler interns strings in the same order the disassembler
   prints them, [compile (parse (disasm p))] reproduces [p] exactly —
   the corpus roundtrip test holds the pipeline to that. Jump targets
   come back as synthesized [L<pc>] labels. *)

open Scn_bytecode

let esc s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quoted s = Printf.sprintf "\"%s\"" (esc s)

(* Small non-negative values read as decimal; addresses and packed
   values as hex. Negative int64s render as their unsigned hex form,
   which [Int64.of_string] wraps back exactly. *)
let imm_to_string v =
  if v >= 0L && v < 4096L then Int64.to_string v else Printf.sprintf "0x%Lx" v

let reg r = Printf.sprintf "r%d" r

let action_name a =
  match Scn_ast.rev_assoc a Scn_ast.actions with Some n -> n | None -> "write-linear"

let pte_flag_names imm =
  List.filteri
    (fun i _ -> Int64.logand (Int64.shift_right_logical imm i) 1L = 1L)
    Scn_ast.pte_flags
  |> List.map fst

let jump_targets instrs =
  Array.fold_left
    (fun acc i ->
      if i.op = op_jmp || i.op = op_jerr || i.op = op_jneg then Int64.to_int i.imm :: acc
      else acc)
    [] instrs

let instr_to_string p i =
  let s = str p i.sid in
  let args n = [ i.a; i.b; i.c ] |> List.filteri (fun k _ -> k < n) |> List.map reg in
  let call kw =
    String.concat " " ((kw :: s :: args i.n) |> List.filter (fun x -> x <> ""))
  in
  if i.op = op_halt then "halt"
  else if i.op = op_loadi then Printf.sprintf "%s = %s" (reg i.a) (imm_to_string i.imm)
  else if i.op = op_add then
    Printf.sprintf "%s = add %s %s" (reg i.a) (reg i.b) (imm_to_string i.imm)
  else if i.op = op_env then
    if i.imm = 0L then Printf.sprintf "%s = %s" (reg i.a) s
    else Printf.sprintf "%s = %s %s" (reg i.a) s (imm_to_string i.imm)
  else if i.op = op_pte then
    Printf.sprintf "%s = pte %s %s" (reg i.a) (reg i.b)
      (String.concat " " (pte_flag_names i.imm))
  else if i.op = op_emaddr then
    Printf.sprintf "%s = entry-maddr %s %s" (reg i.a) (reg i.b) (reg i.c)
  else if i.op = op_elin then
    Printf.sprintf "%s = entry-linear %s %s" (reg i.a) (reg i.b) (reg i.c)
  else if i.op = op_log then Printf.sprintf "log %s" (quoted s)
  else if i.op = op_logf1 then Printf.sprintf "logf %s %s" (quoted s) (reg i.a)
  else if i.op = op_logf2 then Printf.sprintf "logf %s %s %s" (quoted s) (reg i.a) (reg i.b)
  else if i.op = op_logerr then Printf.sprintf "log-errno %s" (quoted s)
  else if i.op = op_inject then
    Printf.sprintf "inject %s %s %s"
      (action_name
         (match Access.of_code i.imm with
         | Some a -> a
         | None -> Access.Arbitrary_write_linear))
      (reg i.a) (reg i.b)
  else if i.op = op_injectr then
    Printf.sprintf "%s = inject-read %s %s" (reg i.a)
      (action_name
         (match Access.of_code i.imm with
         | Some a -> a
         | None -> Access.Arbitrary_read_linear))
      (reg i.b)
  else if i.op = op_hostw then Printf.sprintf "host-w64 %s %s" (reg i.a) (reg i.b)
  else if i.op = op_hc then
    String.concat " "
      ([ reg i.a; "="; "hypercall"; s ] @ ([ i.b; i.c ] |> List.filteri (fun k _ -> k < i.n) |> List.map reg))
  else if i.op = op_guest then call "guest"
  else if i.op = op_payload then call "payload"
  else if i.op = op_state then call "state"
  else if i.op = op_tick then "tick-all"
  else if i.op = op_jmp then Printf.sprintf "goto L%Ld" i.imm
  else if i.op = op_jerr then Printf.sprintf "if-err L%Ld" i.imm
  else if i.op = op_jneg then Printf.sprintf "if-neg %s L%Ld" (reg i.a) i.imm
  else if i.op = op_rcerr then "rc-errno"
  else if i.op = op_rcres then "rc-result"
  else if i.op = op_rcreg then Printf.sprintf "rc-reg %s" (reg i.a)
  else if i.op = op_rcnone then "rc-none"
  else Printf.sprintf "# unknown opcode %d" i.op

let section_lines p instrs =
  let targets = jump_targets instrs in
  let lines = ref [] in
  let add l = lines := l :: !lines in
  Array.iteri
    (fun pc i ->
      if List.mem pc targets then add (Printf.sprintf "    label L%d" pc);
      add ("    " ^ instr_to_string p i))
    instrs;
  if List.mem (Array.length instrs) targets then
    add (Printf.sprintf "    label L%d" (Array.length instrs));
  List.rev !lines

let disasm (p : program) : string =
  let h = p.header in
  let m = model p in
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "scenario %s {" (quoted (name p));
  line "  xsa %s" (quoted (xsa p));
  line "  backend %s" (backend_tag_to_string h.h_backend);
  line "  description %s" (quoted (description p));
  line "  model {";
  line "    name %s" (quoted m.m_name);
  line "    source %s" (Option.get (Scn_ast.rev_assoc m.m_source Scn_ast.sources));
  (match m.m_interface with
  | Intrusion_model.Hypercall_interface hc -> line "    interface hypercall %s" (quoted hc)
  | Intrusion_model.Device_emulation d -> line "    interface device-emulation %s" (quoted d)
  | Intrusion_model.Instruction_interception -> line "    interface instruction-interception");
  line "    target %s" (Option.get (Scn_ast.rev_assoc m.m_target Scn_ast.targets));
  line "    functionality %s" (quoted (Abusive_functionality.to_string m.m_functionality));
  if m.m_represents <> [] then
    line "    represents %s" (String.concat " " (List.map quoted m.m_represents));
  line "    summary %s" (quoted m.m_summary);
  line "  }";
  (match expected_violations p with
  | [] -> ()
  | cs -> line "  expect violation %s" (String.concat " " cs));
  line "  exploit {";
  List.iter (fun l -> line "%s" l) (section_lines p p.exploit);
  line "  }";
  line "  inject {";
  List.iter (fun l -> line "%s" l) (section_lines p p.inject);
  line "  }";
  line "}";
  Buffer.contents b
