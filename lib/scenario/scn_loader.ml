(* Loading scenarios from disk: [.scn] surface text compiles, [.scnc]
   bytecode decodes — told apart by the versioned magic, not the file
   name, so either form travels under either extension. *)

let is_bytecode data =
  String.length data >= String.length Scn_bytecode.magic
  && String.sub data 0 (String.length Scn_bytecode.magic) = Scn_bytecode.magic

let load_string ?(name = "<string>") data : (Scn_bytecode.program, string) result =
  if is_bytecode data then
    match Scn_bytecode.decode data with
    | Ok p -> Ok p
    | Error msg -> Error (Printf.sprintf "%s: %s" name msg)
  else
    match Scn_compile.compile_string data with
    | Ok p -> Ok p
    | Error e -> Error (Printf.sprintf "%s: %s" name (Scn_ast.error_to_string e))

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | data -> Ok data
  | exception Sys_error msg -> Error msg

let load_file path : (Scn_bytecode.program, string) result =
  match read_file path with
  | Error msg -> Error msg
  | Ok data -> load_string ~name:path data

let save_bytecode path p =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Scn_bytecode.encode p))
