(* What a backend contributes to scenario execution, beyond the
   {!Substrate.S} it already implements: name resolution. Environment
   symbols are runtime address discovery (the testbed's own page-table
   frames, the IDT base, a VMCS address); hypercalls and guest ops are
   dispatched by name; payloads are the abusive-functionality library —
   the same OCaml routines the hand-written use cases call, exposed to
   bytecode so a ported scenario's transcript stays byte-identical to
   its legacy module.

   The [caps] table must agree with the dispatch functions: everything
   {!Scn_check.check} admits, the functions must resolve. Dispatch of a
   name the checker would have rejected raises {!Scn_vm.Trap}. *)

exception Trap of string
(** Raised by dispatch functions (and the VM) on a call the load-time
    checker would have rejected — running unchecked bytecode is the
    only way to see it. *)

let trap fmt = Printf.ksprintf (fun msg -> raise (Trap msg)) fmt

module type OPS = sig
  module B : Substrate.S

  val caps : Scn_check.caps

  val env : B.t -> string -> int64 -> (int64, string) result
  (** Resolve an environment symbol with its numeric argument. *)

  val hypercall : B.t -> string -> int64 array -> (int64, string) result
  (** Issue a named hypercall from the attacker guest; returns the
      guest-visible return code (negative errno on refusal). *)

  val guest_op : B.t -> string -> int64 array -> (unit, string) result
  (** A named guest workload action, effects only. *)

  val payload :
    B.t -> say:(string -> unit) -> string -> int64 array -> (unit, string) result
  (** Run a named abusive-functionality routine; transcript lines go
      through [say] in order. *)

  val state : B.t -> string -> int64 array -> (B.state_spec, string) result
  (** Build a backend erroneous-state spec from a name and arguments. *)

  val host_write : B.t -> addr:int64 -> int64 -> (unit, Errno.t) result
  (** The compromised-host write primitive ([host-w64]); only reachable
      when [caps.cap_host_write] admits it. *)
end
