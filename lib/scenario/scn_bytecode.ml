(* Compact flat bytecode for compiled scenarios.

   One instruction is 16 bytes: opcode, three register operands, an
   arity, a string-pool id, and a 64-bit immediate. All names (log
   strings, env symbols, payload/hypercall/guest/state names) live in
   a shared string pool so the instruction stream stays fixed-width and
   a fuzzer can mutate it without re-laying-out the program. The
   on-disk form ([.scnc]) is the pool plus the header plus the two
   sections behind a versioned magic; the decoder is fully
   bounds-checked and never raises on hostile bytes. *)

type instr = {
  op : int;  (* u8 *)
  a : int;  (* u8, register or small operand *)
  b : int;  (* u8 *)
  c : int;  (* u8 *)
  n : int;  (* u8, call arity / operand count *)
  sid : int;  (* u16 string-pool index *)
  imm : int64;
}

let nop = { op = 0; a = 0; b = 0; c = 0; n = 0; sid = 0; imm = 0L }

(* Opcode assignments — stable; the disassembler and VM switch on them. *)
let op_halt = 0
let op_loadi = 1 (* a <- imm *)
let op_add = 2 (* a <- b + imm *)
let op_env = 3 (* a <- env str[sid] (imm) *)
let op_pte = 4 (* a <- pte(mfn = b, flags = imm bitmask over flag table) *)
let op_emaddr = 5 (* a <- entry_maddr(table = b, index = c) *)
let op_elin = 6 (* a <- entry_linear(table = b, index = c) *)
let op_log = 7 (* log str[sid] *)
let op_logf1 = 8 (* log fmt[sid] % a *)
let op_logf2 = 9 (* log fmt[sid] % (a, b) *)
let op_logerr = 10 (* log fmt[sid] % errno string *)
let op_inject = 11 (* port write: addr = a, value = b, action = imm *)
let op_injectr = 12 (* a <- port read: addr = b, action = imm *)
let op_hostw = 13 (* host 64-bit write: addr = a, value = b *)
let op_hc = 14 (* a <- hypercall str[sid] (args a.. per n from b, c) *)
let op_guest = 15 (* guest op str[sid] (args per n from a, b, c) *)
let op_payload = 16 (* payload str[sid] (args per n from a, b, c) *)
let op_state = 17 (* declare state str[sid] (args per n from a, b, c) *)
let op_tick = 18
let op_jmp = 19 (* pc <- imm *)
let op_jerr = 20 (* pc <- imm when the error flag is set *)
let op_jneg = 21 (* pc <- imm when reg a < 0 *)
let op_rcerr = 22 (* rc <- Some (rc of last errno) *)
let op_rcres = 23 (* rc <- Some (0 | rc of last errno) *)
let op_rcreg = 24 (* rc <- Some (reg a) *)
let op_rcnone = 25
let num_opcodes = 26

let op_name op =
  [|
    "halt"; "loadi"; "add"; "env"; "pte"; "entry-maddr"; "entry-linear"; "log"; "logf1";
    "logf2"; "log-errno"; "inject"; "inject-read"; "host-w64"; "hypercall"; "guest";
    "payload"; "state"; "tick-all"; "jmp"; "jmp-err"; "jmp-neg"; "rc-errno"; "rc-result";
    "rc-reg"; "rc-none";
  |].(op)

type backend_tag = Any | Xen_only | Kvm_only

let backend_tag_to_string = function Any -> "any" | Xen_only -> "xen" | Kvm_only -> "kvm"

let backend_tag_of_string = function
  | "any" -> Some Any
  | "xen" -> Some Xen_only
  | "kvm" -> Some Kvm_only
  | _ -> None

(* The compiled header mirrors {!Scn_ast.model} with every name interned. *)
type header = {
  h_name : int;
  h_xsa : int;
  h_description : int;
  h_backend : backend_tag;
  h_model_name : int;
  h_source : int;  (* index into Scn_ast.sources *)
  h_iface_kind : int;  (* 0 hypercall, 1 device-emulation, 2 instruction-interception *)
  h_iface_str : int;  (* sid; interns "" for instruction-interception *)
  h_target : int;  (* index into Scn_ast.targets *)
  h_functionality : int;  (* index into Abusive_functionality.all *)
  h_represents : int list;
  h_summary : int;
  h_expect : int list;  (* indices into Scn_ast.violation_classes *)
}

type program = { strings : string array; header : header; exploit : instr array; inject : instr array }

let magic = "IISCNC1\n"

let str p sid = if sid >= 0 && sid < Array.length p.strings then p.strings.(sid) else ""

(* --- log format mini-language ------------------------------------------- *)

(* The directives the legacy use cases actually print with. [%s] is
   reserved for [log-errno] (exactly one, no other conversions). *)
let fmt_directives = [ "%016Lx"; "%Lx"; "%d"; "%x"; "%%" ]

let fmt_arity fmt =
  let n = String.length fmt in
  let rec go i arity =
    if i >= n then Ok arity
    else if fmt.[i] <> '%' then go (i + 1) arity
    else
      match
        List.find_opt
          (fun d -> i + String.length d <= n && String.sub fmt i (String.length d) = d)
          fmt_directives
      with
      | Some "%%" -> go (i + 2) arity
      | Some d -> go (i + String.length d) (arity + 1)
      | None -> Error (Printf.sprintf "unsupported format directive at offset %d of %S" i fmt)
  in
  go 0 0

let errno_fmt_ok fmt =
  (* exactly one %s and nothing else *)
  let n = String.length fmt in
  let rec go i seen =
    if i >= n then if seen then Ok () else Error (Printf.sprintf "log-errno format %S needs a %%s" fmt)
    else if fmt.[i] <> '%' then go (i + 1) seen
    else if i + 1 < n && fmt.[i + 1] = 's' && not seen then go (i + 2) true
    else if i + 1 < n && fmt.[i + 1] = '%' then go (i + 2) seen
    else Error (Printf.sprintf "log-errno format %S may only use a single %%s" fmt)
  in
  go 0 false

let render fmt args =
  let buf = Buffer.create (String.length fmt + 16) in
  let n = String.length fmt in
  let rec go i k =
    if i >= n then ()
    else if fmt.[i] <> '%' then (
      Buffer.add_char buf fmt.[i];
      go (i + 1) k)
    else
      match
        List.find_opt
          (fun d -> i + String.length d <= n && String.sub fmt i (String.length d) = d)
          fmt_directives
      with
      | Some "%%" ->
          Buffer.add_char buf '%';
          go (i + 2) k
      | Some d ->
          let v = if k < Array.length args then args.(k) else 0L in
          (match d with
          | "%016Lx" -> Buffer.add_string buf (Printf.sprintf "%016Lx" v)
          | "%Lx" | "%x" -> Buffer.add_string buf (Printf.sprintf "%Lx" v)
          | _ -> Buffer.add_string buf (Int64.to_string v));
          go (i + String.length d) (k + 1)
      | None ->
          Buffer.add_char buf '%';
          go (i + 1) k
  in
  go 0 0;
  Buffer.contents buf

let render_errno fmt s =
  let buf = Buffer.create (String.length fmt + String.length s) in
  let n = String.length fmt in
  let rec go i =
    if i >= n then ()
    else if fmt.[i] = '%' && i + 1 < n && fmt.[i + 1] = 's' then (
      Buffer.add_string buf s;
      go (i + 2))
    else if fmt.[i] = '%' && i + 1 < n && fmt.[i + 1] = '%' then (
      Buffer.add_char buf '%';
      go (i + 2))
    else (
      Buffer.add_char buf fmt.[i];
      go (i + 1))
  in
  go 0;
  Buffer.contents buf

(* --- binary codec -------------------------------------------------------- *)

let encode_instr buf i =
  Buffer.add_uint8 buf (i.op land 0xff);
  Buffer.add_uint8 buf (i.a land 0xff);
  Buffer.add_uint8 buf (i.b land 0xff);
  Buffer.add_uint8 buf (i.c land 0xff);
  Buffer.add_uint8 buf (i.n land 0xff);
  Buffer.add_uint8 buf 0;
  Buffer.add_uint16_le buf (i.sid land 0xffff);
  Buffer.add_int64_le buf i.imm

let encode p =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_int32_le buf (Int32.of_int (Array.length p.strings));
  Array.iter
    (fun s ->
      Buffer.add_int32_le buf (Int32.of_int (String.length s));
      Buffer.add_string buf s)
    p.strings;
  let h = p.header in
  let u16 v = Buffer.add_uint16_le buf (v land 0xffff) in
  let u8 v = Buffer.add_uint8 buf (v land 0xff) in
  u16 h.h_name;
  u16 h.h_xsa;
  u16 h.h_description;
  u8 (match h.h_backend with Any -> 0 | Xen_only -> 1 | Kvm_only -> 2);
  u16 h.h_model_name;
  u8 h.h_source;
  u8 h.h_iface_kind;
  u16 h.h_iface_str;
  u8 h.h_target;
  u8 h.h_functionality;
  u16 (List.length h.h_represents);
  List.iter u16 h.h_represents;
  u16 h.h_summary;
  u8 (List.length h.h_expect);
  List.iter u8 h.h_expect;
  let section a =
    Buffer.add_int32_le buf (Int32.of_int (Array.length a));
    Array.iter (encode_instr buf) a
  in
  section p.exploit;
  section p.inject;
  Buffer.contents buf

(* Bounds-checked little-endian reader over an immutable string. *)
type rd = { data : string; mutable pos : int }

let need r n what =
  if r.pos + n <= String.length r.data then Ok ()
  else Error (Printf.sprintf "truncated bytecode: %s at offset %d" what r.pos)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let ru8 r what =
  let* () = need r 1 what in
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  Ok v

let ru16 r what =
  let* () = need r 2 what in
  let v = Char.code r.data.[r.pos] lor (Char.code r.data.[r.pos + 1] lsl 8) in
  r.pos <- r.pos + 2;
  Ok v

let ru32 r what =
  let* () = need r 4 what in
  let v =
    Char.code r.data.[r.pos]
    lor (Char.code r.data.[r.pos + 1] lsl 8)
    lor (Char.code r.data.[r.pos + 2] lsl 16)
    lor (Char.code r.data.[r.pos + 3] lsl 24)
  in
  r.pos <- r.pos + 4;
  Ok v

let ri64 r what =
  let* () = need r 8 what in
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code r.data.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  Ok !v

let rstr r len what =
  if len < 0 || len > String.length r.data - r.pos then
    Error (Printf.sprintf "truncated bytecode: %s at offset %d" what r.pos)
  else (
    let s = String.sub r.data r.pos len in
    r.pos <- r.pos + len;
    Ok s)

let decode_instr r =
  let* op = ru8 r "instruction opcode" in
  let* a = ru8 r "instruction operand a" in
  let* b = ru8 r "instruction operand b" in
  let* c = ru8 r "instruction operand c" in
  let* n = ru8 r "instruction arity" in
  let* _pad = ru8 r "instruction padding" in
  let* sid = ru16 r "instruction string id" in
  let* imm = ri64 r "instruction immediate" in
  if op >= num_opcodes then Error (Printf.sprintf "unknown opcode %d" op)
  else Ok { op; a; b; c; n; sid; imm }

let decode data : (program, string) result =
  let r = { data; pos = 0 } in
  let* m = rstr r (String.length magic) "magic" in
  if m <> magic then Error (Printf.sprintf "bad magic (expected %S)" magic)
  else
    let* nstr = ru32 r "string count" in
    if nstr > 0xffff then Error (Printf.sprintf "string pool too large (%d)" nstr)
    else
      let strings = Array.make nstr "" in
      let rec load i =
        if i >= nstr then Ok ()
        else
          let* len = ru32 r "string length" in
          let* s = rstr r len "string bytes" in
          strings.(i) <- s;
          load (i + 1)
      in
      let* () = load 0 in
      let sid what v = if v < nstr then Ok v else Error (Printf.sprintf "%s string id %d out of range" what v) in
      let* h_name = ru16 r "name sid" in
      let* h_name = sid "name" h_name in
      let* h_xsa = ru16 r "xsa sid" in
      let* h_xsa = sid "xsa" h_xsa in
      let* h_description = ru16 r "description sid" in
      let* h_description = sid "description" h_description in
      let* bk = ru8 r "backend tag" in
      let* h_backend =
        match bk with
        | 0 -> Ok Any
        | 1 -> Ok Xen_only
        | 2 -> Ok Kvm_only
        | n -> Error (Printf.sprintf "unknown backend tag %d" n)
      in
      let* h_model_name = ru16 r "model name sid" in
      let* h_model_name = sid "model name" h_model_name in
      let* h_source = ru8 r "source tag" in
      let* h_source =
        if h_source < List.length Scn_ast.sources then Ok h_source
        else Error (Printf.sprintf "unknown trigger-source tag %d" h_source)
      in
      let* h_iface_kind = ru8 r "interface tag" in
      let* h_iface_kind =
        if h_iface_kind < 3 then Ok h_iface_kind
        else Error (Printf.sprintf "unknown interface tag %d" h_iface_kind)
      in
      let* h_iface_str = ru16 r "interface string sid" in
      let* h_iface_str = sid "interface" h_iface_str in
      let* h_target = ru8 r "target tag" in
      let* h_target =
        if h_target < List.length Scn_ast.targets then Ok h_target
        else Error (Printf.sprintf "unknown target tag %d" h_target)
      in
      let* h_functionality = ru8 r "functionality tag" in
      let* h_functionality =
        if h_functionality < List.length Abusive_functionality.all then Ok h_functionality
        else Error (Printf.sprintf "unknown functionality tag %d" h_functionality)
      in
      let* nrep = ru16 r "represents count" in
      let rec reps i acc =
        if i >= nrep then Ok (List.rev acc)
        else
          let* v = ru16 r "represents sid" in
          let* v = sid "represents" v in
          reps (i + 1) (v :: acc)
      in
      let* h_represents = reps 0 [] in
      let* h_summary = ru16 r "summary sid" in
      let* h_summary = sid "summary" h_summary in
      let* nexp = ru8 r "expect count" in
      let rec exps i acc =
        if i >= nexp then Ok (List.rev acc)
        else
          let* v = ru8 r "expect tag" in
          if v >= List.length Scn_ast.violation_classes then
            Error (Printf.sprintf "unknown violation-class tag %d" v)
          else exps (i + 1) (v :: acc)
      in
      let* h_expect = exps 0 [] in
      let section what =
        let* count = ru32 r (what ^ " instruction count") in
        if count > 0x10000 then Error (Printf.sprintf "%s section too large (%d)" what count)
        else
          let rec instrs i acc =
            if i >= count then Ok (Array.of_list (List.rev acc))
            else
              let* ins = decode_instr r in
              let* _ = sid "instruction" ins.sid in
              instrs (i + 1) (ins :: acc)
          in
          instrs 0 []
      in
      let* exploit = section "exploit" in
      let* inject = section "inject" in
      if r.pos <> String.length data then
        Error (Printf.sprintf "trailing garbage after bytecode at offset %d" r.pos)
      else
        Ok
          {
            strings;
            header =
              {
                h_name;
                h_xsa;
                h_description;
                h_backend;
                h_model_name;
                h_source;
                h_iface_kind;
                h_iface_str;
                h_target;
                h_functionality;
                h_represents;
                h_summary;
                h_expect;
              };
            exploit;
            inject;
          }

(* --- header accessors ---------------------------------------------------- *)

let name p = str p p.header.h_name
let xsa p = str p p.header.h_xsa
let description p = str p p.header.h_description
let backend p = p.header.h_backend

let model p : Scn_ast.model =
  let h = p.header in
  {
    m_name = str p h.h_model_name;
    m_source = snd (List.nth Scn_ast.sources h.h_source);
    m_interface =
      (match h.h_iface_kind with
      | 0 -> Intrusion_model.Hypercall_interface (str p h.h_iface_str)
      | 1 -> Intrusion_model.Device_emulation (str p h.h_iface_str)
      | _ -> Intrusion_model.Instruction_interception);
    m_target = snd (List.nth Scn_ast.targets h.h_target);
    m_functionality = List.nth Abusive_functionality.all h.h_functionality;
    m_represents = List.map (str p) h.h_represents;
    m_summary = str p h.h_summary;
  }

let intrusion_model p = Scn_ast.intrusion_model (model p)
let expected_violations p = List.map (List.nth Scn_ast.violation_classes) p.header.h_expect

(* Pte flag bitmask: bit i of [imm] = membership of the i-th entry of
   {!Scn_ast.pte_flags} — an index mask, not the architectural bits, so
   the disassembler recovers the surface flag names exactly. *)
let pte_mask flags =
  List.fold_left
    (fun m f ->
      let rec idx i = function
        | [] -> m
        | (_, g) :: tl -> if g = f then Int64.logor m (Int64.shift_left 1L i) else idx (i + 1) tl
      in
      idx 0 Scn_ast.pte_flags)
    0L flags

let pte_unmask imm =
  List.filteri (fun i _ -> Int64.logand (Int64.shift_right_logical imm i) 1L = 1L) Scn_ast.pte_flags
  |> List.map snd
