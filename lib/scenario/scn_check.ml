(* Load-time checking of compiled programs against a backend capability
   table. Programs arrive from two places — the compiler and raw
   [.scnc] bytes off disk — so the checks run on bytecode, not the AST:
   register and jump bounds, string-pool references, format arities,
   and the three backend-dependent judgments the paper's gating calls
   for: does this backend know the environment symbol / hypercall /
   payload / state being named, is the port action admitted, and may a
   scenario marked for one backend run on another at all. *)

open Scn_bytecode

(* What one backend admits. Env symbols carry inclusive bounds on their
   numeric argument; call tables carry exact arities. Pure data, so the
   CLI can print it and the tests can probe it. *)
type caps = {
  cap_backend : backend_tag;  (* Xen_only or Kvm_only, never Any *)
  cap_env : (string * (int64 * int64)) list;
  cap_hypercalls : (string * int) list;
  cap_guest_ops : (string * int) list;
  cap_payloads : (string * int) list;
  cap_states : (string * int) list;
  cap_host_write : bool;
  cap_actions : Access.action list;
}

let compatible caps tag = tag = Any || tag = caps.cap_backend

let err section pc instr fmt =
  Printf.ksprintf
    (fun msg ->
      Error (Printf.sprintf "%s section, pc %d (%s): %s" section pc (op_name instr.op) msg))
    fmt

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let check_instr caps p section len pc i =
  let reg what r =
    if r >= 0 && r < Scn_ast.num_regs then Ok ()
    else err section pc i "%s register %d out of range (r0..r15)" what r
  in
  let jump () =
    if i.imm >= 0L && i.imm <= Int64.of_int len then Ok ()
    else err section pc i "jump target %Ld outside the section (0..%d)" i.imm len
  in
  let action () =
    match Access.of_code i.imm with
    | Some a when List.mem a caps.cap_actions -> Ok a
    | Some a ->
        err section pc i "action %s is gated off on backend %s" (Access.to_string a)
          (backend_tag_to_string caps.cap_backend)
    | None -> err section pc i "invalid action code %Ld" i.imm
  in
  let named table what =
    let name = str p i.sid in
    match List.assoc_opt name table with
    | Some arity ->
        if i.n = arity then Ok ()
        else err section pc i "%s %S takes %d arguments, got %d" what name arity i.n
    | None ->
        err section pc i "unknown %s %S on backend %s (known: %s)" what name
          (backend_tag_to_string caps.cap_backend)
          (match List.map fst table with [] -> "none" | l -> String.concat ", " l)
  in
  let call_regs () =
    let* () = reg "argument" i.a in
    let* () = reg "argument" i.b in
    reg "argument" i.c
  in
  if i.op = op_halt || i.op = op_tick || i.op = op_rcerr || i.op = op_rcres || i.op = op_rcnone
  then Ok ()
  else if i.op = op_loadi then reg "destination" i.a
  else if i.op = op_add then
    let* () = reg "destination" i.a in
    reg "source" i.b
  else if i.op = op_env then
    let* () = reg "destination" i.a in
    let name = str p i.sid in
    (match List.assoc_opt name caps.cap_env with
    | Some (lo, hi) ->
        if i.imm >= lo && i.imm <= hi then Ok ()
        else err section pc i "argument %Ld to %S outside [%Ld, %Ld]" i.imm name lo hi
    | None ->
        err section pc i "unknown environment symbol %S on backend %s" name
          (backend_tag_to_string caps.cap_backend))
  else if i.op = op_pte then
    let* () = reg "destination" i.a in
    let* () = reg "frame" i.b in
    let max_mask = Int64.shift_left 1L (List.length Scn_ast.pte_flags) in
    if i.imm > 0L && i.imm < max_mask then Ok ()
    else err section pc i "pte flag mask %Ld invalid" i.imm
  else if i.op = op_emaddr || i.op = op_elin then
    let* () = reg "destination" i.a in
    let* () = reg "table" i.b in
    reg "index" i.c
  else if i.op = op_log then Ok ()
  else if i.op = op_logf1 || i.op = op_logf2 then
    let want = if i.op = op_logf1 then 1 else 2 in
    let* () = reg "argument" i.a in
    let* () = if want = 2 then reg "argument" i.b else Ok () in
    (match fmt_arity (str p i.sid) with
    | Ok a when a = want -> Ok ()
    | Ok a -> err section pc i "format %S has %d directives, opcode supplies %d" (str p i.sid) a want
    | Error msg -> err section pc i "%s" msg)
  else if i.op = op_logerr then (
    match errno_fmt_ok (str p i.sid) with
    | Ok () -> Ok ()
    | Error msg -> err section pc i "%s" msg)
  else if i.op = op_inject then
    let* () = reg "address" i.a in
    let* () = reg "value" i.b in
    let* _ = action () in
    Ok ()
  else if i.op = op_injectr then
    let* () = reg "destination" i.a in
    let* () = reg "address" i.b in
    let* _ = action () in
    Ok ()
  else if i.op = op_hostw then
    if not caps.cap_host_write then
      err section pc i "host writes are not exposed on backend %s"
        (backend_tag_to_string caps.cap_backend)
    else
      let* () = reg "address" i.a in
      reg "value" i.b
  else if i.op = op_hc then
    let* () = reg "destination" i.a in
    let* () = reg "argument" i.b in
    let* () = reg "argument" i.c in
    if i.n > 2 then err section pc i "hypercalls take at most 2 register arguments"
    else named caps.cap_hypercalls "hypercall"
  else if i.op = op_guest then
    let* () = call_regs () in
    if i.n > 3 then err section pc i "guest ops take at most 3 register arguments"
    else named caps.cap_guest_ops "guest op"
  else if i.op = op_payload then
    let* () = call_regs () in
    if i.n > 3 then err section pc i "payloads take at most 3 register arguments"
    else named caps.cap_payloads "payload"
  else if i.op = op_state then
    let* () = call_regs () in
    if i.n > 3 then err section pc i "erroneous states take at most 3 register arguments"
    else named caps.cap_states "erroneous state"
  else if i.op = op_jmp || i.op = op_jerr then jump ()
  else if i.op = op_jneg then
    let* () = reg "tested" i.a in
    jump ()
  else if i.op = op_rcreg then reg "return-code" i.a
  else err section pc i "unknown opcode %d" i.op

let check_section caps p section instrs =
  let len = Array.length instrs in
  let rec go pc =
    if pc >= len then Ok ()
    else
      let* () = check_instr caps p section len pc instrs.(pc) in
      go (pc + 1)
  in
  go 0

(* Full load-time check of one program against one backend. *)
let check caps (p : program) : (unit, string) result =
  if not (compatible caps p.header.h_backend) then
    Error
      (Printf.sprintf "scenario %S is for backend %s, not %s" (name p)
         (backend_tag_to_string p.header.h_backend)
         (backend_tag_to_string caps.cap_backend))
  else
    let* () = check_section caps p "exploit" p.exploit in
    check_section caps p "inject" p.inject
