(* Recursive-descent parser over the eager token array. Total like the
   lexer: malformed input becomes a positioned [Error], never an
   exception.

   One genuine ambiguity in the surface syntax: calls take a variadic
   register list ([payload xsa148-continue r1 r2 r3]) and the next
   statement may itself start with a register ([r4 = ...]). A register
   token is treated as an argument only when the token after it is not
   [=] — one token of lookahead resolves every program the grammar can
   express. *)

open Scn_lexer

type st = { toks : ttok array; mutable idx : int }

let cur s = s.toks.(min s.idx (Array.length s.toks - 1))
let peek2 s = s.toks.(min (s.idx + 1) (Array.length s.toks - 1))
let bump s = s.idx <- s.idx + 1

let fail_at at fmt = Printf.ksprintf (fun msg -> Error { Scn_ast.msg; at }) fmt

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let expect s tok what =
  let t = cur s in
  if t.tok = tok then (
    bump s;
    Ok t.tat)
  else fail_at t.tat "expected %s, found %s" what (token_to_string t.tok)

let ident s what =
  let t = cur s in
  match t.tok with
  | IDENT name ->
      bump s;
      Ok (name, t.tat)
  | other -> fail_at t.tat "expected %s, found %s" what (token_to_string other)

let string_lit s what =
  let t = cur s in
  match t.tok with
  | STRING v ->
      bump s;
      Ok (v, t.tat)
  | other -> fail_at t.tat "expected %s (a quoted string), found %s" what (token_to_string other)

let int_lit s what =
  let t = cur s in
  match t.tok with
  | INT v ->
      bump s;
      Ok (v, t.tat)
  | other -> fail_at t.tat "expected %s (an integer), found %s" what (token_to_string other)

let reg_of_ident name =
  if name = "rc" then Some 15
  else if String.length name >= 2 && name.[0] = 'r' then
    match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
    | Some n when n >= 0 && n < Scn_ast.num_regs -> Some n
    | _ -> None
  else None

let reg s what =
  let t = cur s in
  match t.tok with
  | IDENT name -> (
      match reg_of_ident name with
      | Some r ->
          bump s;
          Ok r
      | None -> fail_at t.tat "expected %s (a register r0..r15 or rc), found %s" what name)
  | other -> fail_at t.tat "expected %s (a register), found %s" what (token_to_string other)

(* Variadic trailing register list; stops before an [rN =] statement. *)
let rec reg_args s acc =
  match (cur s).tok with
  | IDENT name when reg_of_ident name <> None && (peek2 s).tok <> EQ -> (
      match reg_of_ident name with
      | Some r ->
          bump s;
          reg_args s (r :: acc)
      | None -> Ok (List.rev acc))
  | _ -> Ok (List.rev acc)

let action s =
  let* name, at = ident s "an access action" in
  match List.assoc_opt name Scn_ast.actions with
  | Some a -> Ok a
  | None ->
      fail_at at "unknown access action %S (one of %s)" name
        (String.concat ", " (List.map fst Scn_ast.actions))

let pte_flag_names = List.map fst Scn_ast.pte_flags

let rec pte_flags s acc =
  match (cur s).tok with
  | IDENT name when List.mem name pte_flag_names ->
      bump s;
      pte_flags s (List.assoc name Scn_ast.pte_flags :: acc)
  | _ -> List.rev acc

(* --- expressions (right of [rN =]) ------------------------------------- *)

let expr s : (Scn_ast.expr, Scn_ast.error) result =
  let t = cur s in
  match t.tok with
  | INT v ->
      bump s;
      Ok (Scn_ast.Lit v)
  | IDENT "add" ->
      bump s;
      let* r = reg s "the augend" in
      let* v, _ = int_lit s "the addend" in
      Ok (Scn_ast.Add (r, v))
  | IDENT "pte" ->
      bump s;
      let* r = reg s "the frame register" in
      let flags = pte_flags s [] in
      if flags = [] then fail_at t.tat "pte needs at least one flag (present, rw, user, ...)"
      else Ok (Scn_ast.Pte_of (r, flags))
  | IDENT "entry-maddr" ->
      bump s;
      let* rm = reg s "the table frame register" in
      let* ri = reg s "the index register" in
      Ok (Scn_ast.Entry_maddr (rm, ri))
  | IDENT "entry-linear" ->
      bump s;
      let* rm = reg s "the table frame register" in
      let* ri = reg s "the index register" in
      Ok (Scn_ast.Entry_linear (rm, ri))
  | IDENT "hypercall" ->
      bump s;
      let* name, _ = ident s "the hypercall name" in
      let* args = reg_args s [] in
      Ok (Scn_ast.Hypercall (name, args))
  | IDENT "inject-read" ->
      bump s;
      let* a = action s in
      let* r = reg s "the address register" in
      Ok (Scn_ast.Inject_read (a, r))
  | IDENT name when reg_of_ident name = None ->
      bump s;
      let arg = match (cur s).tok with
        | INT v ->
            bump s;
            v
        | _ -> 0L
      in
      Ok (Scn_ast.Env (name, arg))
  | other ->
      fail_at t.tat "expected an expression (literal, add, pte, entry-maddr, entry-linear, \
                     hypercall, inject-read, or an environment symbol), found %s"
        (token_to_string other)

(* --- statements --------------------------------------------------------- *)

let stmt s : (Scn_ast.stmt Scn_ast.loc, Scn_ast.error) result =
  let t = cur s in
  let ok v = Ok { Scn_ast.v; at = t.tat } in
  match t.tok with
  | IDENT name when reg_of_ident name <> None && (peek2 s).tok = EQ ->
      let r = Option.get (reg_of_ident name) in
      bump s;
      bump s (* = *);
      let* e = expr s in
      ok (Scn_ast.Set (r, e))
  | IDENT "log" ->
      bump s;
      let* msg, _ = string_lit s "the log message" in
      ok (Scn_ast.Log msg)
  | IDENT "logf" ->
      bump s;
      let* fmt, _ = string_lit s "the format string" in
      let* args = reg_args s [] in
      if args = [] then fail_at t.tat "logf needs at least one register argument"
      else ok (Scn_ast.Logf (fmt, args))
  | IDENT "log-errno" ->
      bump s;
      let* fmt, _ = string_lit s "the format string" in
      ok (Scn_ast.Log_errno fmt)
  | IDENT "inject" ->
      bump s;
      let* a = action s in
      let* addr = reg s "the address register" in
      let* value = reg s "the value register" in
      ok (Scn_ast.Inject { addr; value; action = a })
  | IDENT "host-w64" ->
      bump s;
      let* addr = reg s "the address register" in
      let* value = reg s "the value register" in
      ok (Scn_ast.Host_write { addr; value })
  | IDENT "guest" ->
      bump s;
      let* name, _ = ident s "the guest op name" in
      let* args = reg_args s [] in
      ok (Scn_ast.Guest (name, args))
  | IDENT "payload" ->
      bump s;
      let* name, _ = ident s "the payload name" in
      let* args = reg_args s [] in
      ok (Scn_ast.Payload (name, args))
  | IDENT "state" ->
      bump s;
      let* name, _ = ident s "the erroneous-state name" in
      let* args = reg_args s [] in
      ok (Scn_ast.State (name, args))
  | IDENT "tick-all" ->
      bump s;
      ok Scn_ast.Tick_all
  | IDENT "rc-errno" ->
      bump s;
      ok Scn_ast.Rc_errno
  | IDENT "rc-result" ->
      bump s;
      ok Scn_ast.Rc_result
  | IDENT "rc-none" ->
      bump s;
      ok Scn_ast.Rc_none
  | IDENT "rc-reg" ->
      bump s;
      let* r = reg s "the return-code register" in
      ok (Scn_ast.Rc_reg r)
  | IDENT "goto" ->
      bump s;
      let* l, _ = ident s "the jump label" in
      ok (Scn_ast.Goto l)
  | IDENT "if-err" ->
      bump s;
      let* l, _ = ident s "the jump label" in
      ok (Scn_ast.If_err l)
  | IDENT "if-neg" ->
      bump s;
      let* r = reg s "the tested register" in
      let* l, _ = ident s "the jump label" in
      ok (Scn_ast.If_neg (r, l))
  | IDENT "label" ->
      bump s;
      let* l, _ = ident s "the label name" in
      ok (Scn_ast.Label l)
  | IDENT "halt" ->
      bump s;
      ok Scn_ast.Halt
  | other -> fail_at t.tat "expected a statement, found %s" (token_to_string other)

let body s : (Scn_ast.body, Scn_ast.error) result =
  let* _ = expect s LBRACE "'{'" in
  let rec go acc =
    match (cur s).tok with
    | RBRACE ->
        bump s;
        Ok (List.rev acc)
    | EOF -> fail_at (cur s).tat "unterminated block: expected '}'"
    | _ ->
        let* st = stmt s in
        go (st :: acc)
  in
  go []

(* --- the intrusion-model header ----------------------------------------- *)

let rec string_list s acc =
  match (cur s).tok with
  | STRING v ->
      bump s;
      string_list s (v :: acc)
  | _ -> List.rev acc

let model s : (Scn_ast.model, Scn_ast.error) result =
  let* _ = expect s LBRACE "'{' to open the model block" in
  let name = ref None and source = ref None and interface = ref None in
  let target = ref None and functionality = ref None in
  let represents = ref [] and summary = ref None in
  let rec go () =
    match (cur s).tok with
    | RBRACE ->
        bump s;
        Ok ()
    | IDENT "name" ->
        bump s;
        let* v, _ = string_lit s "the model name" in
        name := Some v;
        go ()
    | IDENT "source" ->
        bump s;
        let* v, at = ident s "the trigger source" in
        (match List.assoc_opt v Scn_ast.sources with
        | Some src ->
            source := Some src;
            go ()
        | None ->
            fail_at at "unknown trigger source %S (one of %s)" v
              (String.concat ", " (List.map fst Scn_ast.sources)))
    | IDENT "interface" -> (
        bump s;
        let* v, at = ident s "the interaction interface" in
        match v with
        | "hypercall" ->
            let* h, _ = string_lit s "the hypercall name" in
            interface := Some (Intrusion_model.Hypercall_interface h);
            go ()
        | "device-emulation" ->
            let* d, _ = string_lit s "the emulated device" in
            interface := Some (Intrusion_model.Device_emulation d);
            go ()
        | "instruction-interception" ->
            interface := Some Intrusion_model.Instruction_interception;
            go ()
        | other ->
            fail_at at
              "unknown interface %S (hypercall, device-emulation, instruction-interception)"
              other)
    | IDENT "target" ->
        bump s;
        let* v, at = ident s "the target component" in
        (match List.assoc_opt v Scn_ast.targets with
        | Some t ->
            target := Some t;
            go ()
        | None ->
            fail_at at "unknown target component %S (one of %s)" v
              (String.concat ", " (List.map fst Scn_ast.targets)))
    | IDENT "functionality" ->
        bump s;
        let* v, at = string_lit s "the abusive functionality" in
        (match Abusive_functionality.of_string v with
        | Some f ->
            functionality := Some f;
            go ()
        | None -> fail_at at "unknown abusive functionality %S (use the paper's label)" v)
    | IDENT "represents" ->
        bump s;
        represents := !represents @ string_list s [];
        go ()
    | IDENT "summary" ->
        bump s;
        let* v, _ = string_lit s "the model summary" in
        summary := Some v;
        go ()
    | other -> fail_at (cur s).tat "unexpected token %s in model block" (token_to_string other)
  in
  let* () = go () in
  let req what = function
    | Some v -> Ok v
    | None -> fail_at (cur s).tat "model block is missing its %s field" what
  in
  let* m_name = req "name" !name in
  let* m_source = req "source" !source in
  let* m_interface = req "interface" !interface in
  let* m_target = req "target" !target in
  let* m_functionality = req "functionality" !functionality in
  let* m_summary = req "summary" !summary in
  Ok
    {
      Scn_ast.m_name;
      m_source;
      m_interface;
      m_target;
      m_functionality;
      m_represents = !represents;
      m_summary;
    }

(* --- top level ----------------------------------------------------------- *)

let scenario s : (Scn_ast.t, Scn_ast.error) result =
  let* _, _ =
    match (cur s).tok with
    | IDENT "scenario" ->
        bump s;
        Ok ((), ())
    | other -> fail_at (cur s).tat "expected 'scenario', found %s" (token_to_string other)
  in
  let* s_name, _ = string_lit s "the scenario name" in
  let* _ = expect s LBRACE "'{'" in
  let xsa = ref None and backend = ref "any" and description = ref None in
  let model_v = ref None and expect_v = ref [] in
  let exploit = ref None and inject = ref None in
  let rec go () =
    match (cur s).tok with
    | RBRACE ->
        bump s;
        Ok ()
    | IDENT "xsa" ->
        bump s;
        let* v, _ = string_lit s "the advisory id" in
        xsa := Some v;
        go ()
    | IDENT "backend" ->
        bump s;
        let* v, at = ident s "the backend constraint" in
        if List.mem v [ "xen"; "kvm"; "any" ] then (
          backend := v;
          go ())
        else fail_at at "unknown backend %S (xen, kvm, any)" v
    | IDENT "description" ->
        bump s;
        let* v, _ = string_lit s "the description" in
        description := Some v;
        go ()
    | IDENT "model" ->
        bump s;
        let* m = model s in
        model_v := Some m;
        go ()
    | IDENT "expect" ->
        bump s;
        let* _, _ = match (cur s).tok with
          | IDENT "violation" ->
              bump s;
              Ok ((), ())
          | other ->
              fail_at (cur s).tat "expected 'violation' after 'expect', found %s"
                (token_to_string other)
        in
        let rec classes acc =
          match (cur s).tok with
          | IDENT c when List.mem c Scn_ast.violation_classes ->
              bump s;
              classes (c :: acc)
          | _ -> List.rev acc
        in
        let cs = classes [] in
        if cs = [] then
          fail_at (cur s).tat "expect violation needs at least one class (one of %s)"
            (String.concat ", " Scn_ast.violation_classes)
        else (
          expect_v := !expect_v @ cs;
          go ())
    | IDENT "exploit" ->
        bump s;
        let* b = body s in
        exploit := Some b;
        go ()
    | IDENT "inject" ->
        bump s;
        let* b = body s in
        inject := Some b;
        go ()
    | EOF -> fail_at (cur s).tat "unterminated scenario: expected '}'"
    | other ->
        fail_at (cur s).tat "unexpected token %s in scenario block" (token_to_string other)
  in
  let* () = go () in
  let req what = function
    | Some v -> Ok v
    | None -> fail_at (cur s).tat "scenario is missing its %s" what
  in
  let* s_xsa = req "xsa field" !xsa in
  let* s_description = req "description" !description in
  let* s_model = req "model block" !model_v in
  let* s_exploit = req "exploit block" !exploit in
  let* s_inject = req "inject block" !inject in
  Ok
    {
      Scn_ast.s_name;
      s_xsa;
      s_description;
      s_backend = !backend;
      s_model;
      s_expect = !expect_v;
      s_exploit;
      s_inject;
    }

let parse src : (Scn_ast.t, Scn_ast.error) result =
  match Scn_lexer.tokenize src with
  | Error e -> Error e
  | Ok toks ->
      let s = { toks; idx = 0 } in
      let* sc = scenario s in
      let t = cur s in
      if t.tok = EOF then Ok sc
      else fail_at t.tat "trailing input after scenario: %s" (token_to_string t.tok)
