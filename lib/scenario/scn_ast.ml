(* The scenario language's typed AST (§IV as data).

   A scenario is the paper's intrusion model written down as a loadable
   artifact: a header declaring where the intrusion comes from (trigger
   source), how it reaches the hypervisor (interaction interface), what
   it corrupts (target component / abusive functionality), plus two
   step bodies — the third-party exploit path and the injection path —
   over the shared four-action codec, guest workload ops and named
   library payloads. Hand-written OCaml use-case modules carry exactly
   the same information; here it is data, so a corpus can grow without
   recompiling and a fuzzer can mutate it. *)

type pos = { line : int; col : int }

let pp_pos ppf p = Format.fprintf ppf "line %d, column %d" p.line p.col
let pos_to_string p = Format.asprintf "%a" pp_pos p

type error = { msg : string; at : pos }

let error_to_string e = Printf.sprintf "%s at %s" e.msg (pos_to_string e.at)

(* The intrusion-model header, mapped 1:1 onto {!Intrusion_model.t}. *)
type model = {
  m_name : string;
  m_source : Intrusion_model.trigger_source;
  m_interface : Intrusion_model.interface;
  m_target : Intrusion_model.target_component;
  m_functionality : Abusive_functionality.t;
  m_represents : string list;
  m_summary : string;
}

type reg = int (* 0..15; the surface syntax spells r0..r15 and rc (= r15) *)

let num_regs = 16

(* Right-hand sides of [rN = ...] assignments. Environment symbols
   ([Env]) are runtime lookups the backend resolves against the live
   testbed (own page-table frames, IDT base, VMCS address, ...) — the
   part of an injection script that cannot be a compile-time constant
   because the paper's targets are discovered, not hardcoded. *)
type expr =
  | Lit of int64
  | Add of reg * int64
  | Pte_of of reg * Pte.flag list
  | Entry_maddr of reg * reg  (* table mfn reg, index reg *)
  | Entry_linear of reg * reg
  | Env of string * int64  (* symbol, numeric argument (0 when absent) *)
  | Hypercall of string * reg list  (* return code lands in the dst reg *)
  | Inject_read of Access.action * reg  (* 8-byte read through the port *)

type stmt =
  | Set of reg * expr
  | Log of string
  | Logf of string * reg list  (* 1 or 2 register arguments *)
  | Log_errno of string  (* one %s, filled with the last port errno *)
  | Inject of { addr : reg; value : reg; action : Access.action }
  | Host_write of { addr : reg; value : reg }
  | Guest of string * reg list  (* guest workload op, effects only *)
  | Payload of string * reg list  (* named abusive-functionality routine *)
  | State of string * reg list  (* declare an expected erroneous state *)
  | Tick_all
  | Rc_errno  (* attempt rc := Some (return code of last port errno) *)
  | Rc_result  (* attempt rc := Some 0 / Some errno-rc, like the KVM rows *)
  | Rc_reg of reg
  | Rc_none
  | Goto of string
  | If_err of string  (* branch when the last port call failed *)
  | If_neg of reg * string  (* branch when a register is negative *)
  | Label of string
  | Halt

type 'a loc = { v : 'a; at : pos }

type body = stmt loc list

type t = {
  s_name : string;
  s_xsa : string;
  s_description : string;
  s_backend : string;  (* "xen" | "kvm" | "any" *)
  s_model : model;
  s_expect : string list;  (* expected violation classes, rq1 injection *)
  s_exploit : body;
  s_inject : body;
}

(* --- small shared vocabularies ----------------------------------------- *)

let sources =
  [
    ("unprivileged-guest", Intrusion_model.Unprivileged_guest);
    ("privileged-guest", Intrusion_model.Privileged_guest);
    ("guest-userspace", Intrusion_model.Guest_userspace);
    ("device-driver", Intrusion_model.Device_driver);
    ("management-interface", Intrusion_model.Management_interface);
  ]

let targets =
  [
    ("memory-management", Intrusion_model.Memory_management_component);
    ("interrupt-virtualization", Intrusion_model.Interrupt_virtualization);
    ("grant-tables", Intrusion_model.Grant_tables_component);
    ("device-model", Intrusion_model.Device_model);
    ("scheduler", Intrusion_model.Scheduler_component);
  ]

let actions =
  [
    ("read-linear", Access.Arbitrary_read_linear);
    ("write-linear", Access.Arbitrary_write_linear);
    ("read-physical", Access.Arbitrary_read_physical);
    ("write-physical", Access.Arbitrary_write_physical);
  ]

let pte_flags =
  [
    ("present", Pte.Present);
    ("rw", Pte.Rw);
    ("user", Pte.User);
    ("pwt", Pte.Pwt);
    ("pcd", Pte.Pcd);
    ("accessed", Pte.Accessed);
    ("dirty", Pte.Dirty);
    ("pse", Pte.Pse);
    ("global", Pte.Global);
    ("avail0", Pte.Avail0);
    ("avail1", Pte.Avail1);
    ("avail2", Pte.Avail2);
    ("nx", Pte.Nx);
  ]

let violation_classes =
  [
    "hypervisor-crash";
    "privilege-escalation";
    "unauthorized-disclosure";
    "integrity-violation";
    "guest-crash";
    "availability-degradation";
  ]

let violation_class = function
  | Monitor.Hypervisor_crash _ -> "hypervisor-crash"
  | Monitor.Privilege_escalation _ -> "privilege-escalation"
  | Monitor.Unauthorized_disclosure _ -> "unauthorized-disclosure"
  | Monitor.Integrity_violation _ -> "integrity-violation"
  | Monitor.Guest_crash _ -> "guest-crash"
  | Monitor.Availability_degradation _ -> "availability-degradation"

let rev_assoc v l = List.find_map (fun (k, x) -> if x = v then Some k else None) l

let intrusion_model (m : model) =
  Intrusion_model.make ~name:m.m_name ~source:m.m_source ~interface:m.m_interface
    ~target:m.m_target ~functionality:m.m_functionality
    ~representative_of:m.m_represents m.m_summary
