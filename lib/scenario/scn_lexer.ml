(* Hand-rolled lexer for the scenario surface syntax. Total: every
   input, including arbitrary bytes, tokenizes to [Ok] or a positioned
   [Error] — the QCheck never-raise property leans on this. *)

type token =
  | STRING of string
  | INT of int64
  | IDENT of string
  | LBRACE
  | RBRACE
  | EQ
  | EOF

type ttok = { tok : token; tat : Scn_ast.pos }

let token_to_string = function
  | STRING s -> Printf.sprintf "%S" s
  | INT n -> Int64.to_string n
  | IDENT s -> s
  | LBRACE -> "{"
  | RBRACE -> "}"
  | EQ -> "="
  | EOF -> "end of input"

type cursor = { src : string; mutable off : int; mutable line : int; mutable col : int }

let peek c = if c.off < String.length c.src then Some c.src.[c.off] else None

let advance c =
  (match peek c with
  | Some '\n' ->
      c.line <- c.line + 1;
      c.col <- 1
  | Some _ -> c.col <- c.col + 1
  | None -> ());
  c.off <- c.off + 1

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
  | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance c;
      skip_ws c
  | Some '#' ->
      let rec to_eol () =
        match peek c with
        | Some '\n' | None -> ()
        | Some _ ->
            advance c;
            to_eol ()
      in
      to_eol ();
      skip_ws c
  | _ -> ()

let lex_string c at =
  let b = Buffer.create 32 in
  advance c (* opening quote *);
  let rec go () =
    match peek c with
    | None -> Error { Scn_ast.msg = "unterminated string literal"; at }
    | Some '"' ->
        advance c;
        Ok { tok = STRING (Buffer.contents b); tat = at }
    | Some '\n' -> Error { Scn_ast.msg = "newline inside string literal"; at }
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' ->
            advance c;
            Buffer.add_char b '\n';
            go ()
        | Some 't' ->
            advance c;
            Buffer.add_char b '\t';
            go ()
        | Some '\\' ->
            advance c;
            Buffer.add_char b '\\';
            go ()
        | Some '"' ->
            advance c;
            Buffer.add_char b '"';
            go ()
        | Some ch ->
            Error
              {
                Scn_ast.msg = Printf.sprintf "unknown escape '\\%c' in string literal" ch;
                at;
              }
        | None -> Error { Scn_ast.msg = "unterminated string literal"; at })
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ()

let lex_int c at =
  let start = c.off in
  let neg = peek c = Some '-' in
  if neg then advance c;
  let hex =
    c.off + 1 < String.length c.src
    && c.src.[c.off] = '0'
    && (c.src.[c.off + 1] = 'x' || c.src.[c.off + 1] = 'X')
  in
  if hex then (
    advance c;
    advance c);
  let rec digits () =
    match peek c with
    | Some ch
      when is_digit ch || ch = '_'
           || (hex && (match ch with 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)) ->
        advance c;
        digits ()
    | _ -> ()
  in
  digits ();
  let text = String.sub c.src start (c.off - start) in
  let cleaned = String.concat "" (String.split_on_char '_' text) in
  match Int64.of_string_opt cleaned with
  | Some n -> Ok { tok = INT n; tat = at }
  | None -> Error { Scn_ast.msg = Printf.sprintf "malformed integer literal %S" text; at }

let lex_ident c at =
  let start = c.off in
  let rec go () =
    match peek c with
    | Some ch when is_ident_char ch ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  Ok { tok = IDENT (String.sub c.src start (c.off - start)); tat = at }

(* Tokenize the whole input eagerly; the parser then works over an
   array with unbounded lookahead (it needs one token of it). *)
let tokenize src : (ttok array, Scn_ast.error) result =
  let c = { src; off = 0; line = 1; col = 1 } in
  let toks = ref [] in
  let rec go () =
    skip_ws c;
    let at = { Scn_ast.line = c.line; col = c.col } in
    match peek c with
    | None ->
        toks := { tok = EOF; tat = at } :: !toks;
        Ok (Array.of_list (List.rev !toks))
    | Some '{' ->
        advance c;
        toks := { tok = LBRACE; tat = at } :: !toks;
        go ()
    | Some '}' ->
        advance c;
        toks := { tok = RBRACE; tat = at } :: !toks;
        go ()
    | Some '=' ->
        advance c;
        toks := { tok = EQ; tat = at } :: !toks;
        go ()
    | Some '"' -> (
        match lex_string c at with
        | Ok t ->
            toks := t :: !toks;
            go ()
        | Error e -> Error e)
    | Some ch when is_digit ch -> (
        match lex_int c at with
        | Ok t ->
            toks := t :: !toks;
            go ()
        | Error e -> Error e)
    | Some '-' when c.off + 1 < String.length src && is_digit src.[c.off + 1] -> (
        match lex_int c at with
        | Ok t ->
            toks := t :: !toks;
            go ()
        | Error e -> Error e)
    | Some ch when is_ident_char ch -> (
        match lex_ident c at with
        | Ok t ->
            toks := t :: !toks;
            go ()
        | Error e -> Error e)
    | Some ch -> Error { Scn_ast.msg = Printf.sprintf "unexpected character %C" ch; at }
  in
  go ()
