(* The bytecode VM: a stack-free register machine executing compiled
   scenarios against any {!Substrate.S} through its OPS table.

   Sixteen 64-bit registers, one error flag (the last injection-port or
   host-write errno), one return-code slot, a transcript accumulator
   and a declared-states accumulator — exactly the state a hand-written
   use case threads through its closure, made explicit. Each section
   (exploit, inject) runs start-to-[halt]/end and folds into a
   {!Campaign.Make.attempt}, so a compiled scenario drops into every
   consumer of campaign use cases — the campaign engine, the scheduler,
   the trace/VMI drivers, attribution — without those layers knowing
   bytecode exists.

   The VM assumes checked bytecode ({!Scn_check.check}); a dispatch the
   checker would have refused raises {!Scn_ops.Trap}. *)

open Scn_bytecode

(* Same arithmetic as [Toolkit.entry_maddr]/[entry_linear], inlined so
   the VM does not depend upward on the exploit library. *)
let entry_maddr ~table ~index =
  Int64.add (Addr.maddr_of_mfn (Int64.to_int table)) (Int64.mul 8L index)

module Make (O : Scn_ops.OPS) = struct
  module B = O.B

  (* Applied to [O.B] directly (not the [B] alias above): applicative
     functor paths only normalize through true module aliases, and
     [Scenario_xen.B = Substrate_xen] is one — so [C.use_case] is the
     very type the legacy modules and the top-level [Campaign] build,
     and scenarios flow into every downstream driver unchanged. *)
  module C = Campaign.Make (O.B)

  type st = {
    regs : int64 array;
    mutable err : Errno.t option;
    mutable rc : int option;
    mutable logs : string list;  (* reversed *)
    mutable states : B.state_spec list;  (* reversed *)
  }

  let fuel = 100_000
  (* Backstop against jump loops in hostile-but-checked bytecode; the
     corpus programs run tens of instructions. *)

  let run_section (tb : B.t) ~section (p : program) (instrs : instr array) : C.attempt =
    let st = { regs = Array.make Scn_ast.num_regs 0L; err = None; rc = None; logs = []; states = [] } in
    let say line = st.logs <- line :: st.logs in
    let len = Array.length instrs in
    (* Scenario-pc edge coverage: when a Coverage collector is attached
       to the testbed's trace, every executed instruction feeds the
       prev-pc -> pc edge (entry edge uses prev = 0xffffff) and emits a
       boundary [Scn_edge] record so replay — which never runs the VM —
       can refeed the same edges from the ring. Detached runs (the
       default, and every golden fixture) are byte-for-byte unchanged. *)
    let tr = B.trace tb in
    let cov = Trace.coverage tr in
    let prev = ref 0xffffff in
    let note_edge pc =
      match cov with
      | None -> ()
      | Some c ->
          Coverage.note_scn_edge c ~section ~prev:!prev ~pc;
          if Trace.recording tr && Trace.top_level tr then
            Trace.emit tr (Trace.Scn_edge { section; prev = !prev; pc });
          prev := pc
    in
    let reg r = st.regs.(r land 0xf) in
    let setr r v = st.regs.(r land 0xf) <- v in
    let args i =
      Array.init i.n (fun k -> reg (match k with 0 -> i.a | 1 -> i.b | _ -> i.c))
    in
    let action i =
      match Access.of_code i.imm with
      | Some a -> a
      | None -> Scn_ops.trap "invalid action code %Ld" i.imm
    in
    let u64_bytes v =
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 v;
      b
    in
    let rec step pc budget =
      if pc >= len || budget <= 0 then ()
      else begin
        note_edge pc;
        let i = instrs.(pc) in
        let next = pc + 1 in
        let s = str p i.sid in
        if i.op = op_halt then ()
        else if i.op = op_loadi then (
          setr i.a i.imm;
          step next (budget - 1))
        else if i.op = op_add then (
          setr i.a (Int64.add (reg i.b) i.imm);
          step next (budget - 1))
        else if i.op = op_env then (
          (match O.env tb s i.imm with
          | Ok v -> setr i.a v
          | Error msg -> Scn_ops.trap "env %s: %s" s msg);
          step next (budget - 1))
        else if i.op = op_pte then (
          setr i.a (Pte.make ~mfn:(Int64.to_int (reg i.b)) ~flags:(pte_unmask i.imm));
          step next (budget - 1))
        else if i.op = op_emaddr then (
          setr i.a (entry_maddr ~table:(reg i.b) ~index:(reg i.c));
          step next (budget - 1))
        else if i.op = op_elin then (
          setr i.a (Layout.directmap_of_maddr (entry_maddr ~table:(reg i.b) ~index:(reg i.c)));
          step next (budget - 1))
        else if i.op = op_log then (
          say s;
          step next (budget - 1))
        else if i.op = op_logf1 then (
          say (render s [| reg i.a |]);
          step next (budget - 1))
        else if i.op = op_logf2 then (
          say (render s [| reg i.a; reg i.b |]);
          step next (budget - 1))
        else if i.op = op_logerr then (
          let e = match st.err with Some e -> e | None -> Scn_ops.trap "log-errno with no pending error" in
          say (render_errno s (Errno.to_string e));
          step next (budget - 1))
        else if i.op = op_inject then (
          (match B.inject_write tb ~addr:(reg i.a) (action i) (u64_bytes (reg i.b)) with
          | Ok () -> st.err <- None
          | Error e -> st.err <- Some e);
          step next (budget - 1))
        else if i.op = op_injectr then (
          (match B.inject_read tb ~addr:(reg i.b) (action i) ~len:8 with
          | Ok bytes ->
              st.err <- None;
              setr i.a (Bytes.get_int64_le bytes 0)
          | Error e ->
              st.err <- Some e;
              setr i.a 0L);
          step next (budget - 1))
        else if i.op = op_hostw then (
          (match O.host_write tb ~addr:(reg i.a) (reg i.b) with
          | Ok () -> st.err <- None
          | Error e -> st.err <- Some e);
          step next (budget - 1))
        else if i.op = op_hc then (
          let hc_args = Array.init i.n (fun k -> reg (if k = 0 then i.b else i.c)) in
          (match O.hypercall tb s hc_args with
          | Ok rc -> setr i.a rc
          | Error msg -> Scn_ops.trap "hypercall %s: %s" s msg);
          step next (budget - 1))
        else if i.op = op_guest then (
          (match O.guest_op tb s (args i) with
          | Ok () -> ()
          | Error msg -> Scn_ops.trap "guest op %s: %s" s msg);
          step next (budget - 1))
        else if i.op = op_payload then (
          (match O.payload tb ~say s (args i) with
          | Ok () -> ()
          | Error msg -> Scn_ops.trap "payload %s: %s" s msg);
          step next (budget - 1))
        else if i.op = op_state then (
          (match O.state tb s (args i) with
          | Ok spec -> st.states <- spec :: st.states
          | Error msg -> Scn_ops.trap "state %s: %s" s msg);
          step next (budget - 1))
        else if i.op = op_tick then (
          B.tick_all tb;
          step next (budget - 1))
        else if i.op = op_jmp then step (Int64.to_int i.imm) (budget - 1)
        else if i.op = op_jerr then
          step (if st.err <> None then Int64.to_int i.imm else next) (budget - 1)
        else if i.op = op_jneg then
          step (if reg i.a < 0L then Int64.to_int i.imm else next) (budget - 1)
        else if i.op = op_rcerr then (
          (match st.err with
          | Some e -> st.rc <- Some (Errno.to_return_code e)
          | None -> Scn_ops.trap "rc-errno with no pending error");
          step next (budget - 1))
        else if i.op = op_rcres then (
          st.rc <- Some (match st.err with None -> 0 | Some e -> Errno.to_return_code e);
          step next (budget - 1))
        else if i.op = op_rcreg then (
          st.rc <- Some (Int64.to_int (reg i.a));
          step next (budget - 1))
        else if i.op = op_rcnone then (
          st.rc <- None;
          step next (budget - 1))
        else Scn_ops.trap "unknown opcode %d at pc %d" i.op pc
      end
    in
    step 0 fuel;
    { C.transcript = List.rev st.logs; states = List.rev st.states; rc = st.rc }

  (* The section code folds a 7-bit per-program salt over the
     exploit/inject bit (bit 0), so scenarios with identical
     control-flow shapes — straight-line programs of the same length,
     say — still populate distinct coverage edge slots. The full code
     travels in the [Scn_edge] record's section byte, so replay refeeds
     exactly the recorded slots. *)
  let section_code (p : program) ~section =
    let h = ref 0 in
    String.iter (fun ch -> h := ((!h * 131) + Char.code ch) land 0x7f) (name p);
    (!h lsl 1) lor (section land 1)

  (* A compiled program as a campaign use case: because [Campaign.Make]
     is applicative, this is the very same [use_case] type the legacy
     modules build, so everything downstream of the campaign engine
     accepts scenarios unchanged. *)
  let use_case (p : program) : C.use_case =
    {
      C.uc_name = name p;
      uc_xsa = xsa p;
      uc_description = description p;
      im = intrusion_model p;
      run_exploit = (fun tb -> run_section tb ~section:(section_code p ~section:0) p p.exploit);
      run_injection = (fun tb -> run_section tb ~section:(section_code p ~section:1) p p.inject);
    }

  let check p = Scn_check.check O.caps p
  let compatible p = Scn_check.compatible O.caps p.header.h_backend

  (* The whole corpus through the campaign scheduler's batching path:
     one warm pooled testbed per (worker x version), reset between
     cells — [Campaign.run_matrix] already implements exactly that. *)
  let run_corpus ?workers ?frames progs ~versions ~modes =
    C.run_matrix ?workers ?frames (List.map use_case progs) ~versions ~modes
end
