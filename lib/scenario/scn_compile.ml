(* AST → bytecode. Interning is deterministic (header fields first, then
   instruction order), which gives the roundtrip contract its teeth:
   [compile (parse (disasm p)) = p] for any program the compiler
   emitted. Structural properties that do not need backend capability
   tables — label resolution, format arities, call-argument counts —
   are enforced here with source positions; everything that depends on
   the backend (names, gating) lives in {!Scn_check}. *)

open Scn_bytecode

type interner = { tbl : (string, int) Hashtbl.t; mutable rev : string list; mutable next : int }

let new_interner () = { tbl = Hashtbl.create 64; rev = []; next = 0 }

let intern it s =
  match Hashtbl.find_opt it.tbl s with
  | Some id -> id
  | None ->
      let id = it.next in
      Hashtbl.add it.tbl s id;
      it.rev <- s :: it.rev;
      it.next <- id + 1;
      id

let strings it = Array.of_list (List.rev it.rev)

let fail at fmt = Printf.ksprintf (fun msg -> Error { Scn_ast.msg; at }) fmt
let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* Labels take no slot, everything else exactly one. *)
let label_pcs (body : Scn_ast.body) =
  let tbl = Hashtbl.create 8 in
  let rec go pc = function
    | [] -> Ok tbl
    | { Scn_ast.v = Scn_ast.Label l; at } :: tl ->
        if Hashtbl.mem tbl l then fail at "duplicate label %S" l
        else (
          Hashtbl.add tbl l pc;
          go pc tl)
    | _ :: tl -> go (pc + 1) tl
  in
  go 0 body

let compile_body it (body : Scn_ast.body) =
  let* labels = label_pcs body in
  let target at l =
    match Hashtbl.find_opt labels l with
    | Some pc -> Ok (Int64.of_int pc)
    | None -> fail at "unknown label %S" l
  in
  let call_args at what limit args =
    if List.length args > limit then
      fail at "%s takes at most %d register arguments, got %d" what limit (List.length args)
    else
      let get i = match List.nth_opt args i with Some r -> r | None -> 0 in
      Ok (get 0, get 1, get 2, List.length args)
  in
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | { Scn_ast.v; at } :: tl ->
        let* ins =
          match v with
          | Scn_ast.Label _ -> Ok None
          | Scn_ast.Set (r, e) -> (
              match e with
              | Scn_ast.Lit v -> Ok (Some { nop with op = op_loadi; a = r; imm = v })
              | Scn_ast.Add (m, v) -> Ok (Some { nop with op = op_add; a = r; b = m; imm = v })
              | Scn_ast.Pte_of (m, flags) ->
                  Ok (Some { nop with op = op_pte; a = r; b = m; imm = pte_mask flags })
              | Scn_ast.Entry_maddr (m, i) ->
                  Ok (Some { nop with op = op_emaddr; a = r; b = m; c = i })
              | Scn_ast.Entry_linear (m, i) ->
                  Ok (Some { nop with op = op_elin; a = r; b = m; c = i })
              | Scn_ast.Env (name, arg) ->
                  Ok (Some { nop with op = op_env; a = r; sid = intern it name; imm = arg })
              | Scn_ast.Hypercall (name, args) ->
                  let* b, c, _, n = call_args at "a hypercall" 2 args in
                  Ok (Some { nop with op = op_hc; a = r; b; c; n; sid = intern it name })
              | Scn_ast.Inject_read (act, ra) ->
                  Ok (Some { nop with op = op_injectr; a = r; b = ra; imm = Access.code act }))
          | Scn_ast.Log msg -> Ok (Some { nop with op = op_log; sid = intern it msg })
          | Scn_ast.Logf (fmt, args) -> (
              match fmt_arity fmt with
              | Error msg -> fail at "%s" msg
              | Ok arity ->
                  if arity <> List.length args then
                    fail at "format %S takes %d arguments, logf was given %d" fmt arity
                      (List.length args)
                  else
                    let sid = intern it fmt in
                    (match args with
                    | [ x ] -> Ok (Some { nop with op = op_logf1; a = x; sid })
                    | [ x; y ] -> Ok (Some { nop with op = op_logf2; a = x; b = y; sid })
                    | _ -> fail at "logf takes one or two register arguments"))
          | Scn_ast.Log_errno fmt -> (
              match errno_fmt_ok fmt with
              | Error msg -> fail at "%s" msg
              | Ok () -> Ok (Some { nop with op = op_logerr; sid = intern it fmt }))
          | Scn_ast.Inject { addr; value; action } ->
              Ok (Some { nop with op = op_inject; a = addr; b = value; imm = Access.code action })
          | Scn_ast.Host_write { addr; value } ->
              Ok (Some { nop with op = op_hostw; a = addr; b = value })
          | Scn_ast.Guest (name, args) ->
              let* a, b, c, n = call_args at "a guest op" 3 args in
              Ok (Some { nop with op = op_guest; a; b; c; n; sid = intern it name })
          | Scn_ast.Payload (name, args) ->
              let* a, b, c, n = call_args at "a payload" 3 args in
              Ok (Some { nop with op = op_payload; a; b; c; n; sid = intern it name })
          | Scn_ast.State (name, args) ->
              let* a, b, c, n = call_args at "an erroneous state" 3 args in
              Ok (Some { nop with op = op_state; a; b; c; n; sid = intern it name })
          | Scn_ast.Tick_all -> Ok (Some { nop with op = op_tick })
          | Scn_ast.Rc_errno -> Ok (Some { nop with op = op_rcerr })
          | Scn_ast.Rc_result -> Ok (Some { nop with op = op_rcres })
          | Scn_ast.Rc_reg r -> Ok (Some { nop with op = op_rcreg; a = r })
          | Scn_ast.Rc_none -> Ok (Some { nop with op = op_rcnone })
          | Scn_ast.Goto l ->
              let* pc = target at l in
              Ok (Some { nop with op = op_jmp; imm = pc })
          | Scn_ast.If_err l ->
              let* pc = target at l in
              Ok (Some { nop with op = op_jerr; imm = pc })
          | Scn_ast.If_neg (r, l) ->
              let* pc = target at l in
              Ok (Some { nop with op = op_jneg; a = r; imm = pc })
          | Scn_ast.Halt -> Ok (Some { nop with op = op_halt })
        in
        go (match ins with Some i -> i :: acc | None -> acc) tl
  in
  go [] body

let index_of x l =
  let rec go i = function
    | [] -> 0
    | hd :: tl -> if hd = x then i else go (i + 1) tl
  in
  go 0 l

let compile (sc : Scn_ast.t) : (program, Scn_ast.error) result =
  let it = new_interner () in
  let m = sc.s_model in
  let h_name = intern it sc.s_name in
  let h_xsa = intern it sc.s_xsa in
  let h_description = intern it sc.s_description in
  let h_model_name = intern it m.m_name in
  let iface_kind, iface_str =
    match m.m_interface with
    | Intrusion_model.Hypercall_interface h -> (0, h)
    | Intrusion_model.Device_emulation d -> (1, d)
    | Intrusion_model.Instruction_interception -> (2, "")
  in
  let h_iface_str = intern it iface_str in
  let h_represents = List.map (intern it) m.m_represents in
  let h_summary = intern it m.m_summary in
  let* exploit = compile_body it sc.s_exploit in
  let* inject = compile_body it sc.s_inject in
  Ok
    {
      strings = strings it;
      header =
        {
          h_name;
          h_xsa;
          h_description;
          h_backend =
            (match backend_tag_of_string sc.s_backend with Some t -> t | None -> Any);
          h_model_name;
          h_source = index_of (Scn_ast.rev_assoc m.m_source Scn_ast.sources |> Option.get |> fun k -> k) (List.map fst Scn_ast.sources);
          h_iface_kind = iface_kind;
          h_iface_str;
          h_target =
            index_of
              (Scn_ast.rev_assoc m.m_target Scn_ast.targets |> Option.get |> fun k -> k)
              (List.map fst Scn_ast.targets);
          h_functionality = index_of m.m_functionality Abusive_functionality.all;
          h_represents;
          h_summary;
          h_expect = List.map (fun c -> index_of c Scn_ast.violation_classes) sc.s_expect;
        };
      exploit;
      inject;
    }

(* Convenience: surface text straight to bytecode. *)
let compile_string src =
  match Scn_parser.parse src with
  | Error e -> Error e
  | Ok sc -> compile sc
