type access_kind = Read | Write | Exec

type fault_reason =
  | Not_present of int
  | Write_to_readonly
  | User_access_to_supervisor
  | Nx_violation
  | Non_canonical
  | Layout_denied of Layout.region
  | Bad_physical of Addr.mfn

type fault = { fault_vaddr : Addr.vaddr; fault_kind : access_kind; reason : fault_reason }
type step = { level : int; table_mfn : Addr.mfn; index : int; entry : Pte.t }

type translation = {
  t_maddr : Addr.maddr;
  writable : bool;
  user : bool;
  executable : bool;
  superpage : bool;
  path : step list;
}

let index_at level va =
  match level with
  | 4 -> Addr.l4_index va
  | 3 -> Addr.l3_index va
  | 2 -> Addr.l2_index va
  | 1 -> Addr.l1_index va
  | _ -> invalid_arg "Paging.index_at"

let read_entry mem table_mfn index =
  if Phys_mem.is_valid_mfn mem table_mfn then begin
    Phys_mem.observe mem ~consumer:Provenance.Pt_walk ~mfn:table_mfn ~off:(8 * index) ~len:8;
    Frame.get_entry (Phys_mem.frame_ro mem table_mfn) index
  end
  else Pte.none

(* Superpage base frame: hardware ignores/requires-zero the low 9 MFN bits
   of a PSE L2 entry; we round down, so an exploit forging a PSE mapping
   over its page-table pages covers the whole 2 MiB-aligned group. *)
let superpage_base_mfn entry = Pte.mfn entry land lnot 0x1ff

let walk_general mem ~cr3 va =
  let va = Addr.canonical va in
  let rec go level table_mfn acc ~rw ~us ~nx =
    let index = index_at level va in
    let entry = read_entry mem table_mfn index in
    let acc = { level; table_mfn; index; entry } :: acc in
    if not (Pte.is_present entry) then (List.rev acc, Error (Not_present level))
    else
      let rw = rw && Pte.test Pte.Rw entry in
      let us = us && Pte.test Pte.User entry in
      let nx = nx || Pte.test Pte.Nx entry in
      if level = 1 then
        (* a forged leaf can point anywhere; outside installed RAM the
           bus access aborts, so surface a fault, not an exception *)
        if not (Phys_mem.is_valid_mfn mem (Pte.mfn entry)) then
          (List.rev acc, Error (Bad_physical (Pte.mfn entry)))
        else
        let maddr =
          Int64.add (Addr.maddr_of_mfn (Pte.mfn entry)) (Int64.of_int (Addr.page_offset va))
        in
        ( List.rev acc,
          Ok
            {
              t_maddr = maddr;
              writable = rw;
              user = us;
              executable = not nx;
              superpage = false;
              path = List.rev acc;
            } )
      else if level = 2 && Pte.test Pte.Pse entry then
        let base = Addr.maddr_of_mfn (superpage_base_mfn entry) in
        let offset = Int64.logand va (Int64.of_int (Addr.superpage_size - 1)) in
        let maddr = Int64.add base offset in
        if not (Phys_mem.is_valid_mfn mem (Addr.mfn_of_maddr maddr)) then
          (List.rev acc, Error (Bad_physical (Addr.mfn_of_maddr maddr)))
        else
        ( List.rev acc,
          Ok
            {
              t_maddr = maddr;
              writable = rw;
              user = us;
              executable = not nx;
              superpage = true;
              path = List.rev acc;
            } )
      else go (level - 1) (Pte.mfn entry) acc ~rw ~us ~nx
  in
  go 4 cr3 [] ~rw:true ~us:true ~nx:false

let walk mem ~cr3 va =
  let _, result = walk_general mem ~cr3 va in
  result

let walk_path mem ~cr3 va =
  let path, _ = walk_general mem ~cr3 va in
  path

let check_perms ~kind ~user va tr =
  let fault reason = Error { fault_vaddr = va; fault_kind = kind; reason } in
  if user && not tr.user then fault User_access_to_supervisor
  else if kind = Write && not tr.writable then fault Write_to_readonly
  else if kind = Exec && not tr.executable then fault Nx_violation
  else Ok tr

let translate mem ~cr3 ~kind ~user va =
  let fault reason = Error { fault_vaddr = va; fault_kind = kind; reason } in
  if not (Addr.is_canonical va) then fault Non_canonical
  else
    match walk mem ~cr3 va with
    | Error reason -> fault reason
    | Ok tr -> check_perms ~kind ~user va tr

(* --- software TLB ----------------------------------------------------- *)

module Tlb = struct
  (* What the hardware TLB caches per (address space, page): the final
     page frame plus the accumulated permission bits. The walk path is
     kept too so a cache hit is bit-for-bit equal to a fresh walk. *)
  type cached = {
    c_page_maddr : Addr.maddr;  (** machine address of byte 0 of the page *)
    c_writable : bool;
    c_user : bool;
    c_executable : bool;
    c_superpage : bool;
    c_path : step list;
    c_gen : int;  (** Phys_mem generation the walk was performed under *)
  }

  type stats = { hits : int; misses : int; flushes : int; invlpgs : int }

  type t = {
    entries : (Addr.mfn * int, cached) Hashtbl.t;  (* (cr3, vpn) *)
    capacity : int;
    mutable hits : int;
    mutable misses : int;
    mutable flushes : int;
    mutable invlpgs : int;
    mutable tracer : Trace.t option;
  }

  let create ?(capacity = 4096) () =
    if capacity <= 0 then invalid_arg "Paging.Tlb.create: capacity must be positive";
    {
      entries = Hashtbl.create 256;
      capacity;
      hits = 0;
      misses = 0;
      flushes = 0;
      invlpgs = 0;
      tracer = None;
    }

  let set_tracer t tr = t.tracer <- Some tr
  let tracer t = t.tracer

  let vpn va = Int64.to_int (Int64.shift_right_logical (Addr.canonical va) Addr.page_shift)

  let flush_all t =
    if Hashtbl.length t.entries > 0 then Hashtbl.reset t.entries;
    t.flushes <- t.flushes + 1;
    match t.tracer with
    | None -> ()
    | Some tr ->
        Trace.note_flush tr;
        if Trace.recording tr then Trace.emit tr Trace.Tlb_flush_all

  let invlpg t ~cr3 va =
    Hashtbl.remove t.entries (cr3, vpn va);
    t.invlpgs <- t.invlpgs + 1;
    match t.tracer with
    | None -> ()
    | Some tr ->
        Trace.note_invlpg tr;
        if Trace.recording tr then Trace.emit tr (Trace.Tlb_invlpg { va })

  let stats t = { hits = t.hits; misses = t.misses; flushes = t.flushes; invlpgs = t.invlpgs }
  let size t = Hashtbl.length t.entries
end

let walk_cached tlb mem ~cr3 va =
  let va = Addr.canonical va in
  let key = (cr3, Tlb.vpn va) in
  let gen = Phys_mem.generation mem in
  let hit =
    match Hashtbl.find_opt tlb.Tlb.entries key with
    | Some c when c.Tlb.c_gen = gen -> Some c
    | Some _ | None -> None
  in
  let charge op = match tlb.Tlb.tracer with None -> () | Some tr -> Trace.charge tr op in
  match hit with
  | Some c ->
      tlb.Tlb.hits <- tlb.Tlb.hits + 1;
      charge Vclock.Tlb_hit;
      Ok
        {
          t_maddr = Int64.add c.Tlb.c_page_maddr (Int64.of_int (Addr.page_offset va));
          writable = c.Tlb.c_writable;
          user = c.Tlb.c_user;
          executable = c.Tlb.c_executable;
          superpage = c.Tlb.c_superpage;
          path = c.Tlb.c_path;
        }
  | None -> (
      tlb.Tlb.misses <- tlb.Tlb.misses + 1;
      charge Vclock.Tlb_miss;
      let path, result = walk_general mem ~cr3 va in
      (match tlb.Tlb.tracer with
      | None -> ()
      | Some tr -> Trace.charge_n tr Vclock.Page_walk_step (List.length path));
      match result with
      | Error _ as e -> e (* faults are never cached, like real hardware *)
      | Ok tr ->
          if Hashtbl.length tlb.Tlb.entries >= tlb.Tlb.capacity then Tlb.flush_all tlb;
          Hashtbl.replace tlb.Tlb.entries key
            {
              Tlb.c_page_maddr = Int64.sub tr.t_maddr (Int64.of_int (Addr.page_offset va));
              c_writable = tr.writable;
              c_user = tr.user;
              c_executable = tr.executable;
              c_superpage = tr.superpage;
              c_path = tr.path;
              c_gen = gen;
            };
          Ok tr)

let translate_cached tlb mem ~cr3 ~kind ~user va =
  if not (Addr.is_canonical va) then
    Error { fault_vaddr = va; fault_kind = kind; reason = Non_canonical }
  else
    match walk_cached tlb mem ~cr3 va with
    | Error reason -> Error { fault_vaddr = va; fault_kind = kind; reason }
    | Ok tr -> check_perms ~kind ~user va tr

let pp_fault_reason ppf = function
  | Not_present level -> Format.fprintf ppf "not-present at L%d" level
  | Write_to_readonly -> Format.fprintf ppf "write to read-only mapping"
  | User_access_to_supervisor -> Format.fprintf ppf "user access to supervisor mapping"
  | Nx_violation -> Format.fprintf ppf "NX violation"
  | Non_canonical -> Format.fprintf ppf "non-canonical address"
  | Layout_denied region ->
      Format.fprintf ppf "access denied by address-space layout (%s)" (Layout.region_name region)
  | Bad_physical mfn -> Format.fprintf ppf "leaf frame %#x outside installed RAM" mfn

let pp_fault ppf { fault_vaddr; fault_kind; reason } =
  let kind = match fault_kind with Read -> "read" | Write -> "write" | Exec -> "exec" in
  Format.fprintf ppf "#PF %s at %a: %a" kind Addr.pp_vaddr fault_vaddr pp_fault_reason reason
