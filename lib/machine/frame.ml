type t = bytes

let create () = Bytes.make Addr.page_size '\000'
let copy = Bytes.copy

let check off len =
  if off < 0 || off + len > Addr.page_size then
    invalid_arg (Printf.sprintf "Frame: access [%d,+%d) out of page" off len)

let get_u8 t off =
  check off 1;
  Char.code (Bytes.get t off)

let set_u8 t off v =
  check off 1;
  Bytes.set t off (Char.chr (v land 0xff))

let get_u64 t off =
  check off 8;
  Bytes.get_int64_le t off

let set_u64 t off v =
  check off 8;
  Bytes.set_int64_le t off v

let get_entry t i = get_u64 t (8 * i)
let set_entry t i v = set_u64 t (8 * i) v

(* The present bit is bit 0 of a little-endian entry: one byte read,
   no int64 boxing — what makes full-table scans cheap. *)
let entry_present t i =
  check (8 * i) 8;
  Char.code (Bytes.unsafe_get t (8 * i)) land 1 <> 0

let iter_present t f =
  for i = 0 to 511 do
    if Char.code (Bytes.unsafe_get t (8 * i)) land 1 <> 0 then
      f i (Bytes.get_int64_le t (8 * i))
  done

let read_bytes t off len =
  check off len;
  Bytes.sub t off len

let write_bytes t off b =
  check off (Bytes.length b);
  Bytes.blit b 0 t off (Bytes.length b)

let write_string t off s =
  check off (String.length s);
  Bytes.blit_string s 0 t off (String.length s)

let fill t c = Bytes.fill t 0 Addr.page_size c

let blit_to_bytes t off dst dpos len =
  check off len;
  Bytes.blit t off dst dpos len

let blit_from_bytes src spos t off len =
  check off len;
  Bytes.blit src spos t off len

let restore_image t img =
  if Bytes.length img <> Addr.page_size then invalid_arg "Frame.restore_image: not a page image";
  Bytes.blit img 0 t 0 Addr.page_size

let find_string t pat =
  let n = String.length pat in
  if n = 0 then Some 0
  else
    let limit = Addr.page_size - n in
    let rec scan i =
      if i > limit then None
      else if String.equal (Bytes.sub_string t i n) pat then Some i
      else scan (i + 1)
    in
    scan 0

let equal = Bytes.equal
let to_bytes t = Bytes.copy t

let fnv64 t =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to Addr.page_size - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get t i)));
    h := Int64.mul !h 0x100000001b3L
  done;
  !h
