(** Simulated host physical memory: a finite array of 4 KiB frames.

    Ownership here is only an allocation tag (who asked for the frame);
    access control is enforced elsewhere (page tables + hypervisor
    validation). An attacker holding a forged mapping can therefore read
    and write frames they do not own, which is the whole point.

    Beyond raw storage, this module carries the campaign engine's two
    fast-reset primitives: a dirty-frame bitmap with lazy pre-image
    capture (so a testbed resets in O(frames touched) instead of
    rebuilding everything) and a generation counter that lets cached
    translations (the software TLB) self-invalidate whenever frames are
    recycled. *)

type owner =
  | Free
  | Xen  (** owned by the hypervisor *)
  | Dom of int  (** owned by domain [id] *)

type t

exception Bad_maddr of Addr.maddr
(** Raised on access outside the installed physical memory. *)

val create : frames:int -> t
(** Fresh memory of [frames] zeroed frames, all [Free]. *)

val total_frames : t -> int

val frame : t -> Addr.mfn -> Frame.t
(** Raw frame access. The frame is conservatively marked dirty, since
    the caller receives a mutable view. Use {!frame_ro} on provably
    read-only paths. *)

val frame_ro : t -> Addr.mfn -> Frame.t
(** Like {!frame} but does not mark the frame dirty. The caller promises
    not to write through the returned view. *)

val frame_hash : t -> Addr.mfn -> int64
(** {!Frame.fnv64} of the frame via the read-only path — the VMI
    integrity primitive. Never marks the frame dirty. *)

(** {1 Allocation} *)

val alloc : t -> owner -> Addr.mfn
(** Allocate the lowest free frame, zeroed. Raises [Failure] when memory
    is exhausted and [Invalid_argument] when asked to allocate [Free]. *)

val alloc_many : t -> owner -> int -> Addr.mfn list
val free : t -> Addr.mfn -> unit
val owner : t -> Addr.mfn -> owner
val set_owner : t -> Addr.mfn -> owner -> unit

val free_frames : t -> int
(** O(1): the allocator maintains a live count. *)

val frames_owned_by : t -> owner -> Addr.mfn list
val is_valid_mfn : t -> Addr.mfn -> bool

(** {1 Dirty tracking and baseline reset} *)

val generation : t -> int
(** Bumped whenever a cached physical translation may have gone stale:
    on [free] (frame recycling) and on {!reset_to_baseline}. The
    software TLB compares this against the generation each entry was
    filled under. *)

val dirty_count : t -> int
(** Frames touched since the last {!capture_baseline} (or creation). *)

val dirty_list : t -> Addr.mfn list
(** The frames behind {!dirty_count}: everything touched since the last
    {!capture_baseline} or {!reset_to_baseline}. Monitors intersect this
    with a cached scan's frame dependencies to decide whether the cache
    is still valid. *)

val baseline_epoch : t -> int
(** Bumped on every {!capture_baseline}; unchanged by
    {!reset_to_baseline} (reset returns to the {e same} baseline).
    Caches anchored to a baseline carry this to detect re-captures. *)

val capture_baseline : t -> unit
(** Declare the current contents the baseline. Subsequent writes save a
    lazy pre-image of each frame on first touch; {!reset_to_baseline}
    replays only those. Recapturing discards the previous baseline. *)

val reset_to_baseline : t -> int
(** Restore every frame (contents and ownership) touched since
    {!capture_baseline}, in O(dirty). Returns the number of frames
    restored. Raises [Invalid_argument] if no baseline was captured. *)

(** {1 Copy-on-write forking}

    The warm-pool primitive: building a testbed once, freezing its
    memory and forking it hands every new shard (or matrix cell) a
    testbed in O(metadata) instead of a full rebuild. Frozen templates
    are immutable — every mutation path raises — so one template can be
    shared, read-only, by forks running on concurrent domains. *)

val freeze : t -> unit
(** Declare the memory an immutable fork template. Requires a captured
    baseline with no divergence ([dirty_count t = 0]); after freezing,
    any mutation raises [Invalid_argument]. Irreversible. *)

val is_frozen : t -> bool

val fork : t -> t
(** [fork template] is a new memory whose frames physically alias the
    frozen template's. The first content write to a frame detaches it
    with a private copy; frames never written are never copied, and
    {!reset_to_baseline} skips still-shared frames. The fork is born
    with an armed baseline equal to the template state (same
    {!baseline_epoch}), so it resets like a freshly checkpointed
    testbed. Raises [Invalid_argument] unless [template] is frozen. *)

val shared_frames : t -> int
(** Frames still physically shared with the fork's template (equals
    [total_frames] right after {!fork}, 0 for non-forked memories). *)

(** {1 Byte access by machine address}

    These primitives cross frame boundaries transparently. *)

val read_u8 : t -> Addr.maddr -> int
val write_u8 : t -> Addr.maddr -> int -> unit
val read_u64 : t -> Addr.maddr -> int64
val write_u64 : t -> Addr.maddr -> int64 -> unit
val read_bytes : t -> Addr.maddr -> int -> bytes
val write_bytes : t -> Addr.maddr -> bytes -> unit
val write_string : t -> Addr.maddr -> string -> unit

val read_into : t -> Addr.maddr -> bytes -> int -> int -> unit
(** [read_into t ma buf pos len] blits [len] bytes starting at [ma] into
    [buf] at [pos], one frame-sized chunk at a time. *)

val write_from : t -> Addr.maddr -> bytes -> int -> int -> unit
(** [write_from t ma buf pos len]: the bulk store counterpart. *)

(** {1 Provenance}

    An optional byte-granular taint shadow (see {!Provenance}). When
    attached, every byte-path write ({!write_u8}, {!write_u64},
    {!write_from} and friends) taints the written range with the origin
    installed by {!with_origin}; the shadow checkpoints and restores
    with {!capture_baseline}/{!reset_to_baseline} and is cleared
    per-frame whenever a frame is scrubbed. Writes that go through a
    mutable {!frame} view bypass the byte paths and must call {!taint}
    explicitly. Detached (the default), every hook below is a single
    option match. *)

val set_provenance : t -> Provenance.t option -> unit
val provenance : t -> Provenance.t option

val with_origin : t -> Provenance.origin -> (unit -> 'a) -> 'a
(** Label writes in [f]'s dynamic extent; identity when detached. *)

val taint : t -> mfn:Addr.mfn -> off:int -> len:int -> unit
(** Explicit taint for writes that bypass the byte paths
    ([Frame.set_entry] through a mutable {!frame} view). *)

val observe : t -> consumer:Provenance.consumer -> mfn:Addr.mfn -> off:int -> len:int -> unit
(** Record that [consumer] interpreted the byte range (no-op when
    detached or untainted). *)
