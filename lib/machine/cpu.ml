type ring = Hyp | Kernel | User

type t = {
  mem : Phys_mem.t;
  hardened : bool;
  mutable idt : Addr.mfn option;
  handlers : (Addr.vaddr, string) Hashtbl.t;
  tlb : Paging.Tlb.t;
}

type 'a access_result = ('a, Paging.fault) result

let create ?tracer mem ~hardened =
  let tlb = Paging.Tlb.create () in
  (match tracer with Some tr -> Paging.Tlb.set_tracer tlb tr | None -> ());
  { mem; hardened; idt = None; handlers = Hashtbl.create 31; tlb }

let mem t = t.mem
let hardened t = t.hardened
let set_idt t mfn = t.idt <- Some mfn
let idt_mfn t = t.idt
let tlb t = t.tlb
let tlb_flush_all t = Paging.Tlb.flush_all t.tlb
let tlb_invlpg t ~cr3 va = Paging.Tlb.invlpg t.tlb ~cr3 va
let tlb_stats t = Paging.Tlb.stats t.tlb

let sidt t =
  match t.idt with
  | Some mfn -> Layout.directmap_of_maddr (Addr.maddr_of_mfn mfn)
  | None -> failwith "Cpu.sidt: no IDT installed"

let register_handler t va label = Hashtbl.replace t.handlers va label
let handler_name t va = Hashtbl.find_opt t.handlers va
let handlers_dump t = Hashtbl.fold (fun va label acc -> (va, label) :: acc) t.handlers []

let handlers_restore t dump =
  Hashtbl.reset t.handlers;
  List.iter (fun (va, label) -> Hashtbl.replace t.handlers va label) dump

let fault va kind reason = Error { Paging.fault_vaddr = va; fault_kind = kind; reason }

let layout_permits access kind =
  match (access, kind) with
  | Layout.Read_write, _ -> true
  | Layout.Read_only, (Paging.Read | Paging.Exec) -> true
  | Layout.Read_only, Paging.Write -> false
  | Layout.No_access, _ -> false

let resolve t ~ring ~cr3 ~kind va =
  let va = Addr.canonical va in
  match ring with
  | Hyp -> (
      match Layout.maddr_of_directmap va with
      | Some ma when Phys_mem.is_valid_mfn t.mem (Addr.mfn_of_maddr ma) -> Ok ma
      | Some _ | None -> fault va kind (Paging.Not_present 4))
  | Kernel | User ->
      let access = Layout.guest_access ~hardened:t.hardened va in
      if not (layout_permits access kind) then
        fault va kind (Paging.Layout_denied (Layout.region_of_vaddr va))
      else
        let user = ring = User in
        Result.map
          (fun tr -> tr.Paging.t_maddr)
          (Paging.translate_cached t.tlb t.mem ~cr3 ~kind ~user va)

(* Every architectural memory access costs one [Guest_mem_op] on the
   machine's virtual clock (page-walk and TLB costs accrue separately
   inside [translate_cached]). Charged here, at the CPU, so the record
   path (guest kernel accessors) and the replay path (direct CPU reads
   for probe events) price identically. *)
let charge_mem t =
  match Paging.Tlb.tracer t.tlb with
  | None -> ()
  | Some tr -> Trace.charge tr Vclock.Guest_mem_op

let read_u64 t ~ring ~cr3 va =
  charge_mem t;
  Result.map (Phys_mem.read_u64 t.mem) (resolve t ~ring ~cr3 ~kind:Paging.Read va)

let write_u64 t ~ring ~cr3 va v =
  charge_mem t;
  Result.map (fun ma -> Phys_mem.write_u64 t.mem ma v) (resolve t ~ring ~cr3 ~kind:Paging.Write va)

(* Byte-range transfers translate page by page, so a range crossing a page
   boundary succeeds only when every page translates. *)
let rec fold_pages t ~ring ~cr3 ~kind va len f =
  if len <= 0 then Ok ()
  else
    let in_page = Addr.page_size - Addr.page_offset va in
    let chunk = min len in_page in
    match resolve t ~ring ~cr3 ~kind va with
    | Error e -> Error e
    | Ok ma ->
        f ma chunk;
        fold_pages t ~ring ~cr3 ~kind (Int64.add va (Int64.of_int chunk)) (len - chunk) f

let read_bytes t ~ring ~cr3 va len =
  charge_mem t;
  let buf = Bytes.create len in
  let pos = ref 0 in
  let copy ma chunk =
    Phys_mem.read_into t.mem ma buf !pos chunk;
    pos := !pos + chunk
  in
  Result.map (fun () -> buf) (fold_pages t ~ring ~cr3 ~kind:Paging.Read va len copy)

let write_bytes t ~ring ~cr3 va data =
  charge_mem t;
  let pos = ref 0 in
  let copy ma chunk =
    Phys_mem.write_from t.mem ma data !pos chunk;
    pos := !pos + chunk
  in
  fold_pages t ~ring ~cr3 ~kind:Paging.Write va (Bytes.length data) copy

type exception_outcome =
  | Handled of { vector : int; handler : Addr.vaddr; handler_label : string }
  | Double_fault_panic of { first_vector : int; bad_handler : int64 }
  | Triple_fault

let gate_valid t gate =
  gate.Idt.gate_present && Hashtbl.mem t.handlers gate.Idt.handler

let deliver_exception t ~vector =
  match t.idt with
  | None -> Triple_fault
  | Some idt_mfn ->
      let gate = Idt.read_gate t.mem idt_mfn vector in
      if gate_valid t gate then
        Handled
          {
            vector;
            handler = gate.Idt.handler;
            handler_label = Option.value ~default:"?" (handler_name t gate.Idt.handler);
          }
      else
        let df = Idt.read_gate t.mem idt_mfn Idt.vector_double_fault in
        if gate_valid t df then
          Double_fault_panic { first_vector = vector; bad_handler = gate.Idt.handler }
        else Triple_fault
