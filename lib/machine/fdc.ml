type config = { venom_vulnerable : bool; handler_validation : bool }

let fifo_size = 512
let memory_size = 4096
let handler_offset = fifo_size
let legitimate_handler = 0x0000_7f00_feed_face0L

type t = {
  cfg : config;
  memory : bytes;  (** device-model process memory: FIFO + neighbours *)
  mutable fifo_len : int;
}

let set_handler t v = Bytes.set_int64_le t.memory handler_offset v
let handler_value t = Bytes.get_int64_le t.memory handler_offset

let create cfg =
  let t = { cfg; memory = Bytes.make memory_size '\000'; fifo_len = 0 } in
  set_handler t legitimate_handler;
  t

let config t = t.cfg

type command = Fd_write_data of bytes | Fd_read_id | Fd_reset

let issue t = function
  | Fd_read_id -> Ok ()
  | Fd_reset ->
      t.fifo_len <- 0;
      Ok ()
  | Fd_write_data data ->
      let len = Bytes.length data in
      if t.cfg.venom_vulnerable then begin
        (* The VENOM defect: no bound on the buffered length. Data past
           the FIFO end lands in the adjacent device-model memory. *)
        let len = min len (memory_size - t.fifo_len) in
        Bytes.blit data 0 t.memory t.fifo_len len;
        t.fifo_len <- min fifo_size (t.fifo_len + len);
        Ok ()
      end
      else if t.fifo_len + len > fifo_size then Error "fdc: input exceeds FIFO (rejected)"
      else begin
        Bytes.blit data 0 t.memory t.fifo_len len;
        t.fifo_len <- t.fifo_len + len;
        Ok ()
      end

let inject_overflow t data =
  let len = min (Bytes.length data) (memory_size - fifo_size) in
  Bytes.blit data 0 t.memory fifo_size len

let handler_intact t = handler_value t = legitimate_handler
let memory_byte t i = Char.code (Bytes.get t.memory i)

let kick t =
  if handler_intact t then `Dispatched
  else if t.cfg.handler_validation then `Rejected_corrupt_handler
  else `Hijacked (handler_value t)

let reset t =
  Bytes.fill t.memory 0 memory_size '\000';
  set_handler t legitimate_handler;
  t.fifo_len <- 0
