(** The four-action arbitrary-access surface of the intrusion injector.

    Every backend exposes the same injection port — a hypercall on Xen
    PV, an ioctl on KVM — with these four actions, so test scripts and
    trace recordings port across systems. This module owns the single
    encode/decode used by both sides (the wire codes appear verbatim in
    [Injector_access] trace records). *)

type action =
  | Arbitrary_read_linear
  | Arbitrary_write_linear
  | Arbitrary_read_physical
  | Arbitrary_write_physical

val all : action list
(** In wire-code order. *)

val code : action -> int64
(** The on-wire action code (hypercall argument 3 / ioctl command). *)

val of_code : int64 -> action option
val to_string : action -> string
val is_write : action -> bool
val is_physical : action -> bool

val resolve :
  Phys_mem.t -> addr:int64 -> len:int -> physical:bool -> Addr.maddr option
(** Resolve an access target to a machine address: linear addresses
    through the host direct map, physical addresses as-is; [None] when
    the address does not resolve or any byte of [addr..addr+len-1]
    falls outside installed memory (callers map this to [EINVAL]). *)
