type owner = Free | Xen | Dom of int

(* Free frames are tracked in a bitmap, 62 frames per word (OCaml ints
   are 63-bit; the top bit stays clear so a full word is [max_int]), so
   [alloc] finds the lowest free frame with a word scan + bit scan
   instead of an O(frames) owner-array rescan. *)
let bits_per_word = 62

type baseline = {
  (* pre-images of frames dirtied since capture, copied lazily on the
     first write to each frame; [None] means the frame was a scrubbed
     (all-zero) frame at capture time, so no bytes need storing *)
  b_pre : (int, bytes option * owner) Hashtbl.t;
  b_free_count : int;
}

type t = {
  frames : Frame.t array;
  owners : owner array;
  free_bits : int array;  (* bit [b] of word [w] set iff frame [w*62+b] is Free *)
  mutable free_count : int;
  mutable next_hint : int;  (* no word below this index has a free bit *)
  dirty : Bytes.t;  (* one byte per frame: '\001' = touched since baseline *)
  scrubbed : Bytes.t;
  (* '\001' = the frame is known to hold all zeroes ([create]/[free]
     scrub; content writes clear the flag). Lets [alloc] skip the
     zero-fill and lets baseline capture/reset skip 4 KiB copies for
     frames that merely changed owner — the memory-exhaustion trials
     allocate thousands of frames they never write. *)
  mutable dirty_frames : int list;
  mutable gen : int;  (* bumped when cached translations may go stale (free/reset) *)
  mutable baseline : baseline option;
  mutable baseline_epoch : int;  (* identifies which baseline is current *)
  mutable prov : Provenance.t option;
      (* byte-granular taint shadow; detached (None) by default so the
         provenance-off cost is one option match per write path *)
  mutable frozen : bool;
      (* an immutable fork template: any mutation raises. Frozen
         memories are safe to share between domains (all reads). *)
  cow : Bytes.t;
  (* '\001' = the frame's [Frame.t] is still physically shared with the
     frozen template this memory was forked from; the first content
     write replaces it with a private copy (see [unshare]) *)
  mutable cow_count : int;
}

exception Bad_maddr of Addr.maddr

let create ~frames =
  if frames <= 0 then invalid_arg "Phys_mem.create: frames must be positive";
  let words = ((frames + bits_per_word - 1) / bits_per_word) in
  let free_bits =
    Array.init words (fun w ->
        let base = w * bits_per_word in
        let n = min bits_per_word (frames - base) in
        if n = bits_per_word then max_int else (1 lsl n) - 1)
  in
  {
    frames = Array.init frames (fun _ -> Frame.create ());
    owners = Array.make frames Free;
    free_bits;
    free_count = frames;
    next_hint = 0;
    dirty = Bytes.make frames '\000';
    scrubbed = Bytes.make frames '\001';
    dirty_frames = [];
    gen = 0;
    baseline = None;
    baseline_epoch = 0;
    prov = None;
    frozen = false;
    cow = Bytes.make frames '\000';
    cow_count = 0;
  }

let total_frames t = Array.length t.frames
let is_valid_mfn t mfn = mfn >= 0 && mfn < total_frames t
let generation t = t.gen

(* --- provenance -------------------------------------------------------- *)

let set_provenance t p =
  if t.frozen then invalid_arg "Phys_mem.set_provenance: template is frozen";
  t.prov <- p
let provenance t = t.prov

let taint t ~mfn ~off ~len =
  match t.prov with None -> () | Some p -> Provenance.taint p ~mfn ~off ~len

let observe t ~consumer ~mfn ~off ~len =
  match t.prov with None -> () | Some p -> Provenance.observe p ~consumer ~mfn ~off ~len

let with_origin t origin f =
  match t.prov with None -> f () | Some p -> Provenance.with_origin p origin f

let prov_clear_frame t mfn =
  match t.prov with None -> () | Some p -> Provenance.clear_frame p mfn

(* --- dirty tracking --------------------------------------------------- *)

(* Conservative: anything that can mutate a frame marks it dirty first,
   so the pre-image under [baseline] is taken before the write lands. *)
let mark_dirty t mfn =
  if t.frozen then invalid_arg "Phys_mem: frozen fork template is immutable";
  if Bytes.unsafe_get t.dirty mfn = '\000' then begin
    Bytes.unsafe_set t.dirty mfn '\001';
    t.dirty_frames <- mfn :: t.dirty_frames;
    match t.baseline with
    | Some b ->
        let img =
          if Bytes.unsafe_get t.scrubbed mfn = '\001' then None
          else Some (Frame.to_bytes t.frames.(mfn))
        in
        Hashtbl.replace b.b_pre mfn (img, t.owners.(mfn))
    | None -> ()
  end

(* Detach a COW-shared frame from its template before the first content
   write: the fork gets a private copy (or a fresh zero frame when the
   shared one is known-zero) and the template's bytes stay untouched —
   which is what lets many forks share one template concurrently. *)
let unshare t mfn =
  if Bytes.unsafe_get t.cow mfn = '\001' then begin
    Bytes.unsafe_set t.cow mfn '\000';
    t.cow_count <- t.cow_count - 1;
    t.frames.(mfn) <-
      (if Bytes.unsafe_get t.scrubbed mfn = '\001' then Frame.create ()
       else Frame.copy t.frames.(mfn))
  end

(* Call before any write that can make the frame's contents non-zero. *)
let mark_written t mfn =
  mark_dirty t mfn;
  unshare t mfn;
  Bytes.unsafe_set t.scrubbed mfn '\000'

let dirty_count t = List.length t.dirty_frames

let capture_baseline t =
  if t.frozen then invalid_arg "Phys_mem.capture_baseline: template is frozen";
  List.iter (fun mfn -> Bytes.set t.dirty mfn '\000') t.dirty_frames;
  t.dirty_frames <- [];
  t.baseline <- Some { b_pre = Hashtbl.create 64; b_free_count = t.free_count };
  t.baseline_epoch <- t.baseline_epoch + 1;
  match t.prov with None -> () | Some p -> Provenance.capture_baseline p

let baseline_epoch t = t.baseline_epoch

let dirty_list t = t.dirty_frames

(* --- free bitmap helpers ---------------------------------------------- *)

let set_free_bit t mfn =
  let w = mfn / bits_per_word and b = mfn mod bits_per_word in
  t.free_bits.(w) <- t.free_bits.(w) lor (1 lsl b);
  if w < t.next_hint then t.next_hint <- w

let clear_free_bit t mfn =
  let w = mfn / bits_per_word and b = mfn mod bits_per_word in
  t.free_bits.(w) <- t.free_bits.(w) land lnot (1 lsl b)

let reset_to_baseline t =
  if t.frozen then invalid_arg "Phys_mem.reset_to_baseline: template is frozen";
  match t.baseline with
  | None -> invalid_arg "Phys_mem.reset_to_baseline: no baseline captured"
  | Some b ->
      let restored = ref 0 in
      List.iter
        (fun mfn ->
          (match Hashtbl.find_opt b.b_pre mfn with
          | Some (img, o) ->
              (match img with
              | Some img ->
                  (* a frame still COW-shared with the template was never
                     content-written (writes unshare first), so its bytes
                     already equal the pre-image: skip the 4 KiB restore —
                     and never write into the shared template frame *)
                  if Bytes.unsafe_get t.cow mfn = '\000' then begin
                    Frame.restore_image t.frames.(mfn) img;
                    Bytes.unsafe_set t.scrubbed mfn '\000'
                  end
              | None ->
                  (* the frame held zeroes at capture; rescrub only if it
                     was written since *)
                  if Bytes.unsafe_get t.scrubbed mfn = '\000' then begin
                    Frame.fill t.frames.(mfn) '\000';
                    Bytes.unsafe_set t.scrubbed mfn '\001'
                  end);
              (match (t.owners.(mfn), o) with
              | Free, Free -> ()
              | Free, _ -> clear_free_bit t mfn
              | _, Free -> set_free_bit t mfn
              | _, _ -> ());
              t.owners.(mfn) <- o;
              incr restored
          | None -> ());
          Bytes.set t.dirty mfn '\000')
        t.dirty_frames;
      t.dirty_frames <- [];
      Hashtbl.reset b.b_pre;
      t.free_count <- b.b_free_count;
      (* frames may have become free below the hint again *)
      t.next_hint <- 0;
      t.gen <- t.gen + 1;
      (match t.prov with None -> () | Some p -> Provenance.reset_to_baseline p);
      !restored

(* --- copy-on-write forking --------------------------------------------
   A frozen memory is an immutable template: [fork] builds a new memory
   in O(metadata) whose frames all physically alias the template's, with
   an already-armed baseline equal to the template state. The first
   content write to any frame detaches it ([unshare]); frames the fork
   never writes are never copied, so a freshly forked testbed costs the
   metadata arrays rather than [frames] x 4 KiB — and [reset_to_baseline]
   skips still-shared frames entirely. *)

let freeze t =
  (match t.baseline with
  | None -> invalid_arg "Phys_mem.freeze: capture a baseline first"
  | Some _ -> ());
  if t.dirty_frames <> [] then
    invalid_arg "Phys_mem.freeze: template diverged from its baseline";
  t.frozen <- true

let is_frozen t = t.frozen

let fork template =
  if not template.frozen then invalid_arg "Phys_mem.fork: template must be frozen";
  let n = Array.length template.frames in
  {
    frames = Array.copy template.frames;  (* shares the Frame.t bytes *)
    owners = Array.copy template.owners;
    free_bits = Array.copy template.free_bits;
    free_count = template.free_count;
    next_hint = template.next_hint;
    dirty = Bytes.make n '\000';
    scrubbed = Bytes.copy template.scrubbed;
    dirty_frames = [];
    gen = template.gen;
    (* the fork is born exactly at the template's baseline, so its own
       baseline starts armed and empty: resets work from trial one *)
    baseline = Some { b_pre = Hashtbl.create 64; b_free_count = template.free_count };
    baseline_epoch = template.baseline_epoch;
    prov = None;
    frozen = false;
    cow = Bytes.make n '\001';
    cow_count = n;
  }

let shared_frames t = t.cow_count

(* --- ownership / allocation ------------------------------------------- *)

let frame t mfn =
  if not (is_valid_mfn t mfn) then raise (Bad_maddr (Addr.maddr_of_mfn mfn));
  mark_written t mfn;
  t.frames.(mfn)

let frame_ro t mfn =
  if not (is_valid_mfn t mfn) then raise (Bad_maddr (Addr.maddr_of_mfn mfn));
  t.frames.(mfn)

let frame_hash t mfn = Frame.fnv64 (frame_ro t mfn)

let owner t mfn =
  if not (is_valid_mfn t mfn) then raise (Bad_maddr (Addr.maddr_of_mfn mfn));
  t.owners.(mfn)

let set_owner t mfn o =
  if not (is_valid_mfn t mfn) then raise (Bad_maddr (Addr.maddr_of_mfn mfn));
  mark_dirty t mfn;
  (match (t.owners.(mfn), o) with
  | Free, Free -> ()
  | Free, _ ->
      clear_free_bit t mfn;
      t.free_count <- t.free_count - 1
  | _, Free ->
      set_free_bit t mfn;
      t.free_count <- t.free_count + 1
  | _, _ -> ());
  t.owners.(mfn) <- o

let lowest_bit word =
  let rec go b = if word land (1 lsl b) <> 0 then b else go (b + 1) in
  go 0

let alloc t o =
  if o = Free then invalid_arg "Phys_mem.alloc: cannot allocate to Free";
  let words = Array.length t.free_bits in
  let w = ref t.next_hint in
  while !w < words && t.free_bits.(!w) = 0 do incr w done;
  if !w >= words then failwith "Phys_mem.alloc: out of physical memory"
  else begin
    t.next_hint <- !w;
    let mfn = (!w * bits_per_word) + lowest_bit t.free_bits.(!w) in
    mark_dirty t mfn;
    clear_free_bit t mfn;
    t.owners.(mfn) <- o;
    t.free_count <- t.free_count - 1;
    (* a scrubbed frame is already the zeroed page [alloc] promises *)
    if Bytes.unsafe_get t.scrubbed mfn = '\000' then begin
      (if Bytes.unsafe_get t.cow mfn = '\001' then begin
         (* shared with the template: swap in a fresh zero frame rather
            than scrubbing (and thus corrupting) the shared bytes *)
         Bytes.unsafe_set t.cow mfn '\000';
         t.cow_count <- t.cow_count - 1;
         t.frames.(mfn) <- Frame.create ()
       end
       else Frame.fill t.frames.(mfn) '\000');
      Bytes.unsafe_set t.scrubbed mfn '\001';
      prov_clear_frame t mfn
    end;
    mfn
  end

let alloc_many t o n = List.init n (fun _ -> alloc t o)

let free t mfn =
  if not (is_valid_mfn t mfn) then raise (Bad_maddr (Addr.maddr_of_mfn mfn));
  mark_dirty t mfn;
  if t.owners.(mfn) <> Free then begin
    set_free_bit t mfn;
    t.free_count <- t.free_count + 1
  end;
  t.owners.(mfn) <- Free;
  (* scrub on free, unless the frame is already known-zero *)
  if Bytes.unsafe_get t.scrubbed mfn = '\000' then begin
    (if Bytes.unsafe_get t.cow mfn = '\001' then begin
       Bytes.unsafe_set t.cow mfn '\000';
       t.cow_count <- t.cow_count - 1;
       t.frames.(mfn) <- Frame.create ()
     end
     else Frame.fill t.frames.(mfn) '\000');
    Bytes.unsafe_set t.scrubbed mfn '\001';
    prov_clear_frame t mfn
  end;
  (* a reused frame must never hit a stale cached translation *)
  t.gen <- t.gen + 1

let free_frames t = t.free_count

let frames_owned_by t o =
  let acc = ref [] in
  for i = total_frames t - 1 downto 0 do
    if t.owners.(i) = o then acc := i :: !acc
  done;
  !acc

let split t ma len =
  let mfn = Addr.mfn_of_maddr ma in
  if not (is_valid_mfn t mfn) then raise (Bad_maddr ma);
  let off = Addr.page_offset ma in
  if off + len > Addr.page_size then raise (Bad_maddr ma) else (mfn, off)

let read_u8 t ma =
  let mfn, off = split t ma 1 in
  Frame.get_u8 t.frames.(mfn) off

let write_u8 t ma v =
  let mfn, off = split t ma 1 in
  mark_written t mfn;
  Frame.set_u8 t.frames.(mfn) off v;
  match t.prov with None -> () | Some p -> Provenance.taint p ~mfn ~off ~len:1

(* 64-bit accesses are required to be contained in one frame, as natural
   alignment guarantees on real hardware. *)
let read_u64 t ma =
  let mfn, off = split t ma 8 in
  Frame.get_u64 t.frames.(mfn) off

let write_u64 t ma v =
  let mfn, off = split t ma 8 in
  mark_written t mfn;
  Frame.set_u64 t.frames.(mfn) off v;
  match t.prov with None -> () | Some p -> Provenance.taint p ~mfn ~off ~len:8

(* --- bulk transfers ---------------------------------------------------
   Blit frame-sized chunks instead of going byte by byte; a range that
   runs off the end of memory raises [Bad_maddr] at the first invalid
   frame boundary, exactly where the per-byte loop used to stop. *)

let read_into t ma buf pos len =
  let rec go ma pos len =
    if len > 0 then begin
      let mfn = Addr.mfn_of_maddr ma in
      if not (is_valid_mfn t mfn) then raise (Bad_maddr ma);
      let off = Addr.page_offset ma in
      let chunk = min len (Addr.page_size - off) in
      Frame.blit_to_bytes t.frames.(mfn) off buf pos chunk;
      go (Int64.add ma (Int64.of_int chunk)) (pos + chunk) (len - chunk)
    end
  in
  go ma pos len

let write_from t ma buf pos len =
  let rec go ma pos len =
    if len > 0 then begin
      let mfn = Addr.mfn_of_maddr ma in
      if not (is_valid_mfn t mfn) then raise (Bad_maddr ma);
      let off = Addr.page_offset ma in
      let chunk = min len (Addr.page_size - off) in
      mark_written t mfn;
      Frame.blit_from_bytes buf pos t.frames.(mfn) off chunk;
      (match t.prov with
      | None -> ()
      | Some p -> Provenance.taint p ~mfn ~off ~len:chunk);
      go (Int64.add ma (Int64.of_int chunk)) (pos + chunk) (len - chunk)
    end
  in
  go ma pos len

let read_bytes t ma len =
  let buf = Bytes.create len in
  read_into t ma buf 0 len;
  buf

let write_bytes t ma b = write_from t ma b 0 (Bytes.length b)
let write_string t ma s = write_bytes t ma (Bytes.of_string s)
