type gate = { handler : Addr.vaddr; selector : int; gate_present : bool }

let vector_page_fault = 14
let vector_double_fault = 8
let vector_general_protection = 13
let xen_code_selector = 0xe008
let gate_size = 16

let check_vector v = if v < 0 || v > 255 then invalid_arg "Idt: vector out of range"

let handler_offset v =
  check_vector v;
  v * gate_size

let init mem mfn = Frame.fill (Phys_mem.frame mem mfn) '\000'

let present_bit = 0x8000L

let write_gate mem mfn v { handler; selector; gate_present } =
  check_vector v;
  let frame = Phys_mem.frame mem mfn in
  Frame.set_u64 frame (handler_offset v) handler;
  let word =
    Int64.logor (Int64.of_int (selector land 0xffff)) (if gate_present then present_bit else 0L)
  in
  Frame.set_u64 frame (handler_offset v + 8) word;
  (* the writes above bypass the byte paths, so taint explicitly *)
  Phys_mem.taint mem ~mfn ~off:(handler_offset v) ~len:gate_size

let read_gate mem mfn v =
  check_vector v;
  Phys_mem.observe mem ~consumer:Provenance.Idt_gate ~mfn ~off:(handler_offset v) ~len:gate_size;
  let frame = Phys_mem.frame_ro mem mfn in
  let handler = Frame.get_u64 frame (handler_offset v) in
  let word = Frame.get_u64 frame (handler_offset v + 8) in
  {
    handler;
    selector = Int64.to_int (Int64.logand word 0xffffL);
    gate_present = Int64.logand word present_bit <> 0L;
  }
