(** CPU-level memory access and exception delivery.

    Three privilege contexts exist:
    - [Hyp]: hypervisor code; resolves addresses through Xen's direct
      map, bypassing guest page tables (this is the privilege the
      intrusion injector executes with);
    - [Kernel]: PV guest kernel; walks the guest's CR3 with supervisor
      semantics, filtered by the address-space layout;
    - [User]: guest user space; additionally requires the US flag.

    Exception delivery reads gates from the in-memory IDT. A corrupted
    gate makes the first fault escalate to a double fault; Xen's double
    fault handler panics — reproducing the XSA-212-crash violation. *)

type ring = Hyp | Kernel | User

type t

val create : ?tracer:Trace.t -> Phys_mem.t -> hardened:bool -> t
(** [tracer] is wired into the software TLB so flushes and invlpgs
    are counted, and recorded while the ring is enabled. *)

val mem : t -> Phys_mem.t
val hardened : t -> bool
val set_idt : t -> Addr.mfn -> unit
val idt_mfn : t -> Addr.mfn option

val sidt : t -> Addr.vaddr
(** Linear (direct-map) address of the IDT, as the unprivileged [sidt]
    instruction leaks it. Raises [Failure] when no IDT is installed. *)

val register_handler : t -> Addr.vaddr -> string -> unit
(** Declare a handler address valid (Xen installs its entry points). *)

val handler_name : t -> Addr.vaddr -> string option

val handlers_dump : t -> (Addr.vaddr * string) list
(** The registered handler table, for checkpointing. *)

val handlers_restore : t -> (Addr.vaddr * string) list -> unit

(** {1 Software TLB}

    Guest-privilege translations ([Kernel]/[User] rings) go through a
    per-CPU walk cache; [Hyp] accesses use the direct map and never
    touch it. The MMU code invalidates through these hooks exactly where
    real Xen issues [invlpg]/CR3 reloads. *)

val tlb : t -> Paging.Tlb.t
val tlb_flush_all : t -> unit
val tlb_invlpg : t -> cr3:Addr.mfn -> Addr.vaddr -> unit
val tlb_stats : t -> Paging.Tlb.stats

(** {1 Memory access} *)

type 'a access_result = ('a, Paging.fault) result

val read_u64 : t -> ring:ring -> cr3:Addr.mfn -> Addr.vaddr -> int64 access_result
val write_u64 : t -> ring:ring -> cr3:Addr.mfn -> Addr.vaddr -> int64 -> unit access_result
val read_bytes : t -> ring:ring -> cr3:Addr.mfn -> Addr.vaddr -> int -> bytes access_result
val write_bytes : t -> ring:ring -> cr3:Addr.mfn -> Addr.vaddr -> bytes -> unit access_result

val resolve :
  t -> ring:ring -> cr3:Addr.mfn -> kind:Paging.access_kind -> Addr.vaddr ->
  Addr.maddr access_result
(** Translation only, no data transfer. *)

(** {1 Exceptions} *)

type exception_outcome =
  | Handled of { vector : int; handler : Addr.vaddr; handler_label : string }
  | Double_fault_panic of { first_vector : int; bad_handler : int64 }
      (** the first handler was corrupt; Xen's double-fault handler ran
          and the hypervisor must panic *)
  | Triple_fault
      (** both the first and the double-fault gates were corrupt *)

val deliver_exception : t -> vector:int -> exception_outcome
