(** A QEMU-style device model with an emulated floppy disk controller —
    the paper's §III illustration of intrusion injection beyond the
    hypervisor core (XSA-133 / VENOM).

    The FDC keeps a fixed-size FIFO inside the device-model process
    memory; immediately after it lives the controller's request-handler
    pointer. The VENOM defect is a missing bound on buffered input: an
    over-long write overflows the FIFO and corrupts the adjacent
    memory. An intrusion injector reproduces the same erroneous state
    directly ("overwriting the FDC request handler method", §III-B)
    without needing the vulnerable code path. *)

type config = {
  venom_vulnerable : bool;  (** the CVE-2015-3456 bound check is absent *)
  handler_validation : bool;
      (** a hardened device model validates the handler pointer before
          dispatching (the mitigation whose effectiveness intrusion
          injection lets one assess) *)
}

type t

val fifo_size : int
val memory_size : int
val handler_offset : int
(** Byte offset of the request-handler pointer — right after the FIFO. *)

val legitimate_handler : int64

val create : config -> t
val config : t -> config

(** {1 The guest-facing command interface} *)

type command =
  | Fd_write_data of bytes  (** buffer data into the FIFO *)
  | Fd_read_id
  | Fd_reset

val issue : t -> command -> (unit, string) result
(** On a vulnerable build, [Fd_write_data] longer than the FIFO
    overflows into adjacent memory. Fixed builds refuse it. *)

(** {1 The injector hook} *)

val inject_overflow : t -> bytes -> unit
(** Write the erroneous state directly: bytes beyond the FIFO end,
    exactly as a successful VENOM exploitation leaves them. *)

(** {1 Inspection and dispatch} *)

val handler_value : t -> int64
val handler_intact : t -> bool
val memory_byte : t -> int -> int

val kick : t -> [ `Dispatched | `Hijacked of int64 | `Rejected_corrupt_handler ]
(** Process pending requests through the handler pointer: a corrupted
    pointer means attacker code execution — unless handler validation
    catches it (the erroneous state is handled). *)

val reset : t -> unit
