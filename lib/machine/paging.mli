(** The 4-level page walker.

    The walker decodes page-table bytes exactly as the MMU would: it
    never consults hypervisor bookkeeping, so a forged entry written by
    an exploit (or by the intrusion injector) translates just like a
    legitimate one. *)

type access_kind = Read | Write | Exec

type fault_reason =
  | Not_present of int  (** walk stopped at this level (4..1) *)
  | Write_to_readonly
  | User_access_to_supervisor
  | Nx_violation
  | Non_canonical
  | Layout_denied of Layout.region
      (** guest-privilege access into a region the hypervisor keeps
          unreachable (models the hardened address space) *)
  | Bad_physical of Addr.mfn
      (** the walk reached a present leaf whose frame lies outside
          installed RAM — a forged PTE; real hardware aborts the bus
          access, so the walk faults instead of the simulator *)

type fault = { fault_vaddr : Addr.vaddr; fault_kind : access_kind; reason : fault_reason }

type step = {
  level : int;  (** 4..1 *)
  table_mfn : Addr.mfn;  (** page-table page holding the entry *)
  index : int;  (** entry index within the table *)
  entry : Pte.t;
}

type translation = {
  t_maddr : Addr.maddr;
  writable : bool;  (** AND of RW along the path *)
  user : bool;  (** AND of US along the path *)
  executable : bool;
  superpage : bool;  (** terminated by a PSE entry at L2 *)
  path : step list;  (** outermost (L4) first *)
}

val walk :
  Phys_mem.t -> cr3:Addr.mfn -> Addr.vaddr -> (translation, fault_reason) result
(** Pure translation: decode entries from physical memory, no permission
    check beyond presence. An L2 entry with [Pse] terminates the walk as
    a 2 MiB superpage whose base frame is the entry's MFN rounded down to
    a 512-frame boundary (hardware alignment). *)

val walk_path : Phys_mem.t -> cr3:Addr.mfn -> Addr.vaddr -> step list
(** The steps actually decoded, even when the walk faults — the audit
    primitive used to certify injected erroneous states. *)

val translate :
  Phys_mem.t ->
  cr3:Addr.mfn ->
  kind:access_kind ->
  user:bool ->
  Addr.vaddr ->
  (translation, fault) result
(** Full check: canonicality, walk, then RW/US/NX permissions. [user]
    selects guest-privilege semantics. *)

val pp_fault : Format.formatter -> fault -> unit
val pp_fault_reason : Format.formatter -> fault_reason -> unit

(** {1 Software TLB}

    A walk cache keyed by [(cr3, virtual page number)], mirroring what
    the hardware TLB keeps per address space. The model is faithful in
    both directions: a hit returns exactly what a fresh walk would (and
    auto-invalidates when {!Phys_mem.generation} moves, i.e. when frames
    are recycled), while a PTE rewritten {e without} the architectural
    invalidation ([invlpg] / CR3 reload) keeps serving the stale
    translation — real XSA exploits interact with exactly that window. *)

module Tlb : sig
  type t

  type stats = { hits : int; misses : int; flushes : int; invlpgs : int }

  val create : ?capacity:int -> unit -> t
  (** Default capacity 4096 cached pages; on overflow the whole cache is
      flushed (a coarse but faithful capacity eviction). *)

  val set_tracer : t -> Trace.t -> unit
  (** Report flushes and invlpgs to a tracer (counters always, ring
      records while it is recording), and charge TLB/page-walk virtual
      time against its clock. *)

  val tracer : t -> Trace.t option
  (** The tracer installed by {!set_tracer}, if any — the CPU charges
      its memory-access costs through the same handle. *)

  val flush_all : t -> unit
  (** CR3 load / global flush. *)

  val invlpg : t -> cr3:Addr.mfn -> Addr.vaddr -> unit
  (** Drop one page's cached translation in address space [cr3]. *)

  val stats : t -> stats
  val size : t -> int
end

val walk_cached :
  Tlb.t -> Phys_mem.t -> cr3:Addr.mfn -> Addr.vaddr -> (translation, fault_reason) result
(** {!walk} through the cache. Faults are never cached. *)

val translate_cached :
  Tlb.t ->
  Phys_mem.t ->
  cr3:Addr.mfn ->
  kind:access_kind ->
  user:bool ->
  Addr.vaddr ->
  (translation, fault) result
(** {!translate} through the cache. Permission checks always rerun on
    the cached bits, so a hit faults exactly when a fresh walk would. *)
