(** A single 4 KiB frame of simulated physical memory.

    Frames hold raw bytes. Page-table pages, the IDT, guest kernel pages
    and attacker payloads all live in frames, so forged data is
    indistinguishable from legitimate data — exactly the property the
    exploits rely on. *)

type t

val create : unit -> t
(** A zero-filled frame. *)

val copy : t -> t

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit

val get_u64 : t -> int -> int64
(** Little-endian 64-bit load at byte offset [off] (0 <= off <= 4088). *)

val set_u64 : t -> int -> int64 -> unit

val get_entry : t -> int -> int64
(** Read page-table entry [i] (0..511): [get_u64 t (8*i)]. *)

val set_entry : t -> int -> int64 -> unit

val entry_present : t -> int -> bool
(** [entry_present t i] = [Pte.is_present (get_entry t i)], via a single
    byte load — the fast path for scanning mostly-empty tables. *)

val iter_present : t -> (int -> int64 -> unit) -> unit
(** [iter_present t f] calls [f i entry] for every present page-table
    entry, probing the present bit with byte loads so absent slots (the
    bulk of most tables) cost no decode and no call. *)

val read_bytes : t -> int -> int -> bytes
(** [read_bytes t off len] copies [len] bytes starting at [off]. *)

val write_bytes : t -> int -> bytes -> unit
val write_string : t -> int -> string -> unit
val fill : t -> char -> unit

val blit_to_bytes : t -> int -> bytes -> int -> int -> unit
(** [blit_to_bytes t off dst dpos len] copies frame bytes out without an
    intermediate allocation (the bulk read path). *)

val blit_from_bytes : bytes -> int -> t -> int -> int -> unit
(** [blit_from_bytes src spos t off len] copies into the frame (the bulk
    write path). *)

val restore_image : t -> bytes -> unit
(** Overwrite the whole frame from a page-sized image captured with
    [to_bytes] (the O(dirty) reset path). *)

val find_string : t -> string -> int option
(** Offset of the first occurrence of a byte pattern, if any. *)

val equal : t -> t -> bool
val to_bytes : t -> bytes

val fnv64 : t -> int64
(** FNV-1a (64-bit) over the whole page — the integrity-baseline hash.
    Pure read: never observes or perturbs dirty tracking. *)
