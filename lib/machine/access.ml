(* The four-action arbitrary-access surface shared by every backend's
   injection port. See access.mli. *)

type action =
  | Arbitrary_read_linear
  | Arbitrary_write_linear
  | Arbitrary_read_physical
  | Arbitrary_write_physical

let all =
  [
    Arbitrary_read_linear;
    Arbitrary_write_linear;
    Arbitrary_read_physical;
    Arbitrary_write_physical;
  ]

let code = function
  | Arbitrary_read_linear -> 0L
  | Arbitrary_write_linear -> 1L
  | Arbitrary_read_physical -> 2L
  | Arbitrary_write_physical -> 3L

let of_code = function
  | 0L -> Some Arbitrary_read_linear
  | 1L -> Some Arbitrary_write_linear
  | 2L -> Some Arbitrary_read_physical
  | 3L -> Some Arbitrary_write_physical
  | _ -> None

let to_string = function
  | Arbitrary_read_linear -> "ARBITRARY_READ_LINEAR"
  | Arbitrary_write_linear -> "ARBITRARY_WRITE_LINEAR"
  | Arbitrary_read_physical -> "ARBITRARY_READ_PHYSICAL"
  | Arbitrary_write_physical -> "ARBITRARY_WRITE_PHYSICAL"

let is_write = function
  | Arbitrary_write_linear | Arbitrary_write_physical -> true
  | Arbitrary_read_linear | Arbitrary_read_physical -> false

let is_physical = function
  | Arbitrary_read_physical | Arbitrary_write_physical -> true
  | Arbitrary_read_linear | Arbitrary_write_linear -> false

(* Resolve the target to a machine address. Linear addresses must
   already be mapped in the host (its direct map); physical addresses
   are used as-is — in this machine model both go through the same
   direct map, mirroring the map_domain_page path of the real
   prototype. *)
let resolve mem ~addr ~len ~physical =
  let ma = if physical then Some addr else Layout.maddr_of_directmap addr in
  match ma with
  | None -> None
  | Some ma ->
      let last = Int64.add ma (Int64.of_int (max 0 (len - 1))) in
      let mfn_ok a = Phys_mem.is_valid_mfn mem (Addr.mfn_of_maddr a) in
      if len <= 0 || (not (mfn_ok ma)) || not (mfn_ok last) then None else Some ma
