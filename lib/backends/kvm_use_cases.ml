(* The KVM campaign's use cases: the same conceptual intrusion model as
   the Xen IDT study — corrupt a descriptor-table handler — pointed at
   the two places KVM's architecture puts the equivalent structures.
   The VMCS is host state (corruption fails the next VM entry and KVM
   kills the VM); the guest's IDT is guest state (corruption panics
   that guest only). Either way the host survives — the blast-radius
   contrast the cross-backend matrix measures. *)

module C = Campaign.Make (Backend_kvm)

let corrupt_value = 0xDEAD_0DE5_C0DEL

let im_vmcs =
  Intrusion_model.make ~name:"IM-corrupt-vm-control-structure"
    ~source:Intrusion_model.Device_driver
    ~interface:(Intrusion_model.Hypercall_interface "arbitrary_access (ioctl)")
    ~target:Intrusion_model.Device_model
    ~functionality:Abusive_functionality.Write_unauthorized_arbitrary_memory
    ~representative_of:[ "CVE-2021-29657" ]
    "corrupt the per-VM control structure (VMCS) held in host memory"

let im_guest_idt =
  Intrusion_model.make ~name:"IM-corrupt-descriptor-handler"
    ~source:Intrusion_model.Device_driver
    ~interface:(Intrusion_model.Hypercall_interface "arbitrary_access (ioctl)")
    ~target:Intrusion_model.Interrupt_virtualization
    ~functionality:Abusive_functionality.Write_unauthorized_arbitrary_memory
    ~representative_of:[ "XSA-148 (Xen analogue)" ]
    "corrupt an interrupt descriptor handler of a running guest"

let rc_of = function Ok () -> 0 | Error e -> Errno.to_return_code e

(* --- KVM-VMCS: the host-critical structure ------------------------------ *)

let vmcs_target (t : Backend_kvm.t) =
  Int64.add (Addr.maddr_of_mfn t.Backend_kvm.victim.Kvm.vmcs_mfn) 8L

let vmcs_states (t : Backend_kvm.t) =
  [ Backend_kvm.Vmcs_entry_tampered t.Backend_kvm.victim.Kvm.vm_id ]

let vmcs_uc =
  {
    C.uc_name = "KVM-VMCS";
    uc_xsa = "-";
    uc_description =
      "overwrite the victim's VMCS entry handler; the next VM entry fails and KVM kills the VM";
    im = im_vmcs;
    run_exploit =
      (fun t ->
        (* a compromised device model scribbling over host memory *)
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 corrupt_value;
        let r = Backend_kvm.host_write t ~addr:(vmcs_target t) b in
        {
          C.transcript = [ "device model: overwrote VMCS entry handler" ];
          states = vmcs_states t;
          rc = Some (rc_of r);
        });
    run_injection =
      (fun t ->
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 corrupt_value;
        let r =
          Backend_kvm.inject_write t ~addr:(vmcs_target t) Access.Arbitrary_write_physical b
        in
        {
          C.transcript = [ "ioctl arbitrary_access: overwrote VMCS entry handler" ];
          states = vmcs_states t;
          rc = Some (rc_of r);
        });
  }

(* --- KVM-IDT: guest state ----------------------------------------------- *)

let idt_gate_target (t : Backend_kvm.t) =
  let vm = t.Backend_kvm.victim in
  match Kvm.gpa_to_maddr t.Backend_kvm.kvm vm vm.Kvm.idt_gpa with
  | Ok ma -> Int64.add ma (Int64.of_int (Idt.handler_offset Idt.vector_page_fault))
  | Error _ -> invalid_arg "kvm_use_cases: guest IDT unmapped"

let idt_states (t : Backend_kvm.t) =
  [
    Backend_kvm.Guest_idt_gate_corrupted
      (t.Backend_kvm.victim.Kvm.vm_id, Idt.vector_page_fault);
  ]

let idt_uc =
  {
    C.uc_name = "KVM-IDT";
    uc_xsa = "-";
    uc_description =
      "corrupt the page-fault gate of the victim's in-guest IDT, then deliver a fault: the \
       guest kernel panics, the host and the bystander VM survive";
    im = im_guest_idt;
    run_exploit =
      (fun t ->
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 corrupt_value;
        let r = Backend_kvm.host_write t ~addr:(idt_gate_target t) b in
        ignore
          (Backend_kvm.deliver_fault t t.Backend_kvm.victim ~vector:Idt.vector_page_fault);
        {
          C.transcript = [ "device model: corrupted guest PF gate; fault delivered" ];
          states = idt_states t;
          rc = Some (rc_of r);
        });
    run_injection =
      (fun t ->
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 corrupt_value;
        let r =
          Backend_kvm.inject_write t ~addr:(idt_gate_target t) Access.Arbitrary_write_physical b
        in
        ignore
          (Backend_kvm.deliver_fault t t.Backend_kvm.victim ~vector:Idt.vector_page_fault);
        {
          C.transcript = [ "ioctl arbitrary_access: corrupted guest PF gate; fault delivered" ];
          states = idt_states t;
          rc = Some (rc_of r);
        });
  }

let use_cases = [ vmcs_uc; idt_uc ]
