(* The backend registry: every substrate the stack can drive, plus the
   KVM instantiations of the engine functors. [Make] is applicative, so
   these module aliases denote the same types wherever they are
   spelled — [Kvm_campaign.result_row] here is
   [Campaign.Make(Backend_kvm).result_row] everywhere. *)

module Kvm_campaign = Campaign.Make (Backend_kvm)
module Kvm_trace = Trace_driver.Make (Backend_kvm)
module Kvm_vmi = Vmi_driver.Make (Backend_kvm)
module Kvm_attribution = Attribution.Make (Backend_kvm)

let known = [ ("xen", Substrate_xen.description); ("kvm", Backend_kvm.description) ]

let is_known name = List.mem_assoc name known
