(* The KVM backend's scenario capability table and dispatch. The
   contrast with the Xen table is the gating the paper's §V calls for:
   no guest-visible hypercalls here — the port is an ioctl and the
   compromised-device-model write ([host-w64]) exists instead — and a
   scenario naming Xen page-table symbols fails the load-time check
   rather than executing nonsense. *)

module B = Backend_kvm

let caps =
  {
    Scn_check.cap_backend = Scn_bytecode.Kvm_only;
    cap_env = [ ("vmcs-target", (0L, 0L)); ("kvm-idt-gate", (0L, 255L)); ("victim-vm", (0L, 0L)) ];
    cap_hypercalls = [];
    cap_guest_ops = [ ("kvm-deliver-fault", 1) ];
    cap_payloads = [];
    cap_states = [ ("vmcs-tampered", 1); ("kvm-idt-corrupted", 2) ];
    cap_host_write = true;
    cap_actions = Access.all;
  }

let env (t : Backend_kvm.t) name arg =
  match name with
  | "vmcs-target" -> Ok (Kvm_use_cases.vmcs_target t)
  | "kvm-idt-gate" -> (
      let vm = t.Backend_kvm.victim in
      match Kvm.gpa_to_maddr t.Backend_kvm.kvm vm vm.Kvm.idt_gpa with
      | Ok ma -> Ok (Int64.add ma (Int64.of_int (Idt.handler_offset (Int64.to_int arg))))
      | Error _ -> Error "guest IDT unmapped")
  | "victim-vm" -> Ok (Int64.of_int t.Backend_kvm.victim.Kvm.vm_id)
  | _ -> Error "unknown environment symbol"

let hypercall _t name _args =
  Error (Printf.sprintf "no guest hypercall %S on the kvm backend" name)

let guest_op (t : Backend_kvm.t) name args =
  match (name, args) with
  | "kvm-deliver-fault", [| vector |] ->
      ignore (Backend_kvm.deliver_fault t t.Backend_kvm.victim ~vector:(Int64.to_int vector));
      Ok ()
  | _ -> Error (Printf.sprintf "unknown guest op %S" name)

let payload _t ~say:_ name _args = Error (Printf.sprintf "unknown payload %S" name)

let state _t name args =
  match (name, args) with
  | "vmcs-tampered", [| vm |] -> Ok (Backend_kvm.Vmcs_entry_tampered (Int64.to_int vm))
  | "kvm-idt-corrupted", [| vm; vector |] ->
      Ok (Backend_kvm.Guest_idt_gate_corrupted (Int64.to_int vm, Int64.to_int vector))
  | _ -> Error (Printf.sprintf "unknown erroneous state %S" name)

let host_write (t : Backend_kvm.t) ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Backend_kvm.host_write t ~addr b
