(* The KVM substrate: the hardware-assisted "hypervisor B" of §IX-A,
   promoted to a full {!Substrate.S} backend. The injection port is an
   ioctl on the host ({!Kvm.arbitrary_access}) rather than a hypercall
   from a guest, so boundary crossings are recorded as [Backend_op]
   trace events; everything downstream (campaign, record/replay, VMI)
   is the same functor-generated code that drives Xen. *)

let name = "kvm"
let description = "KVM-style hardware-assisted host (EPT isolation, per-VM VMCS)"

type config = Stock

let configs = [ Stock ]
let default_config = Stock
let rq1_config = Stock
let config_to_string Stock = "stock"
let config_of_string = function "stock" -> Some Stock | _ -> None
let config_label Stock = "KVM stock"
let config_heading = "KVM"
let port_heading = "Ioctls"

type t = {
  kvm : Kvm.t;
  tr : Trace.t;
  victim : Kvm.vm;
  bystander : Kvm.vm;
  extras : Kvm.vm list;  (* guest domains beyond the standard pair *)
  mutable injector_on : bool;
  mutable load : Load_mix.t;
  ck : Kvm.checkpoint;
  ck_counters : Trace.Counters.snapshot;
  ck_vts : int64;  (* virtual clock at the reset checkpoint *)
}

(* Extra guests follow the Xen testbed's naming scheme: guest05, ... *)
let extra_name i = Printf.sprintf "guest%02d" (5 + (2 * i))

(* Mirrors Testbed.create: a host plus its standard guest population,
   with the reset checkpoint captured at the end of boot. *)
let create ?(frames = 2048) ?(domains = 2) ?(load = Load_mix.none) Stock =
  if domains < 2 then invalid_arg "Backend_kvm.create: need at least victim + bystander";
  let kvm = Kvm.boot ~frames in
  let victim = Kvm.create_vm kvm ~name:"guest03" ~pages:64 in
  let bystander = Kvm.create_vm kvm ~name:"guest01" ~pages:64 in
  let extras =
    List.init (domains - 2) (fun i -> Kvm.create_vm kvm ~name:(extra_name i) ~pages:64)
  in
  let tr = Trace.create () in
  let ck = Kvm.checkpoint kvm in
  let ck_counters = Trace.Counters.snapshot (Trace.counters tr) in
  let ck_vts = Trace.vts tr in
  { kvm; tr; victim; bystander; extras; injector_on = false; load; ck; ck_counters; ck_vts }

(* The warm pool, mirroring {!Testbed.create_pooled}: one frozen
   template per (frame count, domain count), forked copy-on-write per
   worker. The load mix is runtime-only, installed on the fork. *)
let pool_lock = Mutex.create ()
let pool : (int * int, t) Hashtbl.t = Hashtbl.create 4

let template frames domains =
  Mutex.lock pool_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock pool_lock) @@ fun () ->
  match Hashtbl.find_opt pool (frames, domains) with
  | Some tmpl -> tmpl
  | None ->
      let tmpl = create ~frames ~domains Stock in
      Phys_mem.freeze (Kvm.mem tmpl.kvm);
      Hashtbl.replace pool (frames, domains) tmpl;
      tmpl

let create_pooled ?(frames = 2048) ?(domains = 2) ?(load = Load_mix.none) Stock =
  let tmpl = template frames domains in
  let kvm, ck = Kvm.fork tmpl.kvm tmpl.ck in
  let tr = Trace.create () in
  (* the fork starts at the template's checkpointed virtual time under
     the template's cost model, exactly like Hv.fork on Xen *)
  Vclock.set (Trace.vclock tr) tmpl.ck_vts;
  Vclock.set_model (Trace.vclock tr) (Vclock.model (Trace.vclock tmpl.tr));
  Vclock.set_attached (Trace.vclock tr) (Vclock.attached (Trace.vclock tmpl.tr));
  let vm_of old =
    List.find (fun vm -> vm.Kvm.vm_id = old.Kvm.vm_id) (Kvm.vms kvm)
  in
  {
    kvm;
    tr;
    victim = vm_of tmpl.victim;
    bystander = vm_of tmpl.bystander;
    extras = List.map vm_of tmpl.extras;
    injector_on = false;
    load;
    ck;
    ck_counters = Trace.Counters.snapshot (Trace.counters tr);
    ck_vts = tmpl.ck_vts;
  }

let domains t =
  List.map (fun vm -> vm.Kvm.vm_name) (t.victim :: t.bystander :: t.extras)

let reset t =
  ignore (Kvm.restore t.kvm t.ck);
  t.injector_on <- false;
  (* Hv.restore rolls the Xen counters and virtual clock back with the
     checkpoint; match that so per-trial telemetry deltas stay
     comparable. *)
  Trace.Counters.restore (Trace.counters t.tr) t.ck_counters;
  Vclock.set (Trace.vclock t.tr) t.ck_vts

let trace t = t.tr
let vclock t = Trace.vts t.tr
let set_cost_model t m = Vclock.set_model (Trace.vclock t.tr) m
let set_vclock_attached t on = Vclock.set_attached (Trace.vclock t.tr) on
let console t = Kvm.console t.kvm

let enable_provenance t =
  let mem = Kvm.mem t.kvm in
  if Phys_mem.provenance mem = None then
    Phys_mem.set_provenance mem (Some (Provenance.create ~tr:t.tr ()))

let provenance t = Phys_mem.provenance (Kvm.mem t.kvm)
let install_injector t = t.injector_on <- true
let injector_installed t = t.injector_on

(* Backend_op discriminants: this backend's replayable boundary ops. *)
let op_ioctl = 0 (* arg1 = addr, arg2 = action code, data = payload/buffer *)
let op_vm_entry = 1 (* arg1 = vm id *)
let op_fault = 2 (* arg1 = vm id, arg2 = vector *)
let op_host_write = 3 (* arg1 = addr, data = payload (compromised device model) *)

let bracketed t ev f =
  if Trace.recording t.tr && Trace.top_level t.tr then Trace.emit t.tr ev;
  Trace.enter t.tr;
  Fun.protect ~finally:(fun () -> Trace.leave t.tr) f

(* The injection port: the arbitrary_access ioctl. Mirrors the Xen
   hypercall's trace protocol — one boundary record, then the internal
   Injector_access record and the counters, then the access itself. *)
let ioctl t ~addr action data =
  if not t.injector_on then Error Errno.ENOSYS
  else
    bracketed t
      (Trace.Backend_op
         { op = op_ioctl; arg1 = addr; arg2 = Access.code action; data = Bytes.to_string data })
      (fun () ->
        Trace.charge t.tr Vclock.Kvm_ioctl;
        Trace.note_injector t.tr;
        if Trace.recording t.tr then
          Trace.emit t.tr
            (Trace.Injector_access
               { action = Int64.to_int (Access.code action); addr; len = Bytes.length data });
        (* same origin scheme as the Xen hypercall port: the access
           ordinal names the injecting action in attribution output *)
        let n = Trace.Counters.injector_accesses (Trace.counters t.tr) in
        let r =
          Phys_mem.with_origin (Kvm.mem t.kvm) (Provenance.Injector_action n) (fun () ->
              Kvm.arbitrary_access t.kvm ~addr action ~data)
        in
        Trace.note_hypercall t.tr ~number:Injector.hypercall_number ~failed:(Result.is_error r);
        (match Trace.coverage t.tr with
        | Some cov ->
            Coverage.note_port cov ~nr:Injector.hypercall_number
              ~outcome:(match r with Ok _ -> 0 | Error e -> Errno.to_int e)
        | None -> ());
        r)

let inject_write t ~addr action data =
  match ioctl t ~addr action data with Ok _ -> Ok () | Error e -> Error e

let inject_read t ~addr action ~len =
  match ioctl t ~addr action (Bytes.create len) with
  | Ok (Some b) -> Ok b
  | Ok None -> Error Errno.EINVAL
  | Error e -> Error e

(* No testbed-resident device model on this backend. *)
let inject_dm_write _t _data = Error Errno.ENOSYS

(* The "real exploit" port: a compromised device model writing host
   memory directly — no injector involved, like a userspace process
   with /dev/mem on a broken host. *)
let host_write t ~addr data =
  bracketed t
    (Trace.Backend_op { op = op_host_write; arg1 = addr; arg2 = 0L; data = Bytes.to_string data })
    (fun () ->
      Trace.charge t.tr Vclock.Guest_mem_op;
      match
        Phys_mem.with_origin (Kvm.mem t.kvm) (Provenance.Backend_write 0) (fun () ->
            Kvm.arbitrary_access t.kvm ~addr Access.Arbitrary_write_physical ~data)
      with
      | Ok _ -> Ok ()
      | Error e -> Error e)

let note_transition t was r =
  if Result.is_error r && was = Kvm.Vm_running then Trace.note_fault t.tr ~double:false

let vm_entry t vm =
  bracketed t
    (Trace.Backend_op
       { op = op_vm_entry; arg1 = Int64.of_int vm.Kvm.vm_id; arg2 = 0L; data = "" })
    (fun () ->
      Trace.charge t.tr Vclock.Vm_entry;
      let was = vm.Kvm.state in
      let r = Kvm.vm_entry t.kvm vm in
      note_transition t was r;
      r)

let deliver_fault t vm ~vector =
  bracketed t
    (Trace.Backend_op
       {
         op = op_fault;
         arg1 = Int64.of_int vm.Kvm.vm_id;
         arg2 = Int64.of_int vector;
         data = "";
       })
    (fun () ->
      Trace.charge t.tr Vclock.Fault_delivery;
      let was = vm.Kvm.state in
      let r = Kvm.deliver_guest_fault t.kvm vm ~vector in
      note_transition t was r;
      r)

let tick_all t =
  if Trace.recording t.tr && Trace.top_level t.tr then Trace.emit t.tr Trace.Sched_round;
  Trace.enter t.tr;
  Fun.protect
    ~finally:(fun () -> Trace.leave t.tr)
    (fun () ->
      List.iter
        (fun vm ->
          Trace.charge t.tr Vclock.Vm_entry;
          let was = vm.Kvm.state in
          note_transition t was (Kvm.vm_entry t.kvm vm))
        (Kvm.vms t.kvm);
      (* background load: extra VM entries per guest per round, charged
         on the vclock; runs inside the round's trace scope so a
         replayed [Sched_round] regenerates it deterministically *)
      let n = Load_mix.ops_per_tick t.load in
      if n > 0 then
        List.iter
          (fun vm ->
            for _ = 1 to n do
              Trace.charge t.tr Vclock.Vm_entry;
              let was = vm.Kvm.state in
              note_transition t was (Kvm.vm_entry t.kvm vm)
            done)
          (Kvm.vms t.kvm))

(* --- erroneous-state auditing ------------------------------------------ *)

type state_spec =
  | Vmcs_entry_tampered of int  (** vm id: the host-critical structure *)
  | Guest_idt_gate_corrupted of int * int  (** vm id, vector: guest state *)

let find_vm t id = List.find_opt (fun vm -> vm.Kvm.vm_id = id) (Kvm.vms t.kvm)

let audit t spec =
  match spec with
  | Vmcs_entry_tampered id -> (
      match find_vm t id with
      | None -> { Erroneous_state.holds = false; evidence = [ Printf.sprintf "vm%d not found" id ] }
      | Some vm ->
          let f = Phys_mem.frame_ro (Kvm.mem t.kvm) vm.Kvm.vmcs_mfn in
          let handler = Frame.get_u64 f 8 in
          let holds = Frame.get_u64 f 0 <> Kvm.vmcs_magic || handler <> Kvm.vmcs_entry_handler in
          {
            Erroneous_state.holds;
            evidence =
              (if holds then
                 [ Printf.sprintf "vm%d VMCS entry handler reads %016Lx" id handler ]
               else []);
          })
  | Guest_idt_gate_corrupted (id, vector) -> (
      match find_vm t id with
      | None -> { Erroneous_state.holds = false; evidence = [ Printf.sprintf "vm%d not found" id ] }
      | Some vm -> (
          match Kvm.guest_idt_gate t.kvm vm ~vector with
          | None ->
              { Erroneous_state.holds = false; evidence = [ "guest IDT page unmapped" ] }
          | Some handler ->
              let holds = handler <> Kvm.guest_handler vector in
              {
                Erroneous_state.holds;
                evidence =
                  (if holds then
                     [ Printf.sprintf "vm%d gate %d handler reads %016Lx" id vector handler ]
                   else []);
              }))

(* --- security-violation monitoring ------------------------------------- *)

type snapshot = {
  s_vms : (int * string * bool * string option) list;
      (* (id, name, alive, crash reason) *)
  s_vmcs : (int * int64) list;  (* per-vm VMCS hash *)
  s_ept_exposure : (int * int) list;  (* per-vm EPT exposure count *)
  s_free_frames : int;
}

let snapshot t =
  let vms = Kvm.vms t.kvm in
  {
    s_vms =
      List.map
        (fun vm ->
          ( vm.Kvm.vm_id,
            vm.Kvm.vm_name,
            vm.Kvm.state = Kvm.Vm_running,
            Kvm.crash_reason vm ))
        vms;
    s_vmcs = List.map (fun vm -> (vm.Kvm.vm_id, Kvm.vmcs_hash t.kvm vm)) vms;
    s_ept_exposure = List.map (fun vm -> (vm.Kvm.vm_id, Kvm.ept_exposure t.kvm vm)) vms;
    s_free_frames = Phys_mem.free_frames (Kvm.mem t.kvm);
  }

(* Each violation tagged with the VM (domain) it was observed in, so
   the per-domain rows of multi-domain campaigns work on this backend
   too; [violations] projects the tags away. *)
let violations_tagged ~before ~after =
  let name_of id =
    match List.find_opt (fun (id', _, _, _) -> id' = id) after.s_vms with
    | Some (_, n, _, _) -> n
    | None -> Printf.sprintf "vm%d" id
  in
  let crashes =
    List.filter_map
      (fun (id, vm_name, alive, reason) ->
        let was_alive =
          List.exists (fun (id', _, alive', _) -> id' = id && alive') before.s_vms
        in
        if was_alive && not alive then
          Some
            ( vm_name,
              Monitor.Guest_crash
                (Printf.sprintf "vm%d (%s): %s" id vm_name
                   (Option.value reason ~default:"killed")) )
        else None)
      after.s_vms
  in
  let vmcs_tampered =
    List.filter_map
      (fun (id, h) ->
        match List.assoc_opt id before.s_vmcs with
        | Some h0 when h0 <> h ->
            Some
              ( name_of id,
                Monitor.Integrity_violation
                  (Printf.sprintf "vm%d VMCS hash changed (host-critical structure)" id) )
        | _ -> None)
      after.s_vmcs
  in
  let ept_exposed =
    List.filter_map
      (fun (id, n) ->
        match List.assoc_opt id before.s_ept_exposure with
        | Some n0 when n > n0 ->
            Some
              ( name_of id,
                Monitor.Integrity_violation
                  (Printf.sprintf "vm%d EPT exposes %d host/foreign frames (was %d)" id n n0) )
        | _ -> None)
      after.s_ept_exposure
  in
  crashes @ vmcs_tampered @ ept_exposed

let violations ~before ~after = List.map snd (violations_tagged ~before ~after)

let violations_by_domain ~before ~after =
  let tagged = violations_tagged ~before ~after in
  let doms =
    List.fold_left (fun acc (d, _) -> if List.mem d acc then acc else d :: acc) [] tagged
  in
  List.rev_map
    (fun d -> (d, List.filter_map (fun (d', v) -> if d' = d then Some v else None) tagged))
    doms

(* KVM kills the offending VM at the failed entry; the host never dies
   in this model — the cross-backend blast-radius contrast with Xen. *)
let host_alive _ = true
let guests_alive s = List.length (List.filter (fun (_, _, alive, _) -> alive) s.s_vms)

(* --- out-of-band monitoring (VMI) -------------------------------------- *)

let frame_hash t mfn = Phys_mem.frame_hash (Kvm.mem t.kvm) mfn

let critical_frames t =
  List.concat_map
    (fun vm ->
      [
        (Printf.sprintf "vmcs[vm%d]" vm.Kvm.vm_id, vm.Kvm.vmcs_mfn);
        (Printf.sprintf "ept-root[vm%d]" vm.Kvm.vm_id, vm.Kvm.ept_root);
      ])
    (Kvm.vms t.kvm)

let vmcs_integrity_detector () =
  let baseline = ref [] in
  {
    Vmi.Detector.name = "kvm-vmcs-integrity";
    arm = (fun t -> baseline := List.map (fun vm -> (vm.Kvm.vm_id, Kvm.vmcs_hash t.kvm vm)) (Kvm.vms t.kvm));
    scan =
      (fun t ->
        let vms = Kvm.vms t.kvm in
        let findings =
          List.filter_map
            (fun vm ->
              match List.assoc_opt vm.Kvm.vm_id !baseline with
              | Some h0 when Kvm.vmcs_hash t.kvm vm <> h0 ->
                  Some (Printf.sprintf "vm%d: VMCS hash diverged from baseline" vm.Kvm.vm_id)
              | _ -> None)
            vms
        in
        { Vmi.Detector.findings; frames_read = List.length vms });
  }

let ept_exposure_detector () =
  let baseline = ref [] in
  {
    Vmi.Detector.name = "kvm-ept-exposure";
    arm =
      (fun t ->
        baseline := List.map (fun vm -> (vm.Kvm.vm_id, Kvm.ept_exposure t.kvm vm)) (Kvm.vms t.kvm));
    scan =
      (fun t ->
        let frames = ref 0 in
        let findings =
          List.filter_map
            (fun vm ->
              let g = Kvm.ept_graph t.kvm vm in
              frames := !frames + g.Kvm.eg_frames_read;
              let n = Kvm.ept_exposure t.kvm vm in
              match List.assoc_opt vm.Kvm.vm_id !baseline with
              | Some n0 when n > n0 ->
                  Some
                    (Printf.sprintf "vm%d: EPT maps %d host/foreign frames (baseline %d)"
                       vm.Kvm.vm_id n n0)
              | _ -> None)
            (Kvm.vms t.kvm)
        in
        { Vmi.Detector.findings; frames_read = !frames });
  }

let vm_liveness_detector () =
  let baseline = ref [] in
  {
    Vmi.Detector.name = "kvm-vm-liveness";
    arm =
      (fun t ->
        baseline :=
          List.filter_map
            (fun vm -> if vm.Kvm.state = Kvm.Vm_running then Some vm.Kvm.vm_id else None)
            (Kvm.vms t.kvm));
    scan =
      (fun t ->
        let findings =
          List.filter_map
            (fun vm ->
              if List.mem vm.Kvm.vm_id !baseline && vm.Kvm.state <> Kvm.Vm_running then
                Some
                  (Printf.sprintf "vm%d (%s) died: %s" vm.Kvm.vm_id vm.Kvm.vm_name
                     (Option.value (Kvm.crash_reason vm) ~default:"unknown"))
              else None)
            (Kvm.vms t.kvm)
        in
        { Vmi.Detector.findings; frames_read = 0 });
  }

let detectors () = [ vmcs_integrity_detector (); ept_exposure_detector (); vm_liveness_detector () ]

(* --- trace replay ------------------------------------------------------- *)

let apply_event t (ev : Trace.event) =
  match ev with
  | Trace.Backend_op { op; arg1; arg2; data } ->
      if op = op_ioctl then (
        match Access.of_code arg2 with
        | None -> false
        | Some action ->
            ignore (ioctl t ~addr:arg1 action (Bytes.of_string data));
            true)
      else if op = op_vm_entry then (
        match find_vm t (Int64.to_int arg1) with
        | None -> false
        | Some vm ->
            ignore (vm_entry t vm);
            true)
      else if op = op_fault then (
        match find_vm t (Int64.to_int arg1) with
        | None -> false
        | Some vm ->
            ignore (deliver_fault t vm ~vector:(Int64.to_int arg2));
            true)
      else if op = op_host_write then begin
        ignore (host_write t ~addr:arg1 (Bytes.of_string data));
        true
      end
      else false
  | Trace.Sched_round ->
      tick_all t;
      true
  | Trace.Scn_edge { section; prev; pc } ->
      (* scenario-bytecode edge: refeed the coverage map and re-emit,
         exactly as the Xen substrate does — the VM never runs during
         replay *)
      (match Trace.coverage t.tr with
      | Some cov -> Coverage.note_scn_edge cov ~section ~prev ~pc
      | None -> ());
      if Trace.recording t.tr && Trace.top_level t.tr then Trace.emit t.tr ev;
      true
  | _ -> false
