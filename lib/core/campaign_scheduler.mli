(** The batching campaign scheduler: one work queue over one worker pool.

    Running each version's campaign as its own sharded job (the shape
    {!Random_campaign.compare_versions} has) pays a pool spin-up per
    version and drains workers at every version boundary. This module
    instead flattens versions x trials into a single queue of
    independent jobs dealt in chunks ({!Shard}); each worker lazily
    forks one testbed per version it encounters — copy-on-write from
    the warm template pool — and reuses it for every trial of that
    version it is dealt.

    Job [j] is (version [j / trials], trial [j mod trials]). Trials are
    deterministic in [(seed, index, targets)] alone, so scheduling is
    invisible in the output. *)

val run :
  ?seed:int64 ->
  ?targets:Random_campaign.target_class list ->
  ?workers:int ->
  ?coverage:Coverage.map ref ->
  trials:int ->
  Version.t list ->
  Random_campaign.summary list
(** Materializing scheduler: byte-identical summaries to
    [List.map (Random_campaign.run ~seed ~trials ~targets) versions],
    whatever the worker count. Defaults: seed 42, intrusion targets,
    1 worker.

    [coverage] accumulates every trial's coverage map
    ({!Random_campaign.run_one_cov}) into the referenced cumulative map
    by a deterministic positional fold; the final map is byte-identical
    whatever the worker count. *)

type stream_stats = {
  st_version : Version.t;
  st_trials : int;
  st_tally : (Random_campaign.outcome_class * int) list;
      (** all five classes, in {!Random_campaign.all_outcomes} order *)
}

val run_streamed :
  ?seed:int64 ->
  ?targets:Random_campaign.target_class list ->
  ?workers:int ->
  ?coverage:Coverage.map ref ->
  trials:int ->
  Version.t list ->
  stream_stats list
(** Streaming scheduler for runs too large to materialize: each trial
    is reduced to its outcome tally on the spot and dropped, so peak
    memory is flat in [trials] (worker testbeds plus one counter
    table). [st_tally] equals the [tally] field {!run} would produce
    for the same arguments.

    [coverage] merges per-trial maps into the referenced map inside the
    streaming fold; because the merge is a bitwise OR (commutative,
    idempotent), the cumulative map equals {!run}'s byte for byte even
    though the streamed merge order is scheduler-dependent. *)

val render_stream : stream_stats list -> string
