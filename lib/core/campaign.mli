(** Campaign orchestration: the experimental strategy of Fig 4.

    A {e use case} packages a third-party exploit together with the
    injection script that reproduces its erroneous state and the
    intrusion model both derive from. Running a use case on a fresh
    testbed in either mode yields a result row: did the erroneous state
    hold (audited against live machine state), and which security
    violations did the monitor observe?

    The use cases themselves live in the [ii_exploits] library and plug
    in here — the campaign engine is exploit-agnostic, as an injection
    tool must be. *)

type attempt = {
  transcript : string list;  (** guest/attacker console output *)
  states : Erroneous_state.spec list;  (** states this attempt should establish *)
  rc : int option;  (** hypercall return code if the attempt was refused *)
}

type use_case = {
  uc_name : string;  (** e.g. "XSA-212-crash" *)
  uc_xsa : string;
  uc_description : string;
  im : Intrusion_model.t;
  run_exploit : Testbed.t -> attempt;
  run_injection : Testbed.t -> attempt;
}

type mode = Real_exploit | Injection

type result_row = {
  r_use_case : string;
  r_version : Version.t;
  r_mode : mode;
  r_state : bool;  (** the erroneous state holds (audited) *)
  r_state_evidence : string list;
  r_violations : Monitor.violation list;
  r_transcript : string list;
  r_rc : int option;
  r_telemetry : Trace.telemetry;
      (** counter delta over the trial: hypercalls by number, faults,
          flushes, ... Derived from the always-on counters, so it is
          filled whether or not the trace ring is recording. *)
}

val mode_to_string : mode -> string

val run :
  ?frames:int ->
  ?tb:Testbed.t ->
  ?observer:(Testbed.t -> unit) ->
  use_case ->
  mode ->
  Version.t ->
  result_row
(** Pristine testbed, snapshot, run the attempt (the injector hypercall
    is installed first in [Injection] mode), let every domain schedule a
    few times, audit the states, snapshot again and diff.

    Without [tb] a testbed is booted from scratch; with [tb] it is
    {!Testbed.reset} instead — O(dirty pages) rather than a full boot —
    which the equivalence property tests pin down as observably
    identical. [tb] must have been created for the same [version].

    [observer] is the out-of-band monitoring hook: it is called after
    the attempt and again after every scheduler round — the points where
    a VMI scan scheduler ({!Vmi.Scheduler.step}) interleaves with the
    trial. Observers must be side-effect-free on the testbed; the
    trial's result must be identical with or without one installed. *)

val run_matrix :
  ?workers:int ->
  ?frames:int -> use_case list -> versions:Version.t list -> modes:mode list -> result_row list
(** Every (use case, version, mode) cell, in that nesting order. Cells
    are independent; [workers > 1] shards them across OCaml domains
    (each worker reuses one testbed per version via {!Testbed.reset})
    with byte-identical results to the sequential run. *)

val validate_rq1 :
  ?frames:int -> use_case list -> (string * bool * bool) list
(** For each use case on the vulnerable version (4.6): does injection
    reproduce the same erroneous state, and the same violation class,
    as the real exploit? (§VI) *)

val table2 : use_case list -> string
(** Use case -> abusive functionality (Table II). *)

val table3 : result_row list -> string
(** The Err.State / Sec.Violation matrix for the injection campaign
    (Table III; a handled state renders as the shield). *)

val telemetry_table : result_row list -> string
(** Per-trial telemetry: hypercalls (total / failed), faults, TLB
    flushes, page-type transitions, injector accesses and VMI scan
    activity (scans/findings) for each (use case, version, mode) row. *)

val violated : result_row -> bool

val hypercall_name : int -> string
(** ["mmu_update"], ["arbitrary_access"], ... or ["hypercall_<n>"]. *)

val publish : Metrics.registry -> result_row -> unit
(** Fold one trial's telemetry into the shared metrics registry:
    [campaign_trials_total] (by mode), [hypercalls_total] (by name),
    fault/flush/page-type/injector counters, violation counts and the
    trial's VMI scan totals. Idempotent per call, cumulative across
    calls — the registry is the one publication point campaign,
    detectors and bench share. *)
