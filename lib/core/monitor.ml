type violation =
  | Hypervisor_crash of string
  | Privilege_escalation of string
  | Unauthorized_disclosure of string
  | Integrity_violation of string
  | Guest_crash of string
  | Availability_degradation of string

type snapshot = {
  crashed : bool;
  crash_reason : string option;
  root_artifacts : (string * string) list;
  root_shells : (string * string) list;
  disclosed : string list;
  guest_crashes : string list;
  pending_events : (string * int) list;
  pt_exposure : (string * int) list;
  m2p_mismatches : int;
  domain_pages : (string * int) list;
  sched_stalled : int;
  free_frames : int;
}

(* --- cross-trial scan cache ------------------------------------------
   Campaign loops snapshot the same reset-to-baseline testbed thousands
   of times; almost every trial leaves the page-table trees and the M2P
   untouched. The cache remembers baseline scan results and reuses them
   whenever it can prove the inputs did not change:

   - it is (re-)anchored at the lowest (baseline epoch, Page_info
     generation) pair it observes. Restore rewinds the generation to the
     checkpointed value and every type/ownership mutation bumps it, so
     generation = anchor iff the type state equals the baseline's;
   - each cached page-table scan records the table frames it visited;
     the entry is only valid while [Phys_mem.dirty_list] (frames touched
     since baseline) stays disjoint from that set.

   A cache must not outlive its testbed or be shared across testbeds:
   the anchor identifies a baseline, not a hypervisor. *)

type scan_cache = {
  c_pt : (int, pt_cached) Hashtbl.t;  (* domain id -> baseline scan *)
  mutable c_m2p : int option;  (* baseline M2P mismatch count *)
  mutable c_anchor : (int * int) option;  (* baseline epoch, Page_info gen *)
}

and pt_cached = {
  pc_count : int;
  pc_l4 : Addr.mfn;
  pc_deps : (Addr.mfn, unit) Hashtbl.t;  (* table frames the scan read *)
}

let create_scan_cache () =
  { c_pt = Hashtbl.create 8; c_m2p = None; c_anchor = None }

(* True iff the current type state provably equals the cache's baseline;
   drops stale contents when the baseline itself moved. *)
let cache_anchored cache hv =
  let e = Phys_mem.baseline_epoch hv.Hv.mem in
  let g = Page_info.generation hv.Hv.pages in
  match cache.c_anchor with
  | Some (ae, ag) when ae = e && ag = g -> true
  | Some (ae, ag) when ae = e && g > ag -> false
  | _ ->
      Hashtbl.reset cache.c_pt;
      cache.c_m2p <- None;
      cache.c_anchor <- Some (e, g);
      true

let disjoint_from_dirty hv deps =
  List.for_all (fun m -> not (Hashtbl.mem deps m)) (Phys_mem.dirty_list hv.Hv.mem)

(* The M2P must stay the inverse of every domain's P2M — a hypervisor
   invariant any auditing monitor can check from outside the guests. *)
let m2p_mismatch_fresh hv =
  List.fold_left
    (fun acc dom ->
      List.fold_left
        (fun acc pfn ->
          match Domain.mfn_of_pfn dom pfn with
          | Some mfn when Hv.m2p_lookup hv mfn <> Some pfn ->
              (* the verdict depends on the inconsistent M2P entry *)
              let m2p_mfn, off = Hv.m2p_frame_for hv mfn in
              Phys_mem.observe hv.Hv.mem ~consumer:Provenance.M2p_check ~mfn:m2p_mfn ~off
                ~len:8;
              acc + 1
          | Some _ | None -> acc)
        acc (Domain.populated_pfns dom))
    0 hv.Hv.domains

(* Every P2M mutation in the hypervisor goes through an allocation or a
   release (both bump the Page_info generation, i.e. break the anchor),
   so with the anchor held the count can only change through raw writes
   to the M2P frames themselves — which the dirty list exposes. *)
let m2p_mismatch_count ?cache hv =
  match cache with
  | Some c when cache_anchored c hv ->
      let m2p_clean =
        List.for_all (fun m -> not (Hv.is_m2p_frame hv m)) (Phys_mem.dirty_list hv.Hv.mem)
      in
      (match c.c_m2p with
      | Some n when m2p_clean -> n
      | _ ->
          let n = m2p_mismatch_fresh hv in
          if m2p_clean then c.c_m2p <- Some n;
          n)
  | Some _ | None -> m2p_mismatch_fresh hv

(* Walk a domain's live page tables exactly like the MMU would, counting
   leaf (and PSE superpage) mappings that grant guest-privilege write
   access to frames currently typed as page tables. The address-space
   layout filter is what lets hardened versions "handle" states that
   older layouts expose. *)
(* [memo] caches subtree counts within one snapshot, keyed by
   everything the count depends on — table frame, level, VA prefix and
   the accumulated RW permission — so the Xen structures mapped into all
   three domains at the same slots are scanned once, not per domain. *)
let writable_pt_exposure ?memo ?cache hv dom =
  let mem = hv.Hv.mem in
  let hardened = Hv.hardened hv in
  let typed_pt mfn =
    Phys_mem.is_valid_mfn mem mfn
    &&
    let info = Page_info.get hv.Hv.pages mfn in
    Page_info.table_level info.Page_info.ptype <> None && info.Page_info.type_count > 0
  in
  let guest_writable va = Layout.guest_access ~hardened (Addr.canonical va) = Layout.Read_write in
  let shift level = Addr.page_shift + (9 * (level - 1)) in
  let deps = match cache with Some _ -> Some (Hashtbl.create 32) | None -> None in
  let rec scan level table_mfn va_prefix rw =
    if not (Phys_mem.is_valid_mfn mem table_mfn) then 0
    else begin
      (match deps with Some d -> Hashtbl.replace d table_mfn () | None -> ());
      let frame = Phys_mem.frame_ro mem table_mfn in
      let count = ref 0 in
      (* iter_present probes the present bit with byte loads inside
         Frame, so absent entries (most of any table) cost neither an
         int64 decode nor a cross-module call *)
      Frame.iter_present frame (fun index e ->
          let va = Int64.logor va_prefix (Int64.shift_left (Int64.of_int index) (shift level)) in
          let rw = rw && Pte.test Pte.Rw e in
          let flag () =
            (* a flagged mapping is evidence read out of this entry *)
            Phys_mem.observe mem ~consumer:Provenance.Monitor_scan ~mfn:table_mfn
              ~off:(8 * index) ~len:8;
            incr count
          in
          if level = 1 then begin
            if rw && typed_pt (Pte.mfn e) && guest_writable va then flag ()
          end
          else if level = 2 && Pte.test Pte.Pse e then begin
            if rw && guest_writable va then begin
              let base = Pte.mfn e land lnot 0x1ff in
              for m = base to base + 511 do
                if typed_pt m then flag ()
              done
            end
          end
          else count := !count + scan_memo (level - 1) (Pte.mfn e) va rw);
      !count
    end
  and scan_memo level table_mfn va_prefix rw =
    (* the memo shortcut would skip dependency recording, so it is only
       taken when no cache is collecting deps *)
    match (memo, deps) with
    | None, _ | Some _, Some _ -> scan level table_mfn va_prefix rw
    | Some tbl, None -> (
        let key = (level, table_mfn, va_prefix, rw) in
        match Hashtbl.find_opt tbl key with
        | Some n -> n
        | None ->
            let n = scan level table_mfn va_prefix rw in
            Hashtbl.add tbl key n;
            n)
  in
  let fresh () = scan_memo 4 dom.Domain.l4_mfn 0L true in
  match (cache, deps) with
  | Some c, Some d when cache_anchored c hv -> (
      match Hashtbl.find_opt c.c_pt dom.Domain.id with
      | Some pc
        when pc.pc_l4 = dom.Domain.l4_mfn && disjoint_from_dirty hv pc.pc_deps ->
          pc.pc_count
      | _ ->
          let count = fresh () in
          (* only a scan of untouched-since-baseline tables is a
             baseline scan worth keeping *)
          if disjoint_from_dirty hv d then
            Hashtbl.replace c.c_pt dom.Domain.id
              { pc_count = count; pc_l4 = dom.Domain.l4_mfn; pc_deps = d };
          count)
  | _ -> fresh ()

let root_secrets kernel =
  let fs = Kernel.fs kernel in
  List.filter_map
    (fun path ->
      match Fs.read fs path with
      | Some { Fs.uid = 0; content; _ } when content <> "" -> Some (path, content)
      | Some _ | None -> None)
    (Fs.paths fs)

let snapshot ?cache (tb : Testbed.t) =
  let kernels = Testbed.kernels tb in
  let root_artifacts =
    List.concat_map
      (fun k ->
        List.map (fun (path, _) -> (Kernel.hostname k, path)) (root_secrets k))
      kernels
  in
  let connections =
    Netsim.connections_to tb.Testbed.net ~host:tb.Testbed.remote_host ~port:1234
  in
  let root_shells =
    List.filter_map
      (fun c -> if c.Netsim.conn_uid = 0 then Some (c.Netsim.from_host, c.Netsim.to_host) else None)
      connections
  in
  (* A secret is disclosed when its content shows up in the transcript
     of a cross-host connection. *)
  let disclosed =
    List.concat_map
      (fun k ->
        List.filter_map
          (fun (path, content) ->
            let leaked =
              List.exists
                (fun c ->
                  c.Netsim.from_host = Kernel.hostname k
                  &&
                  let t = Netsim.transcript c in
                  let n = String.length content and m = String.length t in
                  let rec search i =
                    if i + n > m then false
                    else if String.sub t i n = content then true
                    else search (i + 1)
                  in
                  n > 0 && search 0)
                connections
            in
            if leaked then Some (Printf.sprintf "%s:%s" (Kernel.hostname k) path) else None)
          (root_secrets k))
      kernels
  in
  let guest_crashes =
    List.filter_map
      (fun k -> if (Kernel.dom k).Domain.dom_crashed then Some (Kernel.hostname k) else None)
      kernels
  in
  let pending_events =
    List.map
      (fun k ->
        ( Kernel.hostname k,
          List.length (Event_channel.pending_ports (Kernel.dom k).Domain.events) ))
      kernels
  in
  let pt_exposure =
    (* With a cross-trial cache, reuse baseline scans; otherwise share a
       memo across the three domains so Xen mappings mapped at the same
       slots are walked once per snapshot instead of once per domain. *)
    match cache with
    | Some _ ->
        List.map
          (fun k -> (Kernel.hostname k, writable_pt_exposure ?cache tb.Testbed.hv (Kernel.dom k)))
          kernels
    | None ->
        let memo = Hashtbl.create 64 in
        List.map
          (fun k -> (Kernel.hostname k, writable_pt_exposure ~memo tb.Testbed.hv (Kernel.dom k)))
          kernels
  in
  {
    crashed = Hv.is_crashed tb.Testbed.hv;
    crash_reason =
      (match tb.Testbed.hv.Hv.crashed with Some { Hv.reason; _ } -> Some reason | None -> None);
    root_artifacts;
    root_shells;
    disclosed;
    guest_crashes;
    pending_events;
    pt_exposure;
    m2p_mismatches = m2p_mismatch_count ?cache tb.Testbed.hv;
    domain_pages =
      List.map
        (fun k ->
          (Kernel.hostname k, List.length (Domain.populated_pfns (Kernel.dom k))))
        kernels;
    sched_stalled = Sched.stalled_slices tb.Testbed.hv.Hv.sched;
    free_frames = Phys_mem.free_frames tb.Testbed.hv.Hv.mem;
  }

let subtract l before = List.filter (fun x -> not (List.mem x before)) l

(* Every violation, tagged with the domain (hostname) it was observed
   in — [None] for host-level conditions (hypervisor crash, M2P
   divergence, scheduler stalls, memory exhaustion). The tagged list is
   the source of truth; [violations] projects the tags away, so the
   historical ordering is preserved exactly. *)
let violations_tagged ~before ~after =
  let crash =
    if after.crashed && not before.crashed then
      [ (None, Hypervisor_crash (Option.value ~default:"crash" after.crash_reason)) ]
    else []
  in
  let escalations =
    List.map
      (fun (host, path) ->
        (Some host, Privilege_escalation (Printf.sprintf "root file %s on %s" path host)))
      (subtract after.root_artifacts before.root_artifacts)
    @ List.map
        (fun (victim, remote) ->
          (Some victim, Privilege_escalation (Printf.sprintf "root shell from %s to %s" victim remote)))
        (subtract after.root_shells before.root_shells)
  in
  let disclosures =
    List.map
      (fun s ->
        let host = match String.index_opt s ':' with
          | Some i -> Some (String.sub s 0 i)
          | None -> None
        in
        (host, Unauthorized_disclosure s))
      (subtract after.disclosed before.disclosed)
  in
  let guest_crashes =
    List.map (fun h -> (Some h, Guest_crash h)) (subtract after.guest_crashes before.guest_crashes)
  in
  let storms =
    List.filter_map
      (fun (host, n) ->
        match List.assoc_opt host before.pending_events with
        | Some n0 when n - n0 >= 16 ->
            Some
              ( Some host,
                Availability_degradation
                  (Printf.sprintf "interrupt storm on %s (+%d)" host (n - n0)) )
        | Some _ | None -> None)
      after.pending_events
  in
  let integrity =
    List.filter_map
      (fun (host, n) ->
        match List.assoc_opt host before.pt_exposure with
        | Some n0 when n > n0 ->
            Some
              ( Some host,
                Integrity_violation
                  (Printf.sprintf "guest-writable page-table mappings on %s (+%d)" host (n - n0))
              )
        | Some _ | None -> None)
      after.pt_exposure
  in
  let m2p =
    if after.m2p_mismatches > before.m2p_mismatches then
      [
        ( None,
          Integrity_violation
            (Printf.sprintf "M2P/P2M divergence (+%d entries)"
               (after.m2p_mismatches - before.m2p_mismatches)) );
      ]
    else []
  in
  let memory_loss =
    List.filter_map
      (fun (host, n) ->
        match List.assoc_opt host before.domain_pages with
        | Some n0 when n0 - n >= 8 ->
            Some
              ( Some host,
                Availability_degradation
                  (Printf.sprintf "%s lost %d pages to balloon pressure" host (n0 - n)) )
        | Some _ | None -> None)
      after.domain_pages
  in
  let stalls =
    if after.sched_stalled > before.sched_stalled then
      [
        ( None,
          Availability_degradation
            (Printf.sprintf "pCPU stalled for %d scheduler slices" after.sched_stalled) );
      ]
    else []
  in
  let exhaustion =
    if before.free_frames > 0 && after.free_frames * 2 < before.free_frames then
      [
        ( None,
          Availability_degradation
            (Printf.sprintf "host memory exhaustion (%d -> %d free frames)" before.free_frames
               after.free_frames) );
      ]
    else []
  in
  crash @ escalations @ disclosures @ integrity @ m2p @ guest_crashes @ storms @ memory_loss
  @ stalls @ exhaustion

let violations ~before ~after = List.map snd (violations_tagged ~before ~after)

(* Group the tagged list by domain, preserving first-appearance order of
   the domains and the within-domain violation order. Host-level
   violations group under "host". *)
let violations_by_domain ~before ~after =
  let tagged = violations_tagged ~before ~after in
  let key = function Some h -> h | None -> "host" in
  let doms =
    List.fold_left
      (fun acc (tag, _) ->
        let k = key tag in
        if List.mem k acc then acc else k :: acc)
      [] tagged
  in
  List.rev_map
    (fun d -> (d, List.filter_map (fun (tag, v) -> if key tag = d then Some v else None) tagged))
    doms

let violation_to_string = function
  | Hypervisor_crash r -> Printf.sprintf "hypervisor crash (%s)" r
  | Privilege_escalation e -> Printf.sprintf "privilege escalation (%s)" e
  | Unauthorized_disclosure e -> Printf.sprintf "unauthorized disclosure (%s)" e
  | Integrity_violation e -> Printf.sprintf "integrity violation (%s)" e
  | Guest_crash h -> Printf.sprintf "guest crash (%s)" h
  | Availability_degradation e -> Printf.sprintf "availability degradation (%s)" e

let pp_violation ppf v = Format.pp_print_string ppf (violation_to_string v)

let class_of = function
  | Hypervisor_crash _ -> 0
  | Privilege_escalation _ -> 1
  | Unauthorized_disclosure _ -> 2
  | Integrity_violation _ -> 3
  | Guest_crash _ -> 4
  | Availability_degradation _ -> 5

let class_index = class_of

let same_class a b =
  let sig_of l = List.sort compare (List.map class_of l) in
  sig_of a = sig_of b

let class_mask vs =
  List.fold_left (fun acc v -> acc lor (1 lsl class_of v)) 0 vs
