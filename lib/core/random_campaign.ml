type target_class =
  | Idt_gates
  | Page_table_entries
  | M2p_entries
  | Arbitrary_physical
  | Soft_error_bit_flip
  | Component_hooks

let target_to_string = function
  | Idt_gates -> "idt-gates"
  | Page_table_entries -> "page-table-entries"
  | M2p_entries -> "m2p-entries"
  | Arbitrary_physical -> "arbitrary-physical"
  | Soft_error_bit_flip -> "soft-error-bit-flip"
  | Component_hooks -> "component-hooks"

let all_targets =
  [
    Idt_gates; Page_table_entries; M2p_entries; Arbitrary_physical; Component_hooks;
    Soft_error_bit_flip;
  ]

let intrusion_targets =
  [ Idt_gates; Page_table_entries; M2p_entries; Arbitrary_physical; Component_hooks ]

let memory_targets = [ Idt_gates; Page_table_entries; M2p_entries; Arbitrary_physical ]

type outcome_class = Crashed | Violated | State_only | No_effect | Refused

let outcome_to_string = function
  | Crashed -> "crashed"
  | Violated -> "violated"
  | State_only -> "state-only (handled)"
  | No_effect -> "no effect"
  | Refused -> "refused"

let all_outcomes = [ Crashed; Violated; State_only; No_effect; Refused ]

type trial = {
  index : int;
  target : target_class;
  t_addr : int64;
  t_value : int64;
  outcome : outcome_class;
  t_violations : Monitor.violation list;
}

type summary = {
  s_version : Version.t;
  s_seed : int64;
  s_trials : int;
  tally : (outcome_class * int) list;
  trials : trial list;
}

(* One word-aligned machine address + value within the target class. *)
let synthesize rng (tb : Testbed.t) target =
  let hv = tb.Testbed.hv in
  let frames = Phys_mem.total_frames hv.Hv.mem in
  match target with
  | Idt_gates ->
      (* bias towards the exception vectors a running system exercises *)
      let vector = Prng.int rng ~bound:33 in
      let addr =
        Int64.add (Addr.maddr_of_mfn hv.Hv.idt_mfn) (Int64.of_int (Idt.handler_offset vector))
      in
      (addr, Prng.int64 rng)
  | Page_table_entries ->
      let dom = Kernel.dom tb.Testbed.attacker in
      let table = Prng.choose rng dom.Domain.pt_pages in
      let index = Prng.int rng ~bound:Addr.entries_per_table in
      let mfn = Prng.int rng ~bound:frames in
      let flags = Int64.of_int (Prng.int rng ~bound:0x1000) in
      let value = Int64.logor (Addr.maddr_of_mfn mfn) flags in
      (Int64.add (Addr.maddr_of_mfn table) (Int64.of_int (8 * index)), value)
  | M2p_entries ->
      let frame = hv.Hv.m2p_mfns.(Prng.int rng ~bound:(Array.length hv.Hv.m2p_mfns)) in
      let index = Prng.int rng ~bound:(Addr.page_size / 8) in
      (Int64.add (Addr.maddr_of_mfn frame) (Int64.of_int (8 * index)), Prng.int64 rng)
  | Arbitrary_physical | Soft_error_bit_flip ->
      let mfn = Prng.int rng ~bound:frames in
      let index = Prng.int rng ~bound:(Addr.page_size / 8) in
      (Int64.add (Addr.maddr_of_mfn mfn) (Int64.of_int (8 * index)), Prng.int64 rng)
  | Component_hooks ->
      (* addr selects the hook, value its parameter *)
      (Int64.of_int (Prng.int rng ~bound:4), Prng.int64 rng)

(* The activation workload: let every domain schedule, exercise guest
   memory, take a page fault (through the possibly-corrupted IDT) and a
   benign hypercall. *)
let activate (tb : Testbed.t) =
  Testbed.tick_all tb;
  let k = tb.Testbed.attacker in
  (* the timer fires on every scheduling round *)
  ignore (Hv.deliver_fault tb.Testbed.hv ~vector:32 ~detail:"timer interrupt");
  ignore (Kernel.write_u64 k (Domain.kernel_vaddr_of_pfn 6) 0xA11CEL);
  ignore (Kernel.read_u64 k (Domain.kernel_vaddr_of_pfn 6));
  ignore (Kernel.read_u64 k 0x0000_00ba_d000_0000L);
  ignore (Kernel.hypercall_rc k (Hypercall.Console_io "campaign tick"));
  Testbed.tick_all tb

(* Non-memory injector hooks, exercised through the catalog's component
   interfaces; hangs are released after observation so trials stay
   independent (a real campaign would reboot). *)
let run_hook (tb : Testbed.t) choice =
  let hv = tb.Testbed.hv in
  let victim = Kernel.dom tb.Testbed.victim in
  match Int64.to_int choice land 3 with
  | 0 ->
      ignore (Sched.hang_vcpu hv.Hv.sched ~dom:victim.Domain.id ~reason:"fuzzed hang");
      `Unhang_after victim.Domain.id
  | 1 ->
      ignore (Event_channel.force_pending_all victim.Domain.events);
      `Nothing
  | 2 ->
      Xenstore.inject_write hv.Hv.xenstore
        (Xenstore.domain_path victim.Domain.id "memory/target")
        "48";
      `Nothing
  | _ ->
      ignore (Hv.exhaust_memory hv ~leave:(Phys_mem.free_frames hv.Hv.mem / 4));
      `Nothing

let run_trial rng index (tb : Testbed.t) ?cache ~before target =
  let hv = tb.Testbed.hv in
  let addr, value = synthesize rng tb target in
  if target = Component_hooks then begin
    let cleanup = run_hook tb addr in
    activate tb;
    let after = Monitor.snapshot ?cache tb in
    let violations = Monitor.violations ~before ~after in
    (match cleanup with
    | `Unhang_after dom -> ignore (Sched.unhang_vcpu hv.Hv.sched ~dom)
    | `Nothing -> ());
    let crashed = List.exists (function Monitor.Hypervisor_crash _ -> true | _ -> false) violations in
    let outcome =
      if crashed then Crashed else if violations <> [] then Violated else No_effect
    in
    { index; target; t_addr = addr; t_value = value; outcome; t_violations = violations }
  end
  else
  let injected =
    match target with
    | Soft_error_bit_flip ->
        (* an accidental fault: flip one bit directly, no injector *)
        let bit = Int64.to_int (Int64.logand value 63L) in
        let word = Phys_mem.read_u64 hv.Hv.mem addr in
        Phys_mem.write_u64 hv.Hv.mem addr (Int64.logxor word (Int64.shift_left 1L bit));
        Ok ()
    | Component_hooks -> Ok () (* handled above *)
    | Idt_gates | Page_table_entries | M2p_entries | Arbitrary_physical -> (
        match
          Injector.write_u64 tb.Testbed.attacker ~addr
            ~action:Injector.Arbitrary_write_physical value
        with
        | Ok () -> Ok ()
        | Error e -> Error e)
  in
  match injected with
  | Error _ ->
      { index; target; t_addr = addr; t_value = value; outcome = Refused; t_violations = [] }
  | Ok () ->
      activate tb;
      let after = Monitor.snapshot ?cache tb in
      let violations = Monitor.violations ~before ~after in
      let crashed = List.exists (function Monitor.Hypervisor_crash _ -> true | _ -> false) violations in
      let outcome =
        if crashed then Crashed
        else if violations <> [] then Violated
        else if
          (* is the corruption still sitting in live state, or was it
             scrubbed/overwritten during activation? *)
          target <> Soft_error_bit_flip && Phys_mem.read_u64 hv.Hv.mem addr = value
        then State_only
        else No_effect
      in
      { index; target; t_addr = addr; t_value = value; outcome; t_violations = violations }

(* Per-trial PRNG seeding (a splitmix64-style mix of campaign seed and
   trial index): every trial owns an independent random stream, so
   trials can run in any order — or on any worker — and still draw
   exactly the sequential run's numbers. *)
let trial_seed seed index =
  let z = Int64.add seed (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Per-worker campaign state: one long-lived testbed, reset between
   trials (O(dirty pages), replacing the boot-per-crash of earlier
   revisions), and the pristine before-snapshot taken once — the state
   after reset + injector install is identical on every trial, so the
   snapshot is too. *)
type worker = {
  w_tb : Testbed.t;
  w_cache : Monitor.scan_cache;
  mutable w_before : Monitor.snapshot option;
}

let pristine w =
  Testbed.reset w.w_tb;
  Injector.install w.w_tb.Testbed.hv;
  match w.w_before with
  | Some before -> before
  | None ->
      let before = Monitor.snapshot ~cache:w.w_cache w.w_tb in
      w.w_before <- Some before;
      before

let make_worker ?(pooled = false) version =
  {
    w_tb = (if pooled then Testbed.create_pooled version else Testbed.create version);
    w_cache = Monitor.create_scan_cache ();
    w_before = None;
  }

(* Coverage-aware trial: when a {!Coverage} collector is attached to the
   worker testbed's trace, clear it at the pristine point — after reset
   and injector install, mirroring Campaign.run's protocol, so pooled
   and freshly-booted workers produce identical per-trial maps — then
   run the trial, feed the violation axis (these trials observe
   host-level violations), and snapshot. Collector-free workers pay
   nothing and get [None]. *)
let run_one_cov w ~seed ~targets index =
  let before = pristine w in
  let cov = Trace.coverage w.w_tb.Testbed.hv.Hv.trace in
  (match cov with Some c -> Coverage.clear c | None -> ());
  let rng = Prng.create ~seed:(trial_seed seed index) in
  let target = Prng.choose rng targets in
  let t = run_trial rng index w.w_tb ~cache:w.w_cache ~before target in
  let m =
    match cov with
    | None -> None
    | Some c ->
        List.iter
          (fun v -> Coverage.note_violation c ~cls:(Monitor.class_index v) ~domain:"host")
          t.t_violations;
        Some (Coverage.snapshot c)
  in
  (t, m)

let run_one w ~seed ~targets index = fst (run_one_cov w ~seed ~targets index)

let attach_coverage w = Trace.set_coverage w.w_tb.Testbed.hv.Hv.trace (Some (Coverage.create ()))

let tally_of trials_list =
  List.map
    (fun o -> (o, List.length (List.filter (fun t -> t.outcome = o) trials_list)))
    all_outcomes

let run ?(seed = 42L) ?(trials = 60) ?(targets = intrusion_targets) ?workers version =
  if targets = [] then invalid_arg "Random_campaign.run: no targets";
  (* Sharded workers fork from the warm template pool; the sequential
     reference run keeps the historical fresh boot (it pays it once). *)
  let pooled = Shard.worker_count workers > 1 in
  let trials_list =
    Shard.map_init ?workers
      ~init:(fun () -> make_worker ~pooled version)
      (fun w index () -> run_one w ~seed ~targets index)
      (List.init trials (fun _ -> ()))
  in
  { s_version = version; s_seed = seed; s_trials = trials; tally = tally_of trials_list;
    trials = trials_list }

let compare_versions ?seed ?trials ?targets ?workers versions =
  List.map (fun v -> run ?seed ?trials ?targets ?workers v) versions

let render summaries =
  let header =
    "Version" :: List.map outcome_to_string all_outcomes
  in
  let rows =
    List.map
      (fun s ->
        Version.to_string s.s_version
        :: List.map (fun o -> string_of_int (List.assoc o s.tally)) all_outcomes)
      summaries
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Randomized injection campaign (%d trials per version, seed %Ld): outcome tally"
         (match summaries with s :: _ -> s.s_trials | [] -> 0)
         (match summaries with s :: _ -> s.s_seed | [] -> 0L))
    ~header rows
