(** Campaign orchestration: the experimental strategy of Fig 4.

    A {e use case} packages a third-party exploit together with the
    injection script that reproduces its erroneous state and the
    intrusion model both derive from. Running a use case on a fresh
    testbed in either mode yields a result row: did the erroneous state
    hold (audited against live machine state), and which security
    violations did the monitor observe?

    The engine is a functor over {!Substrate.S}, so the same
    orchestration runs unchanged on any backend; the toplevel of this
    module is the functor applied to {!Substrate_xen} (the historical
    interface, preserved verbatim). The use cases themselves live in
    [ii_exploits] (Xen) and [ii_backends] (KVM) and plug in here — the
    campaign engine is exploit-agnostic, as an injection tool must
    be. *)

type mode = Real_exploit | Injection

let mode_to_string = function Real_exploit -> "exploit" | Injection -> "injection"
let scheduler_rounds = 3

let hypercall_name = function
  | 1 -> "mmu_update"
  | 3 -> "update_va_mapping"
  | 12 -> "memory_op"
  | 18 -> "console_io"
  | 20 -> "grant_table_op"
  | 26 -> "mmuext_op"
  | 32 -> "event_channel_op"
  | n when n = Injector.hypercall_number -> Injector.hypercall_name
  | n -> Printf.sprintf "hypercall_%d" n

module Make (B : Substrate.S) = struct
  type attempt = {
    transcript : string list;  (** guest/attacker console output *)
    states : B.state_spec list;  (** states this attempt should establish *)
    rc : int option;  (** injection-port return code if the attempt was refused *)
  }

  type use_case = {
    uc_name : string;  (** e.g. "XSA-212-crash" *)
    uc_xsa : string;
    uc_description : string;
    im : Intrusion_model.t;
    run_exploit : B.t -> attempt;
    run_injection : B.t -> attempt;
  }

  type result_row = {
    r_use_case : string;
    r_version : B.config;
    r_mode : mode;
    r_state : bool;  (** the erroneous state holds (audited) *)
    r_state_evidence : string list;
    r_violations : Monitor.violation list;
    r_domains : (string * Monitor.violation list) list;
        (** the same violations grouped per domain (host-level rows
            under ["host"]) — the per-domain blast radius *)
    r_transcript : string list;
    r_rc : int option;
    r_telemetry : Trace.telemetry;
        (** counter delta over the trial: hypercalls by number, faults,
            flushes, ... Derived from the always-on counters, so it is
            filled whether or not the trace ring is recording. *)
    r_vtime_ns : int64;
        (** virtual time the trial consumed (ns on the backend's
            deterministic {!Vclock}); 0 when the clock is detached *)
    r_backend : string;  (** {!B.name}, for cross-backend rows *)
    r_coverage : Coverage.map option;
        (** this trial's absolute coverage map (the collector is cleared
            at trial start), when one is attached to the testbed's
            trace; [None] otherwise — detached trials compare equal to
            pre-coverage rows *)
    r_cov_novelty : int;
        (** bits this trial added over the campaign's cumulative map so
            far; 0 outside [run_matrix ~coverage] (novelty is a
            campaign-order property, assigned by the deterministic fold
            over positional row order) *)
  }

  let run ?frames ?domains ?load ?tb ?observer uc mode version =
    let tb =
      match tb with
      | Some tb ->
          B.reset tb;
          tb
      | None -> B.create ?frames ?domains ?load version
    in
    if mode = Injection then B.install_injector tb;
    (* Telemetry comes only from the always-on counters, never the ring,
       so a trial's result is identical with recording on or off. *)
    let tr = B.trace tb in
    (* A trial's coverage map is absolute: clearing here (after reset +
       injector install, the point replay mirrors) makes the map a pure
       function of the trial, independent of what the worker's testbed
       ran before — the property that keeps sharded ≡ sequential. *)
    let cov = Trace.coverage tr in
    (match cov with Some c -> Coverage.clear c | None -> ());
    let counters_before = Trace.Counters.snapshot (Trace.counters tr) in
    let vts_before = B.vclock tb in
    let before = B.snapshot tb in
    let observe () = match observer with Some f -> f tb | None -> () in
    let attempt =
      match mode with Real_exploit -> uc.run_exploit tb | Injection -> uc.run_injection tb
    in
    observe ();
    (* Let every domain run: vDSO hooks (and thus installed backdoors)
       execute during normal scheduling. *)
    for _ = 1 to scheduler_rounds do
      B.tick_all tb;
      observe ()
    done;
    let audits = List.map (B.audit tb) attempt.states in
    let r_state = attempt.states <> [] && List.for_all (fun a -> a.Erroneous_state.holds) audits in
    let r_state_evidence = List.concat_map (fun a -> a.Erroneous_state.evidence) audits in
    let after = B.snapshot tb in
    let r_violations = B.violations ~before ~after in
    let r_domains = B.violations_by_domain ~before ~after in
    if Trace.recording tr then
      Trace.emit tr
        (Trace.Monitor_verdict
           { violations = List.length r_violations; classes = Monitor.class_mask r_violations });
    let r_coverage =
      match cov with
      | Some c ->
          List.iter
            (fun (dom, vs) ->
              List.iter
                (fun v -> Coverage.note_violation c ~cls:(Monitor.class_index v) ~domain:dom)
                vs)
            r_domains;
          Some (Coverage.snapshot c)
      | None -> None
    in
    {
      r_use_case = uc.uc_name;
      r_version = version;
      r_mode = mode;
      r_state;
      r_state_evidence;
      r_violations;
      r_domains;
      r_transcript = attempt.transcript;
      r_rc = attempt.rc;
      r_telemetry =
        Trace.delta ~before:counters_before
          ~after:(Trace.Counters.snapshot (Trace.counters tr));
      r_vtime_ns = Int64.sub (B.vclock tb) vts_before;
      r_backend = B.name;
      r_coverage;
      r_cov_novelty = 0;
    }

  let run_matrix ?workers ?pooled ?frames ?domains ?load ?coverage ucs ~versions ~modes =
    (* One cell per (uc, version, mode), in that nesting order; cells are
       independent, so they shard: the flattened queue is dealt in chunks
       over one worker pool. Each worker keeps one testbed per version
       and resets it between cells instead of re-booting; sharded
       workers fork those testbeds copy-on-write from the warm template
       pool, so a new (version x worker) cell costs O(metadata), while
       the sequential reference run keeps the historical fresh boots.
       [?pooled] overrides that policy either way (the bench uses it to
       time the pooled path at [auto] workers without oversubscribing). *)
    let pooled =
      match pooled with Some p -> p | None -> Shard.worker_count workers > 1
    in
    let cells =
      List.concat_map
        (fun uc ->
          List.concat_map (fun version -> List.map (fun mode -> (uc, version, mode)) modes) versions)
        ucs
    in
    let rows =
      Shard.map_init ?workers
        ~init:(fun () -> Hashtbl.create 4)
        (fun testbeds _ (uc, version, mode) ->
          let tb =
            match Hashtbl.find_opt testbeds version with
            | Some tb -> tb
            | None ->
                let tb =
                  if pooled then B.create_pooled ?frames ?domains ?load version
                  else B.create ?frames ?domains ?load version
                in
                (* attach one collector per worker testbed; [run] clears
                   it per trial, so each row's map is absolute *)
                if coverage <> None then
                  Trace.set_coverage (B.trace tb) (Some (Coverage.create ()));
                Hashtbl.replace testbeds version tb;
                tb
          in
          run ~tb uc mode version)
        cells
    in
    match coverage with
    | None -> rows
    | Some acc ->
        (* novelty is assigned here, never on the workers: the fold runs
           over positional row order (= input cell order), so the
           novelty sequence and the cumulative union are byte-identical
           whatever worker ran which cell *)
        List.map
          (fun r ->
            match r.r_coverage with
            | None -> r
            | Some m ->
                let n = Coverage.novelty m ~against:!acc in
                acc := Coverage.merge !acc m;
                { r with r_cov_novelty = n })
          rows

  let violated r = r.r_violations <> []

  let validate_rq1 ?frames ?domains ?load ucs =
    let tb = B.create ?frames ?domains ?load B.rq1_config in
    List.map
      (fun uc ->
        let e = run ~tb uc Real_exploit B.rq1_config in
        let i = run ~tb uc Injection B.rq1_config in
        let same_state = e.r_state && i.r_state in
        let same_violation = Monitor.same_class e.r_violations i.r_violations in
        (uc.uc_name, same_state, same_violation))
      ucs

  let table2 ucs =
    Report.table ~title:"TABLE II: Use case -> abusive functionality"
      ~header:[ "Use Case"; "Abusive Functionality" ]
      (List.map
         (fun uc ->
           [ uc.uc_name; Abusive_functionality.to_string uc.im.Intrusion_model.functionality ])
         ucs)

  let table3 rows =
    let injections = List.filter (fun r -> r.r_mode = Injection) rows in
    let use_cases = List.sort_uniq compare (List.map (fun r -> r.r_use_case) injections) in
    let versions = List.sort_uniq compare (List.map (fun r -> r.r_version) injections) in
    let cell uc version =
      match
        List.find_opt (fun r -> r.r_use_case = uc && r.r_version = version) injections
      with
      | None -> [ "?"; "?" ]
      | Some r ->
          [
            Report.check r.r_state;
            (if violated r then Report.check true
             else if r.r_state then Report.shield
             else "");
          ]
    in
    let header =
      "Use Case"
      :: List.concat_map
           (fun v ->
             [ Printf.sprintf "%s Err.State" (B.config_to_string v);
               Printf.sprintf "%s Sec.Viol." (B.config_to_string v) ])
           versions
    in
    let rows = List.map (fun uc -> uc :: List.concat_map (cell uc) versions) use_cases in
    Report.table
      ~title:
        "TABLE III: Results of the injection campaign (shield = erroneous state handled by the \
         system)"
      ~header rows

  let telemetry_table rows =
    let header =
      [
        "Use Case"; B.config_heading; "Mode"; "Dom"; "Viol"; B.port_heading; "Failed"; "Faults";
        "Flushes"; "Pg-type"; "Injector"; "VMI"; "VTime";
      ]
    in
    let body =
      List.concat_map
        (fun r ->
          let t = r.r_telemetry in
          let counters =
            [
              string_of_int (Trace.total_hypercalls t);
              string_of_int t.Trace.tm_hypercalls_failed;
              string_of_int t.Trace.tm_faults;
              string_of_int (t.Trace.tm_flushes + t.Trace.tm_invlpgs);
              string_of_int t.Trace.tm_page_type_changes;
              string_of_int t.Trace.tm_injector_accesses;
              Printf.sprintf "%d/%d" t.Trace.tm_vmi_scans t.Trace.tm_vmi_findings;
              (* per-trial virtual time, rendered in whole µs *)
              Printf.sprintf "%Ldus" (Int64.div r.r_vtime_ns 1000L);
            ]
          in
          let blank = List.map (fun _ -> "") counters in
          let prefix = [ r.r_use_case; B.config_to_string r.r_version; mode_to_string r.r_mode ] in
          (* one row per domain with violations; counters (which are
             per-trial, not per-domain) appear on the first row only *)
          match r.r_domains with
          | [] -> [ prefix @ [ "-"; "0" ] @ counters ]
          | doms ->
              List.mapi
                (fun i (dom, viols) ->
                  prefix
                  @ [ dom; string_of_int (List.length viols) ]
                  @ (if i = 0 then counters else blank))
                doms)
        rows
    in
    Report.table ~title:"Per-trial telemetry (counter deltas; one row per affected domain)"
      ~header body

  let publish reg row =
    let t = row.r_telemetry in
    let bump ?(labels = []) ~help name by =
      if by > 0 then Metrics.inc ~by (Metrics.counter reg ~help ~labels name)
    in
    Metrics.inc
      (Metrics.counter reg ~help:"Campaign trials run"
         ~labels:[ ("mode", mode_to_string row.r_mode) ]
         "campaign_trials_total");
    List.iter
      (fun (n, calls) ->
        bump
          ~labels:[ ("name", hypercall_name n) ]
          ~help:"Hypercalls dispatched" "hypercalls_total" calls)
      t.Trace.tm_hypercalls;
    bump ~help:"Hypercalls that returned an error" "hypercalls_failed_total"
      t.Trace.tm_hypercalls_failed;
    bump ~help:"Hardware exceptions delivered" "faults_total" t.Trace.tm_faults;
    bump ~help:"TLB flushes and invlpgs" "tlb_flushes_total"
      (t.Trace.tm_flushes + t.Trace.tm_invlpgs);
    bump ~help:"Page_info type transitions" "page_type_changes_total"
      t.Trace.tm_page_type_changes;
    bump ~help:"Raw injector memory accesses" "injector_accesses_total"
      t.Trace.tm_injector_accesses;
    bump ~help:"Monitor violations observed" "violations_total"
      (List.length row.r_violations);
    bump ~help:"VMI detector scans" "campaign_vmi_scans_total" t.Trace.tm_vmi_scans;
    bump ~help:"VMI detector findings" "campaign_vmi_findings_total" t.Trace.tm_vmi_findings;
    bump ~help:"Frames read by VMI scans" "campaign_vmi_frames_total" t.Trace.tm_vmi_frames
end

(* The default instantiation: the historical [Campaign] interface, on
   the Xen substrate. [Make] is applicative, so [Campaign.result_row]
   and [Campaign.Make(Substrate_xen).result_row] are the same type. *)
include Make (Substrate_xen)
