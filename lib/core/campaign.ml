type attempt = {
  transcript : string list;
  states : Erroneous_state.spec list;
  rc : int option;
}

type use_case = {
  uc_name : string;
  uc_xsa : string;
  uc_description : string;
  im : Intrusion_model.t;
  run_exploit : Testbed.t -> attempt;
  run_injection : Testbed.t -> attempt;
}

type mode = Real_exploit | Injection

type result_row = {
  r_use_case : string;
  r_version : Version.t;
  r_mode : mode;
  r_state : bool;
  r_state_evidence : string list;
  r_violations : Monitor.violation list;
  r_transcript : string list;
  r_rc : int option;
  r_telemetry : Trace.telemetry;
}

let mode_to_string = function Real_exploit -> "exploit" | Injection -> "injection"

let scheduler_rounds = 3

let run ?frames ?tb ?observer uc mode version =
  let tb =
    match tb with
    | Some tb ->
        Testbed.reset tb;
        tb
    | None -> Testbed.create ?frames version
  in
  if mode = Injection then Injector.install tb.Testbed.hv;
  (* Telemetry comes only from the always-on counters, never the ring,
     so a trial's result is identical with recording on or off. *)
  let tr = tb.Testbed.hv.Hv.trace in
  let counters_before = Trace.Counters.snapshot (Trace.counters tr) in
  let before = Monitor.snapshot tb in
  let observe () = match observer with Some f -> f tb | None -> () in
  let attempt =
    match mode with Real_exploit -> uc.run_exploit tb | Injection -> uc.run_injection tb
  in
  observe ();
  (* Let every domain run: vDSO hooks (and thus installed backdoors)
     execute during normal scheduling. *)
  for _ = 1 to scheduler_rounds do
    Testbed.tick_all tb;
    observe ()
  done;
  let audits = List.map (Erroneous_state.audit tb.Testbed.hv) attempt.states in
  let r_state = attempt.states <> [] && List.for_all (fun a -> a.Erroneous_state.holds) audits in
  let r_state_evidence = List.concat_map (fun a -> a.Erroneous_state.evidence) audits in
  let after = Monitor.snapshot tb in
  let r_violations = Monitor.violations ~before ~after in
  if Trace.recording tr then
    Trace.emit tr
      (Trace.Monitor_verdict
         { violations = List.length r_violations; classes = Monitor.class_mask r_violations });
  {
    r_use_case = uc.uc_name;
    r_version = version;
    r_mode = mode;
    r_state;
    r_state_evidence;
    r_violations;
    r_transcript = attempt.transcript;
    r_rc = attempt.rc;
    r_telemetry =
      Trace.delta ~before:counters_before
        ~after:(Trace.Counters.snapshot (Trace.counters tr));
  }

let run_matrix ?workers ?frames ucs ~versions ~modes =
  (* One cell per (uc, version, mode), in that nesting order; cells are
     independent, so they shard. Each worker keeps one testbed per
     version and resets it between cells instead of re-booting. *)
  let cells =
    List.concat_map
      (fun uc ->
        List.concat_map (fun version -> List.map (fun mode -> (uc, version, mode)) modes) versions)
      ucs
  in
  Shard.map_init ?workers
    ~init:(fun () -> Hashtbl.create 4)
    (fun testbeds _ (uc, version, mode) ->
      let tb =
        match Hashtbl.find_opt testbeds version with
        | Some tb -> tb
        | None ->
            let tb = Testbed.create ?frames version in
            Hashtbl.replace testbeds version tb;
            tb
      in
      run ~tb uc mode version)
    cells

let violated r = r.r_violations <> []

let validate_rq1 ?frames ucs =
  let tb = Testbed.create ?frames Version.V4_6 in
  List.map
    (fun uc ->
      let e = run ~tb uc Real_exploit Version.V4_6 in
      let i = run ~tb uc Injection Version.V4_6 in
      let same_state = e.r_state && i.r_state in
      let same_violation = Monitor.same_class e.r_violations i.r_violations in
      (uc.uc_name, same_state, same_violation))
    ucs

let table2 ucs =
  Report.table ~title:"TABLE II: Use case -> abusive functionality"
    ~header:[ "Use Case"; "Abusive Functionality" ]
    (List.map
       (fun uc ->
         [ uc.uc_name; Abusive_functionality.to_string uc.im.Intrusion_model.functionality ])
       ucs)

let table3 rows =
  let injections = List.filter (fun r -> r.r_mode = Injection) rows in
  let use_cases = List.sort_uniq compare (List.map (fun r -> r.r_use_case) injections) in
  let versions = List.sort_uniq compare (List.map (fun r -> r.r_version) injections) in
  let cell uc version =
    match
      List.find_opt (fun r -> r.r_use_case = uc && r.r_version = version) injections
    with
    | None -> [ "?"; "?" ]
    | Some r ->
        [
          Report.check r.r_state;
          (if violated r then Report.check true
           else if r.r_state then Report.shield
           else "");
        ]
  in
  let header =
    "Use Case"
    :: List.concat_map
         (fun v ->
           [ Printf.sprintf "%s Err.State" (Version.to_string v);
             Printf.sprintf "%s Sec.Viol." (Version.to_string v) ])
         versions
  in
  let rows = List.map (fun uc -> uc :: List.concat_map (cell uc) versions) use_cases in
  Report.table
    ~title:
      "TABLE III: Results of the injection campaign (shield = erroneous state handled by the \
       system)"
    ~header rows

let telemetry_table rows =
  let header =
    [
      "Use Case"; "Xen"; "Mode"; "Hypercalls"; "Failed"; "Faults"; "Flushes"; "Pg-type";
      "Injector"; "VMI";
    ]
  in
  let body =
    List.map
      (fun r ->
        let t = r.r_telemetry in
        [
          r.r_use_case;
          Version.to_string r.r_version;
          mode_to_string r.r_mode;
          string_of_int (Trace.total_hypercalls t);
          string_of_int t.Trace.tm_hypercalls_failed;
          string_of_int t.Trace.tm_faults;
          string_of_int (t.Trace.tm_flushes + t.Trace.tm_invlpgs);
          string_of_int t.Trace.tm_page_type_changes;
          string_of_int t.Trace.tm_injector_accesses;
          Printf.sprintf "%d/%d" t.Trace.tm_vmi_scans t.Trace.tm_vmi_findings;
        ])
      rows
  in
  Report.table ~title:"Per-trial telemetry (counter deltas)" ~header body

let hypercall_name = function
  | 1 -> "mmu_update"
  | 3 -> "update_va_mapping"
  | 12 -> "memory_op"
  | 18 -> "console_io"
  | 20 -> "grant_table_op"
  | 26 -> "mmuext_op"
  | 32 -> "event_channel_op"
  | n when n = Injector.hypercall_number -> Injector.hypercall_name
  | n -> Printf.sprintf "hypercall_%d" n

let publish reg row =
  let t = row.r_telemetry in
  let bump ?(labels = []) ~help name by =
    if by > 0 then Metrics.inc ~by (Metrics.counter reg ~help ~labels name)
  in
  Metrics.inc
    (Metrics.counter reg ~help:"Campaign trials run"
       ~labels:[ ("mode", mode_to_string row.r_mode) ]
       "campaign_trials_total");
  List.iter
    (fun (n, calls) ->
      bump
        ~labels:[ ("name", hypercall_name n) ]
        ~help:"Hypercalls dispatched" "hypercalls_total" calls)
    t.Trace.tm_hypercalls;
  bump ~help:"Hypercalls that returned an error" "hypercalls_failed_total"
    t.Trace.tm_hypercalls_failed;
  bump ~help:"Hardware exceptions delivered" "faults_total" t.Trace.tm_faults;
  bump ~help:"TLB flushes and invlpgs" "tlb_flushes_total"
    (t.Trace.tm_flushes + t.Trace.tm_invlpgs);
  bump ~help:"Page_info type transitions" "page_type_changes_total"
    t.Trace.tm_page_type_changes;
  bump ~help:"Raw injector memory accesses" "injector_accesses_total"
    t.Trace.tm_injector_accesses;
  bump ~help:"Monitor violations observed" "violations_total"
    (List.length row.r_violations);
  bump ~help:"VMI detector scans" "campaign_vmi_scans_total" t.Trace.tm_vmi_scans;
  bump ~help:"VMI detector findings" "campaign_vmi_findings_total" t.Trace.tm_vmi_findings;
  bump ~help:"Frames read by VMI scans" "campaign_vmi_frames_total" t.Trace.tm_vmi_frames
