(* Deterministic work sharding over OCaml 5 domains.

   Results land in an array indexed by input position, so the output
   order is the input order no matter which worker ran which item —
   byte-identical to the sequential run by construction. Work is dealt
   in chunks off an atomic counter (dynamic load balancing with one
   fetch-and-add per chunk rather than per item), which is safe exactly
   because items are independent: campaign trials carry their own PRNG
   seed and their own testbed. *)

let worker_count = function
  | Some w when w >= 1 -> w
  | Some _ -> invalid_arg "Shard: workers must be >= 1"
  | None -> 1

(* Cap the automatic choice: beyond a few workers the testbeds' combined
   allocation rate makes the stop-the-world minor GC the bottleneck. *)
let max_auto_workers = 8

let auto_workers () =
  max 1 (min (Stdlib.Domain.recommended_domain_count ()) max_auto_workers)

let workers_of_string s =
  match s with
  | "auto" -> Ok (auto_workers ())
  | s -> (
      (* name the flag in the error: this string surfaces verbatim as a
         CLI diagnostic for --workers on every command that shards *)
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some n ->
          Error
            (Printf.sprintf "--workers must be a positive integer or \"auto\", got %d" n)
      | None ->
          Error
            (Printf.sprintf "--workers must be a positive integer or \"auto\", got %S" s))

(* Chunks amortize counter contention at high trial counts; small enough
   chunks keep the tail balanced. ~8 chunks per worker, capped so a
   million-trial queue still rebalances. *)
let chunk_size ~workers n = max 1 (min 1024 (n / (workers * 8)))

(* The parallel engine shared by [map_init] (positional results) and
   [fold_init] (streaming accumulation). [run_chunk state start stop]
   processes items [start, stop); the first worker exception wins and is
   re-raised on the caller after every domain has parked. *)
let drive ~workers ~n ~init ~run_chunk =
  let next = Atomic.make 0 in
  let chunk = chunk_size ~workers n in
  let failed : exn option Atomic.t = Atomic.make None in
  let body () =
    match
      let state = init () in
      let rec loop () =
        if Atomic.get failed = None then begin
          let start = Atomic.fetch_and_add next chunk in
          if start < n then begin
            run_chunk state start (min n (start + chunk));
            loop ()
          end
        end
      in
      loop ()
    with
    | () -> ()
    | exception e -> ignore (Atomic.compare_and_set failed None (Some e))
  in
  (* Stdlib.Domain explicitly: the -open'd Ii_xen shadows Domain *)
  let spawned = Array.init (min workers n - 1) (fun _ -> Stdlib.Domain.spawn body) in
  body ();
  Array.iter Stdlib.Domain.join spawned;
  match Atomic.get failed with Some e -> raise e | None -> ()

let map_init ?workers ~init f xs =
  let workers = worker_count workers in
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else if workers = 1 then
    (* sequential fast path: no domains, same per-worker state contract *)
    let state = init () in
    Array.to_list (Array.mapi (fun i x -> f state i x) items)
  else begin
    let out = Array.make n None in
    drive ~workers ~n ~init ~run_chunk:(fun state start stop ->
        for i = start to stop - 1 do
          out.(i) <- Some (f state i items.(i))
        done);
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           (* unreachable: [drive] re-raised if any chunk was abandoned *)
           | None -> failwith "Shard.map_init: missing result")
         out)
  end

let map ?workers f xs = map_init ?workers ~init:(fun () -> ()) (fun () _ x -> f x) xs

let fold_init ?workers ~n ~init ~f ~merge acc0 =
  if n < 0 then invalid_arg "Shard.fold_init: n must be >= 0";
  let workers = worker_count workers in
  if n = 0 then acc0
  else if workers = 1 then begin
    let state = init () in
    let acc = ref acc0 in
    for i = 0 to n - 1 do
      acc := merge !acc (f state i)
    done;
    !acc
  end
  else begin
    (* merge under a lock, once per item but contended once per chunk in
       practice (the lock is uncontended within a worker's chunk run);
       [merge] must be insensitive to merge order — tallies are *)
    let lock = Mutex.create () in
    let acc = ref acc0 in
    drive ~workers ~n ~init ~run_chunk:(fun state start stop ->
        let rs = ref [] in
        for i = start to stop - 1 do
          rs := f state i :: !rs
        done;
        let rs = List.rev !rs in
        Mutex.lock lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock lock)
          (fun () -> acc := List.fold_left merge !acc rs));
    !acc
  end
