(** Driving VMI detectors against campaign trials: coverage and
    detection latency (which detectors catch which erroneous states,
    and how many trace events after injection).

    A functor over {!Substrate.S} like the rest of the stack — a trial
    arms the backend's detector suite ({!Substrate.S.detectors}), steps
    it at every observer point of the trial, and correlates detector
    firings against the injector's trace records. The toplevel is the
    Xen instantiation. *)

(* The latency origin: where the intrusion entered the machine. In
   injection mode that is the injector's first raw access; a real
   exploit has no injector records, so its first boundary crossing
   stands in. *)
let inject_record mode records =
  let first p = List.find_opt p records in
  match mode with
  | Campaign.Injection ->
      first (fun r ->
          match r.Trace.event with Trace.Injector_access _ -> true | _ -> false)
  | Campaign.Real_exploit -> first (fun r -> Trace.is_boundary r.Trace.event)

let inject_seq mode records =
  Option.map (fun r -> r.Trace.seq) (inject_record mode records)

(* Strip the VMI contribution out of a telemetry delta so detector-on
   and detector-off trials compare equal everywhere else. *)
let telemetry_sans_vmi (t : Trace.telemetry) =
  { t with Trace.tm_vmi_scans = 0; tm_vmi_findings = 0; tm_vmi_frames = 0 }

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

module Make (B : Substrate.S) = struct
  module C = Campaign.Make (B)
  module T = Trace_driver.Make (B)

  type trial = {
    t_recording : T.recording;
    t_inject_seq : int option;
    t_inject_vts : int64 option;
    t_first_fire : (string * int) list;
    t_latency : (string * int option) list;
        (** legacy denomination: trace events between injection and fire *)
    t_latency_ns : (string * int64 option) list;
        (** the same interval on the virtual clock, in simulated ns *)
    t_findings : (string * string list) list;
    t_scans : int;
    t_frames_read : int;
    t_scan_cost_ns : int64;
    t_domains : (string * Monitor.violation list) list;
        (** per-domain blast radius of the trial (from the result row) *)
  }

  let run_trial ?frames ?domains ?load ?capacity_bytes ?period ?every_ns ?registry
      ?(detectors = B.detectors ()) uc mode version =
    let sched = Vmi.Scheduler.create ?period ?every_ns ?registry detectors in
    let recording =
      T.record ?frames ?domains ?load ?capacity_bytes
        ~prepare:(fun tb -> Vmi.Scheduler.arm sched tb)
        ~observer:(fun tb -> Vmi.Scheduler.step sched (B.trace tb) tb)
        uc mode version
    in
    let records = T.events recording in
    (* A wrapped ring may have evicted the injection record; the
       surviving records would then yield a bogus (too-late) origin and
       a silently wrong latency. No origin -> no latency claims. *)
    let inject =
      if recording.T.rec_dropped > 0 then None else inject_record mode records
    in
    let t_inject_seq = Option.map (fun r -> r.Trace.seq) inject in
    let t_inject_vts = Option.map (fun r -> r.Trace.vts) inject in
    let first_fire = Vmi.Scheduler.first_fire sched in
    let first_fire_vts = Vmi.Scheduler.first_fire_vts sched in
    let latency_of name =
      match (List.assoc_opt name first_fire, t_inject_seq) with
      | Some fire, Some inj when fire > inj -> Some (fire - inj)
      | _ -> None
    in
    (* ns latency is gated on the same seq comparison: the clock can
       stand still across events (zero-cost records), so [fire > inj]
       on seq is the authoritative "fired after injection" test. *)
    let latency_ns_of name =
      match (List.assoc_opt name first_fire, t_inject_seq, t_inject_vts) with
      | Some fire, Some inj, Some ivts when fire > inj ->
          Option.map
            (fun fvts -> Int64.sub fvts ivts)
            (List.assoc_opt name first_fire_vts)
      | _ -> None
    in
    {
      t_recording = recording;
      t_inject_seq;
      t_inject_vts;
      t_first_fire = first_fire;
      t_latency = List.map (fun d -> (d.Vmi.Detector.name, latency_of d.Vmi.Detector.name)) detectors;
      t_latency_ns =
        List.map (fun d -> (d.Vmi.Detector.name, latency_ns_of d.Vmi.Detector.name)) detectors;
      t_findings = Vmi.Scheduler.findings sched;
      t_scans = Vmi.Scheduler.scans_run sched;
      t_frames_read = Vmi.Scheduler.frames_read sched;
      t_scan_cost_ns = Vmi.Scheduler.scan_cost_ns sched;
      t_domains = recording.T.rec_row.C.r_domains;
    }

  let covered t = List.exists (fun (_, l) -> l <> None) t.t_latency

  let best_latency t =
    List.fold_left
      (fun best (_, l) ->
        match (best, l) with
        | None, l -> l
        | Some b, Some l -> Some (min b l)
        | Some b, None -> Some b)
      None t.t_latency

  let best_latency_ns t =
    List.fold_left
      (fun best (_, l) ->
        match (best, l) with
        | None, l -> l
        | Some b, Some l -> Some (if Int64.compare l b < 0 then l else b)
        | Some b, None -> Some b)
      None t.t_latency_ns

  let coverage ?frames ?domains ?load ?period ?every_ns ?registry ucs mode version =
    List.map
      (fun uc -> run_trial ?frames ?domains ?load ?period ?every_ns ?registry uc mode version)
      ucs

  (* Per-domain blast radius and detection latency: one row per (trial,
     affected domain). The latency is the trial's best (first) detector
     fire — detectors watch host-critical structures, so the same
     latency bounds every domain's exposure window under that trial. *)
  let domain_table trials =
    let header = [ "Use Case"; "Mode"; "Dom"; "Violations"; "Latency" ] in
    let rows =
      List.concat_map
        (fun t ->
          let latency =
            match
              List.fold_left
                (fun best (_, l) ->
                  match (best, l) with
                  | None, l -> l
                  | Some b, Some l -> Some (if Int64.compare l b < 0 then l else b)
                  | Some b, None -> Some b)
                None t.t_latency_ns
            with
            | Some ns -> Printf.sprintf "%Ldns" ns
            | None -> "-"
          in
          let prefix =
            [
              t.t_recording.T.rec_use_case;
              Campaign.mode_to_string t.t_recording.T.rec_mode;
            ]
          in
          match t.t_domains with
          | [] -> [ prefix @ [ "-"; "0"; latency ] ]
          | doms ->
              List.map
                (fun (dom, viols) ->
                  prefix @ [ dom; string_of_int (List.length viols); latency ])
                doms)
        trials
    in
    Report.table ~title:"Per-domain blast radius x detection latency" ~header rows

  let matrix_table trials =
    let detectors =
      match trials with [] -> [] | t :: _ -> List.map fst t.t_latency
    in
    let header =
      "Detector" :: List.map (fun t -> t.t_recording.T.rec_use_case) trials
    in
    let rows =
      List.map
        (fun d ->
          d
          :: List.map
               (fun t ->
                 match List.assoc_opt d t.t_latency_ns with
                 | Some (Some ns) -> Printf.sprintf "%Ldns" ns
                 | _ -> "-")
               trials)
        detectors
    in
    Report.table
      ~title:"Detector x erroneous-state coverage (detection latency in virtual ns)"
      ~header rows

  let non_vmi_events recording =
    List.filter_map
      (fun r ->
        match r.Trace.event with Trace.Vmi_scan _ -> None | e -> Some e)
      (T.events recording)

  let side_effect_free ?frames uc mode version =
    let plain = T.record ?frames uc mode version in
    let t = run_trial ?frames uc mode version in
    let watched = t.t_recording in
    let row_equal =
      let a = plain.T.rec_row and b = watched.T.rec_row in
      a.C.r_state = b.C.r_state
      && a.C.r_state_evidence = b.C.r_state_evidence
      && a.C.r_violations = b.C.r_violations
      && a.C.r_transcript = b.C.r_transcript
      && a.C.r_rc = b.C.r_rc
      && telemetry_sans_vmi a.C.r_telemetry = telemetry_sans_vmi b.C.r_telemetry
    in
    plain.T.rec_final = watched.T.rec_final
    && row_equal
    && non_vmi_events plain = non_vmi_events watched

  let to_json trials =
    let one t =
      (* per-detector latency under both denominations: "latency"
         (trace events, the legacy key, kept for one release of
         overlap) and "latency_ns" (virtual ns, the new currency) *)
      let lat =
        String.concat ","
          (List.map
             (fun (d, l) ->
               Printf.sprintf "\"%s\":%s" (json_escape d)
                 (match l with Some l -> string_of_int l | None -> "null"))
             t.t_latency)
      in
      let lat_ns =
        String.concat ","
          (List.map
             (fun (d, l) ->
               Printf.sprintf "\"%s\":%s" (json_escape d)
                 (match l with Some l -> Int64.to_string l | None -> "null"))
             t.t_latency_ns)
      in
      Printf.sprintf
        "{\"use_case\":\"%s\",\"mode\":\"%s\",\"version\":\"%s\",\"inject_seq\":%s,\
         \"inject_vts\":%s,\"scans\":%d,\"frames_read\":%d,\"scan_cost_ns\":%Ld,\
         \"covered\":%b,\"latency\":{%s},\"latency_ns\":{%s}}"
        (json_escape t.t_recording.T.rec_use_case)
        (Campaign.mode_to_string t.t_recording.T.rec_mode)
        (json_escape (B.config_to_string t.t_recording.T.rec_version))
        (match t.t_inject_seq with Some s -> string_of_int s | None -> "null")
        (match t.t_inject_vts with Some s -> Int64.to_string s | None -> "null")
        t.t_scans t.t_frames_read t.t_scan_cost_ns (covered t) lat lat_ns
    in
    "[" ^ String.concat ",\n " (List.map one trials) ^ "]"
end

include Make (Substrate_xen)
