(** System monitoring (the final stage of Fig 2).

    A security violation "may happen or not, depending on the capacity
    of the system to deal with intrusions" (§IV-A); the monitor decides
    which by comparing snapshots of the whole testbed taken before and
    after an exploit or an injection. *)

type violation =
  | Hypervisor_crash of string  (** panic reason *)
  | Privilege_escalation of string  (** evidence *)
  | Unauthorized_disclosure of string
  | Integrity_violation of string
      (** a hypervisor integrity invariant broke: a guest holds a
          reachable writable mapping of a page-table page *)
  | Guest_crash of string
  | Availability_degradation of string

type snapshot = {
  crashed : bool;
  crash_reason : string option;
  root_artifacts : (string * string) list;  (** (host, path) of root-owned files *)
  root_shells : (string * string) list;  (** (victim host, remote host) *)
  disclosed : string list;  (** secrets visible outside their domain *)
  guest_crashes : string list;
  pending_events : (string * int) list;
  pt_exposure : (string * int) list;
      (** per host: guest-reachable writable mappings of page-table
          frames, found by walking the live tables like the MMU would
          and filtering by the version's address-space layout *)
  m2p_mismatches : int;
      (** populated P2M entries whose M2P inverse disagrees — the
          hypervisor invariant randomized M2P corruption breaks *)
  domain_pages : (string * int) list;
      (** per host: populated pages; a sharp drop between snapshots is
          balloon pressure (the management-interface violation) *)
  sched_stalled : int;
      (** consecutive scheduler slices lost to a hung vcpu *)
  free_frames : int;
      (** free host frames; halving between snapshots is exhaustion *)
}

type scan_cache
(** Cross-snapshot cache for the expensive audits (page-table walks and
    the M2P inverse check). Campaign loops snapshot the same
    reset-to-baseline testbed thousands of times; the cache reuses
    baseline scan results whenever it can prove their inputs unchanged —
    via the [Phys_mem] dirty list and the [Page_info] type-state
    generation. Create one cache per testbed and keep it for the
    testbed's whole reset lifetime; never share it across testbeds. *)

val create_scan_cache : unit -> scan_cache

val snapshot : ?cache:scan_cache -> Testbed.t -> snapshot
(** [snapshot ?cache tb] is independent of [cache]: passing one changes
    only the cost, never the result. *)

val writable_pt_exposure :
  ?memo:(int * Addr.mfn * int64 * bool, int) Hashtbl.t ->
  ?cache:scan_cache ->
  Hv.t ->
  Domain.t ->
  int
(** The integrity audit behind [pt_exposure]: how many leaf (or
    superpage) mappings give this domain, at guest privilege, write
    access to frames currently typed as page tables. Always 0 on a
    healthy direct-paging system. [memo] dedups shared subtrees within
    one snapshot; [cache] (which takes precedence) reuses whole baseline
    scans across snapshots of a resettable testbed. *)

val violations : before:snapshot -> after:snapshot -> violation list
(** Violations that appeared between the two snapshots, most severe
    first. An empty list means the system handled the state (the
    shield of Table III). *)

val violations_by_domain :
  before:snapshot -> after:snapshot -> (string * violation list) list
(** The same violations as {!violations}, grouped by the domain
    (hostname) each one was observed in. Host-level conditions — a
    hypervisor crash, M2P divergence, scheduler stalls, frame
    exhaustion — group under ["host"]. Domains appear in
    first-violation order; within a domain the {!violations} order is
    preserved. Domains with no violations do not appear. *)

val violation_to_string : violation -> string
val pp_violation : Format.formatter -> violation -> unit

val same_class : violation list -> violation list -> bool
(** Same multiset of violation classes (ignoring evidence strings) —
    the comparison RQ1 makes between exploit and injection runs. *)

val class_mask : violation list -> int
(** Bitmask of the violation classes present (bit 0 = hypervisor crash,
    … bit 5 = availability degradation) — the compact form trace
    [Monitor_verdict] records carry. *)

val class_index : violation -> int
(** The class number behind {!class_mask}'s bits (0–5): the violation
    axis of {!Coverage} maps. *)
