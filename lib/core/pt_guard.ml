type policy = Detect_only | Detect_and_repair

type detection = { d_mfn : Addr.mfn; d_offsets : int list; repaired : bool }

type t = {
  hv : Hv.t;
  guard_policy : policy;
  golden : (Addr.mfn, Frame.t) Hashtbl.t;
  mutable history : detection list;
  mutable audit_count : int;
  mutable period : int option;
  mutable tick_clock : int;
}

let snapshot t mfn = Hashtbl.replace t.golden mfn (Frame.copy (Phys_mem.frame_ro t.hv.Hv.mem mfn))

let protect t mfn = snapshot t mfn

let initial_protected hv =
  let pt_frames =
    List.concat_map
      (fun dom -> dom.Domain.l4_mfn :: dom.Domain.pt_pages)
      hv.Hv.domains
  in
  let critical = hv.Hv.idt_mfn :: Array.to_list hv.Hv.m2p_mfns in
  List.sort_uniq compare (critical @ pt_frames)

let deploy hv guard_policy =
  let t =
    {
      hv;
      guard_policy;
      golden = Hashtbl.create 64;
      history = [];
      audit_count = 0;
      period = None;
      tick_clock = 0;
    }
  in
  List.iter (fun mfn -> snapshot t mfn) (initial_protected hv);
  (* The authorized update stream: validated MMU writes refresh the
     golden copy, so only out-of-band writes ever diverge. *)
  hv.Hv.pt_write_hook <- Some (fun mfn -> if Hashtbl.mem t.golden mfn then snapshot t mfn);
  t

let policy t = t.guard_policy

let protected_frames t =
  List.sort compare (Hashtbl.fold (fun mfn _ acc -> mfn :: acc) t.golden [])

let audit t =
  t.audit_count <- t.audit_count + 1;
  let found =
    Hashtbl.fold
      (fun mfn golden acc ->
        if not (Phys_mem.is_valid_mfn t.hv.Hv.mem mfn) then acc
        else
          let live = Phys_mem.frame t.hv.Hv.mem mfn in
          if Frame.equal live golden then acc
          else begin
            let offsets = ref [] in
            for i = (Addr.page_size / 8) - 1 downto 0 do
              if Frame.get_u64 live (8 * i) <> Frame.get_u64 golden (8 * i) then
                offsets := (8 * i) :: !offsets
            done;
            let repaired =
              match t.guard_policy with
              | Detect_only -> false
              | Detect_and_repair ->
                  List.iter
                    (fun off -> Frame.set_u64 live off (Frame.get_u64 golden off))
                    !offsets;
                  true
            in
            if repaired then
              Hv.log t.hv
                (Printf.sprintf "pt-guard: repaired %d corrupted words in frame 0x%x"
                   (List.length !offsets) mfn)
            else
              Hv.log t.hv
                (Printf.sprintf "pt-guard: detected %d corrupted words in frame 0x%x"
                   (List.length !offsets) mfn);
            { d_mfn = mfn; d_offsets = !offsets; repaired } :: acc
          end)
      t.golden []
  in
  t.history <- found @ t.history;
  found

let detections t = t.history
let audits_run t = t.audit_count

let enable_periodic t ~every =
  if every <= 0 then invalid_arg "Pt_guard.enable_periodic";
  t.period <- Some every;
  t.tick_clock <- 0

let on_tick t =
  match t.period with
  | None -> ()
  | Some every ->
      t.tick_clock <- t.tick_clock + 1;
      if t.tick_clock >= every then begin
        t.tick_clock <- 0;
        ignore (audit t)
      end
