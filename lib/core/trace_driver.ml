(** Record/replay driving for campaign trials.

    A {e recording} is one trial run with the trace ring enabled: the
    result row plus the raw ring bytes. Replaying re-drives the
    boundary events of the ring against a fresh testbed and compares
    final monitor snapshots — the determinism property the trace
    subsystem exists to provide.

    Like {!Campaign}, the driver is a functor over {!Substrate.S}
    (replay delegates event application to {!Substrate.S.apply_event})
    with the toplevel instantiated at {!Substrate_xen}. *)

let hypercall_name = Campaign.hypercall_name

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_telemetry t =
  Printf.sprintf
    "{\"hypercalls\":[%s],\"hypercalls_total\":%d,\"hypercalls_failed\":%d,\"faults\":%d,\
     \"double_faults\":%d,\"flushes\":%d,\"invlpgs\":%d,\"page_type_changes\":%d,\
     \"grant_ops\":%d,\"evtchn_ops\":%d,\"injector_accesses\":%d,\"vmi_scans\":%d,\
     \"vmi_findings\":%d,\"vmi_frames\":%d}"
    (String.concat ","
       (List.map
          (fun (n, c) ->
            Printf.sprintf "{\"number\":%d,\"name\":\"%s\",\"calls\":%d}" n
              (json_escape (hypercall_name n))
              c)
          t.Trace.tm_hypercalls))
    (Trace.total_hypercalls t) t.Trace.tm_hypercalls_failed t.Trace.tm_faults
    t.Trace.tm_double_faults t.Trace.tm_flushes t.Trace.tm_invlpgs t.Trace.tm_page_type_changes
    t.Trace.tm_grant_ops t.Trace.tm_evtchn_ops t.Trace.tm_injector_accesses
    t.Trace.tm_vmi_scans t.Trace.tm_vmi_findings t.Trace.tm_vmi_frames

module Make (B : Substrate.S) = struct
  module C = Campaign.Make (B)

  type recording = {
    rec_use_case : string;
    rec_mode : Campaign.mode;
    rec_version : B.config;
    rec_frames : int option;
    rec_domains : int option;
    rec_load : Load_mix.t option;
        (** the testbed shape (guest-domain count, background-load mix)
            the trial ran under; replay recreates the same shape so
            multi-domain loaded recordings reproduce byte-for-byte *)
    rec_row : C.result_row;
    rec_bytes : string;
    rec_dropped : int;
    rec_model : Vclock.Cost_model.t;
        (** the cost model the trial charged under; replay re-applies it
            so virtual timestamps reproduce under non-default models *)
    rec_final : B.snapshot;
    rec_prov : string option;
        (** canonical causal graph ({!Provenance.to_json}) when the
            trial ran with provenance attached; replay must reproduce it
            byte for byte *)
    rec_cov : Coverage.map option;
        (** the trial's coverage map when recorded with [~coverage:true];
            replay must reproduce it byte for byte, like vts and the
            causal graph *)
  }

  let prov_export tb =
    match B.provenance tb with Some p -> Some (Provenance.to_json p) | None -> None

  let record ?frames ?domains ?load ?capacity_bytes ?(provenance = false) ?(coverage = false)
      ?prepare ?observer uc mode version =
    let tb = B.create ?frames ?domains ?load version in
    if provenance then B.enable_provenance tb;
    (* [prepare] runs before the ring opens (and before Campaign.run's
       reset, which returns to this very state): the place to arm VMI
       detector baselines against the known-good testbed. *)
    (match prepare with Some f -> f tb | None -> ());
    let tr = B.trace tb in
    if coverage then Trace.set_coverage tr (Some (Coverage.create ()));
    Trace.enable ?capacity_bytes tr;
    let row = C.run ~tb ?observer uc mode version in
    Trace.disable tr;
    let rec_final = B.snapshot tb in
    {
      rec_use_case = uc.C.uc_name;
      rec_mode = mode;
      rec_version = version;
      rec_frames = frames;
      rec_domains = domains;
      rec_load = load;
      rec_row = row;
      rec_bytes = Trace.to_bytes tr;
      rec_dropped = Trace.dropped tr;
      rec_model = Vclock.model (Trace.vclock tr);
      rec_final;
      rec_prov = prov_export tb;
      (* Campaign.run already snapshotted the collector (violation axis
         included) into the row — that snapshot is the map replay must
         reproduce *)
      rec_cov = row.C.r_coverage;
    }

  let events r = Trace.records_of_string r.rec_bytes

  type replay_outcome = {
    rp_applied : int;
    rp_skipped : int;
    rp_final : B.snapshot;
    rp_equal : bool;
    rp_vts_equal : bool;
        (** the replay reproduced the recording's virtual timestamps
            byte-for-byte: re-driving the boundary stream re-emitted
            the same (event, vts) sequence, modulo the records only
            the recording side produces (VMI scans, the final monitor
            verdict) *)
    rp_prov : string option;
        (** the replay's own canonical graph (provenance-enabled
            recordings only) *)
    rp_prov_equal : bool;
        (** canonical graphs match; vacuously true for plain
            recordings *)
    rp_cov : Coverage.map option;
        (** the replay's own coverage map (coverage recordings only) *)
    rp_cov_equal : bool;
        (** coverage maps are byte-identical; vacuously true for
            recordings made without coverage *)
  }

  (* The records a replay regenerates: everything except detector scans
     (observer-driven, never re-run) and the campaign's closing monitor
     verdict. Comparing (vts, event) pairs over this stream is the
     virtual-time determinism contract. *)
  let vts_stream recs =
    List.filter_map
      (fun { Trace.vts; event; _ } ->
        match event with
        | Trace.Vmi_scan _ | Trace.Monitor_verdict _ -> None
        | _ -> Some (vts, event))
      recs

  let replay r =
    if r.rec_dropped > 0 then
      invalid_arg
        (Printf.sprintf "Trace_driver.replay: recording dropped %d records" r.rec_dropped);
    let tb =
      B.create ?frames:r.rec_frames ?domains:r.rec_domains ?load:r.rec_load r.rec_version
    in
    B.set_cost_model tb r.rec_model;
    if r.rec_prov <> None then B.enable_provenance tb;
    (* record the replay too: re-driven boundary events re-emit through
       the same instrumentation, so their (vts, event) stream must come
       back byte-identical. Sized so nothing drops (the replayed stream
       is a subset of the recorded one). *)
    let tr = B.trace tb in
    Trace.enable ~capacity_bytes:(max (4 * 1024 * 1024) (2 * String.length r.rec_bytes + 64)) tr;
    (* mirror the recording's trial preamble with the ring already open:
       Campaign.run resets the testbed (whose TLB flush lands in the
       ring) and only then installs the injector, so the replayed stream
       starts on the same records and stamps as the recorded one *)
    B.reset tb;
    if r.rec_mode = Campaign.Injection then B.install_injector tb;
    (* mirror Campaign.run's coverage protocol: a fresh collector,
       cleared at the same point in the preamble, and a before-snapshot
       from the same pristine state (its provenance observes land in the
       map exactly where the recording's did) *)
    let cov =
      match r.rec_cov with
      | None -> None
      | Some _ ->
          let c = Coverage.create () in
          Trace.set_coverage tr (Some c);
          Coverage.clear c;
          Some (c, B.snapshot tb)
    in
    let applied = ref 0 and skipped = ref 0 in
    List.iter
      (fun { Trace.event; _ } ->
        if Trace.is_boundary event && B.apply_event tb event then incr applied
        else incr skipped)
      (events r);
    Trace.disable tr;
    let replayed = Trace.records_of_string (Trace.to_bytes tr) in
    let rp_final = B.snapshot tb in
    let rp_prov = prov_export tb in
    let rp_cov =
      match cov with
      | None -> None
      | Some (c, before) ->
          (* the violation axis is fed from the final verdict, exactly
             as Campaign.run fed it before snapshotting *)
          List.iter
            (fun (dom, vs) ->
              List.iter
                (fun v -> Coverage.note_violation c ~cls:(Monitor.class_index v) ~domain:dom)
                vs)
            (B.violations_by_domain ~before ~after:rp_final);
          Some (Coverage.snapshot c)
    in
    {
      rp_applied = !applied;
      rp_skipped = !skipped;
      rp_final;
      rp_equal = rp_final = r.rec_final;
      rp_vts_equal = vts_stream replayed = vts_stream (events r);
      rp_prov;
      rp_prov_equal = rp_prov = r.rec_prov;
      rp_cov;
      rp_cov_equal =
        (match (r.rec_cov, rp_cov) with
        | None, _ -> true
        | Some a, Some b -> Coverage.equal a b
        | Some _, None -> false);
    }

  (* --- reporting ------------------------------------------------------- *)

  let render r =
    let buf = Buffer.create 4096 in
    let recs = events r in
    Buffer.add_string buf
      (Printf.sprintf "trace: %s / %s / %s\n" r.rec_use_case
         (Campaign.mode_to_string r.rec_mode)
         (B.config_label r.rec_version));
    Buffer.add_string buf
      (Printf.sprintf "records: %d (%d dropped)\n" (List.length recs) r.rec_dropped);
    List.iter
      (fun { Trace.seq; vts; event } ->
        Buffer.add_string buf (Format.asprintf "%6d  %10Ldns  %a\n" seq vts Trace.pp_event event))
      recs;
    let t = r.rec_row.C.r_telemetry in
    Buffer.add_string buf
      (Printf.sprintf "telemetry: %d hypercalls (%d failed), %d faults, %d flushes\n"
         (Trace.total_hypercalls t) t.Trace.tm_hypercalls_failed t.Trace.tm_faults
         (t.Trace.tm_flushes + t.Trace.tm_invlpgs));
    List.iter
      (fun (n, count) ->
        Buffer.add_string buf (Printf.sprintf "  %-20s %d\n" (hypercall_name n) count))
      t.Trace.tm_hypercalls;
    (match (Trace.detection_latency recs, Trace.detection_latency_ns recs) with
    | Some d, Some ns ->
        Buffer.add_string buf
          (Printf.sprintf "detection latency: %Ld virtual ns (%d events)\n" ns d)
    | Some d, None -> Buffer.add_string buf (Printf.sprintf "detection latency: %d events\n" d)
    | None, _ -> ());
    Buffer.add_string buf
      (Printf.sprintf "verdict: state=%b violations=%d\n" r.rec_row.C.r_state
         (List.length r.rec_row.C.r_violations));
    Buffer.contents buf

  let to_json r =
    let recs = events r in
    Printf.sprintf
      "{\"use_case\":\"%s\",\"mode\":\"%s\",\"version\":\"%s\",\"records\":%d,\"dropped\":%d,\
       \"detection_latency\":%s,\"detection_latency_ns\":%s,\"vtime_ns\":%Ld,\"state\":%b,\
       \"violations\":%d,\"telemetry\":%s,\"events\":%s}"
      (json_escape r.rec_use_case)
      (Campaign.mode_to_string r.rec_mode)
      (json_escape (B.config_to_string r.rec_version))
      (List.length recs) r.rec_dropped
      (match Trace.detection_latency recs with Some d -> string_of_int d | None -> "null")
      (match Trace.detection_latency_ns recs with Some d -> Int64.to_string d | None -> "null")
      r.rec_row.C.r_vtime_ns
      r.rec_row.C.r_state
      (List.length r.rec_row.C.r_violations)
      (json_of_telemetry r.rec_row.C.r_telemetry)
      (Trace.json_of_records recs)
end

include Make (Substrate_xen)

let apply = Substrate_xen.apply_event
(** Kept under its historical name for direct callers. *)
