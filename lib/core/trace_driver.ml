type recording = {
  rec_use_case : string;
  rec_mode : Campaign.mode;
  rec_version : Version.t;
  rec_frames : int option;
  rec_row : Campaign.result_row;
  rec_bytes : string;
  rec_dropped : int;
  rec_final : Monitor.snapshot;
}

let record ?frames ?capacity_bytes ?prepare ?observer uc mode version =
  let tb = Testbed.create ?frames version in
  (* [prepare] runs before the ring opens (and before Campaign.run's
     reset, which returns to this very state): the place to arm VMI
     detector baselines against the known-good testbed. *)
  (match prepare with Some f -> f tb | None -> ());
  let tr = tb.Testbed.hv.Hv.trace in
  Trace.enable ?capacity_bytes tr;
  let row = Campaign.run ~tb ?observer uc mode version in
  Trace.disable tr;
  {
    rec_use_case = uc.Campaign.uc_name;
    rec_mode = mode;
    rec_version = version;
    rec_frames = frames;
    rec_row = row;
    rec_bytes = Trace.to_bytes tr;
    rec_dropped = Trace.dropped tr;
    rec_final = Monitor.snapshot tb;
  }

let events r = Trace.records_of_string r.rec_bytes

type replay_outcome = {
  rp_applied : int;
  rp_skipped : int;
  rp_final : Monitor.snapshot;
  rp_equal : bool;
}

let kernel_of tb domid =
  List.find_opt (fun k -> Kernel.domid k = domid) (Testbed.kernels tb)

(* Apply one boundary event. Returns false when the event could not be
   matched to the testbed (a desynchronized replay) — callers count
   those as skipped rather than failing midway, so the final-snapshot
   comparison still reports how far off the run ended up. *)
let apply tb (ev : Trace.event) =
  let hv = tb.Testbed.hv in
  match ev with
  | Trace.Hypercall { domid; payload; _ } -> (
      if payload = "" then false
      else
        match (kernel_of tb domid, Hypercall.decode_call payload) with
        | Some k, Some call ->
            ignore (Kernel.hypercall k call);
            true
        | _ -> false)
  | Trace.Guest_mem { domid; op; va; len; data } -> (
      match kernel_of tb domid with
      | None -> false
      | Some k -> (
          match op with
          | Trace.Op_read_u64 ->
              ignore (Kernel.read_u64 k va);
              true
          | Trace.Op_write_u64 when String.length data = 8 ->
              ignore (Kernel.write_u64 k va (String.get_int64_le data 0));
              true
          | Trace.Op_read_bytes ->
              ignore (Kernel.read_bytes k va len);
              true
          | Trace.Op_write_bytes ->
              ignore (Kernel.write_bytes k va (Bytes.of_string data));
              true
          | Trace.Op_user_read_u64 ->
              ignore (Kernel.user_read_u64 k va);
              true
          | Trace.Op_user_write_u64 when String.length data = 8 ->
              ignore (Kernel.user_write_u64 k va (String.get_int64_le data 0));
              true
          | Trace.Op_probe_u64 ->
              (* a page-table probe: translated like a kernel read (and
                 thus populating the TLB, which stale-translation
                 exploits depend on) but never faulting *)
              ignore
                (Cpu.read_u64 hv.Hv.cpu ~ring:Cpu.Kernel
                   ~cr3:(Kernel.dom k).Domain.l4_mfn va);
              true
          | Trace.Op_write_u64 | Trace.Op_user_write_u64 -> false))
  | Trace.Guest_invlpg { domid; va } -> (
      match kernel_of tb domid with
      | None -> false
      | Some k ->
          Kernel.invlpg k va;
          true)
  | Trace.Kernel_tick { domid } -> (
      match kernel_of tb domid with
      | None -> false
      | Some k ->
          Kernel.tick k;
          true)
  | Trace.Sched_round ->
      Testbed.tick_all tb;
      true
  | Trace.Net_listen { host; port } ->
      Netsim.listen tb.Testbed.net ~host ~port;
      true
  | Trace.Net_cmd { to_host; port; conn_id; cmd } -> (
      match
        List.find_opt
          (fun c -> c.Netsim.conn_id = conn_id)
          (Netsim.connections_to tb.Testbed.net ~host:to_host ~port)
      with
      | None -> false
      | Some conn ->
          ignore (Netsim.run_command conn cmd);
          true)
  | Trace.Xenstore_write { caller; injected; path; value } ->
      if injected then Xenstore.inject_write hv.Hv.xenstore path value
      else ignore (Xenstore.write hv.Hv.xenstore ~caller path value);
      true
  | Trace.Hypercall_ret _ | Trace.Fault _ | Trace.Tlb_flush_all | Trace.Tlb_invlpg _
  | Trace.Page_type _ | Trace.Grant_op _ | Trace.Evtchn_op _ | Trace.Injector_access _
  | Trace.Console _ | Trace.Monitor_verdict _ | Trace.Panic _ | Trace.Vmi_scan _ ->
      false

let replay r =
  if r.rec_dropped > 0 then
    invalid_arg
      (Printf.sprintf "Trace_driver.replay: recording dropped %d records" r.rec_dropped);
  let tb = Testbed.create ?frames:r.rec_frames r.rec_version in
  if r.rec_mode = Campaign.Injection then Injector.install tb.Testbed.hv;
  let applied = ref 0 and skipped = ref 0 in
  List.iter
    (fun { Trace.event; _ } ->
      if Trace.is_boundary event && apply tb event then incr applied else incr skipped)
    (events r);
  let rp_final = Monitor.snapshot tb in
  {
    rp_applied = !applied;
    rp_skipped = !skipped;
    rp_final;
    rp_equal = rp_final = r.rec_final;
  }

(* --- reporting --------------------------------------------------------- *)

let hypercall_name = Campaign.hypercall_name

let render r =
  let buf = Buffer.create 4096 in
  let recs = events r in
  Buffer.add_string buf
    (Printf.sprintf "trace: %s / %s / Xen %s\n" r.rec_use_case
       (Campaign.mode_to_string r.rec_mode)
       (Version.to_string r.rec_version));
  Buffer.add_string buf
    (Printf.sprintf "records: %d (%d dropped)\n" (List.length recs) r.rec_dropped);
  List.iter
    (fun { Trace.seq; event } ->
      Buffer.add_string buf (Format.asprintf "%6d  %a\n" seq Trace.pp_event event))
    recs;
  let t = r.rec_row.Campaign.r_telemetry in
  Buffer.add_string buf
    (Printf.sprintf "telemetry: %d hypercalls (%d failed), %d faults, %d flushes\n"
       (Trace.total_hypercalls t) t.Trace.tm_hypercalls_failed t.Trace.tm_faults
       (t.Trace.tm_flushes + t.Trace.tm_invlpgs));
  List.iter
    (fun (n, count) ->
      Buffer.add_string buf (Printf.sprintf "  %-20s %d\n" (hypercall_name n) count))
    t.Trace.tm_hypercalls;
  (match Trace.detection_latency recs with
  | Some d -> Buffer.add_string buf (Printf.sprintf "detection latency: %d events\n" d)
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "verdict: state=%b violations=%d\n" r.rec_row.Campaign.r_state
       (List.length r.rec_row.Campaign.r_violations));
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_telemetry t =
  Printf.sprintf
    "{\"hypercalls\":[%s],\"hypercalls_total\":%d,\"hypercalls_failed\":%d,\"faults\":%d,\
     \"double_faults\":%d,\"flushes\":%d,\"invlpgs\":%d,\"page_type_changes\":%d,\
     \"grant_ops\":%d,\"evtchn_ops\":%d,\"injector_accesses\":%d,\"vmi_scans\":%d,\
     \"vmi_findings\":%d,\"vmi_frames\":%d}"
    (String.concat ","
       (List.map
          (fun (n, c) ->
            Printf.sprintf "{\"number\":%d,\"name\":\"%s\",\"calls\":%d}" n
              (json_escape (hypercall_name n))
              c)
          t.Trace.tm_hypercalls))
    (Trace.total_hypercalls t) t.Trace.tm_hypercalls_failed t.Trace.tm_faults
    t.Trace.tm_double_faults t.Trace.tm_flushes t.Trace.tm_invlpgs t.Trace.tm_page_type_changes
    t.Trace.tm_grant_ops t.Trace.tm_evtchn_ops t.Trace.tm_injector_accesses
    t.Trace.tm_vmi_scans t.Trace.tm_vmi_findings t.Trace.tm_vmi_frames

let to_json r =
  let recs = events r in
  Printf.sprintf
    "{\"use_case\":\"%s\",\"mode\":\"%s\",\"version\":\"%s\",\"records\":%d,\"dropped\":%d,\
     \"detection_latency\":%s,\"state\":%b,\"violations\":%d,\"telemetry\":%s,\"events\":%s}"
    (json_escape r.rec_use_case)
    (Campaign.mode_to_string r.rec_mode)
    (json_escape (Version.to_string r.rec_version))
    (List.length recs) r.rec_dropped
    (match Trace.detection_latency recs with Some d -> string_of_int d | None -> "null")
    r.rec_row.Campaign.r_state
    (List.length r.rec_row.Campaign.r_violations)
    (json_of_telemetry r.rec_row.Campaign.r_telemetry)
    (Trace.json_of_records recs)
