(** Erroneous-state specifications and their audits.

    An erroneous state is the first effect of an intrusion (§III-A): a
    concrete, inspectable corruption of hypervisor state. Audits read
    the actual machine state — page-table bytes via hypervisor-context
    walks, IDT gates, page ownership — to certify that a state holds,
    which is how the paper checks "the erroneous states induced are the
    same" (§VI-C, §VII). *)

type spec =
  | Idt_gate_corrupted of { vector : int }
      (** a gate's handler no longer points at a Xen entry point *)
  | Pud_entry_links_pmd of { pud_mfn : Addr.mfn; index : int; pmd_mfn : Addr.mfn }
      (** the XSA-212-priv state: a forged PMD linked into a PUD *)
  | L2_pse_mapping of { l2_mfn : Addr.mfn; index : int }
      (** the XSA-148 state: a superpage leaf inside a guest L2 *)
  | L4_selfmap_writable of { l4_mfn : Addr.mfn; slot : int }
      (** the XSA-182 state: a writable recursive L4 entry *)
  | Page_kept_after_release of { domid : int; mfn : Addr.mfn }
      (** a guest retains a leaf mapping of a frame it no longer owns *)
  | Interrupt_storm of { domid : int; min_pending : int }
  | Xenstore_tampered of { path : string; legitimate : string }
      (** a management-interface node no longer holds its legitimate
          value (§IX's management-interface intrusion models) *)
  | Vcpu_hung of { domid : int }
      (** a vcpu is stuck inside the hypervisor and pins the pCPU —
          the Induce-a-Hang-State erroneous state *)
  | Wire_grant_writable of { granter : int; gref : int; grantee : int }
      (** the cross-domain grant state: [granter]'s memory-backed wire
          entry [gref] permits {e writable} access to [grantee] — a
          grant the granter never legitimately made (the
          Corrupt-a-Page-Reference intrusion model on the wire table) *)
  | Dm_handler_corrupted
      (** the VENOM state: the device model's FDC request-handler
          pointer no longer holds its legitimate value (§III-B) *)

type audit = { holds : bool; evidence : string list }

val audit : ?dm:Fdc.t -> Hv.t -> spec -> audit
(** Inspect live machine state; [evidence] lists what was read (entry
    values, ownership, walk steps) for the experiment transcript.
    [?dm] attaches the testbed's device-model FDC, which
    {!Dm_handler_corrupted} audits; without it that spec never holds. *)

val describe : spec -> string
val pp_audit : Format.formatter -> audit -> unit

val walk_evidence : Hv.t -> cr3:Addr.mfn -> Addr.vaddr -> string list
(** A page-table walk rendered step by step — the audit primitive used
    in §VI-C.3 ("a page-table walk to audit the same erroneous state
    was performed"). *)
