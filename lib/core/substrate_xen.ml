(* The default substrate: the original Xen PV testbed, wrapped
   unchanged. Every type equation below is transparent, so code written
   against the pre-substrate modules (Testbed.t, Version.t,
   Erroneous_state.spec, Monitor.snapshot) keeps compiling and the
   refactor is observably a no-op on the Xen path. *)

let name = "xen"
let description = "Xen PV testbed (paper's §IX environment: dom0 + attacker + victim)"

type config = Version.t

let configs = Version.all
let default_config = Version.V4_6
let rq1_config = Version.V4_6
let config_to_string = Version.to_string
let config_of_string = Version.of_string
let config_label v = "Xen " ^ Version.to_string v
let config_heading = "Xen"
let port_heading = "Hypercalls"

type t = Testbed.t

let create ?frames ?domains ?load version = Testbed.create ?frames ?domains ?load version

let create_pooled ?frames ?domains ?load version =
  Testbed.create_pooled ?frames ?domains ?load version

let reset = Testbed.reset
let domains = Testbed.domain_names
let trace tb = tb.Testbed.hv.Hv.trace
let vclock tb = Trace.vts (trace tb)
let set_cost_model tb m = Vclock.set_model (Trace.vclock (trace tb)) m
let set_vclock_attached tb on = Vclock.set_attached (Trace.vclock (trace tb)) on
let console tb = Hv.console_lines tb.Testbed.hv

let enable_provenance tb =
  let mem = tb.Testbed.hv.Hv.mem in
  if Phys_mem.provenance mem = None then
    Phys_mem.set_provenance mem (Some (Provenance.create ~tr:(trace tb) ()))

let provenance tb = Phys_mem.provenance tb.Testbed.hv.Hv.mem
let tick_all = Testbed.tick_all
let install_injector tb = Injector.install tb.Testbed.hv
let injector_installed tb = Injector.installed tb.Testbed.hv

(* The injection port is the arbitrary_access hypercall, issued from
   the attacker guest's kernel exactly as an injection script would. *)
let inject_write tb ~addr action data = Injector.write tb.Testbed.attacker ~addr ~action data
let inject_read tb ~addr action ~len = Injector.read tb.Testbed.attacker ~addr ~action ~len

(* The device-model surface is process memory, not machine memory, so it
   bypasses the hypercall port — but it is still an injector access, and
   it obeys the same gate: no injection without the port installed. *)
let inject_dm_write tb data =
  if not (Injector.installed tb.Testbed.hv) then Error Errno.ENOSYS
  else Devmodel.inject tb.Testbed.dm data

type state_spec = Erroneous_state.spec

let audit tb spec = Erroneous_state.audit ~dm:(Devmodel.fdc tb.Testbed.dm) tb.Testbed.hv spec

type snapshot = Monitor.snapshot

let snapshot tb = Monitor.snapshot tb
let violations = Monitor.violations
let violations_by_domain = Monitor.violations_by_domain
let host_alive (s : snapshot) = not s.Monitor.crashed

let guests_alive (s : snapshot) =
  (* every guest domain the snapshot saw, minus the crashed ones; dom0
     is not a guest *)
  List.length (List.filter (fun (h, _) -> h <> "xen3") s.Monitor.domain_pages)
  - List.length s.Monitor.guest_crashes
let frame_hash tb mfn = Phys_mem.frame_hash tb.Testbed.hv.Hv.mem mfn

let critical_frames tb =
  let hv = tb.Testbed.hv in
  ("idt", hv.Hv.idt_mfn) :: ("xen-text", hv.Hv.text_mfn)
  :: List.mapi
       (fun i mfn -> (Printf.sprintf "m2p[%d]" i, mfn))
       (Array.to_list hv.Hv.m2p_mfns)

let detectors () =
  List.map (Vmi.Detector.contramap (fun tb -> tb.Testbed.hv)) (Vmi.Detector.all ())

let kernel_of tb domid =
  List.find_opt (fun k -> Kernel.domid k = domid) (Testbed.kernels tb)

(* Apply one boundary event. Returns false when the event could not be
   matched to the testbed (a desynchronized replay) — callers count
   those as skipped rather than failing midway, so the final-snapshot
   comparison still reports how far off the run ended up. *)
let apply_event tb (ev : Trace.event) =
  let hv = tb.Testbed.hv in
  match ev with
  | Trace.Hypercall { domid; payload; _ } -> (
      if payload = "" then false
      else
        match (kernel_of tb domid, Hypercall.decode_call payload) with
        | Some k, Some call ->
            ignore (Kernel.hypercall k call);
            true
        | _ -> false)
  | Trace.Guest_mem { domid; op; va; len; data } -> (
      match kernel_of tb domid with
      | None -> false
      | Some k -> (
          match op with
          | Trace.Op_read_u64 ->
              ignore (Kernel.read_u64 k va);
              true
          | Trace.Op_write_u64 when String.length data = 8 ->
              ignore (Kernel.write_u64 k va (String.get_int64_le data 0));
              true
          | Trace.Op_read_bytes ->
              ignore (Kernel.read_bytes k va len);
              true
          | Trace.Op_write_bytes ->
              ignore (Kernel.write_bytes k va (Bytes.of_string data));
              true
          | Trace.Op_user_read_u64 ->
              ignore (Kernel.user_read_u64 k va);
              true
          | Trace.Op_user_write_u64 when String.length data = 8 ->
              ignore (Kernel.user_write_u64 k va (String.get_int64_le data 0));
              true
          | Trace.Op_probe_u64 ->
              (* a page-table probe: translated like a kernel read (and
                 thus populating the TLB, which stale-translation
                 exploits depend on) but never faulting. Bypassing
                 [Kernel] skips its boundary emit, so re-emit the record
                 here — the replayed (vts, event) stream must carry the
                 probe at the same stamp the recording did *)
              let tr = hv.Hv.trace in
              if Trace.recording tr && Trace.top_level tr then Trace.emit tr ev;
              ignore
                (Cpu.read_u64 hv.Hv.cpu ~ring:Cpu.Kernel
                   ~cr3:(Kernel.dom k).Domain.l4_mfn va);
              true
          | Trace.Op_write_u64 | Trace.Op_user_write_u64 -> false))
  | Trace.Guest_invlpg { domid; va } -> (
      match kernel_of tb domid with
      | None -> false
      | Some k ->
          Kernel.invlpg k va;
          true)
  | Trace.Kernel_tick { domid } -> (
      match kernel_of tb domid with
      | None -> false
      | Some k ->
          Kernel.tick k;
          true)
  | Trace.Sched_round ->
      Testbed.tick_all tb;
      true
  | Trace.Net_listen { host; port } ->
      Netsim.listen tb.Testbed.net ~host ~port;
      true
  | Trace.Net_cmd { to_host; port; conn_id; cmd } -> (
      match
        List.find_opt
          (fun c -> c.Netsim.conn_id = conn_id)
          (Netsim.connections_to tb.Testbed.net ~host:to_host ~port)
      with
      | None -> false
      | Some conn ->
          ignore (Netsim.run_command conn cmd);
          true)
  | Trace.Xenstore_write { caller; injected; path; value } ->
      if injected then Xenstore.inject_write hv.Hv.xenstore path value
      else ignore (Xenstore.write hv.Hv.xenstore ~caller path value);
      true
  | Trace.Backend_op { op; arg1; data; _ } when op = Devmodel.op_guest_io ->
      (* a guest-facing device-model command; re-issue it so the FDC
         (and a VENOM overflow) replays in place *)
      ignore (Devmodel.guest_io tb.Testbed.dm ~domid:(Int64.to_int arg1) (Bytes.of_string data));
      true
  | Trace.Backend_op { op; data; _ } when op = Devmodel.op_inject ->
      (* the device-model injection surface: re-running it regenerates
         the Injector_access record (internal, like hypercall-port
         injector accesses) at the same stamp *)
      ignore (Devmodel.inject tb.Testbed.dm (Bytes.of_string data));
      true
  | Trace.Scn_edge { section; prev; pc } ->
      (* a scenario-bytecode edge: the VM does not run during replay, so
         refeed the coverage map (and re-emit, like Op_probe_u64 — the
         replayed stream must carry the edge at the recorded stamp) *)
      let tr = hv.Hv.trace in
      (match Trace.coverage tr with
      | Some cov -> Coverage.note_scn_edge cov ~section ~prev ~pc
      | None -> ());
      if Trace.recording tr && Trace.top_level tr then Trace.emit tr ev;
      true
  | Trace.Backend_op _ (* other backends' private ops *)
  | Trace.Hypercall_ret _ | Trace.Fault _ | Trace.Tlb_flush_all | Trace.Tlb_invlpg _
  | Trace.Page_type _ | Trace.Grant_op _ | Trace.Evtchn_op _ | Trace.Injector_access _
  | Trace.Console _ | Trace.Monitor_verdict _ | Trace.Panic _ | Trace.Vmi_scan _
  | Trace.Provenance_edge _ ->
      false
