type spec =
  | Idt_gate_corrupted of { vector : int }
  | Pud_entry_links_pmd of { pud_mfn : Addr.mfn; index : int; pmd_mfn : Addr.mfn }
  | L2_pse_mapping of { l2_mfn : Addr.mfn; index : int }
  | L4_selfmap_writable of { l4_mfn : Addr.mfn; slot : int }
  | Page_kept_after_release of { domid : int; mfn : Addr.mfn }
  | Interrupt_storm of { domid : int; min_pending : int }
  | Xenstore_tampered of { path : string; legitimate : string }
  | Vcpu_hung of { domid : int }
  | Wire_grant_writable of { granter : int; gref : int; grantee : int }
  | Dm_handler_corrupted

type audit = { holds : bool; evidence : string list }

let describe = function
  | Idt_gate_corrupted { vector } ->
      Printf.sprintf "IDT gate %d handler overwritten (descriptor-table corruption)" vector
  | Pud_entry_links_pmd { pud_mfn; index; pmd_mfn } ->
      Printf.sprintf "PUD mfn 0x%x entry %d links foreign PMD mfn 0x%x" pud_mfn index pmd_mfn
  | L2_pse_mapping { l2_mfn; index } ->
      Printf.sprintf "L2 mfn 0x%x entry %d is a PSE superpage over page-table frames" l2_mfn index
  | L4_selfmap_writable { l4_mfn; slot } ->
      Printf.sprintf "L4 mfn 0x%x slot %d is a writable self-mapping" l4_mfn slot
  | Page_kept_after_release { domid; mfn } ->
      Printf.sprintf "d%d keeps a live mapping of released frame 0x%x" domid mfn
  | Interrupt_storm { domid; min_pending } ->
      Printf.sprintf "d%d has >= %d pending event-channel ports" domid min_pending
  | Xenstore_tampered { path; legitimate } ->
      Printf.sprintf "xenstore node %s diverges from its legitimate value %S" path legitimate
  | Vcpu_hung { domid } -> Printf.sprintf "d%d vcpu stuck inside the hypervisor" domid
  | Wire_grant_writable { granter; gref; grantee } ->
      Printf.sprintf "d%d wire grant entry %d grants d%d writable access" granter gref grantee
  | Dm_handler_corrupted -> "device-model FDC request-handler pointer overwritten"

let entry_of hv mfn index =
  if Phys_mem.is_valid_mfn hv.Hv.mem mfn then Some (Frame.get_entry (Phys_mem.frame_ro hv.Hv.mem mfn) index)
  else None

let pte_evidence label e = Format.asprintf "%s = %a" label Pte.pp e

let audit ?dm hv spec =
  match spec with
  | Idt_gate_corrupted { vector } ->
      let gate = Idt.read_gate hv.Hv.mem hv.Hv.idt_mfn vector in
      let valid = gate.Idt.gate_present && Cpu.handler_name hv.Hv.cpu gate.Idt.handler <> None in
      {
        holds = not valid;
        evidence =
          [
            Printf.sprintf "idt[%d].handler = 0x%016Lx (%s)" vector gate.Idt.handler
              (match Cpu.handler_name hv.Hv.cpu gate.Idt.handler with
              | Some name -> "xen:" ^ name
              | None -> "not a Xen entry point");
          ];
      }
  | Pud_entry_links_pmd { pud_mfn; index; pmd_mfn } -> (
      match entry_of hv pud_mfn index with
      | None -> { holds = false; evidence = [ "PUD frame invalid" ] }
      | Some e ->
          let holds = Pte.is_present e && Pte.mfn e = pmd_mfn in
          { holds; evidence = [ pte_evidence (Printf.sprintf "pud[%d]" index) e ] })
  | L2_pse_mapping { l2_mfn; index } -> (
      match entry_of hv l2_mfn index with
      | None -> { holds = false; evidence = [ "L2 frame invalid" ] }
      | Some e ->
          let holds = Pte.is_present e && Pte.test Pte.Pse e && Pte.test Pte.Rw e in
          { holds; evidence = [ pte_evidence (Printf.sprintf "l2[%d]" index) e ] })
  | L4_selfmap_writable { l4_mfn; slot } -> (
      match entry_of hv l4_mfn slot with
      | None -> { holds = false; evidence = [ "L4 frame invalid" ] }
      | Some e ->
          let holds = Pte.is_present e && Pte.mfn e = l4_mfn && Pte.test Pte.Rw e in
          { holds; evidence = [ pte_evidence (Printf.sprintf "l4[%d]" slot) e ] })
  | Page_kept_after_release { domid; mfn } -> (
      match Hv.find_domain hv domid with
      | None -> { holds = false; evidence = [ Printf.sprintf "no domain %d" domid ] }
      | Some dom ->
          let owner = Phys_mem.owner hv.Hv.mem mfn in
          let foreign = owner <> Domain.owned dom in
          (* Scan the domain's reachable leaf entries for a mapping of
             the frame. We walk from the L4 root mechanically, exactly
             as the hardware would. *)
          let found = ref [] in
          let l4 = dom.Domain.l4_mfn in
          let frame_of m = Phys_mem.frame_ro hv.Hv.mem m in
          let in_range m = Phys_mem.is_valid_mfn hv.Hv.mem m in
          if in_range l4 then begin
            let l4f = frame_of l4 in
            for i4 = 0 to Addr.entries_per_table - 1 do
              let e4 = Frame.get_entry l4f i4 in
              if Pte.is_present e4 && in_range (Pte.mfn e4) && not (Layout.is_xen_l4_slot i4) then
                let l3f = frame_of (Pte.mfn e4) in
                for i3 = 0 to Addr.entries_per_table - 1 do
                  let e3 = Frame.get_entry l3f i3 in
                  if Pte.is_present e3 && in_range (Pte.mfn e3) then
                    let l2f = frame_of (Pte.mfn e3) in
                    for i2 = 0 to Addr.entries_per_table - 1 do
                      let e2 = Frame.get_entry l2f i2 in
                      if Pte.is_present e2 && (not (Pte.test Pte.Pse e2)) && in_range (Pte.mfn e2)
                      then
                        let l1f = frame_of (Pte.mfn e2) in
                        for i1 = 0 to Addr.entries_per_table - 1 do
                          let e1 = Frame.get_entry l1f i1 in
                          if Pte.is_present e1 && Pte.mfn e1 = mfn then
                            found :=
                              Printf.sprintf "leaf l1[%d] in table 0x%x maps 0x%x" i1 (Pte.mfn e2)
                                mfn
                              :: !found
                        done
                    done
                done
            done
          end;
          {
            holds = foreign && !found <> [];
            evidence =
              Printf.sprintf "frame 0x%x owner: %s" mfn
                (match owner with
                | Phys_mem.Free -> "free"
                | Phys_mem.Xen -> "Xen"
                | Phys_mem.Dom id -> Printf.sprintf "d%d" id)
              :: !found;
          })
  | Interrupt_storm { domid; min_pending } -> (
      match Hv.find_domain hv domid with
      | None -> { holds = false; evidence = [ Printf.sprintf "no domain %d" domid ] }
      | Some dom ->
          let pending = List.length (Event_channel.pending_ports dom.Domain.events) in
          {
            holds = pending >= min_pending;
            evidence = [ Printf.sprintf "d%d pending ports: %d" domid pending ];
          })
  | Xenstore_tampered { path; legitimate } -> (
      match Xenstore.read hv.Hv.xenstore ~caller:0 path with
      | Ok current ->
          {
            holds = current <> legitimate;
            evidence = [ Printf.sprintf "%s = %S (legitimate: %S)" path current legitimate ];
          }
      | Error e ->
          {
            holds = true;
            evidence = [ Printf.sprintf "%s unreadable (%s)" path (Errno.to_string e) ];
          })
  | Vcpu_hung { domid } -> (
      match List.assoc_opt domid (Sched.hung_vcpus hv.Hv.sched) with
      | Some reason ->
          { holds = true; evidence = [ Printf.sprintf "d%d vcpu hung: %s" domid reason ] }
      | None -> { holds = false; evidence = [ Printf.sprintf "d%d vcpu runnable" domid ] })
  | Wire_grant_writable { granter; gref; grantee } -> (
      match Hv.find_domain hv granter with
      | None -> { holds = false; evidence = [ Printf.sprintf "no domain %d" granter ] }
      | Some dom -> (
          let gt = dom.Domain.grant in
          (* parse the wire entry exactly as the hypervisor's map path
             does: 8-byte entries packed into the shared frames *)
          let per_frame = Addr.page_size / Grant_table.Wire.entry_size in
          match List.nth_opt (Grant_table.shared_frames gt) (gref / per_frame) with
          | None ->
              {
                holds = false;
                evidence = [ Printf.sprintf "d%d grant table not memory-backed at gref %d" granter gref ];
              }
          | Some frame_mfn ->
              let frame = Phys_mem.frame_ro hv.Hv.mem frame_mfn in
              let e = Grant_table.Wire.read frame (gref mod per_frame) in
              let permits = e.Grant_table.Wire.w_flags land Grant_table.Wire.gtf_permit_access <> 0 in
              let readonly = e.Grant_table.Wire.w_flags land Grant_table.Wire.gtf_readonly <> 0 in
              {
                holds = permits && (not readonly) && e.Grant_table.Wire.w_domid = grantee;
                evidence =
                  [
                    Printf.sprintf
                      "d%d wire gref %d @ mfn 0x%x: flags=0x%x domid=%d gfn=%d" granter gref
                      frame_mfn e.Grant_table.Wire.w_flags e.Grant_table.Wire.w_domid
                      e.Grant_table.Wire.w_gfn;
                  ];
              }))
  | Dm_handler_corrupted -> (
      match dm with
      | None -> { holds = false; evidence = [ "no device model attached" ] }
      | Some fdc ->
          {
            holds = not (Fdc.handler_intact fdc);
            evidence =
              [
                Printf.sprintf "fdc handler = 0x%016Lx (legitimate 0x%016Lx)"
                  (Fdc.handler_value fdc) Fdc.legitimate_handler;
              ];
          })

let pp_audit ppf { holds; evidence } =
  Format.fprintf ppf "@[<v2>%s:@ %a@]"
    (if holds then "erroneous state PRESENT" else "erroneous state absent")
    (Format.pp_print_list Format.pp_print_string)
    evidence

let walk_evidence hv ~cr3 va =
  let steps = Paging.walk_path hv.Hv.mem ~cr3 va in
  List.map
    (fun { Paging.level; table_mfn; index; entry } ->
      Format.asprintf "L%d table 0x%x [%d] -> %a" level table_mfn index Pte.pp entry)
    steps
