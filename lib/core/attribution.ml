(** Per-violation attribution: from a monitor verdict or a VMI finding
    back to the injecting action that caused it.

    A trial run with provenance attached ({!Trace_driver.Make.record}
    with [~provenance:true]) leaves a causal graph behind: every
    consumer that interpreted tainted bytes (the page walker, PTE
    validation, IDT gate reads, the VMCS/EPT checks, the monitor and
    VMI scans) recorded an edge back to the origin labels of those
    bytes. This module resolves each security violation and each
    detector finding against that graph — which consumer class carries
    the evidence for this violation class, and which origins reached
    it — and reports tainted-but-never-interpreted bytes as {e silent
    corruption} rows.

    Functor over {!Substrate.S} like the rest of the stack; the
    toplevel is the Xen instantiation, [Backends.Kvm_attribution] the
    KVM one. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Which consumer classes carry the evidence for a violation class. The
   map is a routing hint, not a filter: resolution falls back to every
   read origin (then every live label) when the preferred consumers saw
   no taint, so an unusual propagation path still attributes. *)
let violation_consumers v =
  let open Provenance in
  match v with
  | Monitor.Hypervisor_crash _ -> [ Idt_gate; Pt_walk ]
  | Monitor.Privilege_escalation _ ->
      (* a root shell/file can land via the page-table route or via a
         planted backdoor decoded at vDSO execution (the device-model
         radiation path); forged grants go through the wire-entry check *)
      [ Pt_walk; Page_type_check; Monitor_scan; Vdso_exec; Gnt_check ]
  | Monitor.Unauthorized_disclosure _ -> [ Pt_walk; Monitor_scan; Gnt_check ]
  | Monitor.Integrity_violation msg ->
      if contains msg "M2P" then [ M2p_check; Vmi_view ]
      else if contains msg "VMCS" then [ Vmcs_check ]
      else if contains msg "EPT" then [ Ept_walk ]
      else [ Monitor_scan; Page_type_check; Pt_walk ]
  | Monitor.Guest_crash _ -> [ Idt_gate; Vmcs_check; Ept_walk ]
  | Monitor.Availability_degradation _ -> Provenance.all_consumers

(* Same routing for detector findings, keyed on the detector name. *)
let detector_consumers name =
  let open Provenance in
  if contains name "idt" then [ Idt_gate; Vmi_view ]
  else if contains name "vmcs" then [ Vmcs_check; Vmi_view ]
  else if contains name "ept" then [ Ept_walk; Vmi_view ]
  else if contains name "m2p" then [ M2p_check; Vmi_view ]
  else if contains name "liveness" then [ Idt_gate; Vmcs_check; Ept_walk ]
  else [ Vmi_view; Monitor_scan ]

module Make (B : Substrate.S) = struct
  module C = Campaign.Make (B)
  module T = Trace_driver.Make (B)

  type row = {
    a_kind : string;  (** ["violation"], ["finding"] or ["silent"] *)
    a_what : string;  (** the violation / finding / silent-label text *)
    a_via : string list;  (** consumer classes consulted, in order *)
    a_origins : string list;  (** resolved origin labels, sorted *)
  }

  type report = {
    ar_use_case : string;
    ar_mode : Campaign.mode;
    ar_config : B.config;
    ar_rows : row list;
    ar_edges : int;  (** interpretation edges the trial produced *)
    ar_tainted_bytes : int;  (** taint live at end of trial *)
    ar_graph_json : string;  (** {!Provenance.to_json} of the graph *)
    ar_graph_dot : string;  (** {!Provenance.to_dot} of the graph *)
  }

  let resolve p consumers =
    let via = Provenance.origins_for p (fun c -> List.mem c consumers) in
    let chosen =
      if via <> [] then via
      else
        let read = Provenance.origins_read p in
        if read <> [] then read
        else
          List.sort_uniq compare
            (List.filter_map
               (fun (_, o, bytes, _) -> if bytes > 0 then Some o else None)
               (Provenance.labels p))
    in
    List.map Provenance.origin_to_string chosen

  let attribute ?frames ?domains ?load ?period ?registry uc mode config =
    let detectors = B.detectors () in
    let sched = Vmi.Scheduler.create ?period ?registry detectors in
    let tbr = ref None in
    let recording =
      T.record ?frames ?domains ?load ~provenance:true
        ~prepare:(fun tb ->
          tbr := Some tb;
          Vmi.Scheduler.arm sched tb)
        ~observer:(fun tb -> Vmi.Scheduler.step sched (B.trace tb) tb)
        uc mode config
    in
    let tb = match !tbr with Some tb -> tb | None -> assert false in
    let p = match B.provenance tb with Some p -> p | None -> assert false in
    (match registry with Some reg -> Provenance.publish reg p | None -> ());
    let violation_rows =
      List.map
        (fun v ->
          let cs = violation_consumers v in
          {
            a_kind = "violation";
            a_what = Monitor.violation_to_string v;
            a_via = List.map Provenance.consumer_name cs;
            a_origins = resolve p cs;
          })
        recording.T.rec_row.C.r_violations
    in
    let finding_rows =
      List.concat_map
        (fun (det, findings) ->
          let cs = detector_consumers det in
          List.map
            (fun f ->
              {
                a_kind = "finding";
                a_what = Printf.sprintf "%s: %s" det f;
                a_via = List.map Provenance.consumer_name cs;
                a_origins = resolve p cs;
              })
            findings)
        (Vmi.Scheduler.findings sched)
    in
    let silent_rows =
      List.map
        (fun (o, bytes) ->
          {
            a_kind = "silent";
            a_what = Printf.sprintf "%d tainted byte(s) never interpreted" bytes;
            a_via = [];
            a_origins = [ Provenance.origin_to_string o ];
          })
        (Provenance.silent p)
    in
    {
      ar_use_case = uc.C.uc_name;
      ar_mode = mode;
      ar_config = config;
      ar_rows = violation_rows @ finding_rows @ silent_rows;
      ar_edges = Provenance.edge_count p;
      ar_tainted_bytes = Provenance.tainted_bytes p;
      ar_graph_json = Provenance.to_json p;
      ar_graph_dot = Provenance.to_dot p;
    }

  (* The gate property: every violation and finding names at least one
     origin. Silent rows are informational (corruption that nothing
     interpreted cannot be attributed to a consumer by definition). *)
  let complete r =
    List.for_all (fun row -> row.a_kind = "silent" || row.a_origins <> []) r.ar_rows

  let attribute_all ?frames ?domains ?load ?period ?registry ucs mode config =
    List.map (fun uc -> attribute ?frames ?domains ?load ?period ?registry uc mode config) ucs

  let table reports =
    let body =
      List.concat_map
        (fun r ->
          match r.ar_rows with
          | [] -> [ [ r.ar_use_case; B.config_to_string r.ar_config; "-"; "(no rows)"; "-" ] ]
          | rows ->
              List.map
                (fun row ->
                  [
                    r.ar_use_case;
                    B.config_to_string r.ar_config;
                    row.a_kind;
                    row.a_what;
                    (match row.a_origins with
                    | [] -> "(none)"
                    | os -> String.concat ", " os);
                  ])
                rows)
        reports
    in
    Report.table
      ~title:"Attribution: use case x violation/finding -> originating action"
      ~header:[ "Use Case"; B.config_heading; "Kind"; "Evidence"; "Origin(s)" ]
      body

  let to_json reports =
    let one r =
      let rows =
        String.concat ","
          (List.map
             (fun row ->
               Printf.sprintf
                 "{\"kind\":\"%s\",\"what\":\"%s\",\"via\":[%s],\"origins\":[%s]}"
                 (json_escape row.a_kind) (json_escape row.a_what)
                 (String.concat ","
                    (List.map (fun c -> Printf.sprintf "\"%s\"" (json_escape c)) row.a_via))
                 (String.concat ","
                    (List.map (fun o -> Printf.sprintf "\"%s\"" (json_escape o)) row.a_origins)))
             r.ar_rows)
      in
      Printf.sprintf
        "{\"use_case\":\"%s\",\"mode\":\"%s\",\"config\":\"%s\",\"backend\":\"%s\",\
         \"edges\":%d,\"tainted_bytes\":%d,\"complete\":%b,\"rows\":[%s],\"graph\":%s}"
        (json_escape r.ar_use_case)
        (Campaign.mode_to_string r.ar_mode)
        (json_escape (B.config_to_string r.ar_config))
        (json_escape B.name) r.ar_edges r.ar_tainted_bytes (complete r) rows r.ar_graph_json
    in
    "[" ^ String.concat ",\n " (List.map one reports) ^ "]"

  (* One DOT digraph per report, concatenated: Graphviz renders each as
     its own page; CI uploads the bundle as an artifact. *)
  let to_dot reports =
    String.concat "\n" (List.map (fun r -> r.ar_graph_dot) reports)
end

include Make (Substrate_xen)
