(** The substrate abstraction: what the injection stack needs from a
    hypervisor under test.

    The campaign engine, the trace recorder/replayer and the VMI driver
    are all functors over this signature, so retargeting the whole
    stack onto a new hypervisor means writing one module: how to boot
    it, how to reset it in O(dirty), how its injection port moves bytes
    (a hypercall on Xen PV, an ioctl on KVM), what its host-critical
    structures are, and how to re-drive its recorded boundary events.

    {!Substrate_xen} is the default backend (the original Xen PV
    testbed, wrapped unchanged); [Backend_kvm] in [ii_backends] is the
    hardware-assisted one. *)

module type S = sig
  val name : string
  (** Short machine-readable backend id (["xen"], ["kvm"]). *)

  val description : string

  (** {1 Configurations}

      The key a campaign varies per backend: the hypervisor version on
      Xen ("the only difference was the Xen version"), the build
      flavour elsewhere. *)

  type config

  val configs : config list
  (** Every configuration the backend can boot, campaign order. *)

  val default_config : config
  val rq1_config : config
  (** The configuration RQ1 validation runs on (the one the real
      exploits were written against). *)

  val config_to_string : config -> string
  (** Short form for table columns and JSON ("4.6", "stock"). *)

  val config_of_string : string -> config option

  val config_label : config -> string
  (** Human form for report headings ("Xen 4.6"). *)

  val config_heading : string
  (** Column title for the configuration in telemetry tables. *)

  val port_heading : string
  (** Column title for the injection-port call counters in telemetry
      tables — what the backend's port actually is ("Hypercalls" on
      Xen PV, "Ioctls" on KVM), so KVM rows are not rendered under a
      Xen-shaped header. *)

  (** {1 The system under test} *)

  type t

  val create : ?frames:int -> ?domains:int -> ?load:Load_mix.t -> config -> t
  (** Boot a fresh testbed: host plus its standard population of
      guests, with a reset checkpoint captured at the end. [?domains]
      is the number of concurrent guest domains (default 2, the
      historical victim + attacker pair); [?load] attaches a
      deterministic background workload every guest runs per scheduler
      round (default {!Load_mix.none}). *)

  val create_pooled : ?frames:int -> ?domains:int -> ?load:Load_mix.t -> config -> t
  (** Like [create], but forked copy-on-write from a process-wide frozen
      template for this configuration (built once, on first use) — the
      warm-pool path campaign workers use so every shard and matrix cell
      costs O(metadata) instead of a full boot. Thread-safe; observably
      equivalent to [create]. Templates are pooled per (config, domains)
      and load-free: the load mix is runtime-only state installed on the
      fork, so pooled ≡ fresh holds for loaded multi-domain testbeds. *)

  val domains : t -> string list
  (** Hostnames of the guest domains, stable per-domain row order. *)

  val reset : t -> unit
  (** Roll back to the post-boot checkpoint in O(frames dirtied);
      observably equivalent to a fresh [create]. *)

  val trace : t -> Trace.t
  (** The host's tracer — counters and (when enabled) the event ring. *)

  (** {1 Virtual time}

      Every backend owns a deterministic {!Vclock} (embedded in its
      tracer) that per-operation cost models advance; checkpoint,
      reset and pooled forks carry it with machine state. *)

  val vclock : t -> int64
  (** Current virtual time of the machine, in simulated ns. *)

  val set_cost_model : t -> Vclock.Cost_model.t -> unit
  (** Swap the per-operation cost model (e.g. one loaded from a
      cost-model config file). Affects future charges only. *)

  val set_vclock_attached : t -> bool -> unit
  (** Detach/re-attach the clock. Detached, every charge is a no-op and
      {!vclock} stays frozen; machine behaviour is unchanged either
      way (the vclock-off ≡ vclock-on neutrality invariant). *)

  val enable_provenance : t -> unit
  (** Attach a byte-granular taint shadow ({!Provenance}) to the host's
      physical memory, wired to {!trace} so interpretation edges land in
      the event ring when it records. Idempotent; detached by default,
      where every provenance hook is a single option match. *)

  val provenance : t -> Provenance.t option
  (** The attached shadow, if {!enable_provenance} has run. *)

  val console : t -> string list
  val tick_all : t -> unit
  (** One scheduler round over every guest. *)

  (** {1 The injection port}

      The four-action {!Access.action} surface of §V, reached however
      the backend reaches its host: Xen adds a hypercall to the call
      table, KVM exposes an ioctl. Scripts written against these two
      entry points port across backends verbatim. *)

  val install_injector : t -> unit
  (** Idempotent; a no-op for backends whose port is always present. *)

  val injector_installed : t -> bool

  val inject_write :
    t -> addr:int64 -> Access.action -> bytes -> (unit, Errno.t) result

  val inject_read :
    t -> addr:int64 -> Access.action -> len:int -> (bytes, Errno.t) result

  val inject_dm_write : t -> bytes -> (unit, Errno.t) result
  (** The device-model injection surface: write bytes past the FDC FIFO
      end inside the device-model process (the VENOM erroneous state),
      counted and recorded like any injector access. Gated on
      {!injector_installed} ([ENOSYS] otherwise); [ENOSYS] on backends
      without a device model. *)

  (** {1 Erroneous-state auditing} *)

  type state_spec
  (** The backend's vocabulary of injectable erroneous states. *)

  val audit : t -> state_spec -> Erroneous_state.audit
  (** Does the state hold in live machine state right now? *)

  (** {1 Security-violation monitoring} *)

  type snapshot

  val snapshot : t -> snapshot
  val violations : before:snapshot -> after:snapshot -> Monitor.violation list
  (** Diff two snapshots into the shared violation vocabulary
      ({!Monitor.violation}), so rows compare across backends. *)

  val violations_by_domain :
    before:snapshot -> after:snapshot -> (string * Monitor.violation list) list
  (** The same violations grouped by the domain each was observed in
      (host-level conditions under ["host"]) — the per-domain blast
      radius rows of multi-domain campaigns. *)

  val host_alive : snapshot -> bool
  val guests_alive : snapshot -> int
  (** Blast-radius primitives for the cross-backend matrix. *)

  (** {1 Out-of-band monitoring (VMI)} *)

  val frame_hash : t -> Addr.mfn -> int64
  (** Read-only FNV-1a of a host frame — the integrity primitive. *)

  val critical_frames : t -> (string * Addr.mfn) list
  (** The backend's host-critical structures, named: IDT/text/M2P on
      Xen, EPT roots and VMCSs on KVM. *)

  val detectors : unit -> t Vmi.Detector.t list
  (** Fresh instances of the backend's detector suite. *)

  (** {1 Trace replay} *)

  val apply_event : t -> Trace.event -> bool
  (** Re-drive one recorded boundary event against a fresh testbed;
      false when it cannot be matched (a desynchronized replay) or is
      not a boundary this backend emits. *)
end
