(** Record/replay on top of the trace subsystem.

    {!record} runs one campaign trial with the trace ring enabled and
    packages the result: the raw trace image, the result row, and a
    final monitor snapshot of the testbed. {!replay} re-executes the
    recorded {e boundary} events — the script-to-testbed crossings —
    against a fresh testbed of the same configuration and checks that
    it reaches the same final snapshot (the IRIS-style determinism
    argument: the boundary stream is a sufficient description of the
    trial). Internal events are not applied; the machine regenerates
    them. *)

type recording = {
  rec_use_case : string;
  rec_mode : Campaign.mode;
  rec_version : Version.t;
  rec_frames : int option;  (** testbed frame count, when non-default *)
  rec_row : Campaign.result_row;
  rec_bytes : string;  (** {!Trace.to_bytes} image of the trial *)
  rec_dropped : int;  (** ring evictions during recording *)
  rec_final : Monitor.snapshot;  (** testbed state after the trial *)
}

val record :
  ?frames:int ->
  ?capacity_bytes:int ->
  ?prepare:(Testbed.t -> unit) ->
  ?observer:(Testbed.t -> unit) ->
  Campaign.use_case ->
  Campaign.mode ->
  Version.t ->
  recording
(** Boot a fresh testbed, enable its ring (default capacity 4 MiB),
    run the trial, disable the ring. Deterministic: the same
    arguments produce a byte-identical [rec_bytes].

    [prepare] runs against the fresh testbed before the ring opens —
    where VMI detectors arm their baselines (the trial's initial reset
    returns to exactly this state). [observer] is threaded to
    {!Campaign.run}: called after the attempt and after every scheduler
    round, the interleaving points for {!Vmi.Scheduler.step}. Both must
    be side-effect-free on the machine; replay ignores [Vmi_scan]
    records, so a detector-enabled recording replays to the same final
    snapshot. *)

val events : recording -> Trace.record list

type replay_outcome = {
  rp_applied : int;  (** boundary events re-executed *)
  rp_skipped : int;  (** records not applied (internal, or nested hypercalls) *)
  rp_final : Monitor.snapshot;
  rp_equal : bool;  (** [rp_final] structurally equals [rec_final] *)
}

val replay : recording -> replay_outcome
(** Re-execute the recording's boundary events, in order, against a
    fresh testbed ([rec_version]/[rec_frames], ring disabled; the
    injector hypercall is installed first in [Injection] mode, matching
    {!Campaign.run}). Raises [Invalid_argument] when the recording
    dropped records — an evicted boundary event would desynchronize the
    run. *)

val hypercall_name : int -> string
(** ["mmu_update"], ["arbitrary_access"], ... or ["hypercall_<n>"]. *)

val render : recording -> string
(** Human-readable dump: header, per-record pretty-print, and a
    summary (counts, detection latency, telemetry). *)

val to_json : recording -> string
(** The recording as a JSON object (stable field order; events via
    {!Trace.json_of_records}). *)
