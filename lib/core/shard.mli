(** Deterministic work sharding over OCaml 5 domains.

    The campaign engines shard independent trials across domains; the
    contract that makes this invisible to callers is {e positional
    determinism}: the result list matches the input list element-wise,
    regardless of worker count or scheduling, so a sharded run is
    byte-identical to the sequential one as long as [f] itself depends
    only on its per-worker state, the item and its index.

    Work is dealt in chunks (one atomic fetch-and-add per chunk, not per
    item), so a million-trial queue spends its time in trials, not in
    counter contention. *)

val worker_count : int option -> int
(** Resolve the optional [?workers] argument (default 1). Raises
    [Invalid_argument] if [workers < 1]. *)

val auto_workers : unit -> int
(** The worker count [--workers auto] resolves to:
    [Stdlib.Domain.recommended_domain_count ()] clamped to [\[1, 8\]] —
    beyond a few domains the campaign allocation rate makes the
    stop-the-world minor GC the bottleneck, so more workers hurt. *)

val workers_of_string : string -> (int, string) result
(** Parse a CLI worker spec: ["auto"] resolves via {!auto_workers}, any
    positive integer is taken literally. *)

val map_init : ?workers:int -> init:(unit -> 's) -> ('s -> int -> 'a -> 'b) -> 'a list -> 'b list
(** [map_init ~workers ~init f xs] maps [f state index x] over [xs].
    Each worker calls [init] once and threads the resulting state
    through the items it happens to process (e.g. one testbed per
    worker). [workers] defaults to 1, which runs sequentially on the
    calling domain — the reference behaviour sharded runs must match.
    Raises [Invalid_argument] if [workers < 1]. If any worker raises,
    the remaining workers stop dealing new chunks, every domain is
    joined, and the {e first} exception is re-raised on the caller. *)

val map : ?workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_init] without per-worker state. *)

val fold_init :
  ?workers:int ->
  n:int ->
  init:(unit -> 's) ->
  f:('s -> int -> 'b) ->
  merge:('acc -> 'b -> 'acc) ->
  'acc ->
  'acc
(** [fold_init ~n ~init ~f ~merge acc0] folds [f state index] for every
    index in [0, n), merging results into one accumulator — the
    streaming counterpart of {!map_init} for runs too large to
    materialize (a million-trial campaign keeps a tally, not a list).
    No per-item list or array is ever built, so peak memory is flat in
    [n]. With [workers > 1], results are merged in nondeterministic
    order: [merge] must be commutative-monoidal over the results (true
    of outcome tallies). Exceptions propagate as in {!map_init}. *)
