(** VMI detector campaigns: run trials with the scan scheduler
    interleaved, extract per-detector detection latencies from the
    trace, and render the detector × erroneous-state coverage matrix.

    Detection latency is measured in trace sequence numbers: the
    distance from the injection point (the first [Injector_access]
    record in injection mode, the first boundary event in exploit mode)
    to the [Vmi_scan] record of the detector's first non-empty scan.
    Both ends come from the same ring, so the metric is deterministic
    and survives replay. *)

type trial = {
  t_recording : Trace_driver.recording;
  t_inject_seq : int option;  (** the latency origin; [None] if nothing ran *)
  t_first_fire : (string * int) list;  (** detector -> firing seq *)
  t_latency : (string * int option) list;
      (** every detector, in scheduler order; [None] = never fired *)
  t_findings : (string * string list) list;
  t_scans : int;
  t_frames_read : int;
}

val run_trial :
  ?frames:int ->
  ?period:int ->
  ?registry:Metrics.registry ->
  ?detectors:Vmi.Detector.t list ->
  Campaign.use_case ->
  Campaign.mode ->
  Version.t ->
  trial
(** One recorded trial with detectors armed on the pristine testbed and
    scanned at every interleaving point (default period 1, default
    detector set {!Vmi.Detector.all}). Detector instances carry mutable
    baselines, so pass a fresh list per trial when overriding. *)

val covered : trial -> bool
(** Some detector fired with a finite positive latency. *)

val best_latency : trial -> int option
(** The smallest latency across detectors that fired. *)

val coverage :
  ?frames:int ->
  ?period:int ->
  ?registry:Metrics.registry ->
  Campaign.use_case list ->
  Campaign.mode ->
  Version.t ->
  trial list
(** One trial per use case, fresh detectors each. *)

val matrix_table : trial list -> string
(** Detector × use-case matrix; each cell is the detection latency in
    trace events, or "-" when the detector never fired. *)

val side_effect_free :
  ?frames:int -> Campaign.use_case -> Campaign.mode -> Version.t -> bool
(** The acceptance property: a trial with detectors enabled reaches the
    same final monitor snapshot, the same verdict, the same non-VMI
    event stream and the same non-VMI telemetry as one without. *)

val to_json : trial list -> string
(** Stable-order JSON array of per-trial latency summaries. *)
