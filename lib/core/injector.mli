(** The prototype intrusion injector (§V).

    A new hypercall, [arbitrary_access], is registered in the
    hypervisor's call table. It lets a guest kernel read or write [n]
    bytes at an arbitrary address, in linear (already mapped in the
    hypervisor) or physical (mapped into Xen's linear space on demand)
    address mode — deliberately bypassing the restriction machinery
    that [mmu_update] and friends enforce:

    {v
    arbitrary_access(addr_t addr, void *buf, size_t n, action_t action)
    v}

    The injector runs with hypervisor privilege, so injection succeeds
    regardless of version; whether the injected erroneous state then
    leads to a security violation depends on how that version handles
    the state — which is the whole point of the technique. *)

val hypercall_number : int
(** 40 — the slot added to each version's hypercall table. *)

val hypercall_name : string

type action = Access.action =
  | Arbitrary_read_linear
  | Arbitrary_write_linear
  | Arbitrary_read_physical
  | Arbitrary_write_physical
(** Equal to {!Access.action} — the codec shared with every other
    backend's injection port. *)

val action_code : action -> int64
val action_of_code : int64 -> action option
val action_to_string : action -> string

val install : Hv.t -> unit
(** Patch the hypercall table (idempotent). Logs the version-specific
    shim, mirroring §V-B. *)

val installed : Hv.t -> bool

val scratch_pfn : Addr.pfn
(** Guest pfn the wrappers below stage transfer buffers in. *)

(** {1 Guest-side wrappers}

    These issue the raw hypercall exactly as an injection script in the
    guest kernel would: stage the buffer in guest memory, then trap
    into the hypervisor. *)

val write : Kernel.t -> addr:int64 -> action:action -> bytes -> (unit, Errno.t) result
val write_u64 : Kernel.t -> addr:int64 -> action:action -> int64 -> (unit, Errno.t) result
val read : Kernel.t -> addr:int64 -> action:action -> len:int -> (bytes, Errno.t) result
val read_u64 : Kernel.t -> addr:int64 -> action:action -> (int64, Errno.t) result
