(* The batching campaign scheduler: versions x trials flattened into one
   work queue over a single worker pool.

   Sharding each version's campaign separately (the pre-scheduler shape)
   pays one pool spin-up per version and leaves workers idle at every
   version boundary. Flattening instead gives one queue of
   |versions| * trials independent jobs, dealt in chunks; each worker
   lazily forks one testbed per version it actually meets (COW, from the
   warm template pool) and reuses it across every trial of that version
   it is dealt.

   Determinism: job j is (version j/trials, trial j mod trials), and a
   trial depends only on (seed, trial index, targets) plus a pristine
   testbed — so the materialized output regroups into per-version
   summaries byte-identical to running each version sequentially. *)

module RC = Random_campaign

(* Per-worker testbed table, one slot per version, filled on first use.
   [coverage] attaches a collector to each testbed so trials return
   per-trial coverage maps. *)
let worker_pool ~coverage versions =
  let tbs = Array.make (Array.length versions) None in
  fun vi ->
    match tbs.(vi) with
    | Some w -> w
    | None ->
        let w = RC.make_worker ~pooled:true versions.(vi) in
        if coverage then RC.attach_coverage w;
        tbs.(vi) <- Some w;
        w

let check_args ~trials ~targets versions =
  if versions = [] then invalid_arg "Campaign_scheduler: no versions";
  if trials <= 0 then invalid_arg "Campaign_scheduler: trials must be positive";
  if targets = [] then invalid_arg "Campaign_scheduler: no targets"

let run ?(seed = 42L) ?(targets = RC.intrusion_targets) ?workers ?coverage ~trials versions =
  check_args ~trials ~targets versions;
  let varr = Array.of_list versions in
  let n = Array.length varr * trials in
  let pairs =
    Shard.map_init ?workers
      ~init:(fun () -> worker_pool ~coverage:(coverage <> None) varr)
      (fun pool j () -> RC.run_one_cov (pool (j / trials)) ~seed ~targets (j mod trials))
      (List.init n (fun _ -> ()))
  in
  (* merge per-trial maps into the caller's cumulative map in job order —
     a deterministic fold over the positional results, identical
     whatever the worker count (and, since merge is a commutative OR,
     identical to any other order too) *)
  (match coverage with
  | None -> ()
  | Some acc ->
      List.iter
        (fun (_, m) -> match m with Some m -> acc := Coverage.merge !acc m | None -> ())
        pairs);
  let rows = List.map fst pairs in
  (* jobs were dealt flattened but land positionally: version vi owns
     the contiguous slice [vi*trials, (vi+1)*trials) *)
  List.mapi
    (fun vi version ->
      let ts = List.filteri (fun j _ -> j / trials = vi) rows in
      { RC.s_version = version; s_seed = seed; s_trials = trials; tally = RC.tally_of ts;
        trials = ts })
    versions

type stream_stats = {
  st_version : Version.t;
  st_trials : int;
  st_tally : (RC.outcome_class * int) list;
}

let outcome_slot = function
  | RC.Crashed -> 0
  | RC.Violated -> 1
  | RC.State_only -> 2
  | RC.No_effect -> 3
  | RC.Refused -> 4

let n_outcomes = List.length RC.all_outcomes

let run_streamed ?(seed = 42L) ?(targets = RC.intrusion_targets) ?workers ?coverage ~trials
    versions =
  check_args ~trials ~targets versions;
  let varr = Array.of_list versions in
  let n = Array.length varr * trials in
  (* streaming fold: each trial reduces to (version, outcome) and is
     dropped; peak memory is the worker testbeds plus one counter table,
     flat in [trials] — the shape a million-trial run needs. The
     coverage merge rides the same fold: bitwise OR is commutative and
     idempotent, so the merge order the scheduler happens to deliver is
     invisible in the cumulative map — the order-insensitivity
     {!Shard.fold_init} requires. *)
  let counts =
    Shard.fold_init ?workers ~n
      ~init:(fun () -> worker_pool ~coverage:(coverage <> None) varr)
      ~f:(fun pool j ->
        let vi = j / trials in
        let t, m = RC.run_one_cov (pool vi) ~seed ~targets (j mod trials) in
        (vi, t.RC.outcome, m))
      ~merge:(fun counts (vi, outcome, m) ->
        counts.((vi * n_outcomes) + outcome_slot outcome) <- counts.((vi * n_outcomes) + outcome_slot outcome) + 1;
        (match (coverage, m) with
        | Some acc, Some m -> acc := Coverage.merge !acc m
        | _ -> ());
        counts)
      (Array.make (Array.length varr * n_outcomes) 0)
  in
  List.mapi
    (fun vi version ->
      {
        st_version = version;
        st_trials = trials;
        st_tally =
          List.map (fun o -> (o, counts.((vi * n_outcomes) + outcome_slot o))) RC.all_outcomes;
      })
    versions

let render_stream stats =
  let header = "Version" :: List.map RC.outcome_to_string RC.all_outcomes in
  let rows =
    List.map
      (fun s ->
        Version.to_string s.st_version
        :: List.map (fun o -> string_of_int (List.assoc o s.st_tally)) RC.all_outcomes)
      stats
  in
  Report.table
    ~title:
      (Printf.sprintf "Campaign scheduler (%d trials per version, streamed): outcome tally"
         (match stats with s :: _ -> s.st_trials | [] -> 0))
    ~header rows
