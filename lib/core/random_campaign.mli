(** Randomized erroneous-state campaigns (§IV-C).

    "One possibility is to randomize inputs to an injector, creating an
    approach that resembles fuzzing testing but in another level of
    interaction, in a post-attack phase." This module implements that
    idea: each trial synthesizes an erroneous state within a target
    class, injects it through the [arbitrary_access] hypercall, runs an
    activation workload, and classifies what the monitor observed. It
    also implements plain accidental bit flips — the classic SWIFI
    faultload — so intrusion injection can be contrasted with
    fault injection on the same system (§II).

    Campaigns are deterministic in their seed, so the same trial
    sequence can be replayed against different hypervisor versions for
    comparison (the risk-assessment scenario of §III-C). *)

type target_class =
  | Idt_gates  (** overwrite descriptor-table handler words *)
  | Page_table_entries  (** forge random PTEs in the attacker's tables *)
  | M2p_entries  (** corrupt machine-to-physical entries *)
  | Arbitrary_physical  (** random word anywhere in RAM *)
  | Soft_error_bit_flip  (** a single accidental bit flip (not an IM) *)
  | Component_hooks
      (** the non-memory injector hooks: vcpu hang, interrupt storm,
          management-plane tampering, allocator exhaustion *)

val target_to_string : target_class -> string
val all_targets : target_class list
val intrusion_targets : target_class list
(** [all_targets] minus the accidental-fault class. *)

val memory_targets : target_class list
(** The classes the [arbitrary_access] hypercall covers. *)

type outcome_class =
  | Crashed  (** hypervisor panic *)
  | Violated  (** non-crash security violation(s) *)
  | State_only  (** state audited present, no violation: handled *)
  | No_effect  (** nothing observable *)
  | Refused  (** the injector rejected the target *)

val outcome_to_string : outcome_class -> string
val all_outcomes : outcome_class list

type trial = {
  index : int;
  target : target_class;
  t_addr : int64;
  t_value : int64;
  outcome : outcome_class;
  t_violations : Monitor.violation list;
}

type summary = {
  s_version : Version.t;
  s_seed : int64;
  s_trials : int;
  tally : (outcome_class * int) list;  (** all five classes, in order *)
  trials : trial list;
}

(** {1 Worker state}

    The building blocks {!run} itself is made of, exported so the
    campaign scheduler ({!Campaign_scheduler}) can drive trials from a
    flattened multi-version work queue: one long-lived testbed per
    worker (reset between trials), the monitor scan cache, and the
    memoized pristine before-snapshot. *)

type worker

val make_worker : ?pooled:bool -> Version.t -> worker
(** Per-worker campaign state around one testbed. [pooled] (default
    false) forks the testbed from the warm template pool
    ({!Testbed.create_pooled}) instead of booting fresh — observably
    equivalent, O(metadata) instead of a full build. *)

val run_one : worker -> seed:int64 -> targets:target_class list -> int -> trial
(** Run trial [index] on a pristine testbed (reset + injector install +
    memoized before-snapshot). Deterministic in [(seed, index, targets)]
    alone — the positional-determinism contract sharded runs rely on. *)

val attach_coverage : worker -> unit
(** Attach a fresh {!Coverage} collector to the worker testbed's trace;
    subsequent {!run_one_cov} calls return per-trial maps. *)

val run_one_cov :
  worker -> seed:int64 -> targets:target_class list -> int -> trial * Coverage.map option
(** {!run_one} plus the trial's coverage map when the worker has a
    collector attached ({!attach_coverage}). The collector is cleared at
    the pristine point (after reset + injector install, exactly where
    {!Campaign.Make.run} clears its own), so the map depends only on
    [(seed, index, targets)] — never on the worker, its fork origin, or
    scheduling. *)

val tally_of : trial list -> (outcome_class * int) list
(** Outcome counts in [all_outcomes] order. *)

val run :
  ?seed:int64 -> ?trials:int -> ?targets:target_class list -> ?workers:int ->
  Version.t -> summary
(** Defaults: seed 42, 60 trials, all intrusion targets, 1 worker.

    Each trial runs against a pristine testbed: one testbed per worker
    is created up front and rolled back between trials with
    {!Testbed.reset} — O(dirty pages) instead of the boot per trial (or
    per crash) a real campaign pays to power-cycle the machine.

    Trials draw from independent per-trial PRNG streams derived from
    [seed] and the trial index, so the campaign is deterministic in its
    seed {e and} insensitive to [workers]: a sharded run returns
    byte-identical summaries to the sequential one. *)

val compare_versions :
  ?seed:int64 -> ?trials:int -> ?targets:target_class list -> ?workers:int ->
  Version.t list -> summary list
(** The same trial sequence against each version. *)

val render : summary list -> string
