let hypercall_number = 40
let hypercall_name = "arbitrary_access"

(* The four-action surface and its wire codec live in [Access]
   (lib/machine) so the KVM ioctl port shares them verbatim. *)
type action = Access.action =
  | Arbitrary_read_linear
  | Arbitrary_write_linear
  | Arbitrary_read_physical
  | Arbitrary_write_physical

let action_code = Access.code
let action_of_code = Access.of_code
let action_to_string = Access.to_string
let scratch_pfn = 2

let resolve_target hv ~addr ~len ~physical =
  match Access.resolve hv.Hv.mem ~addr ~len ~physical with
  | None -> Error Errno.EINVAL
  | Some ma -> Ok ma

let handler hv dom (args : int64 array) =
  if Array.length args <> 4 then Error Errno.EINVAL
  else
    let addr = args.(0) and buf = args.(1) and len = Int64.to_int args.(2) in
    match action_of_code args.(3) with
    | None -> Error Errno.EINVAL
    | Some action -> (
        let tr = hv.Hv.trace in
        Trace.note_injector tr;
        if Trace.recording tr then
          Trace.emit tr
            (Trace.Injector_access { action = Int64.to_int args.(3); addr; len });
        match resolve_target hv ~addr ~len ~physical:(Access.is_physical action) with
        | Error e -> Error e
        | Ok ma -> (
            if Access.is_write action then (
              (* __copy_from_user: fetch the payload from the guest. *)
              match Uaccess.copy_from_guest hv dom buf len with
              | Error e -> Error e
              | Ok data ->
                  (* label the landed bytes with this access's ordinal so
                     attribution can name the injecting action; the counter
                     was just bumped by [note_injector] and is restored
                     with machine checkpoints, so the id is replay-stable *)
                  let n = Trace.Counters.injector_accesses (Trace.counters tr) in
                  Phys_mem.with_origin hv.Hv.mem (Provenance.Injector_action n) (fun () ->
                      Phys_mem.write_bytes hv.Hv.mem ma data);
                  Ok 0L)
            else (
              let data = Phys_mem.read_bytes hv.Hv.mem ma len in
              match Uaccess.copy_to_guest hv dom buf data with
              | Error e -> Error e
              | Ok () -> Ok 0L)))

let installed hv = Hv.lookup_hypercall hv hypercall_number <> None

let install hv =
  if not (installed hv) then begin
    Hv.register_hypercall hv ~number:hypercall_number ~name:hypercall_name handler;
    Hv.log hv
      (Printf.sprintf "intrusion-injector: hypercall %d (%s) added to the %s call table"
         hypercall_number hypercall_name
         (Version.to_string hv.Hv.version))
  end

(* --- guest-side wrappers ---------------------------------------------- *)

let scratch_va = Domain.kernel_vaddr_of_pfn scratch_pfn

let raw_call k ~addr ~buf ~len ~action =
  Kernel.hypercall k
    (Hypercall.Raw { number = hypercall_number; args = [| addr; buf; Int64.of_int len; action_code action |] })

let write k ~addr ~action data =
  match Kernel.write_bytes k scratch_va data with
  | Error _ -> Error Errno.EFAULT
  | Ok () -> (
      match raw_call k ~addr ~buf:scratch_va ~len:(Bytes.length data) ~action with
      | Ok _ -> Ok ()
      | Error e -> Error e)

let write_u64 k ~addr ~action v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write k ~addr ~action b

let read k ~addr ~action ~len =
  match raw_call k ~addr ~buf:scratch_va ~len ~action with
  | Error e -> Error e
  | Ok _ -> (
      match Kernel.read_bytes k scratch_va len with
      | Ok b -> Ok b
      | Error _ -> Error Errno.EFAULT)

let read_u64 k ~addr ~action =
  match read k ~addr ~action ~len:8 with
  | Ok b -> Ok (Bytes.get_int64_le b 0)
  | Error e -> Error e
